// Table II — percentage of non-concurrent shuffle in the sort benchmark as
// a function of the number of map waves.
//
//   waves = #blocks / (#data nodes x #map slots per node)
//
// The paper varies the wave count and reports the share of the job during
// which shuffle runs with no maps left to overlap it (the Ph2 tail):
//   waves:   1     1.5   2     2.5   3    3.5   4    4.5   5
//   percent: 29.5  17    10.9  6.4   5.3  3.4   2.1  2.3   1.4
//
// Shape: the tail share falls steeply with the wave count, which is why the
// meta-scheduler merges Ph2 into Ph3 at the paper's operating point.
#include "bench_util.hpp"

using namespace iosim;
using namespace iosim::bench;

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Table II", "non-concurrent shuffle share vs map waves (sort)");

  const double paper_waves[] = {1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5};
  const double paper_pct[] = {29.5, 17, 10.9, 6.4, 5.3, 3.4, 2.1, 2.3, 1.4};

  metrics::Table tab("measured vs paper");
  tab.headers({"waves", "blocks/VM", "measured %", "paper %"});

  ClusterConfig cfg = paper_cluster();
  for (std::size_t i = 0; i < std::size(paper_waves); ++i) {
    // waves = blocks_per_vm / map_slots (2): choose the input size so that
    // blocks_per_vm = 2 * waves. Half waves use 64 MB granularity.
    const double waves = paper_waves[i];
    const auto blocks_per_vm = static_cast<std::int64_t>(waves * 2.0 + 0.5);
    auto jc = workloads::make_job(workloads::stream_sort(),
                                  blocks_per_vm * 64 * mapred::kMiB);
    double pct = 0;
    for (int s = 0; s < kSeeds; ++s) {
      ClusterConfig c = cfg;
      c.seed = sim::derive_run_seed(cfg.seed, static_cast<std::uint64_t>(s));
      pct += cluster::run_job(c, jc).stats.shuffle_tail_pct();
    }
    pct /= kSeeds;
    tab.row({metrics::Table::num(waves, 1), std::to_string(blocks_per_vm),
             metrics::Table::num(pct, 1), metrics::Table::num(paper_pct[i], 1)});
    report().add("waves_" + metrics::Table::num(waves, 1) + ".tail_pct", pct);
  }
  tab.print();

  print_expectation(
      "the non-concurrent shuffle tail shrinks steeply as waves increase "
      "(~30% at 1 wave to ~1-2% at 5 waves): the later map waves overlap "
      "almost all of the shuffle.");
  return 0;
}
