// Ablation study — sensitivity of the headline results to the design
// choices DESIGN.md calls out:
//   (1) the anticipation window (AS antic_expire),
//   (2) CFQ's slice length and idle window,
//   (3) the blkfront ring depth,
//   (4) the elevator-switch quiesce length (drives the switch cost the
//       heuristic must amortize),
//   (5) phase granularity (2 vs 3 phases) in the meta-scheduler.
#include "bench_util.hpp"
#include "core/meta_scheduler.hpp"

using namespace iosim;
using namespace iosim::bench;

namespace {

double sort_seconds(ClusterConfig cfg, SchedulerPair pair) {
  cfg.pair = pair;
  return cluster::run_job(cfg, workloads::make_job(workloads::stream_sort())).seconds;
}

}  // namespace

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Ablation", "sensitivity of headline results to model/tunable choices");

  // (1) anticipation window: AS-VMM sort time vs antic_expire.
  {
    metrics::Table tab("(1) sort under (anticipatory, deadline) vs antic_expire");
    tab.headers({"antic_expire (ms)", "seconds"});
    for (double ms : {0.0, 2.0, 6.0, 12.0, 24.0}) {
      ClusterConfig cfg = paper_cluster();
      cfg.host.dom0_blk.tunables.as.antic_expire = sim::Time::from_sec_f(ms / 1e3);
      const double sec = sort_seconds(cfg, {SchedulerKind::kAnticipatory,
                                            SchedulerKind::kDeadline});
      tab.row({metrics::Table::num(ms, 0), metrics::Table::num(sec, 1)});
      report().add("antic_expire_" + metrics::Table::num(ms, 0) + "ms.seconds", sec);
    }
    tab.print();
  }

  // (2) CFQ slice / idle: default-pair sort time.
  {
    metrics::Table tab("(2) sort under (cfq, cfq) vs slice_sync / slice_idle");
    tab.headers({"slice_sync (ms)", "slice_idle (ms)", "seconds"});
    for (double slice : {40.0, 100.0, 250.0}) {
      for (double idle : {0.0, 8.0}) {
        ClusterConfig cfg = paper_cluster();
        cfg.host.dom0_blk.tunables.cfq.slice_sync = sim::Time::from_sec_f(slice / 1e3);
        cfg.host.dom0_blk.tunables.cfq.slice_idle = sim::Time::from_sec_f(idle / 1e3);
        tab.row({metrics::Table::num(slice, 0), metrics::Table::num(idle, 0),
                 metrics::Table::num(sort_seconds(cfg, iosched::kDefaultPair), 1)});
      }
    }
    tab.print();
  }

  // (3) ring depth: how much the guest elevator matters.
  {
    metrics::Table tab("(3) sort vs blkfront ring slots (guest cfq vs guest noop)");
    tab.headers({"ring slots", "(as, cfq)", "(as, noop)", "guest effect"});
    for (int slots : {8, 32, 128}) {
      ClusterConfig cfg = paper_cluster();
      cfg.host.domu.ring.slots = slots;
      const double cfq = sort_seconds(cfg, {SchedulerKind::kAnticipatory, SchedulerKind::kCfq});
      const double noop = sort_seconds(cfg, {SchedulerKind::kAnticipatory, SchedulerKind::kNoop});
      tab.row({std::to_string(slots), metrics::Table::num(cfq, 1),
               metrics::Table::num(noop, 1),
               metrics::Table::pct(100.0 * (noop - cfq) / cfq, 1)});
    }
    tab.print();
  }

  // (4) switch quiesce length: does the heuristic still win?
  {
    metrics::Table tab("(4) meta-scheduler outcome vs elevator-switch freeze");
    tab.headers({"freeze (ms)", "default", "best single", "adaptive", "vs default"});
    for (double freeze : {0.0, 100.0, 1000.0, 5000.0}) {
      ClusterConfig cfg = paper_cluster();
      cfg.host.dom0_blk.switch_freeze = sim::Time::from_sec_f(freeze / 1e3);
      cfg.host.domu.guest_blk.switch_freeze = sim::Time::from_sec_f(freeze / 1e3);
      const auto jc = workloads::make_job(workloads::stream_sort());
      core::MetaSchedulerOptions opts;
      opts.plan = core::PhasePlan::for_job(jc, cfg.n_hosts * cfg.vms_per_host);
      core::MetaScheduler ms(cfg, jc, opts);
      const auto r = ms.optimize();
      tab.row({metrics::Table::num(freeze, 0), metrics::Table::num(r.default_seconds, 1),
               metrics::Table::num(r.best_single_seconds, 1),
               metrics::Table::num(r.adaptive_seconds, 1),
               metrics::Table::pct(100.0 * r.improvement_vs_default(), 1)});
      report().add("freeze_" + metrics::Table::num(freeze, 0) + "ms.gain_pct",
                   100.0 * r.improvement_vs_default());
    }
    tab.print();
  }

  // (6) NCQ: would command queueing in the drive have erased the paper's
  // effect? (2011 SATA drives had NCQ, but the 2.6.22 Xen storage stack
  // under study dispatched serially.)
  {
    metrics::Table tab("(6) sort vs drive NCQ depth: does the elevator still matter?");
    tab.headers({"ncq depth", "(cfq, cfq)", "(noop, noop)", "noop penalty"});
    for (int depth : {1, 8, 32}) {
      ClusterConfig cfg = paper_cluster();
      cfg.host.disk.ncq_depth = depth;
      const double cc = sort_seconds(cfg, iosched::kDefaultPair);
      const double nn =
          sort_seconds(cfg, {SchedulerKind::kNoop, SchedulerKind::kNoop});
      tab.row({std::to_string(depth), metrics::Table::num(cc, 1),
               metrics::Table::num(nn, 1),
               metrics::Table::num(nn / cc, 2) + "x"});
      report().add("ncq_" + std::to_string(depth) + ".noop_penalty", nn / cc);
    }
    tab.print();
  }

  // (5) phase granularity.
  {
    metrics::Table tab("(5) meta-scheduler: merged (2-phase) vs split (3-phase)");
    tab.headers({"plan", "adaptive", "heuristic evals"});
    for (bool merged : {true, false}) {
      const auto jc = workloads::make_job(workloads::stream_sort());
      core::MetaSchedulerOptions opts;
      opts.plan = core::PhasePlan{merged};
      core::MetaScheduler ms(paper_cluster(), jc, opts);
      const auto r = ms.optimize();
      tab.row({merged ? "2 phases (paper)" : "3 phases",
               metrics::Table::num(r.adaptive_seconds, 1),
               std::to_string(r.heuristic_evaluations)});
    }
    tab.print();
  }

  print_expectation(
      "headline shapes are robust: the anticipation window is mild and "
      "non-monotonic in this substrate (the sub-millisecond re-arrival gaps "
      "AS bridges on a real DataNode-mediated stack are below the model's "
      "resolution — see EXPERIMENTS.md); CFQ idling/slice choices move the "
      "default by a few percent; deeper rings shrink the guest-scheduler "
      "effect toward zero; very large switch costs erase the adaptive gain "
      "(the heuristic then falls back to a single-pair solution); 3-phase "
      "search costs more evaluations for little extra gain at 4 waves — "
      "the paper's merge rule.");
  return 0;
}
