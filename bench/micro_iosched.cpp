// Micro-benchmarks (google-benchmark) for the hot paths of the simulator:
// elevator add/dispatch, the block-layer merge path, elevator switching,
// the disk service model, and a full small job as a macro smoke number.
#include <benchmark/benchmark.h>

#include "blk/block_layer.hpp"
#include "blk/disk_device.hpp"
#include "cluster/runner.hpp"
#include "iosched/scheduler.hpp"
#include "sim/random.hpp"
#include "workloads/benchmarks.hpp"

namespace {

using namespace iosim;
using iosched::Dir;
using iosched::Request;
using iosched::SchedulerKind;

void fill_request(Request& rq, sim::Rng& rng, std::uint64_t id) {
  rq.id = id;
  rq.lba = static_cast<disk::Lba>(rng.below(1u << 26));
  rq.sectors = 88;
  rq.dir = rng.chance(0.5) ? Dir::kRead : Dir::kWrite;
  rq.sync = rq.dir == Dir::kRead;
  rq.ctx = rng.below(4);
}

void BM_SchedulerAddDispatch(benchmark::State& state) {
  const auto kind = static_cast<SchedulerKind>(state.range(0));
  auto sched = iosched::make_scheduler(kind);
  sim::Rng rng(1);
  std::vector<Request> pool(1024);
  std::uint64_t id = 0;
  sim::Time now;
  for (auto _ : state) {
    // Keep ~64 requests in the queue; add one, dispatch one.
    Request& rq = pool[id % pool.size()];
    fill_request(rq, rng, id++);
    sched->add(&rq, now);
    now += sim::Time::from_us(100);
    Request* out = sched->dispatch(now);
    if (out == nullptr) {
      const auto w = sched->wakeup(now);
      if (w.has_value()) now = *w;
      out = sched->dispatch(now);
    }
    if (out != nullptr) sched->on_complete(*out, now);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerAddDispatch)
    ->Arg(static_cast<int>(SchedulerKind::kNoop))
    ->Arg(static_cast<int>(SchedulerKind::kDeadline))
    ->Arg(static_cast<int>(SchedulerKind::kAnticipatory))
    ->Arg(static_cast<int>(SchedulerKind::kCfq));

void BM_BlockLayerSequentialWrite(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simr;
    blk::DiskDevice disk(simr, disk::DiskParams{}, 1);
    blk::BlockLayer layer(simr, disk, blk::BlockLayerConfig{});
    for (int i = 0; i < 256; ++i) {
      blk::Bio b;
      b.lba = 1'000'000 + i * 64;
      b.sectors = 64;
      b.dir = Dir::kWrite;
      b.sync = false;
      b.ctx = 1;
      layer.submit(std::move(b));
    }
    simr.run();
    benchmark::DoNotOptimize(layer.counters().back_merges);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BlockLayerSequentialWrite);

void BM_ElevatorSwitchDrain(benchmark::State& state) {
  const auto n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator simr;
    blk::DiskDevice disk(simr, disk::DiskParams{}, 1);
    blk::BlockLayerConfig cfg;
    cfg.switch_freeze = sim::Time::zero();
    blk::BlockLayer layer(simr, disk, cfg);
    sim::Rng rng(2);
    for (std::int64_t i = 0; i < n; ++i) {
      blk::Bio b;
      b.lba = static_cast<disk::Lba>(rng.below(1u << 26)) * 8;
      b.sectors = 8;
      b.dir = Dir::kWrite;
      b.sync = false;
      b.ctx = rng.below(4);
      layer.submit(std::move(b));
    }
    state.ResumeTiming();
    layer.switch_scheduler(SchedulerKind::kDeadline);
    benchmark::DoNotOptimize(layer.queued());
    state.PauseTiming();
    simr.run();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ElevatorSwitchDrain)->Arg(64)->Arg(512);

void BM_DiskServiceRandom(benchmark::State& state) {
  disk::DiskModel model(disk::DiskParams{}, 3);
  sim::Rng rng(4);
  for (auto _ : state) {
    const auto lba = static_cast<disk::Lba>(rng.below(1'900'000'000));
    benchmark::DoNotOptimize(model.service({lba, 512, false}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiskServiceRandom);

void BM_SmallSortJob(benchmark::State& state) {
  cluster::ClusterConfig cfg;
  cfg.n_hosts = 1;
  cfg.vms_per_host = 2;
  const auto jc = workloads::make_job(workloads::stream_sort(), 64 * mapred::kMiB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::run_job(cfg, jc).seconds);
  }
}
BENCHMARK(BM_SmallSortJob)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
