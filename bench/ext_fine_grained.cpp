// Extension (paper Section VII future work) — fine-grained per-host
// adaptive control vs the paper's coarse cluster-synchronized
// meta-scheduler.
//
// The coarse method "assumes that different stages are synchronized in
// each VM ... this assumption will not hold in the case of slow nodes"
// (Section IV-A). We therefore compare three policies on (a) the
// homogeneous testbed and (b) a heterogeneous one where two hosts have
// slower disks (stragglers desynchronize the phase boundary):
//   1. default fixed pair (cfq, cfq),
//   2. coarse adaptive (Algorithm 1 + cluster-wide switch at the boundary),
//   3. fine-grained (per-host regime detection from live Dom0 I/O counters,
//      switches gated by the switch-cost predictor).
#include "bench_util.hpp"
#include "core/fine_grained.hpp"
#include "core/meta_scheduler.hpp"

using namespace iosim;
using namespace iosim::bench;

namespace {

struct Scenario {
  const char* name;
  std::vector<double> host_speed;
};

void run_scenario(metrics::Table& tab, const Scenario& sc) {
  ClusterConfig cfg = paper_cluster();
  cfg.host_disk_speed = sc.host_speed;
  const auto jc = workloads::make_job(workloads::stream_sort());

  // 1. default
  const double def = cluster::run_job_avg(cfg, jc, kSeeds).seconds;

  // 2. coarse adaptive (full pipeline)
  core::MetaSchedulerOptions opts;
  opts.plan = core::PhasePlan::for_job(jc, cfg.n_hosts * cfg.vms_per_host);
  core::MetaScheduler ms(cfg, jc, opts);
  const auto meta = ms.optimize();

  // 3. fine-grained
  int switches = 0;
  double fine = 0;
  {
    ClusterConfig fcfg = cfg;
    fcfg.pair = meta.solution.initial();  // boot like the coarse solution
    double sum = 0;
    for (int s = 0; s < kSeeds; ++s) {
      ClusterConfig c = fcfg;
      c.seed = sim::derive_run_seed(fcfg.seed, static_cast<std::uint64_t>(s));
      std::shared_ptr<core::FineGrainedController> ctl;
      const auto r = cluster::run_job(c, jc, [&ctl](cluster::Cluster& cl, mapred::Job& job) {
        ctl = core::FineGrainedController::attach(cl, job, core::FineGrainedPolicy{},
                                                  core::SwitchPredictor{2.0});
      });
      sum += r.seconds;
      switches = ctl->total_switches();
    }
    fine = sum / kSeeds;
  }

  tab.row({sc.name, metrics::Table::num(def, 1), metrics::Table::num(meta.adaptive_seconds, 1),
           metrics::Table::num(fine, 1),
           metrics::Table::pct(100.0 * (1 - meta.adaptive_seconds / def), 1),
           metrics::Table::pct(100.0 * (1 - fine / def), 1), std::to_string(switches)});
  const std::string key = sc.host_speed.empty() ? "homogeneous" : "heterogeneous";
  report().add(key + ".default_seconds", def);
  report().add(key + ".coarse_seconds", meta.adaptive_seconds);
  report().add(key + ".fine_seconds", fine);
}

}  // namespace

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Extension", "fine-grained per-host control vs coarse meta-scheduler");

  metrics::Table tab("sort, 4 hosts x 4 VMs (seconds)");
  tab.headers({"scenario", "default", "coarse adaptive", "fine-grained",
               "coarse vs def", "fine vs def", "fine switches"});

  run_scenario(tab, {"homogeneous", {}});
  run_scenario(tab, {"heterogeneous (2 slow hosts)", {1.0, 1.0, 0.8, 0.55}});
  tab.print();

  print_expectation(
      "the coarse method needs 16+ full profiling executions before it can "
      "act; the fine-grained controller reaches most of the same gain "
      "purely from online Dom0 counters (no profiling at all), and keeps "
      "working when straggler hosts desynchronize the global phase "
      "boundary — the scenario the paper names as motivating fine-grained "
      "control. Switches stay rare thanks to hysteresis and the cost-"
      "predictor gate.");
  return 0;
}
