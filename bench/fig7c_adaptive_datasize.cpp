// Fig. 7c — the adaptive scheduler under different data sizes.
//
// Sort on 4 hosts x 4 VMs, varying the data per data node: 256 MB, 512 MB,
// 1 GB, 2 GB. Paper: the improvement grows with the data size (more I/O to
// win on, and the phase split gets cleaner — see Table II).
#include "fig7_common.hpp"

using namespace iosim;
using namespace iosim::bench;

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Fig 7c", "adaptive pair scheduling vs data size (sort)");

  metrics::Table tab("adaptive vs baselines (seconds)");
  tab.headers(outcome_headers());

  std::vector<double> gains;
  for (std::int64_t mb : {256, 512, 1024, 2048}) {
    const auto jc = workloads::make_job(workloads::stream_sort(), mb * mapred::kMiB);
    const auto o = run_adaptive(paper_cluster(), jc);
    print_outcome_row(tab, std::to_string(mb) + " MB/node", o);
    gains.push_back(100.0 * (1 - o.adaptive / o.def));
  }
  tab.print();

  std::printf("\nadaptive gain vs default by data size:");
  for (double g : gains) std::printf(" %.1f%%", g);
  std::printf("\n");
  print_expectation(
      "the improvement increases with the data size: more I/O operations to "
      "optimize, and a larger wave count makes the two-phase detection "
      "cleaner (paper Fig. 7c / Table II).");
  return 0;
}
