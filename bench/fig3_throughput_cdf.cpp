// Fig. 3 — CDFs of the I/O throughput observed in the VMM (Dom0) and in
// the VMs of one physical machine while running sort, under (cfq, cfq)
// versus (anticipatory, deadline).
//
// Shapes: the anticipatory VMM achieves the higher maximum and mean Dom0
// throughput (paper: max 184 vs 159 MB/s, mean 52.3 vs 47.1 MB/s); the
// (anticipatory, deadline) VMs see higher mean per-VM throughput, while
// (cfq, cfq) spreads throughput more evenly across the VMs (better
// fairness).
#include "bench_util.hpp"
#include "metrics/latency_probe.hpp"
#include "metrics/throughput_probe.hpp"
#include "sim/stats.hpp"

using namespace iosim;
using namespace iosim::bench;

namespace {

struct CdfResult {
  sim::SampleSet dom0;
  std::vector<double> vm_mean_mb_s;
  double elapsed = 0;
  double read_p50_ms = 0;
  double read_p99_ms = 0;
};

CdfResult run_with(SchedulerPair pair) {
  ClusterConfig cfg = paper_cluster();
  cfg.pair = pair;
  const auto jc = workloads::make_job(workloads::stream_sort());

  CdfResult out;
  (void)cluster::run_job(cfg, jc, [&out](cluster::Cluster& cl, mapred::Job& job) {
    // Observe host 0: its Dom0 layer and each of its guests.
    auto dom0_probe = std::make_shared<metrics::ThroughputProbe>(cl.host(0).dom0_layer());
    auto lat_probe = std::make_shared<metrics::LatencyProbe>(cl.host(0).dom0_layer());
    auto vm_probes = std::make_shared<std::vector<std::unique_ptr<metrics::ThroughputProbe>>>();
    for (std::size_t v = 0; v < cl.host(0).vm_count(); ++v) {
      vm_probes->push_back(
          std::make_unique<metrics::ThroughputProbe>(cl.host(0).vm(v).layer()));
    }
    job.on_done = [&out, dom0_probe, lat_probe, vm_probes](sim::Time t) {
      out.elapsed = t.sec();
      out.dom0 = dom0_probe->windowed_mb_s(sim::Time::zero(), t, sim::Time::from_sec(1));
      out.read_p50_ms = lat_probe->read_p50();
      out.read_p99_ms = lat_probe->read_p99();
      for (const auto& p : *vm_probes) {
        out.vm_mean_mb_s.push_back(p->mean_bps() / 1e6);
      }
    };
  });
  return out;
}

void print_cdf_summary(const char* label, const CdfResult& r, const char* key) {
  std::printf("\n%s (job %.1fs)\n", label, r.elapsed);
  const std::string k(key);
  report().add(k + ".job_seconds", r.elapsed);
  report().add(k + ".dom0_mean_mb_s", r.dom0.mean());
  report().add(k + ".dom0_max_mb_s", r.dom0.max());
  report().add(k + ".vm_fairness", sim::jain_fairness(r.vm_mean_mb_s));
  report().add(k + ".read_p99_ms", r.read_p99_ms);
  metrics::Table tab("Dom0 I/O throughput CDF (1s windows, MB/s)");
  tab.headers({"p10", "p25", "p50", "p75", "p90", "max", "mean"});
  tab.row({metrics::Table::num(r.dom0.quantile(0.10), 1),
           metrics::Table::num(r.dom0.quantile(0.25), 1),
           metrics::Table::num(r.dom0.quantile(0.50), 1),
           metrics::Table::num(r.dom0.quantile(0.75), 1),
           metrics::Table::num(r.dom0.quantile(0.90), 1),
           metrics::Table::num(r.dom0.max(), 1), metrics::Table::num(r.dom0.mean(), 1)});
  tab.print();

  std::printf("per-VM mean throughput (MB/s):");
  double avg = 0;
  for (double v : r.vm_mean_mb_s) {
    std::printf(" %.2f", v);
    avg += v;
  }
  avg /= static_cast<double>(r.vm_mean_mb_s.size());
  std::printf("  | avg %.2f | Jain fairness %.3f\n", avg,
              sim::jain_fairness(r.vm_mean_mb_s));
  std::printf("Dom0 read latency: p50 %.1f ms, p99 %.1f ms\n", r.read_p50_ms,
              r.read_p99_ms);
}

}  // namespace

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Fig 3", "I/O throughput CDFs in VMM and VMs during sort (host 0)");

  const CdfResult cc = run_with(iosched::kDefaultPair);
  const CdfResult ad =
      run_with({SchedulerKind::kAnticipatory, SchedulerKind::kDeadline});

  print_cdf_summary("(cfq, cfq)", cc, "cc");
  print_cdf_summary("(anticipatory, deadline)", ad, "ad");

  std::printf("\nDom0 mean MB/s: (a,d) %.1f vs (c,c) %.1f  (paper: 52.3 vs 47.1)\n",
              ad.dom0.mean(), cc.dom0.mean());
  std::printf("Dom0 max  MB/s: (a,d) %.1f vs (c,c) %.1f  (paper: 184 vs 159)\n",
              ad.dom0.max(), cc.dom0.max());
  std::printf("VM fairness   : (c,c) %.3f vs (a,d) %.3f  (paper: cfq fairer)\n",
              sim::jain_fairness(cc.vm_mean_mb_s), sim::jain_fairness(ad.vm_mean_mb_s));
  print_expectation(
      "(anticipatory, deadline) achieves the better overall throughput while "
      "(cfq, cfq) achieves better fairness amongst the VMs.");
  return 0;
}
