// Shared driver for the Fig. 7 adaptive-scheduler benches: run the full
// meta-scheduler pipeline for one scenario and report default / best-single
// / adaptive, as the paper's bar groups do.
#pragma once

#include "bench_util.hpp"
#include "core/meta_scheduler.hpp"

namespace iosim::bench {

struct AdaptiveOutcome {
  double def = 0;
  double best_single = 0;
  iosched::SchedulerPair best_pair;
  double adaptive = 0;
  core::PairSchedule solution;
  int evals = 0;
};

inline AdaptiveOutcome run_adaptive(const ClusterConfig& cfg, const mapred::JobConf& jc,
                                    int seeds_per_eval = 1) {
  core::MetaSchedulerOptions opts;
  opts.plan = core::PhasePlan::for_job(jc, cfg.n_hosts * cfg.vms_per_host);
  opts.seeds_per_eval = seeds_per_eval;
  core::MetaScheduler ms(cfg, jc, opts);
  const core::MetaResult r = ms.optimize();
  AdaptiveOutcome out;
  out.def = r.default_seconds;
  out.best_single = r.best_single_seconds;
  out.best_pair = r.best_single;
  out.adaptive = r.adaptive_seconds;
  out.solution = r.solution;
  out.evals = r.heuristic_evaluations;
  return out;
}

inline void print_outcome_row(metrics::Table& tab, const std::string& label,
                              const AdaptiveOutcome& o) {
  tab.row({label, metrics::Table::num(o.def, 1),
           metrics::Table::num(o.best_single, 1) + " " + o.best_pair.letters(),
           metrics::Table::num(o.adaptive, 1),
           metrics::Table::pct(100.0 * (1 - o.adaptive / o.def), 1),
           metrics::Table::pct(100.0 * (1 - o.adaptive / o.best_single), 1),
           o.solution.to_string()});
  report().add(label + ".default_seconds", o.def);
  report().add(label + ".best_single_seconds", o.best_single);
  report().add(label + ".adaptive_seconds", o.adaptive);
  report().add(label + ".gain_vs_default_pct", 100.0 * (1 - o.adaptive / o.def));
}

inline std::vector<std::string> outcome_headers() {
  return {"scenario", "default (cc)", "best single", "adaptive",
          "vs default", "vs best", "solution"};
}

}  // namespace iosim::bench
