// Fig. 7b — the adaptive scheduler under different VM consolidation.
//
// Sort, 512 MB per data node, varying VMs per physical host (2 / 4 / 6).
// Paper: best-single improves on the default by 4% / 9% / 12% and the
// adaptive solution by 11% / 15% / 22% — the gain grows with consolidation.
#include "fig7_common.hpp"

using namespace iosim;
using namespace iosim::bench;

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Fig 7b", "adaptive pair scheduling vs VM consolidation (sort)");

  metrics::Table tab("adaptive vs baselines (seconds)");
  tab.headers(outcome_headers());

  double gains[3] = {0, 0, 0};
  int i = 0;
  for (int vms : {2, 4, 6}) {
    ClusterConfig cfg = paper_cluster();
    cfg.vms_per_host = vms;
    const auto jc = workloads::make_job(workloads::stream_sort());
    const auto o = run_adaptive(cfg, jc);
    print_outcome_row(tab, std::to_string(vms) + " VMs/host", o);
    gains[i++] = 100.0 * (1 - o.adaptive / o.def);
  }
  tab.print();

  std::printf("\nadaptive gain vs default: %.1f%% (2 VMs) -> %.1f%% (4) -> %.1f%% (6)\n",
              gains[0], gains[1], gains[2]);
  print_expectation(
      "the improvement grows with the consolidation degree (paper: 11% -> "
      "15% -> 22%), because disk interference — and so the scheduling "
      "headroom — grows with the number of VMs sharing the spindle.");
  return 0;
}
