// Table I — performance score (seconds) of the 16 disk pairs' schedulers
// with the sort benchmark, average of 3 runs.
//
// Paper's measured matrix (rows = VM scheduler, cols = VMM scheduler):
//                 cfq  deadline  anticipatory  noop
//   cfq           402    436        375         962
//   deadline      405    415        365         927
//   anticipatory  399    516        369         987
//   noop          413    418        370         915
//
// Shapes: anticipatory is the best VMM column, noop the worst by >2x, the
// default (cfq, cfq) is not optimal anywhere.
#include "bench_util.hpp"

using namespace iosim;
using namespace iosim::bench;

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Table I", "sort benchmark, all 16 pairs (seconds, 3-seed average)");

  const auto jc = workloads::make_job(workloads::stream_sort());
  double t[4][4];
  sweep_pairs(paper_cluster(), jc, t);
  print_pair_matrix("measured", t, "measured");

  static const double paper[4][4] = {{402, 436, 375, 962},
                                     {405, 415, 365, 927},
                                     {399, 516, 369, 987},
                                     {413, 418, 370, 915}};
  print_pair_matrix("paper (for reference)", paper);

  const MatrixSummary s = summarize(t);
  report().add("default_seconds", s.def);
  report().add("best_seconds", s.best);
  report().add("gain_vs_default_pct", 100.0 * (1 - s.best / s.def));
  report().add("noop_col_avg_ratio", s.noop_col_avg / s.def);
  metrics::Table cmp("shape comparison");
  cmp.headers({"metric", "paper", "measured"});
  cmp.row({"default (cfq,cfq) seconds", "402", metrics::Table::num(s.def, 1)});
  cmp.row({"best pair", "(anticipatory, deadline)", s.best_pair.to_string()});
  cmp.row({"best vs default", "9.2%", metrics::Table::pct(100.0 * (1 - s.best / s.def), 1)});
  cmp.row({"noop-VMM column avg / default", "2.35x",
           metrics::Table::num(s.noop_col_avg / s.def, 2) + "x"});
  cmp.row({"VMM col avgs (c/d/a)", "405 / 446 / 370",
           metrics::Table::num(s.col_avg[0], 0) + " / " + metrics::Table::num(s.col_avg[1], 0) +
               " / " + metrics::Table::num(s.col_avg[2], 0)});
  cmp.row({"spread excl. noop-VMM", "~10%",
           metrics::Table::pct(100.0 * (s.worst_ex_noop - s.best_ex_noop) / s.worst_ex_noop, 1)});
  cmp.print();

  print_expectation(
      "anticipatory wins the VMM dimension, noop loses it by a large factor, "
      "and the guest dimension is second-order. The absolute seconds are "
      "calibrated to the same ballpark as the paper's testbed.");
  return 0;
}
