// Fig. 8 — the phases of the MapReduce job for the different benchmarks
// (and, for sort, different data sizes).
//
// Shapes: wordcount's Ph1 (maps) dominates its runtime; wordcount w/o
// combiner has the two phases nearly equal; sort's phases become cleaner
// and more balanced as the data grows.
#include "bench_util.hpp"

using namespace iosim;
using namespace iosim::bench;

namespace {

void add_row(metrics::Table& tab, const std::string& label, const mapred::JobConf& jc) {
  const auto r = cluster::run_job_avg(paper_cluster(), jc, kSeeds);
  const double total = r.seconds;
  tab.row({label, metrics::Table::num(r.ph1_seconds, 1),
           metrics::Table::num(r.ph2_seconds, 1), metrics::Table::num(r.ph3_seconds, 1),
           metrics::Table::num(total, 1),
           metrics::Table::pct(100.0 * r.ph1_seconds / total, 0),
           metrics::Table::pct(100.0 * (r.ph2_seconds + r.ph3_seconds) / total, 0)});
  report().add(label + ".ph1_seconds", r.ph1_seconds);
  report().add(label + ".ph2_seconds", r.ph2_seconds);
  report().add(label + ".ph3_seconds", r.ph3_seconds);
  report().add(label + ".total_seconds", total);
}

}  // namespace

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Fig 8", "phase durations per benchmark (default pair)");

  metrics::Table tab("phases (seconds; Ph1 = maps, Ph2 = shuffle tail, Ph3 = reduce)");
  tab.headers({"benchmark", "ph1", "ph2", "ph3", "total", "ph1 share", "ph2+3 share"});

  add_row(tab, "wordcount", workloads::make_job(workloads::wordcount()));
  add_row(tab, "wordcount w/o combiner",
         workloads::make_job(workloads::wordcount_no_combiner()));
  for (std::int64_t mb : {256, 512, 1024, 2048}) {
    add_row(tab, "sort " + std::to_string(mb) + "MB",
           workloads::make_job(workloads::stream_sort(), mb * mapred::kMiB));
  }
  tab.print();

  print_expectation(
      "wordcount is dominated by Ph1 (CPU-bound maps; the reduce side is "
      "tiny); wordcount w/o combiner splits more evenly; sort's phase "
      "boundary sharpens (shorter Ph2 share) as the data size grows.");
  return 0;
}
