// Extension — failure recovery under the PR's acceptance scenario: a sort
// job rides out a transient-error burst, one fail-slow disk, and an
// elevator-switch command that never succeeds. The job must complete with
// the same logical output as the fault-free run, paying only wall-clock
// time for the retries and replica failovers. A faults-off row is printed
// first so the fault machinery can be shown to cost nothing when disarmed.
#include <memory>

#include "bench_util.hpp"
#include "core/adaptive_controller.hpp"
#include "fault/fault_plan.hpp"

using namespace iosim;
using namespace iosim::bench;

namespace {

struct Outcome {
  cluster::RunResult r;
  int switches = 0;
  int switch_failures = 0;
};

Outcome run(const fault::FaultPlan& plan, bool speculate) {
  ClusterConfig cfg = paper_cluster();
  cfg.faults = plan;
  auto jc = workloads::make_job(workloads::stream_sort(), 256 * mapred::kMiB);
  jc.speculative_execution = speculate;

  core::PairSchedule sched;
  sched.phases = {cfg.pair,
                  iosched::SchedulerPair{SchedulerKind::kDeadline,
                                         SchedulerKind::kDeadline}};
  Outcome o;
  std::shared_ptr<core::AdaptiveController> ctl;
  o.r = cluster::run_job(cfg, jc, [&](cluster::Cluster& cl, mapred::Job& job) {
    ctl = core::AdaptiveController::attach(cl, job, sched, core::PhasePlan{true});
  });
  o.switches = ctl->switches_performed();
  o.switch_failures = ctl->switch_failures();
  return o;
}

std::string status(const cluster::RunResult& r) {
  return r.failed ? "FAILED: " + r.failure : "completed";
}

}  // namespace

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Extension",
               "failure recovery: retry, HDFS failover, speculation");

  std::string err;
  const auto plan = fault::FaultPlan::parse(
      "transient:host=0,p=0.02,from=1,until=20;"
      "failslow:host=1,factor=3,from=5,until=40;"
      "switchfail:p=1",
      &err);
  if (!plan) {
    std::fprintf(stderr, "bad fault plan: %s\n", err.c_str());
    return 1;
  }

  const Outcome clean = run(fault::FaultPlan{}, /*speculate=*/false);
  const Outcome faulted = run(*plan, /*speculate=*/false);
  const Outcome spec = run(*plan, /*speculate=*/true);

  metrics::Table tab("sort, 256 MiB/VM, phase-adaptive (boot pair -> deadline)");
  tab.headers({"scenario", "status", "seconds", "task retries", "hdfs failovers",
               "speculated", "switches ok/failed"});
  auto row = [&](const char* name, const char* key, const Outcome& o) {
    const auto& s = o.r.stats;
    tab.row({name, status(o.r), metrics::Table::num(o.r.seconds, 1),
             std::to_string(s.map_attempts_failed + s.reduce_attempts_failed),
             std::to_string(s.hdfs_failovers), std::to_string(s.maps_speculated),
             std::to_string(o.switches) + "/" + std::to_string(o.switch_failures)});
    report().add(std::string(key) + ".seconds", o.r.seconds);
    report().add(std::string(key) + ".retries",
                 static_cast<double>(s.map_attempts_failed + s.reduce_attempts_failed));
  };
  row("faults off", "clean", clean);
  row("burst + fail-slow + dead switch", "faulted", faulted);
  row("  + speculative execution", "faulted_spec", spec);
  tab.print();

  metrics::Table chk("correctness: faulted output vs fault-free output");
  chk.headers({"metric", "faults off", "faulted", "faulted+spec"});
  chk.row({"output bytes", std::to_string(clean.r.stats.output_bytes),
           std::to_string(faulted.r.stats.output_bytes),
           std::to_string(spec.r.stats.output_bytes)});
  chk.row({"maps / reduces",
           std::to_string(clean.r.stats.maps_total) + " / " +
               std::to_string(clean.r.stats.reduces_total),
           std::to_string(faulted.r.stats.maps_total) + " / " +
               std::to_string(faulted.r.stats.reduces_total),
           std::to_string(spec.r.stats.maps_total) + " / " +
               std::to_string(spec.r.stats.reduces_total)});
  chk.print();

  print_expectation(
      "the faults-off row reproduces the plain phase-adaptive numbers (the "
      "disarmed fault layer constructs no injector and perturbs nothing); "
      "the faulted rows complete with identical output bytes — transient "
      "errors are absorbed by task retry and replica failover, the fail-slow "
      "disk by re-execution (and faster with speculation), and the dead "
      "switch leaves the boot pair installed after a bounded retry/backoff "
      "ladder, so the job merely loses the adaptive gain instead of hanging.");
  return (clean.r.failed || faulted.r.failed || spec.r.failed) ? 1 : 0;
}
