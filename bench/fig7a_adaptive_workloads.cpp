// Fig. 7a — the adaptive disk I/O scheduler across workloads.
//
// 4 hosts x 4 VMs, 512 MB per data node; the meta-scheduler pipeline runs
// end to end per workload (16 profiling runs + Algorithm 1 + final run).
//
// Paper improvements over (default, best-single): wordcount (6.5%, 2%),
// wordcount w/o combiner (13%, 7%), sort (16-25%, 7-10%).
#include "fig7_common.hpp"

using namespace iosim;
using namespace iosim::bench;

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Fig 7a", "adaptive pair scheduling across workloads");

  metrics::Table tab("adaptive vs baselines (seconds)");
  tab.headers(outcome_headers());

  const struct {
    const char* label;
    mapred::WorkloadModel model;
  } cases[] = {
      {"wordcount", workloads::wordcount()},
      {"wordcount w/o combiner", workloads::wordcount_no_combiner()},
      {"sort", workloads::stream_sort()},
  };
  for (const auto& c : cases) {
    const auto jc = workloads::make_job(c.model);
    print_outcome_row(tab, c.label, run_adaptive(paper_cluster(), jc));
  }
  tab.print();

  print_expectation(
      "the adaptive solution beats both the default pair and the best single "
      "pair for every workload; the gain is smallest for the CPU-bound "
      "wordcount and largest for sort (paper: 6.5%/2%, 13%/7%, up to "
      "25%/10%).");
  return 0;
}
