// micro_sim — events/sec microbenchmarks for the discrete-event hot path.
//
// Six probes, lowest layer first:
//   schedule-fire   — self-rescheduling event chains through the heap
//   schedule-cancel — schedule + cancel churn (anticipatory-timeout pattern)
//   bio-roundtrip   — submit -> elevator -> disk -> completion round trips
//   domu-roundtrip  — the same through the whole split-driver path
//                     (guest elevator -> blkfront ring -> Dom0 elevator ->
//                     disk), once with attribution off and once with an
//                     AttributionSession installed: the off/on delta is the
//                     full cost of the obs stamping hooks, and the off
//                     number guards the disabled path staying a
//                     branch-hinted pointer check
//   arm-select      — online meta-scheduler decision cost: one UCB pull
//                     (candidate scoring over the exploration budget) plus
//                     one reward update, the work the bandit adds to every
//                     cluster-phase change and 5 s tick
//   fig2-point      — one seeded wordcount run of the Fig. 2 testbed
//
// Each probe runs `--reps` times (default 3) and reports the best rep: the
// minimum wall time is the least-noise estimate of the code's true cost,
// which is what a CI regression gate needs. Metrics land in the standard
// BENCH JSON via `--json FILE` (see bench_util.hpp); tools/bench_compare
// gates them against bench/baselines/micro_sim.json in the perf-smoke CI
// job. Metric naming contract: `*_per_sec` is higher-is-better,
// `*_seconds` lower-is-better — bench_compare keys its direction off the
// suffix.
#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "blk/block_layer.hpp"
#include "core/online_scheduler.hpp"
#include "blk/disk_device.hpp"
#include "cluster/runner.hpp"
#include "obs/attribution.hpp"
#include "sim/simulator.hpp"
#include "virt/physical_host.hpp"

using namespace iosim;
using namespace iosim::sim::literals;

namespace {

double now_sec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// splitmix64 step — cheap deterministic jitter for event spacing.
std::uint64_t mix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// --- schedule-fire ---------------------------------------------------------
//
// kChains independent event chains, each firing kFiresPerChain times; every
// callback schedules its successor a pseudorandom 1..64 us ahead. The heap
// holds ~kChains events at all times, which matches the simulator's steady
// state in a cluster run (one in-flight timer per disk, per task, per flow).
// Captures are deliberately three words wide — the typical at()/after()
// call-site shape (owner pointer + a payload or two).

struct FireState {
  sim::Simulator* s;
  std::uint64_t remaining;  // fires left across all chains
  std::uint64_t rng;
  std::uint64_t fired = 0;
};

void fire_step(FireState* st, std::uint64_t salt);

void schedule_chain(FireState* st, std::uint64_t salt) {
  const sim::Time dt = sim::Time::from_us(1 + static_cast<std::int64_t>(salt % 64));
  std::uint64_t pad = salt ^ 0x5bd1e995;  // widen the capture to 3 words
  st->s->after(dt, [st, salt, pad] {
    (void)pad;
    fire_step(st, salt);
  });
}

void fire_step(FireState* st, std::uint64_t salt) {
  ++st->fired;
  if (st->remaining == 0) return;
  --st->remaining;
  schedule_chain(st, mix(st->rng) ^ salt);
}

double bench_schedule_fire(std::uint64_t total_events, int chains) {
  sim::Simulator s;
  FireState st{&s, total_events - static_cast<std::uint64_t>(chains), 42, 0};
  const double t0 = now_sec();
  for (int c = 0; c < chains; ++c) schedule_chain(&st, mix(st.rng));
  s.run();
  const double wall = now_sec() - t0;
  if (st.fired != total_events) {
    std::fprintf(stderr, "schedule-fire: fired %" PRIu64 " != %" PRIu64 "\n",
                 st.fired, total_events);
  }
  return wall;
}

// --- schedule-cancel -------------------------------------------------------
//
// Rounds of: schedule kBatch far-future timeouts, then cancel them in a
// shuffled order — the anticipatory-scheduler pattern (arm an idle timeout,
// almost always cancel it when the next request arrives). One live "clock"
// event per round advances simulated time so the far-future entries never
// fire. The old simulator paid an unordered_set insert per cancel plus a
// tombstone pop per entry; this probe is the regression guard for that.

double bench_schedule_cancel(std::uint64_t pairs, int batch) {
  sim::Simulator s;
  std::uint64_t rng = 7;
  std::vector<sim::EventId> ids(static_cast<std::size_t>(batch));
  std::uint64_t done = 0;
  std::uint64_t fired = 0;
  const double t0 = now_sec();
  while (done < pairs) {
    for (int i = 0; i < batch; ++i) {
      ids[static_cast<std::size_t>(i)] =
          s.after(sim::Time::from_sec(3600) +
                      sim::Time::from_us(static_cast<std::int64_t>(mix(rng) % 4096)),
                  [&fired] { ++fired; });
    }
    // Fisher-Yates with the bench rng: cancellation order is adversarial
    // for any structure that likes FIFO cancels.
    for (int i = batch - 1; i > 0; --i) {
      const int j = static_cast<int>(mix(rng) % static_cast<std::uint64_t>(i + 1));
      std::swap(ids[static_cast<std::size_t>(i)], ids[static_cast<std::size_t>(j)]);
    }
    for (int i = 0; i < batch; ++i) s.cancel(ids[static_cast<std::size_t>(i)]);
    done += static_cast<std::uint64_t>(batch);
    s.after(1_us, [] {});  // advance the clock past the round
    s.run();
  }
  const double wall = now_sec() - t0;
  if (fired != 0) std::fprintf(stderr, "schedule-cancel: %" PRIu64 " leaked fires\n", fired);
  return wall;
}

// --- bio-roundtrip ---------------------------------------------------------
//
// One noop elevator over one disk, kDepth bios outstanding; every completion
// submits the next bio (7/8 sequential, 1/8 a random jump — enough seeks to
// keep the disk model honest without drowning the block layer in them).

struct BioState {
  blk::BlockLayer* layer;
  std::uint64_t remaining;
  std::uint64_t completed = 0;
  std::uint64_t rng = 99;
  disk::Lba next_lba = 0;
};

void submit_next(BioState* st) {
  if (st->remaining == 0) return;
  --st->remaining;
  const std::uint64_t r = mix(st->rng);
  if ((r & 7u) == 0) st->next_lba = static_cast<disk::Lba>(r % 1'000'000'000);
  blk::Bio bio;
  bio.lba = st->next_lba;
  bio.sectors = 256;  // 128 KB, an HDFS-ish chunk
  st->next_lba += bio.sectors;
  bio.dir = (r & 8u) ? iosched::Dir::kWrite : iosched::Dir::kRead;
  bio.ctx = r & 3u;
  bio.on_complete = [st](sim::Time, iosched::IoStatus) {
    ++st->completed;
    submit_next(st);
  };
  st->layer->submit(std::move(bio));
}

double bench_bio_roundtrip(std::uint64_t total_bios, int depth) {
  sim::Simulator s;
  blk::DiskDevice dev(s, disk::DiskParams{}, /*seed=*/11);
  blk::BlockLayerConfig cfg;
  cfg.scheduler = iosched::SchedulerKind::kNoop;
  cfg.name = "micro/blk";
  blk::BlockLayer layer(s, dev, cfg);
  BioState st{&layer, total_bios};
  const double t0 = now_sec();
  for (int i = 0; i < depth && st.remaining > 0; ++i) submit_next(&st);
  s.run();
  const double wall = now_sec() - t0;
  if (st.completed != total_bios) {
    std::fprintf(stderr, "bio-roundtrip: completed %" PRIu64 " != %" PRIu64 "\n",
                 st.completed, total_bios);
  }
  return wall;
}

// --- domu-roundtrip --------------------------------------------------------
//
// bio-roundtrip through the whole split-driver path: one host, one VM, noop
// elevators at both levels, kDepth guest I/Os outstanding, each completion
// submitting the next (same 7/8-sequential stream as bio-roundtrip). Run
// with `attr_on` false this is the baseline cost of the DomU->Dom0 path;
// with true, every request additionally pays the six attribution stamps and
// the completion-time sketch fold. The off/on pair is the perf contract of
// src/obs/: off must track the baseline (one hinted pointer check per
// site), on should cost a few percent, not a multiple.

struct DomuState {
  virt::DomU* vm;
  std::uint64_t remaining;
  std::uint64_t completed = 0;
  std::uint64_t rng = 99;
  disk::Lba next_lba = 0;
};

void submit_next_domu(DomuState* st) {
  if (st->remaining == 0) return;
  --st->remaining;
  const std::uint64_t r = mix(st->rng);
  const std::int64_t sectors = 256;
  if ((r & 7u) == 0) {
    st->next_lba = static_cast<disk::Lba>(r % static_cast<std::uint64_t>(
                                                  st->vm->image_sectors() - sectors));
  }
  if (st->next_lba + sectors > st->vm->image_sectors()) st->next_lba = 0;
  const disk::Lba lba = st->next_lba;
  st->next_lba += sectors;
  st->vm->submit_io(r & 3u, lba, sectors,
                    (r & 8u) ? iosched::Dir::kWrite : iosched::Dir::kRead,
                    /*sync=*/(r & 8u) == 0,
                    [st](sim::Time, iosched::IoStatus) {
                      ++st->completed;
                      submit_next_domu(st);
                    });
}

double bench_domu_roundtrip(std::uint64_t total_bios, int depth, bool attr_on) {
  sim::Simulator s;
  virt::HostConfig hc;
  hc.dom0_blk.scheduler = iosched::SchedulerKind::kNoop;
  hc.domu.guest_blk.scheduler = iosched::SchedulerKind::kNoop;
  virt::PhysicalHost host(s, hc, /*host_id=*/0, /*vm_ctx_base=*/0, /*seed=*/11);
  virt::DomU& vm = host.add_vm();
  std::optional<obs::AttributionSession> obs;
  if (attr_on) obs.emplace();
  DomuState st{&vm, total_bios};
  const double t0 = now_sec();
  for (int i = 0; i < depth && st.remaining > 0; ++i) submit_next_domu(&st);
  s.run();
  const double wall = now_sec() - t0;
  if (st.completed != total_bios) {
    std::fprintf(stderr, "domu-roundtrip: completed %" PRIu64 " != %" PRIu64 "\n",
                 st.completed, total_bios);
  }
  if (attr_on && obs->attribution().records_completed() != total_bios) {
    std::fprintf(stderr, "domu-roundtrip: attributed %" PRIu64 " != %" PRIu64 "\n",
                 obs->attribution().records_completed(), total_bios);
  }
  return wall;
}

// --- arm-select ------------------------------------------------------------
//
// The bandit's per-decision cost in isolation: select() over the default
// exploration budget followed by a reward() update, cycling the phase kinds
// and feeding back the chosen arm (so the estimate tables stay warm and the
// scored candidate set is realistic, not degenerate). No simulator — this
// measures exactly what OnlineScheduler::pull + close_window add to a run.

double bench_arm_select(std::uint64_t n) {
  core::OnlineConfig cfg;
  cfg.kind = tenancy::MetaPolicy::kUcb;
  cfg.seed = 42;
  const auto policy = core::make_online_policy(cfg);
  std::array<double, iosched::kNumSchedulerPairs> penalty{};
  for (std::size_t a = 0; a < penalty.size(); ++a) {
    penalty[a] = 0.1 * static_cast<double>(a);
  }
  int arm = 0;
  std::uint64_t rng = 7;
  const double t0 = now_sec();
  for (std::uint64_t i = 0; i < n; ++i) {
    const int phase = static_cast<int>(i % core::kPhaseKinds);
    arm = policy->select(phase, arm, penalty);
    policy->reward(phase, arm, 40.0 + static_cast<double>(mix(rng) % 32));
  }
  const double wall = now_sec() - t0;
  // Keep the final table state observable so the loop cannot be discarded.
  if (policy->stats(0, arm).pulls < 0.0) std::fprintf(stderr, "impossible\n");
  return wall;
}

// --- fig2-point ------------------------------------------------------------
//
// One seeded (cfq, cfq) wordcount run on the paper testbed — the end-to-end
// cost of one Fig. 2 matrix cell at the paper's full 512 MB per VM, i.e.
// what iosim-sweep pays per scenario point.

double bench_fig2_point() {
  cluster::ClusterConfig cfg = bench::paper_cluster();
  cfg.seed = 1;
  const auto jc = workloads::make_job(workloads::wordcount());
  const double t0 = now_sec();
  const auto rr = cluster::run_job(cfg, jc);
  const double wall = now_sec() - t0;
  if (rr.failed) std::fprintf(stderr, "fig2-point: run failed: %s\n", rr.failure.c_str());
  return wall;
}

double best_of(int reps, double (*fn)()) {
  double best = fn();
  for (int i = 1; i < reps; ++i) best = std::min(best, fn());
  return best;
}

template <class Fn>
double best_of_fn(int reps, Fn fn) {
  double best = fn();
  for (int i = 1; i < reps; ++i) best = std::min(best, fn());
  return best;
}

void row(const char* name, double per_sec, double wall) {
  std::printf("  %-18s %14.0f /sec   best wall %8.3f s\n", name, per_sec, wall);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Telemetry telemetry(argc, argv);
  int reps = 3;
  std::uint64_t scale = 1;  // divide workloads by this (for test smoke runs)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) reps = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--quick") == 0) scale = 16;
  }
  if (reps < 1) reps = 1;

  bench::print_header("micro_sim", "event-loop hot-path microbenchmarks");
  std::printf("reps: %d (reporting the best), scale divisor: %" PRIu64 "\n\n", reps,
              scale);

  const std::uint64_t n_fire = 2'000'000 / scale;
  const double fire_wall =
      best_of_fn(reps, [&] { return bench_schedule_fire(n_fire, 4096); });
  const double fire_rate = static_cast<double>(n_fire) / fire_wall;
  row("schedule-fire", fire_rate, fire_wall);
  bench::report().add("schedule_fire.events_per_sec", fire_rate);
  bench::report().add("schedule_fire.wall_seconds", fire_wall);

  const std::uint64_t n_cancel = 1'000'000 / scale;
  const double cancel_wall =
      best_of_fn(reps, [&] { return bench_schedule_cancel(n_cancel, 4096); });
  const double cancel_rate = static_cast<double>(n_cancel) / cancel_wall;
  row("schedule-cancel", cancel_rate, cancel_wall);
  bench::report().add("schedule_cancel.pairs_per_sec", cancel_rate);
  bench::report().add("schedule_cancel.wall_seconds", cancel_wall);

  const std::uint64_t n_bio = 400'000 / scale;
  const double bio_wall =
      best_of_fn(reps, [&] { return bench_bio_roundtrip(n_bio, 64); });
  const double bio_rate = static_cast<double>(n_bio) / bio_wall;
  row("bio-roundtrip", bio_rate, bio_wall);
  bench::report().add("bio_roundtrip.bios_per_sec", bio_rate);
  bench::report().add("bio_roundtrip.wall_seconds", bio_wall);

  const std::uint64_t n_domu = 200'000 / scale;
  const double domu_off_wall =
      best_of_fn(reps, [&] { return bench_domu_roundtrip(n_domu, 32, false); });
  const double domu_off_rate = static_cast<double>(n_domu) / domu_off_wall;
  row("domu-rt (attr off)", domu_off_rate, domu_off_wall);
  bench::report().add("domu_roundtrip_attr_off.bios_per_sec", domu_off_rate);
  bench::report().add("domu_roundtrip_attr_off.wall_seconds", domu_off_wall);

  const double domu_on_wall =
      best_of_fn(reps, [&] { return bench_domu_roundtrip(n_domu, 32, true); });
  const double domu_on_rate = static_cast<double>(n_domu) / domu_on_wall;
  row("domu-rt (attr on)", domu_on_rate, domu_on_wall);
  bench::report().add("domu_roundtrip_attr_on.bios_per_sec", domu_on_rate);
  bench::report().add("domu_roundtrip_attr_on.wall_seconds", domu_on_wall);
  std::printf("  attribution overhead: %+.1f%% wall\n",
              100.0 * (domu_on_wall - domu_off_wall) / domu_off_wall);

  const std::uint64_t n_arm = 1'000'000 / scale;
  const double arm_wall = best_of_fn(reps, [&] { return bench_arm_select(n_arm); });
  const double arm_rate = static_cast<double>(n_arm) / arm_wall;
  row("arm-select", arm_rate, arm_wall);
  bench::report().add("arm_select.decisions_per_sec", arm_rate);
  bench::report().add("arm_select.wall_seconds", arm_wall);

  const double fig2_wall = best_of(reps, bench_fig2_point);
  std::printf("  %-18s %14s        best wall %8.3f s\n", "fig2-point", "-", fig2_wall);
  bench::report().add("fig2_point.wall_seconds", fig2_wall);

  std::printf("\n");
  return 0;
}
