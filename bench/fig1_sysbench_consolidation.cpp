// Fig. 1 — sysbench seqwr elapsed time under VM consolidation.
//
// Paper setup: one process per VM sequentially writes 1 GB across 16 files
// (sysbench fileio seqwr), with (a) 1 VM, (b) 2 VMs, (c) 3 VMs on one
// physical machine, for all 16 (VMM, VM) scheduler pairs.
//
// Shapes to reproduce: elapsed time grows superlinearly with consolidation
// (paper: ~3.5x at 2 VMs, ~8.5x at 3 VMs vs 1 VM, on average) and the pair
// choice moves the elapsed time by ~16% at high consolidation.
#include "bench_util.hpp"
#include "workloads/microbench.hpp"

using namespace iosim;
using namespace iosim::bench;

namespace {

double run_sysbench(int vms, SchedulerPair pair, std::uint64_t seed) {
  sim::Simulator simr;
  virt::HostConfig hc;
  hc.dom0_blk.scheduler = pair.vmm;
  hc.domu.guest_blk.scheduler = pair.guest;
  virt::PhysicalHost host(simr, hc, 0, 0, seed);
  for (int v = 0; v < vms; ++v) host.add_vm();
  workloads::SeqWriteParams p;  // 1 GB, 16 files, sysbench defaults
  return workloads::run_seq_writers(simr, host, p).elapsed.sec();
}

double run_avg(int vms, SchedulerPair pair) {
  double s = 0;
  for (int i = 0; i < kSeeds; ++i) {
    s += run_sysbench(vms, pair, sim::derive_run_seed(11, static_cast<std::uint64_t>(i)));
  }
  return s / kSeeds;
}

}  // namespace

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Fig 1", "sysbench seqwr (1 GB to 16 files per VM) vs consolidation");

  double mean[4] = {0, 0, 0, 0};  // per VM count (index = vms)
  for (int vms = 1; vms <= 3; ++vms) {
    metrics::Table tab(("(" + std::string(1, static_cast<char>('a' + vms - 1)) +
                        ") " + std::to_string(vms) + " VM(s)")
                           .c_str());
    tab.headers({"VM \\ VMM", "cfq", "deadline", "anticipatory", "noop"});
    double lo = 1e300, hi = 0, sum = 0;
    for (int g = 0; g < 4; ++g) {
      std::vector<std::string> row{iosched::to_string(kPaperOrder[g])};
      for (int v = 0; v < 4; ++v) {
        const double e = run_avg(vms, {kPaperOrder[v], kPaperOrder[g]});
        row.push_back(metrics::Table::num(e, 1));
        lo = std::min(lo, e);
        hi = std::max(hi, e);
        sum += e;
      }
      tab.row(row);
    }
    tab.print();
    mean[vms] = sum / 16.0;
    std::printf("mean %.1fs | pair spread %.1f%%\n", mean[vms], 100.0 * (hi - lo) / hi);
    const std::string key = "vms" + std::to_string(vms);
    report().add(key + ".mean_seconds", mean[vms]);
    report().add(key + ".spread_pct", 100.0 * (hi - lo) / hi);
  }

  std::printf("\nconsolidation slowdown (mean over pairs): 2 VMs = x%.1f, 3 VMs = x%.1f\n",
              mean[2] / mean[1], mean[3] / mean[1]);
  report().add("slowdown_2vms", mean[2] / mean[1]);
  report().add("slowdown_3vms", mean[3] / mean[1]);
  print_expectation(
      "elapsed time rises superlinearly with VM count (paper: x3.5 at 2 VMs, "
      "x8.5 at 3 VMs) and the scheduler pair moves elapsed time by ~16% "
      "on average.");
  return 0;
}
