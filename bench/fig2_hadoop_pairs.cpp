// Fig. 2 — Hadoop execution time for all 16 pairs, per benchmark:
// (a) wordcount, (b) wordcount w/o combiner, (c) sort.
//
// Shapes to reproduce: (cfq, cfq) is never optimal; the spread is small for
// wordcount (paper: ~1.5%), large for wc-no-combiner and sort once noop is
// included (29% / 45%), moderate excluding it (4.5% / 10%); the best pairs
// are (anticipatory, cfq) for wordcount and anticipatory-VMM pairs for sort.
#include "bench_util.hpp"

using namespace iosim;
using namespace iosim::bench;

namespace {

void run_benchmark(const char* label, const mapred::WorkloadModel& w,
                   const char* expectation) {
  const auto jc = workloads::make_job(w);
  double t[4][4];
  sweep_pairs(paper_cluster(), jc, t);
  print_pair_matrix(label, t, w.name.c_str());
  const MatrixSummary s = summarize(t);
  report().add(w.name + ".default_seconds", s.def);
  report().add(w.name + ".best_seconds", s.best);
  std::printf(
      "default (cfq,cfq) %.1fs | best %s %.1fs (%.1f%% better) | spread "
      "%.1f%% (excl. noop-VMM %.1f%%)\n",
      s.def, s.best_pair.to_string().c_str(), s.best,
      100.0 * (1.0 - s.best / s.def),
      100.0 * (1.0 - s.best / std::max(s.noop_col_avg, s.worst_ex_noop)),
      100.0 * (s.worst_ex_noop - s.best_ex_noop) / s.worst_ex_noop);
  print_expectation(expectation);
}

}  // namespace

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Fig 2", "MapReduce execution time for the 16 disk pairs' schedulers");
  std::printf("testbed: 4 hosts x 4 VMs, 512 MB per data node, %d-seed averages\n", kSeeds);

  run_benchmark("(a) wordcount (with combiner)", workloads::wordcount(),
                "tiny spread (~1.5%): the combiner keeps the job CPU-bound; "
                "(anticipatory, cfq) best by a few percent.");
  run_benchmark("(b) wordcount w/o combiner", workloads::wordcount_no_combiner(),
                "map output ~1.7x input makes the job disk-heavy; best pairs "
                "beat the default by ~6%; noop at the VMM is far worse.");
  run_benchmark("(c) sort", workloads::stream_sort(),
                "heavy disk traffic in map and reduce; anticipatory-VMM pairs "
                "best (~9% over default), noop-VMM catastrophic (paper ~2.3x).");
  return 0;
}
