// Extension — the paper's Pig scenario (Section IV-C): a chain of
// MapReduce jobs makes the assignment space S^P explode (16^6 ≈ 1.7e7 for
// a 3-job chain), which is the paper's argument for the P x S heuristic
// over brute force. This bench runs Algorithm 1 over a heterogeneous
// 3-job chain (wordcount -> sort -> wordcount w/o combiner) and reports
// the search cost and the gain.
#include "bench_util.hpp"
#include "cluster/chain_runner.hpp"
#include "core/meta_scheduler.hpp"

using namespace iosim;
using namespace iosim::bench;

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Extension", "Algorithm 1 over a Pig-style 3-job chain (6 phases)");

  const std::vector<mapred::JobConf> confs = {
      workloads::make_job(workloads::wordcount(), 256 * mapred::kMiB),
      workloads::make_job(workloads::stream_sort(), 256 * mapred::kMiB),
      workloads::make_job(workloads::wordcount_no_combiner(), 256 * mapred::kMiB),
  };

  core::MetaSchedulerOptions opts;
  core::MetaScheduler ms(core::make_chain_experiment(paper_cluster(), confs), opts);
  const auto r = ms.optimize();

  metrics::Table tab("chain result");
  tab.headers({"metric", "value"});
  tab.row({"phases (P)", "6"});
  tab.row({"assignment space (S^P)", "16^6 = 16,777,216 schedules"});
  tab.row({"full executions used",
           "16 profiling + " + std::to_string(r.heuristic_evaluations) +
               " heuristic (bound: P x S = 96)"});
  tab.row({"solution", r.solution.to_string() + (r.fell_back ? " (fallback)" : "")});
  tab.row({"default (cfq, cfq)", metrics::Table::num(r.default_seconds, 1) + " s"});
  tab.row({"best single pair",
           metrics::Table::num(r.best_single_seconds, 1) + " s  " +
               r.best_single.to_string()});
  tab.row({"adaptive", metrics::Table::num(r.adaptive_seconds, 1) + " s"});
  tab.row({"vs default", metrics::Table::pct(100.0 * r.improvement_vs_default(), 1)});
  tab.row({"vs best single",
           metrics::Table::pct(100.0 * r.improvement_vs_best_single(), 1)});
  tab.print();
  report().add("default_seconds", r.default_seconds);
  report().add("best_single_seconds", r.best_single_seconds);
  report().add("adaptive_seconds", r.adaptive_seconds);
  report().add("heuristic_evals", static_cast<double>(r.heuristic_evaluations));

  print_expectation(
      "the heuristic explores a vanishing fraction of the 16^6 space "
      "(paper's bound: at most P x S = 96 executions) and still produces a "
      "multi-pair schedule at least as good as any single pair across the "
      "heterogeneous chain — the scalability argument of Section IV-C. The "
      "absolute gain is capped by the CPU-bound wordcount stages of this "
      "particular chain.");
  return 0;
}
