// Shared helpers for the reproduction benches. Every bench regenerates one
// table or figure of the paper and prints the measured data next to the
// paper's expectation for that shape.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "cluster/runner.hpp"
#include "exp/artifact.hpp"
#include "exp/json.hpp"
#include "iosched/pair.hpp"
#include "metrics/registry_table.hpp"
#include "metrics/table.hpp"
#include "sim/random.hpp"
#include "trace/registry.hpp"
#include "trace/trace.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim::bench {

using cluster::ClusterConfig;
using iosched::SchedulerKind;
using iosched::SchedulerPair;

/// Scheduler order used by the paper's tables: cfq, deadline, anticipatory,
/// noop.
inline constexpr SchedulerKind kPaperOrder[4] = {
    SchedulerKind::kCfq, SchedulerKind::kDeadline, SchedulerKind::kAnticipatory,
    SchedulerKind::kNoop};

/// The paper's testbed: 4 physical nodes, 4 VMs each, 512 MB per data node.
inline ClusterConfig paper_cluster() { return ClusterConfig{}; }

/// Seeds averaged per data point (the paper averages 3 consecutive runs).
inline constexpr int kSeeds = 3;

/// Machine-readable bench results. Every bench accumulates flat
/// (name, value) metrics here — explicitly via report().add(), or
/// implicitly through print_pair_matrix / print_outcome_row — and
/// `--json FILE` (parsed by Telemetry) dumps them as versioned JSON in
/// emission order next to the human tables. Without `--json` the report is
/// collected and discarded: zero cost, no behavior change.
class BenchReport {
 public:
  void add(const std::string& name, double v) { metrics_.emplace_back(name, v); }

  bool empty() const { return metrics_.empty(); }

  /// {"bench_format":1,"kind":"bench","name":...,"metrics":{...}} — the
  /// same format version as the sweep engine's BENCH_*.json.
  std::string to_json(const std::string& bench_name) const {
    exp::JsonWriter w;
    w.obj_begin();
    w.kv("bench_format", 1);
    w.kv("kind", "bench");
    w.kv("name", bench_name);
    w.key("metrics").obj_begin();
    for (const auto& [k, v] : metrics_) w.kv(k, v);
    w.obj_end();
    w.obj_end();
    return w.str() + "\n";
  }

 private:
  std::vector<std::pair<std::string, double>> metrics_;
};

/// The process-wide report the helpers append to (bench mains are
/// single-threaded; the sweep engine has its own JSON path).
inline BenchReport& report() {
  static BenchReport r;
  return r;
}

/// "foo-bar" from "/path/to/foo-bar" (the bench's own name for the JSON).
inline std::string basename_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Optional flight-recorder hookup for the benches: construct one at the
/// top of main with argc/argv and every simulated run in the bench is
/// traced / metered through the process globals.
///
///   ./bench/fig8_meta_scheduler --trace fig8.json --metrics --json fig8_out.json
///
/// `--trace FILE` records a trace and writes it at exit (.csv extension
/// selects CSV, anything else Chrome trace-event JSON); `--metrics` prints
/// the named-metrics registry at exit; `--json FILE` writes the bench's
/// accumulated BenchReport (see report()) at exit.
class Telemetry {
 public:
  Telemetry(int argc, char** argv) {
    if (argc > 0) bench_name_ = basename_of(argv[0]);
    for (int i = 1; i < argc; ++i) {
      const std::string s = argv[i];
      if (s == "--trace" && i + 1 < argc) {
        trace_path_ = argv[++i];
      } else if (s == "--json" && i + 1 < argc) {
        json_path_ = argv[++i];
      } else if (s == "--metrics") {
        metrics_.emplace();
      }
    }
    if (!trace_path_.empty()) trace_.emplace();
  }
  ~Telemetry() {
    if (!json_path_.empty()) {
      std::string err;
      if (exp::write_file_atomic(json_path_, report().to_json(bench_name_), &err)) {
        std::fprintf(stderr, "json: bench report -> %s\n", json_path_.c_str());
      } else {
        std::fprintf(stderr, "json: failed to write %s (%s)\n", json_path_.c_str(),
                     err.c_str());
      }
    }
    if (trace_) {
      const bool csv = trace_path_.size() >= 4 &&
                       trace_path_.compare(trace_path_.size() - 4, 4, ".csv") == 0;
      auto& tr = trace_->tracer();
      if (tr.write_file(trace_path_, csv)) {
        std::fprintf(stderr, "trace: %zu events (%llu dropped) -> %s\n", tr.size(),
                     static_cast<unsigned long long>(tr.dropped()), trace_path_.c_str());
      } else {
        std::fprintf(stderr, "trace: failed to write %s\n", trace_path_.c_str());
      }
    }
    if (metrics_) {
      auto tab = metrics::registry_table(metrics_->registry());
      tab.print();
    }
  }
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

 private:
  std::string bench_name_ = "bench";
  std::string trace_path_;
  std::string json_path_;
  std::optional<trace::TraceSession> trace_;
  std::optional<trace::MetricsSession> metrics_;
};

inline void print_header(const char* id, const char* what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("================================================================\n");
}

inline void print_expectation(const char* text) {
  std::printf("\npaper expectation: %s\n", text);
}

/// Render a 4x4 (guest rows x VMM cols) seconds matrix like Table I. With a
/// non-null `json_key`, each cell also lands in the bench report as
/// `<json_key>.<guest-letter><vmm-letter>` (e.g. "measured.ca").
inline void print_pair_matrix(const char* title, const double t[4][4],
                              const char* json_key = nullptr) {
  metrics::Table tab(title);
  tab.headers({"VM \\ VMM", "cfq", "deadline", "anticipatory", "noop"});
  for (int g = 0; g < 4; ++g) {
    std::vector<std::string> row{iosched::to_string(kPaperOrder[g])};
    for (int v = 0; v < 4; ++v) {
      row.push_back(metrics::Table::num(t[g][v], 1));
      if (json_key) {
        report().add(std::string(json_key) + "." + iosched::to_letter(kPaperOrder[g]) +
                         iosched::to_letter(kPaperOrder[v]),
                     t[g][v]);
      }
    }
    tab.row(row);
  }
  tab.print();
}

/// Run the full 16-pair sweep for a job; t[guest][vmm] in paper order.
inline void sweep_pairs(const ClusterConfig& base, const mapred::JobConf& jc,
                        double t[4][4], int seeds = kSeeds) {
  for (int g = 0; g < 4; ++g) {
    for (int v = 0; v < 4; ++v) {
      ClusterConfig cfg = base;
      cfg.pair = {kPaperOrder[v], kPaperOrder[g]};
      t[g][v] = cluster::run_job_avg(cfg, jc, seeds).seconds;
    }
  }
}

struct MatrixSummary {
  double def = 0;             // (cfq, cfq)
  double best = 1e300;
  SchedulerPair best_pair;
  double best_ex_noop = 1e300;
  double worst_ex_noop = 0;
  double noop_col_avg = 0;
  double col_avg[4] = {0, 0, 0, 0};
};

inline MatrixSummary summarize(const double t[4][4]) {
  MatrixSummary s;
  s.def = t[0][0];
  for (int g = 0; g < 4; ++g) {
    for (int v = 0; v < 4; ++v) {
      s.col_avg[v] += t[g][v] / 4.0;
      if (t[g][v] < s.best) {
        s.best = t[g][v];
        s.best_pair = {kPaperOrder[v], kPaperOrder[g]};
      }
      if (v < 3) {
        s.best_ex_noop = std::min(s.best_ex_noop, t[g][v]);
        s.worst_ex_noop = std::max(s.worst_ex_noop, t[g][v]);
      }
    }
  }
  s.noop_col_avg = s.col_avg[3];
  return s;
}

}  // namespace iosim::bench
