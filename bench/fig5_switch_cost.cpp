// Fig. 5 — cost of switching between disk pairs' schedulers.
//
// Paper methodology, reproduced exactly: dd writes 600 MB of zeroes in
// parallel on the four VMs of one physical machine;
//   Cost(a -> b) = T(a switched to b at half the data)
//                - (T(a alone) + T(b alone)) / 2.
//
// Shapes: costs vary widely (paper: ~4 s average to 142 s), the matrix is
// NOT commutative, and even re-issuing the same pair costs time (the switch
// command quiesces the queues regardless).
#include "bench_util.hpp"
#include "core/switch_cost.hpp"

using namespace iosim;
using namespace iosim::bench;

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Fig 5", "switch-cost matrix between pair states (dd methodology)");
  std::printf("measuring 16 solo runs + 256 switched runs (600 MB x 4 VMs each)...\n");

  core::SwitchCostConfig cfg;
  const auto m = core::SwitchCostMatrix::measure(cfg);

  const auto pairs = iosched::all_scheduler_pairs();
  metrics::Table tab("Cost(from -> to), seconds; labels = (VMM, VM) letters");
  std::vector<std::string> hdr{"from \\ to"};
  for (const auto& p : pairs) hdr.push_back(p.letters());
  tab.headers(hdr);
  for (const auto& a : pairs) {
    std::vector<std::string> row{a.letters()};
    for (const auto& b : pairs) row.push_back(metrics::Table::num(m.cost_seconds(a, b), 1));
    tab.row(row);
  }
  tab.print();

  metrics::Table solo("solo dd run time per pair (seconds)");
  std::vector<std::string> h2, r2;
  for (const auto& p : pairs) {
    h2.push_back(p.letters());
    r2.push_back(metrics::Table::num(m.solo_seconds(p), 1));
  }
  solo.headers(h2);
  solo.row(r2);
  solo.print();

  // Diagonal and asymmetry summaries.
  double diag_min = 1e300, diag_max = 0;
  for (const auto& p : pairs) {
    diag_min = std::min(diag_min, m.cost_seconds(p, p));
    diag_max = std::max(diag_max, m.cost_seconds(p, p));
  }
  std::printf("\ncost range: %.1f .. %.1f s (paper: ~4 .. 142 s)\n", m.min_cost(),
              m.max_cost());
  std::printf("mean cost: %.1f s | mean asymmetry |C(a,b)-C(b,a)|: %.1f s\n",
              m.mean_cost(), m.mean_asymmetry());
  std::printf("same-pair re-assignment cost: %.1f .. %.1f s (non-zero, as observed)\n",
              diag_min, diag_max);
  report().add("min_cost_seconds", m.min_cost());
  report().add("max_cost_seconds", m.max_cost());
  report().add("mean_cost_seconds", m.mean_cost());
  report().add("mean_asymmetry_seconds", m.mean_asymmetry());
  report().add("diag_min_seconds", diag_min);
  report().add("diag_max_seconds", diag_max);
  print_expectation(
      "switch cost varies by an order of magnitude with the two states, is "
      "not commutative, and the diagonal is non-zero.");
  return 0;
}
