// Fig. 7d — the adaptive scheduler under different cluster scales.
//
// Sort with 4 VMs per host and 512 MB per data node, varying the physical
// cluster: 3 / 4 / 5 / 6 hosts. Paper: the adaptive scheduler keeps (and
// slightly grows) its advantage as the cluster scales out, since per-node
// improvements compound while the all-to-all shuffle limits the baseline.
#include "fig7_common.hpp"

using namespace iosim;
using namespace iosim::bench;

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Fig 7d", "adaptive pair scheduling vs cluster scale (sort)");

  metrics::Table tab("adaptive vs baselines (seconds)");
  tab.headers(outcome_headers());

  std::vector<double> gains;
  for (int hosts : {3, 4, 5, 6}) {
    ClusterConfig cfg = paper_cluster();
    cfg.n_hosts = hosts;
    const auto jc = workloads::make_job(workloads::stream_sort());
    const auto o = run_adaptive(cfg, jc);
    print_outcome_row(tab, std::to_string(hosts) + " hosts", o);
    gains.push_back(100.0 * (1 - o.adaptive / o.def));
  }
  tab.print();

  std::printf("\nadaptive gain vs default by cluster scale:");
  for (double g : gains) std::printf(" %.1f%%", g);
  std::printf("\n");
  print_expectation(
      "the adaptive scheduler remains superior at every scale, with the "
      "improvement holding or growing as hosts are added (paper Fig. 7d).");
  return 0;
}
