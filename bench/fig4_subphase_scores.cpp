// Fig. 4 — performance score of the disk pairs' schedulers at different
// points of the sort benchmark.
//
// Methodology: run sort once per pair, record the time needed to reach each
// Hadoop-progress milestone, and compare the per-interval durations across
// pairs (the paper's per-point scores against the (cfq, cfq) baseline).
// The composite lower bound — picking the best pair per interval — is the
// paper's "optimal solution" (26% better than the default, 15% better than
// (anticipatory, deadline) on its testbed).
#include "bench_util.hpp"

using namespace iosim;
using namespace iosim::bench;

namespace {

// Milestone times for one pair (progress 0.05 steps).
std::vector<double> milestone_times(SchedulerPair pair) {
  ClusterConfig cfg = paper_cluster();
  cfg.pair = pair;
  const auto jc = workloads::make_job(workloads::stream_sort());
  const auto r = cluster::run_job(cfg, jc);
  std::vector<double> t;
  for (const auto& m : r.stats.milestones) t.push_back((m.t - r.stats.t_start).sec());
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Fig 4", "per-progress-interval scores of the pairs on sort");

  // The paper plots a representative subset; we use the four "pure" pairs
  // plus the two headline ones.
  const std::vector<SchedulerPair> pairs = {
      {SchedulerKind::kCfq, SchedulerKind::kCfq},
      {SchedulerKind::kDeadline, SchedulerKind::kDeadline},
      {SchedulerKind::kAnticipatory, SchedulerKind::kAnticipatory},
      {SchedulerKind::kNoop, SchedulerKind::kNoop},
      {SchedulerKind::kAnticipatory, SchedulerKind::kDeadline},
      {SchedulerKind::kAnticipatory, SchedulerKind::kCfq},
  };

  std::vector<std::vector<double>> times;  // per pair: milestone times
  std::size_t n_milestones = 1e9;
  for (const auto& p : pairs) {
    times.push_back(milestone_times(p));
    n_milestones = std::min(n_milestones, times.back().size());
  }

  metrics::Table tab("seconds to reach each job-progress milestone");
  std::vector<std::string> hdr{"progress"};
  for (const auto& p : pairs) hdr.push_back(p.letters());
  hdr.push_back("best");
  tab.headers(hdr);

  double composite = 0, def_total = 0, ad_total = 0;
  std::vector<double> prev(pairs.size(), 0.0);
  for (std::size_t m = 0; m < n_milestones; ++m) {
    std::vector<std::string> row{metrics::Table::num(5.0 * static_cast<double>(m + 1), 0) + "%"};
    double best = 1e300;
    std::size_t best_i = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const double seg = times[i][m] - prev[i];
      row.push_back(metrics::Table::num(seg, 1));
      if (seg < best) {
        best = seg;
        best_i = i;
      }
    }
    composite += best;
    def_total += times[0][m] - prev[0];
    ad_total += times[4][m] - prev[4];
    row.push_back(pairs[best_i].letters());
    tab.row(row);
    for (std::size_t i = 0; i < pairs.size(); ++i) prev[i] = times[i][m];
  }
  tab.print();

  std::printf(
      "\nper-interval-optimal composite: %.1fs | default %.1fs (%.1f%% better) | "
      "(anticipatory, deadline) %.1fs (%.1f%% better)\n",
      composite, def_total, 100.0 * (1 - composite / def_total), ad_total,
      100.0 * (1 - composite / ad_total));
  report().add("composite_seconds", composite);
  report().add("default_seconds", def_total);
  report().add("ad_seconds", ad_total);
  report().add("composite_gain_vs_default_pct", 100.0 * (1 - composite / def_total));
  report().add("composite_gain_vs_ad_pct", 100.0 * (1 - composite / ad_total));
  print_expectation(
      "no single pair wins every interval — the winners alternate across the "
      "job (the basis for adaptive switching). Paper: the per-point optimum "
      "is 26% better than (cfq, cfq) and 15% better than (anticipatory, "
      "deadline). The composite here is an optimistic bound that ignores "
      "switch costs, exactly like the paper's Fig. 4 analysis.");
  return 0;
}
