// Fig. 6 — performance score of the disk pairs' schedulers in the two
// phases of the sort benchmark (the meta-scheduler's profiling data).
//
// Ph1 = job start -> all maps done; Ph2 = the rest (the paper merges the
// shuffle tail into the reduce phase at its 4-wave operating point).
//
// Shape: the per-phase rankings differ — the pair that wins Ph1 is not the
// pair that wins Ph2, which is exactly the opportunity Algorithm 1 exploits.
#include <algorithm>

#include "bench_util.hpp"
#include "core/meta_scheduler.hpp"

using namespace iosim;
using namespace iosim::bench;

int main(int argc, char** argv) {
  iosim::bench::Telemetry telemetry(argc, argv);
  print_header("Fig 6", "per-phase scores of all 16 pairs on sort (profiling)");

  const auto jc = workloads::make_job(workloads::stream_sort());
  core::MetaSchedulerOptions opts;
  opts.plan = core::PhasePlan::for_job(jc, paper_cluster().n_hosts *
                                               paper_cluster().vms_per_host);
  opts.seeds_per_eval = kSeeds;
  core::MetaScheduler ms(paper_cluster(), jc, opts);
  auto profile = ms.profile_all_pairs();

  metrics::Table tab("phase scores (seconds)");
  tab.headers({"pair", "ph1 (maps)", "ph2 (shuffle tail + reduce)", "total"});
  for (const auto& e : profile) {
    tab.row({e.pair.to_string(), metrics::Table::num(e.phase_seconds[0], 1),
             metrics::Table::num(e.phase_seconds[1], 1),
             metrics::Table::num(e.total_seconds, 1)});
  }
  tab.print();

  auto by_phase = [&profile](std::size_t ph) {
    auto sorted = profile;
    std::sort(sorted.begin(), sorted.end(),
              [ph](const core::ProfileEntry& a, const core::ProfileEntry& b) {
                return a.phase_seconds[ph] < b.phase_seconds[ph];
              });
    return sorted;
  };
  const auto r1 = by_phase(0);
  const auto r2 = by_phase(1);

  std::printf("\nph1 ranking (best 3): %s %.1f | %s %.1f | %s %.1f\n",
              r1[0].pair.letters().c_str(), r1[0].phase_seconds[0],
              r1[1].pair.letters().c_str(), r1[1].phase_seconds[0],
              r1[2].pair.letters().c_str(), r1[2].phase_seconds[0]);
  std::printf("ph2 ranking (best 3): %s %.1f | %s %.1f | %s %.1f\n",
              r2[0].pair.letters().c_str(), r2[0].phase_seconds[1],
              r2[1].pair.letters().c_str(), r2[1].phase_seconds[1],
              r2[2].pair.letters().c_str(), r2[2].phase_seconds[1]);

  const double composite = r1[0].phase_seconds[0] + r2[0].phase_seconds[1];
  double best_single = 1e300, def = 0;
  for (const auto& e : profile) {
    best_single = std::min(best_single, e.total_seconds);
    if (e.pair == iosched::kDefaultPair) def = e.total_seconds;
  }
  std::printf(
      "\nphase-optimal composite (ignoring switch cost): %.1fs | best single "
      "%.1fs | default %.1fs\n",
      composite, best_single, def);
  report().add("composite_seconds", composite);
  report().add("best_single_seconds", best_single);
  report().add("default_seconds", def);
  report().add("ph1_best_seconds", r1[0].phase_seconds[0]);
  report().add("ph2_best_seconds", r2[0].phase_seconds[1]);
  if (r1[0].pair == r2[0].pair) {
    std::printf("NOTE: one pair won both phases on this run — the adaptive gain "
                "then comes from deeper candidates in Algorithm 1.\n");
  }
  print_expectation(
      "per-phase winners differ (Ph1 prefers read-pipeline-friendly pairs, "
      "Ph2 prefers write-throughput pairs), making a multi-pair assignment "
      "superior to any single pair.");
  return 0;
}
