#include "disk/disk_model.hpp"

#include <gtest/gtest.h>

namespace iosim::disk {
namespace {

using sim::Time;

DiskParams small_params() {
  DiskParams p;
  p.capacity_sectors = 1'000'000;
  return p;
}

TEST(DiskModel, RateZoning) {
  DiskModel d(DiskParams{}, 1);
  const double outer = d.rate_at(0);
  const double inner = d.rate_at(d.params().capacity_sectors - 1);
  EXPECT_NEAR(outer, d.params().outer_mb_s * 1e6, 1e-3);
  EXPECT_NEAR(inner, d.params().inner_mb_s * 1e6, d.params().outer_mb_s);
  EXPECT_GT(outer, inner);
  // Linear in between.
  const double mid = d.rate_at(d.params().capacity_sectors / 2);
  EXPECT_NEAR(mid, (outer + inner) / 2, outer * 0.01);
}

TEST(DiskModel, TransferTimeMatchesRate) {
  DiskModel d(DiskParams{}, 1);
  const std::int64_t sectors = 2048;  // 1 MB
  const Time t = d.transfer_time(0, sectors);
  const double expected = 1024.0 * 1024.0 / (d.params().outer_mb_s * 1e6);
  EXPECT_NEAR(t.sec(), expected, expected * 0.02);
}

TEST(DiskModel, TransferScalesLinearly) {
  DiskModel d(DiskParams{}, 1);
  const Time t1 = d.transfer_time(0, 1024);
  const Time t2 = d.transfer_time(0, 2048);
  EXPECT_NEAR(t2.sec(), 2.0 * t1.sec(), t1.sec() * 0.05);
}

TEST(DiskModel, SeekZeroDistanceIsFree) {
  DiskModel d(DiskParams{}, 1);
  EXPECT_EQ(d.seek_time(0), Time::zero());
}

TEST(DiskModel, NearSeekUsesSettleTime) {
  DiskModel d(DiskParams{}, 1);
  EXPECT_EQ(d.seek_time(d.params().near_window_sectors), d.params().near_settle);
  EXPECT_EQ(d.seek_time(1), d.params().near_settle);
}

TEST(DiskModel, SeekMonotoneInDistance) {
  DiskModel d(DiskParams{}, 1);
  Time prev = Time::zero();
  for (Lba dist = 4096; dist < d.params().capacity_sectors; dist *= 4) {
    const Time t = d.seek_time(dist);
    EXPECT_GE(t, prev) << "distance " << dist;
    EXPECT_GT(t, d.params().seek_min - Time::from_us(1));
    EXPECT_LE(t, d.params().seek_max);
    prev = t;
  }
}

TEST(DiskModel, FullStrokeSeekNearMax) {
  DiskModel d(DiskParams{}, 1);
  const Time t = d.seek_time(d.params().capacity_sectors);
  EXPECT_NEAR(t.ms(), d.params().seek_max.ms(), 0.1);
}

TEST(DiskModel, ContiguousAccessSkipsPositioning) {
  DiskModel d(DiskParams{}, 1);
  (void)d.service({1000, 512, false});  // position the head
  const Time t = d.service({1512, 512, false});
  // Pure transfer + command overhead, no rotation: must be well under a
  // rotation period.
  const Time transfer = d.transfer_time(1512, 512);
  EXPECT_LT(t, transfer + d.params().command_overhead + Time::from_us(10));
  EXPECT_EQ(d.sequential_accesses(), 1);
}

TEST(DiskModel, RandomAccessPaysSeekAndRotation) {
  DiskModel d(DiskParams{}, 1);
  (void)d.service({0, 512, false});
  const Time t = d.service({500'000'000, 512, false});
  // Must include at least a seek of that distance.
  EXPECT_GT(t, d.seek_time(500'000'000));
}

TEST(DiskModel, HeadTracksLastAccess) {
  DiskModel d(DiskParams{}, 1);
  (void)d.service({100, 50, true});
  EXPECT_EQ(d.head(), 150);
  (void)d.service({150, 50, true});
  EXPECT_EQ(d.head(), 200);
}

TEST(DiskModel, CountersAccumulate) {
  DiskModel d(DiskParams{}, 1);
  (void)d.service({0, 512, false});
  (void)d.service({512, 512, false});
  (void)d.service({999'000, 512, false});
  EXPECT_EQ(d.total_accesses(), 3);
  EXPECT_EQ(d.sequential_accesses(), 1);
  EXPECT_GT(d.busy_time(), Time::zero());
}

TEST(DiskModel, DeterministicGivenSeed) {
  DiskModel a(DiskParams{}, 99), b(DiskParams{}, 99);
  for (int i = 0; i < 100; ++i) {
    const Lba lba = (i * 7919) % 1'000'000;
    EXPECT_EQ(a.service({lba, 256, i % 2 == 0}), b.service({lba, 256, i % 2 == 0}));
  }
}

TEST(DiskModel, DifferentSeedsDifferInRotation) {
  DiskModel a(DiskParams{}, 1), b(DiskParams{}, 2);
  (void)a.service({0, 512, false});
  (void)b.service({0, 512, false});
  // Same first seek, but rotational phase differs almost surely.
  const Time ta = a.service({900'000'000, 512, false});
  const Time tb = b.service({900'000'000, 512, false});
  EXPECT_NE(ta, tb);
}

TEST(DiskModel, SequentialStreamThroughputApproachesMediaRate) {
  DiskParams p;
  p.command_overhead = Time::zero();
  DiskModel d(p, 1);
  (void)d.service({0, 512, false});  // position
  Time total = Time::zero();
  const int n = 1000;
  for (int i = 1; i <= n; ++i) total += d.service({i * 512, 512, false});
  const double bytes = n * 512.0 * kSectorBytes;
  const double rate = bytes / total.sec();
  EXPECT_NEAR(rate, p.outer_mb_s * 1e6, p.outer_mb_s * 1e6 * 0.05);
}

class DiskSizeSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DiskSizeSweep, ServiceTimePositiveAndBounded) {
  DiskModel d(DiskParams{}, 5);
  const std::int64_t sectors = GetParam();
  const Time t = d.service({12345, sectors, false});
  EXPECT_GT(t, Time::zero());
  // Bounded by full stroke + rotation + transfer at the inner rate + slack.
  const double max_sec = d.params().seek_max.sec() + d.params().rotation_period().sec() +
                         static_cast<double>(sectors * kSectorBytes) /
                             (d.params().inner_mb_s * 1e6) +
                         0.001;
  EXPECT_LT(t.sec(), max_sec);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DiskSizeSweep,
                         ::testing::Values(1, 8, 88, 512, 1024, 2048, 8192));

TEST(DiskModel, SmallDiskBoundsRespected) {
  DiskModel d(small_params(), 1);
  (void)d.service({0, 100, false});
  (void)d.service({999'900, 100, false});  // last valid extent
  EXPECT_EQ(d.head(), 1'000'000);
}

}  // namespace
}  // namespace iosim::disk
