#include <gtest/gtest.h>

#include "blk/disk_device.hpp"
#include "metrics/table.hpp"
#include "metrics/throughput_probe.hpp"

namespace iosim::metrics {
namespace {

using namespace iosim::sim::literals;
using sim::Time;

TEST(Table, CsvRoundTrip) {
  Table t("demo");
  t.headers({"a", "b"});
  t.row({"1", "x"});
  t.row({"2", "y"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,x\n2,y\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::pct(12.345, 1), "12.3%");
}

TEST(Table, PrintDoesNotCrashOnRaggedRows) {
  Table t;
  t.headers({"a", "b", "c"});
  t.row({"1"});
  t.row({"1", "2", "3", "4"});
  std::FILE* sink = std::fopen("/dev/null", "w");
  ASSERT_NE(sink, nullptr);
  t.print(sink);
  std::fclose(sink);
}

struct ProbeRig {
  sim::Simulator simr;
  blk::DiskDevice disk{simr, disk::DiskParams{}, 1};
  blk::BlockLayer layer{simr, disk, blk::BlockLayerConfig{}};
  ThroughputProbe probe{layer};

  void submit(disk::Lba lba, std::int64_t sectors) {
    blk::Bio b;
    b.lba = lba;
    b.sectors = sectors;
    b.dir = iosched::Dir::kWrite;
    b.sync = false;
    b.ctx = 1;
    layer.submit(std::move(b));
  }
};

TEST(ThroughputProbe, CountsAllBytes) {
  ProbeRig r;
  for (int i = 0; i < 10; ++i) r.submit(i * 100000, 512);
  r.simr.run();
  EXPECT_EQ(r.probe.total_bytes(), 10 * 512 * disk::kSectorBytes);
  EXPECT_GT(r.probe.completions(), 0u);
}

TEST(ThroughputProbe, MeanThroughputPositive) {
  ProbeRig r;
  for (int i = 0; i < 20; ++i) r.submit(1'000'000 + i * 512, 512);
  r.simr.run();
  EXPECT_GT(r.probe.mean_bps(), 0.0);
  // Sequential stream: should be within the disk's media-rate ballpark.
  EXPECT_LT(r.probe.mean_bps(), 200e6);
}

TEST(ThroughputProbe, WindowedSamplesCoverTheRun) {
  ProbeRig r;
  for (int i = 0; i < 20; ++i) r.submit(1'000'000 + i * 512, 512);
  r.simr.run();
  const Time end = r.simr.now() + Time::from_ns(1);  // half-open window range
  auto samples = r.probe.windowed_mb_s(Time::zero(), end, 10_ms);
  ASSERT_FALSE(samples.empty());
  // Total bytes reconstructed from windows matches the probe.
  double mb = 0;
  for (double s : samples.raw()) mb += s * 0.010;  // MB per 10ms window
  EXPECT_NEAR(mb * 1e6, static_cast<double>(r.probe.total_bytes()),
              static_cast<double>(r.probe.total_bytes()) * 0.02);
}

TEST(ThroughputProbe, IdleWindowsOptional) {
  ProbeRig r;
  r.submit(0, 512);
  r.simr.run();
  const Time end = r.simr.now() + 1_sec;  // force idle windows at the tail
  const auto with_idle = r.probe.windowed_mb_s(Time::zero(), end, 10_ms, true);
  const auto without = r.probe.windowed_mb_s(Time::zero(), end, 10_ms, false);
  EXPECT_GT(with_idle.size(), without.size());
}

TEST(ThroughputProbe, EmptyRangeYieldsNothing) {
  ProbeRig r;
  r.submit(0, 512);
  r.simr.run();
  EXPECT_EQ(r.probe.windowed_mb_s(1_sec, 1_sec, 10_ms).size(), 0u);
  EXPECT_EQ(r.probe.windowed_mb_s(2_sec, 1_sec, 10_ms).size(), 0u);
}

}  // namespace
}  // namespace iosim::metrics
