// Direct unit tests for the latency and throughput probes: observer
// lifetime (handle removal), direction/sync bucketing, and a two-request
// scenario with hand-computed timings through a fixed-latency sink.
#include "metrics/latency_probe.hpp"
#include "metrics/throughput_probe.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "blk/block_layer.hpp"
#include "blk/request_sink.hpp"

namespace iosim::metrics {
namespace {

using blk::Bio;
using blk::BlockLayer;
using blk::BlockLayerConfig;
using iosched::Dir;
using iosched::SchedulerKind;
using sim::Time;

/// Capacity-1 sink that completes every request exactly `latency` after
/// dispatch — timings become pencil-and-paper checkable, unlike DiskDevice
/// whose service time depends on seek distance.
class FixedLatencySink : public blk::RequestSink {
 public:
  FixedLatencySink(sim::Simulator& simr, Time latency)
      : simr_(simr), latency_(latency) {}

  bool can_accept() const override { return !busy_; }

  void submit(blk::Request* rq, Time) override {
    busy_ = true;
    simr_.after(latency_, [this, rq] {
      const Time t = simr_.now();
      busy_ = false;
      complete(rq, t);
      ready(t);
    });
  }

 private:
  sim::Simulator& simr_;
  Time latency_;
  bool busy_ = false;
};

struct Rig {
  sim::Simulator simr;
  FixedLatencySink sink;
  BlockLayer layer;

  explicit Rig(Time latency = Time::from_ms(2))
      : sink(simr, latency), layer(simr, sink, [] {
          BlockLayerConfig cfg;
          cfg.scheduler = SchedulerKind::kNoop;
          return cfg;
        }()) {}

  void submit(disk::Lba lba, std::int64_t sectors, Dir dir, bool sync) {
    Bio b;
    b.lba = lba;
    b.sectors = sectors;
    b.dir = dir;
    b.sync = sync;
    layer.submit(std::move(b));
  }
};

TEST(LatencyProbe, HandComputedTwoRequestScenario) {
  // Sink latency 2ms, noop scheduler, capacity 1.
  //   t=0ms: sync read submitted, dispatches immediately, completes t=2ms
  //          -> read latency exactly 2ms.
  //   t=1ms: async write submitted, sink busy until 2ms, dispatches then,
  //          completes t=4ms -> write latency exactly 3ms.
  Rig r;
  LatencyProbe probe(r.layer);
  r.submit(1'000, 8, Dir::kRead, /*sync=*/true);
  r.simr.after(Time::from_ms(1),
               [&] { r.submit(50'000, 8, Dir::kWrite, /*sync=*/false); });
  r.simr.run();

  ASSERT_EQ(probe.all().size(), 2u);
  ASSERT_EQ(probe.reads().size(), 1u);
  ASSERT_EQ(probe.writes().size(), 1u);
  ASSERT_EQ(probe.sync().size(), 1u);  // only the read was sync
  EXPECT_DOUBLE_EQ(probe.read_p50(), 2.0);
  EXPECT_DOUBLE_EQ(probe.read_p99(), 2.0);
  EXPECT_DOUBLE_EQ(probe.write_p50(), 3.0);
  EXPECT_DOUBLE_EQ(probe.write_p99(), 3.0);
  EXPECT_DOUBLE_EQ(probe.sync().quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(probe.all().mean(), 2.5);
}

TEST(LatencyProbe, BucketsByDirectionAndSyncClass) {
  Rig r(Time::from_us(100));
  LatencyProbe probe(r.layer);
  // Spaced-out submissions (no queueing, no merging): 2 sync reads,
  // 1 async read, 3 async writes.
  const struct {
    Dir dir;
    bool sync;
  } plan[] = {{Dir::kRead, true},  {Dir::kRead, true},   {Dir::kRead, false},
              {Dir::kWrite, false}, {Dir::kWrite, false}, {Dir::kWrite, false}};
  int i = 0;
  for (const auto& p : plan) {
    r.simr.after(Time::from_ms(i),
                 [&r, p] { r.submit(1'000'000, 8, p.dir, p.sync); });
    ++i;
  }
  r.simr.run();
  EXPECT_EQ(probe.all().size(), 6u);
  EXPECT_EQ(probe.reads().size(), 3u);
  EXPECT_EQ(probe.writes().size(), 3u);
  EXPECT_EQ(probe.sync().size(), 2u);
  // Every request saw the same idle-sink latency.
  EXPECT_DOUBLE_EQ(probe.all().quantile(1.0), 0.1);
  EXPECT_DOUBLE_EQ(probe.all().quantile(0.0), 0.1);
}

TEST(LatencyProbe, DestructionRemovesObserver) {
  Rig r;
  auto probe = std::make_unique<LatencyProbe>(r.layer);
  LatencyProbe survivor(r.layer);
  r.submit(1'000, 8, Dir::kRead, true);
  r.simr.run();
  EXPECT_EQ(probe->all().size(), 1u);
  probe.reset();  // unregisters; the layer must not call into freed memory
  r.submit(2'000, 8, Dir::kRead, true);
  r.simr.run();
  EXPECT_EQ(survivor.all().size(), 2u);  // still observing after the removal
}

TEST(ThroughputProbe, HandComputedTwoRequestScenario) {
  // Same two-request timeline as the latency test: completions of 4096
  // bytes each at t=2ms and t=4ms.
  Rig r;
  ThroughputProbe probe(r.layer);
  r.submit(1'000, 8, Dir::kRead, true);
  r.simr.after(Time::from_ms(1), [&] { r.submit(50'000, 8, Dir::kWrite, false); });
  r.simr.run();

  EXPECT_EQ(probe.completions(), 2u);
  EXPECT_EQ(probe.total_bytes(), 2 * 8 * disk::kSectorBytes);
  // 8192 bytes over the 2ms first-to-last span.
  EXPECT_DOUBLE_EQ(probe.mean_bps(), 8192.0 / 0.002);

  // 1ms windows over [0, 5ms): completions land in windows 2 and 4 at
  // 4096 B / 1ms = 4.096 MB/s each.
  const auto with_idle =
      probe.windowed_mb_s(Time::zero(), Time::from_ms(5), Time::from_ms(1), true);
  EXPECT_EQ(with_idle.size(), 6u);  // (5ms / 1ms) + 1 windows, idle included
  EXPECT_DOUBLE_EQ(with_idle.quantile(1.0), 4.096);
  const auto busy_only =
      probe.windowed_mb_s(Time::zero(), Time::from_ms(5), Time::from_ms(1), false);
  EXPECT_EQ(busy_only.size(), 2u);
  EXPECT_DOUBLE_EQ(busy_only.mean(), 4.096);
}

TEST(ThroughputProbe, DestructionRemovesObserver) {
  Rig r;
  std::optional<ThroughputProbe> probe(std::in_place, r.layer);
  r.submit(1'000, 8, Dir::kRead, true);
  r.simr.run();
  EXPECT_EQ(probe->completions(), 1u);
  probe.reset();
  r.submit(2'000, 8, Dir::kRead, true);
  r.simr.run();  // no crash: the observer list no longer references the probe
  EXPECT_EQ(r.layer.counters().requests_completed, 2u);
}

}  // namespace
}  // namespace iosim::metrics
