#include "net/flow_network.hpp"

#include <gtest/gtest.h>

namespace iosim::net {
namespace {

using namespace iosim::sim::literals;
using sim::Time;

NetParams fast_latency() {
  NetParams p;
  p.flow_latency = Time::zero();
  return p;
}

TEST(FlowNetwork, SingleFlowRunsAtLineRate) {
  sim::Simulator simr;
  FlowNetwork net(simr, 2, fast_latency());
  Time done;
  const std::int64_t bytes = 117'000'000;  // 1 second at line rate
  net.start_flow(0, 1, bytes, [&](Time t) { done = t; });
  simr.run();
  EXPECT_NEAR(done.sec(), 1.0, 0.01);
  EXPECT_EQ(net.bytes_delivered(), bytes);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(FlowNetwork, TwoFlowsOnSameUplinkShare) {
  sim::Simulator simr;
  FlowNetwork net(simr, 3, fast_latency());
  Time d1, d2;
  const std::int64_t bytes = 58'500'000;  // 0.5s alone, 1s shared
  net.start_flow(0, 1, bytes, [&](Time t) { d1 = t; });
  net.start_flow(0, 2, bytes, [&](Time t) { d2 = t; });
  simr.run();
  EXPECT_NEAR(d1.sec(), 1.0, 0.02);
  EXPECT_NEAR(d2.sec(), 1.0, 0.02);
}

TEST(FlowNetwork, DisjointPairsDoNotInterfere) {
  sim::Simulator simr;
  FlowNetwork net(simr, 4, fast_latency());
  Time d1, d2;
  const std::int64_t bytes = 117'000'000;
  net.start_flow(0, 1, bytes, [&](Time t) { d1 = t; });
  net.start_flow(2, 3, bytes, [&](Time t) { d2 = t; });
  simr.run();
  EXPECT_NEAR(d1.sec(), 1.0, 0.01);
  EXPECT_NEAR(d2.sec(), 1.0, 0.01);
}

TEST(FlowNetwork, DownlinkIsABottleneckToo) {
  sim::Simulator simr;
  FlowNetwork net(simr, 3, fast_latency());
  Time d1, d2;
  const std::int64_t bytes = 58'500'000;
  // Two different sources into ONE destination: share the downlink.
  net.start_flow(0, 2, bytes, [&](Time t) { d1 = t; });
  net.start_flow(1, 2, bytes, [&](Time t) { d2 = t; });
  simr.run();
  EXPECT_NEAR(d1.sec(), 1.0, 0.02);
  EXPECT_NEAR(d2.sec(), 1.0, 0.02);
}

TEST(FlowNetwork, LoopbackIsFasterThanNic) {
  sim::Simulator simr;
  NetParams p = fast_latency();
  FlowNetwork net(simr, 2, p);
  Time d_loop, d_net;
  const std::int64_t bytes = 100'000'000;
  net.start_flow(0, 0, bytes, [&](Time t) { d_loop = t; });
  simr.run();
  sim::Simulator simr2;
  FlowNetwork net2(simr2, 2, p);
  net2.start_flow(0, 1, bytes, [&](Time t) { d_net = t; });
  simr2.run();
  EXPECT_LT(d_loop, d_net);
  EXPECT_NEAR(d_loop.sec(), bytes / p.loopback_bw, 0.01);
}

TEST(FlowNetwork, LateFlowSpeedsUpAfterFirstCompletes) {
  sim::Simulator simr;
  FlowNetwork net(simr, 2, fast_latency());
  Time d_small, d_big;
  net.start_flow(0, 1, 11'700'000, [&](Time t) { d_small = t; });   // 0.1s alone
  net.start_flow(0, 1, 117'000'000, [&](Time t) { d_big = t; });    // 1s alone
  simr.run();
  // Shared until the small one finishes (~0.2s), then the big one gets the
  // full link: total ≈ 0.2 + (1 - 0.1) = 1.1s.
  EXPECT_NEAR(d_small.sec(), 0.2, 0.02);
  EXPECT_NEAR(d_big.sec(), 1.1, 0.03);
}

TEST(FlowNetwork, FlowLatencyDelaysTinyFlows) {
  sim::Simulator simr;
  NetParams p;  // default latency 1 ms
  FlowNetwork net(simr, 2, p);
  Time done;
  net.start_flow(0, 1, 100, [&](Time t) { done = t; });
  simr.run();
  EXPECT_GE(done, Time::from_ms(1));
  EXPECT_LT(done, Time::from_ms(5));
}

TEST(FlowNetwork, ManyFlowsAllComplete) {
  sim::Simulator simr;
  FlowNetwork net(simr, 4, fast_latency());
  int done = 0;
  std::int64_t total = 0;
  for (int i = 0; i < 64; ++i) {
    const std::int64_t b = 1'000'000 + i * 31'337;
    total += b;
    net.start_flow(i % 4, (i + 1 + i / 4) % 4, b, [&](Time) { ++done; });
  }
  simr.run();
  EXPECT_EQ(done, 64);
  EXPECT_EQ(net.bytes_delivered(), total);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(FlowNetwork, CallbackCanStartNewFlow) {
  sim::Simulator simr;
  FlowNetwork net(simr, 2, fast_latency());
  int hops = 0;
  std::function<void(Time)> hop = [&](Time) {
    if (++hops < 5) net.start_flow(hops % 2, (hops + 1) % 2, 1'000'000, hop);
  };
  net.start_flow(0, 1, 1'000'000, hop);
  simr.run();
  EXPECT_EQ(hops, 5);
}

TEST(FlowNetwork, MaxMinIsWorkConserving) {
  // 3 flows: A 0->1, B 0->1, C 2->1. Downlink of 1 is the bottleneck for
  // all three; each should get ~1/3 of it, so the uplink of 0 is not full.
  sim::Simulator simr;
  FlowNetwork net(simr, 3, fast_latency());
  std::vector<Time> done(3);
  const std::int64_t bytes = 39'000'000;  // 1/3 of link => 1s each
  net.start_flow(0, 1, bytes, [&](Time t) { done[0] = t; });
  net.start_flow(0, 1, bytes, [&](Time t) { done[1] = t; });
  net.start_flow(2, 1, bytes, [&](Time t) { done[2] = t; });
  simr.run();
  for (const Time& t : done) EXPECT_NEAR(t.sec(), 1.0, 0.03);
}

}  // namespace
}  // namespace iosim::net
