// Fuzzer for the job-stream grammar (tenancy/stream_spec.hpp).
//
// Contract: StreamSpec::parse never crashes; an accepted spec's canonical
// to_string() re-parses byte-identically (idempotent canonical form) and
// describes at least one job and one class, so the planner downstream can
// never be handed an empty stream.

#include <string>

#include "fuzz_util.hpp"
#include "tenancy/stream_spec.hpp"

namespace {

using iosim::tenancy::StreamSpec;

std::string check_stream(const std::string& text) {
  std::string err;
  const auto spec = StreamSpec::parse(text, &err);
  if (!spec.has_value()) return "";  // rejection is always acceptable

  if (spec->job_count() < 1) return "accepted spec with no jobs";
  if (spec->classes.empty()) return "accepted spec with no classes";
  for (const auto& c : spec->classes) {
    if (c.mb_min > c.mb_max) return "accepted class with mb_min > mb_max";
    if (!(c.weight > 0.0) || !(c.mix > 0.0) || !(c.alpha > 0.0)) {
      return "accepted class with non-positive weight/mix/alpha";
    }
  }

  const std::string canon = spec->to_string();
  std::string err2;
  const auto re = StreamSpec::parse(canon, &err2);
  if (!re.has_value()) {
    return "canonical text failed to re-parse: " + err2 + " | canon: " +
           iosim::fuzz::escape_for_log(canon);
  }
  if (re->to_string() != canon) return "to_string is not idempotent";
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  iosim::fuzz::FuzzOptions opt;
  if (!iosim::fuzz::parse_args(argc, argv, &opt)) return iosim::fuzz::usage(argv[0]);
  return iosim::fuzz::run_campaign(
      "fuzz_stream", opt, check_stream,
      {"arrive", "poisson", "trace", "class", "policy", "fifo", "fair",
       "capacity", "rate=", "jobs=", "t=", "name=", "wl=", "mb=", "weight=",
       "prio=", "share=", "deadline=", "mix=", "alpha=", "sort", "wordcount",
       "wc", "wc-nocombiner", ";", ",", ":", "=", "-", "8-64", "16-16",
       "0.5", "0", "-1", "1e308", "-1e308", "nan", "inf",
       "18446744073709551615", "0:2.5:2.5:100"});
}
