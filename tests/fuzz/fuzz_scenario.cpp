// Fuzzer for the scenario-spec grammar (exp/scenario.hpp).
//
// Contract: ScenarioSpec::parse never crashes; an accepted spec's canonical
// to_string() re-parses, is idempotent, keeps its fingerprint, and its
// expansion respects the validate() matrix caps.

#include <string>

#include "exp/scenario.hpp"
#include "fuzz_util.hpp"

namespace {

using iosim::exp::ScenarioSpec;

std::string check_scenario(const std::string& text) {
  std::string err;
  const auto spec = ScenarioSpec::parse(text, &err);
  if (!spec.has_value()) return "";  // rejection is always acceptable

  if (spec->n_points() > ScenarioSpec::kMaxPoints) {
    return "accepted spec exceeds kMaxPoints (" + std::to_string(spec->n_points()) +
           " points)";
  }
  if (spec->n_runs() > ScenarioSpec::kMaxRuns) {
    return "accepted spec exceeds kMaxRuns (" + std::to_string(spec->n_runs()) +
           " runs)";
  }

  const std::string canon = spec->to_string();
  std::string err2;
  const auto re = ScenarioSpec::parse(canon, &err2);
  if (!re.has_value()) {
    return "canonical text failed to re-parse: " + err2 + " | canon: " +
           iosim::fuzz::escape_for_log(canon);
  }
  if (re->to_string() != canon) return "to_string is not idempotent";
  if (re->fingerprint() != spec->fingerprint()) {
    return "fingerprint changed across a round-trip";
  }

  // Expanding a huge-but-legal matrix is valid and slow; only materialize
  // small ones to verify the expansion really matches n_points().
  if (spec->n_points() <= 4096) {
    if (spec->expand().size() != spec->n_points()) {
      return "expand() size disagrees with n_points()";
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  iosim::fuzz::FuzzOptions opt;
  if (!iosim::fuzz::parse_args(argc, argv, &opt)) return iosim::fuzz::usage(argv[0]);
  return iosim::fuzz::run_campaign(
      "fuzz_scenario", opt, check_scenario,
      {"name=", "mode=", "base_seed=", "repeats=", "pair=", "workload=", "hosts=",
       "vms=", "mb=", "fault=", "timeout=", "max_events=", "max_sim_seconds=",
       "all16", "run", "adapt", "sort", "wordcount", "wc-nocombiner",
       "none", "transient:host=0,p=0.1", "lse:host=0,lba=0-100", "|", ",", ";",
       "stream=", "stream_policy=", "arrive,poisson,rate=0.1,jobs=4",
       "class,name=a,wl=sort,mb=8-8", "policy,fair", "fifo", "fair", "capacity",
       "\n", "#", "=", "9e9", "1e10", "nan", "inf", "-1", "0",
       "18446744073709551615", "999999999999999999999"});
}
