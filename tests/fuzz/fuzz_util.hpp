// iosim: shared scaffolding for the deterministic structure-aware fuzzers.
//
// Each fuzzer is a plain executable (registered under the `fuzz` ctest
// label) that hammers one untrusted text surface — the scenario grammar,
// the fault-plan grammar, or json_parse + report ingestion. The design is
// deliberately deterministic: a fixed --seed and --budget reproduce the
// exact same mutation stream, so a CI failure is replayable locally with
// the two numbers printed in the failure banner. There is no coverage
// feedback; "structure-aware" comes from seeding the corpus with valid and
// adversarial documents and mutating with a grammar dictionary, which
// reaches far deeper into the parsers than random bytes would.
//
// Contract checked by every fuzzer, regardless of surface:
//   1. The parser never crashes, hangs, or trips ASan/UBSan — rejection
//      with a diagnostic is always acceptable.
//   2. Anything *accepted* must round-trip: to_string() re-parses, is
//      idempotent, and preserves the semantic identity (fingerprint).
//
// Corpus layout: one document per file under tests/fuzz/corpus/<surface>/;
// files are loaded in sorted name order so the run is independent of
// directory enumeration order. Regression entries for fuzzer-found bugs are
// prefixed `regress-` and replayed UNMUTATED before the mutation budget
// starts, so a fixed bug stays fixed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/random.hpp"

namespace iosim::fuzz {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t budget = 1500;   // number of mutated inputs to try
  std::string corpus_dir;        // required
  std::size_t max_len = 1 << 16; // inputs are clamped to this many bytes
};

inline int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --corpus DIR [--seed N] [--budget N] [--max-len N]\n",
               argv0);
  return 2;
}

/// Strict flag parsing, same convention as the iosim CLIs: unknown or
/// malformed flags return false and the caller exits 2 with usage.
inline bool parse_args(int argc, char** argv, FuzzOptions* out) {
  const auto parse_u64 = [](const char* s, std::uint64_t* v) {
    if (s == nullptr || *s == '\0' || *s == '-') return false;
    char* end = nullptr;
    errno = 0;
    const unsigned long long x = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE) return false;
    *v = x;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    const char* v = (i + 1 < argc) ? argv[i + 1] : nullptr;
    if (a == "--corpus" && v != nullptr) {
      out->corpus_dir = v;
      ++i;
    } else if (a == "--seed" && v != nullptr) {
      if (!parse_u64(v, &out->seed)) return false;
      ++i;
    } else if (a == "--budget" && v != nullptr) {
      if (!parse_u64(v, &out->budget)) return false;
      ++i;
    } else if (a == "--max-len" && v != nullptr) {
      std::uint64_t n = 0;
      if (!parse_u64(v, &n) || n == 0) return false;
      out->max_len = static_cast<std::size_t>(n);
      ++i;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: '%s'\n", argv[i]);
      return false;
    }
  }
  if (out->corpus_dir.empty()) {
    std::fprintf(stderr, "--corpus is required\n");
    return false;
  }
  return true;
}

struct CorpusEntry {
  std::string name;
  std::string text;
  bool regression = false;  // `regress-` prefix: replayed unmutated first
};

/// Load every regular file in `dir`, sorted by file name so the fuzz run is
/// deterministic regardless of readdir order.
inline std::vector<CorpusEntry> load_corpus(const std::string& dir) {
  std::vector<CorpusEntry> out;
  std::error_code ec;
  for (const auto& de : std::filesystem::directory_iterator(dir, ec)) {
    if (!de.is_regular_file()) continue;
    std::ifstream in(de.path(), std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string name = de.path().filename().string();
    out.push_back({name, ss.str(), name.rfind("regress-", 0) == 0});
  }
  std::sort(out.begin(), out.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) { return a.name < b.name; });
  return out;
}

/// Printable form of a fuzz input for the failure banner (escapes control
/// bytes, truncates long inputs — the seed/iteration pair is the real repro).
inline std::string escape_for_log(std::string_view s, std::size_t cap = 600) {
  std::string out;
  for (std::size_t i = 0; i < s.size() && out.size() < cap; ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c < 0x20 || c >= 0x7f) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\x%02x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  if (out.size() >= cap) out += "...(truncated)";
  return out;
}

/// Seeded structure-aware mutator. Applies 1-4 byte- and token-level edits
/// per call; the dictionary carries the surface's grammar atoms (keywords,
/// separators, boundary numerals) so mutants exercise deep parser paths
/// instead of dying at the first byte.
class Mutator {
 public:
  Mutator(std::uint64_t seed, std::vector<std::string> dictionary)
      : rng_(seed), dict_(std::move(dictionary)) {}

  std::string mutate(const std::string& base, const std::vector<CorpusEntry>& corpus,
                     std::size_t max_len) {
    std::string s = base;
    const int n_ops = static_cast<int>(rng_.range(1, 4));
    for (int i = 0; i < n_ops; ++i) apply_one(&s, corpus);
    if (s.size() > max_len) s.resize(max_len);
    return s;
  }

 private:
  void apply_one(std::string* s, const std::vector<CorpusEntry>& corpus) {
    switch (rng_.below(7)) {
      case 0: {  // flip one byte
        if (s->empty()) break;
        (*s)[rng_.below(s->size())] ^= static_cast<char>(1 + rng_.below(255));
        break;
      }
      case 1: {  // insert a random byte
        const std::size_t at = rng_.below(s->size() + 1);
        s->insert(at, 1, static_cast<char>(rng_.below(256)));
        break;
      }
      case 2: {  // delete a span
        if (s->empty()) break;
        const std::size_t at = rng_.below(s->size());
        const std::size_t len = 1 + rng_.below(std::min<std::size_t>(s->size() - at, 16));
        s->erase(at, len);
        break;
      }
      case 3: {  // duplicate a span (repetition stresses list/axis parsing)
        if (s->empty()) break;
        const std::size_t at = rng_.below(s->size());
        const std::size_t len = 1 + rng_.below(std::min<std::size_t>(s->size() - at, 32));
        const std::string span = s->substr(at, len);
        s->insert(rng_.below(s->size() + 1), span);
        break;
      }
      case 4: {  // insert a dictionary token
        if (dict_.empty()) break;
        const std::string& tok = dict_[rng_.below(dict_.size())];
        s->insert(rng_.below(s->size() + 1), tok);
        break;
      }
      case 5: {  // splice: our prefix + another corpus entry's suffix
        if (corpus.empty()) break;
        const std::string& other = corpus[rng_.below(corpus.size())].text;
        if (other.empty()) break;
        const std::size_t cut_a = rng_.below(s->size() + 1);
        const std::size_t cut_b = rng_.below(other.size());
        s->resize(cut_a);
        s->append(other, cut_b, std::string::npos);
        break;
      }
      default: {  // truncate
        if (s->empty()) break;
        s->resize(rng_.below(s->size()));
        break;
      }
    }
  }

  sim::Rng rng_;
  std::vector<std::string> dict_;
};

/// One fuzz campaign: replay regression entries unmutated, then spend the
/// mutation budget. `check` returns an empty string when the input upheld
/// the contract (parse rejection included) and a diagnostic otherwise.
template <typename CheckFn>
int run_campaign(const char* surface, const FuzzOptions& opt, const CheckFn& check,
                 std::vector<std::string> dictionary) {
  const std::vector<CorpusEntry> corpus = load_corpus(opt.corpus_dir);
  if (corpus.empty()) {
    std::fprintf(stderr, "%s: corpus dir '%s' is empty or unreadable\n", surface,
                 opt.corpus_dir.c_str());
    return 2;
  }
  for (const CorpusEntry& e : corpus) {
    const std::string why = check(e.text);
    if (!why.empty()) {
      std::fprintf(stderr,
                   "%s: corpus entry '%s' violates the contract: %s\n"
                   "input: %s\n",
                   surface, e.name.c_str(), why.c_str(),
                   escape_for_log(e.text).c_str());
      return 1;
    }
  }
  Mutator mut(opt.seed, std::move(dictionary));
  sim::Rng pick(sim::derive_run_seed(opt.seed, 0x5eed));
  for (std::uint64_t i = 0; i < opt.budget; ++i) {
    const std::string& base = corpus[pick.below(corpus.size())].text;
    const std::string input = mut.mutate(base, corpus, opt.max_len);
    const std::string why = check(input);
    if (!why.empty()) {
      std::fprintf(stderr,
                   "%s: contract violated at --seed %llu iteration %llu: %s\n"
                   "input: %s\n"
                   "replay: --seed %llu --budget %llu\n",
                   surface, static_cast<unsigned long long>(opt.seed),
                   static_cast<unsigned long long>(i), why.c_str(),
                   escape_for_log(input).c_str(),
                   static_cast<unsigned long long>(opt.seed),
                   static_cast<unsigned long long>(i + 1));
      return 1;
    }
  }
  std::printf("%s: %llu corpus entries + %llu mutants, contract held\n", surface,
              static_cast<unsigned long long>(corpus.size()),
              static_cast<unsigned long long>(opt.budget));
  return 0;
}

}  // namespace iosim::fuzz
