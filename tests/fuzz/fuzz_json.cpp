// Fuzzer for json_parse (exp/json_parse.hpp) and report ingestion
// (exp/report.hpp), the two surfaces that read machine-written JSON back in.
//
// Contract: json_parse never crashes or overflows the native stack (the
// original fuzzer-found bug: unbounded recursion on `[[[[...`), and every
// accepted document can be fully walked and queried. render_report must
// treat the same bytes as an untrusted trace/BENCH payload: any input is
// either rendered or rejected with a diagnostic, never a crash.

#include <string>

#include "exp/json_parse.hpp"
#include "exp/report.hpp"
#include "fuzz_util.hpp"

namespace {

using iosim::exp::JsonValue;

// Exhaustively touch the parsed tree: every string/number accessor a real
// consumer (journal, report) would call. Depth is parser-bounded (<= 128).
std::size_t walk(const JsonValue& v) {
  std::size_t n = 1;
  if (v.kind == JsonValue::Kind::kNumber) (void)v.as_u64();
  for (const auto& kv : v.obj) n += walk(kv.second);
  for (const auto& child : v.arr) n += walk(child);
  return n;
}

std::string check_json(const std::string& text) {
  std::string err;
  const auto v = iosim::exp::json_parse(text, &err);
  if (v.has_value()) {
    if (walk(*v) == 0) return "parsed document walked to zero nodes";
  } else if (err.empty()) {
    return "rejected input without a diagnostic";
  }

  // Report ingestion: the same bytes as a trace export and as a BENCH file.
  // Empty result + diagnostic is the rejection path; both must be hygienic.
  std::string rerr;
  const std::string html = iosim::exp::render_report(
      text, {{"fuzz.json", text}}, iosim::exp::ReportOptions{}, &rerr);
  if (html.empty() && rerr.empty()) {
    return "render_report returned empty output without a diagnostic";
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  iosim::fuzz::FuzzOptions opt;
  if (!iosim::fuzz::parse_args(argc, argv, &opt)) return iosim::fuzz::usage(argv[0]);
  return iosim::fuzz::run_campaign(
      "fuzz_json", opt, check_json,
      {"{", "}", "[", "]", ":", ",", "\"", "true", "false", "null", "\\u0041",
       "\\u", "1e308", "-1e308", "1e-308", "18446744073709551615",
       "18446744073709551616", "\"traceEvents\"", "\"name\"", "\"ph\"", "\"ts\"",
       "\"dur\"", "\"args\"", "\"pid\"", "\"tid\"", "\"X\"", "\"i\"",
       "\"iosim_report\"", "\"rows\"", "\"schema\"", "\"label\"", "0.5", "-0"});
}
