// Fuzzer for the fault-plan grammar (fault/fault_plan.hpp).
//
// Contract: FaultPlan::parse never crashes; an accepted plan's to_string()
// re-parses to the same canonical text, and every accepted spec carries
// finite, in-range numbers (NaN/inf seconds would be UB in Time::from_sec_f
// — the original fuzzer-found bug this corpus pins).

#include <cmath>
#include <string>

#include "fault/fault_plan.hpp"
#include "fuzz_util.hpp"

namespace {

using iosim::fault::FaultPlan;

std::string check_fault_plan(const std::string& text) {
  std::string err;
  const auto plan = FaultPlan::parse(text, &err);
  if (!plan.has_value()) return "";  // rejection is always acceptable

  for (const auto& s : plan->specs) {
    if (!std::isfinite(s.probability) || s.probability < 0.0 || s.probability > 1.0) {
      return "accepted spec has out-of-range probability";
    }
    if (!std::isfinite(s.factor)) return "accepted spec has non-finite factor";
    if (s.lba_begin > s.lba_end) return "accepted spec has inverted LBA range";
    if (s.from > s.until) return "accepted spec has inverted time window";
  }

  const std::string canon = plan->to_string();
  std::string err2;
  const auto re = FaultPlan::parse(canon, &err2);
  if (!re.has_value()) {
    return "canonical text failed to re-parse: " + err2 + " | canon: " +
           iosim::fuzz::escape_for_log(canon);
  }
  if (re->to_string() != canon) return "to_string is not idempotent";
  if (re->specs.size() != plan->specs.size()) {
    return "round-trip changed the spec count";
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  iosim::fuzz::FuzzOptions opt;
  if (!iosim::fuzz::parse_args(argc, argv, &opt)) return iosim::fuzz::usage(argv[0]);
  return iosim::fuzz::run_campaign(
      "fuzz_fault_plan", opt, check_fault_plan,
      {"transient:", "lse:", "failslow:", "vmdown:", "switchfail:", "switchdelay:",
       "host=", "vm=", "p=", "lba=", "factor=", "delay=", "from=", "until=",
       ",", ";", "\n", "#", "=", "-", "0-100", "-1", "0.5", "1", "nan", "inf",
       "-inf", "9e9", "1e10", "9.3e9", "1e-300", "99999999999999999999"});
}
