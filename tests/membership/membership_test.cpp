// Unit tests of the cluster-membership service: heartbeat-miss escalation
// (alive -> suspect -> declared dead), rejoin on restart, permanent
// vmcrash/hostcrash deaths, fail-slow blacklisting with the probation
// probe, and the quorum cap that keeps blacklisting from eating the
// cluster. All timing is deterministic — the detector hangs bounded event
// chains off the fault injector's vm_down/vm_up edges, so a drained
// simulator means every chain ran to rest.
#include "membership/membership.hpp"

#include <gtest/gtest.h>

#include <string>

#include "cluster/cluster.hpp"
#include "fault/fault_plan.hpp"
#include "trace/trace.hpp"

namespace iosim::membership {
namespace {

cluster::ClusterConfig faulted(const char* plan_text) {
  cluster::ClusterConfig cfg;
  cfg.n_hosts = 2;
  cfg.vms_per_host = 2;
  std::string err;
  auto plan = fault::FaultPlan::parse(plan_text, &err);
  EXPECT_TRUE(plan.has_value()) << err;
  cfg.faults = plan.value_or(fault::FaultPlan{});
  return cfg;
}

TEST(Membership, OutageEscalatesToDeclaredDeadThenRejoins) {
  trace::TraceSession session;
  cluster::Cluster cl(faulted("vmdown:vm=3,from=5,until=60"));
  MembershipService* ms = cl.membership();
  ASSERT_NE(ms, nullptr);
  cl.simr().run();

  // Down at 5 s, heartbeats every 3 s: suspicion after 2 misses (11 s),
  // declared dead after 4 (17 s), rejoin when the VM restarts at 60 s.
  EXPECT_EQ(ms->counters().suspects, 1u);
  EXPECT_EQ(ms->counters().deaths, 1u);
  EXPECT_EQ(ms->counters().rejoins, 1u);
  EXPECT_EQ(ms->state(3), MembershipService::VmState::kAlive);
  EXPECT_TRUE(ms->schedulable(3));
  const std::string json = session.tracer().to_json();
  for (const char* name : {"tt_suspect", "tt_dead", "tt_rejoin"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

TEST(Membership, ShortOutageNeverReachesSuspicion) {
  // 2 s outage, first miss check at down + 3 s: by then the VM answered.
  cluster::Cluster cl(faulted("vmdown:vm=3,from=5,until=7"));
  cl.simr().run();
  const auto& c = cl.membership()->counters();
  EXPECT_EQ(c.suspects, 0u);
  EXPECT_EQ(c.deaths, 0u);
  EXPECT_EQ(cl.membership()->state(3), MembershipService::VmState::kAlive);
}

TEST(Membership, VmCrashIsPermanentDeath) {
  cluster::Cluster cl(faulted("vmcrash:vm=1,from=2"));
  cl.simr().run();
  MembershipService* ms = cl.membership();
  EXPECT_EQ(ms->counters().deaths, 1u);
  EXPECT_EQ(ms->counters().rejoins, 0u);
  EXPECT_TRUE(ms->declared_dead(1));
  EXPECT_FALSE(ms->schedulable(1));
  EXPECT_TRUE(ms->schedulable(0));
}

TEST(Membership, HostCrashKillsEveryVmOfTheHost) {
  // 2 hosts x 2 VMs: host 1 hosts VMs 2 and 3.
  cluster::Cluster cl(faulted("hostcrash:host=1,from=2"));
  cl.simr().run();
  MembershipService* ms = cl.membership();
  EXPECT_EQ(ms->counters().deaths, 2u);
  EXPECT_TRUE(ms->declared_dead(2));
  EXPECT_TRUE(ms->declared_dead(3));
  EXPECT_TRUE(ms->schedulable(0));
  EXPECT_TRUE(ms->schedulable(1));
}

TEST(Membership, StrikesBlacklistAndProbationProbeRestores) {
  trace::TraceSession session;
  // The benign far-future outage only exists so the injector (and with it
  // the membership service) is constructed at all.
  cluster::Cluster cl(faulted("vmdown:vm=0,from=500,until=501"));
  MembershipService* ms = cl.membership();
  ms->note_task_failure(1);
  ms->note_task_failure(1);
  EXPECT_FALSE(ms->blacklisted(1));  // two strikes: still short of the bar
  ms->note_task_failure(1);
  EXPECT_TRUE(ms->blacklisted(1));
  EXPECT_FALSE(ms->schedulable(1));
  cl.simr().run();
  // The probation probe (30 s) found the VM answering: restored.
  EXPECT_EQ(ms->counters().blacklists, 1u);
  EXPECT_EQ(ms->counters().unblacklists, 1u);
  EXPECT_TRUE(ms->schedulable(1));
  const std::string json = session.tracer().to_json();
  EXPECT_NE(json.find("tt_blacklist"), std::string::npos);
  EXPECT_NE(json.find("tt_probe_ok"), std::string::npos);
}

TEST(Membership, BlacklistCapPreservesSchedulingQuorum) {
  cluster::Cluster cl(faulted("vmdown:vm=0,from=500,until=501"));
  MembershipService* ms = cl.membership();
  for (int vm = 1; vm <= 3; ++vm) {
    for (int s = 0; s < 3; ++s) ms->note_task_failure(vm);
  }
  // At most half of the 4 VMs may ever be blacklisted: the third candidate
  // keeps its slot no matter how many strikes it accumulates.
  EXPECT_EQ(ms->counters().blacklists, 2u);
  int schedulable = 0;
  for (int vm = 0; vm < 4; ++vm) schedulable += ms->schedulable(vm) ? 1 : 0;
  EXPECT_GE(schedulable, 2);
  cl.simr().run();
}

}  // namespace
}  // namespace iosim::membership
