// Tests for the flight-recorder tracer, the metrics registry, and the
// iostat sampler: histogram bucketing edges, ring overflow semantics,
// exported JSON validity (checked with a real parser), and byte-identical
// determinism of same-seed cluster-run traces.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "blk/disk_device.hpp"
#include "cluster/runner.hpp"
#include "core/phase_detector.hpp"
#include "metrics/iostat_sampler.hpp"
#include "metrics/registry_table.hpp"
#include "trace/registry.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim {
namespace {

using trace::Event;
using trace::Ph;
using trace::Tracer;
using trace::TracerConfig;

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, BucketOfEdges) {
  using H = trace::Histogram;
  EXPECT_EQ(H::bucket_of(std::numeric_limits<std::int64_t>::min()), 0);
  EXPECT_EQ(H::bucket_of(-1), 0);
  EXPECT_EQ(H::bucket_of(0), 0);
  EXPECT_EQ(H::bucket_of(1), 1);
  EXPECT_EQ(H::bucket_of(2), 2);
  EXPECT_EQ(H::bucket_of(3), 2);
  EXPECT_EQ(H::bucket_of(4), 3);
  EXPECT_EQ(H::bucket_of(7), 3);
  EXPECT_EQ(H::bucket_of(8), 4);
  EXPECT_EQ(H::bucket_of((std::int64_t{1} << 62) - 1), 62);
  EXPECT_EQ(H::bucket_of(std::int64_t{1} << 62), 63);
  EXPECT_EQ(H::bucket_of(std::numeric_limits<std::int64_t>::max()), 63);
}

TEST(Histogram, BucketBoundsArePartition) {
  using H = trace::Histogram;
  // Every bucket's lo is the previous bucket's hi: values cannot fall
  // between buckets or land in two.
  for (int b = 1; b < H::kBuckets; ++b) {
    EXPECT_EQ(H::bucket_lo(b), H::bucket_hi(b - 1)) << "bucket " << b;
  }
  for (int b = 0; b < H::kBuckets - 1; ++b) {
    EXPECT_EQ(H::bucket_of(H::bucket_lo(b)), b == 0 ? 0 : b);
    EXPECT_EQ(H::bucket_of(H::bucket_hi(b) - 1), b);
  }
}

TEST(Histogram, CountSumMinMax) {
  trace::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  for (std::int64_t v : {5, 100, 3, 1000, 7}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 3);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.sum(), 1115.0);
  EXPECT_DOUBLE_EQ(h.mean(), 223.0);
}

TEST(Histogram, QuantilesClampedAndMonotone) {
  trace::Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(i);
  double prev = -1.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, static_cast<double>(h.min()));
    EXPECT_LE(v, static_cast<double>(h.max()) + 1.0);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  // Log-bucketed: exact to within a factor of 2.
  EXPECT_GT(h.quantile(0.5), 250.0);
  EXPECT_LT(h.quantile(0.5), 1000.0);
}

TEST(Histogram, SingleValueQuantileIsExact) {
  trace::Histogram h;
  for (int i = 0; i < 10; ++i) h.record(42);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 42.0);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, GetOrCreateReturnsStableRefs) {
  trace::Registry reg;
  trace::Counter& a = reg.counter("a");
  a.inc(3);
  EXPECT_EQ(&reg.counter("a"), &a);
  EXPECT_EQ(reg.counter("a").value(), 3);
  reg.gauge("g").set(1.5);
  reg.histogram("h").record(9);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.items()[0].name, "a");
  EXPECT_EQ(reg.items()[1].name, "g");
  EXPECT_EQ(reg.items()[2].name, "h");
}

TEST(Registry, GlobalSessionInstallsAndRestores) {
  EXPECT_EQ(trace::registry(), nullptr);
  {
    trace::MetricsSession s;
    EXPECT_EQ(trace::registry(), &s.registry());
    trace::registry()->counter("x").inc();
    {
      trace::MetricsSession inner;
      EXPECT_EQ(trace::registry(), &inner.registry());
    }
    EXPECT_EQ(trace::registry(), &s.registry());
    EXPECT_EQ(s.registry().counter("x").value(), 1);
  }
  EXPECT_EQ(trace::registry(), nullptr);
}

TEST(Registry, TableRendersEveryItem) {
  trace::Registry reg;
  reg.counter("jobs").inc(2);
  reg.gauge("load").set(0.75);
  for (int i = 1; i <= 100; ++i) reg.histogram("lat_ns").record(i * 1000);
  auto tab = metrics::registry_table(reg);
  const std::string csv = tab.to_csv();
  EXPECT_NE(csv.find("jobs"), std::string::npos);
  EXPECT_NE(csv.find("load"), std::string::npos);
  EXPECT_NE(csv.find("lat_ns"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer ring
// ---------------------------------------------------------------------------

TEST(Tracer, RingOverflowDropsOldestAndCounts) {
  TracerConfig cfg;
  cfg.capacity = 8;
  Tracer tr(cfg);
  const trace::Str bulk = tr.intern("bulk");  // not a pinned name
  const auto t = tr.track("t");
  for (int i = 0; i < 20; ++i) {
    tr.instant(t, bulk, tr.ids.cat_blk, sim::Time::from_ns(i));
  }
  // The first drop also pins one "trace overflow" marker (and counts it as
  // emitted), so the loss is visible in the export even if the counter is
  // overlooked: 8 ring events + 1 marker.
  EXPECT_EQ(tr.size(), 9u);
  EXPECT_EQ(tr.dropped(), 12u);
  EXPECT_EQ(tr.emitted(), 21u);
  EXPECT_EQ(tr.pinned_size(), 1u);
  std::vector<std::int64_t> ts;
  std::size_t markers = 0;
  tr.for_each([&](const Event& e) {
    if (e.name == tr.ids.trace_overflow) {
      ++markers;
      return;
    }
    ts.push_back(e.ts_ns);
  });
  EXPECT_EQ(markers, 1u);  // exactly one marker, no matter how many drops
  ASSERT_EQ(ts.size(), 8u);
  EXPECT_EQ(ts.front(), 12);  // oldest surviving = event 12
  EXPECT_EQ(ts.back(), 19);
  const std::string json = tr.to_json();
  EXPECT_NE(json.find("\"dropped_events\":\"12\""), std::string::npos);
  EXPECT_NE(json.find("trace overflow"), std::string::npos);
}

TEST(Tracer, PinnedEventsSurviveRingOverflow) {
  TracerConfig cfg;
  cfg.capacity = 4;
  Tracer tr(cfg);
  const auto t = tr.track("t");
  // An early milestone, then a flood of bulk events that wraps the ring
  // many times over.
  tr.instant(t, tr.ids.phase, tr.ids.cat_core, sim::Time::from_ns(1),
             tr.ids.index, 0);
  const trace::Str bulk = tr.intern("bulk");
  for (int i = 0; i < 100; ++i) {
    tr.instant(t, bulk, tr.ids.cat_blk, sim::Time::from_ns(10 + i));
  }
  // The milestone plus the first-drop overflow marker.
  EXPECT_EQ(tr.pinned_size(), 2u);
  bool phase_alive = false;
  bool marker_alive = false;
  tr.for_each([&](const Event& e) {
    phase_alive |= (e.name == tr.ids.phase);
    marker_alive |= (e.name == tr.ids.trace_overflow);
  });
  EXPECT_TRUE(phase_alive);
  EXPECT_TRUE(marker_alive);
}

TEST(Tracer, PinnedStoreOverflowFallsBackToRing) {
  TracerConfig cfg;
  cfg.capacity = 4;
  cfg.pinned_capacity = 2;
  Tracer tr(cfg);
  const auto t = tr.track("t");
  for (int i = 0; i < 5; ++i) {
    tr.instant(t, tr.ids.phase, tr.ids.cat_core, sim::Time::from_ns(i));
  }
  EXPECT_EQ(tr.pinned_size(), 2u);
  EXPECT_EQ(tr.size(), 2u + 3u);  // remainder landed in the ring
}

TEST(Tracer, InternIsIdempotentAndOrdered) {
  Tracer tr;
  const auto a = tr.intern("alpha");
  const auto b = tr.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(tr.intern("alpha"), a);
  EXPECT_EQ(tr.str(a), "alpha");
  EXPECT_EQ(tr.track("tr1"), tr.track("tr1"));
  EXPECT_NE(tr.track("tr1"), tr.track("tr2"));
  EXPECT_EQ(tr.n_tracks(), 2u);
}

TEST(Tracer, CsvHasHeaderAndOneLinePerEvent) {
  Tracer tr;
  const auto t = tr.track("t");
  for (int i = 0; i < 5; ++i) {
    tr.counter(t, tr.ids.queued, sim::Time::from_ns(i), i);
  }
  const std::string csv = tr.to_csv();
  std::size_t lines = 0;
  for (char c : csv) lines += (c == '\n');
  EXPECT_EQ(lines, 1u + 5u);
  EXPECT_EQ(csv.substr(0, 2), "ph");
}

// ---------------------------------------------------------------------------
// Minimal JSON parser — enough to validate the exporter's output for real.
// ---------------------------------------------------------------------------

struct MiniJson {
  // Parsed value: one of object/array/string/number/bool-null (as string).
  std::map<std::string, MiniJson> obj;
  std::vector<MiniJson> arr;
  std::string str;  // string value, or number/keyword literal text
  enum Kind { kObj, kArr, kStr, kLit } kind = kLit;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  bool parse(MiniJson& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool value(MiniJson& v) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(v);
    if (c == '[') return array(v);
    if (c == '"') {
      v.kind = MiniJson::kStr;
      return string(v.str);
    }
    return literal(v);
  }
  bool object(MiniJson& v) {
    v.kind = MiniJson::kObj;
    ++pos_;  // {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      MiniJson child;
      if (!value(child)) return false;
      v.obj.emplace(std::move(key), std::move(child));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array(MiniJson& v) {
    v.kind = MiniJson::kArr;
    ++pos_;  // [
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      MiniJson child;
      if (!value(child)) return false;
      v.arr.push_back(std::move(child));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) return false;
            pos_ += 4;  // validated but not decoded; names here are ASCII
            out += '?';
            break;
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }
  bool literal(MiniJson& v) {
    v.kind = MiniJson::kLit;
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    v.str = s_.substr(start, pos_ - start);
    return !v.str.empty();
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// One small (2x2, 32 MB) sort run, traced end to end, with phase
/// observation attached — the shape the acceptance criteria exercise.
std::string traced_small_run_json() {
  trace::TraceSession session;
  cluster::ClusterConfig cfg;
  cfg.n_hosts = 2;
  cfg.vms_per_host = 2;
  auto jc = workloads::make_job(workloads::stream_sort(), 32 * mapred::kMiB);
  const auto plan = core::PhasePlan::for_job(jc, cfg.n_hosts * cfg.vms_per_host);
  cluster::run_job(cfg, jc, [plan](cluster::Cluster&, mapred::Job& job) {
    core::PhaseDetector::attach(job, plan, [](int, sim::Time) {});
  });
  return session.tracer().to_json();
}

TEST(TraceExport, ClusterRunJsonParsesAndContainsExpectedEvents) {
  const std::string json = traced_small_run_json();
  MiniJson root;
  ASSERT_TRUE(JsonParser(json).parse(root)) << "exporter produced invalid JSON";
  ASSERT_EQ(root.kind, MiniJson::kObj);
  ASSERT_TRUE(root.obj.count("traceEvents"));
  ASSERT_TRUE(root.obj.count("otherData"));

  const auto& events = root.obj["traceEvents"];
  ASSERT_EQ(events.kind, MiniJson::kArr);
  ASSERT_GT(events.arr.size(), 100u);

  int meta_names = 0, bio_spans = 0, elv_switch = 0, phase_instants = 0,
      disk_spans = 0, job_marks = 0;
  for (const auto& e : events.arr) {
    ASSERT_EQ(e.kind, MiniJson::kObj);
    auto& eo = const_cast<MiniJson&>(e);
    ASSERT_TRUE(eo.obj.count("ph"));
    const std::string ph = eo.obj["ph"].str;
    const std::string name = eo.obj.count("name") ? eo.obj["name"].str : "";
    const std::string cat = eo.obj.count("cat") ? eo.obj["cat"].str : "";
    if (ph == "M") {
      ++meta_names;
      continue;
    }
    ASSERT_TRUE(eo.obj.count("ts")) << "event without timestamp";
    if (ph == "X") {
      ASSERT_TRUE(eo.obj.count("dur"));
    }
    if (ph == "X" && cat == "blk") ++bio_spans;
    if (ph == "X" && cat == "disk") ++disk_spans;
    if (name == "elv switch") ++elv_switch;
    if (name == "phase") ++phase_instants;
    if (name == "job start" || name == "job done") ++job_marks;
  }
  EXPECT_GT(meta_names, 0) << "thread_name metadata missing";
  EXPECT_GT(bio_spans, 0) << "no bio-level spans";
  EXPECT_GT(disk_spans, 0) << "no disk service spans";
  EXPECT_GT(elv_switch, 0) << "no elevator-switch spans";
  EXPECT_GE(phase_instants, 2) << "phase transitions missing";
  EXPECT_EQ(job_marks, 2) << "job lifecycle instants missing";
}

TEST(TraceExport, SameSeedRunsProduceByteIdenticalTraces) {
  const std::string a = traced_small_run_json();
  const std::string b = traced_small_run_json();
  EXPECT_EQ(a, b);
}

TEST(TraceExport, ElevatorSwitchEmitsBeginEndPair) {
  trace::TraceSession session;
  sim::Simulator simr;
  blk::DiskDevice disk(simr, disk::DiskParams{}, 1);
  blk::BlockLayerConfig cfg;
  cfg.scheduler = iosched::SchedulerKind::kNoop;
  blk::BlockLayer layer(simr, disk, cfg);
  blk::Bio bio;
  bio.lba = 0;
  bio.sectors = 64;
  bio.dir = iosched::Dir::kWrite;
  layer.submit(std::move(bio));
  layer.switch_scheduler(iosched::SchedulerKind::kCfq);
  simr.run();

  auto& tr = session.tracer();
  int begins = 0, ends = 0, drains = 0;
  tr.for_each([&](const Event& e) {
    if (e.name == tr.ids.elv_switch && e.ph == Ph::kBegin) ++begins;
    if (e.name == tr.ids.elv_switch && e.ph == Ph::kEnd) ++ends;
    if (e.name == tr.ids.drain_done) ++drains;
  });
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
  EXPECT_EQ(drains, 1);
}

// ---------------------------------------------------------------------------
// Iostat sampler
// ---------------------------------------------------------------------------

TEST(IostatSampler, TicksStopAtPredicateAndRecordSeries) {
  sim::Simulator simr;
  blk::DiskDevice disk(simr, disk::DiskParams{}, 1);
  blk::BlockLayerConfig cfg;
  cfg.name = "lay0";
  blk::BlockLayer layer(simr, disk, cfg);

  bool done = false;
  int completed = 0;
  for (int i = 0; i < 64; ++i) {
    blk::Bio bio;
    bio.lba = i * 128;
    bio.sectors = 128;
    bio.dir = iosched::Dir::kWrite;
    bio.on_complete = [&](sim::Time, iosched::IoStatus) { done = (++completed == 64); };
    layer.submit(std::move(bio));
  }

  metrics::IostatOptions opt;
  opt.period = sim::Time::from_ms(10);
  metrics::IostatSampler sampler(simr, opt);
  sampler.watch(layer);
  sampler.stop_when([&done] { return done; });
  sampler.start();
  simr.run();  // must terminate: the sampler stops once the I/O is done

  EXPECT_TRUE(done);
  EXPECT_GT(sampler.ticks(), 0u);
  ASSERT_EQ(sampler.n_layers(), 1u);
  EXPECT_EQ(sampler.layer_name(0), "lay0");
  ASSERT_EQ(sampler.series(0).size(), sampler.ticks());
  double written = 0;
  for (const auto& s : sampler.series(0)) written += s.write_mb_s;
  EXPECT_GT(written, 0.0);
  const std::string csv = sampler.table().to_csv();
  EXPECT_NE(csv.find("lay0"), std::string::npos);
}

}  // namespace
}  // namespace iosim
