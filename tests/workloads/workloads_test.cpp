#include <gtest/gtest.h>

#include "workloads/benchmarks.hpp"
#include "workloads/microbench.hpp"

namespace iosim::workloads {
namespace {

using iosched::SchedulerKind;
using sim::Time;

TEST(Benchmarks, WorkloadClassesMatchThePaper) {
  const auto wc = wordcount();
  const auto nc = wordcount_no_combiner();
  const auto srt = stream_sort();
  // "Light": tiny map output with combiner.
  EXPECT_LT(wc.map_output_ratio, 0.2);
  EXPECT_TRUE(wc.combiner);
  // "Moderate": map output ~1.7x input, small job output.
  EXPECT_NEAR(nc.map_output_ratio, 1.7, 0.01);
  EXPECT_LT(nc.reduce_output_ratio, 0.1);
  EXPECT_FALSE(nc.combiner);
  // "Heavy": identity in, identity out.
  EXPECT_DOUBLE_EQ(srt.map_output_ratio, 1.0);
  EXPECT_DOUBLE_EQ(srt.reduce_output_ratio, 1.0);
}

TEST(Benchmarks, WordcountIsCpuHeavy) {
  EXPECT_GT(wordcount().map_cpu_ns_per_byte, 5 * stream_sort().map_cpu_ns_per_byte);
}

TEST(Benchmarks, MakeJobAppliesInputSize) {
  const auto jc = make_job(stream_sort(), 256 * mapred::kMiB);
  EXPECT_EQ(jc.input_bytes_per_vm, 256 * mapred::kMiB);
  EXPECT_EQ(jc.workload.name, "sort");
  EXPECT_EQ(jc.n_maps(4), 16);  // 4 blocks per VM
}

struct SysbenchRig {
  sim::Simulator simr;
  virt::PhysicalHost host;
  explicit SysbenchRig(int vms, SchedulerKind vmm = SchedulerKind::kCfq,
                       SchedulerKind guest = SchedulerKind::kCfq)
      : host(simr,
             [&] {
               virt::HostConfig hc;
               hc.dom0_blk.scheduler = vmm;
               hc.domu.guest_blk.scheduler = guest;
               return hc;
             }(),
             0, 0, 17) {
    for (int i = 0; i < vms; ++i) host.add_vm();
  }
};

TEST(Sysbench, SingleVmCompletes) {
  SysbenchRig r(1);
  SeqWriteParams p;
  p.bytes_per_vm = 64 * 1024 * 1024;
  const auto res = run_seq_writers(r.simr, r.host, p);
  EXPECT_GT(res.elapsed, Time::zero());
  ASSERT_EQ(res.per_vm_done.size(), 1u);
  EXPECT_EQ(res.per_vm_done[0], res.elapsed);
}

TEST(Sysbench, WritesTheConfiguredVolume) {
  SysbenchRig r(2);
  SeqWriteParams p;
  p.bytes_per_vm = 32 * 1024 * 1024;
  (void)run_seq_writers(r.simr, r.host, p);
  // All data plus journal commits reached the disk.
  std::int64_t written = 0;
  written += r.host.dom0_layer().counters().bytes_completed[1];
  EXPECT_GE(written, 2 * p.bytes_per_vm);
}

TEST(Sysbench, ProgressCallbackCoversAllBytes) {
  SysbenchRig r(2);
  SeqWriteParams p;
  p.bytes_per_vm = 16 * 1024 * 1024;
  std::int64_t last = 0, total = 0;
  p.on_progress = [&](std::int64_t done, std::int64_t tot) {
    EXPECT_GE(done, last);
    last = done;
    total = tot;
  };
  (void)run_seq_writers(r.simr, r.host, p);
  EXPECT_EQ(total, 2 * p.bytes_per_vm);
  EXPECT_EQ(last, total);
}

TEST(Sysbench, MoreVmsSlowerSuperlinearly) {
  auto elapsed = [](int vms) {
    SysbenchRig r(vms);
    SeqWriteParams p;
    p.bytes_per_vm = 128 * 1024 * 1024;
    return run_seq_writers(r.simr, r.host, p).elapsed.sec();
  };
  const double e1 = elapsed(1);
  const double e2 = elapsed(2);
  // Superlinear: worse than the 2x a fair bandwidth split alone would give.
  EXPECT_GT(e2, 2.0 * e1);
}

TEST(Sysbench, FsyncBarriersCostTime) {
  auto elapsed = [](int fsync_every) {
    SysbenchRig r(2);
    SeqWriteParams p;
    p.bytes_per_vm = 64 * 1024 * 1024;
    p.fsync_every = fsync_every;
    p.window = fsync_every > 0 ? fsync_every : p.window;
    return run_seq_writers(r.simr, r.host, p).elapsed.sec();
  };
  EXPECT_GT(elapsed(50), elapsed(0));
}

TEST(Sysbench, DeterministicGivenSeed) {
  auto run_once = [] {
    SysbenchRig r(2);
    SeqWriteParams p;
    p.bytes_per_vm = 16 * 1024 * 1024;
    return run_seq_writers(r.simr, r.host, p).elapsed;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(DdParams, ShapeMatchesDd) {
  const auto p = dd_params(600LL * 1024 * 1024);
  EXPECT_EQ(p.bytes_per_vm, 600LL * 1024 * 1024);
  EXPECT_EQ(p.fsync_every, 0);          // no periodic fsync
  EXPECT_EQ(p.io_unit_bytes, 256 * 1024);
  EXPECT_GT(p.files, 0);
}

class SysbenchPairSweep
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, SchedulerKind>> {};

TEST_P(SysbenchPairSweep, CompletesUnderEveryPair) {
  SysbenchRig r(2, std::get<0>(GetParam()), std::get<1>(GetParam()));
  SeqWriteParams p;
  p.bytes_per_vm = 16 * 1024 * 1024;
  const auto res = run_seq_writers(r.simr, r.host, p);
  EXPECT_GT(res.elapsed, Time::zero());
  for (const auto& t : res.per_vm_done) EXPECT_GT(t, Time::zero());
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, SysbenchPairSweep,
    ::testing::Combine(::testing::Values(SchedulerKind::kNoop, SchedulerKind::kDeadline,
                                         SchedulerKind::kAnticipatory, SchedulerKind::kCfq),
                       ::testing::Values(SchedulerKind::kNoop, SchedulerKind::kDeadline,
                                         SchedulerKind::kAnticipatory, SchedulerKind::kCfq)),
    [](const auto& param_info) {
      return std::string(to_string(std::get<0>(param_info.param))) + "_" +
             to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace iosim::workloads
