#include "hdfs/hdfs.hpp"

#include <gtest/gtest.h>

#include <map>

namespace iosim::hdfs {
namespace {

Hdfs::AllocFn bump_alloc(std::map<int, Lba>& cursors) {
  return [&cursors](int vm, Lba sectors) {
    const Lba at = cursors[vm];
    cursors[vm] += sectors;
    return at;
  };
}

TEST(Hdfs, HostOf) {
  Hdfs dfs(16, 4, 1);
  EXPECT_EQ(dfs.host_of(0), 0);
  EXPECT_EQ(dfs.host_of(3), 0);
  EXPECT_EQ(dfs.host_of(4), 1);
  EXPECT_EQ(dfs.host_of(15), 3);
}

TEST(Hdfs, CreateInputBalancedPrimaries) {
  Hdfs dfs(8, 4, 1);
  std::map<int, Lba> cursors;
  const auto blocks = dfs.create_input(4, 64 << 20, bump_alloc(cursors));
  EXPECT_EQ(blocks.size(), 32u);
  std::map<int, int> primaries;
  for (const auto& b : blocks) {
    ASSERT_EQ(b.replicas.size(), 2u);
    ++primaries[b.replicas[0].vm];
  }
  for (int vm = 0; vm < 8; ++vm) EXPECT_EQ(primaries[vm], 4);
}

TEST(Hdfs, SecondReplicaOnDifferentHost) {
  Hdfs dfs(16, 4, 2);
  std::map<int, Lba> cursors;
  const auto blocks = dfs.create_input(8, 64 << 20, bump_alloc(cursors));
  for (const auto& b : blocks) {
    EXPECT_NE(dfs.host_of(b.replicas[0].vm), dfs.host_of(b.replicas[1].vm));
  }
}

TEST(Hdfs, SingleHostReplicaOnDifferentVm) {
  Hdfs dfs(4, 4, 3);
  std::map<int, Lba> cursors;
  const auto blocks = dfs.create_input(4, 64 << 20, bump_alloc(cursors));
  for (const auto& b : blocks) {
    EXPECT_NE(b.replicas[0].vm, b.replicas[1].vm);
  }
}

TEST(Hdfs, SingleVmDegenerates) {
  Hdfs dfs(1, 1, 4);
  std::map<int, Lba> cursors;
  const auto blocks = dfs.create_input(2, 64 << 20, bump_alloc(cursors));
  EXPECT_EQ(blocks.size(), 2u);
  for (const auto& b : blocks) EXPECT_EQ(b.replicas[1].vm, 0);
}

TEST(Hdfs, PickReplicaPrefersLocal) {
  Hdfs dfs(8, 4, 5);
  DfsBlock b;
  b.replicas = {{3, 100}, {6, 200}};
  EXPECT_EQ(dfs.pick_replica(b, 3).vm, 3);
  EXPECT_EQ(dfs.pick_replica(b, 6).vm, 6);
}

TEST(Hdfs, PickReplicaPrefersSameHost) {
  Hdfs dfs(8, 4, 5);
  DfsBlock b;
  b.replicas = {{1, 100}, {6, 200}};  // hosts 0 and 1
  EXPECT_EQ(dfs.pick_replica(b, 2).vm, 1);  // reader host 0
  EXPECT_EQ(dfs.pick_replica(b, 7).vm, 6);  // reader host 1
}

TEST(Hdfs, PickReplicaFallsBackToPrimary) {
  Hdfs dfs(12, 4, 5);
  DfsBlock b;
  b.replicas = {{0, 100}, {4, 200}};  // hosts 0 and 1
  EXPECT_EQ(dfs.pick_replica(b, 9).vm, 0);  // reader host 2: remote anyway
}

TEST(Hdfs, RemoteReplicaVmAvoidsWriterHost) {
  Hdfs dfs(16, 4, 6);
  for (int i = 0; i < 64; ++i) {
    const int target = dfs.pick_remote_replica_vm(5);
    EXPECT_NE(dfs.host_of(target), dfs.host_of(5));
  }
}

TEST(Hdfs, RemoteReplicaRoundRobinsTargets) {
  Hdfs dfs(16, 4, 7);
  std::map<int, int> counts;
  for (int i = 0; i < 120; ++i) ++counts[dfs.pick_remote_replica_vm(0)];
  // 12 eligible VMs (3 other hosts): each should be hit ~10 times.
  EXPECT_EQ(counts.size(), 12u);
  for (const auto& [vm, n] : counts) {
    (void)vm;
    EXPECT_NEAR(n, 10, 1);
  }
}

TEST(Hdfs, BlockIdsAreDense) {
  Hdfs dfs(4, 4, 8);
  std::map<int, Lba> cursors;
  const auto blocks = dfs.create_input(3, 64 << 20, bump_alloc(cursors));
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].id, static_cast<int>(i));
    EXPECT_EQ(blocks[i].bytes, 64 << 20);
  }
}

TEST(Hdfs, AllocationsAreSized) {
  Hdfs dfs(2, 2, 9);
  std::map<int, Lba> cursors;
  const std::int64_t block_bytes = 64 << 20;
  const auto blocks = dfs.create_input(2, block_bytes, bump_alloc(cursors));
  // Each VM hosts some primaries and some replicas; every allocation was
  // exactly block-sized, so cursors are multiples of the block sectors.
  const Lba sectors = block_bytes / disk::kSectorBytes;
  std::int64_t total = 0;
  for (const auto& [vm, cur] : cursors) {
    (void)vm;
    EXPECT_EQ(cur % sectors, 0);
    total += cur / sectors;
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(blocks.size()) * 2);
}

// ---- failure-aware selection (pick_replica_if / alive-filtered writes) ----

TEST(Hdfs, PickReplicaIfSkipsDeadLocalReplica) {
  Hdfs dfs(8, 4, 5);
  DfsBlock b;
  b.replicas = {{3, 100}, {6, 200}};
  const auto dead3 = [](int vm) { return vm != 3; };
  const auto* r = dfs.pick_replica_if(b, 3, dead3);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->vm, 6);  // local copy dead: go remote
}

TEST(Hdfs, PickReplicaIfPrefersAliveSameHost) {
  Hdfs dfs(8, 4, 5);
  DfsBlock b;
  b.replicas = {{1, 100}, {6, 200}};  // hosts 0 and 1
  // Reader on host 0; the host-0 replica is dead, so the remote one wins.
  const auto* r = dfs.pick_replica_if(b, 2, [](int vm) { return vm != 1; });
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->vm, 6);
}

TEST(Hdfs, PickReplicaIfSingleHostCluster) {
  Hdfs dfs(4, 4, 5);  // one host: every replica is same-host
  DfsBlock b;
  b.replicas = {{0, 100}, {1, 200}};
  const auto* r = dfs.pick_replica_if(b, 2, [](int) { return true; });
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->vm, 0);  // no local copy: first same-host replica
  r = dfs.pick_replica_if(b, 2, [](int vm) { return vm != 0; });
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->vm, 1);
}

TEST(Hdfs, PickReplicaIfAllReplicasDeadReturnsNull) {
  Hdfs dfs(8, 4, 5);
  DfsBlock b;
  b.replicas = {{1, 100}, {6, 200}};
  EXPECT_EQ(dfs.pick_replica_if(b, 1, [](int) { return false; }), nullptr);
}

TEST(Hdfs, PickReplicaIfMatchesUnfilteredWhenAllAlive) {
  Hdfs dfs(16, 4, 5);
  DfsBlock b;
  b.replicas = {{2, 100}, {9, 200}};
  for (int reader = 0; reader < 16; ++reader) {
    const auto* r = dfs.pick_replica_if(b, reader, [](int) { return true; });
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->vm, dfs.pick_replica(b, reader).vm);
  }
}

TEST(Hdfs, RemoteReplicaVmSkipsDeadTargets) {
  Hdfs dfs(8, 4, 6);  // hosts {0..3} and {4..7}
  const auto only7 = [](int vm) { return vm == 7 || vm < 4; };
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(dfs.pick_remote_replica_vm(0, only7), 7);
  }
}

TEST(Hdfs, RemoteReplicaVmRelaxesRackWhenRemoteHostDead) {
  Hdfs dfs(8, 4, 6);
  // Every VM on the other host is dead: fall back to a same-host target
  // rather than dropping the replica.
  const auto host0_only = [](int vm) { return vm < 4; };
  for (int i = 0; i < 16; ++i) {
    const int t = dfs.pick_remote_replica_vm(0, host0_only);
    ASSERT_GE(t, 0);
    EXPECT_NE(t, 0);  // never the writer itself
    EXPECT_LT(t, 4);
  }
}

TEST(Hdfs, RemoteReplicaVmAllOthersDeadReturnsMinusOne) {
  Hdfs dfs(8, 4, 6);
  EXPECT_EQ(dfs.pick_remote_replica_vm(5, [](int vm) { return vm == 5; }), -1);
  EXPECT_EQ(dfs.pick_remote_replica_vm(5, [](int) { return false; }), -1);
}

}  // namespace
}  // namespace iosim::hdfs
