// iosim: mutation tests proving the invariant auditor is not vacuous.
//
// Every test here is a deliberately broken execution — a test double that
// drops a bio completion, reorders stage stamps, leaks an event slot, and
// so on — and asserts that the auditor flags exactly the corresponding
// invariant. Deleting an invariant check from check.cpp makes its test
// fail, which is the whole point: the correctness net must itself be
// testable. Clean-path tests at the top pin the converse (a healthy run
// reports nothing).
#include "check/check.hpp"

#include <gtest/gtest.h>

#include "blk/block_layer.hpp"
#include "blk/request_sink.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "sim/simulator.hpp"

namespace iosim::check {
namespace {

using namespace iosim::sim::literals;
using sim::Time;

// ---- clean paths -----------------------------------------------------------

TEST(Auditor, CleanClusterRunReportsNothing) {
  // Whole-stack smoke: a real job through virt + blk + mapred + hdfs with
  // every hook armed must produce zero violations.
  const auto spec = exp::ScenarioSpec::parse(
      "name=clean\nmode=run\nbase_seed=7\nrepeats=1\npair=cc\n"
      "workload=sort\nhosts=1\nvms=2\nmb=16\nfault=none\n");
  ASSERT_TRUE(spec.has_value());
  const auto pts = spec->expand();
  ASSERT_EQ(pts.size(), 1u);

  AuditorSession cs(Auditor::Mode::kRecord);
  const exp::RunOutput out = exp::execute_point(pts[0], 42);
  EXPECT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(cs.auditor().ok()) << cs.auditor().report().to_string();
}

TEST(Auditor, CleanFaultyRunReportsNothing) {
  // Injected faults (retries, failover) are legitimate simulated outcomes,
  // not invariant violations.
  const auto spec = exp::ScenarioSpec::parse(
      "name=faulty\nmode=run\nbase_seed=3\nrepeats=1\npair=nd\n"
      "workload=sort\nhosts=1\nvms=2\nmb=16\n"
      "fault=transient:host=-1,p=0.01;lse:host=0,lba=0-512\n");
  ASSERT_TRUE(spec.has_value());
  AuditorSession cs(Auditor::Mode::kRecord);
  (void)exp::execute_point(spec->expand()[0], 9);
  EXPECT_TRUE(cs.auditor().ok()) << cs.auditor().report().to_string();
}

TEST(Auditor, HealthySimulatorPassesAudit) {
  sim::Simulator s;
  int fired = 0;
  for (int i = 0; i < 100; ++i) s.after(Time::from_us(i), [&] { ++fired; });
  // Cancel a few to exercise the free list, then drain.
  auto id = s.after(1_ms, [&] { ++fired; });
  s.cancel(id);
  s.run();
  std::string why;
  EXPECT_TRUE(s.audit(&why)) << why;

  AuditorSession cs(Auditor::Mode::kRecord);
  verify_simulator(cs.auditor(), s, /*drained=*/true);
  EXPECT_TRUE(cs.auditor().ok()) << cs.auditor().report().to_string();
}

TEST(Auditor, UnstampedMidPathStagesAreLegal) {
  // A Dom0-only request never gets the guest-side stamps; gaps are fine as
  // long as the stamped stages stay ordered and the endpoints exist.
  AuditorSession cs(Auditor::Mode::kRecord);
  const std::int64_t stamp[6] = {100, -1, 250, -1, -1, 900};
  cs.auditor().on_stamps(0, 0, stamp, 6, 900);
  EXPECT_TRUE(cs.auditor().ok());
}

// ---- mutation: dropped bio completion --------------------------------------

/// A sink that swallows every `drop_every`-th request: it never completes,
/// so the layer's conservation ledger cannot balance at drain.
class DroppingSink : public blk::RequestSink {
 public:
  DroppingSink(sim::Simulator& simr, int drop_every)
      : simr_(simr), drop_every_(drop_every) {}

  bool can_accept() const override { return true; }
  void submit(blk::Request* rq, Time /*now*/) override {
    ++seen_;
    if (drop_every_ > 0 && seen_ % drop_every_ == 0) return;  // lost forever
    simr_.after(Time::from_us(50), [this, rq] {
      rq->status = iosched::IoStatus::kOk;
      complete(rq, simr_.now());
    });
  }

 private:
  sim::Simulator& simr_;
  int drop_every_;
  int seen_ = 0;
};

TEST(Auditor, DroppedCompletionTriggersBioConservation) {
  sim::Simulator simr;
  DroppingSink sink(simr, /*drop_every=*/3);
  blk::BlockLayerConfig cfg;
  cfg.scheduler = iosched::SchedulerKind::kNoop;
  cfg.name = "test/dropper";
  blk::BlockLayer layer(simr, sink, cfg);

  AuditorSession cs(Auditor::Mode::kRecord);
  for (int i = 0; i < 6; ++i) {
    blk::Bio b;
    b.lba = i * 100'000;  // far apart: no merging, six distinct requests
    b.sectors = 8;
    b.dir = i % 2 ? iosched::Dir::kRead : iosched::Dir::kWrite;
    b.sync = true;
    layer.submit(std::move(b));
  }
  simr.run();

  EXPECT_TRUE(cs.auditor().ok());  // nothing wrong until the drain check
  cs.auditor().verify_end_of_run(simr.now().ns());
  EXPECT_GT(cs.auditor().count(Invariant::kBioConservation), 0u)
      << cs.auditor().report().to_string();
}

// ---- mutation: reordered stage stamps --------------------------------------

TEST(Auditor, ReorderedStampsTriggerMonotonicity) {
  AuditorSession cs(Auditor::Mode::kRecord);
  // Guest dispatch stamped *after* ring arrival in time order, but swapped:
  // stage 2 carries an earlier time than stage 1.
  const std::int64_t stamp[6] = {100, 400, 300, 500, 600, 900};
  cs.auditor().on_stamps(0, 1, stamp, 6, 900);
  EXPECT_EQ(cs.auditor().count(Invariant::kStampMonotonicity), 1u);
}

TEST(Auditor, MissingEndpointStampsAreViolations) {
  AuditorSession cs(Auditor::Mode::kRecord);
  const std::int64_t no_submit[6] = {-1, 200, 300, 400, 500, 900};
  const std::int64_t no_complete[6] = {100, 200, 300, 400, 500, -1};
  cs.auditor().on_stamps(0, 0, no_submit, 6, 900);
  cs.auditor().on_stamps(0, 0, no_complete, 6, 900);
  EXPECT_EQ(cs.auditor().count(Invariant::kStampMonotonicity), 2u);
}

// ---- mutation: leaked event slot -------------------------------------------

TEST(Auditor, PendingEventAfterDrainTriggersArenaLeak) {
  sim::Simulator s;
  s.after(10_ms, [] {});  // never run: still pending when we call it drained
  AuditorSession cs(Auditor::Mode::kRecord);
  verify_simulator(cs.auditor(), s, /*drained=*/true);
  EXPECT_GT(cs.auditor().count(Invariant::kEventArenaLeak), 0u)
      << cs.auditor().report().to_string();
}

// ---- mutation: double dispatch / double completion -------------------------

TEST(Auditor, DoubleDispatchDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  const void* layer = &a;
  a.on_request_dispatched(layer, "l", 7, 100);
  a.on_request_dispatched(layer, "l", 7, 200);  // still in flight
  EXPECT_EQ(a.count(Invariant::kDoubleDispatch), 1u);
}

TEST(Auditor, DoubleCompletionDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  const void* layer = &a;
  a.on_bio_submitted(layer, "l", /*ctx=*/0, 0);
  a.on_request_dispatched(layer, "l", 7, 100);
  a.on_request_completed(layer, "l", 7, 1, true, 200);
  a.on_request_completed(layer, "l", 7, 1, true, 300);  // completed twice
  EXPECT_EQ(a.count(Invariant::kDoubleCompletion), 1u);
  // The duplicate must not double-count bios: conservation still balances.
  a.verify_end_of_run(400);
  EXPECT_EQ(a.count(Invariant::kBioConservation), 0u);
}

// ---- mutation: elevator accounting -----------------------------------------

TEST(Auditor, ElevatorAccountingImbalanceDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_queue_accounting(&a, "l", 2, 1, 4, 100);  // 2 + 1 != 4
  EXPECT_EQ(a.count(Invariant::kElevatorAccounting), 1u);
  a.on_queue_accounting(&a, "l", 2, 2, 4, 200);  // balanced: no new violation
  EXPECT_EQ(a.count(Invariant::kElevatorAccounting), 1u);
}

// ---- mutation: ring bounds -------------------------------------------------

TEST(Auditor, RingOverfillDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_ring_submit(&a, 1, /*before=*/32, /*n_segs=*/1, /*slots=*/32, 100);
  EXPECT_GT(a.count(Invariant::kRingBounds), 0u);
}

TEST(Auditor, RingNegativeOutstandingDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_ring_complete(&a, /*after=*/-1, 100);
  EXPECT_GT(a.count(Invariant::kRingBounds), 0u);
}

TEST(Auditor, RingNotDrainedDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_ring_submit(&a, 2, /*before=*/0, /*n_segs=*/3, /*slots=*/32, 100);
  EXPECT_TRUE(a.ok());
  a.verify_end_of_run(200);  // 3 segments never completed
  EXPECT_EQ(a.count(Invariant::kRingBounds), 1u);
}

// ---- mutation: task state machine ------------------------------------------

TEST(Auditor, AttemptBeyondBudgetDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_job_start(/*job_id=*/0, /*n_maps=*/2, /*n_reduces=*/1, /*max_attempts=*/3);
  a.on_map_attempt_start(0, 0, /*attempt=*/4, /*vm=*/0, /*running_after=*/1, false,
                         100);
  EXPECT_EQ(a.count(Invariant::kTaskStateMachine), 1u);
}

TEST(Auditor, TooManyRunningCopiesDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_job_start(0, 2, 1, 3);
  a.on_map_attempt_start(0, 0, 1, /*vm=*/0, /*running_after=*/3, true, 100);
  EXPECT_EQ(a.count(Invariant::kTaskStateMachine), 1u);
}

TEST(Auditor, DoubleCommitDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_job_start(0, 2, 1, 3);
  a.on_map_commit(0, 0, 100);
  a.on_map_commit(0, 0, 200);  // photo-finish guard failed
  EXPECT_EQ(a.count(Invariant::kTaskStateMachine), 1u);
}

TEST(Auditor, AttemptAfterCommitDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_job_start(0, 2, 1, 3);
  a.on_map_commit(0, 1, 100);
  a.on_map_attempt_start(0, 1, 2, /*vm=*/0, 1, false, 200);
  EXPECT_EQ(a.count(Invariant::kTaskStateMachine), 1u);
}

TEST(Auditor, JobDoneWithMissingCommitsDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_job_start(0, 2, 1, 3);
  a.on_map_commit(0, 0, 100);  // map 1 never commits
  a.on_reduce_commit(0, 0, 200);
  a.on_job_done(0, /*maps_done=*/2, /*reduces_done=*/1, 300);
  EXPECT_GT(a.count(Invariant::kTaskStateMachine), 0u);
}

// ---- mutation: block refcounts ---------------------------------------------

TEST(Auditor, CollocatedReplicasDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_job_start(0, 1, 1, 3);
  a.on_block_created(0, 2, /*vm0=*/1, /*vm1=*/1, /*n_vms=*/4, 0);
  EXPECT_EQ(a.count(Invariant::kBlockRefcount), 1u);
}

TEST(Auditor, FailoverToNonReplicaDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_job_start(0, 1, 1, 3);
  a.on_block_created(0, 2, 0, 1, 4, 0);
  a.on_hdfs_failover(0, 0, /*from_vm=*/0, /*to_vm=*/3, 100);  // vm3 holds nothing
  EXPECT_EQ(a.count(Invariant::kBlockRefcount), 1u);
}

TEST(Auditor, FailoverToSelfDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_job_start(0, 1, 1, 3);
  a.on_block_created(0, 2, 0, 1, 4, 0);
  a.on_hdfs_failover(0, 0, /*from_vm=*/1, /*to_vm=*/1, 100);
  EXPECT_EQ(a.count(Invariant::kBlockRefcount), 1u);
}

// ---- mutation: slot conservation -------------------------------------------

TEST(Auditor, SlotOverCapacityDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_slot_acquire(/*job_id=*/1, /*vm=*/0, /*reduce=*/false,
                    /*in_use_after=*/3, /*capacity=*/2, 100);
  EXPECT_EQ(a.count(Invariant::kSlotConservation), 1u);
}

TEST(Auditor, SlotReleaseWithNoneInUseDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_slot_acquire(1, 0, false, 1, 2, 100);
  a.on_slot_release(1, 0, false, /*in_use_before=*/0, 200);
  EXPECT_EQ(a.count(Invariant::kSlotConservation), 1u);
}

TEST(Auditor, ReleaseOfNeverHeldSlotDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  // Job 2 releases a reduce slot that job 1 acquired.
  a.on_slot_acquire(1, 0, true, 1, 2, 100);
  a.on_slot_release(2, 0, true, 1, 200);
  EXPECT_EQ(a.count(Invariant::kSlotConservation), 1u);
}

TEST(Auditor, RetireWhileHoldingSlotsDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_stream_job_admit(1, 2'000'000, 3'000'000, 0);
  a.on_slot_acquire(1, 0, false, 1, 2, 100);
  a.on_stream_job_retire(1, 200);
  EXPECT_EQ(a.count(Invariant::kSlotConservation), 1u);
}

TEST(Auditor, DrainWhileHoldingSlotsDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_slot_acquire(1, 0, false, 1, 2, 100);
  EXPECT_TRUE(a.ok());
  a.verify_end_of_run(200);
  EXPECT_EQ(a.count(Invariant::kSlotConservation), 1u);
}

TEST(Auditor, BalancedSlotLifecycleIsClean) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_stream_job_admit(1, 2'000'000, 3'000'000, 0);
  a.on_slot_acquire(1, 0, false, 1, 2, 100);
  a.on_slot_acquire(1, 1, true, 1, 1, 110);
  a.on_slot_release(1, 0, false, 1, 200);
  a.on_slot_release(1, 1, true, 1, 210);
  a.on_stream_job_retire(1, 300);
  a.verify_end_of_run(400);
  EXPECT_TRUE(a.ok()) << a.report().to_string();
}

// ---- mutation: cross-job attribution ---------------------------------------

TEST(Auditor, BioOutsideAnyJobWindowDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_stream_job_admit(1, 2'000'000, 3'000'000, 0);
  a.on_bio_submitted(&a, "l", /*ctx=*/2'010'000, 100);  // inside: fine
  a.on_bio_submitted(&a, "l", /*ctx=*/3'010'000, 200);  // no job owns this
  EXPECT_EQ(a.count(Invariant::kJobAttribution), 1u);
}

TEST(Auditor, BioFromRetiredJobDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_stream_job_admit(1, 2'000'000, 3'000'000, 0);
  a.on_stream_job_retire(1, 100);
  a.on_bio_submitted(&a, "l", /*ctx=*/2'010'000, 200);  // job already gone
  EXPECT_EQ(a.count(Invariant::kJobAttribution), 1u);
}

TEST(Auditor, SharedServerCtxIsNeverJobAttributed) {
  // Server-side DataNode I/O (ctx below the job-window base) is shared
  // infrastructure; the attribution guard must ignore it even when armed.
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_stream_job_admit(1, 2'000'000, 3'000'000, 0);
  a.on_bio_submitted(&a, "l", /*ctx=*/30'001, 100);
  EXPECT_TRUE(a.ok()) << a.report().to_string();
}

TEST(Auditor, OverlappingJobWindowsDetected) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  a.on_stream_job_admit(1, 2'000'000, 3'000'000, 0);
  a.on_stream_job_admit(2, 2'500'000, 3'500'000, 100);
  EXPECT_EQ(a.count(Invariant::kJobAttribution), 1u);
}

// ---- report formatting -----------------------------------------------------

TEST(CheckReport, ToStringListsCountsAndFirstOccurrences) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  EXPECT_EQ(a.report().to_string(), "");
  a.violation(Invariant::kRingBounds, "ring/vm1", 1'500'000'000,
              "outstanding went negative");
  const std::string s = a.report().to_string();
  EXPECT_NE(s.find("invariant violations: 1"), std::string::npos) << s;
  EXPECT_NE(s.find("ring-bounds: 1"), std::string::npos) << s;
  EXPECT_NE(s.find("t=1.500000s"), std::string::npos) << s;
  EXPECT_NE(s.find("outstanding went negative"), std::string::npos) << s;
}

TEST(CheckReport, LoggingCapKeepsCountsExact) {
  AuditorSession cs(Auditor::Mode::kRecord);
  Auditor& a = cs.auditor();
  for (int i = 0; i < 100; ++i) {
    a.violation(Invariant::kElevatorAccounting, "l", i, "imbalance");
  }
  EXPECT_EQ(a.violations_total(), 100u);
  EXPECT_EQ(a.report().first.size(), CheckReport::kMaxLogged);
  EXPECT_NE(a.report().to_string().find("36 more not logged"), std::string::npos);
}

// ---- abort mode ------------------------------------------------------------

TEST(AuditorDeathTest, AbortModeDiesOnFirstViolation) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Auditor a(Auditor::Mode::kAbort);
        a.violation(Invariant::kDoubleCompletion, "l", 0, "boom");
      },
      "invariant violated");
}

}  // namespace
}  // namespace iosim::check
