#include "core/meta_scheduler.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim::core {
namespace {

using cluster::ClusterConfig;

ClusterConfig tiny() {
  ClusterConfig cfg;
  cfg.n_hosts = 2;
  cfg.vms_per_host = 2;
  return cfg;
}

mapred::JobConf small_sort() {
  return workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
}

MetaSchedulerOptions opts_for(const mapred::JobConf& jc, int n_vms) {
  MetaSchedulerOptions o;
  o.plan = PhasePlan::for_job(jc, n_vms);
  return o;
}

TEST(MetaScheduler, ProfileCoversAllSixteenPairs) {
  const auto jc = small_sort();
  MetaScheduler ms(tiny(), jc, opts_for(jc, 4));
  const auto profile = ms.profile_all_pairs();
  ASSERT_EQ(profile.size(), 16u);
  std::set<int> seen;
  for (const auto& e : profile) {
    seen.insert(e.pair.index());
    EXPECT_GT(e.total_seconds, 0.0);
    ASSERT_EQ(e.phase_seconds.size(),
              static_cast<std::size_t>(opts_for(jc, 4).plan.count()));
    double sum = 0;
    for (double p : e.phase_seconds) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, e.total_seconds, e.total_seconds * 0.01);
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(MetaScheduler, OptimizeProducesValidSolution) {
  const auto jc = small_sort();
  const auto opts = opts_for(jc, 4);
  MetaScheduler ms(tiny(), jc, opts);
  const MetaResult r = ms.optimize();

  ASSERT_EQ(r.solution.count(), opts.plan.count());
  ASSERT_TRUE(r.solution.phases[0].has_value());
  EXPECT_GT(r.adaptive_seconds, 0.0);
  EXPECT_GT(r.default_seconds, 0.0);
  EXPECT_GT(r.best_single_seconds, 0.0);
  EXPECT_LE(r.best_single_seconds, r.default_seconds);
  EXPECT_EQ(r.profile.size(), 16u);
  // Algorithm 1's bound: at most P x S full executions beyond profiling.
  EXPECT_LE(r.heuristic_evaluations, opts.plan.count() * 16);
  EXPECT_GE(r.heuristic_evaluations, opts.plan.count());
}

TEST(MetaScheduler, AdaptiveNotMeaningfullyWorseThanBestSingle) {
  // The heuristic evaluates the best single pair as a candidate schedule,
  // so the solution can only beat it or tie it (up to one switch cost).
  const auto jc = small_sort();
  MetaScheduler ms(tiny(), jc, opts_for(jc, 4));
  const MetaResult r = ms.optimize();
  EXPECT_LE(r.adaptive_seconds, r.best_single_seconds * 1.05);
}

TEST(MetaScheduler, ExecuteMatchesOptimizeResult) {
  const auto jc = small_sort();
  MetaScheduler ms(tiny(), jc, opts_for(jc, 4));
  const MetaResult r = ms.optimize();
  const auto rerun = ms.execute(r.solution);
  EXPECT_NEAR(rerun.seconds, r.adaptive_seconds, 1e-9);  // deterministic
}

TEST(MetaScheduler, ImprovementAccessors) {
  MetaResult r;
  r.adaptive_seconds = 75;
  r.default_seconds = 100;
  r.best_single_seconds = 90;
  EXPECT_NEAR(r.improvement_vs_default(), 0.25, 1e-12);
  EXPECT_NEAR(r.improvement_vs_best_single(), 1.0 - 75.0 / 90.0, 1e-12);
}

TEST(MetaScheduler, ThreePhasePlanWorks) {
  // One-wave configuration: the plan keeps the shuffle tail separate.
  auto jc = workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
  MetaSchedulerOptions o;
  o.plan = PhasePlan{/*merge_shuffle_tail=*/false};
  MetaScheduler ms(tiny(), jc, o);
  const MetaResult r = ms.optimize();
  EXPECT_EQ(r.solution.count(), 3);
  EXPECT_GT(r.adaptive_seconds, 0.0);
}

TEST(MetaScheduler, StalenessBoundForcesRefreshButKeepsValidSolution) {
  // A bound shorter than one profiling pass makes every entry stale by the
  // time the greedy search ranks it, forcing an in-place re-profile. The
  // search must still return a measured (never fabricated) solution.
  const auto jc = small_sort();
  auto o = opts_for(jc, 4);
  o.profile_staleness_bound = sim::Time::from_sec(1);
  MetaScheduler ms(tiny(), jc, o);
  const MetaResult r = ms.optimize();
  ASSERT_EQ(r.solution.count(), o.plan.count());
  ASSERT_TRUE(r.solution.phases[0].has_value());
  EXPECT_GT(r.adaptive_seconds, 0.0);
  for (const auto& e : r.profile) {
    EXPECT_GT(e.measured_at, sim::Time::zero());  // every entry re-stamped
    EXPECT_GT(e.total_seconds, 0.0);
  }
}

TEST(MetaScheduler, DisabledStalenessBoundMatchesDefaultSearch) {
  // zero() disables aging: the search must behave exactly as before the
  // staleness machinery existed.
  const auto jc = small_sort();
  MetaScheduler a(tiny(), jc, opts_for(jc, 4));
  auto o = opts_for(jc, 4);
  o.profile_staleness_bound = sim::Time::zero();
  MetaScheduler b(tiny(), jc, o);
  const MetaResult ra = a.optimize();
  const MetaResult rb = b.optimize();
  EXPECT_EQ(ra.solution.to_string(), rb.solution.to_string());
  EXPECT_NEAR(ra.adaptive_seconds, rb.adaptive_seconds, 1e-9);
  EXPECT_EQ(ra.heuristic_evaluations, rb.heuristic_evaluations);
}

TEST(MetaScheduler, ProfileEntriesCarryMeasurementTimestamps) {
  const auto jc = small_sort();
  MetaScheduler ms(tiny(), jc, opts_for(jc, 4));
  const auto profile = ms.profile_all_pairs();
  sim::Time prev = sim::Time::zero();
  for (const auto& e : profile) {
    EXPECT_GT(e.measured_at, prev);  // meta clock advances per measurement
    prev = e.measured_at;
  }
}

TEST(MetaScheduler, SingleScheduleExecutesWithoutSwitch) {
  const auto jc = small_sort();
  MetaScheduler ms(tiny(), jc, opts_for(jc, 4));
  const auto single = PairSchedule::single(iosched::kDefaultPair, 2);
  const auto r = ms.execute(single);
  EXPECT_GT(r.seconds, 0.0);
  // Equals the plain fixed-pair run exactly. execute() averages over one
  // derived seed, so the reference run uses derive_run_seed(base, 0).
  ClusterConfig derived = tiny();
  derived.seed = sim::derive_run_seed(derived.seed, 0);
  const auto plain = cluster::run_job(derived, jc);
  EXPECT_NEAR(r.seconds, plain.seconds, 1e-9);
}

}  // namespace
}  // namespace iosim::core
