// Tests for phase planning/detection, pair schedules, and the adaptive
// controller.
#include <gtest/gtest.h>

#include "cluster/runner.hpp"
#include "core/adaptive_controller.hpp"
#include "core/pair_schedule.hpp"
#include "core/phase_detector.hpp"
#include "core/phase_plan.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim::core {
namespace {

using cluster::ClusterConfig;
using iosched::SchedulerKind;
using sim::Time;

ClusterConfig tiny() {
  ClusterConfig cfg;
  cfg.n_hosts = 2;
  cfg.vms_per_host = 2;
  return cfg;
}

TEST(PhasePlan, WavesFormulaMatchesTableII) {
  auto jc = workloads::make_job(workloads::stream_sort(), 512 * mapred::kMiB);
  // 8 blocks per VM over 2 map slots = 4 waves, any VM count.
  EXPECT_DOUBLE_EQ(PhasePlan::waves(jc, 16), 4.0);
  EXPECT_DOUBLE_EQ(PhasePlan::waves(jc, 4), 4.0);
  jc.input_bytes_per_vm = 128 * mapred::kMiB;
  EXPECT_DOUBLE_EQ(PhasePlan::waves(jc, 16), 1.0);
}

TEST(PhasePlan, MergeRuleFollowsWaveCount) {
  auto jc = workloads::make_job(workloads::stream_sort(), 512 * mapred::kMiB);
  EXPECT_TRUE(PhasePlan::for_job(jc, 16).merge_shuffle_tail);   // 4 waves
  EXPECT_EQ(PhasePlan::for_job(jc, 16).count(), 2);
  jc.input_bytes_per_vm = 128 * mapred::kMiB;                    // 1 wave
  EXPECT_FALSE(PhasePlan::for_job(jc, 16).merge_shuffle_tail);
  EXPECT_EQ(PhasePlan::for_job(jc, 16).count(), 3);
}

TEST(PairSchedule, SingleHasNoSwitches) {
  const auto s = PairSchedule::single({SchedulerKind::kCfq, SchedulerKind::kCfq}, 3);
  EXPECT_EQ(s.count(), 3);
  EXPECT_EQ(s.switches(), 0);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(s.effective(i), iosched::kDefaultPair);
}

TEST(PairSchedule, EffectiveResolvesZeros) {
  PairSchedule s;
  s.phases = {iosched::SchedulerPair{SchedulerKind::kAnticipatory, SchedulerKind::kCfq},
              std::nullopt,
              iosched::SchedulerPair{SchedulerKind::kDeadline, SchedulerKind::kDeadline}};
  EXPECT_EQ(s.effective(0).vmm, SchedulerKind::kAnticipatory);
  EXPECT_EQ(s.effective(1).vmm, SchedulerKind::kAnticipatory);  // the "0"
  EXPECT_EQ(s.effective(2).vmm, SchedulerKind::kDeadline);
  EXPECT_EQ(s.switches(), 1);
}

TEST(PairSchedule, RedundantEntryCountsAsSwitch) {
  PairSchedule s;
  s.phases = {iosched::kDefaultPair, iosched::SchedulerPair{SchedulerKind::kCfq,
                                                            SchedulerKind::kCfq}};
  // Same pair named explicitly: no *effective* transition.
  EXPECT_EQ(s.switches(), 0);
}

TEST(PairSchedule, StringAndKeyFormats) {
  PairSchedule s;
  s.phases = {iosched::SchedulerPair{SchedulerKind::kAnticipatory, SchedulerKind::kCfq},
              std::nullopt};
  EXPECT_EQ(s.to_string(), "[(anticipatory, cfq) -> 0]");
  EXPECT_EQ(s.key(), "ac--");
}

TEST(PhaseDetector, ReportsPhaseEntriesInOrder) {
  cluster::Cluster cl(tiny());
  auto jc = workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
  mapred::Job job(cl.env(), jc, 3);
  std::vector<std::pair<int, Time>> entries;
  PhaseDetector::attach(job, PhasePlan{/*merge=*/false},
                        [&](int ph, Time t) { entries.emplace_back(ph, t); });
  job.run();
  cl.simr().run();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, 0);
  EXPECT_EQ(entries[1].first, 1);
  EXPECT_EQ(entries[2].first, 2);
  EXPECT_LE(entries[0].second, entries[1].second);
  EXPECT_LE(entries[1].second, entries[2].second);
  EXPECT_EQ(entries[1].second, job.stats().t_maps_done);
  EXPECT_EQ(entries[2].second, job.stats().t_shuffle_done);
}

TEST(PhaseDetector, MergedPlanSkipsShuffleBoundary) {
  cluster::Cluster cl(tiny());
  auto jc = workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
  mapred::Job job(cl.env(), jc, 3);
  std::vector<int> phases;
  PhaseDetector::attach(job, PhasePlan{/*merge=*/true},
                        [&](int ph, Time) { phases.push_back(ph); });
  job.run();
  cl.simr().run();
  EXPECT_EQ(phases, (std::vector<int>{0, 1}));
}

TEST(PhaseDetector, ChainsExistingCallbacks) {
  cluster::Cluster cl(tiny());
  auto jc = workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
  mapred::Job job(cl.env(), jc, 3);
  bool user_cb = false;
  job.on_maps_done = [&](Time) { user_cb = true; };
  bool detector_cb = false;
  PhaseDetector::attach(job, PhasePlan{true}, [&](int ph, Time) {
    if (ph == 1) detector_cb = true;
  });
  job.run();
  cl.simr().run();
  EXPECT_TRUE(user_cb);
  EXPECT_TRUE(detector_cb);
}

TEST(AdaptiveController, SwitchesAtMapsDone) {
  ClusterConfig cfg = tiny();
  cfg.pair = {SchedulerKind::kAnticipatory, SchedulerKind::kAnticipatory};
  cluster::Cluster cl(cfg);
  auto jc = workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
  mapred::Job job(cl.env(), jc, 3);

  PairSchedule sched;
  sched.phases = {cfg.pair,
                  iosched::SchedulerPair{SchedulerKind::kDeadline, SchedulerKind::kDeadline}};
  auto ctl = AdaptiveController::attach(cl, job, sched, PhasePlan{true});
  job.run();
  cl.simr().run();
  EXPECT_TRUE(job.done());
  EXPECT_EQ(ctl->switches_performed(), 1);
  EXPECT_EQ(cl.pair().vmm, SchedulerKind::kDeadline);
  EXPECT_EQ(cl.host(0).dom0_layer().counters().scheduler_switches, 1u);
}

TEST(AdaptiveController, NoSwitchForNulloptPhase) {
  ClusterConfig cfg = tiny();
  cluster::Cluster cl(cfg);
  auto jc = workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
  mapred::Job job(cl.env(), jc, 3);
  auto ctl = AdaptiveController::attach(
      cl, job, PairSchedule::single(cfg.pair, 2), PhasePlan{true});
  job.run();
  cl.simr().run();
  EXPECT_EQ(ctl->switches_performed(), 0);
  EXPECT_EQ(cl.host(0).dom0_layer().counters().scheduler_switches, 0u);
}

TEST(AdaptiveController, SwitchCostSlowsTheJob) {
  // A schedule that switches to the SAME effective behaviour still pays the
  // quiesce: the run must not be faster than the plain single-pair run.
  auto jc = workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
  const double plain = cluster::run_job(tiny(), jc).seconds;

  PairSchedule with_switch;
  with_switch.phases = {iosched::kDefaultPair,
                        iosched::SchedulerPair{SchedulerKind::kCfq, SchedulerKind::kCfq}};
  const double switched =
      cluster::run_job(tiny(), jc, [&](cluster::Cluster& cl, mapred::Job& job) {
        AdaptiveController::attach(cl, job, with_switch, PhasePlan{true});
      }).seconds;
  EXPECT_GE(switched, plain - 1e-9);
}

// ---- switch-retry backoff (graceful degradation under a faulted
// management plane) ----

ClusterConfig tiny_with_faults(const std::string& plan_text) {
  ClusterConfig cfg = tiny();
  std::string err;
  auto plan = fault::FaultPlan::parse(plan_text, &err);
  EXPECT_TRUE(plan.has_value()) << err;
  cfg.faults = plan.value_or(fault::FaultPlan{});
  return cfg;
}

PairSchedule to_deadline(const ClusterConfig& cfg) {
  PairSchedule sched;
  sched.phases = {cfg.pair, iosched::SchedulerPair{SchedulerKind::kDeadline,
                                                   SchedulerKind::kDeadline}};
  return sched;
}

TEST(AdaptiveController, FailedSwitchRetriesWithBackoffThenLands) {
  auto jc = workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
  // The switch command fires at the maps-done boundary; learn when that is
  // from a run whose fault window never opens. The plan must be non-empty:
  // constructing the injector draws one seed from the cluster seeder, and
  // only a run with the same draw reproduces the boundary time exactly.
  const double t_maps =
      cluster::run_job(tiny_with_faults("switchfail:p=1,from=9e9"), jc)
          .ph1_seconds;

  // Fail every switch command until 1 s past the boundary. The first
  // attempt and the +0.5 s retry fall inside the window; the +1.5 s retry
  // (backoff doubled) lands after it and succeeds.
  char plan[64];
  std::snprintf(plan, sizeof plan, "switchfail:p=1,until=%.3f", t_maps + 1.0);
  const ClusterConfig cfg = tiny_with_faults(plan);
  std::shared_ptr<AdaptiveController> ctl;
  const auto r =
      cluster::run_job(cfg, jc, [&](cluster::Cluster& cl, mapred::Job& job) {
        ctl = AdaptiveController::attach(cl, job, to_deadline(cfg), PhasePlan{true});
      });
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(ctl->switch_failures(), 2);
  EXPECT_EQ(ctl->switch_retries(), 2);  // one failed retry + the one that landed
  EXPECT_EQ(ctl->switches_performed(), 1);
}

TEST(AdaptiveController, PermanentSwitchFailureKeepsOldPairAndGivesUp) {
  auto jc = workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
  const ClusterConfig cfg = tiny_with_faults("switchfail:p=1");
  std::shared_ptr<AdaptiveController> ctl;
  iosched::SchedulerPair final_pair;
  const auto r =
      cluster::run_job(cfg, jc, [&](cluster::Cluster& cl, mapred::Job& job) {
        ctl = AdaptiveController::attach(cl, job, to_deadline(cfg), PhasePlan{true});
        job.on_done = [&cl, &final_pair](Time) { final_pair = cl.pair(); };
      });
  EXPECT_FALSE(r.failed);  // the job itself is fine under the old pair
  EXPECT_EQ(ctl->switches_performed(), 0);
  EXPECT_EQ(final_pair, cfg.pair);
  // Retry budget: initial attempt + kMaxRetries retries, then give up.
  EXPECT_LE(ctl->switch_failures(), AdaptiveController::kMaxRetries + 1);
  EXPECT_GE(ctl->switch_failures(), 2);
  EXPECT_LE(ctl->switch_retries(), AdaptiveController::kMaxRetries);
}

TEST(AdaptiveController, DelayedSwitchStillLands) {
  auto jc = workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
  const ClusterConfig cfg = tiny_with_faults("switchdelay:delay=2");
  std::shared_ptr<AdaptiveController> ctl;
  iosched::SchedulerPair final_pair;
  const auto r =
      cluster::run_job(cfg, jc, [&](cluster::Cluster& cl, mapred::Job& job) {
        ctl = AdaptiveController::attach(cl, job, to_deadline(cfg), PhasePlan{true});
        job.on_done = [&cl, &final_pair](Time) { final_pair = cl.pair(); };
      });
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(ctl->switches_performed(), 1);  // accepted, just late
  EXPECT_EQ(ctl->switch_failures(), 0);
  EXPECT_EQ(final_pair.vmm, SchedulerKind::kDeadline);
}

}  // namespace
}  // namespace iosim::core
