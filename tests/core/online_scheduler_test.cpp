// Online meta-scheduler tests: bandit-policy unit behaviour (convergence,
// greedy mode, decay, switch-penalty discounting), determinism of full
// policy-driven stream runs, offline-vs-online parity on a stationary
// stream, and fault-driven re-exploration.
#include "core/online_scheduler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>

#include "exp/artifact.hpp"
#include "fault/fault_plan.hpp"
#include "sim/random.hpp"
#include "trace/trace.hpp"

namespace iosim::core {
namespace {

constexpr int kArms = iosched::kNumSchedulerPairs;
using PenaltyArray = std::array<double, kArms>;

OnlineConfig ucb_all_arms(std::uint64_t seed = 42) {
  OnlineConfig cfg;
  cfg.kind = tenancy::MetaPolicy::kUcb;
  cfg.budget = kArms;  // every arm a candidate: pure policy behaviour
  cfg.seed = seed;
  return cfg;
}

TEST(OnlinePolicy, UcbConvergesToTheBestArmWithoutPenalties) {
  auto policy = make_online_policy(ucb_all_arms());
  const PenaltyArray none{};
  // Arm 5 pays 100, everything else 20. After enough pulls the confidence
  // bonus shrinks and the policy must settle on 5.
  int arm = 0;
  for (int i = 0; i < 200; ++i) {
    arm = policy->select(0, arm, none);
    policy->reward(0, arm, arm == 5 ? 100.0 : 20.0);
  }
  EXPECT_EQ(policy->select(0, arm, none), 5);
  const double best_pulls = policy->stats(0, 5).pulls;
  for (int a = 0; a < kArms; ++a) {
    if (a == 5) continue;
    EXPECT_LT(policy->stats(0, a).pulls, best_pulls) << "arm " << a;
  }
  EXPECT_NEAR(policy->stats(0, 5).value, 100.0, 1e-9);
}

TEST(OnlinePolicy, EgreedyWithZeroExploreIsPureGreedy) {
  OnlineConfig cfg;
  cfg.kind = tenancy::MetaPolicy::kEgreedy;
  cfg.explore = 0.0;  // epsilon 0: the coin never fires
  cfg.budget = kArms;
  cfg.seed = 7;
  auto policy = make_online_policy(cfg);
  EXPECT_STREQ(policy->name(), "egreedy");
  const PenaltyArray none{};
  // With no estimates everything ties and greedy keeps the current arm.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(policy->select(1, 3, none), 3);
  // Once the current arm is measured worse than a sampled rival, greedy
  // must move to the rival, every time. (Unsampled arms rank at the
  // sampled mean, 55 here — below the rival's 100, so they never win.)
  policy->reward(1, 3, 10.0);
  policy->reward(1, 2, 100.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(policy->select(1, 3, none), 2);
}

TEST(OnlinePolicy, DecayAllShrinksPullCountsEverywhere) {
  auto policy = make_online_policy(ucb_all_arms());
  policy->reward(0, 1, 50.0);
  policy->reward(0, 1, 50.0);
  policy->reward(2, 4, 30.0);
  policy->decay_all(0.5);
  EXPECT_DOUBLE_EQ(policy->stats(0, 1).pulls, 1.0);
  EXPECT_DOUBLE_EQ(policy->stats(2, 4).pulls, 0.5);
  // Values survive the decay — only the confidence mass ages.
  EXPECT_GT(policy->stats(0, 1).value, 0.0);
}

TEST(OnlinePolicy, SwitchPenaltyBlocksAMarginalMoveButNotAFreeOne) {
  auto policy = make_online_policy(ucb_all_arms());
  // Equal pull counts keep the confidence bonus identical across arms, so
  // selection ranks purely by value minus penalty.
  for (int i = 0; i < 50; ++i) {
    for (int a = 0; a < kArms; ++a) {
      policy->reward(0, a, a == 1 ? 50.0 : (a == 2 ? 55.0 : 10.0));
    }
  }
  PenaltyArray penalty{};
  EXPECT_EQ(policy->select(0, 1, penalty), 2);  // free switch: take the gain
  penalty[2] = 100.0;  // a 100-unit quiesce for a 5-unit gain: stay put
  EXPECT_EQ(policy->select(0, 1, penalty), 1);
}

// --- Full policy-driven stream runs ----------------------------------------

cluster::ClusterConfig small_cluster(std::uint64_t seed) {
  cluster::ClusterConfig cfg;
  cfg.n_hosts = 2;
  cfg.vms_per_host = 2;
  cfg.seed = seed;
  return cfg;
}

tenancy::StreamSpec spec_with_meta(const std::string& meta_body) {
  std::string text =
      "arrive,poisson,rate=0.05,jobs=6;class,name=a,wl=sort,mb=10-14";
  if (!meta_body.empty()) text += ";meta," + meta_body;
  std::string err;
  const auto s = tenancy::StreamSpec::parse(text, &err);
  EXPECT_TRUE(s.has_value()) << err;
  return *s;
}

std::uint64_t traced_policy_digest(const tenancy::StreamSpec& spec,
                                   std::uint64_t seed,
                                   MetaStreamResult* out = nullptr) {
  trace::TraceSession session;
  const MetaStreamResult r = run_stream_with_policy(small_cluster(seed), spec);
  EXPECT_TRUE(r.stream.ok) << r.stream.error;
  if (out != nullptr) *out = r;
  return exp::fnv1a64(session.tracer().to_json());
}

TEST(OnlineScheduler, SameSeedIsByteIdenticalWithOnlineControllerOn) {
  const auto spec = spec_with_meta("policy=ucb");
  MetaStreamResult ra, rb;
  const std::uint64_t a = traced_policy_digest(spec, 11, &ra);
  const std::uint64_t b = traced_policy_digest(spec, 11, &rb);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ra.stream.jobs_completed, 6);
  EXPECT_EQ(ra.arm_pulls, rb.arm_pulls);
  EXPECT_EQ(ra.arm_switches, rb.arm_switches);
  EXPECT_GT(ra.arm_pulls, 0);  // the bandit actually ran
  // A different seed must actually move the simulation.
  EXPECT_NE(a, traced_policy_digest(spec, 12));
}

TEST(OnlineScheduler, OnlineStaysCompetitiveWithOfflineOnStationaryStream) {
  // A stationary single-class stream is the offline pipeline's best case:
  // its profiled corpus never goes stale. The bandit pays for exploration
  // out of the same makespan, so parity-within-slack is the bar here — the
  // policy_compare CI gate holds the tighter fig7 tolerance.
  MetaStreamResult off, ucb;
  traced_policy_digest(spec_with_meta("policy=offline"), 11, &off);
  traced_policy_digest(spec_with_meta("policy=ucb"), 11, &ucb);
  EXPECT_EQ(off.stream.jobs_completed, 6);
  EXPECT_EQ(ucb.stream.jobs_completed, 6);
  EXPECT_LT(ucb.stream.makespan_s, off.stream.makespan_s * 1.5);
  // The offline pipeline really ran Algorithm 1: all 16 pairs profiled and
  // a concrete schedule chosen.
  EXPECT_EQ(off.profile_runs, 16);
  EXPECT_GT(off.heuristic_evals, 0);
  EXPECT_FALSE(off.schedule_key.empty());
  EXPECT_FALSE(off.boot_pair.empty());
}

TEST(OnlineScheduler, StaticPolicyPinsTheBootPair) {
  MetaStreamResult r;
  traced_policy_digest(spec_with_meta("policy=static,pair=nn"), 11, &r);
  EXPECT_EQ(r.boot_pair, "nn");
  EXPECT_EQ(r.arm_pulls, 0);
  EXPECT_EQ(r.arm_switches, 0);
  EXPECT_EQ(r.stream.jobs_completed, 6);
}

TEST(OnlineScheduler, FaultEventDecaysEstimatesAndKeepsLearning) {
  // A VM dies mid-stream: membership declares it dead, the bandit must age
  // its estimates (decays > 0) and the stream still finishes under the
  // survivors.
  auto cfg = small_cluster(11);
  std::string ferr;
  const auto plan = fault::FaultPlan::parse("vmcrash:vm=0,from=30", &ferr);
  ASSERT_TRUE(plan.has_value()) << ferr;
  cfg.faults = *plan;

  trace::TraceSession session;
  const MetaStreamResult r =
      run_stream_with_policy(cfg, spec_with_meta("policy=ucb"));
  EXPECT_TRUE(r.stream.ok) << r.stream.error;
  EXPECT_GE(r.decays, 1);
  EXPECT_GT(r.arm_pulls, 0);
  EXPECT_GT(r.stream.jobs_completed, 0);
}

TEST(OnlineScheduler, MetaFreeRunsEmitNoMetaTrackEvents) {
  // Guard for the "pinned digests unchanged when meta-free" acceptance
  // criterion: without a meta segment nothing may touch the meta track.
  trace::TraceSession session;
  const MetaStreamResult r =
      run_stream_with_policy(small_cluster(11), spec_with_meta(""));
  EXPECT_TRUE(r.stream.ok) << r.stream.error;
  const std::string json = session.tracer().to_json();
  EXPECT_EQ(json.find("tt_arm_pull"), std::string::npos);
  EXPECT_EQ(json.find("tt_arm_switch"), std::string::npos);
}

}  // namespace
}  // namespace iosim::core
