#include "core/switch_cost.hpp"

#include <gtest/gtest.h>

namespace iosim::core {
namespace {

using iosched::SchedulerKind;

SwitchCostConfig small_cfg() {
  SwitchCostConfig cfg;
  cfg.vms = 2;
  cfg.dd_bytes_per_vm = 64LL * 1024 * 1024;  // keep runs fast
  return cfg;
}

TEST(SwitchCost, SoloRunCompletes) {
  const SwitchCostConfig cfg = small_cfg();
  const double t = run_dd_experiment(cfg, iosched::kDefaultPair, nullptr);
  EXPECT_GT(t, 0.0);
}

TEST(SwitchCost, SoloRunsDeterministic) {
  const SwitchCostConfig cfg = small_cfg();
  EXPECT_DOUBLE_EQ(run_dd_experiment(cfg, iosched::kDefaultPair, nullptr),
                   run_dd_experiment(cfg, iosched::kDefaultPair, nullptr));
}

TEST(SwitchCost, SwitchedRunCompletesAndIsSlowwerThanBestHalf) {
  const SwitchCostConfig cfg = small_cfg();
  const iosched::SchedulerPair a = iosched::kDefaultPair;
  const iosched::SchedulerPair b{SchedulerKind::kDeadline, SchedulerKind::kDeadline};
  const double solo_a = run_dd_experiment(cfg, a, nullptr);
  const double solo_b = run_dd_experiment(cfg, b, nullptr);
  const double both = run_dd_experiment(cfg, a, &b);
  EXPECT_GT(both, 0.0);
  // The switched run can never beat running the faster configuration alone
  // by more than noise (the quiesce alone costs time).
  EXPECT_GT(both, std::min(solo_a, solo_b) * 0.9);
}

TEST(SwitchCost, SamePairSwitchStillCostsTime) {
  // The paper: "re-assigning the same disk I/O scheduler pair is costly".
  const SwitchCostConfig cfg = small_cfg();
  const iosched::SchedulerPair p = iosched::kDefaultPair;
  const double solo = run_dd_experiment(cfg, p, nullptr);
  const double self_switch = run_dd_experiment(cfg, p, &p);
  EXPECT_GT(self_switch, solo);
}

TEST(SwitchCost, MatrixOnReducedPairSet) {
  // Full 16x16 measurement is a bench; here validate the machinery on the
  // same code path with a tiny dd size.
  SwitchCostConfig cfg = small_cfg();
  cfg.dd_bytes_per_vm = 32LL * 1024 * 1024;
  const SwitchCostMatrix m = SwitchCostMatrix::measure(cfg);

  const auto pairs = iosched::all_scheduler_pairs();
  for (const auto& p : pairs) {
    EXPECT_GT(m.solo_seconds(p), 0.0) << p.to_string();
  }
  // Diagonal (re-assign same pair) is positive.
  for (const auto& p : pairs) {
    EXPECT_GT(m.cost_seconds(p, p), 0.0) << p.to_string();
  }
  // Costs are finite and sane.
  EXPECT_GT(m.max_cost(), m.min_cost());
  EXPECT_LT(m.max_cost(), 1000.0);
  // Non-commutative in aggregate: some asymmetry exists.
  EXPECT_GT(m.mean_asymmetry(), 0.0);
}

}  // namespace
}  // namespace iosim::core
