#include "core/fine_grained.hpp"

#include <gtest/gtest.h>

#include "core/switch_predictor.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim::core {
namespace {

using cluster::ClusterConfig;
using iosched::SchedulerKind;
using iosched::SchedulerPair;

ClusterConfig tiny() {
  ClusterConfig cfg;
  cfg.n_hosts = 2;
  cfg.vms_per_host = 2;
  return cfg;
}

TEST(SwitchPredictor, AnalyticSeedUniform) {
  SwitchPredictor p(3.0);
  const SchedulerPair a = iosched::kDefaultPair;
  const SchedulerPair b{SchedulerKind::kDeadline, SchedulerKind::kDeadline};
  EXPECT_DOUBLE_EQ(p.predict_seconds(a, b), 3.0);
  EXPECT_DOUBLE_EQ(p.predict_seconds(b, a), 3.0);
}

TEST(SwitchPredictor, ObserveMovesEstimate) {
  SwitchPredictor p(2.0);
  const SchedulerPair a = iosched::kDefaultPair;
  const SchedulerPair b{SchedulerKind::kNoop, SchedulerKind::kNoop};
  p.observe(a, b, 10.0);
  EXPECT_GT(p.predict_seconds(a, b), 2.0);
  EXPECT_LT(p.predict_seconds(a, b), 10.0);
  // Other transitions unaffected.
  EXPECT_DOUBLE_EQ(p.predict_seconds(b, a), 2.0);
}

TEST(SwitchPredictor, WorthwhileComparesBenefitToCost) {
  SwitchPredictor p(5.0);
  const SchedulerPair a = iosched::kDefaultPair;
  const SchedulerPair b{SchedulerKind::kDeadline, SchedulerKind::kDeadline};
  // 10% gain over 100s = 10s saving > 5s cost.
  EXPECT_TRUE(p.worthwhile(a, b, 0.10, sim::Time::from_sec(100)));
  // 1% gain over 100s = 1s saving < 5s cost.
  EXPECT_FALSE(p.worthwhile(a, b, 0.01, sim::Time::from_sec(100)));
}

TEST(FineGrained, JobCompletesUnderController) {
  cluster::Cluster cl(tiny());
  auto jc = workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
  mapred::Job job(cl.env(), jc, 3);
  auto ctl = FineGrainedController::attach(cl, job, FineGrainedPolicy{},
                                           SwitchPredictor{1.0});
  job.run();
  cl.simr().run();
  EXPECT_TRUE(job.done());
  EXPECT_GT(ctl->samples(), 0);
}

TEST(FineGrained, SamplingStopsAfterJob) {
  cluster::Cluster cl(tiny());
  auto jc = workloads::make_job(workloads::stream_sort(), 64 * mapred::kMiB);
  mapred::Job job(cl.env(), jc, 3);
  FineGrainedPolicy pol;
  pol.sample_period = sim::Time::from_sec(1);
  auto ctl = FineGrainedController::attach(cl, job, pol, SwitchPredictor{1.0});
  job.run();
  cl.simr().run();  // must terminate: the controller stops rescheduling
  EXPECT_TRUE(job.done());
  // The simulator drained, i.e. no immortal sampling loop.
  EXPECT_FALSE(cl.simr().step());
}

TEST(FineGrained, HighPredictedCostBlocksSwitching) {
  cluster::Cluster cl(tiny());
  auto jc = workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
  mapred::Job job(cl.env(), jc, 3);
  auto ctl = FineGrainedController::attach(cl, job, FineGrainedPolicy{},
                                           SwitchPredictor{1e9});  // prohibitive
  job.run();
  cl.simr().run();
  EXPECT_EQ(ctl->total_switches(), 0);
  EXPECT_EQ(cl.host(0).dom0_layer().counters().scheduler_switches, 0u);
}

TEST(FineGrained, CheapSwitchingAdaptsToRegimes) {
  cluster::Cluster cl(tiny());
  auto jc = workloads::make_job(workloads::stream_sort(), 256 * mapred::kMiB);
  mapred::Job job(cl.env(), jc, 3);
  FineGrainedPolicy pol;
  pol.sample_period = sim::Time::from_sec(5);
  pol.min_switch_gap = sim::Time::from_sec(5);
  auto ctl = FineGrainedController::attach(cl, job, pol, SwitchPredictor{0.0});
  job.run();
  cl.simr().run();
  EXPECT_TRUE(job.done());
  // Sort flips from read-dominated (maps) to write-heavy (reduce): at least
  // one per-host switch should have happened somewhere.
  EXPECT_GT(ctl->total_switches(), 0);
}

TEST(FineGrained, MinGapRateLimitsSwitching) {
  cluster::Cluster cl(tiny());
  auto jc = workloads::make_job(workloads::stream_sort(), 256 * mapred::kMiB);
  mapred::Job job(cl.env(), jc, 3);
  FineGrainedPolicy pol;
  pol.sample_period = sim::Time::from_sec(1);
  pol.min_switch_gap = sim::Time::from_sec(100000);  // once per host, ever
  auto ctl = FineGrainedController::attach(cl, job, pol, SwitchPredictor{0.0});
  job.run();
  cl.simr().run();
  EXPECT_LE(ctl->total_switches(), static_cast<int>(cl.n_hosts()));
}

}  // namespace
}  // namespace iosim::core
