#include "mapred/merge_op.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace iosim::mapred {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using sim::Time;

struct Rig {
  Cluster cl;
  Rig() : cl([] {
      ClusterConfig cfg;
      cfg.n_hosts = 1;
      cfg.vms_per_host = 1;
      return cfg;
    }()) {}
  VmHandle& vm() { return cl.env().vms[0]; }
  sim::Simulator& simr() { return cl.simr(); }
};

TEST(MergeOp, EmptyInputCompletesAsync) {
  Rig r;
  bool done = false;
  MergeOp::run(r.vm(), 1, MergeOpParams{}, [&](Time, iosched::IoStatus) { done = true; });
  EXPECT_FALSE(done);  // async contract even for the degenerate case
  r.simr().run();
  EXPECT_TRUE(done);
}

TEST(MergeOp, SingleInputReadsAndWritesAllBytes) {
  Rig r;
  const std::int64_t bytes = 8 * 1024 * 1024;
  const disk::Lba in = r.vm().vm->alloc(virt::DiskZone::kScratch, bytes / 512 + 8);
  MergeOpParams p;
  p.inputs = {{in, bytes}};
  p.out_vlba = r.vm().vm->alloc(virt::DiskZone::kScratch, bytes / 512 + 8);
  bool done = false;
  MergeOp::run(r.vm(), 1, std::move(p), [&](Time, iosched::IoStatus) { done = true; });
  r.simr().run();
  EXPECT_TRUE(done);
  const auto& c = r.vm().vm->layer().counters();
  EXPECT_EQ(c.bytes_completed[0], bytes);  // reads
  EXPECT_GE(c.bytes_completed[1], bytes);  // writes (sector round-up)
}

TEST(MergeOp, MultipleInputsAllConsumed) {
  Rig r;
  MergeOpParams p;
  std::int64_t total = 0;
  for (int i = 0; i < 5; ++i) {
    const std::int64_t b = (i + 1) * 512 * 1024;
    p.inputs.push_back({r.vm().vm->alloc(virt::DiskZone::kScratch, b / 512 + 8), b});
    total += b;
  }
  p.out_vlba = r.vm().vm->alloc(virt::DiskZone::kScratch, total / 512 + 8);
  bool done = false;
  MergeOp::run(r.vm(), 1, std::move(p), [&](Time, iosched::IoStatus) { done = true; });
  r.simr().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(r.vm().vm->layer().counters().bytes_completed[0], total);
}

TEST(MergeOp, WriteRatioScalesOutput) {
  Rig r;
  const std::int64_t bytes = 4 * 1024 * 1024;
  MergeOpParams p;
  p.inputs = {{r.vm().vm->alloc(virt::DiskZone::kScratch, bytes / 512 + 8), bytes}};
  p.out_vlba = r.vm().vm->alloc(virt::DiskZone::kOutput, bytes / 512 + 8);
  p.write_ratio = 0.25;
  bool done = false;
  MergeOp::run(r.vm(), 1, std::move(p), [&](Time, iosched::IoStatus) { done = true; });
  r.simr().run();
  EXPECT_TRUE(done);
  const auto& c = r.vm().vm->layer().counters();
  EXPECT_NEAR(static_cast<double>(c.bytes_completed[1]),
              0.25 * static_cast<double>(bytes), static_cast<double>(bytes) * 0.02);
}

TEST(MergeOp, ZeroWriteRatioWritesNothing) {
  Rig r;
  const std::int64_t bytes = 2 * 1024 * 1024;
  MergeOpParams p;
  p.inputs = {{r.vm().vm->alloc(virt::DiskZone::kScratch, bytes / 512 + 8), bytes}};
  p.write_ratio = 0.0;
  bool done = false;
  MergeOp::run(r.vm(), 1, std::move(p), [&](Time, iosched::IoStatus) { done = true; });
  r.simr().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(r.vm().vm->layer().counters().bytes_completed[1], 0);
}

TEST(MergeOp, CpuCostSlowsCompletion) {
  auto elapsed_with = [](double cpu_ns_per_byte) {
    Rig r;
    const std::int64_t bytes = 8 * 1024 * 1024;
    MergeOpParams p;
    p.inputs = {{r.vm().vm->alloc(virt::DiskZone::kScratch, bytes / 512 + 8), bytes}};
    p.out_vlba = r.vm().vm->alloc(virt::DiskZone::kOutput, bytes / 512 + 8);
    p.cpu_ns_per_byte = cpu_ns_per_byte;
    Time done;
    MergeOp::run(r.vm(), 1, std::move(p), [&](Time t, iosched::IoStatus) { done = t; });
    r.simr().run();
    return done;
  };
  EXPECT_GT(elapsed_with(500.0), elapsed_with(0.0));
}

TEST(MergeOp, ProgressReportsMonotonically) {
  Rig r;
  const std::int64_t bytes = 4 * 1024 * 1024;
  MergeOpParams p;
  p.inputs = {{r.vm().vm->alloc(virt::DiskZone::kScratch, bytes / 512 + 8), bytes}};
  p.out_vlba = r.vm().vm->alloc(virt::DiskZone::kOutput, bytes / 512 + 8);
  std::int64_t last = 0;
  std::int64_t final_total = 0;
  p.on_progress = [&](std::int64_t done, std::int64_t total) {
    EXPECT_GE(done, last);
    EXPECT_LE(done, total);
    last = done;
    final_total = total;
  };
  MergeOp::run(r.vm(), 1, std::move(p), {});
  r.simr().run();
  EXPECT_EQ(last, final_total);
  EXPECT_EQ(final_total, bytes);
}

TEST(MergeOp, SkipsEmptyInputs) {
  Rig r;
  const std::int64_t bytes = 1024 * 1024;
  MergeOpParams p;
  p.inputs = {{0, 0},
              {r.vm().vm->alloc(virt::DiskZone::kScratch, bytes / 512 + 8), bytes},
              {0, 0}};
  p.out_vlba = r.vm().vm->alloc(virt::DiskZone::kOutput, bytes / 512 + 8);
  bool done = false;
  MergeOp::run(r.vm(), 1, std::move(p), [&](Time, iosched::IoStatus) { done = true; });
  r.simr().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(r.vm().vm->layer().counters().bytes_completed[0], bytes);
}

}  // namespace
}  // namespace iosim::mapred
