#include "mapred/vcpu.hpp"

#include <gtest/gtest.h>

namespace iosim::mapred {
namespace {

using namespace iosim::sim::literals;
using sim::Time;

TEST(VCpu, SingleBurstTakesItsCpuTime) {
  sim::Simulator simr;
  VCpu cpu(simr);
  Time done;
  cpu.run(100_ms, [&] { done = simr.now(); });
  simr.run();
  EXPECT_NEAR(done.ms(), 100.0, 0.1);
}

TEST(VCpu, TwoBurstsShareTheProcessor) {
  sim::Simulator simr;
  VCpu cpu(simr);
  Time d1, d2;
  cpu.run(100_ms, [&] { d1 = simr.now(); });
  cpu.run(100_ms, [&] { d2 = simr.now(); });
  simr.run();
  // Equal share: both finish at ~200 ms.
  EXPECT_NEAR(d1.ms(), 200.0, 1.0);
  EXPECT_NEAR(d2.ms(), 200.0, 1.0);
}

TEST(VCpu, UnequalBurstsFinishInOrder) {
  sim::Simulator simr;
  VCpu cpu(simr);
  Time d_small, d_big;
  cpu.run(50_ms, [&] { d_small = simr.now(); });
  cpu.run(150_ms, [&] { d_big = simr.now(); });
  simr.run();
  // Shared until the small one finishes at 100 ms; the big one then runs
  // alone: 100 + (150 - 50) = 200 ms.
  EXPECT_NEAR(d_small.ms(), 100.0, 1.0);
  EXPECT_NEAR(d_big.ms(), 200.0, 1.0);
}

TEST(VCpu, LateArrivalSlowsEarlierBurst) {
  sim::Simulator simr;
  VCpu cpu(simr);
  Time d1;
  cpu.run(100_ms, [&] { d1 = simr.now(); });
  simr.after(50_ms, [&] { cpu.run(200_ms, [] {}); });
  simr.run();
  // 50 ms alone (50 done) + 100 ms shared (50 done) => finish at 150 ms.
  EXPECT_NEAR(d1.ms(), 150.0, 1.0);
}

TEST(VCpu, ZeroCostBurstCompletesImmediately) {
  sim::Simulator simr;
  VCpu cpu(simr);
  bool done = false;
  cpu.run(Time::zero(), [&] { done = true; });
  simr.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(simr.now(), Time::zero());
}

TEST(VCpu, ManyBurstsAllComplete) {
  sim::Simulator simr;
  VCpu cpu(simr);
  int done = 0;
  for (int i = 0; i < 50; ++i) {
    simr.after(sim::Time::from_ms(i), [&cpu, &done] {
      cpu.run(10_ms, [&done] { ++done; });
    });
  }
  simr.run();
  EXPECT_EQ(done, 50);
  EXPECT_EQ(cpu.active(), 0u);
}

TEST(VCpu, ConsumedTracksBusyTime) {
  sim::Simulator simr;
  VCpu cpu(simr);
  cpu.run(30_ms, [] {});
  cpu.run(30_ms, [] {});
  simr.run();
  EXPECT_NEAR(cpu.consumed().ms(), 60.0, 1.0);
}

TEST(VCpu, CallbackCanStartAnotherBurst) {
  sim::Simulator simr;
  VCpu cpu(simr);
  Time done;
  cpu.run(10_ms, [&] {
    cpu.run(10_ms, [&] { done = simr.now(); });
  });
  simr.run();
  EXPECT_NEAR(done.ms(), 20.0, 0.5);
}

TEST(VCpu, TotalThroughputConserved) {
  // N equal bursts started together finish together at N x T.
  sim::Simulator simr;
  VCpu cpu(simr);
  std::vector<Time> done(8);
  for (int i = 0; i < 8; ++i) {
    cpu.run(25_ms, [&done, i, &simr] { done[static_cast<std::size_t>(i)] = simr.now(); });
  }
  simr.run();
  for (const Time& t : done) EXPECT_NEAR(t.ms(), 200.0, 2.0);
}

}  // namespace
}  // namespace iosim::mapred
