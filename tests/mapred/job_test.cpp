// End-to-end tests of the MapReduce engine on a small cluster.
#include "mapred/job.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim::mapred {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using sim::Time;

ClusterConfig small_cluster(int hosts = 1, int vms = 2) {
  ClusterConfig cfg;
  cfg.n_hosts = hosts;
  cfg.vms_per_host = vms;
  return cfg;
}

JobConf small_sort(std::int64_t mb_per_vm = 128) {
  auto jc = workloads::make_job(workloads::stream_sort(), mb_per_vm * kMiB);
  return jc;
}

struct RunHarness {
  Cluster cl;
  Job job;
  explicit RunHarness(const ClusterConfig& cfg, const JobConf& jc, std::uint64_t seed = 5)
      : cl(cfg), job(cl.env(), jc, seed) {}
  void go() {
    job.run();
    cl.simr().run();
  }
};

TEST(Job, CompletesOnSmallCluster) {
  RunHarness h(small_cluster(), small_sort());
  h.go();
  EXPECT_TRUE(h.job.done());
  EXPECT_GT(h.job.stats().t_done, Time::zero());
}

TEST(Job, PhaseTimestampsAreOrdered) {
  RunHarness h(small_cluster(2, 2), small_sort());
  h.go();
  const JobStats& s = h.job.stats();
  EXPECT_LE(s.t_start, s.t_first_map_done);
  EXPECT_LE(s.t_first_map_done, s.t_maps_done);
  EXPECT_LE(s.t_maps_done, s.t_shuffle_done);
  EXPECT_LE(s.t_shuffle_done, s.t_done);
}

TEST(Job, TaskCountsMatchConfig) {
  const auto jc = small_sort(128);  // 2 blocks per VM
  RunHarness h(small_cluster(1, 2), jc);
  h.go();
  EXPECT_EQ(h.job.stats().maps_total, jc.n_maps(2));
  EXPECT_EQ(h.job.stats().maps_total, 4);
  EXPECT_EQ(h.job.stats().reduces_total, jc.n_reduces(2));
}

TEST(Job, ByteAccountingConserved) {
  const auto jc = small_sort(128);
  RunHarness h(small_cluster(1, 2), jc);
  h.go();
  const JobStats& s = h.job.stats();
  const std::int64_t input = 2 * 128 * kMiB;
  EXPECT_EQ(s.map_input_bytes, input);
  // Sort: map output == input (modulo integer division per chunk).
  EXPECT_NEAR(static_cast<double>(s.map_output_bytes), static_cast<double>(input),
              static_cast<double>(input) * 0.01);
  // Every map output byte is shuffled once (modulo per-partition rounding).
  EXPECT_NEAR(static_cast<double>(s.shuffle_bytes), static_cast<double>(s.map_output_bytes),
              static_cast<double>(input) * 0.01);
  // Sort writes its input size back out.
  EXPECT_NEAR(static_cast<double>(s.output_bytes), static_cast<double>(s.shuffle_bytes),
              static_cast<double>(input) * 0.01);
}

TEST(Job, WordcountShrinksData) {
  auto jc = workloads::make_job(workloads::wordcount(), 128 * kMiB);
  RunHarness h(small_cluster(1, 2), jc);
  h.go();
  const JobStats& s = h.job.stats();
  EXPECT_LT(s.map_output_bytes, s.map_input_bytes / 10);
  EXPECT_LT(s.output_bytes, s.map_input_bytes / 10);
}

TEST(Job, NoCombinerInflatesMapOutput) {
  auto jc = workloads::make_job(workloads::wordcount_no_combiner(), 128 * kMiB);
  RunHarness h(small_cluster(1, 2), jc);
  h.go();
  const JobStats& s = h.job.stats();
  EXPECT_GT(s.map_output_bytes, s.map_input_bytes);  // ~1.7x
  // Every output byte went through at least one spill.
  EXPECT_GE(s.map_side_spill_bytes, s.map_output_bytes);
}

TEST(Job, MilestonesMonotone) {
  RunHarness h(small_cluster(2, 2), small_sort());
  h.go();
  const auto& ms = h.job.stats().milestones;
  ASSERT_GE(ms.size(), 10u);
  for (std::size_t i = 1; i < ms.size(); ++i) {
    EXPECT_GE(ms[i].t, ms[i - 1].t);
    EXPECT_GT(ms[i].progress, ms[i - 1].progress);
  }
  EXPECT_NEAR(ms.back().progress, 1.0, 0.051);
}

TEST(Job, ProgressReachesOne) {
  RunHarness h(small_cluster(), small_sort());
  h.go();
  EXPECT_DOUBLE_EQ(h.job.progress(), 1.0);
}

TEST(Job, EventsFireInOrder) {
  RunHarness h(small_cluster(1, 2), small_sort());
  std::vector<std::string> events;
  h.job.on_first_map_done = [&](Time) { events.push_back("first_map"); };
  h.job.on_maps_done = [&](Time) { events.push_back("maps"); };
  h.job.on_shuffle_done = [&](Time) { events.push_back("shuffle"); };
  h.job.on_done = [&](Time) { events.push_back("done"); };
  h.go();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0], "first_map");
  EXPECT_EQ(events[1], "maps");
  EXPECT_EQ(events[2], "shuffle");
  EXPECT_EQ(events[3], "done");
}

TEST(Job, DeterministicGivenSeed) {
  auto run_once = [] {
    RunHarness h(small_cluster(1, 2), small_sort(), 42);
    h.go();
    return h.job.stats().t_done;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Job, DifferentSeedsVarySlightly) {
  auto run_with = [](std::uint64_t seed) {
    ClusterConfig cfg = small_cluster(1, 2);
    cfg.seed = seed;
    RunHarness h(cfg, small_sort(), seed);
    h.go();
    return h.job.stats().t_done;
  };
  const Time a = run_with(1);
  const Time b = run_with(2);
  EXPECT_NE(a, b);
  EXPECT_NEAR(a.sec(), b.sec(), a.sec() * 0.25);  // same ballpark
}

TEST(Job, ShuffleTailPctMatchesDefinition) {
  RunHarness h(small_cluster(2, 2), small_sort());
  h.go();
  const JobStats& s = h.job.stats();
  const double expect =
      100.0 * (s.t_shuffle_done - s.t_maps_done).ratio(s.t_done - s.t_start);
  EXPECT_DOUBLE_EQ(s.shuffle_tail_pct(), expect);
  EXPECT_GE(s.shuffle_tail_pct(), 0.0);
  EXPECT_LE(s.shuffle_tail_pct(), 100.0);
}

TEST(Job, MoreWavesShrinkShuffleTail) {
  // Table II's mechanism: more map waves overlap more of the shuffle.
  auto tail_with = [](std::int64_t mb_per_vm) {
    ClusterConfig cfg = small_cluster(2, 2);
    RunHarness h(cfg, small_sort(mb_per_vm), 7);
    h.go();
    return h.job.stats().shuffle_tail_pct();
  };
  const double one_wave = tail_with(128);   // 2 blocks/VM over 2 slots = 1 wave
  const double four_waves = tail_with(512); // 8 blocks/VM = 4 waves
  EXPECT_GT(one_wave, four_waves);
}

TEST(Job, ScalesWithDataSize) {
  auto time_with = [](std::int64_t mb) {
    RunHarness h(small_cluster(1, 2), small_sort(mb), 7);
    h.go();
    return h.job.stats().elapsed().sec();
  };
  const double t128 = time_with(128);
  const double t256 = time_with(256);
  EXPECT_GT(t256, t128 * 1.5);
}

TEST(Job, SingleVmClusterWorks) {
  RunHarness h(small_cluster(1, 1), small_sort(64));
  h.go();
  EXPECT_TRUE(h.job.done());
}

TEST(Job, LargerClusterIsFasterPerByte) {
  // Same per-VM data on more hosts should take about the same wall time,
  // not more: scale-out sanity.
  auto time_with = [](int hosts) {
    RunHarness h(small_cluster(hosts, 2), small_sort(128), 7);
    h.go();
    return h.job.stats().elapsed().sec();
  };
  const double t1 = time_with(1);
  const double t3 = time_with(3);
  EXPECT_LT(t3, t1 * 1.8);
}

TEST(Job, MostMapsRunLocal) {
  // With balanced placement and locality-aware assignment, remote map
  // reads should be rare (tracked indirectly: job completes well under the
  // time remote reads for everything would take is flaky; instead verify
  // via the network counter).
  ClusterConfig cfg = small_cluster(2, 2);
  Cluster cl(cfg);
  auto jc = small_sort(128);
  Job job(cl.env(), jc, 5);
  job.run();
  cl.simr().run();
  // Network traffic should be dominated by shuffle + replication, not map
  // input: under ~2.2x of (shuffle + output) bytes.
  const auto& s = job.stats();
  EXPECT_LT(cl.env().net->bytes_delivered(),
            static_cast<std::int64_t>(1.2 * static_cast<double>(
                s.shuffle_bytes + s.output_bytes + s.map_input_bytes / 4)));
}

}  // namespace
}  // namespace iosim::mapred
