// Byte-identity guard for the attribution-enabled path: the same seeded
// run that pins the attribution-off trace digest (tests/cluster/
// trace_digest_test.cpp) must, with an AttributionSession installed,
// produce a byte-identical trace export AND a byte-identical HTML report
// run over run. The constants below were computed from this test's first
// run; like the pre-refactor digest, a mismatch means same-seed work was
// reordered or the export format changed — only an intentional format
// change may update them (and must say so in its commit).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "cluster/runner.hpp"
#include "exp/artifact.hpp"
#include "exp/report.hpp"
#include "obs/attribution.hpp"
#include "trace/trace.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim {
namespace {

/// FNV-1a 64 of the attribution-enabled trace JSON / HTML report of the
/// seeded run below (2 hosts, 2 VMs, seed 7, 32 MiB wordcount).
inline constexpr std::uint64_t kObsTraceDigest = 0x9c8a62d8fc983271ULL;
inline constexpr std::uint64_t kObsReportDigest = 0xc7009f05917388cfULL;

struct ObsRun {
  std::string trace_json;
  std::string report_html;
};

ObsRun obs_run() {
  trace::TraceSession session;
  obs::AttributionSession attr;
  cluster::ClusterConfig cfg;
  cfg.n_hosts = 2;
  cfg.vms_per_host = 2;
  cfg.seed = 7;
  const auto jc = workloads::make_job(workloads::wordcount(), 32 * mapred::kMiB);
  const auto rr = cluster::run_job(cfg, jc);
  EXPECT_FALSE(rr.failed) << rr.failure;
  EXPECT_GT(attr.attribution().records_completed(), 0u);
  EXPECT_EQ(attr.attribution().records_live(), 0u);
  attr.attribution().export_to_trace(session.tracer());

  ObsRun out;
  out.trace_json = session.tracer().to_json();
  std::string err;
  exp::ReportOptions opt;
  opt.title = "obs digest run";
  out.report_html = exp::render_report(out.trace_json, {}, opt, &err);
  EXPECT_FALSE(out.report_html.empty()) << err;
  return out;
}

TEST(ObsDigest, SeededRunMatchesPinnedTraceDigest) {
  const ObsRun run = obs_run();
  const std::uint64_t digest = exp::fnv1a64(run.trace_json);
  EXPECT_EQ(digest, kObsTraceDigest)
      << "obs trace digest changed: 0x" << std::hex << digest << std::dec
      << " (json bytes: " << run.trace_json.size() << ")";
}

TEST(ObsDigest, SeededRunMatchesPinnedReportDigest) {
  const ObsRun run = obs_run();
  const std::uint64_t digest = exp::fnv1a64(run.report_html);
  EXPECT_EQ(digest, kObsReportDigest)
      << "obs report digest changed: 0x" << std::hex << digest << std::dec
      << " (html bytes: " << run.report_html.size() << ")";
  // The report actually carries the attribution surface, not an empty shell.
  EXPECT_NE(run.report_html.find("Latency waterfalls"), std::string::npos);
  EXPECT_NE(run.report_html.find("host0 vm0"), std::string::npos);
}

TEST(ObsDigest, SameSeedIsByteIdenticalWithinProcess) {
  const ObsRun a = obs_run();
  const ObsRun b = obs_run();
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.report_html, b.report_html);
}

}  // namespace
}  // namespace iosim
