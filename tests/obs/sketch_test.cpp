// Unit tests for the log-linear quantile sketch and its windowed ring.
#include "obs/sketch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace iosim::obs {
namespace {

using sim::Time;

TEST(QuantileSketch, SmallValuesGetExactBuckets) {
  for (std::int64_t v = 0; v < QuantileSketch::kMinors; ++v) {
    EXPECT_EQ(QuantileSketch::bucket_of(v), v);
    EXPECT_EQ(QuantileSketch::bucket_lo(static_cast<int>(v)), v);
  }
  EXPECT_EQ(QuantileSketch::bucket_of(-17), 0);  // negatives clamp
}

TEST(QuantileSketch, BucketBoundsAreMonotoneAndContinuous) {
  // Every bucket's lo is the previous bucket's hi: the ladder covers the
  // non-negative integers with no gaps and no overlaps.
  for (int b = 1; b < QuantileSketch::kBuckets; ++b) {
    EXPECT_EQ(QuantileSketch::bucket_lo(b), QuantileSketch::bucket_hi(b - 1))
        << "gap at bucket " << b;
    EXPECT_LT(QuantileSketch::bucket_lo(b - 1), QuantileSketch::bucket_lo(b));
  }
  // And bucket_of agrees with the bounds across the whole range.
  for (int b = 0; b < QuantileSketch::kBuckets - 1; ++b) {
    EXPECT_EQ(QuantileSketch::bucket_of(QuantileSketch::bucket_lo(b)), b);
    EXPECT_EQ(QuantileSketch::bucket_of(QuantileSketch::bucket_hi(b) - 1), b);
  }
}

TEST(QuantileSketch, RelativeErrorWithinOneMinorBucket) {
  // bucket width / bucket lo <= 1/4 for every non-exact bucket: the minor
  // split caps quantile error at ~12.5% of the value (half a bucket).
  for (int b = QuantileSketch::kMinors; b < QuantileSketch::kBuckets - 1; ++b) {
    const auto lo = QuantileSketch::bucket_lo(b);
    const auto hi = QuantileSketch::bucket_hi(b);
    EXPECT_LE(hi - lo, lo / 2) << "bucket " << b << " too wide";
  }
}

TEST(QuantileSketch, SingleValueIsExactEverywhere) {
  QuantileSketch s;
  s.record(123'456);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.sum(), 123'456);
  EXPECT_EQ(s.min(), 123'456);
  EXPECT_EQ(s.max(), 123'456);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(s.quantile(q), 123'456) << "q=" << q;
  }
}

TEST(QuantileSketch, QuantilesOfUniformStreamWithinSketchError) {
  QuantileSketch s;
  for (std::int64_t v = 1; v <= 100'000; ++v) s.record(v);
  EXPECT_EQ(s.count(), 100'000u);
  EXPECT_EQ(s.sum(), 100'000LL * 100'001 / 2);
  for (double q : {0.10, 0.50, 0.90, 0.99}) {
    const double exact = 100'000.0 * q;
    const double est = static_cast<double>(s.quantile(q));
    EXPECT_NEAR(est, exact, exact * 0.13) << "q=" << q;
  }
  // Extremes clamp into the min/max buckets (interpolation may land at the
  // bucket edge, so allow the enclosing bucket, not the exact sample).
  EXPECT_GE(s.quantile(0.0), 1);
  EXPECT_LE(s.quantile(0.0), 4);
  EXPECT_GE(s.quantile(1.0), 87'000);
  EXPECT_LE(s.quantile(1.0), 100'001);
}

TEST(QuantileSketch, MergeReproducesCombinedStreamExactly) {
  // Split one stream across three sketches in an arbitrary pattern; any
  // merge grouping must reproduce the single-sketch result bucket for
  // bucket (determinism rule: mergeable in any grouping).
  QuantileSketch whole, a, b, c;
  std::uint64_t rng = 12345;
  for (int i = 0; i < 10'000; ++i) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto v = static_cast<std::int64_t>(rng % 50'000'000);
    whole.record(v);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
  }
  QuantileSketch left;      // (a + b) + c
  left.merge(a);
  left.merge(b);
  left.merge(c);
  QuantileSketch right;     // c + (b + a) — different order
  QuantileSketch ba;
  ba.merge(b);
  ba.merge(a);
  right.merge(c);
  right.merge(ba);
  for (const QuantileSketch* m : {&left, &right}) {
    EXPECT_EQ(m->count(), whole.count());
    EXPECT_EQ(m->sum(), whole.sum());
    EXPECT_EQ(m->min(), whole.min());
    EXPECT_EQ(m->max(), whole.max());
    for (int bkt = 0; bkt < QuantileSketch::kBuckets; ++bkt) {
      ASSERT_EQ(m->bucket_count(bkt), whole.bucket_count(bkt)) << "bucket " << bkt;
    }
    for (double q : {0.5, 0.95, 0.99}) {
      EXPECT_EQ(m->quantile(q), whole.quantile(q)) << "q=" << q;
    }
  }
}

TEST(QuantileSketch, ClearResetsEverything) {
  QuantileSketch s;
  s.record(42);
  s.record(9000);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0);
  EXPECT_EQ(s.quantile(0.5), 0);
}

TEST(WindowedSketch, ValuesExpireWithTheirFrames) {
  // 1 ms windows, 4 frames: a value recorded in window 0 is visible until
  // the ring advances 4 windows past it, then gone.
  WindowedSketch w(Time::from_ms(1), 4);
  w.record(1000, Time::from_us(500));                    // window 0
  EXPECT_EQ(w.snapshot(Time::from_us(600)).count(), 1u);
  EXPECT_EQ(w.snapshot(Time::from_ms(3)).count(), 1u);   // window 3: still live
  EXPECT_EQ(w.snapshot(Time::from_ms(4)).count(), 0u);   // window 4: expired
}

TEST(WindowedSketch, PartialExpiryKeepsRecentFrames) {
  WindowedSketch w(Time::from_ms(1), 4);
  w.record(10, Time::from_us(100));     // window 0
  w.record(20, Time::from_ms(2));       // window 2
  // At window 4 the ring spans windows 1..4: the first value fell off.
  const auto snap = w.snapshot(Time::from_ms(4));
  EXPECT_EQ(snap.count(), 1u);
  EXPECT_EQ(snap.sum(), 20);
}

TEST(WindowedSketch, LongIdleGapClearsTheWholeRing) {
  WindowedSketch w(Time::from_ms(1), 4);
  for (int i = 0; i < 4; ++i) w.record(100 + i, Time::from_ms(i));
  EXPECT_EQ(w.snapshot(Time::from_ms(3)).count(), 4u);
  EXPECT_EQ(w.snapshot(Time::from_sec(10)).count(), 0u);
}

TEST(WindowedSketch, SnapshotMergeMatchesCumulativeWithinRing) {
  // All values inside the ring span: the snapshot equals a cumulative
  // sketch of the same stream (merge determinism, again).
  WindowedSketch w(Time::from_ms(1), 8);
  QuantileSketch cum;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = (i * 7919) % 1'000'000;
    w.record(v, Time::from_us(i));  // all land in windows 0..0 (1000 µs < 1 ms? no: window 0)
    cum.record(v);
  }
  const auto snap = w.snapshot(Time::from_us(999));
  EXPECT_EQ(snap.count(), cum.count());
  EXPECT_EQ(snap.sum(), cum.sum());
  for (double q : {0.5, 0.99}) EXPECT_EQ(snap.quantile(q), cum.quantile(q));
}

}  // namespace
}  // namespace iosim::obs
