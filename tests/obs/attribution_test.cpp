// Unit tests for the attribution layer: hand-computed waterfalls through
// the raw stamping hooks, stamp-once/overwrite semantics, key separation,
// stall detection, record recycling, and the publish surface.
#include "obs/attribution.hpp"

#include <gtest/gtest.h>

#include <string>

#include "trace/registry.hpp"

namespace iosim::obs {
namespace {

using sim::Time;

// Drive one request through all six stamps with the given stage times (µs)
// and return its handle.
AttrHandle walk(Attribution& at, std::int64_t submit_us, std::int64_t gd_us,
                std::int64_t arr_us, std::int64_t disp_us, std::int64_t d0c_us,
                std::int64_t done_us, bool is_write = false, bool sync = true,
                std::size_t reads_ahead = 0, std::size_t writes_ahead = 0) {
  const AttrHandle h = at.on_submit(/*host=*/0, /*vm=*/1, is_write, sync,
                                    /*lba=*/4096, /*sectors=*/8,
                                    Time::from_us(submit_us));
  at.on_guest_dispatch(h, Time::from_us(gd_us));
  at.on_dom0_arrive(h, Time::from_us(arr_us), reads_ahead, writes_ahead,
                    reads_ahead + writes_ahead);
  at.on_dom0_dispatch(h, Time::from_us(disp_us));
  at.on_dom0_complete(h, Time::from_us(d0c_us));
  at.on_complete(h, Time::from_us(done_us));
  return h;
}

TEST(Attribution, HandComputedWaterfall) {
  Attribution at;
  // submit 0, guest dispatch 10µs, dom0 arrive 60µs, dom0 dispatch 100µs,
  // dom0 complete 200µs, guest complete 250µs.
  walk(at, 0, 10, 60, 100, 200, 250, /*is_write=*/false, /*sync=*/true,
       /*reads_ahead=*/2, /*writes_ahead=*/5);

  ASSERT_EQ(at.n_keys(), 1u);
  const AttrKey& k = at.key_at(0);
  EXPECT_EQ(k.host, 0);
  EXPECT_EQ(k.vm, 1);
  EXPECT_EQ(k.dir, 0);
  EXPECT_EQ(k.sync, 1);
  EXPECT_EQ(k.phase, 0);
  EXPECT_EQ(Attribution::key_name(k), "host0.vm1.read.sync.ph0");

  // Single sample per lane: sketch sum is the exact lane value.
  const std::int64_t us = 1000;
  EXPECT_EQ(at.lane(0, Lane::kGuestQueue).sum(), 10 * us);
  EXPECT_EQ(at.lane(0, Lane::kRingWait).sum(), 50 * us);
  EXPECT_EQ(at.lane(0, Lane::kElvWait).sum(), 40 * us);
  EXPECT_EQ(at.lane(0, Lane::kService).sum(), 100 * us);
  EXPECT_EQ(at.lane(0, Lane::kReturn).sum(), 50 * us);
  EXPECT_EQ(at.lane(0, Lane::kTotal).sum(), 250 * us);
  // Lanes sum exactly to the total — the waterfall invariant.
  std::int64_t lane_sum = 0;
  for (int l = 0; l < kNumLanes - 1; ++l) {
    lane_sum += at.lane(0, static_cast<Lane>(l)).sum();
  }
  EXPECT_EQ(lane_sum, at.lane(0, Lane::kTotal).sum());

  EXPECT_EQ(at.records_created(), 1u);
  EXPECT_EQ(at.records_completed(), 1u);
  EXPECT_EQ(at.records_live(), 0u);
  EXPECT_EQ(at.last_activity().ns(), 250 * us);
  EXPECT_EQ(at.windowed_total(0).count(), 1u);
  EXPECT_EQ(at.windowed_total(0).sum(), 250 * us);
}

TEST(Attribution, Dom0StampOnceAndOverwriteSemantics) {
  // Two ring segments of the same guest request: arrival and dispatch keep
  // the FIRST stamp (and the first queue snapshot); completion keeps the
  // LAST. The waterfall then spans first-arrival .. last-completion,
  // matching blktrace's request-level view.
  Attribution at;
  const AttrHandle h =
      at.on_submit(0, 0, false, true, 0, 176, Time::from_us(0));
  at.on_guest_dispatch(h, Time::from_us(10));
  at.on_dom0_arrive(h, Time::from_us(60), 1, 2, 3);    // first segment wins
  at.on_dom0_arrive(h, Time::from_us(70), 9, 9, 9);    // ignored
  at.on_dom0_dispatch(h, Time::from_us(100));          // first wins
  at.on_dom0_dispatch(h, Time::from_us(140));          // ignored
  at.on_dom0_complete(h, Time::from_us(180));
  at.on_dom0_complete(h, Time::from_us(200));          // last wins
  at.on_complete(h, Time::from_us(250));

  ASSERT_EQ(at.n_keys(), 1u);
  EXPECT_EQ(at.lane(0, Lane::kElvWait).sum(), 40'000);   // 60 -> 100 µs
  EXPECT_EQ(at.lane(0, Lane::kService).sum(), 100'000);  // 100 -> 200 µs
  EXPECT_EQ(at.lane(0, Lane::kReturn).sum(), 50'000);    // 200 -> 250 µs
}

TEST(Attribution, KeysSeparateByDirSyncAndPhase) {
  Attribution at;
  walk(at, 0, 1, 2, 3, 4, 5, /*is_write=*/false, /*sync=*/true);
  walk(at, 0, 1, 2, 3, 4, 5, /*is_write=*/true, /*sync=*/false);
  at.set_phase(2);
  walk(at, 0, 1, 2, 3, 4, 5, /*is_write=*/false, /*sync=*/true);
  ASSERT_EQ(at.n_keys(), 3u);
  EXPECT_EQ(Attribution::key_name(at.key_at(0)), "host0.vm1.read.sync.ph0");
  EXPECT_EQ(Attribution::key_name(at.key_at(1)), "host0.vm1.write.async.ph0");
  EXPECT_EQ(Attribution::key_name(at.key_at(2)), "host0.vm1.read.sync.ph2");
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(at.lane(i, Lane::kTotal).count(), 1u) << "key " << i;
  }
}

TEST(Attribution, JobCtxWindowsSeparateKeys) {
  // Bios submitted from a stream job's private ctx window key to that job;
  // shared-namespace ctxs (below the first window) keep the historical
  // five-part key so single-job output is byte-identical.
  EXPECT_EQ(job_of_ctx(0), -1);
  EXPECT_EQ(job_of_ctx(10'000), -1);                     // legacy map task
  EXPECT_EQ(job_of_ctx(kJobCtxWindow - 1), -1);
  EXPECT_EQ(job_of_ctx(kJobCtxWindow), 0);               // job 0 window start
  EXPECT_EQ(job_of_ctx(2 * kJobCtxWindow + 10'123), 1);  // job 1 map task

  Attribution at;
  auto submit_done = [&](std::uint64_t ctx) {
    const AttrHandle h = at.on_submit(0, 1, false, true, 0, 8, Time::from_us(0),
                                      ctx);
    at.on_complete(h, Time::from_us(5));
  };
  submit_done(10'000);                     // shared namespace
  submit_done(kJobCtxWindow + 10'000);     // job 0
  submit_done(3 * kJobCtxWindow + 20'000); // job 2
  submit_done(kJobCtxWindow + 10'999);     // job 0 again — same key

  ASSERT_EQ(at.n_keys(), 3u);
  EXPECT_EQ(Attribution::key_name(at.key_at(0)), "host0.vm1.read.sync.ph0");
  EXPECT_EQ(Attribution::key_name(at.key_at(1)), "host0.vm1.job0.read.sync.ph0");
  EXPECT_EQ(Attribution::key_name(at.key_at(2)), "host0.vm1.job2.read.sync.ph0");
  EXPECT_EQ(at.lane(1, Lane::kTotal).count(), 2u);
}

TEST(Attribution, PhaseClampsToSixBits) {
  Attribution at;
  at.set_phase(-5);
  EXPECT_EQ(at.phase(), 0);
  at.set_phase(999);
  EXPECT_EQ(at.phase(), 63);
}

TEST(Attribution, RecordsRecycleAfterCompletion) {
  Attribution at;
  const AttrHandle h1 = walk(at, 0, 1, 2, 3, 4, 5);
  // The record was recycled, so the next submit reuses the same arena slot.
  const AttrHandle h2 = walk(at, 10, 11, 12, 13, 14, 15);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(at.records_created(), 2u);
  EXPECT_EQ(at.records_completed(), 2u);
  EXPECT_EQ(at.records_live(), 0u);
  // Two live records at once get distinct slots.
  const AttrHandle a = at.on_submit(0, 0, false, true, 0, 8, Time::from_us(0));
  const AttrHandle b = at.on_submit(0, 0, false, true, 8, 8, Time::from_us(1));
  EXPECT_NE(a, b);
  EXPECT_EQ(at.records_live(), 2u);
}

TEST(Attribution, HooksIgnoreNoAttrAndStaleHandles) {
  Attribution at;
  at.on_guest_dispatch(kNoAttr, Time::from_us(1));
  at.on_dom0_arrive(kNoAttr, Time::from_us(1), 0, 0, 0);
  at.on_complete(kNoAttr, Time::from_us(1));
  at.on_complete(777, Time::from_us(1));  // out-of-range handle
  EXPECT_EQ(at.records_created(), 0u);
  EXPECT_EQ(at.records_completed(), 0u);
  EXPECT_EQ(at.n_keys(), 0u);
}

TEST(Attribution, StallDetectorFiresAboveArmedThreshold) {
  AttributionConfig cfg;
  cfg.stall.factor = 1.5;
  cfg.stall.floor = Time::from_us(100);
  cfg.stall.min_samples = 8;
  Attribution at(cfg);

  // 8 well-behaved sync reads (~250µs total each) arm the detector; the
  // detector compares against history *before* each request joins it, so
  // none of these can trip on themselves.
  for (int i = 0; i < 8; ++i) {
    const std::int64_t t0 = i * 1000;
    walk(at, t0, t0 + 10, t0 + 60, t0 + 100, t0 + 200, t0 + 250);
  }
  EXPECT_EQ(at.stalls_total(), 0u);

  // A 10ms outlier: way past max(100µs floor, 1.5 * p99(~250µs)). Its Dom0
  // snapshot says five writes were ahead of it — the paper's smoking gun.
  const std::int64_t t0 = 100'000;
  walk(at, t0, t0 + 10, t0 + 60, t0 + 9000, t0 + 9950, t0 + 10'000,
       /*is_write=*/false, /*sync=*/true, /*reads_ahead=*/0,
       /*writes_ahead=*/5);

  EXPECT_EQ(at.stalls_total(), 1u);
  ASSERT_EQ(at.stalls().size(), 1u);
  const StallEvent& ev = at.stalls()[0];
  EXPECT_EQ(ev.total_ns, 10'000'000);
  EXPECT_GT(ev.threshold_ns, 0);
  EXPECT_LT(ev.threshold_ns, ev.total_ns);
  EXPECT_EQ(ev.writes_ahead, 5u);
  EXPECT_EQ(ev.reads_ahead, 0u);
  EXPECT_EQ(ev.lane_ns[static_cast<int>(Lane::kTotal)], 10'000'000);
  // The outlier spent its time waiting in the Dom0 elevator behind those
  // writes: elv_wait is the dominant lane of the stalled request.
  EXPECT_EQ(ev.lane_ns[static_cast<int>(Lane::kElvWait)], 8'940'000);

  // Below threshold again: no new stall.
  const std::int64_t t1 = 200'000;
  walk(at, t1, t1 + 10, t1 + 60, t1 + 100, t1 + 200, t1 + 250);
  EXPECT_EQ(at.stalls_total(), 1u);
}

TEST(Attribution, StallLogIsBoundedButCountIsNot) {
  AttributionConfig cfg;
  cfg.stall.factor = 1.0;
  cfg.stall.floor = Time::from_us(1);
  cfg.stall.min_samples = 1;
  cfg.stall.max_log = 2;
  Attribution at(cfg);
  // First request arms the key; every later one is 10x slower than history
  // ever saw, so each trips the detector.
  walk(at, 0, 1, 2, 3, 4, 5);
  for (int i = 1; i <= 5; ++i) {
    const std::int64_t t0 = i * 100'000;
    walk(at, t0, t0 + 10, t0 + 60, t0 + 100, t0 + 200, t0 + 50'000 * i);
  }
  EXPECT_EQ(at.stalls_total(), 5u);
  EXPECT_EQ(at.stalls().size(), 2u);  // log capped at max_log
}

TEST(Attribution, PublishEmitsPerLaneGauges) {
  Attribution at;
  walk(at, 0, 10, 60, 100, 200, 250);
  trace::Registry reg;
  at.publish(reg);

  bool saw_elv_sum = false, saw_records = false;
  for (const auto& item : reg.items()) {
    if (item.name == "obs.host0.vm1.read.sync.ph0.elv_wait.sum_ns") {
      saw_elv_sum = true;
      EXPECT_EQ(reg.gauge_at(item.idx).value(), 40'000.0);
    }
    if (item.name == "obs.records_completed") {
      saw_records = true;
      EXPECT_EQ(reg.gauge_at(item.idx).value(), 1.0);
    }
  }
  EXPECT_TRUE(saw_elv_sum);
  EXPECT_TRUE(saw_records);
}

TEST(AttributionSession, InstallsAndRestoresThreadLocal) {
  EXPECT_EQ(attribution(), nullptr);
  {
    AttributionSession outer;
    EXPECT_EQ(attribution(), &outer.attribution());
    {
      AttributionSession inner;
      EXPECT_EQ(attribution(), &inner.attribution());
    }
    EXPECT_EQ(attribution(), &outer.attribution());
  }
  EXPECT_EQ(attribution(), nullptr);
}

}  // namespace
}  // namespace iosim::obs
