// Mechanism check for the paper's Fig.-2 story, told through attribution.
//
// The testbed: one physical host, two VMs. VM1 issues small sequential sync
// reads one at a time; VM0 is quiet at first, then floods the path with
// deep async sequential writes (dd-style writeback). Under (noop, noop) the
// Dom0 elevator is FIFO, so once the flood starts every sync read queues
// behind tens of write requests — the elevator-wait lane dominates read
// latency, and the stall detector (armed on the quiet baseline) flags reads
// with writes ahead of them. Under the protective (CFQ, anticipatory) pair
// the same schedule keeps the reads' elevator share far smaller.
#include <gtest/gtest.h>

#include <cstdint>

#include "iosched/pair.hpp"
#include "obs/attribution.hpp"
#include "sim/simulator.hpp"
#include "virt/domu.hpp"
#include "virt/physical_host.hpp"

namespace iosim {
namespace {

using iosched::Dir;
using iosched::SchedulerKind;
using sim::Time;

constexpr int kQuietReads = 50;    // baseline reads before the flood
constexpr int kFloodedReads = 100; // reads completed during the flood
constexpr int kTotalReads = kQuietReads + kFloodedReads;
constexpr int kWriteDepth = 64;    // writer's outstanding bios (writeback backlog)

struct Fig2Rig {
  sim::Simulator simr;
  virt::PhysicalHost host;
  virt::DomU* writer_vm;
  virt::DomU* reader_vm;

  int reads_done = 0;
  disk::Lba read_lba = 0;
  disk::Lba write_lba = 0;
  bool flood_on = false;

  explicit Fig2Rig(SchedulerKind vmm, SchedulerKind guest)
      : host(simr,
             [&] {
               virt::HostConfig hc;
               hc.dom0_blk.scheduler = vmm;
               hc.domu.guest_blk.scheduler = guest;
               return hc;
             }(),
             /*host_id=*/0, /*vm_ctx_base=*/0, /*seed=*/11) {
    writer_vm = &host.add_vm();
    reader_vm = &host.add_vm();
  }

  void submit_read() {
    if (reads_done >= kTotalReads) return;
    const std::int64_t sectors = 8;
    if (read_lba + sectors > reader_vm->image_sectors()) read_lba = 0;
    const disk::Lba lba = read_lba;
    read_lba += sectors;
    reader_vm->submit_io(/*ctx=*/1, lba, sectors, Dir::kRead, /*sync=*/true,
                         [this](Time, iosched::IoStatus) {
                           ++reads_done;
                           if (reads_done == kQuietReads) start_flood();
                           submit_read();
                         });
  }

  void submit_write() {
    // The flood sustains itself until the reader has what it needs.
    if (reads_done >= kTotalReads) return;
    const std::int64_t sectors = 256;  // 128 KB writeback chunks
    if (write_lba + sectors > writer_vm->image_sectors()) write_lba = 0;
    const disk::Lba lba = write_lba;
    write_lba += sectors;
    writer_vm->submit_io(/*ctx=*/2, lba, sectors, Dir::kWrite, /*sync=*/false,
                         [this](Time, iosched::IoStatus) { submit_write(); });
  }

  void start_flood() {
    if (flood_on) return;
    flood_on = true;
    for (int i = 0; i < kWriteDepth; ++i) submit_write();
  }

  void run() {
    submit_read();
    simr.run();
  }
};

struct MechanismResult {
  std::int64_t sync_read_elv_ns = 0;
  std::int64_t sync_read_total_ns = 0;
  std::uint64_t sync_read_count = 0;
  std::uint64_t stalls_total = 0;
  /// Stalled sync reads that arrived behind at least one queued write.
  int stalls_behind_writes = 0;

  double elv_share() const {
    return sync_read_total_ns > 0
               ? static_cast<double>(sync_read_elv_ns) /
                     static_cast<double>(sync_read_total_ns)
               : 0.0;
  }
};

MechanismResult run_pair(SchedulerKind vmm, SchedulerKind guest) {
  // Lowered stall thresholds: the quiet baseline is only kQuietReads deep,
  // so the detector must arm before the flood begins.
  obs::AttributionConfig acfg;
  acfg.stall.factor = 1.5;
  acfg.stall.floor = sim::Time::from_ms(5);
  acfg.stall.min_samples = 16;
  obs::AttributionSession attr(acfg);

  Fig2Rig rig(vmm, guest);
  rig.run();
  EXPECT_EQ(rig.reads_done, kTotalReads);

  MechanismResult out;
  obs::Attribution& at = attr.attribution();
  for (std::size_t i = 0; i < at.n_keys(); ++i) {
    const obs::AttrKey& k = at.key_at(i);
    if (k.dir != 0 || k.sync != 1) continue;  // sync reads only
    out.sync_read_elv_ns += at.lane(i, obs::Lane::kElvWait).sum();
    out.sync_read_total_ns += at.lane(i, obs::Lane::kTotal).sum();
    out.sync_read_count += at.lane(i, obs::Lane::kTotal).count();
  }
  out.stalls_total = at.stalls_total();
  for (const obs::StallEvent& ev : at.stalls()) {
    if (ev.key.dir == 0 && ev.key.sync == 1 && ev.writes_ahead > 0) {
      ++out.stalls_behind_writes;
    }
  }
  return out;
}

TEST(ObsMechanism, ElevatorWaitDominatesSyncReadsUnderNoopNoop) {
  const auto nn = run_pair(SchedulerKind::kNoop, SchedulerKind::kNoop);
  const auto ca = run_pair(SchedulerKind::kCfq, SchedulerKind::kAnticipatory);

  ASSERT_EQ(nn.sync_read_count, static_cast<std::uint64_t>(kTotalReads));
  ASSERT_EQ(ca.sync_read_count, static_cast<std::uint64_t>(kTotalReads));
  ASSERT_GT(nn.sync_read_total_ns, 0);
  ASSERT_GT(ca.sync_read_total_ns, 0);

  // The paper's mechanism: with no Dom0 discipline the sync reads spend
  // most of their life queued in the Dom0 elevator behind the write flood;
  // CFQ in the VMM plus anticipatory in the guest shrinks both the share
  // and the absolute elevator wait.
  EXPECT_GT(nn.elv_share(), 0.5)
      << "nn elv share " << nn.elv_share() << " of " << nn.sync_read_total_ns
      << " ns across " << nn.sync_read_count << " reads";
  EXPECT_GT(nn.elv_share(), ca.elv_share() * 1.5)
      << "nn " << nn.elv_share() << " vs ca " << ca.elv_share();
  EXPECT_GT(nn.sync_read_elv_ns, ca.sync_read_elv_ns)
      << "nn elv " << nn.sync_read_elv_ns << " ns vs ca "
      << ca.sync_read_elv_ns << " ns";
}

TEST(ObsMechanism, StallDetectorCatchesReadsBehindWritesUnderNoop) {
  const auto nn = run_pair(SchedulerKind::kNoop, SchedulerKind::kNoop);
  // Armed on the quiet baseline, the detector fires once the flood starts,
  // and the flagged sync reads arrived with writes queued ahead of them in
  // the Dom0 elevator — the "who was ahead" evidence.
  EXPECT_GT(nn.stalls_total, 0u);
  EXPECT_GT(nn.stalls_behind_writes, 0);
}

}  // namespace
}  // namespace iosim
