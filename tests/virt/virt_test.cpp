#include <gtest/gtest.h>

#include "virt/io_stream.hpp"
#include "virt/physical_host.hpp"

namespace iosim::virt {
namespace {

using namespace iosim::sim::literals;
using iosched::Dir;
using iosched::SchedulerKind;
using sim::Time;

struct HostRig {
  sim::Simulator simr;
  PhysicalHost host;
  explicit HostRig(int vms = 2, HostConfig cfg = {})
      : host(simr, cfg, 0, /*vm_ctx_base=*/100, /*seed=*/7) {
    for (int i = 0; i < vms; ++i) host.add_vm();
  }
};

TEST(PhysicalHost, BuildsVmsWithDistinctImages) {
  HostRig r(4);
  EXPECT_EQ(r.host.vm_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(r.host.vm(i).image_sectors(), 0);
  }
}

TEST(PhysicalHost, PairReflectsSchedulers) {
  HostRig r(2);
  EXPECT_EQ(r.host.pair(), iosched::kDefaultPair);
  r.host.set_pair({SchedulerKind::kAnticipatory, SchedulerKind::kDeadline});
  r.simr.run();  // let the switch freezes elapse
  EXPECT_EQ(r.host.pair().vmm, SchedulerKind::kAnticipatory);
  EXPECT_EQ(r.host.pair().guest, SchedulerKind::kDeadline);
  EXPECT_EQ(r.host.vm(0).scheduler(), SchedulerKind::kDeadline);
  EXPECT_EQ(r.host.vm(1).scheduler(), SchedulerKind::kDeadline);
}

TEST(DomU, SubmitIoCompletes) {
  HostRig r(1);
  Time done;
  r.host.vm(0).submit_io(42, 1000, 128, Dir::kRead, true,
                         [&](Time t, iosched::IoStatus) { done = t; });
  r.simr.run();
  EXPECT_GT(done, Time::zero());
}

TEST(DomU, IoTraversesRingToPhysicalDisk) {
  HostRig r(1);
  r.host.vm(0).submit_io(42, 0, 512, Dir::kWrite, false, {});
  r.simr.run();
  EXPECT_GT(r.host.disk().model().total_accesses(), 0);
  EXPECT_GT(r.host.dom0_layer().counters().bios_submitted, 0u);
  // 512 sectors at 88 per blkif segment = 6 Dom0 bios.
  EXPECT_EQ(r.host.dom0_layer().counters().bios_submitted, 6u);
}

TEST(DomU, Dom0SeesVmContext) {
  HostRig r(2);
  std::set<std::uint64_t> ctxs;
  r.host.dom0_layer().add_completion_observer(
      [&](const blk::BlockLayer&, const iosched::Request& rq, Time) { ctxs.insert(rq.ctx); });
  r.host.vm(0).submit_io(1, 0, 88, Dir::kRead, true, {});
  r.host.vm(1).submit_io(2, 0, 88, Dir::kRead, true, {});
  r.simr.run();
  // Guest task ids 1/2 were rewritten to the VM identities 100/101.
  EXPECT_EQ(ctxs, (std::set<std::uint64_t>{100, 101}));
}

TEST(DomU, VmsMapToDisjointPhysicalExtents) {
  HostRig r(2);
  std::vector<disk::Lba> lbas;
  r.host.dom0_layer().add_completion_observer(
      [&](const blk::BlockLayer&, const iosched::Request& rq, Time) { lbas.push_back(rq.lba); });
  r.host.vm(0).submit_io(1, 0, 88, Dir::kRead, true, {});
  r.host.vm(1).submit_io(1, 0, 88, Dir::kRead, true, {});
  r.simr.run();
  ASSERT_EQ(lbas.size(), 2u);
  EXPECT_NE(lbas[0], lbas[1]);  // same vLBA, different images
}

TEST(DomU, AllocZonesAreOrderedAndWrap) {
  HostRig r(1);
  DomU& vm = r.host.vm(0);
  const disk::Lba data = vm.alloc(DiskZone::kData, 1000);
  const disk::Lba scratch = vm.alloc(DiskZone::kScratch, 1000);
  const disk::Lba output = vm.alloc(DiskZone::kOutput, 1000);
  EXPECT_LT(data, scratch);
  EXPECT_LT(scratch, output);
  // Successive allocations advance.
  EXPECT_GT(vm.alloc(DiskZone::kData, 1000), data);
  // Exhausting a zone wraps instead of overflowing.
  for (int i = 0; i < 10000; ++i) {
    const disk::Lba at = vm.alloc(DiskZone::kScratch, vm.image_sectors() / 10);
    EXPECT_GE(at, 0);
    EXPECT_LE(at + vm.image_sectors() / 10, vm.image_sectors());
  }
}

TEST(BlkfrontRing, BoundsOutstandingSegments) {
  HostRig r(1);
  // Submit far more than the ring can hold; everything must still complete.
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    r.host.vm(0).submit_io(7, i * 512, 512, Dir::kWrite, false,
                           [&](Time, iosched::IoStatus) { ++completed; });
  }
  r.simr.run();
  EXPECT_EQ(completed, 100);
}

TEST(IoStream, TransfersWholeExtent) {
  HostRig r(1);
  Time done;
  IoStreamParams p;
  IoStream::run(r.host.vm(0), 9, 0, 10 * 1024 * 1024, Dir::kRead, true, p,
                [&](Time t, iosched::IoStatus) { done = t; });
  r.simr.run();
  EXPECT_GT(done, Time::zero());
  // 10 MB read through the guest layer.
  EXPECT_EQ(r.host.vm(0).layer().counters().bytes_completed[0], 10 * 1024 * 1024);
}

TEST(IoStream, DoneFiresExactlyOnce) {
  HostRig r(1);
  int fires = 0;
  IoStreamParams p;
  p.window = 8;
  IoStream::run(r.host.vm(0), 9, 0, 4 * 1024 * 1024, Dir::kWrite, false, p,
                [&](Time, iosched::IoStatus) { ++fires; });
  r.simr.run();
  EXPECT_EQ(fires, 1);
}

TEST(IoStream, RoundsUpPartialSectors) {
  HostRig r(1);
  Time done;
  IoStream::run(r.host.vm(0), 9, 0, 1000 /* not sector aligned */, Dir::kWrite,
                false, IoStreamParams{}, [&](Time t, iosched::IoStatus) { done = t; });
  r.simr.run();
  EXPECT_GT(done, Time::zero());
}

TEST(IoStream, SequentialReadFasterThanScattered) {
  // The stream's sequential layout should beat the same volume scattered
  // across the image — sanity that the stack preserves locality.
  auto run_pattern = [](bool sequential) {
    HostRig r(1);
    Time done;
    if (sequential) {
      IoStream::run(r.host.vm(0), 9, 0, 32 * 1024 * 1024, Dir::kRead, true,
                    IoStreamParams{}, [&](Time t, iosched::IoStatus) { done = t; });
      r.simr.run();
    } else {
      // 64 scattered 512 KB reads, serialized.
      const std::int64_t unit = 1024;
      int i = 0;
      std::function<void(Time, iosched::IoStatus)> next = [&](Time t, iosched::IoStatus) {
        done = t;
        if (++i < 64) {
          r.host.vm(0).submit_io(9, (i * 7919) % 100000 * 1024, unit, Dir::kRead,
                                 true, next);
        }
      };
      r.host.vm(0).submit_io(9, 0, unit, Dir::kRead, true, next);
      r.simr.run();
    }
    return done;
  };
  EXPECT_LT(run_pattern(true), run_pattern(false));
}

TEST(PhysicalHost, SwitchPairQuiescesButCompletesInflight) {
  HostRig r(2);
  int completed = 0;
  for (int i = 0; i < 40; ++i) {
    r.host.vm(i % 2).submit_io(5, i * 1024, 256, Dir::kWrite, false,
                               [&](Time, iosched::IoStatus) { ++completed; });
  }
  r.simr.after(5_ms, [&] {
    r.host.set_pair({SchedulerKind::kNoop, SchedulerKind::kNoop});
  });
  r.simr.run();
  EXPECT_EQ(completed, 40);
  EXPECT_EQ(r.host.pair().vmm, SchedulerKind::kNoop);
}

}  // namespace
}  // namespace iosim::virt
