// Tests of the --fault spec grammar and plan parser.
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

namespace iosim::fault {
namespace {

TEST(FaultPlanParse, TransientSpec) {
  std::string err;
  const auto s = FaultPlan::parse_spec("transient:host=2,p=0.05,from=1,until=9", &err);
  ASSERT_TRUE(s.has_value()) << err;
  EXPECT_EQ(s->kind, FaultKind::kTransientError);
  EXPECT_EQ(s->host, 2);
  EXPECT_DOUBLE_EQ(s->probability, 0.05);
  EXPECT_EQ(s->from, sim::Time::from_sec(1));
  EXPECT_EQ(s->until, sim::Time::from_sec(9));
}

TEST(FaultPlanParse, LseSpecRange) {
  const auto s = FaultPlan::parse_spec("lse:host=0,lba=1000-2000");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->kind, FaultKind::kLatentSector);
  EXPECT_EQ(s->lba_begin, 1000);
  EXPECT_EQ(s->lba_end, 2000);
  EXPECT_EQ(s->until, sim::Time::max());  // defaults to forever
}

TEST(FaultPlanParse, FailSlowVmDownSwitchSpecs) {
  EXPECT_TRUE(FaultPlan::parse_spec("failslow:host=-1,factor=3.5").has_value());
  EXPECT_TRUE(FaultPlan::parse_spec("vmdown:vm=7,from=10,until=30").has_value());
  EXPECT_TRUE(FaultPlan::parse_spec("switchfail:p=1").has_value());
  const auto d = FaultPlan::parse_spec("switchdelay:delay=2.5");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->delay, sim::Time::from_ms(2500));
}

TEST(FaultPlanParse, WhitespaceTolerated) {
  const auto s = FaultPlan::parse_spec("  transient : host=1 , p=0.5  ");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->host, 1);
}

TEST(FaultPlanParse, UnknownKindRejected) {
  std::string err;
  EXPECT_FALSE(FaultPlan::parse_spec("cosmicray:p=1", &err).has_value());
  EXPECT_NE(err.find("cosmicray"), std::string::npos);
}

TEST(FaultPlanParse, InapplicableKeyRejected) {
  std::string err;
  EXPECT_FALSE(FaultPlan::parse_spec("vmdown:vm=1,lba=0-5", &err).has_value());
  EXPECT_NE(err.find("lba"), std::string::npos);
  EXPECT_FALSE(FaultPlan::parse_spec("switchfail:p=1,host=0", &err).has_value());
}

TEST(FaultPlanParse, MissingRequiredKeyRejected) {
  EXPECT_FALSE(FaultPlan::parse_spec("transient:host=0").has_value());
  EXPECT_FALSE(FaultPlan::parse_spec("lse:host=0").has_value());
  EXPECT_FALSE(FaultPlan::parse_spec("failslow:host=0").has_value());
  EXPECT_FALSE(FaultPlan::parse_spec("vmdown:from=1,until=2").has_value());
  EXPECT_FALSE(FaultPlan::parse_spec("switchdelay:from=1").has_value());
}

TEST(FaultPlanParse, BadValuesRejected) {
  std::string err;
  EXPECT_FALSE(FaultPlan::parse_spec("transient:host=0,p=1.5", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse_spec("transient:host=0,p=banana", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse_spec("failslow:host=0,factor=0.5", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse_spec("lse:host=0,lba=20-10", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse_spec("vmdown:vm=-3", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse_spec("transient:host=0,p=1,from=-2", &err).has_value());
}

TEST(FaultPlanParse, EmptyWindowRejected) {
  std::string err;
  EXPECT_FALSE(
      FaultPlan::parse_spec("transient:host=0,p=1,from=5,until=5", &err).has_value());
  EXPECT_NE(err.find("window"), std::string::npos);
}

TEST(FaultPlanParse, MissingEqualsRejected) {
  std::string err;
  EXPECT_FALSE(FaultPlan::parse_spec("transient:host", &err).has_value());
  EXPECT_NE(err.find("key=value"), std::string::npos);
}

TEST(FaultPlanParse, PlanListSemicolonsNewlinesComments) {
  std::string err;
  const auto p = FaultPlan::parse(
      "# a comment line\n"
      "transient:host=0,p=0.1; lse:host=1,lba=0-100\n"
      "\n"
      "vmdown:vm=2,from=1,until=2  # trailing comment\n",
      &err);
  ASSERT_TRUE(p.has_value()) << err;
  EXPECT_EQ(p->specs.size(), 3u);
  EXPECT_EQ(p->specs[2].kind, FaultKind::kVmOutage);
}

TEST(FaultPlanParse, PlanIsAllOrNothing) {
  std::string err;
  EXPECT_FALSE(FaultPlan::parse("transient:host=0,p=0.1;bogus:x=1", &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(FaultPlanParse, EmptyTextIsEmptyPlan) {
  const auto p = FaultPlan::parse("  \n # only a comment \n;;");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

TEST(FaultPlanParse, DuplicateKeyRejected) {
  std::string err;
  EXPECT_FALSE(
      FaultPlan::parse_spec("transient:host=0,p=0.1,p=0.9", &err).has_value());
  EXPECT_NE(err.find("duplicate key 'p'"), std::string::npos) << err;
  EXPECT_FALSE(
      FaultPlan::parse_spec("vmdown:vm=1,from=1,from=2,until=3", &err).has_value());
  EXPECT_NE(err.find("duplicate key 'from'"), std::string::npos) << err;
}

TEST(FaultPlanParse, NonFiniteNumbersRejected) {
  // NaN slips through ordinary range checks (every comparison is false) and
  // inf seconds would overflow Time::from_sec_f — both must fail the parse.
  std::string err;
  EXPECT_FALSE(FaultPlan::parse_spec("transient:host=0,p=nan", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse_spec("switchdelay:delay=inf", &err).has_value());
  EXPECT_FALSE(FaultPlan::parse_spec("switchfail:p=1,from=inf").has_value());
  EXPECT_FALSE(FaultPlan::parse_spec("vmdown:vm=0,from=0,until=-inf").has_value());
  EXPECT_FALSE(FaultPlan::parse_spec("failslow:host=0,factor=nan").has_value());
}

TEST(FaultPlanParse, SecondsBeyondTimeRangeRejected) {
  // int64 nanoseconds overflow past ~9.22e9 seconds.
  EXPECT_TRUE(FaultPlan::parse_spec("switchfail:p=1,from=9e9").has_value());
  EXPECT_FALSE(FaultPlan::parse_spec("switchfail:p=1,from=1e10").has_value());
  EXPECT_FALSE(FaultPlan::parse_spec("vmdown:vm=0,until=9.3e9").has_value());
}

TEST(FaultPlanParse, OverlappingLseRangesRejected) {
  std::string err;
  // Same host, intersecting LBA windows: ambiguous latent-sector state.
  EXPECT_FALSE(
      FaultPlan::parse("lse:host=0,lba=100-200\nlse:host=0,lba=150-300", &err)
          .has_value());
  EXPECT_NE(err.find("overlap"), std::string::npos) << err;
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  // host=-1 wildcards collide with every host.
  EXPECT_FALSE(
      FaultPlan::parse("lse:host=-1,lba=0-10;lse:host=3,lba=5-8", &err).has_value());
  // Different hosts or disjoint ranges are fine.
  EXPECT_TRUE(
      FaultPlan::parse("lse:host=0,lba=100-200;lse:host=1,lba=150-300").has_value());
  EXPECT_TRUE(
      FaultPlan::parse("lse:host=0,lba=100-200;lse:host=0,lba=200-300").has_value());
}

TEST(FaultPlanParse, PlanErrorsCarryLineNumbers) {
  std::string err;
  EXPECT_FALSE(FaultPlan::parse("transient:host=0,p=0.1\n\nbogus:x=1\n", &err)
                   .has_value());
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

TEST(FaultPlanParse, CrashSpecs) {
  std::string err;
  const auto v = FaultPlan::parse_spec("vmcrash:vm=3,from=5", &err);
  ASSERT_TRUE(v.has_value()) << err;
  EXPECT_EQ(v->kind, FaultKind::kVmCrash);
  EXPECT_EQ(v->vm, 3);
  EXPECT_EQ(v->from, sim::Time::from_sec(5));
  EXPECT_EQ(v->until, sim::Time::max());  // crashes are permanent

  const auto h = FaultPlan::parse_spec("hostcrash:host=1", &err);
  ASSERT_TRUE(h.has_value()) << err;
  EXPECT_EQ(h->kind, FaultKind::kHostCrash);
  EXPECT_EQ(h->host, 1);
  EXPECT_EQ(h->until, sim::Time::max());
}

TEST(FaultPlanParse, CrashUntilRejected) {
  std::string err;
  EXPECT_FALSE(FaultPlan::parse_spec("vmcrash:vm=0,until=9", &err).has_value());
  EXPECT_NE(err.find("crashes are permanent"), std::string::npos) << err;
  EXPECT_FALSE(FaultPlan::parse_spec("hostcrash:host=0,until=9", &err).has_value());
}

TEST(FaultPlanParse, CrashMissingTargetRejected) {
  std::string err;
  EXPECT_FALSE(FaultPlan::parse_spec("vmcrash:from=1", &err).has_value());
  EXPECT_NE(err.find("vmcrash requires vm="), std::string::npos) << err;
  EXPECT_FALSE(FaultPlan::parse_spec("hostcrash:from=1", &err).has_value());
  EXPECT_NE(err.find("hostcrash requires host="), std::string::npos) << err;
}

TEST(FaultPlanParse, RestartAfterCrashRejected) {
  // A vmdown's `until` orders a restart; a vmcrash at or before it makes
  // the order unfulfillable. Rejected with both lines named, either order.
  std::string err;
  EXPECT_FALSE(
      FaultPlan::parse("vmcrash:vm=3,from=2\nvmdown:vm=3,from=5,until=9\n", &err)
          .has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("killed vm3 for good"), std::string::npos) << err;
  EXPECT_FALSE(
      FaultPlan::parse("vmdown:vm=3,from=5,until=9;vmcrash:vm=3,from=2", &err)
          .has_value());
  // A crash strictly after the restart, or of a different VM, is fine.
  EXPECT_TRUE(
      FaultPlan::parse("vmdown:vm=3,from=5,until=9;vmcrash:vm=3,from=20")
          .has_value());
  EXPECT_TRUE(
      FaultPlan::parse("vmdown:vm=2,from=5,until=9;vmcrash:vm=3,from=2")
          .has_value());
  // An unbounded vmdown orders no restart, so a crash may coexist.
  EXPECT_TRUE(
      FaultPlan::parse("vmdown:vm=3,from=5;vmcrash:vm=3,from=2").has_value());
}

TEST(FaultPlanParse, CrashRoundTripsThroughToString) {
  const auto p = FaultPlan::parse("vmcrash:vm=2,from=3.5;hostcrash:host=1,from=10");
  ASSERT_TRUE(p.has_value());
  const auto q = FaultPlan::parse(p->to_string());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(p->to_string(), q->to_string());
  EXPECT_EQ(q->specs.size(), 2u);
}

TEST(FaultPlanParse, RoundTripsThroughToString) {
  const char* text =
      "transient:host=0,p=0.25,from=2;lse:host=1,lba=10-20;"
      "failslow:host=-1,factor=4;vmdown:vm=3,from=1,until=9;"
      "switchfail:p=1;switchdelay:delay=0.5";
  const auto p = FaultPlan::parse(text);
  ASSERT_TRUE(p.has_value());
  const auto q = FaultPlan::parse(p->to_string());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(p->to_string(), q->to_string());
  EXPECT_EQ(q->specs.size(), 6u);
}

}  // namespace
}  // namespace iosim::fault
