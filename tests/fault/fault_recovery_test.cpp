// End-to-end failure-recovery tests: a MapReduce job running on a faulted
// cluster must either complete with the exact fault-free output (retry,
// HDFS failover, speculation) or abort cleanly with a diagnostic when the
// data is genuinely gone. Also the determinism guard: the same seed and the
// same fault plan reproduce a byte-identical trace.
//
// The cluster seed honours IOSIM_FAULT_SEED (used by the CI fault-stress
// job to randomize while logging the seed); tests that assert specific
// fault counts use a fixed seed so they stay reproducible.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "cluster/runner.hpp"
#include "core/adaptive_controller.hpp"
#include "fault/fault_plan.hpp"
#include "trace/trace.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim {
namespace {

using cluster::ClusterConfig;
using cluster::RunResult;
using iosched::SchedulerKind;

std::uint64_t fault_seed() {
  if (const char* s = std::getenv("IOSIM_FAULT_SEED")) {
    const auto v = std::strtoull(s, nullptr, 10);
    std::fprintf(stderr, "IOSIM_FAULT_SEED=%llu\n", static_cast<unsigned long long>(v));
    return v;
  }
  return 1;
}

ClusterConfig faulted(const char* plan_text) {
  ClusterConfig cfg;
  cfg.n_hosts = 2;
  cfg.vms_per_host = 2;
  std::string err;
  auto plan = fault::FaultPlan::parse(plan_text, &err);
  EXPECT_TRUE(plan.has_value()) << err;
  cfg.faults = plan.value_or(fault::FaultPlan{});
  return cfg;
}

mapred::JobConf sort_job() {
  return workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
}

// The PR's acceptance scenario: a sort job under a transient-error burst,
// one fail-slow disk, and an always-failing elevator switch completes
// correctly — same logical output as the fault-free run — via retry and
// replica failover, while the failed switch leaves the boot pair installed.
TEST(FaultRecovery, SortSurvivesBurstFailSlowAndFailedSwitch) {
  const auto jc = sort_job();
  const RunResult clean = cluster::run_job(faulted(""), jc);
  ASSERT_FALSE(clean.failed);

  const ClusterConfig cfg = faulted(
      "transient:host=0,p=0.02,from=1,until=20;"
      "failslow:host=1,factor=3,from=5,until=40;"
      "switchfail:p=1");
  std::shared_ptr<core::AdaptiveController> ctl;
  core::PairSchedule sched;
  sched.phases = {cfg.pair, iosched::SchedulerPair{SchedulerKind::kDeadline,
                                                   SchedulerKind::kDeadline}};
  const RunResult r =
      cluster::run_job(cfg, jc, [&](cluster::Cluster& cl, mapred::Job& job) {
        ctl = core::AdaptiveController::attach(cl, job, sched, core::PhasePlan{true});
      });

  ASSERT_FALSE(r.failed) << r.failure;
  // Correctness: the faulted run produced the same logical work.
  EXPECT_EQ(r.stats.maps_total, clean.stats.maps_total);
  EXPECT_EQ(r.stats.reduces_total, clean.stats.reduces_total);
  EXPECT_EQ(r.stats.output_bytes, clean.stats.output_bytes);
  EXPECT_EQ(r.stats.shuffle_bytes, clean.stats.shuffle_bytes);
  // The recovery machinery actually fired.
  EXPECT_GT(r.stats.map_attempts_failed + r.stats.hdfs_failovers, 0);
  // Every switch command was rejected: old pair stays, retries were bounded.
  EXPECT_EQ(ctl->switches_performed(), 0);
  EXPECT_GE(ctl->switch_failures(), 1);
  // Faults cost time, never save it.
  EXPECT_GE(r.seconds, clean.seconds - 1e-9);
}

TEST(FaultRecovery, VmOutageMidJobRecovers) {
  const auto jc = sort_job();
  const RunResult clean = cluster::run_job(faulted(""), jc);
  // VM 3 dies early in the map phase and comes back a minute later (i.e.
  // for most jobs: never). Its tasks must be re-placed on survivors.
  const RunResult r =
      cluster::run_job(faulted("vmdown:vm=3,from=3,until=120"), jc);
  ASSERT_FALSE(r.failed) << r.failure;
  EXPECT_EQ(r.stats.output_bytes, clean.stats.output_bytes);
  EXPECT_EQ(r.stats.maps_total, clean.stats.maps_total);
  EXPECT_GE(r.seconds, clean.seconds - 1e-9);
}

TEST(FaultRecovery, AllReplicasDeadAbortsWithDiagnostic) {
  // 2 hosts x 2 VMs, replication 2 on distinct hosts: killing VM 0 and both
  // VMs of host 1 leaves some block with every replica on a dead VM. The
  // job must abort cleanly (no hang, no partial success) and say why.
  const RunResult r = cluster::run_job(
      faulted("vmdown:vm=0,from=0.5;vmdown:vm=2,from=0.5;vmdown:vm=3,from=0.5"),
      sort_job());
  ASSERT_TRUE(r.failed);
  EXPECT_FALSE(r.failure.empty());
  EXPECT_TRUE(r.stats.failed);
  EXPECT_GT(r.seconds, 0.0);  // aborted at a definite sim time
}

TEST(FaultRecovery, ExhaustedAttemptBudgetAborts) {
  // A latent-sector range pinned on every host makes some I/O fail no
  // matter where the task retries: the attempt budget runs out and the job
  // aborts rather than retrying forever.
  const RunResult r = cluster::run_job(
      faulted("transient:host=-1,p=0.9"), sort_job());
  ASSERT_TRUE(r.failed);
  EXPECT_FALSE(r.failure.empty());
}

TEST(FaultRecovery, SpeculationBeatsFailSlowDisk) {
  auto jc = sort_job();
  const ClusterConfig cfg = faulted("failslow:host=1,factor=8,from=0");
  const RunResult slow = cluster::run_job(cfg, jc);
  ASSERT_FALSE(slow.failed);

  jc.speculative_execution = true;
  const RunResult spec = cluster::run_job(cfg, jc);
  ASSERT_FALSE(spec.failed) << spec.failure;
  EXPECT_GT(spec.stats.maps_speculated, 0);
  EXPECT_EQ(spec.stats.output_bytes, slow.stats.output_bytes);
  // Winner-takes-first speculation must help against a straggling disk.
  EXPECT_LT(spec.seconds, slow.seconds);
}

// Satellite: determinism guard. Same seed + same fault plan => the flight
// recorder captures a byte-identical event stream (JSON and CSV exports).
TEST(FaultDeterminism, SameSeedSamePlanByteIdenticalTrace) {
  const auto jc = sort_job();
  auto trace_of = [&](std::uint64_t seed) {
    ClusterConfig cfg = faulted(
        "transient:host=0,p=0.02,from=1,until=20;"
        "failslow:host=1,factor=3,from=5,until=40;"
        "vmdown:vm=1,from=8,until=25;"
        "switchfail:p=0.5");
    cfg.seed = seed;
    trace::TraceSession session;
    const RunResult r = cluster::run_job(cfg, jc);
    (void)r;  // completion or abort both fine — the trace must replay either
    return std::pair<std::string, std::string>{session.tracer().to_json(),
                                               session.tracer().to_csv()};
  };
  const auto seed = fault_seed();
  const auto a = trace_of(seed);
  const auto b = trace_of(seed);
  EXPECT_EQ(a.first, b.first);    // byte-identical JSON
  EXPECT_EQ(a.second, b.second);  // byte-identical CSV
  const auto c = trace_of(seed + 17);
  EXPECT_NE(a.second, c.second);  // and the seed does matter
}

TEST(FaultDeterminism, FaultFreePlanMatchesNoPlanRun) {
  // An empty plan must not construct an injector, consume randomness, or
  // perturb event order: the run is bit-identical to a plain one.
  const auto jc = sort_job();
  auto trace_of = [&](bool with_empty_plan) {
    ClusterConfig cfg;
    cfg.n_hosts = 2;
    cfg.vms_per_host = 2;
    if (with_empty_plan) cfg.faults = fault::FaultPlan{};
    trace::TraceSession session;
    cluster::run_job(cfg, jc);
    return session.tracer().to_csv();
  };
  EXPECT_EQ(trace_of(true), trace_of(false));
}

TEST(FaultRecovery, FaultEventsAppearInTraceExports) {
  const auto jc = sort_job();
  ClusterConfig cfg = faulted(
      "transient:host=0,p=0.02,from=1,until=20;vmdown:vm=3,from=2,until=50");
  trace::TraceSession session;
  // Completion or abort are both acceptable here — the assertion is that
  // the fault/recovery markers survive into both exporters either way.
  const RunResult r = cluster::run_job(cfg, jc);
  (void)r;
  const std::string json = session.tracer().to_json();
  const std::string csv = session.tracer().to_csv();
  for (const char* name : {"fault on", "io error", "vm down", "vm up"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
    EXPECT_NE(csv.find(name), std::string::npos) << name;
  }
  // Retry markers ride on the mapred track.
  EXPECT_NE(csv.find("task fail"), std::string::npos);
}

}  // namespace
}  // namespace iosim
