// Unit tests of the FaultInjector's poll surfaces: service inflation,
// I/O failure decisions, VM outage windows, and switch verdicts.
#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace iosim::fault {
namespace {

using sim::Time;

FaultPlan plan_of(const char* text) {
  std::string err;
  auto p = FaultPlan::parse(text, &err);
  EXPECT_TRUE(p.has_value()) << err;
  return p.value_or(FaultPlan{});
}

TEST(FaultInjector, FailSlowInflatesInsideWindowOnly) {
  sim::Simulator simr;
  FaultInjector fi(simr, plan_of("failslow:host=1,factor=3,from=10,until=20"), 1);
  const Time svc = Time::from_ms(4);
  EXPECT_EQ(fi.inflate_service(1, svc), svc);  // t=0: window not open
  simr.at(Time::from_sec(15), [&] {
    EXPECT_EQ(fi.inflate_service(1, svc), svc * 3.0);
    EXPECT_EQ(fi.inflate_service(0, svc), svc);  // other host untouched
  });
  simr.at(Time::from_sec(25), [&] { EXPECT_EQ(fi.inflate_service(1, svc), svc); });
  simr.run();
}

TEST(FaultInjector, FailSlowSpecsCompound) {
  sim::Simulator simr;
  FaultInjector fi(simr, plan_of("failslow:host=-1,factor=2;failslow:host=0,factor=3"),
                   1);
  const Time svc = Time::from_ms(1);
  EXPECT_EQ(fi.inflate_service(0, svc), svc * 6.0);
  EXPECT_EQ(fi.inflate_service(1, svc), svc * 2.0);
}

TEST(FaultInjector, LatentSectorRangeOverlapFails) {
  sim::Simulator simr;
  FaultInjector fi(simr, plan_of("lse:host=0,lba=1000-2000"), 1);
  EXPECT_TRUE(fi.io_should_fail(0, 1500, 8));    // inside
  EXPECT_TRUE(fi.io_should_fail(0, 990, 20));    // straddles the start
  EXPECT_TRUE(fi.io_should_fail(0, 1990, 100));  // straddles the end
  EXPECT_FALSE(fi.io_should_fail(0, 2000, 64));  // end is exclusive
  EXPECT_FALSE(fi.io_should_fail(0, 0, 1000));   // ends exactly at begin
  EXPECT_FALSE(fi.io_should_fail(1, 1500, 8));   // other host
  EXPECT_EQ(fi.counters().lse_hits, 3u);
}

TEST(FaultInjector, TransientProbabilityZeroAndOne) {
  sim::Simulator simr;
  FaultInjector always(simr, plan_of("transient:host=-1,p=1"), 1);
  FaultInjector never(simr, plan_of("transient:host=-1,p=0"), 1);
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(always.io_should_fail(0, i * 64, 64));
    EXPECT_FALSE(never.io_should_fail(0, i * 64, 64));
  }
  EXPECT_EQ(always.counters().io_errors, 32u);
  EXPECT_EQ(never.counters().io_errors, 0u);
}

TEST(FaultInjector, TransientDrawsAreSeedDeterministic) {
  auto decisions = [](std::uint64_t seed) {
    sim::Simulator simr;
    FaultInjector fi(simr, plan_of("transient:host=-1,p=0.3"), seed);
    std::vector<bool> out;
    for (int i = 0; i < 200; ++i) out.push_back(fi.io_should_fail(0, i, 1));
    return out;
  };
  EXPECT_EQ(decisions(42), decisions(42));
  EXPECT_NE(decisions(42), decisions(43));
}

TEST(FaultInjector, VmOutageWindowAndCallbacks) {
  sim::Simulator simr;
  FaultInjector fi(simr, plan_of("vmdown:vm=3,from=5,until=9"), 1);
  std::vector<std::pair<int, double>> downs, ups;
  fi.on_vm_down([&](int vm, Time t) { downs.push_back({vm, t.sec()}); });
  fi.on_vm_up([&](int vm, Time t) { ups.push_back({vm, t.sec()}); });
  EXPECT_FALSE(fi.vm_down(3));
  simr.at(Time::from_sec(7), [&] {
    EXPECT_TRUE(fi.vm_down(3));
    EXPECT_FALSE(fi.vm_down(2));
  });
  simr.run();
  ASSERT_EQ(downs.size(), 1u);
  ASSERT_EQ(ups.size(), 1u);
  EXPECT_EQ(downs[0], (std::pair<int, double>{3, 5.0}));
  EXPECT_EQ(ups[0], (std::pair<int, double>{3, 9.0}));
  EXPECT_FALSE(fi.vm_down(3));  // restarted
}

TEST(FaultInjector, SwitchFailVerdictInsideWindow) {
  sim::Simulator simr;
  FaultInjector fi(simr, plan_of("switchfail:p=1,from=0,until=10"), 1);
  EXPECT_FALSE(fi.switch_command().ok);
  simr.at(Time::from_sec(11), [&] { EXPECT_TRUE(fi.switch_command().ok); });
  simr.run();
  EXPECT_EQ(fi.counters().switch_failures, 1u);
}

TEST(FaultInjector, SwitchDelayVerdictAccumulates) {
  sim::Simulator simr;
  FaultInjector fi(simr, plan_of("switchdelay:delay=2;switchdelay:delay=0.5"), 1);
  const auto v = fi.switch_command();
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.delay, Time::from_ms(2500));
  EXPECT_EQ(fi.counters().switches_delayed, 1u);
}

TEST(FaultInjector, EmptyPlanIsInert) {
  sim::Simulator simr;
  FaultInjector fi(simr, FaultPlan{}, 1);
  EXPECT_FALSE(fi.enabled());
  EXPECT_FALSE(fi.io_should_fail(0, 0, 64));
  EXPECT_EQ(fi.inflate_service(0, Time::from_ms(1)), Time::from_ms(1));
  EXPECT_TRUE(fi.switch_command().ok);
  EXPECT_FALSE(fi.vm_down(0));
}

}  // namespace
}  // namespace iosim::fault
