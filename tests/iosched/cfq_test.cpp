#include "iosched/cfq.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "sched_test_util.hpp"

namespace iosim::iosched {
namespace {

using namespace iosim::sim::literals;
using test::RequestFactory;

CfqTunables tun() { return CfqTunables{}; }

TEST(Cfq, SingleQueueLbaOrder) {
  CfqScheduler s(tun());
  RequestFactory f;
  Request* b = f.read(2000, 1);
  Request* a = f.read(1000, 1);
  s.add(b, 0_ms);
  s.add(a, 0_ms);
  EXPECT_EQ(s.dispatch(0_ms), a);
  EXPECT_EQ(s.dispatch(0_ms), b);
}

TEST(Cfq, PerContextSyncQueues) {
  CfqScheduler s(tun());
  RequestFactory f;
  s.add(f.read(1, 1), 0_ms);
  s.add(f.read(2, 2), 0_ms);
  s.add(f.read(3, 3), 0_ms);
  EXPECT_EQ(s.sync_queue_count(), 3u);
}

TEST(Cfq, AsyncSharedAcrossContexts) {
  CfqScheduler s(tun());
  RequestFactory f;
  s.add(f.write(1, 1), 0_ms);
  s.add(f.write(2, 2), 0_ms);
  EXPECT_EQ(s.sync_queue_count(), 0u);
  EXPECT_EQ(s.size(), 2u);
}

TEST(Cfq, ActiveQueueServedExclusivelyWithinSlice) {
  CfqScheduler s(tun());
  RequestFactory f;
  Request* a1 = f.read(1000, 1);
  Request* a2 = f.read(1008, 1);
  Request* b1 = f.read(500000, 2);
  s.add(a1, 0_ms);
  s.add(b1, 0_ms);
  s.add(a2, 0_ms);
  // ctx 1 was enqueued first: its queue is activated and both its requests
  // go out before ctx 2 gets a turn.
  EXPECT_EQ(s.dispatch(0_ms), a1);
  EXPECT_EQ(s.dispatch(1_ms), a2);
  // ctx 1's queue is now dry: CFQ holds its idle window open before it
  // yields the disk to ctx 2.
  EXPECT_EQ(s.dispatch(2_ms), nullptr);
  const auto w = s.wakeup(2_ms);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(s.dispatch(*w), b1);
}

TEST(Cfq, SliceExpiryRotatesQueues) {
  CfqTunables t;
  t.slice_sync = 10_ms;
  CfqScheduler s(t);
  RequestFactory f;
  Request* a1 = f.read(1000, 1);
  Request* a2 = f.read(1008, 1);
  Request* b1 = f.read(500000, 2);
  s.add(a1, 0_ms);
  s.add(b1, 0_ms);
  s.add(a2, 0_ms);
  EXPECT_EQ(s.dispatch(0_ms), a1);
  // Past the slice end, ctx 1 must yield even though it has work.
  EXPECT_EQ(s.dispatch(20_ms), b1);
  // ctx 2's queue is dry: ride out its idle window, then ctx 1 resumes.
  sim::Time now = 21_ms;
  Request* got = s.dispatch(now);
  if (got == nullptr) {
    const auto w = s.wakeup(now);
    ASSERT_TRUE(w.has_value());
    got = s.dispatch(*w);
  }
  EXPECT_EQ(got, a2);
}

TEST(Cfq, IdlesForEmptyActiveSyncQueue) {
  CfqScheduler s(tun());
  RequestFactory f;
  Request* a1 = f.read(1000, 1);
  s.add(a1, 0_ms);
  Request* b1 = f.read(500000, 2);
  s.add(b1, 0_ms);
  EXPECT_EQ(s.dispatch(0_ms), a1);
  s.on_complete(*a1, 1_ms);
  // ctx 1's queue is empty but its slice lives: CFQ idles briefly rather
  // than seeking to ctx 2.
  EXPECT_EQ(s.dispatch(1_ms), nullptr);
  const auto w = s.wakeup(1_ms);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, 1_ms + tun().slice_idle);
  // The owner returns within the window: served immediately.
  Request* a2 = f.read(1008, 1);
  s.add(a2, 3_ms);
  EXPECT_EQ(s.dispatch(3_ms), a2);
}

TEST(Cfq, IdleWindowExpiryMovesOn) {
  CfqScheduler s(tun());
  RequestFactory f;
  Request* a1 = f.read(1000, 1);
  s.add(a1, 0_ms);
  Request* b1 = f.read(500000, 2);
  s.add(b1, 0_ms);
  EXPECT_EQ(s.dispatch(0_ms), a1);
  s.on_complete(*a1, 1_ms);
  EXPECT_EQ(s.dispatch(1_ms), nullptr);
  const sim::Time deadline = *s.wakeup(1_ms);
  EXPECT_EQ(s.dispatch(deadline), b1);
}

TEST(Cfq, ThinkyOwnerGetsNoIdle) {
  CfqTunables t;
  CfqScheduler s(t);
  RequestFactory f;
  sim::Time now = 0_ms;
  // Train both contexts' think times to be long (100 ms between requests);
  // a fresh context would legitimately get an optimistic idle window.
  for (int i = 0; i < 8; ++i) {
    Request* r = f.read(1000 + i * 8, 1 + static_cast<std::uint64_t>(i % 2));
    s.add(r, now);
    Request* got = s.dispatch(now);
    if (got == nullptr) {
      now = *s.wakeup(now);
      got = s.dispatch(now);
    }
    ASSERT_NE(got, nullptr);
    now += 1_ms;
    s.on_complete(*got, now);
    now += 100_ms;
  }
  // Now with ctx 2 waiting, an empty ctx-1 queue should NOT idle: both
  // requests must come out back-to-back with no idle window in between
  // (activation order between the two queues is unspecified).
  Request* r1 = f.read(2000, 1);
  s.add(r1, now);
  Request* b = f.read(500000, 2);
  s.add(b, now);
  int idles = 0;
  std::vector<Request*> got;
  while (got.size() < 2) {
    Request* rq = s.dispatch(now);
    if (rq == nullptr) {
      ++idles;
      const auto w = s.wakeup(now);
      ASSERT_TRUE(w.has_value());
      now = *w;
      continue;
    }
    got.push_back(rq);
    now += 1_ms;
    s.on_complete(*rq, now);
  }
  EXPECT_EQ(idles, 0) << "idled for a context whose think time exceeds the window";
}

TEST(Cfq, AsyncQuantumBoundsWriteRun) {
  CfqTunables t;
  t.async_quantum = 4;
  t.slice_async = 1_sec;  // quantum, not time, must bound the run
  CfqScheduler s(t);
  RequestFactory f;
  for (int i = 0; i < 10; ++i) s.add(f.write(i * 100, 1), 0_ms);
  Request* r = f.read(500000, 2);
  s.add(r, 0_ms);
  // Async queue activated first (enqueued first); after 4 writes the sync
  // queue must get its turn.
  int writes_before_read = 0;
  for (int i = 0; i < 11; ++i) {
    Request* got = s.dispatch(sim::Time::from_ms(i));
    ASSERT_NE(got, nullptr);
    if (got == r) break;
    ++writes_before_read;
  }
  EXPECT_EQ(writes_before_read, 4);
}

TEST(Cfq, FairnessAcrossContexts) {
  CfqTunables t;
  t.slice_sync = 5_ms;
  CfqScheduler s(t);
  RequestFactory f;
  // Two contexts with plenty of queued work: dispatch time should split
  // roughly evenly (each request "takes" 1 ms in the drain helper).
  std::map<std::uint64_t, int> served;
  for (int i = 0; i < 40; ++i) {
    s.add(f.read(1000 + i * 8, 1), 0_ms);
    s.add(f.read(900000 + i * 8, 2), 0_ms);
  }
  sim::Time now = 0_ms;
  for (int i = 0; i < 40; ++i) {
    Request* rq = s.dispatch(now);
    ASSERT_NE(rq, nullptr);
    ++served[rq->ctx];
    now += 1_ms;
    s.on_complete(*rq, now);
  }
  EXPECT_NEAR(served[1], served[2], 6);
}

TEST(Cfq, AllRequestsEventuallyDispatched) {
  CfqScheduler s(tun());
  RequestFactory f;
  std::vector<Request*> rqs;
  for (int i = 0; i < 120; ++i) {
    rqs.push_back(i % 3 == 0 ? f.write(i * 101 % 6000, static_cast<std::uint64_t>(i % 5))
                             : f.read(i * 67 % 6000, static_cast<std::uint64_t>(i % 5)));
    s.add(rqs.back(), sim::Time::from_ms(i / 2));
  }
  auto out = test::drain_dispatch(s, 100_ms);
  EXPECT_EQ(out.size(), rqs.size());
  std::sort(out.begin(), out.end());
  std::sort(rqs.begin(), rqs.end());
  EXPECT_EQ(out, rqs);
}

TEST(Cfq, DrainReturnsEverything) {
  CfqScheduler s(tun());
  RequestFactory f;
  std::vector<Request*> rqs;
  for (int i = 0; i < 6; ++i) {
    rqs.push_back(i % 2 ? f.read(i * 10, static_cast<std::uint64_t>(i)) : f.write(i * 10, 1));
    s.add(rqs.back(), 0_ms);
  }
  auto drained = s.drain();
  EXPECT_TRUE(s.empty());
  std::sort(drained.begin(), drained.end());
  std::sort(rqs.begin(), rqs.end());
  EXPECT_EQ(drained, rqs);
  EXPECT_EQ(s.dispatch(0_ms), nullptr);
}

TEST(Cfq, KindIsCfq) {
  CfqScheduler s(tun());
  EXPECT_EQ(s.kind(), SchedulerKind::kCfq);
}

}  // namespace
}  // namespace iosim::iosched
