#include "iosched/anticipatory.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sched_test_util.hpp"

namespace iosim::iosched {
namespace {

using namespace iosim::sim::literals;
using test::RequestFactory;

AnticipatoryTunables tun() { return AnticipatoryTunables{}; }

TEST(Anticipatory, BasicElevatorOrder) {
  AnticipatoryScheduler s(tun());
  RequestFactory f;
  Request* b = f.read(2000);
  Request* a = f.read(1000);
  s.add(b, 0_ms);
  s.add(a, 0_ms);
  EXPECT_EQ(s.dispatch(0_ms), a);
  EXPECT_EQ(s.dispatch(0_ms), b);
}

TEST(Anticipatory, AnticipatesAfterSyncReadWhenCandidateIsForeign) {
  AnticipatoryScheduler s(tun());
  RequestFactory f;
  // ctx 1 reads at low LBAs; ctx 2 far away.
  Request* r1 = f.read(1000, 1);
  s.add(r1, 0_ms);
  EXPECT_EQ(s.dispatch(0_ms), r1);
  s.on_complete(*r1, 1_ms);  // arms anticipation for ctx 1

  Request* foreign = f.read(900000, 2);
  s.add(foreign, 1_ms);
  // Dispatch should idle instead of seeking away.
  EXPECT_EQ(s.dispatch(1_ms), nullptr);
  EXPECT_TRUE(s.anticipating());
  const auto w = s.wakeup(1_ms);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, 1_ms + tun().antic_expire);
}

TEST(Anticipatory, AnticipationHitServesReturningContext) {
  AnticipatoryScheduler s(tun());
  RequestFactory f;
  Request* r1 = f.read(1000, 1);
  s.add(r1, 0_ms);
  (void)s.dispatch(0_ms);
  s.on_complete(*r1, 1_ms);
  s.add(f.read(900000, 2), 1_ms);
  EXPECT_EQ(s.dispatch(1_ms), nullptr);  // anticipating
  Request* r2 = f.read(1008, 1);         // ctx 1 comes back nearby
  s.add(r2, 3_ms);
  EXPECT_EQ(s.dispatch(3_ms), r2);
  EXPECT_FALSE(s.anticipating());
}

TEST(Anticipatory, AnticipationTimeoutFallsThrough) {
  AnticipatoryScheduler s(tun());
  RequestFactory f;
  Request* r1 = f.read(1000, 1);
  s.add(r1, 0_ms);
  (void)s.dispatch(0_ms);
  s.on_complete(*r1, 1_ms);
  Request* foreign = f.read(900000, 2);
  s.add(foreign, 1_ms);
  EXPECT_EQ(s.dispatch(1_ms), nullptr);
  const sim::Time deadline = *s.wakeup(1_ms);
  EXPECT_EQ(s.dispatch(deadline), foreign);  // timed out: serve the other ctx
}

TEST(Anticipatory, CloseCandidateDispatchedWithoutWaiting) {
  AnticipatoryScheduler s(tun());
  RequestFactory f;
  Request* r1 = f.read(1000, 1);
  s.add(r1, 0_ms);
  (void)s.dispatch(0_ms);
  s.on_complete(*r1, 1_ms);
  // Foreign but within the close window of the head (1008).
  Request* near_foreign = f.read(1100, 2);
  s.add(near_foreign, 1_ms);
  EXPECT_EQ(s.dispatch(1_ms), near_foreign);
  EXPECT_FALSE(s.anticipating());
}

TEST(Anticipatory, ThinkyContextStopsBeingAnticipated) {
  AnticipatoryTunables t;
  AnticipatoryScheduler s(t);
  RequestFactory f;
  sim::Time now = 0_ms;
  // ctx 1 repeatedly takes far longer than the window to come back; after a
  // few rounds the scheduler should stop waiting for it.
  bool anticipated_last_round = true;
  for (int round = 0; round < 6; ++round) {
    Request* r = f.read(1000 + round * 8, 1);
    s.add(r, now);
    Request* got = s.dispatch(now);
    if (got == nullptr) {
      now = *s.wakeup(now);
      got = s.dispatch(now);
    }
    ASSERT_NE(got, nullptr);
    now += 1_ms;
    s.on_complete(*got, now);
    // Foreign candidate appears; does AS wait?
    Request* foreign = f.read(900000 + round * 8, 2);
    s.add(foreign, now);
    Request* next = s.dispatch(now);
    anticipated_last_round = (next == nullptr);
    if (next == nullptr) {
      now = *s.wakeup(now);       // wait out the window
      next = s.dispatch(now);     // then the foreign one is served
    }
    ASSERT_EQ(next, foreign);
    now += 1_ms;
    s.on_complete(*next, now);
    now += 100_ms;  // ctx 1 "thinks" for 100 ms every time
  }
  EXPECT_FALSE(anticipated_last_round);
}

TEST(Anticipatory, WritesDoNotArmAnticipation) {
  AnticipatoryScheduler s(tun());
  RequestFactory f;
  Request* w = f.write(1000, 1);
  s.add(w, 0_ms);
  EXPECT_EQ(s.dispatch(0_ms), w);
  s.on_complete(*w, 1_ms);
  Request* foreign = f.read(900000, 2);
  s.add(foreign, 1_ms);
  EXPECT_EQ(s.dispatch(1_ms), foreign);  // no wait after a write
}

TEST(Anticipatory, ExpiredReadJumpsToFifoHead) {
  AnticipatoryTunables t;
  t.read_expire = 10_ms;
  AnticipatoryScheduler s(t);
  RequestFactory f;
  Request* old_far = f.read(900000, 1);
  s.add(old_far, 0_ms);
  Request* fresh_near = f.read(10, 1);
  s.add(fresh_near, 50_ms);
  EXPECT_EQ(s.dispatch(50_ms), old_far);
}

TEST(Anticipatory, WriteBatchRunsWhenNoReads) {
  AnticipatoryScheduler s(tun());
  RequestFactory f;
  for (int i = 0; i < 5; ++i) s.add(f.write(i * 1000, 1), 0_ms);
  const auto out = test::drain_dispatch(s, 0_ms);
  EXPECT_EQ(out.size(), 5u);
}

TEST(Anticipatory, AllRequestsEventuallyDispatched) {
  AnticipatoryScheduler s(tun());
  RequestFactory f;
  std::vector<Request*> rqs;
  for (int i = 0; i < 150; ++i) {
    rqs.push_back(i % 4 == 0 ? f.write(i * 131 % 7000, static_cast<std::uint64_t>(i % 3))
                             : f.read(i * 71 % 7000, static_cast<std::uint64_t>(i % 3)));
    s.add(rqs.back(), sim::Time::from_ms(i / 3));
  }
  auto out = test::drain_dispatch(s, 100_ms);
  EXPECT_EQ(out.size(), rqs.size());
  std::sort(out.begin(), out.end());
  std::sort(rqs.begin(), rqs.end());
  EXPECT_EQ(out, rqs);
}

TEST(Anticipatory, DrainClearsAnticipationState) {
  AnticipatoryScheduler s(tun());
  RequestFactory f;
  Request* r1 = f.read(1000, 1);
  s.add(r1, 0_ms);
  (void)s.dispatch(0_ms);
  s.on_complete(*r1, 1_ms);
  Request* foreign = f.read(900000, 2);
  s.add(foreign, 1_ms);
  EXPECT_EQ(s.dispatch(1_ms), nullptr);  // anticipating
  const auto drained = s.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0], foreign);
  EXPECT_FALSE(s.anticipating());
  EXPECT_TRUE(s.empty());
}

TEST(Anticipatory, KindIsAnticipatory) {
  AnticipatoryScheduler s(tun());
  EXPECT_EQ(s.kind(), SchedulerKind::kAnticipatory);
}

}  // namespace
}  // namespace iosim::iosched
