// Shared helpers for driving IoScheduler implementations directly in tests.
#pragma once

#include <memory>
#include <vector>

#include "iosched/scheduler.hpp"

namespace iosim::iosched::test {

/// Owns requests handed to a scheduler under test.
class RequestFactory {
 public:
  Request* make(Lba lba, std::int64_t sectors, Dir dir, bool sync,
                std::uint64_t ctx) {
    auto rq = std::make_unique<Request>();
    rq->id = next_id_++;
    rq->lba = lba;
    rq->sectors = sectors;
    rq->dir = dir;
    rq->sync = sync;
    rq->ctx = ctx;
    owned_.push_back(std::move(rq));
    return owned_.back().get();
  }

  Request* read(Lba lba, std::uint64_t ctx = 1, std::int64_t sectors = 8) {
    return make(lba, sectors, Dir::kRead, true, ctx);
  }
  Request* write(Lba lba, std::uint64_t ctx = 1, std::int64_t sectors = 8) {
    return make(lba, sectors, Dir::kWrite, false, ctx);
  }

 private:
  std::uint64_t next_id_ = 1;
  std::vector<std::unique_ptr<Request>> owned_;
};

/// Drain everything dispatchable at `now`, advancing a fake per-request
/// service time; reports the dispatch order. Honours idling via wakeup().
inline std::vector<Request*> drain_dispatch(IoScheduler& s, sim::Time now,
                                            sim::Time per_request = sim::Time::from_ms(1),
                                            int limit = 10000) {
  std::vector<Request*> out;
  while (static_cast<int>(out.size()) < limit) {
    Request* rq = s.dispatch(now);
    if (rq == nullptr) {
      if (s.empty()) break;
      const auto w = s.wakeup(now);
      if (!w.has_value()) break;  // contract violation surfaced to the test
      now = *w;
      continue;
    }
    out.push_back(rq);
    now += per_request;
    s.on_complete(*rq, now);
  }
  return out;
}

}  // namespace iosim::iosched::test
