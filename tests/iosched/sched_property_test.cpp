// Property tests that every discipline must satisfy, run over all four
// kinds and several synthetic workload shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "iosched/pair.hpp"
#include "iosched/scheduler.hpp"
#include "sched_test_util.hpp"
#include "sim/random.hpp"

namespace iosim::iosched {
namespace {

using namespace iosim::sim::literals;
using test::RequestFactory;

struct Workload {
  const char* name;
  int n;
  int contexts;
  double write_frac;
  Lba span;
};

const Workload kWorkloads[] = {
    {"seq-reader", 100, 1, 0.0, 1 << 10},
    {"multi-stream", 200, 4, 0.0, 1 << 24},
    {"write-heavy", 200, 4, 0.9, 1 << 24},
    {"mixed", 300, 8, 0.5, 1 << 26},
    {"single-shot", 1, 1, 0.0, 1},
};

class SchedProperty
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, int>> {
 protected:
  SchedulerKind kind() const { return std::get<0>(GetParam()); }
  const Workload& wl() const { return kWorkloads[std::get<1>(GetParam())]; }
};

TEST_P(SchedProperty, EveryRequestDispatchedExactlyOnce) {
  auto s = make_scheduler(kind());
  RequestFactory f;
  sim::Rng rng(1234);
  std::vector<Request*> rqs;
  sim::Time now = 0_ms;
  for (int i = 0; i < wl().n; ++i) {
    const bool write = rng.uniform() < wl().write_frac;
    const Lba lba = static_cast<Lba>(rng.below(static_cast<std::uint64_t>(wl().span)));
    const auto ctx = rng.below(static_cast<std::uint64_t>(wl().contexts));
    Request* rq = write ? f.write(lba, ctx) : f.read(lba, ctx);
    rqs.push_back(rq);
    s->add(rq, now);
    now += sim::Time::from_us(200);
  }
  auto out = test::drain_dispatch(*s, now);
  EXPECT_EQ(out.size(), rqs.size());
  const std::set<Request*> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), out.size()) << "a request was dispatched twice";
  std::sort(out.begin(), out.end());
  std::sort(rqs.begin(), rqs.end());
  EXPECT_EQ(out, rqs);
  EXPECT_TRUE(s->empty());
  EXPECT_EQ(s->size(), 0u);
}

TEST_P(SchedProperty, NullDispatchImpliesWakeupOrEmpty) {
  auto s = make_scheduler(kind());
  RequestFactory f;
  sim::Rng rng(99);
  sim::Time now = 0_ms;
  for (int i = 0; i < wl().n; ++i) {
    const bool write = rng.uniform() < wl().write_frac;
    const Lba lba = static_cast<Lba>(rng.below(static_cast<std::uint64_t>(wl().span)));
    const auto ctx = rng.below(static_cast<std::uint64_t>(wl().contexts));
    s->add(write ? f.write(lba, ctx) : f.read(lba, ctx), now);
    // The core liveness contract the BlockLayer depends on.
    int dispatched = 0;
    while (dispatched < 2) {  // pull a couple per add
      Request* rq = s->dispatch(now);
      if (rq == nullptr) {
        if (!s->empty()) {
          const auto w = s->wakeup(now);
          ASSERT_TRUE(w.has_value())
              << "non-empty scheduler idled without a wakeup time";
          ASSERT_GE(*w, now);
          now = *w;
          continue;
        }
        break;
      }
      now += sim::Time::from_us(500);
      s->on_complete(*rq, now);
      ++dispatched;
    }
  }
}

TEST_P(SchedProperty, DrainMatchesSizeAndEmpties) {
  auto s = make_scheduler(kind());
  RequestFactory f;
  sim::Rng rng(7);
  for (int i = 0; i < wl().n; ++i) {
    const bool write = rng.uniform() < wl().write_frac;
    const Lba lba = static_cast<Lba>(rng.below(static_cast<std::uint64_t>(wl().span)));
    s->add(write ? f.write(lba, 1) : f.read(lba, 1), 0_ms);
  }
  const std::size_t size_before = s->size();
  const auto drained = s->drain();
  EXPECT_EQ(drained.size(), size_before);
  EXPECT_TRUE(s->empty());
  // The drained requests can be re-added and all dispatched (the elevator
  // switch path).
  auto s2 = make_scheduler(kind());
  for (Request* rq : drained) s2->add(rq, 0_ms);
  EXPECT_EQ(test::drain_dispatch(*s2, 0_ms).size(), drained.size());
}

TEST_P(SchedProperty, DispatchAfterPartialDrainIsClean) {
  auto s = make_scheduler(kind());
  RequestFactory f;
  for (int i = 0; i < 10; ++i) s->add(f.read(i * 100, 1), 0_ms);
  for (int i = 0; i < 5; ++i) {
    Request* rq = s->dispatch(0_ms);
    ASSERT_NE(rq, nullptr);
    s->on_complete(*rq, sim::Time::from_ms(i));
  }
  const auto drained = s->drain();
  EXPECT_EQ(drained.size(), 5u);
  EXPECT_TRUE(s->empty());
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<SchedulerKind, int>>& info) {
  return std::string(to_string(std::get<0>(info.param))) + "_" +
         kWorkloads[std::get<1>(info.param)].name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllWorkloads, SchedProperty,
    ::testing::Combine(::testing::Values(SchedulerKind::kNoop, SchedulerKind::kDeadline,
                                         SchedulerKind::kAnticipatory, SchedulerKind::kCfq),
                       ::testing::Range(0, static_cast<int>(std::size(kWorkloads)))),
    [](const auto& pinfo) {
      std::string n = param_name(pinfo);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Factory, MakesEveryKind) {
  for (SchedulerKind k : kAllSchedulerKinds) {
    auto s = make_scheduler(k);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind(), k);
  }
}

TEST(Factory, NamesRoundTrip) {
  for (SchedulerKind k : kAllSchedulerKinds) {
    const auto parsed = scheduler_from_string(to_string(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_EQ(scheduler_from_string("AS"), SchedulerKind::kAnticipatory);
  EXPECT_EQ(scheduler_from_string("NOOP"), SchedulerKind::kNoop);
  EXPECT_FALSE(scheduler_from_string("bfq").has_value());
}

TEST(Pair, IndexRoundTrip) {
  for (int i = 0; i < kNumSchedulerPairs; ++i) {
    const SchedulerPair p = SchedulerPair::from_index(i);
    EXPECT_EQ(p.index(), i);
  }
}

TEST(Pair, AllPairsUnique) {
  const auto pairs = all_scheduler_pairs();
  std::set<int> idx;
  for (const auto& p : pairs) idx.insert(p.index());
  EXPECT_EQ(idx.size(), static_cast<std::size_t>(kNumSchedulerPairs));
}

TEST(Pair, StringFormats) {
  const SchedulerPair p{SchedulerKind::kAnticipatory, SchedulerKind::kDeadline};
  EXPECT_EQ(p.to_string(), "(anticipatory, deadline)");
  EXPECT_EQ(p.letters(), "ad");
  EXPECT_EQ(kDefaultPair.letters(), "cc");
}

}  // namespace
}  // namespace iosim::iosched
