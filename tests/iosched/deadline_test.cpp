#include "iosched/deadline.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sched_test_util.hpp"

namespace iosim::iosched {
namespace {

using namespace iosim::sim::literals;
using test::RequestFactory;

DeadlineScheduler make(DeadlineTunables t = {}) { return DeadlineScheduler(t); }

TEST(Deadline, DispatchesInLbaOrderWithinBatch) {
  auto s = make();
  RequestFactory f;
  Request* c = f.read(3000);
  Request* a = f.read(1000);
  Request* b = f.read(2000);
  s.add(c, 0_ms);
  s.add(a, 0_ms);
  s.add(b, 0_ms);
  EXPECT_EQ(s.dispatch(0_ms), a);
  EXPECT_EQ(s.dispatch(0_ms), b);
  EXPECT_EQ(s.dispatch(0_ms), c);
}

TEST(Deadline, PrefersReadsOverWrites) {
  auto s = make();
  RequestFactory f;
  Request* w = f.write(100);
  Request* r = f.read(200);
  s.add(w, 0_ms);
  s.add(r, 0_ms);
  EXPECT_EQ(s.dispatch(0_ms), r);
}

TEST(Deadline, WritesNotStarvedForever) {
  DeadlineTunables t;
  t.fifo_batch = 2;
  t.writes_starved = 2;
  auto s = make(t);
  RequestFactory f;
  // Keep a write pending while feeding reads; after `writes_starved` read
  // batches the write must be serviced.
  Request* w = f.write(1);
  s.add(w, 0_ms);
  std::vector<Request*> dispatched;
  int write_pos = -1;
  for (int i = 0; i < 20; ++i) {
    s.add(f.read(1000 + i * 10), 0_ms);
  }
  for (int i = 0; i < 21; ++i) {
    Request* rq = s.dispatch(0_ms);
    ASSERT_NE(rq, nullptr);
    if (rq == w) {
      write_pos = i;
      break;
    }
  }
  ASSERT_GE(write_pos, 0) << "write was starved";
  // 2 read batches of 2 may precede it.
  EXPECT_LE(write_pos, 2 * t.fifo_batch + 1);
}

TEST(Deadline, ExpiredReadJumpsToFifoHead) {
  DeadlineTunables t;
  t.read_expire = 10_ms;
  t.fifo_batch = 1;  // re-examine deadlines every dispatch
  auto s = make(t);
  RequestFactory f;
  Request* old_far = f.read(900000);
  s.add(old_far, 0_ms);
  Request* fresh_near = f.read(10);
  s.add(fresh_near, 50_ms);  // far younger
  // At t=50ms the old request is expired: it must be served first even
  // though the elevator would prefer the low-LBA one.
  EXPECT_EQ(s.dispatch(50_ms), old_far);
  EXPECT_EQ(s.dispatch(50_ms), fresh_near);
}

TEST(Deadline, NoExpiryKeepsElevatorOrder) {
  DeadlineTunables t;
  t.fifo_batch = 1;
  auto s = make(t);
  RequestFactory f;
  Request* far = f.read(900000);
  Request* near = f.read(10);
  s.add(far, 0_ms);
  s.add(near, 1_ms);
  // Nothing expired at t=2ms: scan from position 0 picks the near one.
  EXPECT_EQ(s.dispatch(2_ms), near);
}

TEST(Deadline, BatchContinuesPastNewArrivals) {
  auto s = make();
  RequestFactory f;
  s.add(f.read(1000), 0_ms);
  Request* first = s.dispatch(0_ms);
  EXPECT_EQ(first->lba, 1000);
  // A request behind the scan position queues; one ahead continues batch.
  Request* behind = f.read(500);
  Request* ahead = f.read(1500);
  s.add(behind, 0_ms);
  s.add(ahead, 0_ms);
  EXPECT_EQ(s.dispatch(0_ms), ahead);  // one-way scan
  EXPECT_EQ(s.dispatch(0_ms), behind); // wraps after the end
}

TEST(Deadline, NeverIdles) {
  auto s = make();
  RequestFactory f;
  s.add(f.read(1), 0_ms);
  EXPECT_EQ(s.wakeup(0_ms), std::nullopt);
}

TEST(Deadline, DrainReturnsAllQueued) {
  auto s = make();
  RequestFactory f;
  std::vector<Request*> rqs;
  for (int i = 0; i < 5; ++i) {
    rqs.push_back(i % 2 == 0 ? f.read(i * 100) : f.write(i * 100));
    s.add(rqs.back(), 0_ms);
  }
  auto drained = s.drain();
  EXPECT_TRUE(s.empty());
  std::sort(drained.begin(), drained.end());
  std::sort(rqs.begin(), rqs.end());
  EXPECT_EQ(drained, rqs);
}

TEST(Deadline, SizeTracksAddAndDispatch) {
  auto s = make();
  RequestFactory f;
  s.add(f.read(1), 0_ms);
  s.add(f.write(2), 0_ms);
  EXPECT_EQ(s.size(), 2u);
  (void)s.dispatch(0_ms);
  EXPECT_EQ(s.size(), 1u);
  (void)s.dispatch(0_ms);
  EXPECT_TRUE(s.empty());
}

TEST(Deadline, AllRequestsEventuallyDispatched) {
  auto s = make();
  RequestFactory f;
  std::vector<Request*> rqs;
  for (int i = 0; i < 200; ++i) {
    rqs.push_back(i % 3 == 0 ? f.write(i * 37 % 5000, static_cast<std::uint64_t>(i % 4))
                             : f.read(i * 53 % 9000, static_cast<std::uint64_t>(i % 4)));
    s.add(rqs.back(), sim::Time::from_ms(i));
  }
  auto out = test::drain_dispatch(s, 200_ms);
  EXPECT_EQ(out.size(), rqs.size());
  std::sort(out.begin(), out.end());
  std::sort(rqs.begin(), rqs.end());
  EXPECT_EQ(out, rqs);
}

TEST(Deadline, WriteOnlyWorkloadServed) {
  auto s = make();
  RequestFactory f;
  for (int i = 0; i < 10; ++i) s.add(f.write(i * 1000), 0_ms);
  const auto out = test::drain_dispatch(s, 0_ms);
  EXPECT_EQ(out.size(), 10u);
}

class DeadlineBatchSweep : public ::testing::TestWithParam<int> {};

TEST_P(DeadlineBatchSweep, WorkConservingForAnyBatchSize) {
  DeadlineTunables t;
  t.fifo_batch = GetParam();
  DeadlineScheduler s(t);
  RequestFactory f;
  for (int i = 0; i < 64; ++i) {
    s.add(i % 2 ? f.read(i * 11 % 997) : f.write(i * 7 % 997), 0_ms);
  }
  EXPECT_EQ(test::drain_dispatch(s, 0_ms).size(), 64u);
}

INSTANTIATE_TEST_SUITE_P(Batches, DeadlineBatchSweep, ::testing::Values(1, 2, 8, 16, 64));

}  // namespace
}  // namespace iosim::iosched
