#include "iosched/noop.hpp"

#include <gtest/gtest.h>

#include "sched_test_util.hpp"

namespace iosim::iosched {
namespace {

using namespace iosim::sim::literals;
using test::RequestFactory;

TEST(Noop, EmptyInitially) {
  NoopScheduler s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.dispatch(0_ms), nullptr);
}

TEST(Noop, FifoOrderRegardlessOfLba) {
  NoopScheduler s;
  RequestFactory f;
  Request* a = f.read(900);
  Request* b = f.read(100);
  Request* c = f.write(500);
  s.add(a, 0_ms);
  s.add(b, 0_ms);
  s.add(c, 0_ms);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.dispatch(1_ms), a);
  EXPECT_EQ(s.dispatch(1_ms), b);
  EXPECT_EQ(s.dispatch(1_ms), c);
  EXPECT_TRUE(s.empty());
}

TEST(Noop, NeverIdles) {
  NoopScheduler s;
  RequestFactory f;
  s.add(f.read(1), 0_ms);
  EXPECT_EQ(s.wakeup(0_ms), std::nullopt);
}

TEST(Noop, DrainReturnsQueuedInOrder) {
  NoopScheduler s;
  RequestFactory f;
  Request* a = f.read(1);
  Request* b = f.write(2);
  s.add(a, 0_ms);
  s.add(b, 0_ms);
  const auto drained = s.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], a);
  EXPECT_EQ(drained[1], b);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.dispatch(0_ms), nullptr);
}

TEST(Noop, KindIsNoop) {
  NoopScheduler s;
  EXPECT_EQ(s.kind(), SchedulerKind::kNoop);
}

TEST(Noop, InterleavesContextsInArrivalOrder) {
  NoopScheduler s;
  RequestFactory f;
  // Two "VMs" interleaving — noop preserves the thrash-inducing order.
  std::vector<Request*> rqs;
  for (int i = 0; i < 10; ++i) {
    rqs.push_back(f.read(i % 2 == 0 ? 1000 + i : 900000 + i,
                         static_cast<std::uint64_t>(i % 2)));
    s.add(rqs.back(), 0_ms);
  }
  const auto out = test::drain_dispatch(s, 0_ms);
  EXPECT_EQ(out, rqs);
}

}  // namespace
}  // namespace iosim::iosched
