#include "exp/executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"

namespace iosim::exp {
namespace {

std::vector<RunTask> synthetic_tasks(std::size_t n) {
  ScenarioSpec s;
  s.repeats = static_cast<int>(n);
  return build_run_matrix(s);
}

TEST(Executor, SerialRunsEverythingInOrder) {
  const auto tasks = synthetic_tasks(8);
  std::vector<std::size_t> order;
  const auto res = execute_all(tasks, [&](const RunTask& t) {
    order.push_back(t.run_index);
    RunOutput o;
    o.metrics.emplace_back("value", static_cast<double>(t.run_index));
    return o;
  });
  EXPECT_TRUE(res.all_ok());
  EXPECT_EQ(res.completed, 8u);
  EXPECT_EQ(res.failed, 0u);
  EXPECT_EQ(res.skipped, 0u);
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(res.outputs[i].has_value());
    EXPECT_DOUBLE_EQ(res.outputs[i]->metrics[0].second, static_cast<double>(i));
  }
}

TEST(Executor, ResultsIdenticalAcrossWorkerCounts) {
  const auto tasks = synthetic_tasks(16);
  const auto fn = [](const RunTask& t) {
    RunOutput o;
    o.metrics.emplace_back("seed_lo", static_cast<double>(t.seed % 1000));
    return o;
  };
  ExecutorOptions serial;
  serial.workers = 1;
  ExecutorOptions wide;
  wide.workers = 8;
  const auto a = execute_all(tasks, fn, serial);
  const auto b = execute_all(tasks, fn, wide);
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    ASSERT_TRUE(a.outputs[i].has_value());
    ASSERT_TRUE(b.outputs[i].has_value());
    EXPECT_EQ(a.outputs[i]->metrics, b.outputs[i]->metrics) << "slot " << i;
  }
}

TEST(Executor, SerialCancelsOnFirstFailure) {
  const auto tasks = synthetic_tasks(10);
  std::size_t calls = 0;
  const auto res = execute_all(tasks, [&](const RunTask& t) {
    ++calls;
    RunOutput o;
    if (t.run_index == 3) {
      o.ok = false;
      o.error = "boom";
    }
    return o;
  });
  EXPECT_FALSE(res.all_ok());
  EXPECT_TRUE(res.cancelled);
  EXPECT_EQ(calls, 4u);  // 0,1,2 ok; 3 fails; 4.. never claimed
  EXPECT_EQ(res.completed, 3u);
  EXPECT_EQ(res.failed, 1u);
  EXPECT_EQ(res.skipped, 6u);
  EXPECT_EQ(res.first_error, "boom");
  EXPECT_EQ(res.first_error_run, 3u);
  EXPECT_FALSE(res.outputs[5].has_value());
}

TEST(Executor, ParallelCancelKeepsDeterministicFirstError) {
  // Several runs fail; the reported representative must be the smallest
  // failing run_index regardless of completion interleaving.
  const auto tasks = synthetic_tasks(32);
  ExecutorOptions opts;
  opts.workers = 8;
  opts.cancel_on_failure = false;  // let every failure land
  const auto res = execute_all(
      tasks,
      [](const RunTask& t) {
        RunOutput o;
        if (t.run_index % 7 == 5) {  // fails at 5, 12, 19, 26
          o.ok = false;
          o.error = "fail@" + std::to_string(t.run_index);
        }
        return o;
      },
      opts);
  EXPECT_EQ(res.failed, 4u);
  EXPECT_EQ(res.skipped, 0u);
  EXPECT_EQ(res.first_error_run, 5u);
  EXPECT_EQ(res.first_error, "fail@5");
}

TEST(Executor, ExceptionInRunFnBecomesFailure) {
  const auto tasks = synthetic_tasks(3);
  const auto res = execute_all(tasks, [](const RunTask& t) -> RunOutput {
    if (t.run_index == 1) throw std::runtime_error("kaput");
    return {};
  });
  EXPECT_FALSE(res.all_ok());
  EXPECT_EQ(res.failed, 1u);
  ASSERT_TRUE(res.outputs[1].has_value());
  EXPECT_FALSE(res.outputs[1]->ok);
  EXPECT_NE(res.outputs[1]->error.find("kaput"), std::string::npos);
}

TEST(Executor, ProgressEventsCountEveryCompletion) {
  const auto tasks = synthetic_tasks(12);
  ExecutorOptions opts;
  opts.workers = 4;
  std::atomic<std::size_t> events{0};
  std::size_t last_done = 0;
  opts.on_progress = [&](const ProgressEvent& ev) {
    ++events;
    EXPECT_EQ(ev.total, 12u);
    EXPECT_GT(ev.done, last_done);  // delivered under the lock, monotonically
    last_done = ev.done;
    EXPECT_NE(ev.task, nullptr);
  };
  const auto res = execute_all(tasks, [](const RunTask&) { return RunOutput{}; }, opts);
  EXPECT_TRUE(res.all_ok());
  EXPECT_EQ(events.load(), 12u);
  EXPECT_EQ(last_done, 12u);
}

TEST(Executor, DefaultWorkersIsAtLeastOne) { EXPECT_GE(default_workers(), 1); }

// --- Robustness layer -----------------------------------------------------

TEST(ExecutorRobustness, InfraFailureRetriedUntilSuccess) {
  const auto tasks = synthetic_tasks(4);
  ExecutorOptions opts;
  opts.max_retries = 3;
  opts.retry_backoff_seconds = 0.0;  // no sleeping in tests
  std::atomic<int> attempts_of_2{0};
  const auto res = execute_all(
      tasks,
      [&](const RunTask& t) {
        RunOutput o;
        if (t.run_index == 2 && attempts_of_2.fetch_add(1) < 2) {
          o.ok = false;
          o.infra_failure = true;  // e.g. a watchdog timeout
          o.error = "flaky";
        }
        return o;
      },
      opts);
  EXPECT_TRUE(res.all_ok()) << res.first_error;
  EXPECT_EQ(attempts_of_2.load(), 3);  // two infra failures, then success
  ASSERT_TRUE(res.outputs[2].has_value());
  EXPECT_EQ(res.outputs[2]->attempts, 3);
  EXPECT_EQ(res.outputs[1]->attempts, 1);
}

TEST(ExecutorRobustness, DeterministicFailureNeverRetried) {
  // A sim failure (ok=false without infra_failure) would fail identically on
  // the same seed — the retry budget must not touch it.
  const auto tasks = synthetic_tasks(3);
  ExecutorOptions opts;
  opts.max_retries = 5;
  opts.retry_backoff_seconds = 0.0;
  std::atomic<int> calls{0};
  const auto res = execute_all(
      tasks,
      [&](const RunTask& t) {
        ++calls;
        RunOutput o;
        if (t.run_index == 1) {
          o.ok = false;
          o.error = "job aborted";
        }
        return o;
      },
      opts);
  EXPECT_FALSE(res.all_ok());
  EXPECT_EQ(calls.load(), 2);  // run 0 ok, run 1 fails once, run 2 skipped
  ASSERT_TRUE(res.outputs[1].has_value());
  EXPECT_EQ(res.outputs[1]->attempts, 1);
  EXPECT_FALSE(res.outputs[1]->infra_failure);
}

TEST(ExecutorRobustness, ExceptionIsInfraAndRetried) {
  const auto tasks = synthetic_tasks(1);
  ExecutorOptions opts;
  opts.max_retries = 1;
  opts.retry_backoff_seconds = 0.0;
  std::atomic<int> calls{0};
  const auto res = execute_all(
      tasks,
      [&](const RunTask&) -> RunOutput {
        if (calls.fetch_add(1) == 0) throw std::runtime_error("transient");
        return {};
      },
      opts);
  EXPECT_TRUE(res.all_ok());
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(res.outputs[0]->attempts, 2);
}

TEST(ExecutorRobustness, RetryBudgetExhaustionKeepsInfraFlag) {
  const auto tasks = synthetic_tasks(1);
  ExecutorOptions opts;
  opts.max_retries = 2;
  opts.retry_backoff_seconds = 0.0;
  const auto res = execute_all(
      tasks,
      [](const RunTask&) -> RunOutput { throw std::runtime_error("always"); },
      opts);
  EXPECT_FALSE(res.all_ok());
  ASSERT_TRUE(res.outputs[0].has_value());
  EXPECT_EQ(res.outputs[0]->attempts, 3);  // initial try + 2 retries
  EXPECT_TRUE(res.outputs[0]->infra_failure);
}

TEST(ExecutorRobustness, ExternalCancelBeforeStartSkipsEverything) {
  const auto tasks = synthetic_tasks(5);
  std::atomic<bool> cancel{true};
  ExecutorOptions opts;
  opts.cancel = &cancel;
  std::size_t calls = 0;
  const auto res = execute_all(tasks, [&](const RunTask&) {
    ++calls;
    return RunOutput{};
  }, opts);
  EXPECT_TRUE(res.interrupted);
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(res.skipped, 5u);
}

TEST(ExecutorRobustness, ExternalCancelMidSweepDrainsInFlight) {
  const auto tasks = synthetic_tasks(10);
  std::atomic<bool> cancel{false};
  ExecutorOptions opts;
  opts.cancel = &cancel;
  const auto res = execute_all(tasks, [&](const RunTask& t) {
    if (t.run_index == 2) cancel.store(true);  // "signal" arrives mid-run
    return RunOutput{};
  }, opts);
  EXPECT_TRUE(res.interrupted);
  // The in-flight run (index 2) completed and was recorded; later runs were
  // never claimed.
  EXPECT_EQ(res.completed, 3u);
  EXPECT_EQ(res.skipped, 7u);
  ASSERT_TRUE(res.outputs[2].has_value());
  EXPECT_FALSE(res.outputs[3].has_value());
}

TEST(ExecutorRobustness, SparseTaskListSizesSlotsToMaxRunIndex) {
  // Resume passes only the runs missing from the journal; slots must still
  // be addressable by the original run_index.
  const auto dense = synthetic_tasks(6);
  std::vector<RunTask> sparse{dense[1], dense[4]};
  const auto res = execute_all(sparse, [](const RunTask& t) {
    RunOutput o;
    o.metrics.emplace_back("idx", static_cast<double>(t.run_index));
    return o;
  });
  EXPECT_TRUE(res.all_ok());
  ASSERT_EQ(res.outputs.size(), 5u);  // max run_index 4, +1
  EXPECT_FALSE(res.outputs[0].has_value());
  ASSERT_TRUE(res.outputs[1].has_value());
  EXPECT_FALSE(res.outputs[2].has_value());
  ASSERT_TRUE(res.outputs[4].has_value());
  EXPECT_DOUBLE_EQ(res.outputs[4]->metrics[0].second, 4.0);
}

TEST(ExecutorRobustness, EmptyTaskListIsANoOp) {
  const auto res = execute_all({}, [](const RunTask&) { return RunOutput{}; });
  EXPECT_TRUE(res.all_ok());
  EXPECT_TRUE(res.outputs.empty());
}

#if IOSIM_THREADS
TEST(ExecutorRobustness, WatchdogTimesOutCooperativeRun) {
  // A "livelocked" RunFn that spins on the published abort flag, like the
  // simulator's event loop does through SimBudget::abort. The watchdog must
  // fire within its budget, classify the failure as infra, and exhaust the
  // retry budget instead of wedging the pool.
  const auto tasks = synthetic_tasks(1);
  ExecutorOptions opts;
  opts.run_timeout_seconds = 0.05;
  opts.max_retries = 1;
  opts.retry_backoff_seconds = 0.0;
  std::atomic<int> calls{0};
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = execute_all(
      tasks,
      [&](const RunTask&) {
        ++calls;
        const std::atomic<bool>* abort = current_run_abort();
        EXPECT_NE(abort, nullptr);  // watchdog armed for this run
        while (abort != nullptr && !abort->load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        RunOutput o;
        o.ok = false;
        o.error = "simulation stopped early (aborted)";
        return o;
      },
      opts);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_FALSE(res.all_ok());
  EXPECT_EQ(calls.load(), 2);  // timeout is infra: one retry happened
  ASSERT_TRUE(res.outputs[0].has_value());
  EXPECT_TRUE(res.outputs[0]->infra_failure);
  EXPECT_LT(wall, 10.0);  // far below "forever": the pool did not wedge
}

TEST(ExecutorRobustness, NoWatchdogMeansNoAbortFlag) {
  const auto tasks = synthetic_tasks(1);
  const auto res = execute_all(tasks, [](const RunTask&) {
    EXPECT_EQ(current_run_abort(), nullptr);
    return RunOutput{};
  });
  EXPECT_TRUE(res.all_ok());
}
#endif  // IOSIM_THREADS

// --- Real-simulation integration -----------------------------------------

const char* kTinySpec =
    "name=exec_it\n"
    "mode=run\n"
    "base_seed=11\n"
    "repeats=2\n"
    "pair=cc,ad\n"
    "workload=sort\n"
    "hosts=2\nvms=2\nmb=32\n";

TEST(ExecutorIntegration, ByteIdenticalJsonAcrossWorkerCounts) {
  // The determinism-under-parallelism contract: same spec + base seed at
  // --workers 1 and --workers 8 must yield byte-identical BENCH JSON.
  const auto spec = ScenarioSpec::parse(kTinySpec);
  ASSERT_TRUE(spec.has_value());
  const auto points = spec->expand();
  const auto tasks = build_run_matrix(*spec);
  const auto fn = make_run_fn(points);

  ExecutorOptions serial;
  serial.workers = 1;
  ExecutorOptions wide;
  wide.workers = 8;
  const auto a = execute_all(tasks, fn, serial);
  const auto b = execute_all(tasks, fn, wide);
  ASSERT_TRUE(a.all_ok()) << a.first_error;
  ASSERT_TRUE(b.all_ok()) << b.first_error;

  const std::string ja = to_json(*spec, aggregate(*spec, points, tasks, a));
  const std::string jb = to_json(*spec, aggregate(*spec, points, tasks, b));
  EXPECT_EQ(ja, jb);
  EXPECT_NE(ja.find("\"bench_format\""), std::string::npos);
  EXPECT_NE(ja.find("\"seconds\""), std::string::npos);
}

TEST(ExecutorIntegration, ByteIdenticalJsonWithMultiJobStreamPoints) {
  // Same contract as above, but the sweep mixes single-job points with
  // open-arrival multi-job stream points under two JobTracker policies.
  // Stream runs spawn their own per-job RNG streams and per-class sketches;
  // none of that may leak across worker threads.
  const auto spec = ScenarioSpec::parse(
      "name=exec_stream_it\n"
      "mode=run\n"
      "base_seed=11\n"
      "repeats=2\n"
      "workload=sort\n"
      "hosts=2\nvms=2\nmb=16\n"
      "stream=none|arrive,poisson,rate=0.1,jobs=4;"
      "class,name=batch,wl=sort,mb=8-16,share=0.7,mix=3;"
      "class,name=ui,wl=wc,mb=8-8,prio=5,share=0.3,deadline=200,mix=1\n"
      "stream_policy=fifo,fair\n");
  ASSERT_TRUE(spec.has_value());
  const auto points = spec->expand();
  ASSERT_EQ(points.size(), 4u);  // {none, stream} x {fifo, fair}
  const auto tasks = build_run_matrix(*spec);
  const auto fn = make_run_fn(points);

  ExecutorOptions serial;
  serial.workers = 1;
  ExecutorOptions wide;
  wide.workers = 8;
  const auto a = execute_all(tasks, fn, serial);
  const auto b = execute_all(tasks, fn, wide);
  ASSERT_TRUE(a.all_ok()) << a.first_error;
  ASSERT_TRUE(b.all_ok()) << b.first_error;

  const std::string ja = to_json(*spec, aggregate(*spec, points, tasks, a));
  const std::string jb = to_json(*spec, aggregate(*spec, points, tasks, b));
  EXPECT_EQ(ja, jb);
  // Per-class sketch metrics and SLA accounting made it into the artifact.
  EXPECT_NE(ja.find("\"jobs_completed\""), std::string::npos);
  EXPECT_NE(ja.find("\"sla_violations\""), std::string::npos);
  EXPECT_NE(ja.find("\"batch_p95_s\""), std::string::npos);
  EXPECT_NE(ja.find("\"ui_sla_viol\""), std::string::npos);
}

TEST(ExecutorIntegration, AbortingFaultCancelsSweep) {
  // transient:host=-1,p=0.9 makes every disk I/O on every host fail with
  // 90% probability — the job aborts after retries, and the sweep must
  // cancel instead of writing a BENCH file full of holes.
  const auto spec = ScenarioSpec::parse(
      "name=doomed\nrepeats=2\nworkload=sort\nhosts=2\nvms=2\nmb=32\n"
      "fault=transient:host=-1,p=0.9\n");
  ASSERT_TRUE(spec.has_value());
  const auto points = spec->expand();
  const auto tasks = build_run_matrix(*spec);
  const auto res = execute_all(tasks, make_run_fn(points));
  EXPECT_FALSE(res.all_ok());
  EXPECT_GE(res.failed, 1u);
  EXPECT_FALSE(res.first_error.empty());
}

TEST(ExecutorIntegration, ParallelSpeedupOverSerial) {
  // The tentpole's raison d'être: N workers must beat serial wall-clock on
  // a multi-core machine while producing the same outputs (checked above).
  // Sleep-based synthetic tasks make the measurement robust to machine
  // speed; the threads genuinely run concurrently either way.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 2) GTEST_SKIP() << "needs >= 2 cores, have " << hw;
#if !IOSIM_THREADS
  GTEST_SKIP() << "built with IOSIM_THREADS=0";
#endif

  constexpr auto kPerTask = std::chrono::milliseconds(60);
  const auto tasks = synthetic_tasks(8);
  const auto fn = [&](const RunTask&) {
    std::this_thread::sleep_for(kPerTask);
    return RunOutput{};
  };
  const auto timed = [&](int workers) {
    ExecutorOptions opts;
    opts.workers = workers;
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = execute_all(tasks, fn, opts);
    const auto t1 = std::chrono::steady_clock::now();
    EXPECT_TRUE(res.all_ok());
    return std::chrono::duration<double>(t1 - t0).count();
  };

  const double serial = timed(1);
  const double parallel = timed(static_cast<int>(std::min(hw, 8u)));
  EXPECT_LT(parallel, 0.85 * serial)
      << "serial " << serial << "s vs parallel " << parallel << "s";
}

}  // namespace
}  // namespace iosim::exp
