// Unit tests for the iosim-report HTML renderer over synthetic trace JSON
// and BENCH files: expected rows, banner states, byte-determinism, and
// malformed-input handling.
#include "exp/report.hpp"

#include <gtest/gtest.h>

#include <string>

namespace iosim::exp {
namespace {

// A hand-built trace export: one obs key with two lanes summarized, one
// overall summary, and one stall pair. ts/dur use the tracer's µs
// fixed-point formatting.
std::string synthetic_trace(const std::string& dropped) {
  return std::string(R"({"displayTimeUnit":"ms","otherData":{"dropped_events":")") +
         dropped + R"("},"traceEvents":[
{"ph":"M","name":"thread_name","pid":1,"tid":7,"args":{"name":"obs/host0/vm1/read/sync/ph0"}},
{"ph":"i","name":"obs summary","tid":3,"ts":250.000,"s":"g","args":{"count":2,"in_flight":0,"stalls":1}},
{"ph":"i","name":"obs elv_wait","tid":7,"ts":250.000,"s":"t","args":{"count":2,"sum_ns":80000,"max_ns":50000}},
{"ph":"i","name":"obs elv_wait","tid":7,"ts":250.000,"s":"t","args":{"p50_ns":30000,"p95_ns":50000,"p99_ns":50000}},
{"ph":"i","name":"obs total","tid":7,"ts":250.000,"s":"t","args":{"count":2,"sum_ns":500000,"max_ns":260000}},
{"ph":"i","name":"obs total","tid":7,"ts":250.000,"s":"t","args":{"p50_ns":240000,"p95_ns":260000,"p99_ns":260000}},
{"ph":"i","name":"obs total win","tid":7,"ts":250.000,"s":"t","args":{"count":2,"p95_ns":260000,"p99_ns":260000}},
{"ph":"X","name":"io stall","tid":7,"ts":100000.000,"dur":10000.000,"args":{"lba":4096,"writes_ahead":5,"reads_ahead":0}},
{"ph":"i","name":"io stall wait","tid":7,"ts":110000.000,"s":"t","args":{"elv_wait_ns":8940000,"service_ns":950000,"total_ns":10000000}}
]})";
}

TEST(Report, RendersWaterfallRowsFromTrace) {
  std::string err;
  const std::string html = render_report(synthetic_trace("0"), {}, {}, &err);
  ASSERT_FALSE(html.empty()) << err;

  // Clean run: green banner, no overflow warning.
  EXPECT_NE(html.find("banner ok"), std::string::npos);
  EXPECT_NE(html.find("trace complete: <b>0</b> dropped"), std::string::npos);
  EXPECT_EQ(html.find("ring-buffer history is incomplete"), std::string::npos);

  // Summary line and key heading.
  EXPECT_NE(html.find("attribution: <b>2</b> request(s) completed"),
            std::string::npos);
  EXPECT_NE(html.find("<h3>host0 vm1 read sync ph0</h3>"), std::string::npos);

  // elv_wait row: share 80000/500000 = 16%, mean 40000 ns = 40.0 µs, and
  // the percentiles joined from the second instant.
  EXPECT_NE(html.find("16%"), std::string::npos);
  EXPECT_NE(html.find("40.0 µs"), std::string::npos);
  EXPECT_NE(html.find("30.0 µs"), std::string::npos);  // elv p50

  // The windowed row made it in.
  EXPECT_NE(html.find("total (window)"), std::string::npos);

  // No tenancy instants in this trace: single-job reports keep their
  // pre-stream shape, without a Job stream section.
  EXPECT_EQ(html.find("Job stream"), std::string::npos);
}

TEST(Report, RendersJobStreamTimelineFromTenancyInstants) {
  // Three jobs: one done (sojourn 42s), one failed, one still running when
  // the trace ended (admit only).
  const std::string trace = R"({"otherData":{"dropped_events":"0"},"traceEvents":[
{"ph":"M","name":"thread_name","pid":1,"tid":9,"args":{"name":"tenancy"}},
{"ph":"i","name":"job_admit","tid":9,"ts":1000000.000,"s":"t","args":{"job":0,"class":0,"arg":12}},
{"ph":"i","name":"job_admit","tid":9,"ts":2000000.000,"s":"t","args":{"job":1,"class":1,"arg":8}},
{"ph":"i","name":"job_admit","tid":9,"ts":3000000.000,"s":"t","args":{"job":2,"class":0,"arg":16}},
{"ph":"i","name":"job_done","tid":9,"ts":43000000.000,"s":"t","args":{"job":0,"class":0,"arg":42000}},
{"ph":"i","name":"job_fail","tid":9,"ts":50000000.000,"s":"t","args":{"job":1,"class":1,"arg":48000}}
]})";
  std::string err;
  const std::string html = render_report(trace, {}, {}, &err);
  ASSERT_FALSE(html.empty()) << err;
  EXPECT_NE(html.find("<h2>Job stream</h2>"), std::string::npos);
  EXPECT_NE(html.find("<b>1</b> completed, <b>1</b> failed, <b>1</b> still running"),
            std::string::npos);
  // Job 0's row: class 0, 12 MB admit arg, 42 s sojourn, done.
  EXPECT_NE(html.find("<td>12</td>"), std::string::npos);
  EXPECT_NE(html.find("42.0 s"), std::string::npos);
  EXPECT_NE(html.find("<td>done</td>"), std::string::npos);
  EXPECT_NE(html.find("<td>failed</td>"), std::string::npos);
  // Job 2 never finished: dashes, state "running".
  EXPECT_NE(html.find("<td>running</td>"), std::string::npos);
}

TEST(Report, RendersStallLogWithQueueSnapshot) {
  std::string err;
  const std::string html = render_report(synthetic_trace("0"), {}, {}, &err);
  ASSERT_FALSE(html.empty()) << err;
  EXPECT_NE(html.find("<h2>Stall log</h2>"), std::string::npos);
  // lba, paired lane breakdown (total 10ms, elv wait 8940µs), and the
  // "who was ahead" columns.
  EXPECT_NE(html.find("<td>4096</td>"), std::string::npos);
  EXPECT_NE(html.find("10.0 ms"), std::string::npos);
  EXPECT_NE(html.find("8940.0 µs"), std::string::npos);
  EXPECT_NE(html.find("<td>5</td>"), std::string::npos);  // writes ahead
  // Single-job trace: no job column — the table keeps its historical shape.
  EXPECT_EQ(html.find("<th>job</th>"), std::string::npos);
}

TEST(Report, StallAndWaterfallTablesCarryJobColumn) {
  // A multi-tenant trace: the same key shape but keyed to stream job 2 (the
  // attribution layer inserts "/job2" into the track), plus one legacy-key
  // stall. The stall table grows a job column; the legacy row shows "-".
  const std::string trace = R"({"otherData":{"dropped_events":"0"},"traceEvents":[
{"ph":"M","name":"thread_name","pid":1,"tid":7,"args":{"name":"obs/host0/vm1/job2/read/sync/ph0"}},
{"ph":"M","name":"thread_name","pid":1,"tid":8,"args":{"name":"obs/host0/vm1"}},
{"ph":"i","name":"obs summary","tid":3,"ts":250.000,"s":"g","args":{"count":2,"in_flight":0,"stalls":2}},
{"ph":"i","name":"obs total","tid":7,"ts":250.000,"s":"t","args":{"count":2,"sum_ns":500000,"max_ns":260000}},
{"ph":"i","name":"obs total","tid":7,"ts":250.000,"s":"t","args":{"p50_ns":240000,"p95_ns":260000,"p99_ns":260000}},
{"ph":"X","name":"io stall","tid":7,"ts":100000.000,"dur":10000.000,"args":{"lba":4096,"writes_ahead":5,"reads_ahead":0}},
{"ph":"i","name":"io stall wait","tid":7,"ts":110000.000,"s":"t","args":{"elv_wait_ns":8940000,"service_ns":950000,"total_ns":10000000}},
{"ph":"X","name":"io stall","tid":8,"ts":200000.000,"dur":5000.000,"args":{"lba":8192,"writes_ahead":1,"reads_ahead":1}}
]})";
  std::string err;
  const std::string html = render_report(trace, {}, {}, &err);
  ASSERT_FALSE(html.empty()) << err;
  // The waterfall heading carries the job straight from the track path.
  EXPECT_NE(html.find("<h3>host0 vm1 job2 read sync ph0</h3>"), std::string::npos);
  // Stall table: job column present, job row labelled, legacy row dashed.
  EXPECT_NE(html.find("<th>job</th>"), std::string::npos);
  EXPECT_NE(html.find("<td>job2</td>"), std::string::npos);
  const auto job_col = html.find("<th>job</th>");
  const auto dash_cell = html.find("<td>-</td>", job_col);
  EXPECT_NE(dash_cell, std::string::npos);
}

TEST(Report, OverflowRaisesRedBanner) {
  std::string err;
  const std::string html = render_report(synthetic_trace("37"), {}, {}, &err);
  ASSERT_FALSE(html.empty()) << err;
  EXPECT_NE(html.find("banner bad"), std::string::npos);
  EXPECT_NE(html.find("trace ring overflow: <b>37</b> dropped"), std::string::npos);
  EXPECT_NE(html.find("ring-buffer history is incomplete"), std::string::npos);
  EXPECT_EQ(html.find("banner ok"), std::string::npos);
}

TEST(Report, RendersFlatBenchMetrics) {
  const ReportBench b{
      "micro_sim",
      R"({"bench_format":1,"name":"micro_sim","metrics":{"bio_roundtrip.ops_per_sec":123456.5,"fig2_point.seconds":0.25}})"};
  std::string err;
  const std::string html = render_report("", {b}, {}, &err);
  ASSERT_FALSE(html.empty()) << err;
  EXPECT_NE(html.find("<h2>Bench: micro_sim</h2>"), std::string::npos);
  EXPECT_NE(html.find("<td>bio_roundtrip.ops_per_sec</td>"), std::string::npos);
  // Values reproduce the raw JSON number token, not a reformatted double.
  EXPECT_NE(html.find("<td>123456.5</td>"), std::string::npos);
  EXPECT_NE(html.find("<td>0.25</td>"), std::string::npos);
  // Trace-less render: no waterfall or stall sections.
  EXPECT_EQ(html.find("Latency waterfalls"), std::string::npos);
  EXPECT_EQ(html.find("Stall log"), std::string::npos);
}

TEST(Report, RendersSweepBenchPoints) {
  const ReportBench b{"sweep", R"({"points":[
{"label":"nn","metrics":{"read_p99_ms":{"n":5,"mean":12.5,"min":11.0,"max":14.0,"p50":12.0,"p95":14.0}}},
{"label":"ca","metrics":{"read_p99_ms":{"n":5,"mean":6.25,"min":6.0,"max":7.0,"p50":6.0,"p95":7.0}}}
]})"};
  std::string err;
  const std::string html = render_report("", {b}, {}, &err);
  ASSERT_FALSE(html.empty()) << err;
  EXPECT_NE(html.find("<td>nn</td>"), std::string::npos);
  EXPECT_NE(html.find("<td>ca</td>"), std::string::npos);
  EXPECT_NE(html.find("<td>read_p99_ms</td>"), std::string::npos);
  EXPECT_NE(html.find("<td>6.25</td>"), std::string::npos);
}

TEST(Report, TitleIsEscapedAndUsed) {
  ReportOptions opt;
  opt.title = "fig2 <nn> & friends";
  std::string err;
  const std::string html = render_report(synthetic_trace("0"), {}, opt, &err);
  ASSERT_FALSE(html.empty()) << err;
  EXPECT_NE(html.find("<h1>fig2 &lt;nn&gt; &amp; friends</h1>"), std::string::npos);
  EXPECT_EQ(html.find("<h1>fig2 <nn>"), std::string::npos);
}

TEST(Report, ByteDeterministicAcrossRenders) {
  const ReportBench b{"micro_sim",
                      R"({"name":"m","metrics":{"a":1.5,"b":2}})"};
  const std::string a1 = render_report(synthetic_trace("0"), {b}, {}, nullptr);
  const std::string a2 = render_report(synthetic_trace("0"), {b}, {}, nullptr);
  ASSERT_FALSE(a1.empty());
  EXPECT_EQ(a1, a2);
}

TEST(Report, MalformedTraceReportsErrorAndReturnsEmpty) {
  std::string err;
  const std::string html = render_report("{nope", {}, {}, &err);
  EXPECT_TRUE(html.empty());
  EXPECT_FALSE(err.empty());
  EXPECT_NE(err.find("trace JSON"), std::string::npos);
}

TEST(Report, MalformedBenchReportsErrorWithLabel) {
  const ReportBench b{"broken_bench", "not json at all"};
  std::string err;
  const std::string html = render_report("", {b}, {}, &err);
  EXPECT_TRUE(html.empty());
  EXPECT_NE(err.find("broken_bench"), std::string::npos);
}

TEST(Report, UnrecognizedBenchShapeGetsInlineWarningNotError) {
  const ReportBench b{"odd", R"({"something":"else"})"};
  std::string err;
  const std::string html = render_report("", {b}, {}, &err);
  ASSERT_FALSE(html.empty()) << err;
  EXPECT_NE(html.find("unrecognized BENCH shape"), std::string::npos);
}

}  // namespace
}  // namespace iosim::exp
