#include "exp/scenario.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/random.hpp"

namespace iosim::exp {
namespace {

TEST(ScenarioSpec, Defaults) {
  const auto s = ScenarioSpec::parse("");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->name, "sweep");
  EXPECT_EQ(s->mode, RunMode::kRun);
  EXPECT_EQ(s->base_seed, 1u);
  EXPECT_EQ(s->repeats, 3);
  EXPECT_EQ(s->pairs.size(), 1u);
  EXPECT_EQ(s->workloads, std::vector<std::string>{"sort"});
  EXPECT_EQ(s->n_points(), 1u);
  EXPECT_EQ(s->n_runs(), 3u);
}

TEST(ScenarioSpec, FullParse) {
  const char* text =
      "# a comment\n"
      "name = fig7b\n"
      "mode = adapt\n"
      "base_seed = 99\n"
      "repeats = 5\n"
      "workload = sort, wc\n"
      "hosts = 4\n"
      "vms = 2, 4, 6\n"
      "mb = 512\n";
  std::string err;
  const auto s = ScenarioSpec::parse(text, &err);
  ASSERT_TRUE(s.has_value()) << err;
  EXPECT_EQ(s->name, "fig7b");
  EXPECT_EQ(s->mode, RunMode::kAdapt);
  EXPECT_EQ(s->base_seed, 99u);
  EXPECT_EQ(s->repeats, 5);
  EXPECT_EQ(s->vms, (std::vector<int>{2, 4, 6}));
  EXPECT_EQ(s->n_points(), 2u * 3u);
  EXPECT_EQ(s->n_runs(), 6u * 5u);
}

TEST(ScenarioSpec, RoundTripsThroughToString) {
  const char* text =
      "name=rt\nmode=adapt\nbase_seed=7\nrepeats=2\n"
      "pair=cc,ad\nworkload=sort,wc\nhosts=2\nvms=2,4\nmb=64\n"
      "fault=none|failslow:host=0,factor=2\n";
  const auto a = ScenarioSpec::parse(text);
  ASSERT_TRUE(a.has_value());
  const auto b = ScenarioSpec::parse(a->to_string());
  ASSERT_TRUE(b.has_value()) << a->to_string();
  EXPECT_EQ(a->to_string(), b->to_string());
  EXPECT_EQ(a->n_points(), b->n_points());
}

TEST(ScenarioSpec, ErrorsCarryLineNumbers) {
  std::string err;
  EXPECT_FALSE(ScenarioSpec::parse("name=x\nbogus_key=1\n", &err).has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;

  EXPECT_FALSE(ScenarioSpec::parse("\n\nrepeats=zero\n", &err).has_value());
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;

  EXPECT_FALSE(ScenarioSpec::parse("no_equals_sign\n", &err).has_value());
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
}

TEST(ScenarioSpec, RejectsDuplicateKey) {
  std::string err;
  EXPECT_FALSE(ScenarioSpec::parse("hosts=2\nhosts=4\n", &err).has_value());
  EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
}

TEST(ScenarioSpec, RejectsBadValues) {
  std::string err;
  EXPECT_FALSE(ScenarioSpec::parse("mode=banana\n", &err).has_value());
  EXPECT_FALSE(ScenarioSpec::parse("pair=zz\n", &err).has_value());
  EXPECT_FALSE(ScenarioSpec::parse("workload=grep\n", &err).has_value());
  EXPECT_FALSE(ScenarioSpec::parse("hosts=0\n", &err).has_value());
  EXPECT_FALSE(ScenarioSpec::parse("vms=1,,2\n", &err).has_value());
  EXPECT_FALSE(ScenarioSpec::parse("repeats=0\n", &err).has_value());
  EXPECT_FALSE(ScenarioSpec::parse("fault=transient:host=0\n", &err).has_value());
}

TEST(ScenarioSpec, All16ExpandsEveryPair) {
  const auto s = ScenarioSpec::parse("pair=all16\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->pairs.size(), 16u);
  std::set<std::string> codes;
  for (const auto& p : s->pairs) codes.insert(p.letters());
  EXPECT_EQ(codes.size(), 16u);
}

TEST(ScenarioSpec, FaultAxisParsesAlternatives) {
  const auto s =
      ScenarioSpec::parse("fault=none|failslow:host=0,factor=2|transient:host=-1,p=0.1\n");
  ASSERT_TRUE(s.has_value());
  ASSERT_EQ(s->faults.size(), 3u);
  EXPECT_TRUE(s->faults[0].second.empty());   // none -> fault-free
  EXPECT_TRUE(s->faults[0].first.empty());
  EXPECT_FALSE(s->faults[1].first.empty());
  EXPECT_EQ(s->faults[2].second, "transient:host=-1,p=0.1");
}

TEST(ScenarioSpec, ExpansionOrderIsDocumentedNestedLoop) {
  // workload outermost, then hosts, vms, mb, pair, fault innermost.
  const auto s = ScenarioSpec::parse(
      "workload=sort,wc\nhosts=2\nvms=2\nmb=64\npair=cc,ad\n");
  ASSERT_TRUE(s.has_value());
  const auto pts = s->expand();
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0].workload, "sort");
  EXPECT_EQ(pts[0].pair.letters(), "cc");
  EXPECT_EQ(pts[1].workload, "sort");
  EXPECT_EQ(pts[1].pair.letters(), "ad");
  EXPECT_EQ(pts[2].workload, "wordcount");
  EXPECT_EQ(pts[2].pair.letters(), "cc");
  EXPECT_EQ(pts[3].workload, "wordcount");
  EXPECT_EQ(pts[3].pair.letters(), "ad");
}

TEST(ScenarioSpec, LabelsAreUniqueAcrossExpansion) {
  const auto s = ScenarioSpec::parse(
      "workload=sort,wc\nhosts=2,3\nvms=2,4\nmb=64,128\npair=cc,ad\n"
      "fault=none|failslow:host=0,factor=2\n");
  ASSERT_TRUE(s.has_value());
  const auto pts = s->expand();
  std::set<std::string> labels;
  for (const auto& p : pts) labels.insert(p.label());
  EXPECT_EQ(labels.size(), pts.size());
}

TEST(RunMatrix, SeedsAreDerivedFromRunIndex) {
  const auto s = ScenarioSpec::parse("base_seed=5\nrepeats=2\nvms=2,4\n");
  ASSERT_TRUE(s.has_value());
  const auto tasks = build_run_matrix(*s);
  ASSERT_EQ(tasks.size(), 4u);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].run_index, i);
    EXPECT_EQ(tasks[i].point_index, i / 2);
    EXPECT_EQ(tasks[i].repeat, static_cast<int>(i % 2));
    EXPECT_EQ(tasks[i].seed, sim::derive_run_seed(5, i));
    EXPECT_NE(tasks[i].seed, 5 + i);  // never the naive base+index
  }
}

TEST(RunMatrix, DistinctSeedsAcrossLargeMatrix) {
  const auto s = ScenarioSpec::parse("repeats=10\npair=all16\nvms=2,4,6\n");
  ASSERT_TRUE(s.has_value());
  const auto tasks = build_run_matrix(*s);
  ASSERT_EQ(tasks.size(), 480u);
  std::set<std::uint64_t> seeds;
  for (const auto& t : tasks) seeds.insert(t.seed);
  EXPECT_EQ(seeds.size(), tasks.size());
}

TEST(ScenarioSpec, ApplyOverridesForSetFlag) {
  auto s = ScenarioSpec::parse("name=x\nmb=512\n");
  ASSERT_TRUE(s.has_value());
  std::string err;
  ASSERT_TRUE(s->apply("mb", "64", &err)) << err;
  EXPECT_EQ(s->mb, std::vector<std::int64_t>{64});
  EXPECT_FALSE(s->apply("mb", "not_a_number", &err));
}

TEST(ScenarioSpec, ValidateRejectsOversizedMatrix) {
  // Six unbounded axis lengths multiply: a hostile spec can overflow
  // size_t in n_points() or OOM in expand()'s reserve. parse() must
  // reject the product, not just the individual values.
  std::string big = "name=huge\nrepeats=1\npair=all16\n";
  std::string vms = "vms=1";
  for (int i = 2; i <= 400; ++i) vms += "," + std::to_string(i);
  std::string hosts = "hosts=1";
  for (int i = 2; i <= 400; ++i) hosts += "," + std::to_string(i);
  big += vms + "\n" + hosts + "\n";
  std::string err;
  EXPECT_FALSE(ScenarioSpec::parse(big, &err).has_value());
  EXPECT_NE(err.find("point"), std::string::npos) << err;

  // Run count (points * repeats) is capped separately.
  auto s = ScenarioSpec::parse("name=x\nrepeats=1000000\npair=all16\n");
  EXPECT_FALSE(s.has_value());
}

TEST(ScenarioSpec, ValidateIsReusableAfterSetOverrides) {
  auto s = ScenarioSpec::parse("name=x\n");
  ASSERT_TRUE(s.has_value());
  std::string err;
  EXPECT_TRUE(s->validate(&err)) << err;
  s->repeats = 100'000'000;  // what a bad --set repeats=... would do
  EXPECT_FALSE(s->validate(&err));
  EXPECT_FALSE(err.empty());
}

// --- Multi-job stream axes -------------------------------------------------

constexpr const char* kStreamText =
    "arrive,poisson,rate=0.05,jobs=4;class,name=a,wl=sort,mb=8-16";

TEST(ScenarioSpec, StreamAxisParsesAlternativesAndPolicies) {
  const auto s = ScenarioSpec::parse(
      "stream=none|" + std::string(kStreamText) +
      "\nstream_policy=fifo,fair,capacity\n");
  ASSERT_TRUE(s.has_value());
  ASSERT_EQ(s->streams.size(), 2u);
  EXPECT_TRUE(s->streams[0].second.empty());  // none -> single-job point
  EXPECT_EQ(s->streams[1].second, kStreamText);
  EXPECT_EQ(s->streams[1].first.job_count(), 4);
  ASSERT_EQ(s->stream_policies.size(), 3u);
  // none x 3 policies + stream x 3 policies.
  EXPECT_EQ(s->n_points(), 6u);
}

TEST(ScenarioSpec, StreamAxisExpandsWithPolicyOverride) {
  const auto s = ScenarioSpec::parse(
      "stream=none|" + std::string(kStreamText) + "\nstream_policy=fair\n");
  ASSERT_TRUE(s.has_value());
  const auto pts = s->expand();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_TRUE(pts[0].stream_text.empty());
  EXPECT_TRUE(pts[0].stream_policy.empty());  // override is inert on `none`
  EXPECT_EQ(pts[1].stream_text, kStreamText);
  EXPECT_EQ(pts[1].stream_policy, "fair");
  EXPECT_EQ(pts[1].stream.policy, tenancy::Policy::kFair);
  // Labels must stay distinct (the journal keys on them indirectly).
  EXPECT_NE(pts[0].label(), pts[1].label());
}

TEST(ScenarioSpec, StreamAxesRoundTripThroughToString) {
  const auto s = ScenarioSpec::parse(
      "stream=none|" + std::string(kStreamText) + "\nstream_policy=fifo,fair\n");
  ASSERT_TRUE(s.has_value());
  const std::string text = s->to_string();
  EXPECT_NE(text.find("stream="), std::string::npos);
  EXPECT_NE(text.find("stream_policy=fifo,fair"), std::string::npos);
  std::string err;
  const auto again = ScenarioSpec::parse(text, &err);
  ASSERT_TRUE(again.has_value()) << err;
  EXPECT_EQ(again->to_string(), text);
  EXPECT_EQ(again->fingerprint(), s->fingerprint());
}

TEST(ScenarioSpec, StreamlessSpecsKeepPreTenancyCanonicalText) {
  // No stream axes -> no stream lines, so pre-tenancy journals still match
  // their recorded fingerprints.
  const auto s = ScenarioSpec::parse("name=x\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->to_string().find("stream"), std::string::npos);
}

TEST(RunMatrix, PairedSeedModeSharesSeedsAcrossPoints) {
  const auto s =
      ScenarioSpec::parse("base_seed=5\nrepeats=2\nseed_mode=repeat\nvms=2,4\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->paired_seeds);
  const auto tasks = build_run_matrix(*s);
  ASSERT_EQ(tasks.size(), 4u);
  // Both points replay the same two seeds, derived from the repeat alone.
  EXPECT_EQ(tasks[0].seed, sim::derive_run_seed(5, 0));
  EXPECT_EQ(tasks[1].seed, sim::derive_run_seed(5, 1));
  EXPECT_EQ(tasks[2].seed, tasks[0].seed);
  EXPECT_EQ(tasks[3].seed, tasks[1].seed);
  // Run indices stay dense and unique — only the seed derivation pairs up.
  EXPECT_EQ(tasks[3].run_index, 3u);
  // The non-default mode is rendered (and round-trips); the default is not.
  EXPECT_NE(s->to_string().find("seed_mode=repeat"), std::string::npos);
  const auto rt = ScenarioSpec::parse(s->to_string());
  ASSERT_TRUE(rt.has_value());
  EXPECT_TRUE(rt->paired_seeds);
  const auto d = ScenarioSpec::parse("repeats=2\n");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->to_string().find("seed_mode"), std::string::npos);
  std::string err;
  EXPECT_FALSE(ScenarioSpec::parse("seed_mode=dice\n", &err).has_value());
  EXPECT_NE(err.find("bad seed_mode"), std::string::npos) << err;
}

TEST(ScenarioSpec, MetaAxisCrossesStreamsAndFoldsIntoSpecs) {
  const auto s = ScenarioSpec::parse(
      "stream=" + std::string(kStreamText) +
      "\nmeta=none|policy=ucb,explore=0.7|policy=egreedy\n");
  ASSERT_TRUE(s.has_value());
  ASSERT_EQ(s->metas.size(), 3u);
  EXPECT_EQ(s->metas[0], "");
  const auto pts = s->expand();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_FALSE(pts[0].stream.meta.enabled());
  EXPECT_EQ(pts[1].stream.meta.policy, tenancy::MetaPolicy::kUcb);
  EXPECT_DOUBLE_EQ(pts[1].stream.meta.explore, 0.7);
  EXPECT_EQ(pts[2].stream.meta.policy, tenancy::MetaPolicy::kEgreedy);
  // The axis shows up in labels (so BENCH points stay distinguishable) and
  // the spec round-trips through its canonical text.
  EXPECT_EQ(pts[0].label().find("meta="), std::string::npos);
  EXPECT_NE(pts[1].label().find("meta=policy=ucb"), std::string::npos);
  const auto rt = ScenarioSpec::parse(s->to_string());
  ASSERT_TRUE(rt.has_value());
  EXPECT_EQ(rt->to_string(), s->to_string());
}

TEST(ScenarioSpec, MetaAxisRejectsBadInput) {
  std::string err;
  // meta without a stream axis is meaningless.
  EXPECT_FALSE(ScenarioSpec::parse("meta=policy=ucb\n", &err).has_value());
  EXPECT_NE(err.find("meta"), std::string::npos) << err;
  // Every alternative must be a valid meta body for every stream.
  EXPECT_FALSE(ScenarioSpec::parse("stream=" + std::string(kStreamText) +
                                       "\nmeta=policy=warp\n",
                                   &err)
                   .has_value());
  // profile= must name a class that exists in each crossed stream.
  EXPECT_FALSE(ScenarioSpec::parse("stream=" + std::string(kStreamText) +
                                       "\nmeta=policy=offline,profile=nosuch\n",
                                   &err)
                   .has_value());
}

TEST(ScenarioSpec, StreamAxisRejectsBadInput) {
  std::string err;
  EXPECT_FALSE(ScenarioSpec::parse("stream=arrive,poisson\n", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(
      ScenarioSpec::parse("mode=adapt\nstream=" + std::string(kStreamText) + "\n",
                          &err)
          .has_value());
  EXPECT_NE(err.find("mode=run"), std::string::npos) << err;
  EXPECT_FALSE(ScenarioSpec::parse("stream_policy=fair\n", &err).has_value());
  EXPECT_NE(err.find("without a stream"), std::string::npos) << err;
  EXPECT_FALSE(ScenarioSpec::parse("stream=" + std::string(kStreamText) +
                                       "\nstream_policy=lottery\n",
                                   &err)
                   .has_value());
}

}  // namespace
}  // namespace iosim::exp
