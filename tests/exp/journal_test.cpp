#include "exp/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/artifact.hpp"
#include "exp/executor.hpp"
#include "exp/json_parse.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"

namespace iosim::exp {
namespace {

std::string temp_path(const std::string& leaf) {
  return testing::TempDir() + "iosim_journal_test_" + leaf;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- Atomic artifact writes -----------------------------------------------

TEST(Artifact, AtomicWriteRoundTrips) {
  const std::string path = temp_path("atomic.json");
  std::string err;
  ASSERT_TRUE(write_file_atomic(path, "{\"a\":1}\n", &err)) << err;
  EXPECT_EQ(slurp(path), "{\"a\":1}\n");
  // Overwrite is atomic too: the old content is fully replaced.
  ASSERT_TRUE(write_file_atomic(path, "second\n", &err)) << err;
  EXPECT_EQ(slurp(path), "second\n");
  std::remove(path.c_str());
}

TEST(Artifact, AtomicWriteFailsCleanlyOnBadPath) {
  std::string err;
  EXPECT_FALSE(write_file_atomic("/nonexistent-dir-xyz/out.json", "x", &err));
  EXPECT_FALSE(err.empty());
}

TEST(Artifact, Fnv1a64KnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

// --- JSON reader ----------------------------------------------------------

TEST(JsonParse, ReadsWriterSubset) {
  const auto v = json_parse(
      "{\"s\":\"a\\\"b\\\\c\",\"n\":1.5,\"t\":true,\"f\":false,\"z\":null,"
      "\"arr\":[1,2],\"o\":{\"k\":2}}");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->kind, JsonValue::Kind::kObject);
  EXPECT_EQ(v->find("s")->str, "a\"b\\c");
  EXPECT_DOUBLE_EQ(v->find("n")->num, 1.5);
  EXPECT_TRUE(v->find("t")->b);
  EXPECT_FALSE(v->find("f")->b);
  EXPECT_EQ(v->find("z")->kind, JsonValue::Kind::kNull);
  ASSERT_EQ(v->find("arr")->arr.size(), 2u);
  EXPECT_DOUBLE_EQ(v->find("o")->find("k")->num, 2.0);
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonParse, KeysKeepFileOrder) {
  const auto v = json_parse("{\"z\":1,\"a\":2,\"m\":3}");
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(v->obj.size(), 3u);
  EXPECT_EQ(v->obj[0].first, "z");
  EXPECT_EQ(v->obj[1].first, "a");
  EXPECT_EQ(v->obj[2].first, "m");
}

TEST(JsonParse, U64RoundTripsLosslessly) {
  // 2^64 - 1 does not fit a double; the raw token must survive.
  const auto v = json_parse("{\"seed\":18446744073709551615}");
  ASSERT_TRUE(v.has_value());
  const auto u = v->find("seed")->as_u64();
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(*u, 18446744073709551615ull);
  // Signed / fractional / overflowing tokens refuse u64 interpretation.
  EXPECT_FALSE(json_parse("-1")->as_u64().has_value());
  EXPECT_FALSE(json_parse("1.5")->as_u64().has_value());
  EXPECT_FALSE(json_parse("18446744073709551616")->as_u64().has_value());
}

TEST(JsonParse, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(json_parse("{\"a\":", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(json_parse("{\"a\":1} trailing", &err).has_value());
  EXPECT_FALSE(json_parse("", &err).has_value());
  EXPECT_FALSE(json_parse("{'a':1}", &err).has_value());
}

TEST(JsonParse, RejectsPathologicalNesting) {
  // Each nesting level recurses one native stack frame; without the depth
  // guard a few hundred KB of "[[[[..." would overflow the stack (the
  // original fuzzer-found crash). Moderate nesting must still parse.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_TRUE(json_parse(deep).has_value());

  std::string err;
  std::string too_deep(100'000, '[');
  EXPECT_FALSE(json_parse(too_deep, &err).has_value());
  EXPECT_NE(err.find("nesting too deep"), std::string::npos) << err;

  std::string objs;
  for (int i = 0; i < 1000; ++i) objs += "{\"k\":";
  EXPECT_FALSE(json_parse(objs, &err).has_value());
}

// --- Run journal ----------------------------------------------------------

const char* kSpecText =
    "name=jtest\n"
    "mode=run\n"
    "base_seed=7\n"
    "repeats=2\n"
    "workload=sort\n"
    "hosts=2\nvms=2\nmb=32\n";

ScenarioSpec parsed_spec() {
  const auto spec = ScenarioSpec::parse(kSpecText);
  EXPECT_TRUE(spec.has_value());
  return *spec;
}

RunOutput ok_output(double v) {
  RunOutput o;
  o.metrics = {{"seconds", v}, {"ph1_seconds", v / 2.0}};
  return o;
}

TEST(Journal, WriteThenReplayRestoresOutputs) {
  const std::string path = temp_path("roundtrip.journal");
  std::remove(path.c_str());
  const auto spec = parsed_spec();
  const auto tasks = build_run_matrix(spec);
  const auto header = journal_header_for(spec);

  {
    std::string err;
    auto j = RunJournal::open(path, header, &err);
    ASSERT_TRUE(j.has_value()) << err;
    ASSERT_TRUE(j->append(tasks[0], ok_output(12.5), 0.1, &err)) << err;
    RunOutput failed;
    failed.ok = false;
    failed.error = "job aborted";
    ASSERT_TRUE(j->append(tasks[1], failed, 0.2, &err)) << err;
  }

  std::string err;
  const auto replay = read_journal(path, header, tasks, &err);
  ASSERT_TRUE(replay.has_value()) << err;
  EXPECT_EQ(replay->header, header);
  EXPECT_EQ(replay->n_ok, 1u);
  EXPECT_EQ(replay->n_failed, 1u);
  EXPECT_FALSE(replay->truncated_tail);
  ASSERT_EQ(replay->outputs.size(), tasks.size());
  ASSERT_TRUE(replay->outputs[0].has_value());
  EXPECT_TRUE(replay->outputs[0]->ok);
  ASSERT_EQ(replay->outputs[0]->metrics.size(), 2u);
  EXPECT_EQ(replay->outputs[0]->metrics[0].first, "seconds");
  EXPECT_DOUBLE_EQ(replay->outputs[0]->metrics[0].second, 12.5);
  // The failed record leaves its slot empty so a resume re-executes it.
  EXPECT_FALSE(replay->outputs[1].has_value());
  std::remove(path.c_str());
}

TEST(Journal, TruncatedTailIsToleratedAndRerun) {
  const std::string path = temp_path("torn.journal");
  std::remove(path.c_str());
  const auto spec = parsed_spec();
  const auto tasks = build_run_matrix(spec);
  const auto header = journal_header_for(spec);
  {
    std::string err;
    auto j = RunJournal::open(path, header, &err);
    ASSERT_TRUE(j.has_value()) << err;
    ASSERT_TRUE(j->append(tasks[0], ok_output(1.0), 0.1, &err)) << err;
    ASSERT_TRUE(j->append(tasks[1], ok_output(2.0), 0.1, &err)) << err;
  }
  // Tear the last record mid-line, as a SIGKILL mid-write would.
  std::string content = slurp(path);
  content.resize(content.size() - 25);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  }
  std::string err;
  const auto replay = read_journal(path, header, tasks, &err);
  ASSERT_TRUE(replay.has_value()) << err;
  EXPECT_TRUE(replay->truncated_tail);
  EXPECT_EQ(replay->n_ok, 1u);
  ASSERT_TRUE(replay->outputs[0].has_value());
  EXPECT_FALSE(replay->outputs[1].has_value());  // torn record re-executes
  std::remove(path.c_str());
}

TEST(Journal, HeaderMismatchRejectsReplay) {
  const std::string path = temp_path("mismatch.journal");
  std::remove(path.c_str());
  const auto spec = parsed_spec();
  const auto tasks = build_run_matrix(spec);
  {
    std::string err;
    auto j = RunJournal::open(path, journal_header_for(spec), &err);
    ASSERT_TRUE(j.has_value()) << err;
  }
  // A different base seed is a different sweep: the journal must be refused.
  auto other = parsed_spec();
  other.base_seed = 999;
  std::string err;
  EXPECT_FALSE(
      read_journal(path, journal_header_for(other), build_run_matrix(other), &err)
          .has_value());
  EXPECT_NE(err.find("different sweep"), std::string::npos) << err;
  std::remove(path.c_str());
}

TEST(Journal, MissingFileIsAnError) {
  const auto spec = parsed_spec();
  std::string err;
  EXPECT_FALSE(read_journal(temp_path("never-written.journal"),
                            journal_header_for(spec), build_run_matrix(spec), &err)
                   .has_value());
  EXPECT_FALSE(err.empty());
}

TEST(Journal, FingerprintIgnoresTimeoutOnly) {
  // timeout= is wall-clock-only policy: the same journal must be resumable
  // with a different timeout. Budgets change results, so they re-fingerprint.
  auto a = parsed_spec();
  auto b = parsed_spec();
  b.timeout_seconds = 300.0;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  auto c = parsed_spec();
  c.max_events = 12345;
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(Journal, ResumeMergeReproducesUninterruptedJson) {
  // The acceptance criterion, end to end in-process: run half the matrix
  // into a journal, replay it, execute only the missing runs, merge, and the
  // aggregated BENCH JSON must be byte-identical to a one-shot sweep.
  const std::string path = temp_path("resume.journal");
  std::remove(path.c_str());
  const auto spec = parsed_spec();
  const auto points = spec.expand();
  const auto tasks = build_run_matrix(spec);
  const auto fn = make_run_fn(points);
  const auto header = journal_header_for(spec);

  // Reference: uninterrupted sweep.
  const auto full = execute_all(tasks, fn);
  ASSERT_TRUE(full.all_ok()) << full.first_error;
  const std::string want = to_json(spec, aggregate(spec, points, tasks, full));

  // "Crashed" sweep: only the even runs made it into the journal.
  {
    std::string err;
    auto j = RunJournal::open(path, header, &err);
    ASSERT_TRUE(j.has_value()) << err;
    for (std::size_t i = 0; i < tasks.size(); i += 2) {
      ASSERT_TRUE(j->append(tasks[i], *full.outputs[i], 0.1, &err)) << err;
    }
  }

  // Resume: replay, run the missing half, merge by run_index.
  std::string err;
  const auto replay = read_journal(path, header, tasks, &err);
  ASSERT_TRUE(replay.has_value()) << err;
  std::vector<RunTask> pending;
  for (const RunTask& t : tasks) {
    if (!replay->outputs[t.run_index].has_value()) pending.push_back(t);
  }
  ASSERT_EQ(pending.size(), tasks.size() / 2);
  const auto rest = execute_all(pending, fn);
  ASSERT_TRUE(rest.all_ok()) << rest.first_error;

  ExecResult merged;
  merged.outputs = replay->outputs;
  merged.completed = replay->n_ok;
  for (std::size_t i = 0; i < rest.outputs.size(); ++i) {
    if (rest.outputs[i].has_value()) {
      merged.outputs[i] = rest.outputs[i];
      ++merged.completed;
    }
  }
  const std::string got = to_json(spec, aggregate(spec, points, tasks, merged));
  EXPECT_EQ(got, want);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace iosim::exp
