// Tests of the elevator-switch drain-and-hold semantics (the kernel
// elv_switch model behind the paper's switch-cost observations).
#include <gtest/gtest.h>

#include "blk/block_layer.hpp"
#include "blk/disk_device.hpp"

namespace iosim::blk {
namespace {

using namespace iosim::sim::literals;
using iosched::Dir;
using iosched::SchedulerKind;
using sim::Time;

struct Rig {
  sim::Simulator simr;
  DiskDevice disk;
  BlockLayer layer;
  explicit Rig(BlockLayerConfig cfg = {})
      : disk(simr, disk::DiskParams{}, 1), layer(simr, disk, std::move(cfg)) {}

  void submit(disk::Lba lba, Dir dir, std::function<void(Time)> cb = {}) {
    Bio b;
    b.lba = lba;
    b.sectors = 64;
    b.dir = dir;
    b.sync = dir == Dir::kRead;
    b.ctx = 1;
    if (cb) b.on_complete = [cb = std::move(cb)](Time t, IoStatus) { cb(t); };
    layer.submit(std::move(b));
  }
};

BlockLayerConfig fast_freeze(Time freeze = 50_ms) {
  BlockLayerConfig cfg;
  cfg.switch_freeze = freeze;
  return cfg;
}

TEST(SwitchDrain, QueuedRequestsCompleteUnderOldScheduler) {
  Rig r(fast_freeze());
  int before = 0;
  for (int i = 0; i < 20; ++i) {
    r.submit(i * 50'000, Dir::kWrite, [&](Time) { ++before; });
  }
  r.layer.switch_scheduler(SchedulerKind::kDeadline);
  r.simr.run();
  EXPECT_EQ(before, 20);
  EXPECT_EQ(r.layer.scheduler_kind(), SchedulerKind::kDeadline);
}

TEST(SwitchDrain, SubmissionsDuringDrainAreHeldThenServed) {
  Rig r(fast_freeze(100_ms));
  // Fill the queue, start the switch, then submit more: the latecomers
  // must not complete before the drain + freeze finished.
  for (int i = 0; i < 10; ++i) r.submit(i * 50'000, Dir::kWrite);
  r.layer.switch_scheduler(SchedulerKind::kNoop);
  Time held_done;
  r.submit(5'000'000, Dir::kRead, [&](Time t) { held_done = t; });
  // While draining, the held bio is neither queued nor dispatched.
  EXPECT_EQ(r.layer.queued() + r.layer.in_flight(), 10u);
  r.simr.run();
  EXPECT_GT(held_done, 100_ms);  // paid at least the freeze
  EXPECT_EQ(r.layer.scheduler_kind(), SchedulerKind::kNoop);
}

TEST(SwitchDrain, RetargetWhileDrainingTakesLastTarget) {
  Rig r(fast_freeze());
  for (int i = 0; i < 10; ++i) r.submit(i * 50'000, Dir::kWrite);
  r.layer.switch_scheduler(SchedulerKind::kDeadline);
  r.layer.switch_scheduler(SchedulerKind::kAnticipatory);  // retarget mid-drain
  r.simr.run();
  EXPECT_EQ(r.layer.scheduler_kind(), SchedulerKind::kAnticipatory);
  // Only the first call counts as a switch command burst.
  EXPECT_EQ(r.layer.counters().scheduler_switches, 1u);
}

TEST(SwitchDrain, SwitchOnIdleLayerIsJustTheFreeze) {
  Rig r(fast_freeze(200_ms));
  r.layer.switch_scheduler(SchedulerKind::kCfq);
  Time done;
  r.submit(1000, Dir::kRead, [&](Time t) { done = t; });
  r.simr.run();
  EXPECT_GE(done, 200_ms);
  EXPECT_LT(done, 400_ms);
}

TEST(SwitchDrain, BackToBackSwitchesBothApply) {
  Rig r(fast_freeze(20_ms));
  r.layer.switch_scheduler(SchedulerKind::kDeadline);
  r.simr.run();
  EXPECT_EQ(r.layer.scheduler_kind(), SchedulerKind::kDeadline);
  r.layer.switch_scheduler(SchedulerKind::kCfq);
  r.simr.run();
  EXPECT_EQ(r.layer.scheduler_kind(), SchedulerKind::kCfq);
  EXPECT_EQ(r.layer.counters().scheduler_switches, 2u);
}

TEST(SwitchDrain, HeldBiosPreserveCompletionCallbacks) {
  Rig r(fast_freeze());
  for (int i = 0; i < 5; ++i) r.submit(i * 50'000, Dir::kWrite);
  r.layer.switch_scheduler(SchedulerKind::kDeadline);
  int held_completed = 0;
  for (int i = 0; i < 25; ++i) {
    r.submit(10'000'000 + i * 1000, Dir::kWrite, [&](Time) { ++held_completed; });
  }
  r.simr.run();
  EXPECT_EQ(held_completed, 25);
}

TEST(SwitchDrain, DrainWithAnticipatingSchedulerTerminates) {
  // AS may be mid-anticipation when the switch arrives; the drain must not
  // deadlock on the idle window.
  Rig r(fast_freeze());
  BlockLayerConfig cfg = fast_freeze();
  cfg.scheduler = SchedulerKind::kAnticipatory;
  Rig r2(cfg);
  Time t_done;
  r2.submit(1000, Dir::kRead, [&](Time) {
    // Completion arms anticipation; now queue a far request and switch.
    r2.submit(900'000'000, Dir::kRead, [&](Time t) { t_done = t; });
    r2.layer.switch_scheduler(SchedulerKind::kNoop);
  });
  r2.simr.run();
  EXPECT_GT(t_done, Time::zero());
  EXPECT_EQ(r2.layer.scheduler_kind(), SchedulerKind::kNoop);
}

}  // namespace
}  // namespace iosim::blk
