// Tests of the NCQ-capable disk device and the latency probe.
#include <gtest/gtest.h>

#include "blk/block_layer.hpp"
#include "blk/disk_device.hpp"
#include "metrics/latency_probe.hpp"

namespace iosim::blk {
namespace {

using iosched::Dir;
using iosched::SchedulerKind;
using sim::Time;

struct Rig {
  sim::Simulator simr;
  DiskDevice disk;
  BlockLayer layer;
  explicit Rig(int ncq_depth, SchedulerKind k = SchedulerKind::kNoop)
      : disk(simr,
             [ncq_depth] {
               disk::DiskParams p;
               p.ncq_depth = ncq_depth;
               return p;
             }(),
             1),
        layer(simr, disk, [k] {
          BlockLayerConfig cfg;
          cfg.scheduler = k;
          return cfg;
        }()) {}

  void submit(disk::Lba lba, Dir dir = Dir::kWrite,
              std::function<void(Time)> cb = {}) {
    Bio b;
    b.lba = lba;
    b.sectors = 64;
    b.dir = dir;
    b.sync = dir == Dir::kRead;
    b.ctx = 1;
    if (cb) b.on_complete = [cb = std::move(cb)](Time t, IoStatus) { cb(t); };
    layer.submit(std::move(b));
  }
};

TEST(Ncq, DepthOneMatchesLegacyBehaviour) {
  Rig r(1);
  EXPECT_TRUE(r.disk.can_accept());
  int done = 0;
  for (int i = 0; i < 10; ++i) r.submit(i * 100'000, Dir::kWrite, [&](Time) { ++done; });
  r.simr.run();
  EXPECT_EQ(done, 10);
}

TEST(Ncq, DeeperQueueAcceptsMore) {
  Rig r(4);
  // Submit while holding the layer's dispatch hot: the device should take
  // several requests before refusing.
  r.submit(0);
  r.submit(100'000'000);
  r.submit(200'000'000);
  // Depth 4: three in the device (one in service + two queued) still
  // leaves room for one more.
  EXPECT_TRUE(r.disk.can_accept());
  r.simr.run();
}

TEST(Ncq, AllRequestsCompleteAtAnyDepth) {
  for (int depth : {1, 2, 8, 32}) {
    Rig r(depth, SchedulerKind::kCfq);
    int done = 0;
    for (int i = 0; i < 60; ++i) {
      r.submit((i * 7919) % 1000 * 1'000'000, i % 2 ? Dir::kRead : Dir::kWrite,
               [&](Time) { ++done; });
    }
    r.simr.run();
    EXPECT_EQ(done, 60) << "depth " << depth;
    EXPECT_EQ(r.layer.in_flight(), 0u);
  }
}

TEST(Ncq, SatfReordersScatteredRequestsFaster) {
  // Under noop (no elevator help), an NCQ drive should finish a scattered
  // batch faster than a depth-1 drive: it reorders internally.
  auto elapsed_with = [](int depth) {
    Rig r(depth, SchedulerKind::kNoop);
    sim::Rng rng(7);
    for (int i = 0; i < 200; ++i) {
      r.submit(static_cast<disk::Lba>(rng.below(1'900'000'000)), Dir::kWrite);
    }
    r.simr.run();
    return r.simr.now();
  };
  EXPECT_LT(elapsed_with(16), elapsed_with(1) * 0.9);
}

TEST(LatencyProbe, RecordsPerDirection) {
  Rig r(1);
  metrics::LatencyProbe probe(r.layer);
  r.submit(1000, Dir::kRead);
  r.submit(500'000'000, Dir::kWrite);
  r.simr.run();
  EXPECT_EQ(probe.reads().size(), 1u);
  EXPECT_EQ(probe.writes().size(), 1u);
  EXPECT_EQ(probe.sync().size(), 1u);
  EXPECT_EQ(probe.all().size(), 2u);
  EXPECT_GT(probe.read_p50(), 0.0);
  EXPECT_GT(probe.write_p50(), 0.0);
}

TEST(LatencyProbe, QueueingInflatesLatency) {
  Rig r(1);
  metrics::LatencyProbe probe(r.layer);
  for (int i = 0; i < 50; ++i) r.submit(i * 10'000'000, Dir::kWrite);
  r.simr.run();
  // The last-completing requests waited behind dozens of seeks.
  EXPECT_GT(probe.writes().quantile(0.95), 5.0 * probe.writes().quantile(0.05));
}

TEST(LatencyProbe, PercentilesOrdered) {
  Rig r(1, SchedulerKind::kDeadline);
  metrics::LatencyProbe probe(r.layer);
  sim::Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    r.submit(static_cast<disk::Lba>(rng.below(1'000'000'000)),
             i % 2 ? Dir::kRead : Dir::kWrite);
  }
  r.simr.run();
  EXPECT_LE(probe.read_p50(), probe.read_p99());
  EXPECT_LE(probe.write_p50(), probe.write_p99());
}

}  // namespace
}  // namespace iosim::blk
