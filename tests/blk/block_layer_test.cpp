#include "blk/block_layer.hpp"

#include <gtest/gtest.h>

#include "blk/disk_device.hpp"

namespace iosim::blk {
namespace {

using namespace iosim::sim::literals;
using iosched::Dir;
using iosched::SchedulerKind;
using sim::Time;

struct Rig {
  sim::Simulator simr;
  DiskDevice disk;
  BlockLayer layer;

  explicit Rig(SchedulerKind k = SchedulerKind::kNoop, BlockLayerConfig cfg = {})
      : disk(simr, disk::DiskParams{}, 1),
        layer(simr, disk, [&cfg, k] {
          cfg.scheduler = k;
          return cfg;
        }()) {}

  void submit(disk::Lba lba, std::int64_t sectors, Dir dir, bool sync,
              std::uint64_t ctx, std::function<void(Time)> cb = {}) {
    Bio b;
    b.lba = lba;
    b.sectors = sectors;
    b.dir = dir;
    b.sync = sync;
    b.ctx = ctx;
    if (cb) b.on_complete = [cb = std::move(cb)](Time t, IoStatus) { cb(t); };
    layer.submit(std::move(b));
  }
};

TEST(BlockLayer, CompletesASingleBio) {
  Rig r;
  Time done;
  r.submit(1000, 512, Dir::kRead, true, 1, [&](Time t) { done = t; });
  r.simr.run();
  EXPECT_GT(done, Time::zero());
  EXPECT_EQ(r.layer.counters().bios_submitted, 1u);
  EXPECT_EQ(r.layer.counters().requests_completed, 1u);
  EXPECT_EQ(r.layer.counters().bytes_completed[0], 512 * disk::kSectorBytes);
}

TEST(BlockLayer, CompletesManyBios) {
  Rig r(SchedulerKind::kCfq);
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    r.submit(i * 1000, 256, i % 2 ? Dir::kRead : Dir::kWrite, i % 2 == 1,
             static_cast<std::uint64_t>(i % 3), [&](Time) { ++completed; });
  }
  r.simr.run();
  EXPECT_EQ(completed, 50);
  EXPECT_EQ(r.layer.in_flight(), 0u);
  EXPECT_EQ(r.layer.queued(), 0u);
}

TEST(BlockLayer, BackMergesAdjacentSequentialBios) {
  // Submit a burst of adjacent bios while the disk is busy with the first:
  // they must coalesce into fewer, larger requests.
  Rig r;
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    r.submit(1'000'000 + i * 64, 64, Dir::kWrite, false, 1, [&](Time) { ++completed; });
  }
  r.simr.run();
  EXPECT_EQ(completed, 8);
  EXPECT_GT(r.layer.counters().back_merges, 0u);
  EXPECT_LT(r.layer.counters().requests_dispatched, 8u);
}

TEST(BlockLayer, MergeRespectsMaxRequestSize) {
  BlockLayerConfig cfg;
  cfg.max_request_sectors = 128;
  Rig r(SchedulerKind::kNoop, cfg);
  for (int i = 0; i < 8; ++i) {
    r.submit(1'000'000 + i * 64, 64, Dir::kWrite, false, 1);
  }
  r.simr.run();
  // 8 x 64 sectors with a 128-sector cap: at least 4 requests.
  EXPECT_GE(r.layer.counters().requests_dispatched, 4u);
}

TEST(BlockLayer, NoMergeAcrossDirections) {
  Rig r;
  r.submit(1'000'000, 64, Dir::kWrite, false, 1);
  r.submit(1'000'064, 64, Dir::kRead, true, 1);  // adjacent but a read
  r.simr.run();
  EXPECT_EQ(r.layer.counters().back_merges, 0u);
}

TEST(BlockLayer, NoMergeAcrossContexts) {
  Rig r;
  r.submit(1'000'000, 64, Dir::kWrite, false, 1);
  r.submit(1'000'064, 64, Dir::kWrite, false, 2);
  r.submit(1'000'128, 64, Dir::kWrite, false, 2);
  r.simr.run();
  // Only the two ctx-2 bios may merge (the first is in flight immediately,
  // so even they may not; the ctx-1/ctx-2 boundary must never merge).
  EXPECT_LE(r.layer.counters().back_merges, 1u);
}

TEST(BlockLayer, MergedBiosAllComplete) {
  Rig r;
  std::vector<Time> done;
  for (int i = 0; i < 4; ++i) {
    r.submit(2'000'000 + i * 64, 64, Dir::kWrite, false, 1,
             [&](Time t) { done.push_back(t); });
  }
  r.simr.run();
  ASSERT_EQ(done.size(), 4u);
  // Bios merged into one request complete at the same instant.
  EXPECT_GE(done.back(), done.front());
}

TEST(BlockLayer, SwitchSchedulerPreservesRequests) {
  Rig r(SchedulerKind::kCfq);
  int completed = 0;
  for (int i = 0; i < 30; ++i) {
    r.submit(i * 5000, 128, Dir::kRead, true, static_cast<std::uint64_t>(i % 4),
             [&](Time) { ++completed; });
  }
  // Switch while the queue is full.
  r.simr.after(1_ms, [&] { r.layer.switch_scheduler(SchedulerKind::kDeadline); });
  r.simr.run();
  EXPECT_EQ(completed, 30);
  EXPECT_EQ(r.layer.scheduler_kind(), SchedulerKind::kDeadline);
  EXPECT_EQ(r.layer.counters().scheduler_switches, 1u);
}

TEST(BlockLayer, SwitchFreezesDispatchForTheQuiesceWindow) {
  BlockLayerConfig cfg;
  cfg.switch_freeze = 100_ms;
  Rig r(SchedulerKind::kNoop, cfg);
  Time first_done;
  r.simr.after(Time::zero(), [&] {
    r.layer.switch_scheduler(SchedulerKind::kNoop);  // same kind still freezes
    r.submit(1000, 8, Dir::kRead, true, 1, [&](Time t) { first_done = t; });
  });
  r.simr.run();
  EXPECT_GE(first_done, 100_ms);
}

TEST(BlockLayer, SwitchToEveryKindWorks) {
  Rig r(SchedulerKind::kNoop);
  int completed = 0;
  const SchedulerKind kinds[] = {SchedulerKind::kDeadline, SchedulerKind::kAnticipatory,
                                 SchedulerKind::kCfq, SchedulerKind::kNoop};
  for (int k = 0; k < 4; ++k) {
    r.simr.after(sim::Time::from_ms(k * 50), [&r, k, &kinds] {
      r.layer.switch_scheduler(kinds[k]);
    });
  }
  for (int i = 0; i < 40; ++i) {
    r.simr.after(sim::Time::from_ms(i * 5), [&r, i, &completed] {
      Bio b;
      b.lba = i * 3000;
      b.sectors = 64;
      b.dir = Dir::kRead;
      b.sync = true;
      b.ctx = 1;
      b.on_complete = [&completed](Time, IoStatus) { ++completed; };
      r.layer.submit(std::move(b));
    });
  }
  r.simr.run();
  EXPECT_EQ(completed, 40);
  EXPECT_EQ(r.layer.counters().scheduler_switches, 4u);
}

TEST(BlockLayer, ObserversSeeEveryCompletion) {
  Rig r;
  int observed = 0;
  std::int64_t observed_bytes = 0;
  r.layer.add_completion_observer([&](const blk::BlockLayer&, const iosched::Request& rq, Time) {
    ++observed;
    observed_bytes += rq.bytes();
  });
  for (int i = 0; i < 10; ++i) r.submit(i * 9000, 128, Dir::kWrite, false, 1);
  r.simr.run();
  EXPECT_EQ(static_cast<std::uint64_t>(observed), r.layer.counters().requests_completed);
  EXPECT_EQ(observed_bytes, 10 * 128 * disk::kSectorBytes);
}

TEST(BlockLayer, CompletionCallbackCanSubmitMore) {
  Rig r;
  int chain = 0;
  std::function<void(Time)> next = [&](Time) {
    if (++chain < 10) {
      r.submit(chain * 10'000, 64, Dir::kRead, true, 1, next);
    }
  };
  r.submit(0, 64, Dir::kRead, true, 1, next);
  r.simr.run();
  EXPECT_EQ(chain, 10);
}

TEST(BlockLayer, AnticipatoryIdleDoesNotDeadlock) {
  // A sync read completes, another context's request sits far away: the AS
  // layer idles, and the wakeup timer must eventually dispatch it.
  Rig r(SchedulerKind::kAnticipatory);
  int completed = 0;
  r.submit(1000, 8, Dir::kRead, true, 1, [&](Time) { ++completed; });
  r.simr.after(50_ms, [&] {
    r.submit(900'000'000, 8, Dir::kRead, true, 2, [&](Time) { ++completed; });
  });
  r.simr.run();
  EXPECT_EQ(completed, 2);
}

TEST(DiskDevice, ServicesOneRequestAtATime) {
  sim::Simulator simr;
  DiskDevice dev(simr, disk::DiskParams{}, 1);
  EXPECT_TRUE(dev.can_accept());
  iosched::Request rq;
  rq.lba = 0;
  rq.sectors = 512;
  rq.dir = Dir::kRead;
  bool completed = false;
  dev.set_on_complete([&](iosched::Request*, Time) { completed = true; });
  dev.submit(&rq, simr.now());
  EXPECT_FALSE(dev.can_accept());
  simr.run();
  EXPECT_TRUE(completed);
  EXPECT_TRUE(dev.can_accept());
}

TEST(BlockLayer, DispatchObserverSeesEveryDispatchWithLayerIdentity) {
  BlockLayerConfig cfg;
  cfg.name = "rig0";
  Rig r(SchedulerKind::kNoop, cfg);
  int dispatched = 0;
  std::string seen_name;
  r.layer.add_dispatch_observer(
      [&](const BlockLayer& l, const iosched::Request& rq, Time) {
        ++dispatched;
        seen_name = l.name();
        EXPECT_GE(rq.dispatch, rq.submit);
      });
  for (int i = 0; i < 10; ++i) r.submit(i * 9000, 128, Dir::kWrite, false, 1);
  r.simr.run();
  EXPECT_EQ(static_cast<std::uint64_t>(dispatched),
            r.layer.counters().requests_dispatched);
  EXPECT_EQ(seen_name, "rig0");
}

TEST(BlockLayer, RemovedObserverStopsReceivingEvents) {
  Rig r;
  int calls = 0;
  auto handle = r.layer.add_completion_observer(
      [&](const BlockLayer&, const iosched::Request&, Time) { ++calls; });
  r.submit(0, 64, Dir::kRead, true, 1);
  r.simr.run();
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(handle.active());
  EXPECT_TRUE(handle.remove());
  EXPECT_FALSE(handle.active());
  r.submit(64, 64, Dir::kRead, true, 1);
  r.simr.run();
  EXPECT_EQ(calls, 1);  // no delivery after removal
  EXPECT_FALSE(handle.remove());  // second remove is a no-op
}

TEST(BlockLayer, ObserverHandleOutlivingLayerIsSafe) {
  ObserverHandle handle;
  {
    Rig r;
    handle = r.layer.add_completion_observer(
        [](const BlockLayer&, const iosched::Request&, Time) {});
    EXPECT_TRUE(handle.active());
  }
  // Layer (and its observer list) destroyed: the handle must not touch
  // freed memory — remove() degrades to a no-op.
  EXPECT_FALSE(handle.active());
  EXPECT_FALSE(handle.remove());
}

}  // namespace
}  // namespace iosim::blk
