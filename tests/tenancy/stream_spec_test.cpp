// Grammar tests for the job-stream spec: all-or-nothing parsing with
// diagnostics, canonical round-tripping, and workload/policy name
// canonicalization (the same contracts ScenarioSpec and FaultPlan keep).
#include <gtest/gtest.h>

#include "tenancy/stream_spec.hpp"

namespace iosim::tenancy {
namespace {

TEST(StreamSpec, ParsesPoissonWithClassesAndPolicy) {
  std::string err;
  const auto s = StreamSpec::parse(
      "arrive,poisson,rate=0.02,jobs=8;"
      "class,name=batch,wl=sort,mb=16-64,alpha=1.2,weight=2,share=0.7,mix=3;"
      "class,name=ui,wl=wc,mb=8-8,prio=5,deadline=120,share=0.3;"
      "policy,fair",
      &err);
  ASSERT_TRUE(s.has_value()) << err;
  EXPECT_EQ(s->arrival, ArrivalKind::kPoisson);
  EXPECT_DOUBLE_EQ(s->rate_hz, 0.02);
  EXPECT_EQ(s->n_jobs, 8);
  EXPECT_EQ(s->job_count(), 8);
  EXPECT_EQ(s->policy, Policy::kFair);
  ASSERT_EQ(s->classes.size(), 2u);
  EXPECT_EQ(s->classes[0].name, "batch");
  EXPECT_EQ(s->classes[0].workload, "sort");
  EXPECT_EQ(s->classes[0].mb_min, 16);
  EXPECT_EQ(s->classes[0].mb_max, 64);
  EXPECT_DOUBLE_EQ(s->classes[0].alpha, 1.2);
  EXPECT_DOUBLE_EQ(s->classes[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(s->classes[0].share, 0.7);
  EXPECT_DOUBLE_EQ(s->classes[0].mix, 3.0);
  // "wc" canonicalizes to the model's own name.
  EXPECT_EQ(s->classes[1].workload, "wordcount");
  EXPECT_EQ(s->classes[1].priority, 5);
  EXPECT_DOUBLE_EQ(s->classes[1].deadline_s, 120.0);
}

TEST(StreamSpec, ParsesTraceArrivals) {
  std::string err;
  const auto s = StreamSpec::parse(
      "arrive,trace,t=0:5.5:30;class,name=a,wl=sort,mb=16-16", &err);
  ASSERT_TRUE(s.has_value()) << err;
  EXPECT_EQ(s->arrival, ArrivalKind::kTrace);
  ASSERT_EQ(s->trace_times_s.size(), 3u);
  EXPECT_DOUBLE_EQ(s->trace_times_s[1], 5.5);
  EXPECT_EQ(s->job_count(), 3);
  EXPECT_EQ(s->policy, Policy::kFifo);  // default
}

TEST(StreamSpec, CanonicalFormRoundTrips) {
  const auto s = StreamSpec::parse(
      "arrive,poisson,rate=0.05,jobs=4;"
      "class,name=x,wl=wcnc,mb=8-32,prio=1;policy,capacity");
  ASSERT_TRUE(s.has_value());
  const std::string canon = s->to_string();
  std::string err;
  const auto again = StreamSpec::parse(canon, &err);
  ASSERT_TRUE(again.has_value()) << err << " in: " << canon;
  EXPECT_EQ(again->to_string(), canon);
}

TEST(StreamSpec, RejectsMalformedInput) {
  const char* bad[] = {
      "",                                              // no segments
      "arrive,poisson,rate=0.02,jobs=8",               // no class
      "class,name=a,wl=sort,mb=16-16",                 // missing arrive
      "arrive,warp,jobs=3;class,name=a,wl=sort,mb=16-16",   // bad kind
      "arrive,poisson,rate=0,jobs=3;class,name=a,wl=sort,mb=16-16",   // rate=0
      "arrive,poisson,rate=0.1;class,name=a,wl=sort,mb=16-16",        // no jobs
      "arrive,trace,t=5:1;class,name=a,wl=sort,mb=16-16",             // unsorted
      "arrive,poisson,rate=0.1,jobs=2;class,name=a,wl=pig,mb=16-16",  // bad wl
      "arrive,poisson,rate=0.1,jobs=2;class,name=a,wl=sort,mb=32-16", // inverted
      "arrive,poisson,rate=0.1,jobs=2;class,name=a,wl=sort,mb=16-16;"
      "class,name=a,wl=wc,mb=8-8",                                    // dup name
      "arrive,poisson,rate=0.1,jobs=2;class,name=a,wl=sort,mb=16-16;"
      "policy,lottery",                                               // bad policy
      "arrive,poisson,rate=0.1,jobs=2;class,name=a,wl=sort,mb=16-16;"
      "policy,fifo;policy,fair",                                      // dup policy
      "arrive,poisson,rate=0.1,jobs=2;class,name=a,wl=sort,mb=16-16,share=1.5",
      "arrive,poisson,rate=0.1,jobs=2;class,name=a,wl=sort,mb=16-16,weight=0",
  };
  for (const char* text : bad) {
    std::string err;
    EXPECT_FALSE(StreamSpec::parse(text, &err).has_value()) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(StreamSpec, ParsesAdmitSegment) {
  std::string err;
  const auto s = StreamSpec::parse(
      "arrive,poisson,rate=0.02,jobs=8;"
      "class,name=a,wl=sort,mb=8-8;"
      "admit,active=4,queue=2,retries=1,backoff=7.5;"
      "policy,fifo",
      &err);
  ASSERT_TRUE(s.has_value()) << err;
  EXPECT_EQ(s->max_active, 4);
  EXPECT_EQ(s->max_queue, 2);
  EXPECT_EQ(s->job_retries, 1);
  EXPECT_DOUBLE_EQ(s->retry_backoff_s, 7.5);

  // Defaults when the segment is absent: gate disabled entirely.
  const auto d = StreamSpec::parse("arrive,poisson,jobs=2;class,name=a,wl=sort,mb=8-8");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->max_active, 0);
  EXPECT_EQ(d->job_retries, 0);
}

TEST(StreamSpec, AdmitSegmentRoundTrips) {
  const auto s = StreamSpec::parse(
      "arrive,poisson,rate=0.02,jobs=8;class,name=a,wl=sort,mb=8-8;"
      "admit,active=4,queue=2,retries=1,backoff=7.5");
  ASSERT_TRUE(s.has_value());
  const auto t = StreamSpec::parse(s->to_string());
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(s->to_string(), t->to_string());
  // A spec without the segment never emits one (keeps historical canonical
  // text byte-stable).
  const auto d = StreamSpec::parse("arrive,poisson,jobs=2;class,name=a,wl=sort,mb=8-8");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->to_string().find("admit"), std::string::npos);
}

TEST(StreamSpec, RejectsMalformedAdmitSegment) {
  std::string err;
  auto reject = [&](const char* text, const char* needle) {
    EXPECT_FALSE(StreamSpec::parse(text, &err).has_value()) << text;
    EXPECT_NE(err.find(needle), std::string::npos) << err;
  };
  const std::string base = "arrive,poisson,jobs=2;class,name=a,wl=sort,mb=8-8;";
  reject((base + "admit,queue=2").c_str(), "admit needs active=");
  reject((base + "admit,active=0").c_str(), "active must be a positive integer");
  reject((base + "admit,active=2,queue=-1").c_str(), "queue must be >= 0");
  reject((base + "admit,active=2,retries=-1").c_str(), "retries must be >= 0");
  reject((base + "admit,active=2,backoff=-3").c_str(), "backoff must be >= 0");
  reject((base + "admit,active=2,bogus=1").c_str(), "unknown admit key");
  reject((base + "admit,active=2;admit,active=3").c_str(), "duplicate admit segment");
}

TEST(StreamSpec, ParsesMetaSegment) {
  const auto s = StreamSpec::parse(
      "arrive,poisson,rate=0.02,jobs=8;class,name=a,wl=sort,mb=8-8;"
      "meta,policy=ucb,explore=0.7,decay=0.8,budget=6");
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->meta.enabled());
  EXPECT_EQ(s->meta.policy, MetaPolicy::kUcb);
  EXPECT_DOUBLE_EQ(s->meta.explore, 0.7);
  EXPECT_DOUBLE_EQ(s->meta.decay, 0.8);
  EXPECT_EQ(s->meta.budget, 6);
  // Canonical text round-trips, and defaults stay unrendered.
  const auto t = StreamSpec::parse(s->to_string());
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(s->to_string(), t->to_string());
  const auto d = StreamSpec::parse(
      "arrive,poisson,jobs=2;class,name=a,wl=sort,mb=8-8");
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->meta.enabled());
  EXPECT_EQ(d->to_string().find("meta"), std::string::npos);
}

TEST(StreamSpec, MetaStaticAndOfflineCarryTheirKeys) {
  const auto st = StreamSpec::parse(
      "arrive,poisson,jobs=2;class,name=a,wl=sort,mb=8-8;meta,policy=static,pair=ad");
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->meta.policy, MetaPolicy::kStatic);
  EXPECT_EQ(st->meta.pair, "ad");
  const auto off = StreamSpec::parse(
      "arrive,poisson,jobs=2;class,name=a,wl=sort,mb=8-8;meta,policy=offline,profile=a");
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(off->meta.policy, MetaPolicy::kOffline);
  EXPECT_EQ(off->meta.profile, "a");
}

TEST(StreamSpec, RejectsMalformedMetaSegment) {
  std::string err;
  auto reject = [&](const char* text, const char* needle) {
    EXPECT_FALSE(StreamSpec::parse(text, &err).has_value()) << text;
    EXPECT_NE(err.find(needle), std::string::npos) << err;
  };
  const std::string base = "arrive,poisson,jobs=2;class,name=a,wl=sort,mb=8-8;";
  reject((base + "meta,explore=1").c_str(), "meta needs policy=");
  reject((base + "meta,policy=magic").c_str(), "unknown meta policy");
  reject((base + "meta,policy=ucb,bogus=1").c_str(), "unknown meta key");
  reject((base + "meta,policy=ucb,pair=ad").c_str(), "only valid with policy=static");
  reject((base + "meta,policy=static,profile=a").c_str(),
         "only valid with policy=offline");
  reject((base + "meta,policy=offline,profile=zz").c_str(), "unknown class");
  reject((base + "meta,policy=static,pair=xy").c_str(), "bad meta pair");
  reject((base + "meta,policy=ucb;meta,policy=ucb").c_str(), "duplicate meta segment");
}

TEST(StreamSpec, PolicyNames) {
  EXPECT_EQ(policy_by_name("fifo"), Policy::kFifo);
  EXPECT_EQ(policy_by_name("fair"), Policy::kFair);
  EXPECT_EQ(policy_by_name("capacity"), Policy::kCapacity);
  EXPECT_FALSE(policy_by_name("rr").has_value());
  EXPECT_STREQ(to_string(Policy::kCapacity), "capacity");
}

}  // namespace
}  // namespace iosim::tenancy
