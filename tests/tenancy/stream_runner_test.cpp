// End-to-end stream-engine tests: same-seed byte-identical traces for an
// 8-job Poisson stream, policy distinctness, invariant-clean multi-job
// runs under the auditor, and SLA accounting.
#include <gtest/gtest.h>

#include <string>

#include "check/check.hpp"
#include "exp/artifact.hpp"
#include "tenancy/stream_runner.hpp"
#include "sim/random.hpp"
#include "trace/trace.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim::tenancy {
namespace {

StreamSpec eight_job_spec() {
  const auto s = StreamSpec::parse(
      "arrive,poisson,rate=0.05,jobs=8;"
      "class,name=batch,wl=sort,mb=8-24,weight=1,share=0.7,mix=3;"
      "class,name=ui,wl=wc,mb=8-8,prio=5,weight=4,share=0.3,deadline=300,mix=1;"
      "policy,fifo");
  EXPECT_TRUE(s.has_value());
  return *s;
}

cluster::ClusterConfig small_cluster(std::uint64_t seed) {
  cluster::ClusterConfig cfg;
  cfg.n_hosts = 2;
  cfg.vms_per_host = 2;
  cfg.seed = seed;
  return cfg;
}

/// Trace digest of one stream run (digests keep failure output small —
/// these traces run to tens of MB).
std::uint64_t traced_stream_digest(const StreamSpec& spec, std::uint64_t seed,
                                   StreamResult* out = nullptr) {
  trace::TraceSession session;
  const StreamResult r = run_stream(small_cluster(seed), spec);
  EXPECT_TRUE(r.ok) << r.error;
  if (out != nullptr) *out = r;
  return exp::fnv1a64(session.tracer().to_json());
}

TEST(StreamRunner, EightJobPoissonSameSeedIsByteIdentical) {
  const StreamSpec spec = eight_job_spec();
  StreamResult ra, rb;
  const std::uint64_t a = traced_stream_digest(spec, 11, &ra);
  const std::uint64_t b = traced_stream_digest(spec, 11, &rb);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ra.jobs_completed, 8);
  EXPECT_EQ(rb.makespan_s, ra.makespan_s);
  // A different seed must actually move the simulation.
  EXPECT_NE(a, traced_stream_digest(spec, 12));
}

TEST(StreamRunner, PoliciesProduceDistinctSchedules) {
  // Six simultaneous arrivals, three per class, on 8 map slots: with both
  // classes contending from t=0 the three policies must hand out slots
  // differently (prio 5 favors ui under FIFO, weight 4 under Fair, share
  // 0.7 favors batch under Capacity). The plan is built explicitly so the
  // class mix is pinned, not drawn.
  std::vector<ClassSpec> classes(2);
  classes[0].name = "batch";
  classes[0].workload = "sort";
  classes[0].share = 0.7;
  classes[1].name = "ui";
  classes[1].workload = "wordcount";
  classes[1].priority = 5;
  classes[1].weight = 4.0;
  classes[1].share = 0.3;

  std::uint64_t digest[3] = {};
  int i = 0;
  for (const Policy p : {Policy::kFifo, Policy::kFair, Policy::kCapacity}) {
    trace::TraceSession session;
    cluster::Cluster cl(small_cluster(11));
    std::vector<StreamRunner::PlannedEntry> plan;
    for (int j = 0; j < 6; ++j) {
      StreamRunner::PlannedEntry e;
      e.class_index = j % 2;
      const auto model = *workloads::by_name(classes[static_cast<std::size_t>(e.class_index)].workload);
      e.size_mb = e.class_index == 0 ? 12 : 8;
      e.conf = workloads::make_job(model, e.size_mb * mapred::kMiB);
      e.seed = sim::derive_run_seed(11, kJobSeedBase + static_cast<std::uint64_t>(j));
      plan.push_back(std::move(e));
    }
    StreamRunner::Options opts;
    opts.policy = p;
    opts.classes = classes;
    StreamRunner sr(cl, std::move(plan), std::move(opts));
    sr.start();
    cl.simr().run();
    const StreamResult r = sr.finish();
    EXPECT_TRUE(r.ok) << to_string(p) << ": " << r.error;
    EXPECT_EQ(r.jobs_completed, 6) << to_string(p);
    digest[i++] = exp::fnv1a64(session.tracer().to_json());
  }
  EXPECT_NE(digest[0], digest[1]);
  EXPECT_NE(digest[0], digest[2]);
  EXPECT_NE(digest[1], digest[2]);
}

TEST(StreamRunner, MultiJobRunIsInvariantClean) {
  check::AuditorSession cs(check::Auditor::Mode::kRecord);
  const StreamResult r = run_stream(small_cluster(11), eight_job_spec());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.jobs_completed, 8);
  EXPECT_TRUE(cs.auditor().ok()) << cs.auditor().report().to_string();
}

TEST(StreamRunner, RecordsSojournAndClassAggregates) {
  const StreamSpec spec = eight_job_spec();
  StreamResult r;
  traced_stream_digest(spec, 11, &r);
  ASSERT_EQ(r.jobs.size(), 8u);
  int by_class[2] = {0, 0};
  for (const StreamJobRecord& j : r.jobs) {
    EXPECT_TRUE(j.completed);
    EXPECT_GT(j.sojourn_s, 0.0);
    EXPECT_DOUBLE_EQ(j.t_done_s - j.t_arrive_s, j.sojourn_s);
    ASSERT_TRUE(j.class_index == 0 || j.class_index == 1);
    ++by_class[j.class_index];
  }
  ASSERT_EQ(r.classes.size(), 2u);
  EXPECT_EQ(r.classes[0].name, "batch");
  EXPECT_EQ(r.classes[1].name, "ui");
  EXPECT_EQ(r.classes[0].jobs, by_class[0]);
  EXPECT_EQ(r.classes[1].jobs, by_class[1]);
  for (const ClassOutcome& c : r.classes) {
    if (c.completed == 0) continue;
    EXPECT_GT(c.p50_s, 0.0);
    EXPECT_LE(c.p50_s, c.p95_s);
    EXPECT_LE(c.p95_s, c.p99_s);
    EXPECT_GT(c.mean_s, 0.0);
  }
  EXPECT_GT(r.makespan_s, 0.0);
}

TEST(StreamRunner, TightDeadlinesAreFlaggedAsSlaViolations) {
  const auto spec = StreamSpec::parse(
      "arrive,trace,t=0:1;"
      "class,name=rush,wl=wc,mb=8-8,deadline=0.001");
  ASSERT_TRUE(spec.has_value());
  const StreamResult r = run_stream(small_cluster(5), *spec);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.jobs_completed, 2);
  // No MapReduce job finishes in a millisecond: both jobs blow the SLA.
  EXPECT_EQ(r.sla_violations, 2);
  ASSERT_EQ(r.classes.size(), 1u);
  EXPECT_EQ(r.classes[0].sla_violations, 2);
  for (const StreamJobRecord& j : r.jobs) EXPECT_TRUE(j.sla_violated);
}

TEST(StreamRunner, TenancyMilestonesAreTraced) {
  trace::TraceSession session;
  const StreamResult r = run_stream(small_cluster(11), eight_job_spec());
  EXPECT_TRUE(r.ok) << r.error;
  const std::string json = session.tracer().to_json();
  EXPECT_NE(json.find("\"tenancy\""), std::string::npos);
  EXPECT_NE(json.find("\"job_admit\""), std::string::npos);
  EXPECT_NE(json.find("\"job_done\""), std::string::npos);
}

}  // namespace
}  // namespace iosim::tenancy
