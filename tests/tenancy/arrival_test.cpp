// Planner tests: the arrival plan is a pure function of (spec, seed), size
// samples respect the class bounds, and the bounded-Pareto sampler hits its
// endpoints and stays monotone.
#include <gtest/gtest.h>

#include "tenancy/arrival.hpp"

namespace iosim::tenancy {
namespace {

StreamSpec two_class_poisson() {
  const auto s = StreamSpec::parse(
      "arrive,poisson,rate=0.05,jobs=32;"
      "class,name=a,wl=sort,mb=8-64,mix=3;"
      "class,name=b,wl=wc,mb=16-16,mix=1");
  EXPECT_TRUE(s.has_value());
  return *s;
}

TEST(Arrival, PlanIsDeterministicPerSeed) {
  const StreamSpec spec = two_class_poisson();
  const auto a = plan_arrivals(spec, 42);
  const auto b = plan_arrivals(spec, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_arrive_s, b[i].t_arrive_s) << i;  // bitwise, not approx
    EXPECT_EQ(a[i].class_index, b[i].class_index) << i;
    EXPECT_EQ(a[i].size_mb, b[i].size_mb) << i;
  }
  const auto c = plan_arrivals(spec, 43);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].t_arrive_s != c[i].t_arrive_s ||
               a[i].size_mb != c[i].size_mb;
  }
  EXPECT_TRUE(any_diff) << "seed does not reach the planner";
}

TEST(Arrival, PoissonPlanShape) {
  const StreamSpec spec = two_class_poisson();
  const auto plan = plan_arrivals(spec, 7);
  ASSERT_EQ(plan.size(), 32u);
  double prev = -1.0;
  bool saw_a = false, saw_b = false;
  for (const PlannedJob& j : plan) {
    EXPECT_GT(j.t_arrive_s, prev);  // strictly increasing (exponential gaps)
    prev = j.t_arrive_s;
    ASSERT_TRUE(j.class_index == 0 || j.class_index == 1);
    if (j.class_index == 0) {
      saw_a = true;
      EXPECT_GE(j.size_mb, 8);
      EXPECT_LE(j.size_mb, 64);
    } else {
      saw_b = true;
      EXPECT_EQ(j.size_mb, 16);  // pinned when mb_min == mb_max
    }
  }
  // With mix 3:1 over 32 draws both classes all-one-way is (3/4)^32-level
  // unlikely; a deterministic seed makes this a fixed fact, not a flake.
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(Arrival, TraceArrivalsAreVerbatim) {
  const auto spec = StreamSpec::parse(
      "arrive,trace,t=0:2.5:2.5:100;class,name=a,wl=sort,mb=32-32");
  ASSERT_TRUE(spec.has_value());
  const auto plan = plan_arrivals(*spec, 9);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_DOUBLE_EQ(plan[0].t_arrive_s, 0.0);
  EXPECT_DOUBLE_EQ(plan[1].t_arrive_s, 2.5);
  EXPECT_DOUBLE_EQ(plan[2].t_arrive_s, 2.5);  // simultaneous arrivals allowed
  EXPECT_DOUBLE_EQ(plan[3].t_arrive_s, 100.0);
  for (const PlannedJob& j : plan) EXPECT_EQ(j.size_mb, 32);
}

TEST(Arrival, BoundedParetoEndpointsAndMonotonicity) {
  // pow() roundoff keeps the endpoints within an ulp or two, not exact.
  EXPECT_NEAR(bounded_pareto(0.0, 8.0, 64.0, 1.5), 8.0, 1e-9);
  EXPECT_NEAR(bounded_pareto(1.0, 8.0, 64.0, 1.5), 64.0, 1e-9);
  double prev = 0.0;
  for (int i = 0; i <= 100; ++i) {
    const double v = bounded_pareto(i / 100.0, 8.0, 64.0, 1.5);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, 8.0 - 1e-9);
    EXPECT_LE(v, 64.0 + 1e-9);
    prev = v;
  }
  // Heavy tail: the median sits well below the arithmetic midpoint.
  EXPECT_LT(bounded_pareto(0.5, 8.0, 64.0, 1.5), 36.0);
}

}  // namespace
}  // namespace iosim::tenancy
