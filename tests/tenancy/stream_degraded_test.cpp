// Degraded-capacity stream tests: SLA edge cases of the strict-deadline
// predicate, overload shedding through the admission gate (shed-before-
// admission is accounted separately from failed-after-admission), and the
// acceptance scenario for the self-healing membership layer — a host
// crashing permanently mid-stream while every non-shed job still completes,
// with zero lost blocks and byte-identical same-seed repeats.
#include <gtest/gtest.h>

#include <string>

#include "check/check.hpp"
#include "exp/artifact.hpp"
#include "fault/fault_plan.hpp"
#include "tenancy/stream_runner.hpp"
#include "trace/trace.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim::tenancy {
namespace {

cluster::ClusterConfig degraded_cluster(std::uint64_t seed) {
  cluster::ClusterConfig cfg;
  cfg.n_hosts = 4;
  cfg.vms_per_host = 2;
  cfg.seed = seed;
  std::string err;
  // Host 3 (VMs 6 and 7) dies for good mid-stream.
  const auto plan = fault::FaultPlan::parse("hostcrash:host=3,from=40", &err);
  EXPECT_TRUE(plan.has_value()) << err;
  cfg.faults = plan.value_or(fault::FaultPlan{});
  return cfg;
}

StreamSpec degraded_spec() {
  const auto s = StreamSpec::parse(
      "arrive,poisson,rate=0.05,jobs=6;"
      "class,name=batch,wl=sort,mb=8-24,share=0.7,mix=3;"
      "class,name=ui,wl=wc,mb=8-8,prio=5,share=0.3,deadline=300,mix=1;"
      "admit,active=3,queue=3,retries=2,backoff=5;"
      "policy,fifo");
  EXPECT_TRUE(s.has_value());
  return *s;
}

TEST(SlaPredicate, DeadlineEdgeCases) {
  // A sojourn exactly at the deadline is on time — the predicate is strict.
  EXPECT_FALSE(sla_violated(/*failed=*/false, 300.0, 300.0));
  EXPECT_TRUE(sla_violated(/*failed=*/false, 300.0 + 1e-9, 300.0));
  EXPECT_FALSE(sla_violated(/*failed=*/false, 299.9, 300.0));
  // A failed job with a deadline always violates; without one, never.
  EXPECT_TRUE(sla_violated(/*failed=*/true, 0.0, 300.0));
  EXPECT_FALSE(sla_violated(/*failed=*/true, 1e9, 0.0));
  EXPECT_FALSE(sla_violated(/*failed=*/false, 1e9, 0.0));
}

TEST(StreamOverload, GateShedsLowestClassNewestFirst) {
  // Four simultaneous arrivals against active=1, queue=1: the first job
  // takes the gate, one waiter fits, and each further arrival forces the
  // lowest-priority (tie: newest) waiter out. Classes are pinned by
  // building the plan explicitly.
  std::vector<ClassSpec> classes(2);
  classes[0].name = "hi";
  classes[0].workload = "wordcount";
  classes[0].priority = 5;
  classes[1].name = "lo";
  classes[1].workload = "wordcount";
  classes[1].priority = 0;

  cluster::ClusterConfig cfg;
  cfg.n_hosts = 2;
  cfg.vms_per_host = 2;
  cfg.seed = 11;
  cluster::Cluster cl(cfg);
  std::vector<StreamRunner::PlannedEntry> plan;
  for (int j = 0; j < 4; ++j) {
    StreamRunner::PlannedEntry e;
    e.class_index = j < 2 ? 0 : 1;  // two hi arrivals, then two lo
    e.size_mb = 8;
    e.conf = workloads::make_job(*workloads::by_name("wordcount"),
                                 8 * mapred::kMiB);
    e.seed = sim::derive_run_seed(11, kJobSeedBase + static_cast<std::uint64_t>(j));
    plan.push_back(std::move(e));
  }
  StreamRunner::Options opts;
  opts.classes = classes;
  opts.max_active = 1;
  opts.max_queue = 1;
  check::AuditorSession cs(check::Auditor::Mode::kRecord);
  StreamRunner sr(cl, std::move(plan), std::move(opts));
  sr.start();
  cl.simr().run();
  const StreamResult r = sr.finish();
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(cs.auditor().ok()) << cs.auditor().report().to_string();

  // Both lo-class jobs were shed; both hi-class jobs ran to completion.
  EXPECT_EQ(r.jobs_completed, 2);
  EXPECT_EQ(r.jobs_shed, 2);
  EXPECT_EQ(r.jobs_failed, 0);
  ASSERT_EQ(r.jobs.size(), 4u);
  EXPECT_TRUE(r.jobs[0].completed);
  EXPECT_TRUE(r.jobs[1].completed);
  for (int j : {2, 3}) {
    EXPECT_TRUE(r.jobs[static_cast<std::size_t>(j)].shed) << j;
    // Shed-before-admission is its own outcome: never failed, never an SLA
    // violation, and accounted in the per-class shed column, not failed.
    EXPECT_FALSE(r.jobs[static_cast<std::size_t>(j)].failed);
    EXPECT_FALSE(r.jobs[static_cast<std::size_t>(j)].sla_violated);
  }
  ASSERT_EQ(r.classes.size(), 2u);
  EXPECT_EQ(r.classes[0].shed, 0);
  EXPECT_EQ(r.classes[1].shed, 2);
  EXPECT_EQ(r.classes[1].failed, 0);
}

TEST(StreamDegraded, HostCrashMidStreamCompletesEveryNonShedJob) {
  check::AuditorSession cs(check::Auditor::Mode::kRecord);
  trace::TraceSession session;
  const StreamResult r = run_stream(degraded_cluster(7), degraded_spec());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(cs.auditor().ok()) << cs.auditor().report().to_string();

  // Losing a quarter of the cluster must cost capacity, not data or jobs:
  // every job either completed or was explicitly shed by the gate, the dead
  // host's replicas were re-replicated, and none were lost.
  for (const StreamJobRecord& j : r.jobs) {
    EXPECT_TRUE(j.completed || j.shed)
        << "job " << j.job_id << " neither completed nor shed";
  }
  EXPECT_EQ(r.jobs_failed, 0);
  EXPECT_GT(r.blocks_repaired, 0);
  EXPECT_EQ(r.blocks_lost, 0);
  EXPECT_GT(r.repair_mb, 0.0);

  // The membership story is in the trace for iosim-report to render.
  const std::string json = session.tracer().to_json();
  EXPECT_NE(json.find("\"membership\""), std::string::npos);
  EXPECT_NE(json.find("tt_dead"), std::string::npos);
  EXPECT_NE(json.find("blk_repair"), std::string::npos);
}

TEST(StreamDegraded, FreedSlotOnBlacklistedVmNeverReused) {
  // Soak-found regression (seed 9, config 13, minimized): transient I/O
  // errors strike a VM onto the blacklist while a reducer is still running
  // there; when that reducer finishes, the freed slot must NOT launch a
  // queued reducer on the now-blacklisted VM. The armed auditor's
  // membership-placement invariant is the oracle.
  check::AuditorSession cs(check::Auditor::Mode::kRecord);
  cluster::ClusterConfig cfg;
  cfg.n_hosts = 2;
  cfg.vms_per_host = 3;
  cfg.seed = 1736549604911017878ull;
  cfg.pair = {iosched::SchedulerKind::kNoop, iosched::SchedulerKind::kDeadline};
  std::string err;
  const auto plan = fault::FaultPlan::parse("transient:host=1,p=0.0090", &err);
  ASSERT_TRUE(plan.has_value()) << err;
  cfg.faults = *plan;
  const auto spec = StreamSpec::parse(
      "arrive,poisson,rate=0.184925,jobs=4;"
      "class,name=c0,wl=sort,mb=8-15,prio=0,share=0.584335;"
      "class,name=c1,wl=sort,mb=11-11,prio=1,share=0.415665;"
      "policy,capacity",
      &err);
  ASSERT_TRUE(spec.has_value()) << err;
  const StreamResult r = run_stream(cfg, *spec);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(cs.auditor().ok()) << cs.auditor().report().to_string();
}

TEST(StreamDegraded, SameSeedHostCrashStreamIsByteIdentical) {
  auto digest = [](std::uint64_t seed) {
    trace::TraceSession session;
    const StreamResult r = run_stream(degraded_cluster(seed), degraded_spec());
    EXPECT_TRUE(r.ok) << r.error;
    return exp::fnv1a64(session.tracer().to_json());
  };
  const std::uint64_t a = digest(7);
  EXPECT_EQ(a, digest(7));
  EXPECT_NE(a, digest(8));
}

}  // namespace
}  // namespace iosim::tenancy
