// Hand-computed slot-entitlement tests for the three JobTracker policies.
// Every expectation below is worked out on paper against the documented
// semantics (FIFO greedy by priority/arrival, Fair weighted max-min
// water-fill, Capacity guaranteed class shares plus borrowing), so a
// regression in compute_grants cannot hide behind an end-to-end run.
#include <gtest/gtest.h>

#include "tenancy/policy.hpp"

namespace iosim::tenancy {
namespace {

// 2 VMs x 2 map slots = 4 cluster-wide map slots in every scenario below.
constexpr int kVms = 2;
constexpr int kMapSlots = 2;
constexpr int kReduceSlots = 2;

PolicyArbiter::DemandFn demand(int maps, int reduces = 0) {
  return [maps, reduces](bool reduce) { return reduce ? reduces : maps; };
}

TEST(FifoPolicy, FirstArrivalTakesAllThenRemainder) {
  PolicyArbiter arb(Policy::kFifo, kVms, kMapSlots, kReduceSlots);
  arb.admit(0, 0, /*priority=*/0, 1.0, /*order=*/0, demand(3));
  arb.admit(1, 0, /*priority=*/0, 1.0, /*order=*/1, demand(3));
  // 4 slots: job 0 wants 3 and takes 3; job 1 gets the 1 left over.
  EXPECT_EQ(arb.quota(0, false), 3);
  EXPECT_EQ(arb.quota(1, false), 1);
}

TEST(FifoPolicy, PriorityOverridesArrival) {
  PolicyArbiter arb(Policy::kFifo, kVms, kMapSlots, kReduceSlots);
  arb.admit(0, 0, /*priority=*/0, 1.0, /*order=*/0, demand(3));
  arb.admit(1, 0, /*priority=*/5, 1.0, /*order=*/1, demand(3));
  EXPECT_EQ(arb.quota(1, false), 3);
  EXPECT_EQ(arb.quota(0, false), 1);
}

TEST(FifoPolicy, QuotaNeverBelowDemandCap) {
  PolicyArbiter arb(Policy::kFifo, kVms, kMapSlots, kReduceSlots);
  arb.admit(0, 0, 0, 1.0, 0, demand(1));
  arb.admit(1, 0, 0, 1.0, 1, demand(10));
  // Job 0 only wants 1; the other 3 flow to job 1 (work conservation).
  EXPECT_EQ(arb.quota(0, false), 1);
  EXPECT_EQ(arb.quota(1, false), 3);
}

TEST(FairPolicy, EqualWeightsSplitEvenly) {
  PolicyArbiter arb(Policy::kFair, kVms, kMapSlots, kReduceSlots);
  arb.admit(0, 0, 0, /*weight=*/1.0, 0, demand(4));
  arb.admit(1, 0, 0, /*weight=*/1.0, 1, demand(4));
  EXPECT_EQ(arb.quota(0, false), 2);
  EXPECT_EQ(arb.quota(1, false), 2);
}

TEST(FairPolicy, WeightsThreeToOne) {
  PolicyArbiter arb(Policy::kFair, kVms, kMapSlots, kReduceSlots);
  arb.admit(0, 0, 0, /*weight=*/3.0, 0, demand(4));
  arb.admit(1, 0, 0, /*weight=*/1.0, 1, demand(4));
  // Water-fill trace for 4 slots: (0,0) -> A(tie by order) -> compare
  // 1/3 vs 0/1 -> B -> 1/3 vs 1/1 -> A -> 2/3 vs 1/1 -> A. Final 3:1.
  EXPECT_EQ(arb.quota(0, false), 3);
  EXPECT_EQ(arb.quota(1, false), 1);
}

TEST(FairPolicy, UnusedShareSpillsToTheHungry) {
  PolicyArbiter arb(Policy::kFair, kVms, kMapSlots, kReduceSlots);
  arb.admit(0, 0, 0, 1.0, 0, demand(1));
  arb.admit(1, 0, 0, 1.0, 1, demand(6));
  EXPECT_EQ(arb.quota(0, false), 1);
  EXPECT_EQ(arb.quota(1, false), 3);
}

TEST(CapacityPolicy, GuaranteedSharesHold) {
  PolicyArbiter arb(Policy::kCapacity, kVms, kMapSlots, kReduceSlots);
  arb.set_class_shares({0.75, 0.25});
  arb.admit(0, /*class=*/0, 0, 1.0, 0, demand(4));
  arb.admit(1, /*class=*/1, 0, 1.0, 1, demand(4));
  // floor(0.75*4)=3 and floor(0.25*4)=1; both classes saturate their
  // guarantee and nothing is left to borrow.
  EXPECT_EQ(arb.quota(0, false), 3);
  EXPECT_EQ(arb.quota(1, false), 1);
}

TEST(CapacityPolicy, IdleGuaranteeIsBorrowed) {
  PolicyArbiter arb(Policy::kCapacity, kVms, kMapSlots, kReduceSlots);
  arb.set_class_shares({0.75, 0.25});
  arb.admit(0, /*class=*/0, 0, 1.0, 0, demand(1));
  arb.admit(1, /*class=*/1, 0, 1.0, 1, demand(4));
  // Class 0 uses 1 of its guaranteed 3; class 1 takes its 1 and borrows
  // the 2 idle ones.
  EXPECT_EQ(arb.quota(0, false), 1);
  EXPECT_EQ(arb.quota(1, false), 3);
}

TEST(CapacityPolicy, AllZeroSharesMeanEqualSplit) {
  PolicyArbiter arb(Policy::kCapacity, kVms, kMapSlots, kReduceSlots);
  arb.set_class_shares({0.0, 0.0});
  arb.admit(0, 0, 0, 1.0, 0, demand(4));
  arb.admit(1, 1, 0, 1.0, 1, demand(4));
  EXPECT_EQ(arb.quota(0, false), 2);
  EXPECT_EQ(arb.quota(1, false), 2);
}

TEST(PolicyArbiter, QuotaCoversHeldSlotsEvenWithoutDemand) {
  PolicyArbiter arb(Policy::kFair, kVms, kMapSlots, kReduceSlots);
  arb.admit(0, 0, 0, 1.0, 0, demand(2));
  arb.admit(1, 0, 0, 1.0, 1, demand(2));
  ASSERT_TRUE(arb.can_acquire_map(0, 0));
  arb.acquire_map(0, 0);
  ASSERT_TRUE(arb.can_acquire_map(0, 0));
  arb.acquire_map(0, 0);
  // Job 0 now holds 2 with zero pending; grants never drop below holdings.
  EXPECT_EQ(arb.held(0, false), 2);
  EXPECT_GE(arb.quota(0, false), 2);
  EXPECT_EQ(arb.in_use(0, false), 2);
  // VM 0's two map slots are gone; job 1 must place on VM 1.
  EXPECT_FALSE(arb.can_acquire_map(1, 0));
  EXPECT_TRUE(arb.can_acquire_map(1, 1));
}

TEST(PolicyArbiter, RetiredJobReleasesLeakedSlots) {
  PolicyArbiter arb(Policy::kFifo, kVms, kMapSlots, kReduceSlots);
  arb.admit(0, 0, 0, 1.0, 0, demand(2, 1));
  arb.acquire_map(0, 0);
  arb.acquire_reduce(0, 1);
  bool released = false;
  arb.on_release = [&released] { released = true; };
  arb.retire_job(0);  // job died between acquire and release
  EXPECT_TRUE(released);
  EXPECT_EQ(arb.held(0, false), 0);
  EXPECT_EQ(arb.held(0, true), 0);
  EXPECT_EQ(arb.in_use(0, false), 0);
  EXPECT_EQ(arb.in_use(1, true), 0);
  EXPECT_FALSE(arb.can_acquire_map(0, 0));  // dead jobs acquire nothing
  arb.retire_job(0);                        // idempotent
}

TEST(PolicyArbiter, RetireReleasesOnTheVmsActuallyHeld) {
  // Found by iosim-soak: the old greedy drain decremented whatever VM had a
  // nonzero count, corrupting a survivor's VM when the dead job's slots
  // lived elsewhere.
  PolicyArbiter arb(Policy::kFifo, kVms, kMapSlots, kReduceSlots);
  arb.admit(0, 0, 0, 1.0, 0, demand(2, 1));
  arb.admit(1, 0, 0, 1.0, 1, demand(2));
  arb.acquire_map(1, 0);     // survivor holds vm0
  arb.acquire_map(0, 1);     // dying job holds vm1 only
  arb.acquire_reduce(0, 1);
  arb.retire_job(0);
  EXPECT_EQ(arb.in_use(0, false), 1);  // survivor's slot untouched
  EXPECT_EQ(arb.in_use(1, false), 0);
  EXPECT_EQ(arb.in_use(1, true), 0);
  EXPECT_EQ(arb.held(0, false), 0);
}

TEST(PolicyArbiter, ReducePlaneIsIndependent) {
  PolicyArbiter arb(Policy::kFifo, kVms, kMapSlots, kReduceSlots);
  arb.admit(0, 0, 0, 1.0, 0, demand(/*maps=*/4, /*reduces=*/1));
  arb.admit(1, 0, 0, 1.0, 1, demand(/*maps=*/0, /*reduces=*/4));
  EXPECT_EQ(arb.quota(0, false), 4);
  EXPECT_EQ(arb.quota(1, false), 0);
  EXPECT_EQ(arb.quota(0, true), 1);
  EXPECT_EQ(arb.quota(1, true), 3);
}

}  // namespace
}  // namespace iosim::tenancy
