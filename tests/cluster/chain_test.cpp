#include "cluster/chain_runner.hpp"

#include <gtest/gtest.h>

#include "core/meta_scheduler.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim::cluster {
namespace {

ClusterConfig tiny() {
  ClusterConfig cfg;
  cfg.n_hosts = 2;
  cfg.vms_per_host = 2;
  return cfg;
}

std::vector<mapred::JobConf> small_chain(int k = 2) {
  std::vector<mapred::JobConf> confs;
  for (int i = 0; i < k; ++i) {
    confs.push_back(workloads::make_job(workloads::stream_sort(), 64 * mapred::kMiB));
  }
  return confs;
}

TEST(ChainRunner, RunsJobsBackToBack) {
  const auto r = run_job_chain(tiny(), small_chain(3));
  ASSERT_EQ(r.jobs.size(), 3u);
  EXPECT_GT(r.seconds, 0.0);
  // Strict ordering: job k+1 starts after job k ends.
  for (std::size_t i = 1; i < r.jobs.size(); ++i) {
    EXPECT_GE(r.jobs[i].t_start, r.jobs[i - 1].t_done);
  }
  EXPECT_NEAR(r.seconds, r.jobs.back().t_done.sec(), 1e-9);
}

TEST(ChainRunner, SingleJobChainMatchesPlainRun) {
  const auto chain = run_job_chain(tiny(), small_chain(1));
  const auto plain = run_job(tiny(), small_chain(1)[0]);
  EXPECT_NEAR(chain.seconds, plain.seconds, 1e-9);
}

TEST(ChainRunner, SetupHookSeesEveryJob) {
  std::vector<int> indices;
  (void)run_job_chain(tiny(), small_chain(3),
                      [&](Cluster&, mapred::Job&, int idx) { indices.push_back(idx); });
  EXPECT_EQ(indices, (std::vector<int>{0, 1, 2}));
}

TEST(ChainRunner, MixedWorkloadsComplete) {
  std::vector<mapred::JobConf> confs = {
      workloads::make_job(workloads::wordcount(), 64 * mapred::kMiB),
      workloads::make_job(workloads::stream_sort(), 64 * mapred::kMiB),
  };
  const auto r = run_job_chain(tiny(), confs);
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_GT(r.jobs[1].t_done, r.jobs[0].t_done);
}

TEST(ChainRunner, AveragingIsDeterministic) {
  const auto a = run_job_chain_avg(tiny(), small_chain(2), 2);
  const auto b = run_job_chain_avg(tiny(), small_chain(2), 2);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(ChainExperiment, ProfileHasTwoPhasesPerJob) {
  const auto exp = core::make_chain_experiment(tiny(), small_chain(3));
  EXPECT_EQ(exp.phases, 6);
  const auto e = exp.profile(iosched::kDefaultPair);
  ASSERT_EQ(e.phase_seconds.size(), 6u);
  double sum = 0;
  for (double p : e.phase_seconds) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, e.total_seconds, e.total_seconds * 0.01);
}

TEST(ChainExperiment, ExecuteAppliesSwitches) {
  const auto exp = core::make_chain_experiment(tiny(), small_chain(2));
  core::PairSchedule sched;
  sched.phases.assign(4, std::nullopt);
  sched.phases[0] = iosched::kDefaultPair;
  sched.phases[2] = iosched::SchedulerPair{iosched::SchedulerKind::kDeadline,
                                           iosched::SchedulerKind::kDeadline};
  const auto r = exp.execute(sched);
  EXPECT_GT(r.seconds, 0.0);
  // A schedule with an extra switch can't be faster than... actually it
  // may be, if the pair is better; just check both execute paths work.
  const auto plain = exp.execute(core::PairSchedule::single(iosched::kDefaultPair, 4));
  EXPECT_GT(plain.seconds, 0.0);
}

TEST(ChainMetaScheduler, OptimizesSixPhaseSpace) {
  core::MetaSchedulerOptions opts;
  core::MetaScheduler ms(core::make_chain_experiment(tiny(), small_chain(3)), opts);
  const auto r = ms.optimize();
  EXPECT_EQ(r.solution.count(), 6);
  EXPECT_GT(r.adaptive_seconds, 0.0);
  // The P x S bound the paper argues for.
  EXPECT_LE(r.heuristic_evaluations, 6 * 16);
  EXPECT_LE(r.adaptive_seconds, r.best_single_seconds * 1.001);
}

}  // namespace
}  // namespace iosim::cluster
