// Byte-identity guard for the event-loop refactor: a seeded Fig.-2-style
// run must produce a byte-identical trace before and after any hot-path
// change. The expected value below is the FNV-1a 64 digest of the trace
// JSON produced by the pre-refactor simulator (binary std::priority_queue +
// tombstone set, std::function callbacks) — the indexed-heap/EventFn
// rewrite must reproduce it bit for bit, because event *identity* (ids,
// pool slots) is allowed to change but event *order and timing* is not.
//
// If this test ever fails, the event loop reordered same-seed work — that
// is a correctness bug, not a baseline to refresh. Only an intentional
// change to the trace format or to the simulated models may update the
// constant (and must say so in its commit).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "cluster/chain_runner.hpp"
#include "cluster/runner.hpp"
#include "exp/artifact.hpp"
#include "trace/trace.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim {
namespace {

/// FNV-1a 64 of the trace JSON of run_trace_digest_run() on the
/// pre-refactor event loop (commit 51e067b).
inline constexpr std::uint64_t kPreRefactorTraceDigest = 0x625ba9238ba4a87cULL;

/// FNV-1a 64 of a seeded three-job chain's trace, captured on the
/// dedicated chain runner immediately before it was rehosted onto
/// tenancy::StreamRunner's sequential mode. Same contract as above: the
/// stream engine may restructure the sequencing code, but a chained run's
/// event order and timing must not move by a byte.
inline constexpr std::uint64_t kPreStreamChainDigest = 0x12b0952ebf45d35cULL;

std::string traced_run_json() {
  trace::TraceSession session;
  cluster::ClusterConfig cfg;
  cfg.n_hosts = 2;
  cfg.vms_per_host = 2;
  cfg.seed = 7;
  const auto jc = workloads::make_job(workloads::wordcount(), 32 * mapred::kMiB);
  const auto rr = cluster::run_job(cfg, jc);
  EXPECT_FALSE(rr.failed) << rr.failure;
  return session.tracer().to_json();
}

TEST(TraceDigest, SeededRunMatchesPreRefactorDigest) {
  const std::string json = traced_run_json();
  const std::uint64_t digest = exp::fnv1a64(json);
  EXPECT_EQ(digest, kPreRefactorTraceDigest)
      << "trace digest changed: 0x" << std::hex << digest << std::dec
      << " (json bytes: " << json.size() << ")";
}

TEST(TraceDigest, SameSeedIsByteIdenticalWithinProcess) {
  EXPECT_EQ(traced_run_json(), traced_run_json());
}

TEST(TraceDigest, ChainedRunMatchesPreStreamDigest) {
  trace::TraceSession session;
  cluster::ClusterConfig cfg;
  cfg.n_hosts = 2;
  cfg.vms_per_host = 2;
  cfg.seed = 7;
  const std::vector<mapred::JobConf> confs = {
      workloads::make_job(workloads::wordcount(), 16 * mapred::kMiB),
      workloads::make_job(workloads::stream_sort(), 16 * mapred::kMiB),
      workloads::make_job(workloads::wordcount_no_combiner(), 16 * mapred::kMiB),
  };
  const auto r = cluster::run_job_chain(cfg, confs);
  EXPECT_EQ(r.jobs.size(), confs.size());
  const std::string json = session.tracer().to_json();
  const std::uint64_t digest = exp::fnv1a64(json);
  EXPECT_EQ(digest, kPreStreamChainDigest)
      << "chain trace digest changed: 0x" << std::hex << digest << std::dec
      << " (json bytes: " << json.size() << ")";
}

}  // namespace
}  // namespace iosim
