#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "cluster/runner.hpp"
#include "sim/random.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim::cluster {
namespace {

using iosched::SchedulerKind;
using iosched::SchedulerPair;

ClusterConfig tiny() {
  ClusterConfig cfg;
  cfg.n_hosts = 2;
  cfg.vms_per_host = 2;
  return cfg;
}

TEST(Cluster, BuildsRequestedTopology) {
  Cluster cl(tiny());
  EXPECT_EQ(cl.n_hosts(), 2u);
  EXPECT_EQ(cl.n_vms(), 4);
  EXPECT_EQ(cl.env().vms.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const auto& vm = cl.env().vms[static_cast<std::size_t>(i)];
    EXPECT_EQ(vm.global_id, i);
    EXPECT_EQ(vm.host, i / 2);
    ASSERT_NE(vm.vm, nullptr);
    ASSERT_NE(vm.cpu, nullptr);
  }
  ASSERT_NE(cl.env().net, nullptr);
  ASSERT_NE(cl.env().dfs, nullptr);
}

TEST(Cluster, BootsWithConfiguredPair) {
  ClusterConfig cfg = tiny();
  cfg.pair = {SchedulerKind::kAnticipatory, SchedulerKind::kDeadline};
  Cluster cl(cfg);
  EXPECT_EQ(cl.pair(), cfg.pair);
  EXPECT_EQ(cl.host(0).dom0_layer().scheduler_kind(), SchedulerKind::kAnticipatory);
  EXPECT_EQ(cl.host(1).vm(1).scheduler(), SchedulerKind::kDeadline);
  // Boot-time install is construction, not a runtime switch.
  EXPECT_EQ(cl.host(0).dom0_layer().counters().scheduler_switches, 0u);
}

TEST(Cluster, SwitchPairReachesEveryHostAndGuest) {
  Cluster cl(tiny());
  const SchedulerPair p{SchedulerKind::kNoop, SchedulerKind::kAnticipatory};
  cl.switch_pair(p);
  cl.simr().run();  // drain freeze timers
  for (std::size_t h = 0; h < cl.n_hosts(); ++h) {
    EXPECT_EQ(cl.host(h).dom0_layer().scheduler_kind(), p.vmm);
    for (std::size_t v = 0; v < cl.host(h).vm_count(); ++v) {
      EXPECT_EQ(cl.host(h).vm(v).scheduler(), p.guest);
    }
  }
}

TEST(Runner, RunJobProducesConsistentResult) {
  auto jc = workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
  const RunResult r = run_job(tiny(), jc);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_NEAR(r.seconds, r.ph1_seconds + r.ph2_seconds + r.ph3_seconds, 1e-6);
  EXPECT_NEAR(r.ph23_seconds, r.ph2_seconds + r.ph3_seconds, 1e-6);
  EXPECT_EQ(r.stats.maps_total, jc.n_maps(4));
}

TEST(Runner, DeterministicForFixedSeed) {
  auto jc = workloads::make_job(workloads::stream_sort(), 64 * mapred::kMiB);
  const RunResult a = run_job(tiny(), jc);
  const RunResult b = run_job(tiny(), jc);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(Runner, SeedChangesResult) {
  auto jc = workloads::make_job(workloads::stream_sort(), 64 * mapred::kMiB);
  ClusterConfig c1 = tiny(), c2 = tiny();
  c2.seed = 999;
  EXPECT_NE(run_job(c1, jc).seconds, run_job(c2, jc).seconds);
}

TEST(Runner, AvgOfOneEqualsSingleRun) {
  // Repeat i of run_job_avg uses derive_run_seed(base, i) — including i=0,
  // so a 1-seed average equals a single run at the derived seed.
  auto jc = workloads::make_job(workloads::stream_sort(), 64 * mapred::kMiB);
  ClusterConfig derived = tiny();
  derived.seed = sim::derive_run_seed(tiny().seed, 0);
  EXPECT_DOUBLE_EQ(run_job_avg(tiny(), jc, 1).seconds, run_job(derived, jc).seconds);
}

TEST(Runner, AvgIsWithinSeedEnvelope) {
  auto jc = workloads::make_job(workloads::stream_sort(), 64 * mapred::kMiB);
  double lo = 1e30, hi = 0;
  for (int i = 0; i < 3; ++i) {
    ClusterConfig c = tiny();
    c.seed = sim::derive_run_seed(tiny().seed, static_cast<std::uint64_t>(i));
    const double s = run_job(c, jc).seconds;
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  const double avg = run_job_avg(tiny(), jc, 3).seconds;
  EXPECT_GE(avg, lo - 1e-9);
  EXPECT_LE(avg, hi + 1e-9);
}

TEST(Runner, SetupHookRuns) {
  auto jc = workloads::make_job(workloads::stream_sort(), 64 * mapred::kMiB);
  bool hook_ran = false;
  (void)run_job(tiny(), jc, [&](Cluster& cl, mapred::Job& job) {
    hook_ran = true;
    EXPECT_EQ(cl.n_vms(), 4);
    EXPECT_FALSE(job.done());
  });
  EXPECT_TRUE(hook_ran);
}

TEST(Runner, PairAffectsRuntime) {
  auto jc = workloads::make_job(workloads::stream_sort(), 128 * mapred::kMiB);
  ClusterConfig good = tiny();
  ClusterConfig bad = tiny();
  bad.pair = {SchedulerKind::kNoop, SchedulerKind::kNoop};
  // Noop at the VMM with multiple VMs must be clearly slower (the paper's
  // headline observation).
  EXPECT_GT(run_job(bad, jc).seconds, run_job(good, jc).seconds * 1.1);
}

}  // namespace
}  // namespace iosim::cluster
