// Parameterized end-to-end matrix: every workload on several cluster
// shapes completes with conserved byte accounting and ordered phases —
// the broad integration safety net behind the bench sweeps.
#include <gtest/gtest.h>

#include "cluster/runner.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim::cluster {
namespace {

struct Shape {
  const char* name;
  int hosts;
  int vms;
  std::int64_t mb_per_vm;
};

const Shape kShapes[] = {
    {"single_vm", 1, 1, 64},
    {"one_host", 1, 4, 128},
    {"two_hosts", 2, 2, 128},
    {"wide", 3, 4, 64},
};

enum class Wl { kSort, kWordcount, kNoCombiner };

class EndToEndMatrix : public ::testing::TestWithParam<std::tuple<int, Wl>> {
 protected:
  const Shape& shape() const { return kShapes[std::get<0>(GetParam())]; }
  mapred::JobConf job() const {
    mapred::WorkloadModel m;
    switch (std::get<1>(GetParam())) {
      case Wl::kSort: m = workloads::stream_sort(); break;
      case Wl::kWordcount: m = workloads::wordcount(); break;
      case Wl::kNoCombiner: m = workloads::wordcount_no_combiner(); break;
    }
    return workloads::make_job(m, shape().mb_per_vm * mapred::kMiB);
  }
  ClusterConfig cfg() const {
    ClusterConfig c;
    c.n_hosts = shape().hosts;
    c.vms_per_host = shape().vms;
    return c;
  }
};

TEST_P(EndToEndMatrix, CompletesWithSaneAccounting) {
  const auto jc = job();
  const RunResult r = run_job(cfg(), jc);
  const auto& s = r.stats;

  EXPECT_GT(r.seconds, 0.0);
  // Phase ordering.
  EXPECT_LE(s.t_start, s.t_maps_done);
  EXPECT_LE(s.t_maps_done, s.t_shuffle_done);
  EXPECT_LE(s.t_shuffle_done, s.t_done);

  // Input fully read.
  const int n_vms = shape().hosts * shape().vms;
  EXPECT_EQ(s.map_input_bytes, jc.input_bytes_per_vm * n_vms);
  // Map output respects the workload ratio (integer truncation slack).
  EXPECT_NEAR(static_cast<double>(s.map_output_bytes),
              jc.workload.map_output_ratio * static_cast<double>(s.map_input_bytes),
              0.02 * static_cast<double>(s.map_input_bytes) + 1024);
  // Everything produced was shuffled (partition rounding slack).
  EXPECT_LE(s.shuffle_bytes, s.map_output_bytes);
  EXPECT_NEAR(static_cast<double>(s.shuffle_bytes),
              static_cast<double>(s.map_output_bytes),
              0.02 * static_cast<double>(s.map_output_bytes) +
                  static_cast<double>(s.reduces_total) * 1024.0);
  // Output respects the reduce ratio.
  EXPECT_NEAR(static_cast<double>(s.output_bytes),
              jc.workload.reduce_output_ratio * static_cast<double>(s.shuffle_bytes),
              0.02 * static_cast<double>(s.shuffle_bytes) + 1024);
}

TEST_P(EndToEndMatrix, NoopVmmNeverFasterThanDefault) {
  // The paper's robust ordering: FIFO at the hypervisor cannot beat CFQ
  // with concurrent VMs (single-VM shapes are exempt: no interleaving).
  if (shape().vms < 2) GTEST_SKIP() << "needs VM contention";
  const auto jc = job();
  ClusterConfig def = cfg();
  ClusterConfig bad = cfg();
  bad.pair = {iosched::SchedulerKind::kNoop, iosched::SchedulerKind::kCfq};
  EXPECT_GE(run_job(bad, jc).seconds, run_job(def, jc).seconds * 0.98);
}

std::string matrix_name(const ::testing::TestParamInfo<std::tuple<int, Wl>>& info) {
  const char* wl = std::get<1>(info.param) == Wl::kSort
                       ? "sort"
                       : (std::get<1>(info.param) == Wl::kWordcount ? "wordcount"
                                                                    : "nocombiner");
  return std::string(kShapes[std::get<0>(info.param)].name) + "_" + wl;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EndToEndMatrix,
    ::testing::Combine(::testing::Range(0, static_cast<int>(std::size(kShapes))),
                       ::testing::Values(Wl::kSort, Wl::kWordcount, Wl::kNoCombiner)),
    matrix_name);

}  // namespace
}  // namespace iosim::cluster
