#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace iosim::sim {
namespace {

using namespace iosim::sim::literals;

TEST(Time, DefaultIsZero) {
  Time t;
  EXPECT_EQ(t.ns(), 0);
  EXPECT_EQ(t, Time::zero());
}

TEST(Time, Factories) {
  EXPECT_EQ(Time::from_ns(5).ns(), 5);
  EXPECT_EQ(Time::from_us(5).ns(), 5'000);
  EXPECT_EQ(Time::from_ms(5).ns(), 5'000'000);
  EXPECT_EQ(Time::from_sec(5).ns(), 5'000'000'000);
}

TEST(Time, FromSecFRounds) {
  EXPECT_EQ(Time::from_sec_f(1e-9).ns(), 1);
  EXPECT_EQ(Time::from_sec_f(1.5e-9).ns(), 2);  // round to nearest
  EXPECT_EQ(Time::from_sec_f(0.25).ns(), 250'000'000);
  EXPECT_EQ(Time::from_sec_f(-1e-9).ns(), -1);
}

TEST(Time, Literals) {
  EXPECT_EQ((5_ns).ns(), 5);
  EXPECT_EQ((5_us).ns(), 5'000);
  EXPECT_EQ((5_ms).ns(), 5'000'000);
  EXPECT_EQ((5_sec).ns(), 5'000'000'000);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ((3_ms + 2_ms).ns(), (5_ms).ns());
  EXPECT_EQ((3_ms - 2_ms).ns(), (1_ms).ns());
  Time t = 1_ms;
  t += 1_ms;
  EXPECT_EQ(t, 2_ms);
  t -= 500_us;
  EXPECT_EQ(t, Time::from_us(1500));
}

TEST(Time, ScalarOps) {
  EXPECT_EQ((10_ms * 0.5).ns(), (5_ms).ns());
  EXPECT_EQ((10_ms / 2).ns(), (5_ms).ns());
  EXPECT_DOUBLE_EQ((5_ms).ratio(10_ms), 0.5);
  EXPECT_DOUBLE_EQ((5_ms).ratio(Time::zero()), 0.0);  // guard, not NaN
}

TEST(Time, Comparisons) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_LE(2_ms, 2_ms);
  EXPECT_GT(3_ms, 2_ms);
  EXPECT_NE(1_ns, 2_ns);
}

TEST(Time, UnitAccessors) {
  const Time t = Time::from_us(1500);
  EXPECT_DOUBLE_EQ(t.us(), 1500.0);
  EXPECT_DOUBLE_EQ(t.ms(), 1.5);
  EXPECT_DOUBLE_EQ(t.sec(), 0.0015);
}

TEST(Time, ToStringPicksUnit) {
  EXPECT_EQ(Time::from_ns(12).to_string(), "12ns");
  EXPECT_EQ(Time::from_us(12).to_string(), "12.000us");
  EXPECT_EQ(Time::from_ms(12).to_string(), "12.000ms");
  EXPECT_EQ(Time::from_sec(12).to_string(), "12.000s");
}

TEST(Time, MaxIsLarge) {
  EXPECT_GT(Time::max(), Time::from_sec(1'000'000'000));
}

struct RatioCase {
  std::int64_t num_ms;
  std::int64_t den_ms;
  double expected;
};

class TimeRatioTest : public ::testing::TestWithParam<RatioCase> {};

TEST_P(TimeRatioTest, Ratio) {
  const auto& c = GetParam();
  EXPECT_DOUBLE_EQ(Time::from_ms(c.num_ms).ratio(Time::from_ms(c.den_ms)), c.expected);
}

INSTANTIATE_TEST_SUITE_P(Ratios, TimeRatioTest,
                         ::testing::Values(RatioCase{1, 2, 0.5}, RatioCase{2, 1, 2.0},
                                           RatioCase{0, 5, 0.0}, RatioCase{5, 5, 1.0},
                                           RatioCase{-1, 2, -0.5}));

}  // namespace
}  // namespace iosim::sim
