// Tests for SmallFn / EventFn (event_fn.hpp): the 48-byte inline budget,
// the heap fallback for oversized callables, value semantics (copy shares
// nothing, move empties the source), and destructor discipline — captures
// are destroyed exactly once, at the right time. The simulator's arena
// stores millions of these per run, so a leak or double-destroy here
// corrupts every workload above it.
#include "sim/event_fn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

namespace iosim::sim {
namespace {

TEST(SmallFn, SmallLambdaStoresInline) {
  int hits = 0;
  EventFn fn = [&hits] { ++hits; };
  ASSERT_TRUE(fn);
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, InlineBudgetIsFortyEightBytes) {
  // The simulator's hot-path lambdas (an owner pointer plus a payload or
  // two) must stay inline; check the boundary both ways.
  struct FitsExactly {
    std::array<std::uint64_t, 6> payload;  // 48 bytes
    void operator()() const {}
  };
  struct OneWordOver {
    std::array<std::uint64_t, 7> payload;  // 56 bytes
    void operator()() const {}
  };
  static_assert(EventFn::fits_inline<FitsExactly>());
  static_assert(!EventFn::fits_inline<OneWordOver>());
  EventFn a = FitsExactly{};
  EventFn b = OneWordOver{};
  EXPECT_TRUE(a.is_inline());
  EXPECT_FALSE(b.is_inline());
  a();
  b();  // heap fallback must still invoke correctly
}

TEST(SmallFn, OversizedCallableRoundTripsThroughHeap) {
  std::array<std::uint64_t, 8> big{};
  big[7] = 42;
  int out = 0;
  EventFn fn = [big, &out] { out = static_cast<int>(big[7]); };
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(out, 42);
}

TEST(SmallFn, CopyIsDeepForHeapCallables) {
  // Copies of a heap-stored callable must not share the heap node: invoking
  // and destroying one copy leaves the other intact.
  auto counter = std::make_shared<int>(0);
  std::array<std::uint64_t, 7> pad{};
  EventFn original = [counter, pad] { ++*counter; };
  ASSERT_FALSE(original.is_inline());
  EXPECT_EQ(counter.use_count(), 2);
  {
    EventFn copy = original;
    EXPECT_EQ(counter.use_count(), 3);  // deep copy took its own reference
    copy();
  }
  EXPECT_EQ(counter.use_count(), 2);  // copy's capture destroyed with it
  original();
  EXPECT_EQ(*counter, 2);
}

TEST(SmallFn, MoveEmptiesSourceWithoutDestroyingCapture) {
  auto counter = std::make_shared<int>(0);
  EventFn a = [counter] { ++*counter; };
  EXPECT_EQ(counter.use_count(), 2);
  EventFn b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move) — tested contract
  ASSERT_TRUE(b);
  EXPECT_EQ(counter.use_count(), 2);  // capture transferred, not duplicated
  b();
  EXPECT_EQ(*counter, 1);
}

TEST(SmallFn, DestructorRunsCaptureDestructorsExactlyOnce) {
  auto tracked = std::make_shared<int>(7);
  {
    EventFn fn = [tracked] {};
    EXPECT_EQ(tracked.use_count(), 2);
    fn = nullptr;  // assigning nullptr destroys the held capture now
    EXPECT_EQ(tracked.use_count(), 1);
    EXPECT_FALSE(fn);
  }
  EXPECT_EQ(tracked.use_count(), 1);
}

TEST(SmallFn, ReassignmentDestroysPreviousCallable) {
  auto first = std::make_shared<int>(1);
  auto second = std::make_shared<int>(2);
  EventFn fn = [first] {};
  EXPECT_EQ(first.use_count(), 2);
  fn = [second] {};
  EXPECT_EQ(first.use_count(), 1);  // old capture released on reassignment
  EXPECT_EQ(second.use_count(), 2);
}

TEST(SmallFn, EmptyAndNullptrCompareFalse) {
  EventFn a;
  EventFn b = nullptr;
  EXPECT_FALSE(a);
  EXPECT_FALSE(b);
  a = [] {};
  EXPECT_TRUE(a);
  a = nullptr;
  EXPECT_FALSE(a);
}

TEST(SmallFn, ArgumentAndReturnForwarding) {
  SmallFn<int(int, int)> add = [](int x, int y) { return x + y; };
  EXPECT_EQ(add(2, 3), 5);
  SmallFn<int(std::unique_ptr<int>)> sink = [](std::unique_ptr<int> p) {
    return *p;
  };
  EXPECT_EQ(sink(std::make_unique<int>(11)), 11);
}

TEST(SmallFn, TrivialInlineCallableSurvivesCopyAndMoveChains) {
  // Trivially-copyable inline callables take the byte-copy fast path; a
  // chain of copies and moves must preserve the captured state bit-exactly.
  struct Probe {
    std::uint64_t a, b, c;
    std::uint64_t operator()() const { return a ^ b ^ c; }
  };
  static_assert(SmallFn<std::uint64_t()>::fits_inline<Probe>());
  SmallFn<std::uint64_t()> f1 = Probe{0x1111, 0x2222, 0x4444};
  SmallFn<std::uint64_t()> f2 = f1;             // copy
  SmallFn<std::uint64_t()> f3 = std::move(f2);  // move
  SmallFn<std::uint64_t()> f4;
  f4 = f3;  // copy-assign
  EXPECT_EQ(f1(), 0x1111u ^ 0x2222u ^ 0x4444u);
  EXPECT_EQ(f4(), f1());
  EXPECT_FALSE(f2);  // NOLINT(bugprone-use-after-move)
}

}  // namespace
}  // namespace iosim::sim
