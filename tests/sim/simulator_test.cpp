#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <vector>

namespace iosim::sim {
namespace {

using namespace iosim::sim::literals;

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), Time::zero());
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.executed(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.at(30_ms, [&] { order.push_back(3); });
  s.at(10_ms, [&] { order.push_back(1); });
  s.at(20_ms, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30_ms);
  EXPECT_EQ(s.executed(), 3u);
}

TEST(Simulator, SameTimeEventsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.at(5_ms, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator s;
  Time fired;
  s.at(10_ms, [&] {
    s.after(5_ms, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, 15_ms);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  Time fired = Time::max();
  s.at(10_ms, [&] {
    s.after(Time::from_ms(-5), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, 10_ms);
}

TEST(Simulator, PastTimeClampsToNow) {
  Simulator s;
  Time fired = Time::max();
  s.at(10_ms, [&] {
    s.at(1_ms, [&] { fired = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(fired, 10_ms);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  const EventId id = s.at(10_ms, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.executed(), 0u);
}

TEST(Simulator, CancelInvalidIdFails) {
  Simulator s;
  EXPECT_FALSE(s.cancel(kInvalidEvent));
  EXPECT_FALSE(s.cancel(9999));  // never issued
}

TEST(Simulator, DoubleCancelFails) {
  Simulator s;
  const EventId id = s.at(10_ms, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  s.run();
}

TEST(Simulator, CancelOneOfSeveral) {
  Simulator s;
  std::vector<int> order;
  s.at(10_ms, [&] { order.push_back(1); });
  const EventId id = s.at(20_ms, [&] { order.push_back(2); });
  s.at(30_ms, [&] { order.push_back(3); });
  s.cancel(id);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
  s.at(1_ms, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  std::vector<int> order;
  s.at(10_ms, [&] { order.push_back(1); });
  s.at(20_ms, [&] { order.push_back(2); });
  s.at(30_ms, [&] { order.push_back(3); });
  s.run_until(20_ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // events at deadline run
  EXPECT_EQ(s.now(), 20_ms);
  s.run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator s;
  s.run_until(50_ms);
  EXPECT_EQ(s.now(), 50_ms);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.after(1_ms, chain);
  };
  s.after(1_ms, chain);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 100_ms);
}

TEST(Simulator, PendingCountsUncancelled) {
  Simulator s;
  const EventId a = s.at(1_ms, [] {});
  s.at(2_ms, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, ZeroDelayEventRunsAtCurrentTime) {
  Simulator s;
  Time fired = Time::max();
  s.at(7_ms, [&] {
    s.after(Time::zero(), [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, 7_ms);
}

// --- Progress sentinel (SimBudget) ----------------------------------------

TEST(SimulatorBudget, DefaultRunDrains) {
  Simulator s;
  s.at(1_ms, [] {});
  s.run();
  EXPECT_EQ(s.stop_reason(), StopReason::kDrained);
}

TEST(SimulatorBudget, EventBudgetStopsLivelock) {
  // A self-rescheduling zero-delay event never drains; the event budget must
  // terminate it deterministically.
  Simulator s;
  SimBudget b;
  b.max_events = 1000;
  s.set_budget(b);
  std::function<void()> spin = [&] { s.after(Time::zero(), spin); };
  s.after(Time::zero(), spin);
  s.run();
  EXPECT_EQ(s.stop_reason(), StopReason::kEventBudget);
  EXPECT_EQ(s.executed(), 1000u);
}

TEST(SimulatorBudget, SimTimeBudgetStopsBeforeEvent) {
  Simulator s;
  SimBudget b;
  b.max_sim_time = 20_ms;
  s.set_budget(b);
  bool late_ran = false;
  s.at(10_ms, [] {});
  s.at(30_ms, [&] { late_ran = true; });
  s.run();
  EXPECT_EQ(s.stop_reason(), StopReason::kTimeBudget);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(s.executed(), 1u);  // the 10ms event ran; the 30ms one did not
}

TEST(SimulatorBudget, EventAtDeadlineStillRuns) {
  Simulator s;
  SimBudget b;
  b.max_sim_time = 20_ms;
  s.set_budget(b);
  bool ran = false;
  s.at(20_ms, [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);  // t == deadline is inside the budget
  EXPECT_EQ(s.stop_reason(), StopReason::kDrained);
}

TEST(SimulatorBudget, AbortFlagStopsRun) {
  // The executor watchdog's cooperative flag: flipped before run(), the loop
  // must stop within its polling period instead of draining.
  Simulator s;
  std::atomic<bool> abort{false};
  SimBudget b;
  b.abort = &abort;
  s.set_budget(b);
  std::function<void()> spin = [&] { s.after(1_ms, spin); };
  s.after(1_ms, spin);
  abort.store(true);
  s.run();
  EXPECT_EQ(s.stop_reason(), StopReason::kAborted);
  EXPECT_LE(s.executed(), 256u);  // at most one polling period of events
}

TEST(SimulatorBudget, StopReasonNames) {
  EXPECT_STREQ(to_string(StopReason::kDrained), "drained");
  EXPECT_STREQ(to_string(StopReason::kEventBudget), "event-budget");
  EXPECT_STREQ(to_string(StopReason::kTimeBudget), "sim-time-budget");
  EXPECT_STREQ(to_string(StopReason::kAborted), "aborted");
}

}  // namespace
}  // namespace iosim::sim
