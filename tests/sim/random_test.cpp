#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace iosim::sim {
namespace {

TEST(SplitMix64, DeterministicStream) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ReseedResetsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(3.0, 7.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 7.0);
  }
}

class RngBelowTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBelowTest, StaysBelowBound) {
  const std::uint64_t n = GetParam();
  Rng r(11);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(r.below(n), n);
}

TEST_P(RngBelowTest, HitsAllSmallValues) {
  const std::uint64_t n = GetParam();
  if (n > 64) GTEST_SKIP() << "coverage check only for small bounds";
  Rng r(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(r.below(n));
  EXPECT_EQ(seen.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBelowTest,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 16ULL, 17ULL, 1000ULL,
                                           1ULL << 40));

TEST(Rng, RangeInclusive) {
  Rng r(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ExponentialMean) {
  Rng r(19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng r(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng r(23);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng r(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng r(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(DeriveRunSeed, DeterministicAndDistinct) {
  // Same (base, index) -> same seed; distinct indices -> distinct seeds.
  EXPECT_EQ(derive_run_seed(1, 0), derive_run_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(derive_run_seed(1, i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(DeriveRunSeed, AdjacentBasesDoNotShareRepeatStreams) {
  // The whole point of the double mix: with naive `base + index`, base seeds
  // 1 and 2 with k repeats share k-1 runs. Derived seed sets must be disjoint.
  constexpr std::uint64_t kRepeats = 64;
  std::set<std::uint64_t> a, both;
  for (std::uint64_t i = 0; i < kRepeats; ++i) a.insert(derive_run_seed(1, i));
  for (std::uint64_t i = 0; i < kRepeats; ++i) {
    both.insert(derive_run_seed(2, i));
    // And definitely not the exact overlap `base+index` would produce.
    EXPECT_EQ(a.count(derive_run_seed(2, i)), 0u) << "i=" << i;
  }
  for (std::uint64_t s : a) both.insert(s);
  EXPECT_EQ(both.size(), 2 * kRepeats);
}

TEST(DeriveRunSeed, AdjacentSeedsGiveUncorrelatedFirstDraws) {
  // First uniform draw from Rngs seeded at consecutive run indices should
  // look independent: roughly half of adjacent pairs ordered either way and
  // no near-duplicates.
  constexpr int kN = 512;
  std::vector<double> first;
  for (int i = 0; i < kN; ++i) {
    Rng r(derive_run_seed(7, static_cast<std::uint64_t>(i)));
    first.push_back(r.uniform(0.0, 1.0));
  }
  int ascending = 0;
  for (int i = 0; i + 1 < kN; ++i) {
    EXPECT_GT(std::abs(first[i + 1] - first[i]), 1e-9) << "i=" << i;
    if (first[i + 1] > first[i]) ++ascending;
  }
  // A drifting (correlated) seed sequence would push this toward 0 or kN.
  EXPECT_GT(ascending, kN / 2 - kN / 8);
  EXPECT_LT(ascending, kN / 2 + kN / 8);
  // Mean of the first draws should be near 0.5.
  double sum = 0.0;
  for (double x : first) sum += x;
  EXPECT_NEAR(sum / kN, 0.5, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(37);
  Rng child = a.fork();
  // The child stream is deterministic given the parent...
  Rng b(37);
  Rng child2 = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
  // ...and differs from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace iosim::sim
