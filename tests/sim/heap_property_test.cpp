// Property tests for the indexed 4-ary event heap (simulator.hpp). The
// heap replaced a binary std::priority_queue + tombstone set; these tests
// pin the contract that replacement must keep forever:
//
//   * strict (time, schedule-order) execution — equal timestamps fire FIFO,
//     no matter how pushes, cancels, and root-hole settles interleave;
//   * a cancelled event never fires, and cancel of a consumed id is a no-op
//     that can never resurrect or kill the slot's next tenant (generation
//     tags);
//   * cancel-heavy churn holds no garbage: the slot arena's high-water mark
//     tracks *concurrent* events, not total events (the old tombstone set
//     grew with total cancels).
//
// The main test is a randomized model check: the simulator runs against a
// trivially-correct reference (a sorted multimap keyed by (time, seq)) and
// both must fire the same events in the same order under an adversarial op
// mix. Seeds are fixed — failures reproduce.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "sim/random.hpp"

namespace iosim::sim {
namespace {

using namespace iosim::sim::literals;

TEST(HeapProperty, EqualTimestampFifoSurvivesInterleavedCancels) {
  // Schedule 64 events at each of 4 equal timestamps, cancel every third
  // one, and interleave fresh same-time schedules from inside callbacks.
  // Fire order must be exactly schedule order with the cancelled ids
  // removed.
  Simulator s;
  std::vector<int> fired;
  std::vector<int> expected;
  std::vector<EventId> ids;
  int tag = 0;
  for (int wave = 0; wave < 4; ++wave) {
    const Time t = Time::from_ms(10 * (wave + 1));
    for (int i = 0; i < 64; ++i) {
      const int id_tag = tag++;
      ids.push_back(s.at(t, [&fired, id_tag] { fired.push_back(id_tag); }));
    }
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(s.cancel(ids[i]));
    } else {
      expected.push_back(static_cast<int>(i));
    }
  }
  s.run();
  EXPECT_EQ(fired, expected);
}

TEST(HeapProperty, SameTimeScheduledFromCallbackRunsAfterEarlierSchedules) {
  // An event scheduled *during* the firing wave at the current time must
  // run after everything already queued at that time (seq order), even
  // though the root hole lets it sift in from the top.
  Simulator s;
  std::vector<int> order;
  s.at(5_ms, [&] {
    order.push_back(0);
    s.at(5_ms, [&] { order.push_back(3); });  // same time, scheduled last
  });
  s.at(5_ms, [&] { order.push_back(1); });
  s.at(5_ms, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(HeapProperty, CancelThenFireNeverInvokes) {
  // Cancel from outside the loop and from inside a callback (while the
  // root hole is open — the cancel path must settle it first).
  Simulator s;
  bool outside = false, inside = false;
  const EventId a = s.at(10_ms, [&] { outside = true; });
  EventId b = kInvalidEvent;
  s.at(1_ms, [&] { EXPECT_TRUE(s.cancel(b)); });
  b = s.at(20_ms, [&] { inside = true; });
  EXPECT_TRUE(s.cancel(a));
  s.run();
  EXPECT_FALSE(outside);
  EXPECT_FALSE(inside);
  EXPECT_EQ(s.executed(), 1u);
}

TEST(HeapProperty, CancelOfRunningEventFails) {
  Simulator s;
  EventId id = kInvalidEvent;
  bool cancel_result = true;
  id = s.at(1_ms, [&] { cancel_result = s.cancel(id); });
  s.run();
  EXPECT_FALSE(cancel_result);
  EXPECT_EQ(s.executed(), 1u);
}

TEST(HeapProperty, GenerationReuseNeverResurrectsStaleId) {
  Simulator s;
  // Consume one slot many times over; every stale handle must stay dead
  // even though the slot index repeats.
  std::vector<EventId> stale;
  for (int i = 0; i < 100; ++i) {
    const EventId id = s.after(1_sec, [] {});
    EXPECT_TRUE(s.cancel(id));
    stale.push_back(id);
  }
  // All 100 handles should have named the same arena slot (pure reuse)...
  EXPECT_LE(s.pool_stats().slots, 2u);
  // ...and none of them, nor double-cancel of the freshest, may touch the
  // slot's current tenant.
  bool tenant_fired = false;
  const EventId tenant = s.after(1_ms, [&] { tenant_fired = true; });
  for (const EventId id : stale) EXPECT_FALSE(s.cancel(id));
  s.run();
  EXPECT_TRUE(tenant_fired);
  EXPECT_EQ(s.executed(), 1u);
  EXPECT_FALSE(s.cancel(tenant));  // already ran
}

TEST(HeapProperty, CancelChurnHoldsBoundedMemory) {
  // Regression guard for the unbounded `cancelled_` tombstone set the old
  // simulator grew in cancel-heavy runs (anticipatory idle timeouts): one
  // million schedule/cancel pairs — alone and in batches — must leave the
  // arena at its concurrency high-water mark, not at total-events size.
  Simulator s;
  for (int i = 0; i < 500'000; ++i) {
    EXPECT_TRUE(s.cancel(s.after(1_sec, [] {})));
  }
  constexpr int kBatch = 512;
  EventId batch[kBatch];
  for (int round = 0; round < 500'000 / kBatch; ++round) {
    for (int i = 0; i < kBatch; ++i) batch[i] = s.after(1_sec, [] {});
    for (int i = kBatch - 1; i >= 0; --i) EXPECT_TRUE(s.cancel(batch[i]));
  }
  const Simulator::PoolStats ps = s.pool_stats();
  // High-water mark: kBatch concurrent timeouts (+1 for the serial phase).
  EXPECT_LE(ps.slots, static_cast<std::size_t>(kBatch) + 1);
  EXPECT_EQ(ps.free_slots, ps.slots);  // everything returned to the free list
  EXPECT_LE(ps.heap_capacity, 2 * static_cast<std::size_t>(kBatch));
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.executed(), 0u);
}

/// Reference scheduler: a std::multimap keyed by (time, global seq) fires
/// in exactly the order the simulator promises. Values are test tags.
class ReferenceModel {
 public:
  std::uint64_t schedule(std::int64_t t_ns, int tag) {
    const std::uint64_t handle = next_++;
    live_.emplace(std::make_pair(t_ns, handle), tag);
    return handle;
  }
  bool cancel(std::uint64_t handle) {
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (it->first.second == handle) {
        live_.erase(it);
        return true;
      }
    }
    return false;
  }
  /// Pop everything with time <= deadline, in order, appending tags.
  void run_until(std::int64_t deadline_ns, std::vector<int>* out) {
    while (!live_.empty() && live_.begin()->first.first <= deadline_ns) {
      out->push_back(live_.begin()->second);
      live_.erase(live_.begin());
    }
  }
  bool empty() const { return live_.empty(); }

 private:
  std::map<std::pair<std::int64_t, std::uint64_t>, int> live_;
  std::uint64_t next_ = 1;
};

TEST(HeapProperty, RandomizedModelCheck) {
  // Adversarial op soup against the reference model. Ops: schedule at a
  // random near-future time (heavy equal-timestamp collisions: times are
  // drawn from a small lattice), cancel a random live event, cancel a
  // random stale handle, and advance the clock with run_until. After every
  // advance both fire logs must match exactly.
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull}) {
    Simulator s;
    ReferenceModel ref;
    Rng rng(seed);
    std::vector<int> got, want;
    struct Live {
      EventId id;
      std::uint64_t handle;
      std::int64_t t_ns;
    };
    std::vector<Live> live;
    std::vector<Live> stale;  // cancelled or fired: handles must stay dead
    int tag = 0;
    for (int op = 0; op < 20'000; ++op) {
      const std::uint64_t pick = rng.below(100);
      if (pick < 60 || live.empty()) {
        // Times on a 16-slot lattice inside the next millisecond: dense
        // collisions exercise the FIFO tie-break on every run.
        const Time t = s.now() + Time::from_us(
            static_cast<std::int64_t>(rng.below(16)) * 50);
        const int my_tag = tag++;
        const EventId id = s.at(t, [&got, my_tag] { got.push_back(my_tag); });
        live.push_back({id, ref.schedule(t.ns(), my_tag), t.ns()});
      } else if (pick < 80) {
        const std::size_t i = static_cast<std::size_t>(rng.below(live.size()));
        EXPECT_TRUE(s.cancel(live[i].id));
        EXPECT_TRUE(ref.cancel(live[i].handle));
        stale.push_back(live[i]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (pick < 90 && !stale.empty()) {
        const std::size_t i = static_cast<std::size_t>(rng.below(stale.size()));
        EXPECT_FALSE(s.cancel(stale[i].id));
      } else {
        const Time deadline =
            s.now() + Time::from_us(static_cast<std::int64_t>(rng.below(400)));
        s.run_until(deadline);
        ref.run_until(deadline.ns(), &want);
        ASSERT_EQ(got, want) << "divergence at op " << op << " seed " << seed;
        // Everything at or before the deadline has fired in both worlds;
        // its handles join the stale pool for resurrect probes.
        for (auto it = live.begin(); it != live.end();) {
          if (it->t_ns <= deadline.ns()) {
            stale.push_back(*it);
            it = live.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    s.run();
    ref.run_until(std::numeric_limits<std::int64_t>::max(), &want);
    EXPECT_EQ(got, want) << "final divergence, seed " << seed;
  }
}

TEST(HeapProperty, DrainWithoutReschedulingSettlesCleanly) {
  // Events that schedule nothing exercise the settle() path (root hole
  // collapsed by the next queue access instead of a push).
  Simulator s;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    s.at(Time::from_us(i % 37), [&] { ++fired; });
  }
  while (s.step()) {
    // pending() reads through the hole arithmetic after every fire.
    EXPECT_EQ(s.pending() + static_cast<std::size_t>(fired), 1000u);
  }
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(s.pending(), 0u);
}

}  // namespace
}  // namespace iosim::sim
