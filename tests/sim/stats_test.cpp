#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/random.hpp"

namespace iosim::sim {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, ResetClears) {
  RunningStat s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStat, MatchesNaiveOnRandomData) {
  Rng r(1);
  RunningStat s;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(0, 100);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(SampleSet, EmptyQuantiles) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SampleSet, QuantilesOfKnownSet) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.5);
}

TEST(SampleSet, QuantileClampsArgument) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(2.0), 2.0);
}

TEST(SampleSet, CdfIsMonotoneAndEndsAtOne) {
  SampleSet s;
  Rng r(2);
  for (int i = 0; i < 100; ++i) s.add(r.uniform(0, 50));
  const auto cdf = s.cdf();
  ASSERT_EQ(cdf.size(), 100u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(SampleSet, AddAfterQuantileStillSorted) {
  SampleSet s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
}

TEST(JainFairness, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({5, 5, 5, 5}), 1.0);
}

TEST(JainFairness, MaximallyUnfair) {
  EXPECT_NEAR(jain_fairness({10, 0, 0, 0}), 0.25, 1e-12);
}

TEST(JainFairness, EmptyAndZero) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0, 0}), 1.0);
}

TEST(JainFairness, ScaleInvariant) {
  const std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b;
  for (double x : a) b.push_back(x * 17.0);
  EXPECT_NEAR(jain_fairness(a), jain_fairness(b), 1e-12);
}

TEST(JainFairness, BoundedBetweenInverseNAndOne) {
  Rng r(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> xs;
    for (int i = 0; i < 8; ++i) xs.push_back(r.uniform(0.1, 10.0));
    const double f = jain_fairness(xs);
    EXPECT_GE(f, 1.0 / 8.0 - 1e-12);
    EXPECT_LE(f, 1.0 + 1e-12);
  }
}

TEST(PercentileNearestRank, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(percentile_nearest_rank({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank({7.0}, 1.0), 7.0);
}

TEST(PercentileNearestRank, TwoSamples) {
  // rank ⌈p·2⌉: p=0.5 -> rank 1 (lower), p=0.51 -> rank 2 (upper).
  EXPECT_DOUBLE_EQ(percentile_nearest_rank({3.0, 9.0}, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank({9.0, 3.0}, 0.51), 9.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank({3.0, 9.0}, 1.0), 9.0);
}

TEST(PercentileNearestRank, AlwaysAnObservedSample) {
  // Unlike interpolation, nearest rank never invents values between samples.
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double v = percentile_nearest_rank(xs, p);
    EXPECT_TRUE(std::find(xs.begin(), xs.end(), v) != xs.end()) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 0.95), 16.0);
}

TEST(PercentileNearestRank, SkewedSamples) {
  // A heavy outlier only shows up at the top ranks.
  const std::vector<double> xs{1.0, 1.0, 1.0, 1.0, 100.0};
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 0.50), 1.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 0.80), 1.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 0.81), 100.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 0.95), 100.0);
}

TEST(TCritical95, TableValues) {
  EXPECT_DOUBLE_EQ(t_critical_95(0), 0.0);     // undefined: collapses CI to 0
  EXPECT_DOUBLE_EQ(t_critical_95(1), 12.706);  // n=2
  EXPECT_DOUBLE_EQ(t_critical_95(2), 4.303);   // n=3
  EXPECT_DOUBLE_EQ(t_critical_95(9), 2.262);
  EXPECT_DOUBLE_EQ(t_critical_95(30), 2.042);
  EXPECT_DOUBLE_EQ(t_critical_95(40), 2.021);
  EXPECT_DOUBLE_EQ(t_critical_95(120), 1.980);
  EXPECT_DOUBLE_EQ(t_critical_95(10000), 1.960);
}

TEST(TCritical95, MonotoneNonIncreasing) {
  for (std::uint64_t df = 1; df < 200; ++df) {
    EXPECT_GE(t_critical_95(df), t_critical_95(df + 1)) << "df=" << df;
  }
}

TEST(Ci95Halfwidth, NoIntervalBelowTwoSamples) {
  EXPECT_DOUBLE_EQ(ci95_halfwidth(5.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(ci95_halfwidth(5.0, 1), 0.0);
}

TEST(Ci95Halfwidth, TwoSamplesUsesT1) {
  // n=2, s known: hw = 12.706 * s / sqrt(2).
  EXPECT_NEAR(ci95_halfwidth(1.0, 2), 12.706 / std::sqrt(2.0), 1e-12);
}

TEST(Summarize, EmptyIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(Summarize, SingleSample) {
  const Summary s = summarize({4.5});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.5);
  EXPECT_DOUBLE_EQ(s.min, 4.5);
  EXPECT_DOUBLE_EQ(s.max, 4.5);
  EXPECT_DOUBLE_EQ(s.p50, 4.5);
  EXPECT_DOUBLE_EQ(s.p95, 4.5);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);  // no dispersion estimate from one sample
}

TEST(Summarize, TwoSamples) {
  const Summary s = summarize({2.0, 6.0});
  EXPECT_EQ(s.n, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);  // nearest rank: lower of the two
  EXPECT_DOUBLE_EQ(s.p95, 6.0);
  // s = sqrt(((2-4)^2 + (6-4)^2) / 1) = 2√2; hw = 12.706 · 2√2/√2 = 25.412.
  EXPECT_NEAR(s.ci95, 25.412, 1e-9);
}

TEST(Summarize, SkewedSamples) {
  const Summary s = summarize({1.0, 1.0, 1.0, 1.0, 100.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_NEAR(s.mean, 20.8, 1e-12);
  EXPECT_DOUBLE_EQ(s.p50, 1.0);    // the median ignores the outlier...
  EXPECT_DOUBLE_EQ(s.p95, 100.0);  // ...the tail percentile catches it
  EXPECT_GT(s.ci95, 0.0);
  // Order of samples must not matter.
  const Summary t = summarize({100.0, 1.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(s.p50, t.p50);
  EXPECT_DOUBLE_EQ(s.ci95, t.ci95);
}

}  // namespace
}  // namespace iosim::sim
