#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace iosim::sim {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, ResetClears) {
  RunningStat s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStat, MatchesNaiveOnRandomData) {
  Rng r(1);
  RunningStat s;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(0, 100);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(SampleSet, EmptyQuantiles) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SampleSet, QuantilesOfKnownSet) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.5);
}

TEST(SampleSet, QuantileClampsArgument) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(2.0), 2.0);
}

TEST(SampleSet, CdfIsMonotoneAndEndsAtOne) {
  SampleSet s;
  Rng r(2);
  for (int i = 0; i < 100; ++i) s.add(r.uniform(0, 50));
  const auto cdf = s.cdf();
  ASSERT_EQ(cdf.size(), 100u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(SampleSet, AddAfterQuantileStillSorted) {
  SampleSet s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
}

TEST(JainFairness, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({5, 5, 5, 5}), 1.0);
}

TEST(JainFairness, MaximallyUnfair) {
  EXPECT_NEAR(jain_fairness({10, 0, 0, 0}), 0.25, 1e-12);
}

TEST(JainFairness, EmptyAndZero) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0, 0}), 1.0);
}

TEST(JainFairness, ScaleInvariant) {
  const std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b;
  for (double x : a) b.push_back(x * 17.0);
  EXPECT_NEAR(jain_fairness(a), jain_fairness(b), 1e-12);
}

TEST(JainFairness, BoundedBetweenInverseNAndOne) {
  Rng r(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> xs;
    for (int i = 0; i < 8; ++i) xs.push_back(r.uniform(0.1, 10.0));
    const double f = jain_fairness(xs);
    EXPECT_GE(f, 1.0 / 8.0 - 1e-12);
    EXPECT_LE(f, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace iosim::sim
