# Empty dependencies file for iosimctl.
# This may be replaced when dependencies are built.
