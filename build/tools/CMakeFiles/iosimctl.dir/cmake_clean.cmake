file(REMOVE_RECURSE
  "CMakeFiles/iosimctl.dir/iosimctl.cpp.o"
  "CMakeFiles/iosimctl.dir/iosimctl.cpp.o.d"
  "iosimctl"
  "iosimctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosimctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
