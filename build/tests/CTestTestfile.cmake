# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/time_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/disk_model_test[1]_include.cmake")
include("/root/repo/build/tests/noop_test[1]_include.cmake")
include("/root/repo/build/tests/deadline_test[1]_include.cmake")
include("/root/repo/build/tests/anticipatory_test[1]_include.cmake")
include("/root/repo/build/tests/cfq_test[1]_include.cmake")
include("/root/repo/build/tests/sched_property_test[1]_include.cmake")
include("/root/repo/build/tests/block_layer_test[1]_include.cmake")
include("/root/repo/build/tests/switch_drain_test[1]_include.cmake")
include("/root/repo/build/tests/ncq_test[1]_include.cmake")
include("/root/repo/build/tests/flow_network_test[1]_include.cmake")
include("/root/repo/build/tests/virt_test[1]_include.cmake")
include("/root/repo/build/tests/hdfs_test[1]_include.cmake")
include("/root/repo/build/tests/vcpu_test[1]_include.cmake")
include("/root/repo/build/tests/job_test[1]_include.cmake")
include("/root/repo/build/tests/merge_op_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/meta_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/switch_cost_test[1]_include.cmake")
include("/root/repo/build/tests/fine_grained_test[1]_include.cmake")
