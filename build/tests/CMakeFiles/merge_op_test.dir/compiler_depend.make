# Empty compiler generated dependencies file for merge_op_test.
# This may be replaced when dependencies are built.
