file(REMOVE_RECURSE
  "CMakeFiles/merge_op_test.dir/mapred/merge_op_test.cpp.o"
  "CMakeFiles/merge_op_test.dir/mapred/merge_op_test.cpp.o.d"
  "merge_op_test"
  "merge_op_test.pdb"
  "merge_op_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_op_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
