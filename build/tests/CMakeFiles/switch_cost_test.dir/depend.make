# Empty dependencies file for switch_cost_test.
# This may be replaced when dependencies are built.
