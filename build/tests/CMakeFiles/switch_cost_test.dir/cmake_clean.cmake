file(REMOVE_RECURSE
  "CMakeFiles/switch_cost_test.dir/core/switch_cost_test.cpp.o"
  "CMakeFiles/switch_cost_test.dir/core/switch_cost_test.cpp.o.d"
  "switch_cost_test"
  "switch_cost_test.pdb"
  "switch_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
