file(REMOVE_RECURSE
  "CMakeFiles/block_layer_test.dir/blk/block_layer_test.cpp.o"
  "CMakeFiles/block_layer_test.dir/blk/block_layer_test.cpp.o.d"
  "block_layer_test"
  "block_layer_test.pdb"
  "block_layer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
