# Empty dependencies file for block_layer_test.
# This may be replaced when dependencies are built.
