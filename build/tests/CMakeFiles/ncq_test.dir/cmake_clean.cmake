file(REMOVE_RECURSE
  "CMakeFiles/ncq_test.dir/blk/ncq_test.cpp.o"
  "CMakeFiles/ncq_test.dir/blk/ncq_test.cpp.o.d"
  "ncq_test"
  "ncq_test.pdb"
  "ncq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
