file(REMOVE_RECURSE
  "CMakeFiles/anticipatory_test.dir/iosched/anticipatory_test.cpp.o"
  "CMakeFiles/anticipatory_test.dir/iosched/anticipatory_test.cpp.o.d"
  "anticipatory_test"
  "anticipatory_test.pdb"
  "anticipatory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anticipatory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
