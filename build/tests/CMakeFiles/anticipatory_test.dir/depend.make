# Empty dependencies file for anticipatory_test.
# This may be replaced when dependencies are built.
