# Empty dependencies file for meta_scheduler_test.
# This may be replaced when dependencies are built.
