file(REMOVE_RECURSE
  "CMakeFiles/meta_scheduler_test.dir/core/meta_scheduler_test.cpp.o"
  "CMakeFiles/meta_scheduler_test.dir/core/meta_scheduler_test.cpp.o.d"
  "meta_scheduler_test"
  "meta_scheduler_test.pdb"
  "meta_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
