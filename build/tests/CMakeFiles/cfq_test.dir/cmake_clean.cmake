file(REMOVE_RECURSE
  "CMakeFiles/cfq_test.dir/iosched/cfq_test.cpp.o"
  "CMakeFiles/cfq_test.dir/iosched/cfq_test.cpp.o.d"
  "cfq_test"
  "cfq_test.pdb"
  "cfq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
