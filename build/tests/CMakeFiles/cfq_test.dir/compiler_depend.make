# Empty compiler generated dependencies file for cfq_test.
# This may be replaced when dependencies are built.
