file(REMOVE_RECURSE
  "CMakeFiles/noop_test.dir/iosched/noop_test.cpp.o"
  "CMakeFiles/noop_test.dir/iosched/noop_test.cpp.o.d"
  "noop_test"
  "noop_test.pdb"
  "noop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
