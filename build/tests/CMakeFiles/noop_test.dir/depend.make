# Empty dependencies file for noop_test.
# This may be replaced when dependencies are built.
