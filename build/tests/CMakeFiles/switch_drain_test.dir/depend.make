# Empty dependencies file for switch_drain_test.
# This may be replaced when dependencies are built.
