file(REMOVE_RECURSE
  "CMakeFiles/switch_drain_test.dir/blk/switch_drain_test.cpp.o"
  "CMakeFiles/switch_drain_test.dir/blk/switch_drain_test.cpp.o.d"
  "switch_drain_test"
  "switch_drain_test.pdb"
  "switch_drain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_drain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
