# Empty dependencies file for fig6_phase_scores.
# This may be replaced when dependencies are built.
