file(REMOVE_RECURSE
  "CMakeFiles/fig6_phase_scores.dir/fig6_phase_scores.cpp.o"
  "CMakeFiles/fig6_phase_scores.dir/fig6_phase_scores.cpp.o.d"
  "fig6_phase_scores"
  "fig6_phase_scores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_phase_scores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
