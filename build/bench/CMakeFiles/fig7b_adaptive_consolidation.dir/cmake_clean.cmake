file(REMOVE_RECURSE
  "CMakeFiles/fig7b_adaptive_consolidation.dir/fig7b_adaptive_consolidation.cpp.o"
  "CMakeFiles/fig7b_adaptive_consolidation.dir/fig7b_adaptive_consolidation.cpp.o.d"
  "fig7b_adaptive_consolidation"
  "fig7b_adaptive_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_adaptive_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
