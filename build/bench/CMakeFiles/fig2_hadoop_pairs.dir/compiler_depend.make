# Empty compiler generated dependencies file for fig2_hadoop_pairs.
# This may be replaced when dependencies are built.
