file(REMOVE_RECURSE
  "CMakeFiles/fig2_hadoop_pairs.dir/fig2_hadoop_pairs.cpp.o"
  "CMakeFiles/fig2_hadoop_pairs.dir/fig2_hadoop_pairs.cpp.o.d"
  "fig2_hadoop_pairs"
  "fig2_hadoop_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_hadoop_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
