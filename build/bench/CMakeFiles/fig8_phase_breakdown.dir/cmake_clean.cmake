file(REMOVE_RECURSE
  "CMakeFiles/fig8_phase_breakdown.dir/fig8_phase_breakdown.cpp.o"
  "CMakeFiles/fig8_phase_breakdown.dir/fig8_phase_breakdown.cpp.o.d"
  "fig8_phase_breakdown"
  "fig8_phase_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_phase_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
