# Empty dependencies file for fig4_subphase_scores.
# This may be replaced when dependencies are built.
