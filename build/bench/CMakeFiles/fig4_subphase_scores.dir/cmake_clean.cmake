file(REMOVE_RECURSE
  "CMakeFiles/fig4_subphase_scores.dir/fig4_subphase_scores.cpp.o"
  "CMakeFiles/fig4_subphase_scores.dir/fig4_subphase_scores.cpp.o.d"
  "fig4_subphase_scores"
  "fig4_subphase_scores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_subphase_scores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
