# Empty compiler generated dependencies file for table1_sort_pairs.
# This may be replaced when dependencies are built.
