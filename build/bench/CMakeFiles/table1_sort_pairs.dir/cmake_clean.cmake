file(REMOVE_RECURSE
  "CMakeFiles/table1_sort_pairs.dir/table1_sort_pairs.cpp.o"
  "CMakeFiles/table1_sort_pairs.dir/table1_sort_pairs.cpp.o.d"
  "table1_sort_pairs"
  "table1_sort_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sort_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
