file(REMOVE_RECURSE
  "CMakeFiles/fig7a_adaptive_workloads.dir/fig7a_adaptive_workloads.cpp.o"
  "CMakeFiles/fig7a_adaptive_workloads.dir/fig7a_adaptive_workloads.cpp.o.d"
  "fig7a_adaptive_workloads"
  "fig7a_adaptive_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_adaptive_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
