# Empty dependencies file for fig7a_adaptive_workloads.
# This may be replaced when dependencies are built.
