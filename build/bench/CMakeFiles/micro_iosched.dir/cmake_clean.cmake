file(REMOVE_RECURSE
  "CMakeFiles/micro_iosched.dir/micro_iosched.cpp.o"
  "CMakeFiles/micro_iosched.dir/micro_iosched.cpp.o.d"
  "micro_iosched"
  "micro_iosched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_iosched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
