# Empty compiler generated dependencies file for micro_iosched.
# This may be replaced when dependencies are built.
