# Empty compiler generated dependencies file for fig3_throughput_cdf.
# This may be replaced when dependencies are built.
