file(REMOVE_RECURSE
  "CMakeFiles/ext_job_chain.dir/ext_job_chain.cpp.o"
  "CMakeFiles/ext_job_chain.dir/ext_job_chain.cpp.o.d"
  "ext_job_chain"
  "ext_job_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_job_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
