# Empty compiler generated dependencies file for ext_job_chain.
# This may be replaced when dependencies are built.
