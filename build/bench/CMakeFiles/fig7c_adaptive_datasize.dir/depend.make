# Empty dependencies file for fig7c_adaptive_datasize.
# This may be replaced when dependencies are built.
