file(REMOVE_RECURSE
  "CMakeFiles/fig7c_adaptive_datasize.dir/fig7c_adaptive_datasize.cpp.o"
  "CMakeFiles/fig7c_adaptive_datasize.dir/fig7c_adaptive_datasize.cpp.o.d"
  "fig7c_adaptive_datasize"
  "fig7c_adaptive_datasize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_adaptive_datasize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
