# Empty dependencies file for fig7d_adaptive_scale.
# This may be replaced when dependencies are built.
