file(REMOVE_RECURSE
  "CMakeFiles/fig7d_adaptive_scale.dir/fig7d_adaptive_scale.cpp.o"
  "CMakeFiles/fig7d_adaptive_scale.dir/fig7d_adaptive_scale.cpp.o.d"
  "fig7d_adaptive_scale"
  "fig7d_adaptive_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7d_adaptive_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
