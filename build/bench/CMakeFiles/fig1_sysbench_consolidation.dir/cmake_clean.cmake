file(REMOVE_RECURSE
  "CMakeFiles/fig1_sysbench_consolidation.dir/fig1_sysbench_consolidation.cpp.o"
  "CMakeFiles/fig1_sysbench_consolidation.dir/fig1_sysbench_consolidation.cpp.o.d"
  "fig1_sysbench_consolidation"
  "fig1_sysbench_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_sysbench_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
