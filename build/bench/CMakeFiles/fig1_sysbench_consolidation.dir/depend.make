# Empty dependencies file for fig1_sysbench_consolidation.
# This may be replaced when dependencies are built.
