# Empty compiler generated dependencies file for ext_fine_grained.
# This may be replaced when dependencies are built.
