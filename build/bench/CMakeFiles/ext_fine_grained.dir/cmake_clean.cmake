file(REMOVE_RECURSE
  "CMakeFiles/ext_fine_grained.dir/ext_fine_grained.cpp.o"
  "CMakeFiles/ext_fine_grained.dir/ext_fine_grained.cpp.o.d"
  "ext_fine_grained"
  "ext_fine_grained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fine_grained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
