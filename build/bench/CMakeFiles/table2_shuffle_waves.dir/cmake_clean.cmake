file(REMOVE_RECURSE
  "CMakeFiles/table2_shuffle_waves.dir/table2_shuffle_waves.cpp.o"
  "CMakeFiles/table2_shuffle_waves.dir/table2_shuffle_waves.cpp.o.d"
  "table2_shuffle_waves"
  "table2_shuffle_waves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_shuffle_waves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
