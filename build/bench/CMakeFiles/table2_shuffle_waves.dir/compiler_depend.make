# Empty compiler generated dependencies file for table2_shuffle_waves.
# This may be replaced when dependencies are built.
