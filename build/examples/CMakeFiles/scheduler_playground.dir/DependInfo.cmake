
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/scheduler_playground.cpp" "examples/CMakeFiles/scheduler_playground.dir/scheduler_playground.cpp.o" "gcc" "examples/CMakeFiles/scheduler_playground.dir/scheduler_playground.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/iosim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/iosim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/iosim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/iosim_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/iosim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/iosim_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/iosim_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iosim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/blk/CMakeFiles/iosim_blk.dir/DependInfo.cmake"
  "/root/repo/build/src/iosched/CMakeFiles/iosim_iosched.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/iosim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iosim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
