file(REMOVE_RECURSE
  "CMakeFiles/iosim_cluster.dir/chain_runner.cpp.o"
  "CMakeFiles/iosim_cluster.dir/chain_runner.cpp.o.d"
  "CMakeFiles/iosim_cluster.dir/cluster.cpp.o"
  "CMakeFiles/iosim_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/iosim_cluster.dir/runner.cpp.o"
  "CMakeFiles/iosim_cluster.dir/runner.cpp.o.d"
  "libiosim_cluster.a"
  "libiosim_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosim_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
