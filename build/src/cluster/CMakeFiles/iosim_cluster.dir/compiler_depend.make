# Empty compiler generated dependencies file for iosim_cluster.
# This may be replaced when dependencies are built.
