file(REMOVE_RECURSE
  "libiosim_cluster.a"
)
