# Empty compiler generated dependencies file for iosim_disk.
# This may be replaced when dependencies are built.
