file(REMOVE_RECURSE
  "CMakeFiles/iosim_disk.dir/disk_model.cpp.o"
  "CMakeFiles/iosim_disk.dir/disk_model.cpp.o.d"
  "libiosim_disk.a"
  "libiosim_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosim_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
