file(REMOVE_RECURSE
  "libiosim_disk.a"
)
