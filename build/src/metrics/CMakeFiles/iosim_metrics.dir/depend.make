# Empty dependencies file for iosim_metrics.
# This may be replaced when dependencies are built.
