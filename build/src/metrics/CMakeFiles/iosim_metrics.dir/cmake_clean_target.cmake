file(REMOVE_RECURSE
  "libiosim_metrics.a"
)
