file(REMOVE_RECURSE
  "CMakeFiles/iosim_metrics.dir/table.cpp.o"
  "CMakeFiles/iosim_metrics.dir/table.cpp.o.d"
  "libiosim_metrics.a"
  "libiosim_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
