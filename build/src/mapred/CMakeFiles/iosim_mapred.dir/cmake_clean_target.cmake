file(REMOVE_RECURSE
  "libiosim_mapred.a"
)
