# Empty compiler generated dependencies file for iosim_mapred.
# This may be replaced when dependencies are built.
