
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapred/job.cpp" "src/mapred/CMakeFiles/iosim_mapred.dir/job.cpp.o" "gcc" "src/mapred/CMakeFiles/iosim_mapred.dir/job.cpp.o.d"
  "/root/repo/src/mapred/map_task.cpp" "src/mapred/CMakeFiles/iosim_mapred.dir/map_task.cpp.o" "gcc" "src/mapred/CMakeFiles/iosim_mapred.dir/map_task.cpp.o.d"
  "/root/repo/src/mapred/merge_op.cpp" "src/mapred/CMakeFiles/iosim_mapred.dir/merge_op.cpp.o" "gcc" "src/mapred/CMakeFiles/iosim_mapred.dir/merge_op.cpp.o.d"
  "/root/repo/src/mapred/reduce_task.cpp" "src/mapred/CMakeFiles/iosim_mapred.dir/reduce_task.cpp.o" "gcc" "src/mapred/CMakeFiles/iosim_mapred.dir/reduce_task.cpp.o.d"
  "/root/repo/src/mapred/vcpu.cpp" "src/mapred/CMakeFiles/iosim_mapred.dir/vcpu.cpp.o" "gcc" "src/mapred/CMakeFiles/iosim_mapred.dir/vcpu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/virt/CMakeFiles/iosim_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iosim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/iosim_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/blk/CMakeFiles/iosim_blk.dir/DependInfo.cmake"
  "/root/repo/build/src/iosched/CMakeFiles/iosim_iosched.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/iosim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iosim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
