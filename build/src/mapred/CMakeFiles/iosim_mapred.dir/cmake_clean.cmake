file(REMOVE_RECURSE
  "CMakeFiles/iosim_mapred.dir/job.cpp.o"
  "CMakeFiles/iosim_mapred.dir/job.cpp.o.d"
  "CMakeFiles/iosim_mapred.dir/map_task.cpp.o"
  "CMakeFiles/iosim_mapred.dir/map_task.cpp.o.d"
  "CMakeFiles/iosim_mapred.dir/merge_op.cpp.o"
  "CMakeFiles/iosim_mapred.dir/merge_op.cpp.o.d"
  "CMakeFiles/iosim_mapred.dir/reduce_task.cpp.o"
  "CMakeFiles/iosim_mapred.dir/reduce_task.cpp.o.d"
  "CMakeFiles/iosim_mapred.dir/vcpu.cpp.o"
  "CMakeFiles/iosim_mapred.dir/vcpu.cpp.o.d"
  "libiosim_mapred.a"
  "libiosim_mapred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosim_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
