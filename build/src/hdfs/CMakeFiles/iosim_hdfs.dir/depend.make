# Empty dependencies file for iosim_hdfs.
# This may be replaced when dependencies are built.
