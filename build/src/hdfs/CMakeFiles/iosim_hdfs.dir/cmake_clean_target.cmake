file(REMOVE_RECURSE
  "libiosim_hdfs.a"
)
