file(REMOVE_RECURSE
  "CMakeFiles/iosim_hdfs.dir/hdfs.cpp.o"
  "CMakeFiles/iosim_hdfs.dir/hdfs.cpp.o.d"
  "libiosim_hdfs.a"
  "libiosim_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosim_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
