# Empty dependencies file for iosim_sim.
# This may be replaced when dependencies are built.
