file(REMOVE_RECURSE
  "libiosim_sim.a"
)
