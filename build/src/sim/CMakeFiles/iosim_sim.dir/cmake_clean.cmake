file(REMOVE_RECURSE
  "CMakeFiles/iosim_sim.dir/simulator.cpp.o"
  "CMakeFiles/iosim_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/iosim_sim.dir/time.cpp.o"
  "CMakeFiles/iosim_sim.dir/time.cpp.o.d"
  "libiosim_sim.a"
  "libiosim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
