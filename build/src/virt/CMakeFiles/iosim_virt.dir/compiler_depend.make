# Empty compiler generated dependencies file for iosim_virt.
# This may be replaced when dependencies are built.
