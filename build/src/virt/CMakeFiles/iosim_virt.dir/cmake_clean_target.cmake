file(REMOVE_RECURSE
  "libiosim_virt.a"
)
