
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/virt/domu.cpp" "src/virt/CMakeFiles/iosim_virt.dir/domu.cpp.o" "gcc" "src/virt/CMakeFiles/iosim_virt.dir/domu.cpp.o.d"
  "/root/repo/src/virt/io_stream.cpp" "src/virt/CMakeFiles/iosim_virt.dir/io_stream.cpp.o" "gcc" "src/virt/CMakeFiles/iosim_virt.dir/io_stream.cpp.o.d"
  "/root/repo/src/virt/physical_host.cpp" "src/virt/CMakeFiles/iosim_virt.dir/physical_host.cpp.o" "gcc" "src/virt/CMakeFiles/iosim_virt.dir/physical_host.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blk/CMakeFiles/iosim_blk.dir/DependInfo.cmake"
  "/root/repo/build/src/iosched/CMakeFiles/iosim_iosched.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/iosim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iosim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
