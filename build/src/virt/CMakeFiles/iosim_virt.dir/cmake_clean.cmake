file(REMOVE_RECURSE
  "CMakeFiles/iosim_virt.dir/domu.cpp.o"
  "CMakeFiles/iosim_virt.dir/domu.cpp.o.d"
  "CMakeFiles/iosim_virt.dir/io_stream.cpp.o"
  "CMakeFiles/iosim_virt.dir/io_stream.cpp.o.d"
  "CMakeFiles/iosim_virt.dir/physical_host.cpp.o"
  "CMakeFiles/iosim_virt.dir/physical_host.cpp.o.d"
  "libiosim_virt.a"
  "libiosim_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosim_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
