# Empty compiler generated dependencies file for iosim_blk.
# This may be replaced when dependencies are built.
