file(REMOVE_RECURSE
  "CMakeFiles/iosim_blk.dir/block_layer.cpp.o"
  "CMakeFiles/iosim_blk.dir/block_layer.cpp.o.d"
  "libiosim_blk.a"
  "libiosim_blk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosim_blk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
