file(REMOVE_RECURSE
  "libiosim_blk.a"
)
