
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_controller.cpp" "src/core/CMakeFiles/iosim_core.dir/adaptive_controller.cpp.o" "gcc" "src/core/CMakeFiles/iosim_core.dir/adaptive_controller.cpp.o.d"
  "/root/repo/src/core/fine_grained.cpp" "src/core/CMakeFiles/iosim_core.dir/fine_grained.cpp.o" "gcc" "src/core/CMakeFiles/iosim_core.dir/fine_grained.cpp.o.d"
  "/root/repo/src/core/meta_scheduler.cpp" "src/core/CMakeFiles/iosim_core.dir/meta_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/iosim_core.dir/meta_scheduler.cpp.o.d"
  "/root/repo/src/core/phase_detector.cpp" "src/core/CMakeFiles/iosim_core.dir/phase_detector.cpp.o" "gcc" "src/core/CMakeFiles/iosim_core.dir/phase_detector.cpp.o.d"
  "/root/repo/src/core/switch_cost.cpp" "src/core/CMakeFiles/iosim_core.dir/switch_cost.cpp.o" "gcc" "src/core/CMakeFiles/iosim_core.dir/switch_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/iosim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/iosim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/iosim_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iosim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/iosim_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/iosim_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/iosim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/blk/CMakeFiles/iosim_blk.dir/DependInfo.cmake"
  "/root/repo/build/src/iosched/CMakeFiles/iosim_iosched.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/iosim_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iosim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
