file(REMOVE_RECURSE
  "CMakeFiles/iosim_core.dir/adaptive_controller.cpp.o"
  "CMakeFiles/iosim_core.dir/adaptive_controller.cpp.o.d"
  "CMakeFiles/iosim_core.dir/fine_grained.cpp.o"
  "CMakeFiles/iosim_core.dir/fine_grained.cpp.o.d"
  "CMakeFiles/iosim_core.dir/meta_scheduler.cpp.o"
  "CMakeFiles/iosim_core.dir/meta_scheduler.cpp.o.d"
  "CMakeFiles/iosim_core.dir/phase_detector.cpp.o"
  "CMakeFiles/iosim_core.dir/phase_detector.cpp.o.d"
  "CMakeFiles/iosim_core.dir/switch_cost.cpp.o"
  "CMakeFiles/iosim_core.dir/switch_cost.cpp.o.d"
  "libiosim_core.a"
  "libiosim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
