file(REMOVE_RECURSE
  "libiosim_core.a"
)
