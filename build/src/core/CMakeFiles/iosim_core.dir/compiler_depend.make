# Empty compiler generated dependencies file for iosim_core.
# This may be replaced when dependencies are built.
