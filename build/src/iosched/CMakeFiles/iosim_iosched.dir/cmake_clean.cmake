file(REMOVE_RECURSE
  "CMakeFiles/iosim_iosched.dir/anticipatory.cpp.o"
  "CMakeFiles/iosim_iosched.dir/anticipatory.cpp.o.d"
  "CMakeFiles/iosim_iosched.dir/cfq.cpp.o"
  "CMakeFiles/iosim_iosched.dir/cfq.cpp.o.d"
  "CMakeFiles/iosim_iosched.dir/deadline.cpp.o"
  "CMakeFiles/iosim_iosched.dir/deadline.cpp.o.d"
  "CMakeFiles/iosim_iosched.dir/factory.cpp.o"
  "CMakeFiles/iosim_iosched.dir/factory.cpp.o.d"
  "libiosim_iosched.a"
  "libiosim_iosched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosim_iosched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
