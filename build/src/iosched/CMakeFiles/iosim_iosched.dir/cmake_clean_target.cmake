file(REMOVE_RECURSE
  "libiosim_iosched.a"
)
