# Empty dependencies file for iosim_iosched.
# This may be replaced when dependencies are built.
