file(REMOVE_RECURSE
  "libiosim_workloads.a"
)
