file(REMOVE_RECURSE
  "CMakeFiles/iosim_workloads.dir/benchmarks.cpp.o"
  "CMakeFiles/iosim_workloads.dir/benchmarks.cpp.o.d"
  "CMakeFiles/iosim_workloads.dir/microbench.cpp.o"
  "CMakeFiles/iosim_workloads.dir/microbench.cpp.o.d"
  "libiosim_workloads.a"
  "libiosim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
