# Empty compiler generated dependencies file for iosim_workloads.
# This may be replaced when dependencies are built.
