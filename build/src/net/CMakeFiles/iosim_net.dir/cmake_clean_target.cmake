file(REMOVE_RECURSE
  "libiosim_net.a"
)
