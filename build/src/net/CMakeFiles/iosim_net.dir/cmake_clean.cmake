file(REMOVE_RECURSE
  "CMakeFiles/iosim_net.dir/flow_network.cpp.o"
  "CMakeFiles/iosim_net.dir/flow_network.cpp.o.d"
  "libiosim_net.a"
  "libiosim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iosim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
