# Empty compiler generated dependencies file for iosim_net.
# This may be replaced when dependencies are built.
