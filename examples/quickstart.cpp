// Quickstart: run the paper's sort benchmark on the default virtual cluster
// (4 hosts x 4 VMs, 512 MB per data node) under three elevator pairs —
// the default (cfq, cfq), the paper's best (anticipatory, deadline), and
// the pair this substrate measures as best, (deadline, anticipatory) —
// each averaged over 3 seeds like the paper's 3-run averages.
#include <cstdio>

#include "cluster/runner.hpp"
#include "workloads/benchmarks.hpp"

using namespace iosim;

namespace {

cluster::RunResult run_pair(iosched::SchedulerPair pair, const mapred::JobConf& job) {
  cluster::ClusterConfig cfg;  // paper testbed defaults
  cfg.pair = pair;
  return cluster::run_job_avg(cfg, job, /*n_seeds=*/3);
}

void report(const char* label, const cluster::RunResult& r, double baseline) {
  std::printf("  %-28s: %7.1f s  [map %.1f | shuffle-tail %.1f | reduce %.1f]",
              label, r.seconds, r.ph1_seconds, r.ph2_seconds, r.ph3_seconds);
  if (baseline > 0) std::printf("  (%+.1f%% vs default)", 100.0 * (1.0 - r.seconds / baseline));
  std::printf("\n");
}

}  // namespace

int main() {
  const auto job = workloads::make_job(workloads::stream_sort());
  std::printf("sort benchmark, 4 hosts x 4 VMs, %lld MB per data node, 3-seed averages\n",
              static_cast<long long>(job.input_bytes_per_vm / mapred::kMiB));

  using K = iosched::SchedulerKind;
  const auto def = run_pair({K::kCfq, K::kCfq}, job);
  report("(cfq, cfq) — default", def, 0);
  const auto paper_best = run_pair({K::kAnticipatory, K::kDeadline}, job);
  report("(anticipatory, deadline)", paper_best, def.seconds);
  const auto here_best = run_pair({K::kDeadline, K::kAnticipatory}, job);
  report("(deadline, anticipatory)", here_best, def.seconds);

  std::printf(
      "\nThe paper measured ~9%% for its best pair on real Xen+Hadoop; this\n"
      "substrate agrees that the default is not optimal (best pair ~5%%\n"
      "faster) but ranks the sorted elevators closer together — see\n"
      "EXPERIMENTS.md deviation D2, and examples/adaptive_sort for the\n"
      "meta-scheduler that beats any single pair.\n");
  return 0;
}
