// Example: the full meta-scheduler pipeline on the sort benchmark.
//
// This is the paper's end-to-end story in one program:
//   1. profile the job once per candidate (VMM, VM) elevator pair,
//   2. run Algorithm 1 (greedy per-phase assignment probed with full
//      executions, switch costs included),
//   3. execute the job with the adaptive controller switching the pair at
//      the detected phase boundary,
// and compare against the default pair and the best single pair.
#include <cstdio>

#include "core/meta_scheduler.hpp"
#include "workloads/benchmarks.hpp"

using namespace iosim;

int main() {
  cluster::ClusterConfig cfg;  // 4 hosts x 4 VMs, the paper's testbed
  const auto jc = workloads::make_job(workloads::stream_sort());

  core::MetaSchedulerOptions opts;
  opts.plan = core::PhasePlan::for_job(jc, cfg.n_hosts * cfg.vms_per_host);
  opts.verbose = true;

  std::printf("sort, %d hosts x %d VMs, %lld MB per data node, %d phases (%.1f waves)\n\n",
              cfg.n_hosts, cfg.vms_per_host,
              static_cast<long long>(jc.input_bytes_per_vm / mapred::kMiB),
              opts.plan.count(),
              core::PhasePlan::waves(jc, cfg.n_hosts * cfg.vms_per_host));

  std::printf("step 1+2: profiling all 16 pairs, then Algorithm 1...\n");
  core::MetaScheduler ms(cfg, jc, opts);
  const core::MetaResult r = ms.optimize();

  std::printf("\nresult\n------\n");
  std::printf("solution schedule   : %s%s\n", r.solution.to_string().c_str(),
              r.fell_back ? "  (fell back to single pair)" : "");
  std::printf("runtime switches    : %d\n", r.solution.switches());
  std::printf("heuristic evals     : %d full executions beyond profiling\n",
              r.heuristic_evaluations);
  std::printf("default (cfq, cfq)  : %7.1f s\n", r.default_seconds);
  std::printf("best single pair    : %7.1f s  %s\n", r.best_single_seconds,
              r.best_single.to_string().c_str());
  std::printf("adaptive            : %7.1f s\n", r.adaptive_seconds);
  std::printf("improvement         : %5.1f%% vs default (paper: up to 25%%), "
              "%.1f%% vs best single (paper: ~10%%)\n",
              100.0 * r.improvement_vs_default(),
              100.0 * r.improvement_vs_best_single());

  std::printf("\nadaptive run phases : map %.1fs | shuffle tail %.1fs | reduce %.1fs\n",
              r.adaptive_run.ph1_seconds, r.adaptive_run.ph2_seconds,
              r.adaptive_run.ph3_seconds);
  return 0;
}
