// Example: a single-host scheduler playground.
//
// Four VMs on one physical machine each run a sequential writer (the Fig. 1
// microworkload); the program sweeps the VMM-level elevator and shows how
// the discipline changes aggregate throughput, per-VM fairness, and the
// disk's access pattern. A compact way to *see* why the paper's Dom0
// scheduler choice matters before involving all of Hadoop.
#include <cstdio>

#include "metrics/table.hpp"
#include "sim/stats.hpp"
#include "workloads/microbench.hpp"

using namespace iosim;
using iosched::SchedulerKind;

int main() {
  metrics::Table tab("4 VMs x 256 MB sequential write on one host");
  tab.headers({"VMM elevator", "elapsed (s)", "agg MB/s", "seq access %",
               "per-VM fairness (Jain)"});

  for (SchedulerKind vmm : {SchedulerKind::kCfq, SchedulerKind::kDeadline,
                            SchedulerKind::kAnticipatory, SchedulerKind::kNoop}) {
    sim::Simulator simr;
    virt::HostConfig hc;
    hc.dom0_blk.scheduler = vmm;
    virt::PhysicalHost host(simr, hc, 0, 0, /*seed=*/21);
    for (int v = 0; v < 4; ++v) host.add_vm();

    // Pure streaming writers (no fsync barriers): writeback keeps a deep
    // backlog, so the elevator's ordering quality fully shows.
    workloads::SeqWriteParams p;
    p.bytes_per_vm = 256LL * 1024 * 1024;
    p.fsync_every = 0;
    p.window = 64;
    const auto res = workloads::run_seq_writers(simr, host, p);

    // Fairness: how evenly the four writers finished.
    std::vector<double> per_vm;
    for (const auto& t : res.per_vm_done) per_vm.push_back(1.0 / t.sec());

    const auto& model = host.disk().model();
    const double seq_pct = 100.0 * static_cast<double>(model.sequential_accesses()) /
                           static_cast<double>(model.total_accesses());
    const double mb_s = 4.0 * 256.0 / res.elapsed.sec();

    tab.row({iosched::to_string(vmm), metrics::Table::num(res.elapsed.sec(), 1),
             metrics::Table::num(mb_s, 1), metrics::Table::num(seq_pct, 0),
             metrics::Table::num(sim::jain_fairness(per_vm), 3)});
  }
  tab.print();

  std::printf(
      "\nReading the table: the sorting disciplines keep most accesses\n"
      "sequential despite four interleaved writers; noop preserves arrival\n"
      "order and pays a mechanical positioning penalty on nearly every\n"
      "request — the effect behind the paper's Fig. 1 and Table I.\n");
  return 0;
}
