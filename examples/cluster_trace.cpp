// Example: run one sort job and dump a CSV trace of Dom0 I/O throughput
// (1-second windows, per host) plus the job's phase boundaries — the raw
// material for the paper's Fig. 3/Fig. 4 style plots.
//
// Usage: cluster_trace [pair] [output.csv]
//   pair: two letters, VMM then VM, from {n,d,a,c} — e.g. "ad" for
//         (anticipatory, deadline). Default: "cc".
#include <cstdio>
#include <string>

#include "cluster/runner.hpp"
#include "metrics/throughput_probe.hpp"
#include "workloads/benchmarks.hpp"

using namespace iosim;

int main(int argc, char** argv) {
  const std::string pair_str = argc > 1 ? argv[1] : "cc";
  const std::string out_path = argc > 2 ? argv[2] : "trace.csv";
  if (pair_str.size() != 2) {
    std::fprintf(stderr, "pair must be two letters from {n,d,a,c}\n");
    return 1;
  }
  const auto vmm = iosched::scheduler_from_string(pair_str.substr(0, 1));
  const auto guest = iosched::scheduler_from_string(pair_str.substr(1, 1));
  if (!vmm || !guest) {
    std::fprintf(stderr, "unknown scheduler letter in '%s'\n", pair_str.c_str());
    return 1;
  }

  cluster::ClusterConfig cfg;
  cfg.pair = {*vmm, *guest};
  const auto jc = workloads::make_job(workloads::stream_sort());

  std::vector<std::vector<double>> host_series;
  sim::Time t_maps, t_shuffle, t_done;
  const auto r = cluster::run_job(cfg, jc, [&](cluster::Cluster& cl, mapred::Job& job) {
    auto probes = std::make_shared<std::vector<std::unique_ptr<metrics::ThroughputProbe>>>();
    for (std::size_t h = 0; h < cl.n_hosts(); ++h) {
      probes->push_back(std::make_unique<metrics::ThroughputProbe>(cl.host(h).dom0_layer()));
    }
    job.on_done = [&, probes](sim::Time t) {
      t_done = t;
      for (const auto& p : *probes) {
        host_series.push_back(
            p->windowed_mb_s(sim::Time::zero(), t + sim::Time::from_ns(1),
                             sim::Time::from_sec(1))
                .raw());
      }
    };
  });
  t_maps = r.stats.t_maps_done;
  t_shuffle = r.stats.t_shuffle_done;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "second");
  for (std::size_t h = 0; h < host_series.size(); ++h) {
    std::fprintf(out, ",host%zu_mb_s", h);
  }
  std::fprintf(out, "\n");
  std::size_t n = 0;
  for (const auto& s : host_series) n = std::max(n, s.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::fprintf(out, "%zu", i);
    for (const auto& s : host_series) {
      std::fprintf(out, ",%.2f", i < s.size() ? s[i] : 0.0);
    }
    std::fprintf(out, "\n");
  }
  std::fclose(out);

  std::printf("pair %s: job %.1fs (maps done %.1fs, shuffle done %.1fs)\n",
              cfg.pair.to_string().c_str(), r.seconds, t_maps.sec(), t_shuffle.sec());
  std::printf("wrote %zu seconds x %zu hosts of Dom0 throughput to %s\n", n,
              host_series.size(), out_path.c_str());
  std::printf("phase boundaries for plotting: ph1 end = %.1f, ph2 end = %.1f, job end = %.1f\n",
              t_maps.sec(), t_shuffle.sec(), t_done.sec());
  return 0;
}
