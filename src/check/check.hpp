// iosim: the simulation invariant auditor.
//
// An always-compiled correctness net over the whole request path: block
// layers, the blkfront ring, the attribution stamps, the MapReduce task
// state machine, HDFS block placement, and the event arena. Instrumented
// layers call the on_*() hooks with plain scalars (so check/ depends on
// nothing above sim/); the auditor cross-checks them against the invariant
// catalog (DESIGN.md §10) and aggregates violations into a report that
// keeps the first occurrences with their simulated-time context.
//
// Like the tracer, the metrics registry, and the attribution layer, the
// auditor is reached through a thread-local pointer that is null by
// default: with no AuditorSession installed every hook site costs one
// hinted pointer check and nothing else — the pinned trace digests and the
// micro_sim baseline gate that claim. Armed sessions come in two modes:
//
//   * Mode::kAbort (the default): the first violation prints its full
//     context to stderr and aborts the process — CI soaks and local
//     debugging want the loudest possible failure at the earliest moment.
//   * Mode::kRecord: violations accumulate in the report; harnesses that
//     need to keep running (iosim-soak's minimizer, the mutation tests
//     that prove the auditor is not vacuous) read it afterwards.
//
// End-of-run verification (drain checks) is driven by cluster::run_job via
// verify_simulator() + Auditor::verify_end_of_run(): conservation and
// emptiness invariants only hold once the event queue actually drained, so
// budget-stopped runs skip them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/hint.hpp"

namespace iosim::sim {
class Simulator;
}

namespace iosim::check {

/// The invariant catalog. One enumerator per checkable property; DESIGN.md
/// §10 states each invariant, its layer, and its disarmed cost.
enum class Invariant : std::uint8_t {
  kEventArenaLeak = 0,    // sim: events pending / slots unreleased at drain
  kEventArenaCorrupt,     // sim: heap/free-list/generation integrity broken
  kBioConservation,       // blk: submitted != completed + errored at drain
  kDoubleDispatch,        // blk: a request dispatched while already in flight
  kDoubleCompletion,      // blk: a completion with no matching dispatch
  kElevatorAccounting,    // blk: per-direction queue counts != elevator size
  kRingBounds,            // virt: ring overfilled / negative outstanding / not drained
  kStampMonotonicity,     // obs: six-stamp stage times regress or endpoints missing
  kTaskStateMachine,      // mapred: illegal task transition under retry/speculation
  kBlockRefcount,         // hdfs: replica placement/failover accounting broken
  kSlotConservation,      // tenancy: slots over capacity / released unheld / leaked
  kJobAttribution,        // tenancy: bio ctx outside every admitted job's window
  kMembershipPlacement,   // membership: task placed on a dead/blacklisted VM
  kReplicaRepair,         // membership: replica-loss ledger unbalanced at drain
  kShedAccounting,        // tenancy: a shed job admitted, or vice versa
};
inline constexpr int kNumInvariants = 15;

const char* to_string(Invariant inv);

/// One recorded violation: which invariant, where (layer/track name), when
/// (simulated nanoseconds), and a one-line diagnostic.
struct Violation {
  Invariant inv = Invariant::kEventArenaLeak;
  std::string where;
  std::string detail;
  std::int64_t t_ns = 0;
};

/// Aggregated audit outcome: per-invariant counts plus the first
/// occurrences (capped) with their trace context.
struct CheckReport {
  std::uint64_t counts[kNumInvariants] = {};
  std::vector<Violation> first;  // first kMaxLogged violations, in order
  std::uint64_t total = 0;

  bool ok() const { return total == 0; }
  /// Human-readable multi-line summary ("" when ok()).
  std::string to_string() const;

  static constexpr std::size_t kMaxLogged = 64;
};

class Auditor {
 public:
  enum class Mode : std::uint8_t {
    kAbort = 0,   // first violation prints and aborts the process
    kRecord = 1,  // violations accumulate in the report
  };

  explicit Auditor(Mode mode = Mode::kAbort) : mode_(mode) {}
  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  // -- blk/iosched hooks (called by blk::BlockLayer) ------------------------
  // `layer` is an opaque identity (the BlockLayer address); the name is
  // captured on first touch for diagnostics.

  /// A bio entered the layer (counted exactly like
  /// BlockLayerCounters::bios_submitted — held bios count on release).
  /// `ctx` is the issuing context: once stream jobs are registered, a ctx
  /// inside the per-job window range must belong to an admitted, unretired
  /// job (kJobAttribution — no cross-job / dangling-job I/O).
  void on_bio_submitted(const void* layer, std::string_view name,
                        std::uint64_t ctx, std::int64_t t_ns);
  /// Elevator accounting snapshot after a queue mutation: the per-direction
  /// counts must always sum to the elevator's request count.
  void on_queue_accounting(const void* layer, std::string_view name,
                           std::size_t queued_reads, std::size_t queued_writes,
                           std::size_t sched_size, std::int64_t t_ns);
  /// A request left the elevator for the sink.
  void on_request_dispatched(const void* layer, std::string_view name,
                             std::uint64_t rq_id, std::int64_t t_ns);
  /// A request completed (ok or errored); `n_bios` = merged bios it carried.
  void on_request_completed(const void* layer, std::string_view name,
                            std::uint64_t rq_id, std::uint32_t n_bios, bool ok,
                            std::int64_t t_ns);

  // -- virt hooks (called by virt::BlkfrontRing) -----------------------------

  /// A guest request of `n_segs` segments entered the ring; `before` is the
  /// outstanding segment count before the submit (must be < slots).
  void on_ring_submit(const void* ring, std::uint64_t vm_ctx, int before,
                      int n_segs, int slots, std::int64_t t_ns);
  /// One ring segment completed; `after` is the outstanding count after the
  /// decrement (must stay >= 0).
  void on_ring_complete(const void* ring, int after, std::int64_t t_ns);

  // -- obs hooks (called by obs::Attribution on record completion) -----------

  /// The six stage stamps of a completed record (-1 = unstamped). Endpoints
  /// (submit, complete) must be stamped; stamped stages must be
  /// non-decreasing in stage order.
  void on_stamps(int host, int vm, const std::int64_t* stamp, int n_stages,
                 std::int64_t t_ns);

  // -- mapred/hdfs hooks (called by mapred::Job / hdfs::Hdfs) ----------------
  // All task-level hooks are keyed by `job_id` so concurrent jobs audit
  // independently; single-job runs pass the legacy id 0. on_job_start must
  // precede the job's HDFS layout — blocks created afterwards (ids restart
  // at 0 per job) are attributed to the most recently started job.

  void on_job_start(int job_id, int n_maps, int n_reduces, int max_attempts);
  /// A map attempt launched on `vm`; `running_after` counts live copies of
  /// the task (primary + speculative, never more than 2). The placement must
  /// avoid VMs the membership hooks below reported dead or blacklisted
  /// (kMembershipPlacement); pass vm = -1 when placement is not modeled.
  void on_map_attempt_start(int job_id, int map_id, int attempt, int vm,
                            int running_after, bool speculative,
                            std::int64_t t_ns);
  /// A reduce attempt launched on `vm` (same placement rule).
  void on_reduce_attempt_start(int job_id, int reduce_id, int attempt, int vm,
                               std::int64_t t_ns);
  void on_map_commit(int job_id, int map_id, std::int64_t t_ns);
  /// A committed map's output became unreachable (its TaskTracker was
  /// declared dead) and the job scheduled a re-execution: the commit is
  /// rolled back so the eventual re-commit is not flagged as a double commit.
  void on_map_output_lost(int job_id, int map_id, std::int64_t t_ns);
  void on_reduce_commit(int job_id, int reduce_id, std::int64_t t_ns);
  void on_job_done(int job_id, int maps_done, int reduces_done, std::int64_t t_ns);
  void on_block_created(int block_id, int n_replicas, int vm0, int vm1,
                        int n_vms, std::int64_t t_ns);
  void on_hdfs_failover(int job_id, int map_id, int from_vm, int to_vm,
                        std::int64_t t_ns);

  // -- membership hooks (called by membership::MembershipService) ------------
  // The auditor mirrors the unschedulable set (dead + blacklisted VMs) and
  // flags any task attempt placed there (kMembershipPlacement), and runs a
  // replica-loss ledger: every on_replica_lost must be balanced by exactly
  // one on_replica_repaired or on_replica_abandoned before the run drains
  // (kReplicaRepair) — a repair pipeline that silently drops a block fails
  // the drain check.

  void on_vm_declared_dead(int vm, std::int64_t t_ns);
  void on_vm_rejoined(int vm, std::int64_t t_ns);
  void on_vm_blacklisted(int vm, std::int64_t t_ns);
  void on_vm_unblacklisted(int vm, std::int64_t t_ns);
  void on_replica_lost(int job_id, int block_id, int dead_vm, std::int64_t t_ns);
  void on_replica_repaired(int job_id, int block_id, int from_vm, int to_vm,
                           std::int64_t t_ns);
  void on_replica_abandoned(int job_id, int block_id, std::int64_t t_ns);

  // -- tenancy hooks (called by the slot arbiter / stream runner) ------------

  /// A stream job was admitted with the exclusive guest-ctx window
  /// [ctx_lo, ctx_hi). Windows of distinct jobs must not overlap.
  void on_stream_job_admit(int job_id, std::uint64_t ctx_lo, std::uint64_t ctx_hi,
                           std::int64_t t_ns);
  /// The job left the cluster (completed/aborted, called once the run
  /// drained): its window goes dead and its slot holdings must be zero.
  void on_stream_job_retire(int job_id, std::int64_t t_ns);
  /// Admission control refused the job before construction: it must never
  /// also be admitted, and an admitted job must never be shed
  /// (kShedAccounting keeps the two outcome ledgers disjoint).
  void on_stream_job_shed(int job_id, std::int64_t t_ns);
  /// One slot granted/returned on `vm`; `in_use_after`/`in_use_before` are
  /// the arbiter's per-VM in-use count around the mutation and `capacity`
  /// the VM's physical slot count (kSlotConservation).
  void on_slot_acquire(int job_id, int vm, bool reduce, int in_use_after,
                       int capacity, std::int64_t t_ns);
  void on_slot_release(int job_id, int vm, bool reduce, int in_use_before,
                       std::int64_t t_ns);

  // -- end-of-run verification ------------------------------------------------

  /// Drain-time checks over everything the hooks accumulated: per-layer bio
  /// conservation and empty in-flight sets, ring outstanding == 0, and (when
  /// a job committed) commit counts matching the job's totals. Only valid
  /// after the event queue drained — budget-stopped runs must skip it.
  void verify_end_of_run(std::int64_t t_ns);

  /// Record (or, in kAbort mode, die on) one violation.
  void violation(Invariant inv, std::string where, std::int64_t t_ns,
                 std::string detail);

  Mode mode() const { return mode_; }
  const CheckReport& report() const { return report_; }
  bool ok() const { return report_.ok(); }
  std::uint64_t violations_total() const { return report_.total; }
  std::uint64_t count(Invariant inv) const {
    return report_.counts[static_cast<int>(inv)];
  }

 private:
  struct LayerAccount {
    std::string name;
    std::uint64_t bios_submitted = 0;
    std::uint64_t bios_completed = 0;  // via completed requests, ok status
    std::uint64_t bios_errored = 0;    // via completed requests, error status
    std::unordered_set<std::uint64_t> in_flight;  // dispatched, not completed
  };
  struct RingAccount {
    std::uint64_t vm_ctx = 0;
    long long outstanding = 0;
  };

  /// Per-job audit state (keyed by job_id; concurrent jobs coexist).
  struct JobAccount {
    int job_id = 0;
    bool done_seen = false;
    bool retired = false;
    int n_maps = 0;
    int n_reduces = 0;
    int max_attempts = 0;
    std::vector<std::uint8_t> map_committed;
    std::vector<std::uint8_t> reduce_committed;
    int map_commits = 0;
    int reduce_commits = 0;
    // HDFS replica map: block id -> its (up to two) replica VMs. Block ids
    // restart at 0 for every job's input layout.
    std::vector<std::pair<int, int>> block_replicas;
    // Tenancy: the job's exclusive guest-ctx window (0,0 = none registered)
    // and its slot holdings as seen through the acquire/release hooks.
    std::uint64_t ctx_lo = 0, ctx_hi = 0;
    long long map_slots_held = 0;
    long long reduce_slots_held = 0;
    // Overload protection: shed and admitted must stay mutually exclusive.
    bool shed = false;
    bool admitted = false;
  };

  LayerAccount& layer_of(const void* layer, std::string_view name);
  void check_placement(const std::string& where, int vm, std::int64_t t_ns);
  RingAccount& ring_of(const void* ring, std::uint64_t vm_ctx);
  JobAccount& job_of(int job_id);
  JobAccount* find_job(int job_id);

  Mode mode_;
  CheckReport report_;

  // Layers, rings, and jobs in first-touch order (deterministic verify
  // output).
  std::unordered_map<const void*, std::size_t> layer_idx_;
  std::vector<LayerAccount> layers_;
  std::unordered_map<const void*, std::size_t> ring_idx_;
  std::vector<RingAccount> rings_;
  std::unordered_map<int, std::size_t> job_idx_;
  std::vector<JobAccount> jobs_;
  /// Index into jobs_ of the most recent on_job_start (owns block layout).
  std::size_t layout_job_ = 0;
  bool any_job_seen_ = false;
  /// Whether any stream window was registered (arms kJobAttribution).
  bool windows_armed_ = false;
  /// Membership mirror: VMs currently dead or blacklisted (no placements).
  std::unordered_set<int> unschedulable_vms_;
  /// Replica-loss ledger: losses not yet repaired or abandoned. Must be zero
  /// at drain (kReplicaRepair).
  long long replicas_outstanding_ = 0;
};

/// Per-thread auditor; null (default) = auditing off. Inline thread_local +
/// branch hint for the same hot-path and sweep-worker isolation reasons as
/// trace::tracer() — see trace/trace.hpp.
namespace detail {
inline thread_local Auditor* g_auditor = nullptr;
}
inline Auditor* auditor() {
  Auditor* a = detail::g_auditor;
  return trace::detail::unlikely_on(a != nullptr) ? a : nullptr;
}
inline void set_auditor(Auditor* a) { detail::g_auditor = a; }

/// RAII install/uninstall, mirroring TraceSession / AttributionSession.
class AuditorSession {
 public:
  explicit AuditorSession(Auditor::Mode mode = Auditor::Mode::kAbort)
      : auditor_(mode), prev_(check::auditor()) {
    set_auditor(&auditor_);
  }
  ~AuditorSession() { set_auditor(prev_); }
  AuditorSession(const AuditorSession&) = delete;
  AuditorSession& operator=(const AuditorSession&) = delete;

  Auditor& auditor() { return auditor_; }

 private:
  Auditor auditor_;
  Auditor* prev_;
};

/// Event-arena checks against a simulator: structural integrity always
/// (Simulator::audit()), plus leak checks when `drained` — a drained loop
/// must hold zero pending events and every arena slot must be back on the
/// free list.
void verify_simulator(Auditor& a, const sim::Simulator& simr, bool drained);

}  // namespace iosim::check
