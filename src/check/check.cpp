#include "check/check.hpp"

#include <cstdio>
#include <cstdlib>

#include "sim/simulator.hpp"

namespace iosim::check {

const char* to_string(Invariant inv) {
  switch (inv) {
    case Invariant::kEventArenaLeak: return "event-arena-leak";
    case Invariant::kEventArenaCorrupt: return "event-arena-corrupt";
    case Invariant::kBioConservation: return "bio-conservation";
    case Invariant::kDoubleDispatch: return "double-dispatch";
    case Invariant::kDoubleCompletion: return "double-completion";
    case Invariant::kElevatorAccounting: return "elevator-accounting";
    case Invariant::kRingBounds: return "ring-bounds";
    case Invariant::kStampMonotonicity: return "stamp-monotonicity";
    case Invariant::kTaskStateMachine: return "task-state-machine";
    case Invariant::kBlockRefcount: return "block-refcount";
    case Invariant::kSlotConservation: return "slot-conservation";
    case Invariant::kJobAttribution: return "job-attribution";
    case Invariant::kMembershipPlacement: return "membership-placement";
    case Invariant::kReplicaRepair: return "replica-repair";
    case Invariant::kShedAccounting: return "shed-accounting";
  }
  return "?";
}

std::string CheckReport::to_string() const {
  if (ok()) return "";
  std::string s = "invariant violations: " + std::to_string(total) + "\n";
  for (int i = 0; i < kNumInvariants; ++i) {
    if (counts[i] == 0) continue;
    s += "  " + std::string(check::to_string(static_cast<Invariant>(i))) + ": " +
         std::to_string(counts[i]) + "\n";
  }
  for (const auto& v : first) {
    char t[40];
    std::snprintf(t, sizeof t, "%.6f", static_cast<double>(v.t_ns) / 1e9);
    s += "  [" + std::string(check::to_string(v.inv)) + "] t=" + t + "s " +
         v.where + ": " + v.detail + "\n";
  }
  if (total > first.size()) {
    s += "  (" + std::to_string(total - first.size()) + " more not logged)\n";
  }
  return s;
}

void Auditor::violation(Invariant inv, std::string where, std::int64_t t_ns,
                        std::string detail) {
  ++report_.counts[static_cast<int>(inv)];
  ++report_.total;
  if (report_.first.size() < CheckReport::kMaxLogged) {
    report_.first.push_back({inv, where, detail, t_ns});
  }
  if (mode_ == Mode::kAbort) {
    std::fprintf(stderr,
                 "iosim invariant violated: [%s] t=%.6fs %s: %s\n%s",
                 check::to_string(inv), static_cast<double>(t_ns) / 1e9,
                 where.c_str(), detail.c_str(), report_.to_string().c_str());
    std::abort();
  }
}

Auditor::LayerAccount& Auditor::layer_of(const void* layer, std::string_view name) {
  if (auto it = layer_idx_.find(layer); it != layer_idx_.end()) {
    return layers_[it->second];
  }
  layer_idx_.emplace(layer, layers_.size());
  layers_.emplace_back();
  layers_.back().name = std::string(name);
  return layers_.back();
}

Auditor::RingAccount& Auditor::ring_of(const void* ring, std::uint64_t vm_ctx) {
  if (auto it = ring_idx_.find(ring); it != ring_idx_.end()) {
    return rings_[it->second];
  }
  ring_idx_.emplace(ring, rings_.size());
  rings_.emplace_back();
  rings_.back().vm_ctx = vm_ctx;
  return rings_.back();
}

Auditor::JobAccount& Auditor::job_of(int job_id) {
  if (auto it = job_idx_.find(job_id); it != job_idx_.end()) {
    return jobs_[it->second];
  }
  job_idx_.emplace(job_id, jobs_.size());
  jobs_.emplace_back();
  jobs_.back().job_id = job_id;
  return jobs_.back();
}

Auditor::JobAccount* Auditor::find_job(int job_id) {
  const auto it = job_idx_.find(job_id);
  return it == job_idx_.end() ? nullptr : &jobs_[it->second];
}

void Auditor::on_bio_submitted(const void* layer, std::string_view name,
                               std::uint64_t ctx, std::int64_t t_ns) {
  ++layer_of(layer, name).bios_submitted;
  // Job-attribution guard, armed only once stream windows exist: a bio
  // carrying a per-job ctx must come from an admitted, unretired job.
  if (!windows_armed_ || ctx < 1'000'000) return;
  for (const auto& j : jobs_) {
    if (j.ctx_lo <= ctx && ctx < j.ctx_hi) {
      if (j.retired) {
        violation(Invariant::kJobAttribution, std::string(name), t_ns,
                  "bio with ctx " + std::to_string(ctx) + " of retired job " +
                      std::to_string(j.job_id));
      }
      return;
    }
  }
  violation(Invariant::kJobAttribution, std::string(name), t_ns,
            "bio ctx " + std::to_string(ctx) +
                " lies in no admitted job's window");
}

void Auditor::on_queue_accounting(const void* layer, std::string_view name,
                                  std::size_t queued_reads,
                                  std::size_t queued_writes,
                                  std::size_t sched_size, std::int64_t t_ns) {
  if (queued_reads + queued_writes == sched_size) return;
  LayerAccount& acct = layer_of(layer, name);
  violation(Invariant::kElevatorAccounting, acct.name, t_ns,
            "per-direction counts (reads=" + std::to_string(queued_reads) +
                " + writes=" + std::to_string(queued_writes) +
                ") != elevator size " + std::to_string(sched_size));
}

void Auditor::on_request_dispatched(const void* layer, std::string_view name,
                                    std::uint64_t rq_id, std::int64_t t_ns) {
  LayerAccount& acct = layer_of(layer, name);
  if (!acct.in_flight.insert(rq_id).second) {
    violation(Invariant::kDoubleDispatch, acct.name, t_ns,
              "request " + std::to_string(rq_id) +
                  " dispatched while already in flight");
  }
}

void Auditor::on_request_completed(const void* layer, std::string_view name,
                                   std::uint64_t rq_id, std::uint32_t n_bios,
                                   bool ok, std::int64_t t_ns) {
  LayerAccount& acct = layer_of(layer, name);
  if (acct.in_flight.erase(rq_id) == 0) {
    violation(Invariant::kDoubleCompletion, acct.name, t_ns,
              "completion of request " + std::to_string(rq_id) +
                  " with no matching dispatch (completed twice or never "
                  "dispatched)");
    return;  // don't double-count its bios either
  }
  (ok ? acct.bios_completed : acct.bios_errored) += n_bios;
}

void Auditor::on_ring_submit(const void* ring, std::uint64_t vm_ctx, int before,
                             int n_segs, int slots, std::int64_t t_ns) {
  RingAccount& acct = ring_of(ring, vm_ctx);
  const std::string where = "ring/vm" + std::to_string(vm_ctx);
  if (before >= slots) {
    violation(Invariant::kRingBounds, where, t_ns,
              "submit with ring full: outstanding " + std::to_string(before) +
                  " >= slots " + std::to_string(slots));
  }
  if (n_segs <= 0) {
    violation(Invariant::kRingBounds, where, t_ns,
              "submit split into " + std::to_string(n_segs) + " segments");
  }
  if (before != acct.outstanding) {
    violation(Invariant::kRingBounds, where, t_ns,
              "ring outstanding " + std::to_string(before) +
                  " != audited count " + std::to_string(acct.outstanding));
  }
  acct.outstanding = before + n_segs;
}

void Auditor::on_ring_complete(const void* ring, int after, std::int64_t t_ns) {
  RingAccount& acct = ring_of(ring, 0);
  const std::string where = "ring/vm" + std::to_string(acct.vm_ctx);
  if (after < 0) {
    violation(Invariant::kRingBounds, where, t_ns,
              "outstanding went negative: " + std::to_string(after));
  }
  --acct.outstanding;
  if (after != acct.outstanding) {
    violation(Invariant::kRingBounds, where, t_ns,
              "ring outstanding " + std::to_string(after) + " != audited count " +
                  std::to_string(acct.outstanding));
    acct.outstanding = after;  // resync so one bug reports once, not per I/O
  }
}

void Auditor::on_stamps(int host, int vm, const std::int64_t* stamp,
                        int n_stages, std::int64_t t_ns) {
  const auto where = [&] {
    return "host" + std::to_string(host) + "/vm" + std::to_string(vm);
  };
  if (n_stages <= 0) return;
  if (stamp[0] < 0) {
    violation(Invariant::kStampMonotonicity, where(), t_ns,
              "record completed without a submit stamp");
  }
  if (stamp[n_stages - 1] < 0) {
    violation(Invariant::kStampMonotonicity, where(), t_ns,
              "record completed without a completion stamp");
  }
  std::int64_t prev = -1;
  int prev_stage = -1;
  for (int s = 0; s < n_stages; ++s) {
    if (stamp[s] < 0) continue;  // unstamped stages are legal mid-path
    if (prev_stage >= 0 && stamp[s] < prev) {
      violation(Invariant::kStampMonotonicity, where(), t_ns,
                "stage " + std::to_string(s) + " stamped at " +
                    std::to_string(stamp[s]) + "ns, before stage " +
                    std::to_string(prev_stage) + " at " + std::to_string(prev) +
                    "ns");
    }
    prev = stamp[s];
    prev_stage = s;
  }
}

void Auditor::on_job_start(int job_id, int n_maps, int n_reduces,
                           int max_attempts) {
  JobAccount& j = job_of(job_id);
  any_job_seen_ = true;
  layout_job_ = job_idx_[job_id];
  j.done_seen = false;
  j.n_maps = n_maps;
  j.n_reduces = n_reduces;
  j.max_attempts = max_attempts;
  j.map_committed.assign(static_cast<std::size_t>(n_maps < 0 ? 0 : n_maps), 0);
  j.reduce_committed.assign(static_cast<std::size_t>(n_reduces < 0 ? 0 : n_reduces), 0);
  j.map_commits = 0;
  j.reduce_commits = 0;
  j.block_replicas.clear();
}

void Auditor::check_placement(const std::string& where, int vm,
                              std::int64_t t_ns) {
  if (vm < 0) return;  // placement not modeled by the caller
  if (unschedulable_vms_.count(vm) != 0) {
    violation(Invariant::kMembershipPlacement, where, t_ns,
              "attempt placed on vm" + std::to_string(vm) +
                  ", which is declared dead or blacklisted");
  }
}

void Auditor::on_map_attempt_start(int job_id, int map_id, int attempt, int vm,
                                   int running_after, bool speculative,
                                   std::int64_t t_ns) {
  JobAccount& j = job_of(job_id);
  const std::string where = "job" + std::to_string(job_id) + "/map" +
                            std::to_string(map_id);
  check_placement(where, vm, t_ns);
  if (map_id < 0 || map_id >= j.n_maps) {
    violation(Invariant::kTaskStateMachine, where, t_ns,
              "attempt for out-of-range map id (maps_total=" +
                  std::to_string(j.n_maps) + ")");
    return;
  }
  if (running_after < 1 || running_after > 2) {
    violation(Invariant::kTaskStateMachine, where, t_ns,
              "running copies = " + std::to_string(running_after) +
                  " (a task runs as at most primary + one speculative copy)");
  }
  if (!speculative && (attempt < 1 || attempt > j.max_attempts)) {
    violation(Invariant::kTaskStateMachine, where, t_ns,
              "attempt " + std::to_string(attempt) + " outside budget 1.." +
                  std::to_string(j.max_attempts));
  }
  if (j.map_committed[static_cast<std::size_t>(map_id)]) {
    violation(Invariant::kTaskStateMachine, where, t_ns,
              "attempt launched after the task already committed");
  }
}

void Auditor::on_map_commit(int job_id, int map_id, std::int64_t t_ns) {
  JobAccount& j = job_of(job_id);
  const std::string where = "job" + std::to_string(job_id) + "/map" +
                            std::to_string(map_id);
  if (map_id < 0 || map_id >= j.n_maps) {
    violation(Invariant::kTaskStateMachine, where, t_ns,
              "commit for out-of-range map id");
    return;
  }
  auto& done = j.map_committed[static_cast<std::size_t>(map_id)];
  if (done) {
    violation(Invariant::kTaskStateMachine, where, t_ns,
              "map committed twice (photo-finish guard failed)");
    return;
  }
  done = 1;
  ++j.map_commits;
}

void Auditor::on_reduce_attempt_start(int job_id, int reduce_id, int attempt,
                                      int vm, std::int64_t t_ns) {
  JobAccount& j = job_of(job_id);
  const std::string where = "job" + std::to_string(job_id) + "/reduce" +
                            std::to_string(reduce_id);
  check_placement(where, vm, t_ns);
  if (reduce_id < 0 || reduce_id >= j.n_reduces) {
    violation(Invariant::kTaskStateMachine, where, t_ns,
              "attempt for out-of-range reduce id (reduces_total=" +
                  std::to_string(j.n_reduces) + ")");
    return;
  }
  if (attempt < 1 || attempt > j.max_attempts) {
    violation(Invariant::kTaskStateMachine, where, t_ns,
              "attempt " + std::to_string(attempt) + " outside budget 1.." +
                  std::to_string(j.max_attempts));
  }
  if (j.reduce_committed[static_cast<std::size_t>(reduce_id)]) {
    violation(Invariant::kTaskStateMachine, where, t_ns,
              "attempt launched after the reduce already committed");
  }
}

void Auditor::on_map_output_lost(int job_id, int map_id, std::int64_t t_ns) {
  JobAccount& j = job_of(job_id);
  const std::string where = "job" + std::to_string(job_id) + "/map" +
                            std::to_string(map_id);
  if (map_id < 0 || map_id >= j.n_maps) {
    violation(Invariant::kTaskStateMachine, where, t_ns,
              "output-lost for out-of-range map id");
    return;
  }
  auto& done = j.map_committed[static_cast<std::size_t>(map_id)];
  if (!done) {
    violation(Invariant::kTaskStateMachine, where, t_ns,
              "output lost for a map that never committed");
    return;
  }
  done = 0;  // roll back; the re-execution will commit again
  --j.map_commits;
}

void Auditor::on_reduce_commit(int job_id, int reduce_id, std::int64_t t_ns) {
  JobAccount& j = job_of(job_id);
  const std::string where = "job" + std::to_string(job_id) + "/reduce" +
                            std::to_string(reduce_id);
  if (reduce_id < 0 || reduce_id >= j.n_reduces) {
    violation(Invariant::kTaskStateMachine, where, t_ns,
              "commit for out-of-range reduce id");
    return;
  }
  auto& done = j.reduce_committed[static_cast<std::size_t>(reduce_id)];
  if (done) {
    violation(Invariant::kTaskStateMachine, where, t_ns,
              "reduce committed twice");
    return;
  }
  done = 1;
  ++j.reduce_commits;
}

void Auditor::on_job_done(int job_id, int maps_done, int reduces_done,
                          std::int64_t t_ns) {
  JobAccount& j = job_of(job_id);
  const std::string where = "job" + std::to_string(job_id);
  j.done_seen = true;
  if (maps_done != j.n_maps || j.map_commits != j.n_maps) {
    violation(Invariant::kTaskStateMachine, where, t_ns,
              "job done with maps_done=" + std::to_string(maps_done) +
                  ", committed=" + std::to_string(j.map_commits) + ", total=" +
                  std::to_string(j.n_maps));
  }
  if (reduces_done != j.n_reduces || j.reduce_commits != j.n_reduces) {
    violation(Invariant::kTaskStateMachine, where, t_ns,
              "job done with reduces_done=" + std::to_string(reduces_done) +
                  ", committed=" + std::to_string(j.reduce_commits) +
                  ", total=" + std::to_string(j.n_reduces));
  }
}

void Auditor::on_stream_job_admit(int job_id, std::uint64_t ctx_lo,
                                  std::uint64_t ctx_hi, std::int64_t t_ns) {
  const std::string where = "job" + std::to_string(job_id);
  if (ctx_lo >= ctx_hi) {
    violation(Invariant::kJobAttribution, where, t_ns,
              "empty ctx window [" + std::to_string(ctx_lo) + ", " +
                  std::to_string(ctx_hi) + ")");
    return;
  }
  for (const auto& other : jobs_) {
    if (other.ctx_hi == 0 || other.job_id == job_id) continue;
    if (ctx_lo < other.ctx_hi && other.ctx_lo < ctx_hi) {
      violation(Invariant::kJobAttribution, where, t_ns,
                "ctx window overlaps job " + std::to_string(other.job_id));
    }
  }
  JobAccount& j = job_of(job_id);
  if (j.shed) {
    violation(Invariant::kShedAccounting, where, t_ns,
              "admitted after having been shed");
  }
  j.admitted = true;
  j.ctx_lo = ctx_lo;
  j.ctx_hi = ctx_hi;
  j.retired = false;
  windows_armed_ = true;
}

void Auditor::on_stream_job_retire(int job_id, std::int64_t t_ns) {
  JobAccount& j = job_of(job_id);
  const std::string where = "job" + std::to_string(job_id);
  if (j.retired) {
    violation(Invariant::kJobAttribution, where, t_ns, "retired twice");
  }
  j.retired = true;
  if (j.map_slots_held != 0 || j.reduce_slots_held != 0) {
    violation(Invariant::kSlotConservation, where, t_ns,
              "retired still holding " + std::to_string(j.map_slots_held) +
                  " map / " + std::to_string(j.reduce_slots_held) +
                  " reduce slot(s)");
  }
}

void Auditor::on_slot_acquire(int job_id, int vm, bool reduce, int in_use_after,
                              int capacity, std::int64_t t_ns) {
  JobAccount& j = job_of(job_id);
  const std::string where = "job" + std::to_string(job_id) + "/vm" +
                            std::to_string(vm);
  if (in_use_after > capacity) {
    violation(Invariant::kSlotConservation, where, t_ns,
              std::string(reduce ? "reduce" : "map") + " slots in use " +
                  std::to_string(in_use_after) + " > capacity " +
                  std::to_string(capacity));
  }
  ++(reduce ? j.reduce_slots_held : j.map_slots_held);
}

void Auditor::on_slot_release(int job_id, int vm, bool reduce, int in_use_before,
                              std::int64_t t_ns) {
  JobAccount& j = job_of(job_id);
  const std::string where = "job" + std::to_string(job_id) + "/vm" +
                            std::to_string(vm);
  if (in_use_before <= 0) {
    violation(Invariant::kSlotConservation, where, t_ns,
              std::string(reduce ? "reduce" : "map") +
                  " slot released with none in use on the VM");
  }
  auto& held = reduce ? j.reduce_slots_held : j.map_slots_held;
  --held;
  if (held < 0) {
    violation(Invariant::kSlotConservation, where, t_ns,
              "job released a " + std::string(reduce ? "reduce" : "map") +
                  " slot it never held");
    held = 0;  // resync so one bug reports once
  }
}

void Auditor::on_block_created(int block_id, int n_replicas, int vm0, int vm1,
                               int n_vms, std::int64_t t_ns) {
  const std::string where = "block" + std::to_string(block_id);
  if (n_replicas != 2) {
    violation(Invariant::kBlockRefcount, where, t_ns,
              "created with " + std::to_string(n_replicas) +
                  " replicas (expected 2)");
  }
  if (vm0 < 0 || vm0 >= n_vms || vm1 < 0 || vm1 >= n_vms) {
    violation(Invariant::kBlockRefcount, where, t_ns,
              "replica VM out of range: " + std::to_string(vm0) + "," +
                  std::to_string(vm1) + " of " + std::to_string(n_vms) + " VMs");
  }
  if (n_vms > 1 && vm0 == vm1) {
    violation(Invariant::kBlockRefcount, where, t_ns,
              "both replicas on vm" + std::to_string(vm0) +
                  " in a multi-VM cluster");
  }
  if (block_id >= 0) {
    // Blocks restart at id 0 for every job's input layout; attribute them to
    // the job whose on_job_start was seen most recently (layout in progress).
    auto& replicas = any_job_seen_ ? jobs_[layout_job_].block_replicas
                                   : job_of(0).block_replicas;
    if (static_cast<std::size_t>(block_id) >= replicas.size()) {
      replicas.resize(static_cast<std::size_t>(block_id) + 1, {-1, -1});
    }
    replicas[static_cast<std::size_t>(block_id)] = {vm0, vm1};
  }
}

void Auditor::on_hdfs_failover(int job_id, int map_id, int from_vm, int to_vm,
                               std::int64_t t_ns) {
  const std::string where = "job" + std::to_string(job_id) + "/map" +
                            std::to_string(map_id);
  if (to_vm == from_vm) {
    violation(Invariant::kBlockRefcount, where, t_ns,
              "failover to the failing replica itself (vm" +
                  std::to_string(to_vm) + ")");
  }
  // Map input blocks are created 1:1 with map ids; the failover target must
  // be one of the block's recorded replicas (within the owning job).
  const JobAccount* j = find_job(job_id);
  if (j != nullptr && map_id >= 0 &&
      static_cast<std::size_t>(map_id) < j->block_replicas.size()) {
    const auto [vm0, vm1] = j->block_replicas[static_cast<std::size_t>(map_id)];
    if (to_vm != vm0 && to_vm != vm1) {
      violation(Invariant::kBlockRefcount, where, t_ns,
                "failover to vm" + std::to_string(to_vm) +
                    ", which holds no replica of the block (replicas: vm" +
                    std::to_string(vm0) + ", vm" + std::to_string(vm1) + ")");
    }
  }
}

void Auditor::on_vm_declared_dead(int vm, std::int64_t t_ns) {
  if (!unschedulable_vms_.insert(vm).second) {
    violation(Invariant::kMembershipPlacement, "vm" + std::to_string(vm), t_ns,
              "declared dead while already unschedulable");
  }
}

void Auditor::on_vm_rejoined(int vm, std::int64_t t_ns) {
  if (unschedulable_vms_.erase(vm) == 0) {
    violation(Invariant::kMembershipPlacement, "vm" + std::to_string(vm), t_ns,
              "rejoined without being declared dead");
  }
}

void Auditor::on_vm_blacklisted(int vm, std::int64_t t_ns) {
  if (!unschedulable_vms_.insert(vm).second) {
    violation(Invariant::kMembershipPlacement, "vm" + std::to_string(vm), t_ns,
              "blacklisted while already unschedulable");
  }
}

void Auditor::on_vm_unblacklisted(int vm, std::int64_t t_ns) {
  if (unschedulable_vms_.erase(vm) == 0) {
    violation(Invariant::kMembershipPlacement, "vm" + std::to_string(vm), t_ns,
              "unblacklisted without being blacklisted");
  }
}

void Auditor::on_replica_lost(int job_id, int block_id, int dead_vm,
                              std::int64_t t_ns) {
  (void)dead_vm;
  (void)job_id;
  (void)block_id;
  (void)t_ns;
  ++replicas_outstanding_;
}

void Auditor::on_replica_repaired(int job_id, int block_id, int from_vm,
                                  int to_vm, std::int64_t t_ns) {
  const std::string where = "job" + std::to_string(job_id) + "/block" +
                            std::to_string(block_id);
  if (to_vm == from_vm) {
    violation(Invariant::kReplicaRepair, where, t_ns,
              "replica repaired onto the dead VM itself (vm" +
                  std::to_string(to_vm) + ")");
  }
  if (--replicas_outstanding_ < 0) {
    violation(Invariant::kReplicaRepair, where, t_ns,
              "repair reported for a replica never reported lost");
    replicas_outstanding_ = 0;  // resync so one bug reports once
  }
  // Keep the failover cross-check honest: the block's replica set changed.
  JobAccount* j = find_job(job_id);
  if (j != nullptr && block_id >= 0 &&
      static_cast<std::size_t>(block_id) < j->block_replicas.size()) {
    auto& [vm0, vm1] = j->block_replicas[static_cast<std::size_t>(block_id)];
    if (vm0 == from_vm) {
      vm0 = to_vm;
    } else if (vm1 == from_vm) {
      vm1 = to_vm;
    } else {
      violation(Invariant::kReplicaRepair, where, t_ns,
                "repair replaces vm" + std::to_string(from_vm) +
                    ", which holds no replica of the block (replicas: vm" +
                    std::to_string(vm0) + ", vm" + std::to_string(vm1) + ")");
    }
  }
}

void Auditor::on_replica_abandoned(int job_id, int block_id, std::int64_t t_ns) {
  const std::string where = "job" + std::to_string(job_id) + "/block" +
                            std::to_string(block_id);
  if (--replicas_outstanding_ < 0) {
    violation(Invariant::kReplicaRepair, where, t_ns,
              "abandonment reported for a replica never reported lost");
    replicas_outstanding_ = 0;
  }
}

void Auditor::on_stream_job_shed(int job_id, std::int64_t t_ns) {
  JobAccount& j = job_of(job_id);
  const std::string where = "job" + std::to_string(job_id);
  if (j.admitted) {
    violation(Invariant::kShedAccounting, where, t_ns,
              "shed after having been admitted");
  }
  if (j.shed) {
    violation(Invariant::kShedAccounting, where, t_ns, "shed twice");
  }
  j.shed = true;
}

void Auditor::verify_end_of_run(std::int64_t t_ns) {
  if (replicas_outstanding_ != 0) {
    violation(Invariant::kReplicaRepair, "membership", t_ns,
              std::to_string(replicas_outstanding_) +
                  " lost replica(s) neither repaired nor abandoned at drain");
  }
  for (const auto& acct : layers_) {
    if (!acct.in_flight.empty()) {
      violation(Invariant::kBioConservation, acct.name, t_ns,
                std::to_string(acct.in_flight.size()) +
                    " request(s) still in flight at drain");
    }
    if (acct.bios_submitted != acct.bios_completed + acct.bios_errored) {
      violation(Invariant::kBioConservation, acct.name, t_ns,
                "submitted " + std::to_string(acct.bios_submitted) +
                    " != completed " + std::to_string(acct.bios_completed) +
                    " + errored " + std::to_string(acct.bios_errored));
    }
  }
  for (const auto& acct : rings_) {
    if (acct.outstanding != 0) {
      violation(Invariant::kRingBounds, "ring/vm" + std::to_string(acct.vm_ctx),
                t_ns,
                std::to_string(acct.outstanding) +
                    " segment(s) outstanding at drain");
    }
  }
  for (const auto& j : jobs_) {
    const std::string where = "job" + std::to_string(j.job_id);
    if (j.done_seen) {
      if (j.map_commits != j.n_maps) {
        violation(Invariant::kTaskStateMachine, where, t_ns,
                  "drained with " + std::to_string(j.map_commits) + "/" +
                      std::to_string(j.n_maps) + " maps committed");
      }
      if (j.reduce_commits != j.n_reduces) {
        violation(Invariant::kTaskStateMachine, where, t_ns,
                  "drained with " + std::to_string(j.reduce_commits) + "/" +
                      std::to_string(j.n_reduces) + " reduces committed");
      }
    }
    if (j.map_slots_held != 0 || j.reduce_slots_held != 0) {
      violation(Invariant::kSlotConservation, where, t_ns,
                "drained holding " + std::to_string(j.map_slots_held) +
                    " map / " + std::to_string(j.reduce_slots_held) +
                    " reduce slot(s)");
    }
  }
}

void verify_simulator(Auditor& a, const sim::Simulator& simr, bool drained) {
  std::string why;
  if (!simr.audit(&why)) {
    a.violation(Invariant::kEventArenaCorrupt, "sim", simr.now().ns(),
                std::move(why));
  }
  if (!drained) return;
  if (simr.pending() != 0) {
    a.violation(Invariant::kEventArenaLeak, "sim", simr.now().ns(),
                std::to_string(simr.pending()) +
                    " event(s) pending after a drained run");
  }
  const auto ps = simr.pool_stats();
  if (ps.free_slots != ps.slots) {
    a.violation(Invariant::kEventArenaLeak, "sim", simr.now().ns(),
                std::to_string(ps.slots - ps.free_slots) +
                    " arena slot(s) not back on the free list at drain");
  }
}

}  // namespace iosim::check
