// iosim: fluid flow network with max-min fair sharing.
//
// Models the paper's 1 GbE cluster fabric: every physical host has an uplink
// and a downlink of `host_bw` through a non-blocking switch; VM-to-VM
// traffic inside one host goes over a fast loopback path instead. Active
// flows receive their max-min fair share (recomputed on every arrival and
// departure — the classic water-filling algorithm), and flow completions are
// simulated exactly from the resulting piecewise-constant rates.
//
// This is the substrate for HDFS remote reads, shuffle fetches, and output
// replication in the MapReduce model.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/simulator.hpp"

namespace iosim::net {

using sim::Time;

struct NetParams {
  /// Per-host NIC bandwidth, bytes/second (1 Gb/s ≈ 119 MiB/s; we use the
  /// usual 125 MB/s line rate and let protocol efficiency be part of it).
  double host_bw = 117.0e6;
  /// Same-host VM-to-VM path (shared memory / bridge), bytes/second.
  double loopback_bw = 800.0e6;
  /// Fixed latency added to every flow (connection setup + first byte).
  Time flow_latency = Time::from_ms(1);
};

using FlowId = std::uint64_t;

/// One fluid flow between two hosts (src == dst means loopback).
class FlowNetwork {
 public:
  FlowNetwork(sim::Simulator& simr, int n_hosts, NetParams params);

  /// Start a flow of `bytes` from host `src` to host `dst`; `on_done` fires
  /// when the last byte arrives.
  FlowId start_flow(int src, int dst, std::int64_t bytes,
                    std::function<void(Time)> on_done);

  /// Number of flows currently in the system.
  std::size_t active_flows() const { return flows_.size(); }

  /// Total bytes delivered since construction.
  std::int64_t bytes_delivered() const { return bytes_delivered_; }

  const NetParams& params() const { return params_; }

 private:
  struct Flow {
    FlowId id;
    int src;
    int dst;
    double total = 0.0;  // payload bytes (for accounting)
    double remaining;    // bytes
    double rate = 0.0; // bytes/sec, valid since last_update_
    std::function<void(Time)> on_done;
  };

  void advance(Time now);       // progress all flows to `now`
  void recompute_rates();       // max-min fair share
  void schedule_next_completion(Time now);

  sim::Simulator& simr_;
  int n_hosts_;
  NetParams params_;
  FlowId next_id_ = 1;
  std::map<FlowId, Flow> flows_;
  Time last_update_;
  sim::EventId completion_ev_ = sim::kInvalidEvent;
  std::int64_t bytes_delivered_ = 0;
};

}  // namespace iosim::net
