#include "net/flow_network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace iosim::net {

namespace {
/// A flow finishing within this many bytes is considered done (guards the
/// floating-point fluid model against scheduling zero-length epochs).
constexpr double kEpsilonBytes = 1.0;
}  // namespace

FlowNetwork::FlowNetwork(sim::Simulator& simr, int n_hosts, NetParams params)
    : simr_(simr), n_hosts_(n_hosts), params_(params), last_update_(simr.now()) {}

FlowId FlowNetwork::start_flow(int src, int dst, std::int64_t bytes,
                               std::function<void(Time)> on_done) {
  assert(src >= 0 && src < n_hosts_);
  assert(dst >= 0 && dst < n_hosts_);
  assert(bytes > 0);
  const Time now = simr_.now();
  advance(now);

  Flow f;
  f.id = next_id_++;
  f.src = src;
  f.dst = dst;
  f.total = static_cast<double>(bytes);
  f.remaining = static_cast<double>(bytes) +
                params_.flow_latency.sec() * params_.host_bw;  // latency as
  // an equivalent preamble so tiny flows still take ~flow_latency.
  f.on_done = std::move(on_done);
  const FlowId id = f.id;
  flows_.emplace(id, std::move(f));

  recompute_rates();
  schedule_next_completion(now);
  return id;
}

void FlowNetwork::advance(Time now) {
  const double dt = (now - last_update_).sec();
  last_update_ = now;
  if (dt <= 0.0) return;
  for (auto& [id, f] : flows_) {
    (void)id;
    f.remaining -= f.rate * dt;
    if (f.remaining < 0.0) f.remaining = 0.0;
  }
}

void FlowNetwork::recompute_rates() {
  // Water-filling max-min fairness over directed host links. Loopback flows
  // use a per-host loopback link instead of up/down.
  struct Link {
    double cap;
    std::vector<Flow*> flows;
  };
  // Links: [0, n) uplinks, [n, 2n) downlinks, [2n, 3n) loopbacks.
  std::vector<Link> links(static_cast<std::size_t>(3 * n_hosts_));
  for (int h = 0; h < n_hosts_; ++h) {
    links[static_cast<std::size_t>(h)].cap = params_.host_bw;
    links[static_cast<std::size_t>(n_hosts_ + h)].cap = params_.host_bw;
    links[static_cast<std::size_t>(2 * n_hosts_ + h)].cap = params_.loopback_bw;
  }
  std::vector<std::vector<std::size_t>> flow_links;
  std::vector<Flow*> active;
  for (auto& [id, f] : flows_) {
    (void)id;
    f.rate = 0.0;
    active.push_back(&f);
    std::vector<std::size_t> ls;
    if (f.src == f.dst) {
      ls.push_back(static_cast<std::size_t>(2 * n_hosts_ + f.src));
    } else {
      ls.push_back(static_cast<std::size_t>(f.src));
      ls.push_back(static_cast<std::size_t>(n_hosts_ + f.dst));
    }
    for (std::size_t l : ls) links[l].flows.push_back(&f);
    flow_links.push_back(std::move(ls));
  }

  std::vector<bool> fixed(active.size(), false);
  std::vector<double> link_used(links.size(), 0.0);
  std::vector<int> link_unfixed(links.size(), 0);
  for (std::size_t l = 0; l < links.size(); ++l) {
    link_unfixed[l] = static_cast<int>(links[l].flows.size());
  }

  std::size_t remaining = active.size();
  while (remaining > 0) {
    // Find the bottleneck link: smallest fair share among links with
    // unfixed flows.
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_link = links.size();
    for (std::size_t l = 0; l < links.size(); ++l) {
      if (link_unfixed[l] == 0) continue;
      const double share = (links[l].cap - link_used[l]) / link_unfixed[l];
      if (share < best_share) {
        best_share = share;
        best_link = l;
      }
    }
    assert(best_link < links.size());
    if (best_share < 0.0) best_share = 0.0;

    // Fix every unfixed flow crossing the bottleneck at the fair share.
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (fixed[i]) continue;
      bool on_bottleneck = false;
      for (std::size_t l : flow_links[i]) {
        if (l == best_link) {
          on_bottleneck = true;
          break;
        }
      }
      if (!on_bottleneck) continue;
      active[i]->rate = best_share;
      fixed[i] = true;
      --remaining;
      for (std::size_t l : flow_links[i]) {
        link_used[l] += best_share;
        --link_unfixed[l];
      }
    }
  }
}

void FlowNetwork::schedule_next_completion(Time) {
  if (completion_ev_ != sim::kInvalidEvent) {
    simr_.cancel(completion_ev_);
    completion_ev_ = sim::kInvalidEvent;
  }
  if (flows_.empty()) return;

  double soonest = std::numeric_limits<double>::infinity();
  for (const auto& [id, f] : flows_) {
    (void)id;
    if (f.rate <= 0.0) continue;
    soonest = std::min(soonest, std::max(0.0, f.remaining - kEpsilonBytes) / f.rate);
  }
  if (!std::isfinite(soonest)) return;  // all rates zero: nothing will finish

  // +1 ns: the float->integer rounding must never schedule a zero-length
  // epoch, or the fluid model would spin at one timestamp forever.
  completion_ev_ = simr_.after(Time::from_sec_f(soonest) + Time::from_ns(1), [this] {
    completion_ev_ = sim::kInvalidEvent;
    const Time now2 = simr_.now();
    advance(now2);
    // Collect finished flows first: their callbacks may start new flows.
    std::vector<std::function<void(Time)>> done;
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (it->second.remaining <= kEpsilonBytes) {
        bytes_delivered_ += static_cast<std::int64_t>(it->second.total);
        done.push_back(std::move(it->second.on_done));
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
    recompute_rates();
    schedule_next_completion(now2);
    for (auto& fn : done) {
      if (fn) fn(now2);
    }
  });
}

}  // namespace iosim::net
