#include "core/adaptive_controller.hpp"

#include <cassert>

namespace iosim::core {

std::shared_ptr<AdaptiveController> AdaptiveController::attach(
    cluster::Cluster& cl, mapred::Job& job, PairSchedule schedule, PhasePlan plan) {
  assert(schedule.count() == plan.count());
  assert(cl.pair() == schedule.initial() &&
         "boot the cluster with schedule.initial(); phase 0 is not a switch");

  auto ctl = std::shared_ptr<AdaptiveController>(
      new AdaptiveController(cl, std::move(schedule)));
  PhaseDetector::attach(job, plan, [ctl](int phase, sim::Time t) {
    ctl->enter_phase(phase, t);
  });
  return ctl;
}

void AdaptiveController::enter_phase(int phase, sim::Time) {
  if (phase == 0) return;  // installed at boot
  if (phase >= schedule_.count()) return;
  const auto& target = schedule_.phases[static_cast<std::size_t>(phase)];
  if (!target.has_value()) return;  // "0": keep current pair, no switch
  if (*target == cl_.pair()) {
    // The paper found that re-issuing the switch command for the *same*
    // schedulers still costs time; the heuristic therefore encodes "same as
    // before" as 0 instead of a redundant switch. We honour an explicit
    // same-pair entry by performing the (costly) switch anyway.
    cl_.switch_pair(*target);
    ++switches_;
    return;
  }
  cl_.switch_pair(*target);
  ++switches_;
}

}  // namespace iosim::core
