#include "core/adaptive_controller.hpp"

#include <cassert>

#include "core/online_scheduler.hpp"
#include "trace/trace.hpp"
#include "virt/physical_host.hpp"

namespace iosim::core {

AdaptiveController::AdaptiveController(cluster::Cluster& cl, PairSchedule schedule)
    : cl_(cl), schedule_(std::move(schedule)), switcher_(PairSwitcher::create(cl)) {
  switcher_->on_switched = [&cl](int phase, iosched::SchedulerPair p) {
    if (auto* tr = trace::tracer()) {
      tr->instant(tr->track("core"), tr->ids.pair_switch, tr->ids.cat_core,
                  cl.simr().now(), tr->ids.index, phase, tr->ids.pair,
                  virt::PhysicalHost::pair_code(p));
    }
  };
  switcher_->on_switch_failed = [&cl](int phase, int attempt) {
    if (auto* tr = trace::tracer()) {
      tr->instant(tr->track("core"), tr->ids.switch_fail, tr->ids.cat_core,
                  cl.simr().now(), tr->ids.index, phase, tr->ids.attempt,
                  attempt);
    }
  };
}

std::shared_ptr<AdaptiveController> AdaptiveController::attach(
    cluster::Cluster& cl, mapred::Job& job, PairSchedule schedule, PhasePlan plan) {
  assert(schedule.count() == plan.count());
  assert(cl.pair() == schedule.initial() &&
         "boot the cluster with schedule.initial(); phase 0 is not a switch");

  auto ctl = std::shared_ptr<AdaptiveController>(
      new AdaptiveController(cl, std::move(schedule)));
  PhaseDetector::attach(job, plan, [ctl](int phase, sim::Time t) {
    ctl->enter_phase(phase, t);
  });
  return ctl;
}

std::shared_ptr<OnlineScheduler> AdaptiveController::attach_online(
    cluster::Cluster& cl, mapred::Job& job, PhasePlan plan,
    std::shared_ptr<OnlineScheduler> scheduler) {
  if (!scheduler) scheduler = OnlineScheduler::create(cl, OnlineConfig{});
  scheduler->attach_single_job(job, plan);
  return scheduler;
}

void AdaptiveController::enter_phase(int phase, sim::Time) {
  switcher_->supersede();  // a retry pending for the previous phase is stale
  if (phase == 0) return;  // installed at boot
  if (phase >= schedule_.count()) return;
  const auto& target = schedule_.phases[static_cast<std::size_t>(phase)];
  if (!target.has_value()) return;  // "0": keep current pair, no switch
  // The paper found that re-issuing the switch command for the *same*
  // schedulers still costs time; the heuristic therefore encodes "same as
  // before" as 0 instead of a redundant switch. We honour an explicit
  // same-pair entry by performing the (costly) switch anyway.
  switcher_->request(phase, *target);
}

}  // namespace iosim::core
