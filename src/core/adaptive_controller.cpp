#include "core/adaptive_controller.hpp"

#include <algorithm>
#include <cassert>

#include "trace/trace.hpp"
#include "virt/physical_host.hpp"

namespace iosim::core {

namespace {
void trace_pair_switch(cluster::Cluster& cl, int phase, iosched::SchedulerPair p) {
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("core"), tr->ids.pair_switch, tr->ids.cat_core,
                cl.simr().now(), tr->ids.index, phase, tr->ids.pair,
                virt::PhysicalHost::pair_code(p));
  }
}
}  // namespace

std::shared_ptr<AdaptiveController> AdaptiveController::attach(
    cluster::Cluster& cl, mapred::Job& job, PairSchedule schedule, PhasePlan plan) {
  assert(schedule.count() == plan.count());
  assert(cl.pair() == schedule.initial() &&
         "boot the cluster with schedule.initial(); phase 0 is not a switch");

  auto ctl = std::shared_ptr<AdaptiveController>(
      new AdaptiveController(cl, std::move(schedule)));
  PhaseDetector::attach(job, plan, [ctl](int phase, sim::Time t) {
    ctl->enter_phase(phase, t);
  });
  return ctl;
}

void AdaptiveController::enter_phase(int phase, sim::Time) {
  ++epoch_;  // supersede any retry still pending for the previous phase
  if (phase == 0) return;  // installed at boot
  if (phase >= schedule_.count()) return;
  const auto& target = schedule_.phases[static_cast<std::size_t>(phase)];
  if (!target.has_value()) return;  // "0": keep current pair, no switch
  // The paper found that re-issuing the switch command for the *same*
  // schedulers still costs time; the heuristic therefore encodes "same as
  // before" as 0 instead of a redundant switch. We honour an explicit
  // same-pair entry by performing the (costly) switch anyway.
  attempt_switch(phase, *target, /*failures=*/0);
}

void AdaptiveController::attempt_switch(int phase, iosched::SchedulerPair target,
                                        int failures) {
  if (cl_.try_switch_pair(target)) {
    trace_pair_switch(cl_, phase, target);
    ++switches_;
    return;
  }
  // Command rejected: the old pair stays installed on every host. Retry with
  // capped exponential backoff unless a newer phase supersedes the target
  // before the timer fires.
  ++switch_failures_;
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("core"), tr->ids.switch_fail, tr->ids.cat_core,
                cl_.simr().now(), tr->ids.index, phase, tr->ids.attempt,
                failures + 1);
  }
  if (failures >= kMaxRetries) return;  // budget exhausted: keep the old pair
  const sim::Time delay =
      std::min(kRetryCap, kRetryBase * static_cast<double>(std::int64_t{1} << std::min(failures, 3)));
  const int issued_epoch = epoch_;
  auto self = shared_from_this();
  cl_.simr().after(delay, [self, phase, target, failures, issued_epoch] {
    if (self->epoch_ != issued_epoch) return;  // superseded by a newer phase
    ++self->switch_retries_;
    self->attempt_switch(phase, target, failures + 1);
  });
}

}  // namespace iosim::core
