#include "core/fine_grained.hpp"

#include "trace/registry.hpp"
#include "trace/trace.hpp"
#include "virt/physical_host.hpp"

namespace iosim::core {

std::shared_ptr<FineGrainedController> FineGrainedController::attach(
    cluster::Cluster& cl, mapred::Job& job, FineGrainedPolicy policy,
    SwitchPredictor predictor) {
  auto ctl = std::shared_ptr<FineGrainedController>(new FineGrainedController(
      cl, job, std::move(policy), std::move(predictor)));
  cl.simr().after(ctl->policy_.sample_period,
                  [ctl] { ctl->sample(ctl); });
  return ctl;
}

FineGrainedController::FineGrainedController(cluster::Cluster& cl, mapred::Job& job,
                                             FineGrainedPolicy policy,
                                             SwitchPredictor predictor)
    : cl_(cl), job_(job), policy_(policy), predictor_(std::move(predictor)),
      hosts_(cl.n_hosts()) {}

void FineGrainedController::sample(const std::shared_ptr<FineGrainedController>& self) {
  if (job_.done()) return;  // stop sampling; no further events scheduled
  ++samples_;
  const sim::Time now = cl_.simr().now();
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("core"), tr->ids.fg_sample, tr->ids.cat_core, now,
                tr->ids.index, samples_);
  }
  if (auto* reg = trace::registry()) reg->counter("core.fg.samples").inc();

  for (std::size_t h = 0; h < cl_.n_hosts(); ++h) {
    auto& host = cl_.host(h);
    HostState& st = hosts_[h];
    const auto& c = host.dom0_layer().counters();
    const std::int64_t reads = c.bytes_completed[0] - st.last_read_bytes;
    const std::int64_t writes = c.bytes_completed[1] - st.last_write_bytes;
    st.last_read_bytes = c.bytes_completed[0];
    st.last_write_bytes = c.bytes_completed[1];
    const std::int64_t total = reads + writes;
    if (total <= 0) continue;  // idle host: nothing to adapt to

    const double read_share = static_cast<double>(reads) / static_cast<double>(total);
    iosched::SchedulerPair target = policy_.mixed_pair;
    if (read_share >= policy_.read_regime_threshold) {
      target = policy_.read_pair;
    } else if (read_share <= policy_.write_regime_threshold) {
      target = policy_.write_pair;
    }

    const iosched::SchedulerPair current = host.pair();
    if (target == current) {
      st.pending_count = 0;
      continue;
    }
    // Hysteresis: confirm the regime over consecutive samples.
    if (st.pending_count > 0 && st.pending_target == target) {
      ++st.pending_count;
    } else {
      st.pending_target = target;
      st.pending_count = 1;
    }
    if (st.pending_count < policy_.confirm_samples) continue;
    if (now - st.last_switch < policy_.min_switch_gap) continue;

    // Gate on the predictor: a rough remaining horizon from job progress.
    const double progress = job_.progress();
    const double elapsed = (now - job_.stats().t_start).sec();
    const double remaining =
        progress > 0.02 ? elapsed * (1.0 - progress) / progress : 600.0;
    if (!predictor_.worthwhile(current, target, policy_.assumed_rate_gain,
                               sim::Time::from_sec_f(remaining))) {
      continue;
    }

    if (auto* tr = trace::tracer()) {
      tr->instant(tr->track("core"), tr->ids.fg_switch, tr->ids.cat_core, now,
                  tr->ids.host, static_cast<std::int64_t>(h), tr->ids.pair,
                  virt::PhysicalHost::pair_code(target), tr->ids.share,
                  static_cast<std::int64_t>(read_share * 1000.0));
    }
    if (auto* reg = trace::registry()) reg->counter("core.fg.switches").inc();
    host.set_pair(target);
    st.last_switch = now;
    st.pending_count = 0;
    ++total_switches_;
  }

  cl_.simr().after(policy_.sample_period, [self] { self->sample(self); });
}

}  // namespace iosim::core
