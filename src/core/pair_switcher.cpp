#include "core/pair_switcher.hpp"

#include <algorithm>
#include <cstdint>

namespace iosim::core {

void PairSwitcher::attempt(int tag, iosched::SchedulerPair target, int failures) {
  if (cl_.try_switch_pair(target)) {
    ++switches_;
    if (on_switched) on_switched(tag, target);
    return;
  }
  // Command rejected: the old pair stays installed on every host. Retry with
  // capped exponential backoff unless a newer request supersedes the target
  // before the timer fires.
  ++failures_;
  if (on_switch_failed) on_switch_failed(tag, failures + 1);
  if (failures >= kMaxRetries) return;  // budget exhausted: keep the old pair
  const sim::Time delay = std::min(
      kRetryCap,
      kRetryBase * static_cast<double>(std::int64_t{1} << std::min(failures, 3)));
  const int issued_epoch = epoch_;
  auto self = shared_from_this();
  cl_.simr().after(delay, [self, tag, target, failures, issued_epoch] {
    if (self->epoch_ != issued_epoch) return;  // superseded by a newer request
    ++self->retries_;
    self->attempt(tag, target, failures + 1);
  });
}

}  // namespace iosim::core
