// iosim: the runtime half of the meta-scheduler — applies a PairSchedule
// to a live cluster at the phase boundaries the detector reports.
#pragma once

#include <memory>

#include "cluster/cluster.hpp"
#include "core/pair_schedule.hpp"
#include "core/phase_detector.hpp"

namespace iosim::core {

class AdaptiveController {
 public:
  /// Attach a controller to a job about to run on `cl`. The cluster must
  /// have been booted with `schedule.initial()` (construction-time install;
  /// no switch cost). Subsequent phases that name a different pair trigger
  /// `Cluster::switch_pair`, paying the elevator quiesce on every block
  /// layer in the cluster — exactly the cost the paper's heuristic must
  /// amortize. Returns a handle that reports how many switches happened;
  /// the controller keeps itself alive through the job's callbacks.
  static std::shared_ptr<AdaptiveController> attach(cluster::Cluster& cl,
                                                    mapred::Job& job,
                                                    PairSchedule schedule,
                                                    PhasePlan plan);

  int switches_performed() const { return switches_; }

 private:
  AdaptiveController(cluster::Cluster& cl, PairSchedule schedule)
      : cl_(cl), schedule_(std::move(schedule)) {}

  void enter_phase(int phase, sim::Time t);

  cluster::Cluster& cl_;
  PairSchedule schedule_;
  int switches_ = 0;
};

}  // namespace iosim::core
