// iosim: the runtime half of the meta-scheduler — applies a PairSchedule
// to a live cluster at the phase boundaries the detector reports.
//
// Failure semantics: the switch command travels through the cluster's fault
// layer (Cluster::try_switch_pair). A failed command leaves the old pair
// installed and is retried with capped exponential backoff; a retry is
// abandoned the moment a newer phase boundary arrives (its target pair has
// been superseded). The controller therefore degrades gracefully: the job
// keeps running under the previous pair until a retry lands.
#pragma once

#include <memory>

#include "cluster/cluster.hpp"
#include "core/pair_schedule.hpp"
#include "core/phase_detector.hpp"

namespace iosim::core {

class AdaptiveController : public std::enable_shared_from_this<AdaptiveController> {
 public:
  /// Attach a controller to a job about to run on `cl`. The cluster must
  /// have been booted with `schedule.initial()` (construction-time install;
  /// no switch cost). Subsequent phases that name a different pair trigger
  /// a cluster-wide switch, paying the elevator quiesce on every block
  /// layer in the cluster — exactly the cost the paper's heuristic must
  /// amortize. Returns a handle that reports how many switches happened;
  /// the controller keeps itself alive through the job's callbacks.
  static std::shared_ptr<AdaptiveController> attach(cluster::Cluster& cl,
                                                    mapred::Job& job,
                                                    PairSchedule schedule,
                                                    PhasePlan plan);

  int switches_performed() const { return switches_; }
  /// Switch commands rejected by the fault layer (each schedules a retry).
  int switch_failures() const { return switch_failures_; }
  /// Retries that were actually issued (abandoned ones don't count).
  int switch_retries() const { return switch_retries_; }

  /// First retry delay after a failed switch command; doubles per failure up
  /// to 8x. Kept short relative to phase lengths so a transient management-
  /// plane fault rarely costs a whole phase.
  static constexpr sim::Time kRetryBase = sim::Time::from_ms(500);
  static constexpr sim::Time kRetryCap = sim::Time::from_sec(4);
  /// Retry budget per phase target. A management plane that is still down
  /// after this many attempts is treated as gone for the phase: the old
  /// pair stays installed and the job simply runs on without switching.
  static constexpr int kMaxRetries = 8;

 private:
  AdaptiveController(cluster::Cluster& cl, PairSchedule schedule)
      : cl_(cl), schedule_(std::move(schedule)) {}

  void enter_phase(int phase, sim::Time t);
  void attempt_switch(int phase, iosched::SchedulerPair target, int failures);

  cluster::Cluster& cl_;
  PairSchedule schedule_;
  int switches_ = 0;
  int switch_failures_ = 0;
  int switch_retries_ = 0;
  /// Monotone epoch: bumped at every phase boundary; pending retries carry
  /// the epoch they were issued under and go inert when it is stale.
  int epoch_ = 0;
};

}  // namespace iosim::core
