// iosim: the runtime half of the meta-scheduler — applies a PairSchedule
// to a live cluster at the phase boundaries the detector reports.
//
// Failure semantics: the switch command travels through the cluster's fault
// layer via the shared PairSwitcher (core/pair_switcher.hpp). A failed
// command leaves the old pair installed and is retried with capped
// exponential backoff; a retry is abandoned the moment a newer phase
// boundary arrives (its target pair has been superseded). The controller
// therefore degrades gracefully: the job keeps running under the previous
// pair until a retry lands.
#pragma once

#include <memory>

#include "cluster/cluster.hpp"
#include "core/pair_schedule.hpp"
#include "core/pair_switcher.hpp"
#include "core/phase_detector.hpp"

namespace iosim::core {

class OnlineScheduler;

class AdaptiveController : public std::enable_shared_from_this<AdaptiveController> {
 public:
  /// Attach a controller to a job about to run on `cl`. The cluster must
  /// have been booted with `schedule.initial()` (construction-time install;
  /// no switch cost). Subsequent phases that name a different pair trigger
  /// a cluster-wide switch, paying the elevator quiesce on every block
  /// layer in the cluster — exactly the cost the paper's heuristic must
  /// amortize. Returns a handle that reports how many switches happened;
  /// the controller keeps itself alive through the job's callbacks.
  static std::shared_ptr<AdaptiveController> attach(cluster::Cluster& cl,
                                                    mapred::Job& job,
                                                    PairSchedule schedule,
                                                    PhasePlan plan);

  /// Online variant: phase boundaries feed a (possibly shared) bandit
  /// learning state instead of a precomputed schedule — the offline
  /// profiling pass is replaced by live reward estimation. Returns the
  /// scheduler so callers can read pull/switch counts; see
  /// core/online_scheduler.hpp.
  static std::shared_ptr<OnlineScheduler> attach_online(
      cluster::Cluster& cl, mapred::Job& job, PhasePlan plan,
      std::shared_ptr<OnlineScheduler> scheduler);

  int switches_performed() const { return switcher_->switches(); }
  /// Switch commands rejected by the fault layer (each schedules a retry).
  int switch_failures() const { return switcher_->failures(); }
  /// Retries that were actually issued (abandoned ones don't count).
  int switch_retries() const { return switcher_->retries(); }

  /// Retry timing/budget, re-exported from the shared switcher so existing
  /// call sites keep compiling against the historical names.
  static constexpr sim::Time kRetryBase = PairSwitcher::kRetryBase;
  static constexpr sim::Time kRetryCap = PairSwitcher::kRetryCap;
  static constexpr int kMaxRetries = PairSwitcher::kMaxRetries;

 private:
  AdaptiveController(cluster::Cluster& cl, PairSchedule schedule);

  void enter_phase(int phase, sim::Time t);

  cluster::Cluster& cl_;
  PairSchedule schedule_;
  std::shared_ptr<PairSwitcher> switcher_;
};

}  // namespace iosim::core
