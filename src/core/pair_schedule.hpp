// iosim: a solution of the meta-scheduler — the per-phase pair assignment.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "iosched/pair.hpp"

namespace iosim::core {

using iosched::SchedulerPair;

/// `phases[i]` is the pair to install when phase i begins; `nullopt` is the
/// paper's "0" entry: keep the previous phase's pair, perform no switch.
/// phases[0] must be set (it is the boot configuration).
struct PairSchedule {
  std::vector<std::optional<SchedulerPair>> phases;

  static PairSchedule single(SchedulerPair p, int n_phases) {
    PairSchedule s;
    s.phases.assign(static_cast<std::size_t>(n_phases), std::nullopt);
    s.phases[0] = p;
    return s;
  }

  int count() const { return static_cast<int>(phases.size()); }

  SchedulerPair initial() const { return *phases.front(); }

  /// Pair in force during phase i (resolving no-switch entries).
  SchedulerPair effective(int i) const {
    for (int k = i; k >= 0; --k) {
      if (phases[static_cast<std::size_t>(k)].has_value()) {
        return *phases[static_cast<std::size_t>(k)];
      }
    }
    return initial();
  }

  /// Number of actual elevator switches the schedule performs at run time.
  int switches() const {
    int n = 0;
    for (int i = 1; i < count(); ++i) {
      if (phases[static_cast<std::size_t>(i)].has_value() &&
          *phases[static_cast<std::size_t>(i)] != effective(i - 1)) {
        ++n;
      }
    }
    return n;
  }

  /// "[(anticipatory, cfq) -> (anticipatory, deadline)]" etc.; no-switch
  /// entries render as "0" like the paper's solution sets.
  std::string to_string() const {
    std::string out = "[";
    for (int i = 0; i < count(); ++i) {
      if (i) out += " -> ";
      const auto& p = phases[static_cast<std::size_t>(i)];
      out += p.has_value() ? p->to_string() : std::string("0");
    }
    out += "]";
    return out;
  }

  /// Canonical key for memoization of evaluations.
  std::string key() const {
    std::string out;
    for (int i = 0; i < count(); ++i) {
      const auto& p = phases[static_cast<std::size_t>(i)];
      out += p.has_value() ? p->letters() : std::string("--");
    }
    return out;
  }
};

}  // namespace iosim::core
