#include "core/phase_detector.hpp"

#include "trace/trace.hpp"

namespace iosim::core {

namespace {
void trace_phase(int phase, Time t) {
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("core"), tr->ids.phase, tr->ids.cat_core, t,
                tr->ids.index, phase);
  }
}
}  // namespace

void PhaseDetector::attach(mapred::Job& job, PhasePlan plan, PhaseCallback cb) {
  // Phase 0 is entered right away.
  trace_phase(0, job.env().simr->now());
  cb(0, job.env().simr->now());

  // Phase 1 entry: all maps done.
  auto prev_maps = std::move(job.on_maps_done);
  job.on_maps_done = [prev_maps = std::move(prev_maps), cb](Time t) {
    if (prev_maps) prev_maps(t);
    trace_phase(1, t);
    cb(1, t);
  };

  if (!plan.merge_shuffle_tail) {
    auto prev_shuffle = std::move(job.on_shuffle_done);
    job.on_shuffle_done = [prev_shuffle = std::move(prev_shuffle), cb](Time t) {
      if (prev_shuffle) prev_shuffle(t);
      trace_phase(2, t);
      cb(2, t);
    };
  }
}

}  // namespace iosim::core
