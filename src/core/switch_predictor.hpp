// iosim: switch-cost prediction model (the paper's "ultimately we would
// want to build a general prediction model for the scheduler switch").
//
// A 16x16 EWMA table of observed switch costs, seeded either analytically
// (drain estimate + quiesce) or from a measured SwitchCostMatrix. The
// fine-grained controller consults it to gate switches: only switch when
// the predicted saving over the remaining horizon exceeds the predicted
// cost.
#pragma once

#include <array>

#include "core/switch_cost.hpp"
#include "iosched/pair.hpp"
#include "sim/time.hpp"

namespace iosim::core {

class SwitchPredictor {
 public:
  /// Analytic seed: every transition starts at `base_cost` (a cluster-wide
  /// quiesce estimate: drain + re-init on every layer).
  explicit SwitchPredictor(double base_cost_seconds = 2.0) {
    for (auto& row : cost_) row.fill(base_cost_seconds);
  }

  /// Seed from a measured matrix (Fig. 5 methodology).
  explicit SwitchPredictor(const SwitchCostMatrix& measured) {
    for (int a = 0; a < iosched::kNumSchedulerPairs; ++a) {
      for (int b = 0; b < iosched::kNumSchedulerPairs; ++b) {
        cost_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
            std::max(0.0, measured.cost_seconds(iosched::SchedulerPair::from_index(a),
                                                iosched::SchedulerPair::from_index(b)));
      }
    }
  }

  double predict_seconds(iosched::SchedulerPair from, iosched::SchedulerPair to) const {
    return cost_[static_cast<std::size_t>(from.index())]
                [static_cast<std::size_t>(to.index())];
  }

  /// Online update from an observed transition cost.
  void observe(iosched::SchedulerPair from, iosched::SchedulerPair to,
               double observed_seconds, double alpha = 0.3) {
    double& c = cost_[static_cast<std::size_t>(from.index())]
                     [static_cast<std::size_t>(to.index())];
    c += alpha * (observed_seconds - c);
  }

  /// Gate: is a switch worth it if it saves `rate_gain` (fraction, e.g.
  /// 0.08 for 8%) over `horizon` of remaining work?
  bool worthwhile(iosched::SchedulerPair from, iosched::SchedulerPair to,
                  double rate_gain, sim::Time horizon) const {
    return rate_gain * horizon.sec() > predict_seconds(from, to);
  }

 private:
  std::array<std::array<double, iosched::kNumSchedulerPairs>,
             iosched::kNumSchedulerPairs>
      cost_{};
};

}  // namespace iosim::core
