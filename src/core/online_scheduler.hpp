// iosim: the online meta-scheduler — a switch-cost-aware multi-armed bandit
// over (Dom0, DomU) SchedulerPair arms that replaces the offline profiling
// pass (DESIGN.md §14).
//
// The paper's Algorithm 1 needs a profiling corpus measured before the run;
// in an open-arrival, fault-degraded stream that corpus goes stale the
// moment the mix shifts or a VM is blacklisted. The OnlineScheduler instead
// learns pair quality *during* the run:
//
//   arms      the 16 scheduler pairs, one bandit table per cluster phase
//             kind (map / shuffle / reduce — the PhaseAggregator's modal
//             phase for streams, PhaseDetector boundaries for single jobs).
//   reward    cluster-wide disk throughput normalized by disk *busy* time
//             (MB per Dom0-busy-second) over the window since the previous
//             phase change, from the always-on Dom0 byte and busy-time
//             counters. Busy-normalizing matters: wall-clock MB/s is
//             demand-limited — a fast arm drains the backlog and idles the
//             disks (low MB/s), while a slow arm keeps them saturated (high
//             MB/s), inverting the ranking. MB per busy second measures
//             elevator efficiency independent of arrival lulls. The reward
//             is credited to the pair actually installed during the window
//             (a failed switch credits the old pair: the estimate tracks
//             reality, not intent).
//   pulls     at every cluster-phase change the policy picks the arm for
//             the new phase; a different arm than the installed one issues
//             a cluster-wide switch through the shared PairSwitcher (same
//             retry/supersede semantics as the offline controller).
//   switch    candidate arms are discounted by the predicted switch cost
//   cost      from the non-commutative SwitchPredictor matrix, amortized
//             over the expected phase duration and converted to reward
//             units — a marginally-better arm does not justify a 2 s
//             cluster quiesce near a phase boundary.
//   budget    per phase kind, at most `budget` distinct arms are explored
//             (a deterministic, seed-shuffled subset plus the boot pair);
//             a 16-arm sweep per phase would cost more than profiling did.
//   decay     fault/membership events (a VM declared dead or blacklisted)
//             age every estimate: effective pull counts shrink by `decay`,
//             so confidence bounds widen and the bandit re-explores the
//             post-fault reality instead of trusting pre-fault scores.
//
// Two policies implement the OnlinePolicy interface: UCB1 and epsilon-
// greedy-with-aging. Selection comes from the stream grammar's meta segment
// (`meta,policy=ucb|egreedy[,explore=,decay=,budget=]`) or a scenario's
// `meta =` axis; `meta,policy=offline` replays Algorithm 1's schedule
// (profiled once on a side cluster) and `meta,policy=static` pins a pair —
// the baselines the policy-compare CI gate measures against.
//
// Determinism: every decision happens synchronously inside job callbacks,
// the only randomness is a seeded xoshiro stream, and rewards derive from
// simulated byte counters — same seed + same spec is byte-identical traces,
// with the online controller on (guarded by online_scheduler_test).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/pair_schedule.hpp"
#include "core/pair_switcher.hpp"
#include "core/phase_plan.hpp"
#include "core/switch_predictor.hpp"
#include "sim/random.hpp"
#include "tenancy/phase_agg.hpp"
#include "trace/trace.hpp"
#include "tenancy/stream_runner.hpp"
#include "tenancy/stream_spec.hpp"

namespace iosim::core {

/// Cluster phase kinds the bandit keys its tables on (PhaseAggregator's
/// domain): 0 = map, 1 = shuffle, 2 = reduce.
inline constexpr int kPhaseKinds = 3;

struct OnlineConfig {
  /// kUcb or kEgreedy (the other values never reach the policy layer).
  tenancy::MetaPolicy kind = tenancy::MetaPolicy::kUcb;
  /// UCB confidence width / initial epsilon. < 0 picks the policy default
  /// (0.5 for UCB, 0.25 for egreedy).
  double explore = -1.0;
  /// Aging factor in (0, 1]: epsilon decay per pull (egreedy) and the
  /// pull-count discount applied by decay_all on fault/membership events.
  /// < 0 picks the policy default (0.5 for UCB, 0.9 for egreedy).
  double decay = -1.0;
  /// Per-phase exploration budget in distinct arms; 0 picks the default (4).
  int budget = 0;
  /// Seed for the exploration order and the egreedy coin.
  std::uint64_t seed = 1;

  static OnlineConfig from_meta(const tenancy::MetaSpec& m, std::uint64_t seed) {
    OnlineConfig c;
    c.kind = m.policy;
    c.explore = m.explore;
    c.decay = m.decay;
    c.budget = m.budget;
    c.seed = seed;
    return c;
  }
};

/// Reward statistics of one (phase kind, arm) cell. `pulls` is fractional:
/// decay_all scales it down to widen confidence bounds after a fault.
struct ArmStats {
  double pulls = 0.0;
  double value = 0.0;  // reward estimate, MB per disk-busy-second
};

/// Common interface of the bandit policies. Implementations own the
/// (phase kind x 16 arm) estimate tables; the OnlineScheduler owns reward
/// measurement, switch execution, and telemetry.
class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;
  virtual const char* name() const = 0;
  /// Pick the arm for `phase`. `current_arm` is the installed pair's dense
  /// index; `switch_penalty[a]` is the predicted cost of moving to arm `a`
  /// expressed in reward units (0 for the current arm).
  virtual int select(int phase, int current_arm,
                     const std::array<double, iosched::kNumSchedulerPairs>&
                         switch_penalty) = 0;
  /// Credit `mb_per_busy_s` (MB per disk-busy-second) to (phase, arm).
  virtual void reward(int phase, int arm, double mb_per_busy_s) = 0;
  /// Age every estimate (fault/membership event): pull counts scale by
  /// `factor`, so both policies re-explore.
  virtual void decay_all(double factor) = 0;
  virtual const ArmStats& stats(int phase, int arm) const = 0;
};

/// Factory for the policy named in `cfg.kind` (kUcb / kEgreedy).
std::unique_ptr<OnlinePolicy> make_online_policy(const OnlineConfig& cfg);

/// The shared learning state plus its runtime wiring. One instance serves a
/// whole run: concurrent stream jobs all feed the same tables (attach each
/// via attach_stream_job from a StreamSetupHook), and single jobs attach a
/// PhaseDetector (AdaptiveController::attach_online).
class OnlineScheduler : public std::enable_shared_from_this<OnlineScheduler> {
 public:
  static std::shared_ptr<OnlineScheduler> create(cluster::Cluster& cl,
                                                 OnlineConfig cfg);

  /// Stream wiring: chain this job's phase/lifecycle callbacks into the
  /// shared PhaseAggregator. Call from a StreamSetupHook — the runner
  /// chains its own callbacks after the hook, so both see every event.
  void attach_stream_job(mapred::Job& job);

  /// Single-job wiring: PhaseDetector boundaries drive the same learning
  /// state (plan phase indices map onto phase kinds).
  void attach_single_job(mapred::Job& job, PhasePlan plan);

  /// The bandit step: close the reward window, credit the installed arm,
  /// pull, and switch if the policy picked a different arm. Exposed for
  /// tests; normal operation reaches it through the attach_* wiring.
  void enter_phase(int kind, sim::Time t);

  /// Age every estimate now (also invoked by membership events).
  void on_fault_event(sim::Time t);

  int pulls() const { return pulls_; }
  int arm_switches() const { return arm_switches_; }
  int switch_failures() const { return switcher_->failures(); }
  int decays() const { return decays_; }
  const OnlinePolicy& policy() const { return *policy_; }

 private:
  OnlineScheduler(cluster::Cluster& cl, OnlineConfig cfg);

  void close_window(sim::Time now);
  void pull(sim::Time t);
  void ensure_ticking();
  std::int64_t cluster_bytes() const;
  std::uint64_t cluster_busy_ns() const;

  cluster::Cluster& cl_;
  OnlineConfig cfg_;
  double event_decay_;  // resolved decay factor for on_fault_event
  std::unique_ptr<OnlinePolicy> policy_;
  std::shared_ptr<PairSwitcher> switcher_;
  SwitchPredictor predictor_;
  tenancy::PhaseAggregator agg_;

  int cur_kind_ = -1;
  sim::Time win_start_ = sim::Time::zero();
  std::int64_t win_bytes_ = 0;
  std::uint64_t win_busy_ns_ = 0;
  /// When the first reward window opened. The switch-cost amortization
  /// horizon grows with elapsed run time: an arm adopted now is held for
  /// (roughly) the rest of the run, so a fixed quiesce cost matters less
  /// and less as the stream progresses.
  sim::Time run_start_ = sim::Time::zero();
  /// EWMA of observed phase-window durations, the amortization horizon for
  /// the switch-cost discount (seeded pessimistically short so early pulls
  /// are switch-shy).
  double horizon_s_ = 10.0;
  /// Running mean reward, the scale that converts predicted switch seconds
  /// into reward units.
  double mean_reward_ = 0.0;
  int reward_samples_ = 0;

  int pulls_ = 0;
  int arm_switches_ = 0;
  int decays_ = 0;
  /// Periodic mid-phase re-pull is armed while stream jobs are live.
  bool ticking_ = false;
  /// The next close_window discards its sample: it contains a switch
  /// quiesce, which would bias estimates against explored arms.
  bool skip_next_reward_ = false;
  /// When the last switch landed (dwell gate: hold an arm long enough to
  /// measure it before reconsidering).
  sim::Time last_switch_ = sim::Time::zero();
  /// Lazily interned-and-pinned instant names (0 = not yet interned).
  trace::Str tt_arm_pull_ = 0;
  trace::Str tt_arm_switch_ = 0;
};

/// Replays a precomputed PairSchedule at *cluster* phase changes — the
/// offline greedy (or any hand-built schedule) deployed on an open-arrival
/// stream, where per-job AdaptiveControllers would fight each other. Shares
/// the PairSwitcher failure semantics with the online controller.
class SchedulePlayer : public std::enable_shared_from_this<SchedulePlayer> {
 public:
  static std::shared_ptr<SchedulePlayer> create(cluster::Cluster& cl,
                                                PairSchedule schedule,
                                                PhasePlan plan);

  void attach_stream_job(mapred::Job& job);
  void enter_phase(int kind, sim::Time t);
  int switches_performed() const { return switcher_->switches(); }

 private:
  SchedulePlayer(cluster::Cluster& cl, PairSchedule schedule, PhasePlan plan);

  cluster::Cluster& cl_;
  PairSchedule schedule_;
  PhasePlan plan_;
  std::shared_ptr<PairSwitcher> switcher_;
  tenancy::PhaseAggregator agg_;
  int cur_kind_ = -1;
};

/// Outcome of a policy-driven stream run (exp::execute_point and the tests
/// read the controller counters next to the stream result).
struct MetaStreamResult {
  tenancy::StreamResult stream;
  /// Bandit telemetry (zero for static/offline/none).
  int arm_pulls = 0;
  int arm_switches = 0;
  int switch_failures = 0;
  int decays = 0;
  /// Offline-pipeline telemetry (zero for the other policies).
  int profile_runs = 0;
  int heuristic_evals = 0;
  /// The pair the stream cluster actually booted with (after any static
  /// override or offline phase-0 choice), two-letter code.
  std::string boot_pair;
  /// Offline: the chosen schedule's key ("cc>ad>0" style), else empty.
  std::string schedule_key;
};

/// Run `spec` on a cluster built from `cfg`, honouring spec.meta:
///   kNone / kStatic   plain run_stream (static may override cfg.pair)
///   kOffline          profile + Algorithm 1 on a side cluster (the class
///                     named by meta.profile, default the first class;
///                     sizes pinned to the class midpoint), then replay the
///                     schedule at cluster phase changes via SchedulePlayer
///   kUcb / kEgreedy   shared OnlineScheduler attached to every job
/// The bandit seed derives from cfg.seed (reserved stream seed index 3), so
/// the whole run remains a pure function of (cfg, spec).
MetaStreamResult run_stream_with_policy(cluster::ClusterConfig cfg,
                                        const tenancy::StreamSpec& spec);

}  // namespace iosim::core
