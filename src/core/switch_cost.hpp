// iosim: switch-cost measurement (paper Section IV-B, Fig. 5).
//
// Methodology, verbatim from the paper: run a dd-style workload (600 MB of
// zeroes per VM, four VMs on one physical machine, in parallel); measure
//   Cost(a -> b) = T(a then b, switched at half the data)
//                - (T(a alone) + T(b alone)) / 2.
// The result is a full 16x16 matrix over pair states. It is *not*
// commutative and not even zero on the diagonal (re-issuing the switch
// command quiesces the queues regardless), both of which the paper calls
// out and the heuristic must respect.
#pragma once

#include <array>
#include <cstdint>

#include "iosched/pair.hpp"
#include "virt/physical_host.hpp"

namespace iosim::core {

using iosched::kNumSchedulerPairs;
using iosched::SchedulerPair;

struct SwitchCostConfig {
  virt::HostConfig host;
  int vms = 4;
  std::int64_t dd_bytes_per_vm = 600LL * 1024 * 1024;
  std::uint64_t seed = 42;
  /// When true the mid-run switch is issued even if from == to (measures
  /// the diagonal, i.e. the bare cost of the switch command).
  bool switch_same_pair = true;
};

class SwitchCostMatrix {
 public:
  /// Run the full measurement: 16 solo runs + 256 switched runs.
  static SwitchCostMatrix measure(const SwitchCostConfig& cfg);

  double cost_seconds(SchedulerPair from, SchedulerPair to) const {
    return cost_[static_cast<std::size_t>(from.index())]
                [static_cast<std::size_t>(to.index())];
  }
  double solo_seconds(SchedulerPair p) const {
    return solo_[static_cast<std::size_t>(p.index())];
  }

  double min_cost() const;
  double max_cost() const;
  double mean_cost() const;
  /// Mean absolute asymmetry |cost(a,b) - cost(b,a)| over a != b.
  double mean_asymmetry() const;

 private:
  std::array<std::array<double, kNumSchedulerPairs>, kNumSchedulerPairs> cost_{};
  std::array<double, kNumSchedulerPairs> solo_{};
};

/// One dd run on a fresh single-host rig with `from` installed at boot and,
/// when `to` is provided, a cluster-wide switch to `to` at half the data.
/// Returns elapsed seconds. Exposed for tests and benches.
double run_dd_experiment(const SwitchCostConfig& cfg, SchedulerPair from,
                         const SchedulerPair* to);

}  // namespace iosim::core
