// iosim: the cluster-wide pair-switch command, factored out of
// AdaptiveController so every controller shares one failure semantics.
//
// A switch travels through the cluster's fault layer
// (Cluster::try_switch_pair). A rejected command leaves the old pair
// installed and is retried with capped exponential backoff; a pending retry
// goes inert the moment a newer request supersedes it (its target has been
// overtaken by a fresher decision). Callers observe outcomes through the
// on_switched / on_switch_failed hooks — the offline controller traces
// pair_switch instants, the online controller tt_arm_switch ones, but the
// retry machinery underneath is byte-identical.
#pragma once

#include <functional>
#include <memory>

#include "cluster/cluster.hpp"

namespace iosim::core {

class PairSwitcher : public std::enable_shared_from_this<PairSwitcher> {
 public:
  /// First retry delay after a failed switch command; doubles per failure up
  /// to 8x. Kept short relative to phase lengths so a transient management-
  /// plane fault rarely costs a whole phase.
  static constexpr sim::Time kRetryBase = sim::Time::from_ms(500);
  static constexpr sim::Time kRetryCap = sim::Time::from_sec(4);
  /// Retry budget per requested target. A management plane that is still
  /// down after this many attempts is treated as gone: the old pair stays
  /// installed and the run simply continues without switching.
  static constexpr int kMaxRetries = 8;

  static std::shared_ptr<PairSwitcher> create(cluster::Cluster& cl) {
    return std::shared_ptr<PairSwitcher>(new PairSwitcher(cl));
  }

  /// Fires after a switch command lands; `tag` is the requester's phase tag.
  std::function<void(int tag, iosched::SchedulerPair target)> on_switched;
  /// Fires after a rejected command, before any retry is scheduled;
  /// `attempt` counts from 1.
  std::function<void(int tag, int attempt)> on_switch_failed;

  /// Supersede any pending retry. Call at every decision boundary, even when
  /// no new switch is requested — a stale retry must never land after the
  /// phase that wanted it has passed.
  void supersede() { ++epoch_; }

  /// Issue a switch command (and its retry chain) toward `target`.
  void request(int tag, iosched::SchedulerPair target) {
    attempt(tag, target, /*failures=*/0);
  }

  int switches() const { return switches_; }
  /// Commands rejected by the fault layer (each schedules a retry).
  int failures() const { return failures_; }
  /// Retries actually issued (superseded ones don't count).
  int retries() const { return retries_; }

 private:
  explicit PairSwitcher(cluster::Cluster& cl) : cl_(cl) {}

  void attempt(int tag, iosched::SchedulerPair target, int failures);

  cluster::Cluster& cl_;
  int switches_ = 0;
  int failures_ = 0;
  int retries_ = 0;
  /// Monotone epoch: bumped by supersede(); pending retries carry the epoch
  /// they were issued under and go inert when it is stale.
  int epoch_ = 0;
};

}  // namespace iosim::core
