// iosim: the meta-scheduler — the paper's primary contribution.
//
// Given an application and a cluster, it (1) profiles the job once per
// candidate pair to obtain per-phase scores (the paper's Fig. 6 data),
// (2) runs Algorithm 1: phase by phase, walk the pairs in descending
// per-phase quality and keep probing the next-best candidate with a *full
// execution* — prefix fixed to the already-chosen pairs, suffix fixed to
// the best single pair for all remaining phases (the paper's S_{i+1}, which
// keeps the comparison fair under non-uniform switch costs) — until the
// next candidate stops improving, and (3) encodes "same pair as the
// previous phase" as a 0 / no-switch entry.
//
// The search issues at most P x S executions (the paper's bound); in
// practice far fewer thanks to early termination and memoization.
#pragma once

#include <string>
#include <vector>

#include "cluster/runner.hpp"
#include "core/pair_schedule.hpp"
#include "core/phase_plan.hpp"

namespace iosim::core {

/// One profiling run's outcome for a single pair.
struct ProfileEntry {
  SchedulerPair pair;
  double total_seconds = 0.0;
  std::vector<double> phase_seconds;  // size = plan.count()
  /// Meta-clock timestamp of the measurement (see meta_clock_). Entries age
  /// as the search itself burns simulated time; the staleness bound below
  /// decides when a score is no longer trusted.
  sim::Time measured_at = sim::Time::zero();
};

struct MetaSchedulerOptions {
  PhasePlan plan;
  /// Seeds averaged per execution (the paper averages 3 runs; 1 keeps the
  /// search cheap and the simulator is deterministic anyway).
  int seeds_per_eval = 1;
  /// If the greedy per-phase solution ends up slower than the best single
  /// pair (possible when switch costs dwarf the per-phase gains — short
  /// jobs), fall back to the single-pair schedule. The profiling data is
  /// already paid for, so the fallback is free.
  bool fallback_to_best_single = true;
  /// Maximum meta-clock age of a profile entry before the greedy search
  /// stops trusting it (scores drift when conditions change mid-search —
  /// e.g. fault windows opening between profiling and probing). Stale
  /// entries are excluded from rankings and suffix-best; when a phase has
  /// no fresh entry left, every pair is re-profiled. zero() disables the
  /// bound (every measurement stays valid forever — the pre-fault behavior).
  sim::Time profile_staleness_bound = sim::Time::zero();
  bool verbose = false;
};

struct MetaResult {
  PairSchedule solution;
  double adaptive_seconds = 0.0;      // full run with `solution`
  cluster::RunResult adaptive_run;

  double default_seconds = 0.0;       // (cfq, cfq) single pair
  double best_single_seconds = 0.0;
  SchedulerPair best_single;

  std::vector<ProfileEntry> profile;  // all 16 single-pair runs
  int heuristic_evaluations = 0;      // full runs beyond profiling
  /// True when the multi-pair solution lost to the best single pair and the
  /// fallback replaced it.
  bool fell_back = false;

  double improvement_vs_default() const {
    return default_seconds > 0 ? 1.0 - adaptive_seconds / default_seconds : 0.0;
  }
  double improvement_vs_best_single() const {
    return best_single_seconds > 0 ? 1.0 - adaptive_seconds / best_single_seconds : 0.0;
  }
};

/// An abstract experiment the heuristic can optimize: something that can be
/// run once per fixed pair (profiling) and once per arbitrary schedule
/// (evaluation). The single-MapReduce-job experiment is the paper's case;
/// the chain experiment (Pig-style, Section IV-C) reuses the same search.
struct Experiment {
  int phases = 2;
  std::function<ProfileEntry(iosched::SchedulerPair)> profile;
  std::function<cluster::RunResult(const PairSchedule&)> execute;
};

class MetaScheduler {
 public:
  /// The paper's experiment: one MapReduce job on one cluster.
  MetaScheduler(cluster::ClusterConfig cluster_cfg, mapred::JobConf job_conf,
                MetaSchedulerOptions opts);

  /// A custom experiment (e.g. a job chain); `opts.plan` is ignored for the
  /// phase count — `experiment.phases` rules.
  MetaScheduler(Experiment experiment, MetaSchedulerOptions opts);

  /// Full pipeline: profile -> Algorithm 1 -> final adaptive run.
  MetaResult optimize();

  /// Execute the experiment under `schedule` (adaptive switching applied);
  /// exposed for benches that evaluate hand-built schedules.
  cluster::RunResult execute(const PairSchedule& schedule) const;

  /// Profiling only (Fig. 6 data).
  std::vector<ProfileEntry> profile_all_pairs() const;

 private:
  double evaluate(const PairSchedule& schedule,
                  std::vector<std::pair<std::string, double>>* cache) const;
  /// One profiling run: advances the meta clock, stamps measured_at, emits
  /// the trace/metrics record.
  ProfileEntry profile_one(iosched::SchedulerPair p) const;
  /// Re-measure every entry in place (pointers into the vector stay valid).
  void refresh_profile(std::vector<ProfileEntry>& entries) const;
  bool is_fresh(const ProfileEntry& e) const;

  Experiment exp_;
  MetaSchedulerOptions opts_;
  /// Profiling/probe runs each spin up a private simulator, so there is no
  /// shared sim clock to stamp trace events with. Instead the search keeps
  /// its own clock: the accumulated simulated seconds of every run issued so
  /// far. Decision instants land on the "meta" track in that timebase.
  mutable sim::Time meta_clock_ = sim::Time::zero();
};

/// Build the chain experiment: `confs` run back to back, two phases per job
/// (maps / rest), adaptive switches at every job start and maps-done
/// boundary after the first. See cluster/chain_runner.hpp.
Experiment make_chain_experiment(cluster::ClusterConfig cfg,
                                 std::vector<mapred::JobConf> confs,
                                 int seeds_per_eval = 1);

}  // namespace iosim::core
