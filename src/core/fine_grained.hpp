// iosim: fine-grained per-host adaptive control (the paper's future work,
// Section VII: "a fine-grained control method ... using information from
// the VMs within the same physical node and based on the status of the
// VMs' I/O (i.e. the number of requests)").
//
// Unlike the coarse AdaptiveController — which assumes the MapReduce stages
// are synchronized cluster-wide and switches every host at the global phase
// boundary — this controller samples each host's Dom0 I/O composition
// (read/write byte mix and observed load) on a fixed period, classifies the
// host's current regime, and switches that host's pair independently. A
// SwitchPredictor gates each switch so hosts don't thrash when the expected
// benefit cannot repay the quiesce cost.
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/switch_predictor.hpp"
#include "mapred/job.hpp"

namespace iosim::core {

/// Regime -> pair policy. Defaults follow the per-phase profiling insight:
/// read-heavy map-style traffic and write-heavy reduce-style traffic prefer
/// different pairs.
struct FineGrainedPolicy {
  /// Sync-read byte share above which a host counts as read-dominated.
  double read_regime_threshold = 0.55;
  /// Below this read share the host counts as write-dominated.
  double write_regime_threshold = 0.35;

  iosched::SchedulerPair read_pair{iosched::SchedulerKind::kAnticipatory,
                                   iosched::SchedulerKind::kAnticipatory};
  iosched::SchedulerPair write_pair{iosched::SchedulerKind::kDeadline,
                                    iosched::SchedulerKind::kDeadline};
  iosched::SchedulerPair mixed_pair{iosched::SchedulerKind::kDeadline,
                                    iosched::SchedulerKind::kAnticipatory};

  /// Sampling period and the minimum spacing between switches per host.
  sim::Time sample_period = sim::Time::from_sec(10);
  sim::Time min_switch_gap = sim::Time::from_sec(120);

  /// Hysteresis: the regime classifier must propose the same target pair
  /// for this many consecutive samples before a switch is issued (the
  /// mixed middle of a job oscillates around the thresholds).
  int confirm_samples = 3;

  /// Assumed rate gain from running the regime-matched pair (gates the
  /// switch through the predictor); calibrate from profiling.
  double assumed_rate_gain = 0.04;
};

class FineGrainedController {
 public:
  /// Attach to a job about to run on `cl`. Keeps itself alive through the
  /// scheduled sampling events; sampling stops when the job completes.
  static std::shared_ptr<FineGrainedController> attach(cluster::Cluster& cl,
                                                       mapred::Job& job,
                                                       FineGrainedPolicy policy,
                                                       SwitchPredictor predictor);

  int total_switches() const { return total_switches_; }
  int samples() const { return samples_; }

 private:
  FineGrainedController(cluster::Cluster& cl, mapred::Job& job,
                        FineGrainedPolicy policy, SwitchPredictor predictor);
  void sample(const std::shared_ptr<FineGrainedController>& self);

  struct HostState {
    std::int64_t last_read_bytes = 0;
    std::int64_t last_write_bytes = 0;
    sim::Time last_switch = sim::Time::from_sec(-3600);
    iosched::SchedulerPair pending_target;
    int pending_count = 0;
  };

  cluster::Cluster& cl_;
  mapred::Job& job_;
  FineGrainedPolicy policy_;
  SwitchPredictor predictor_;
  std::vector<HostState> hosts_;
  int total_switches_ = 0;
  int samples_ = 0;
};

}  // namespace iosim::core
