// iosim: MapReduce phase decomposition (paper Section IV-A).
//
// The paper derives three resource phases from static analysis of the
// Hadoop program:
//   Ph1 — start        -> all maps done      (CPU + disk + network)
//   Ph2 — maps done    -> shuffle done       (disk + network)
//   Ph3 — shuffle done -> job done           (CPU + disk)
// and then *merges Ph2 into Ph3* whenever the map waves make the
// non-concurrent shuffle tail short (Table II: >= 2 waves leaves ~10% or
// less), because the possible gain no longer covers the switch cost.
#pragma once

#include "mapred/job_conf.hpp"

namespace iosim::core {

struct PhasePlan {
  /// Treat Ph2+Ph3 as a single phase (the paper's operating point at 4
  /// waves / 8 maps per node).
  bool merge_shuffle_tail = true;

  int count() const { return merge_shuffle_tail ? 2 : 3; }

  /// Waves = number of map waves per slot (Table II's formula:
  /// blocks / (nodes * slots-per-node)).
  static double waves(const mapred::JobConf& c, int n_vms) {
    const double n_maps = c.n_maps(n_vms);
    return n_maps / (static_cast<double>(n_vms) * c.map_slots);
  }

  /// The paper's rule of thumb: with >= 2 waves the shuffle tail is short
  /// enough to merge Ph2 into Ph3.
  static PhasePlan for_job(const mapred::JobConf& c, int n_vms) {
    return PhasePlan{waves(c, n_vms) >= 2.0};
  }
};

}  // namespace iosim::core
