#include "core/switch_cost.hpp"

#include <algorithm>
#include <cmath>

#include "workloads/microbench.hpp"

namespace iosim::core {

double run_dd_experiment(const SwitchCostConfig& cfg, SchedulerPair from,
                         const SchedulerPair* to) {
  sim::Simulator simr;
  virt::HostConfig hc = cfg.host;
  hc.dom0_blk.scheduler = from.vmm;
  hc.domu.guest_blk.scheduler = from.guest;
  virt::PhysicalHost host(simr, hc, /*host_id=*/0, /*vm_ctx_base=*/0, cfg.seed);
  for (int v = 0; v < cfg.vms; ++v) host.add_vm();

  workloads::SeqWriteParams p = workloads::dd_params(cfg.dd_bytes_per_vm);

  bool switched = false;
  if (to != nullptr) {
    p.on_progress = [&host, to, &switched](std::int64_t done, std::int64_t total) {
      if (!switched && done * 2 >= total) {
        switched = true;
        host.set_pair(*to);
      }
    };
  }

  const auto res = workloads::run_seq_writers(simr, host, p);
  return res.elapsed.sec();
}

SwitchCostMatrix SwitchCostMatrix::measure(const SwitchCostConfig& cfg) {
  SwitchCostMatrix m;
  const auto pairs = iosched::all_scheduler_pairs();

  for (const auto& p : pairs) {
    m.solo_[static_cast<std::size_t>(p.index())] =
        run_dd_experiment(cfg, p, nullptr);
  }
  for (const auto& a : pairs) {
    for (const auto& b : pairs) {
      if (a == b && !cfg.switch_same_pair) {
        m.cost_[static_cast<std::size_t>(a.index())]
               [static_cast<std::size_t>(b.index())] = 0.0;
        continue;
      }
      const double t_both = run_dd_experiment(cfg, a, &b);
      const double base = 0.5 * (m.solo_[static_cast<std::size_t>(a.index())] +
                                 m.solo_[static_cast<std::size_t>(b.index())]);
      m.cost_[static_cast<std::size_t>(a.index())]
             [static_cast<std::size_t>(b.index())] = t_both - base;
    }
  }
  return m;
}

double SwitchCostMatrix::min_cost() const {
  double v = cost_[0][0];
  for (const auto& row : cost_)
    for (double c : row) v = std::min(v, c);
  return v;
}

double SwitchCostMatrix::max_cost() const {
  double v = cost_[0][0];
  for (const auto& row : cost_)
    for (double c : row) v = std::max(v, c);
  return v;
}

double SwitchCostMatrix::mean_cost() const {
  double s = 0.0;
  for (const auto& row : cost_)
    for (double c : row) s += c;
  return s / (kNumSchedulerPairs * kNumSchedulerPairs);
}

double SwitchCostMatrix::mean_asymmetry() const {
  double s = 0.0;
  int n = 0;
  for (int a = 0; a < kNumSchedulerPairs; ++a) {
    for (int b = a + 1; b < kNumSchedulerPairs; ++b) {
      s += std::fabs(cost_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] -
                     cost_[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)]);
      ++n;
    }
  }
  return n ? s / n : 0.0;
}

}  // namespace iosim::core
