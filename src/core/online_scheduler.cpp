#include "core/online_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/meta_scheduler.hpp"
#include "core/phase_detector.hpp"
#include "iosched/scheduler.hpp"
#include "mapred/job_conf.hpp"
#include "trace/registry.hpp"
#include "trace/trace.hpp"
#include "virt/physical_host.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim::core {

namespace {

constexpr int kArms = iosched::kNumSchedulerPairs;
/// Arms explored per phase kind by default. Deliberately small: on an
/// open-arrival stream every explored arm costs a cluster quiesce plus a
/// measurement dwell, and a handful of pairs already spans the quality
/// range (raise via `budget=` for long streams).
constexpr int kDefaultBudget = 4;
/// Estimate aging: reward() blends with at least this EWMA weight once an
/// arm has a few samples, so old regimes fade even without fault events.
constexpr double kEstimateAlpha = 0.3;
/// Pulls below this count as "never sampled under the current regime" —
/// decay_all pushes arms back under it to force re-exploration.
constexpr double kMinPulls = 1.0;
/// Bandit re-pull cadence inside a long phase. Cluster-phase changes are
/// the primary pull sites, but a stationary workload would otherwise never
/// generate pulls at all; the periodic tick lets the bandit converge on
/// single-phase streams too.
constexpr sim::Time kSamplePeriod = sim::Time::from_sec(5);
/// Minimum cluster disk busy time a reward window must contain to be
/// credited. A near-idle window (arrival lull, all jobs in CPU phases)
/// measures nothing about the elevator and would poison the estimate.
constexpr double kMinBusySeconds = 0.5;

/// Shared estimate tables + seeded exploration order; the two policies only
/// differ in select().
class BanditBase : public OnlinePolicy {
 public:
  BanditBase(const OnlineConfig& cfg, double def_explore, double def_decay)
      : explore_(cfg.explore >= 0.0 ? cfg.explore : def_explore),
        decay_(cfg.decay > 0.0 ? cfg.decay : def_decay),
        budget_(cfg.budget > 0 ? std::min(cfg.budget, kArms) : kDefaultBudget),
        rng_(cfg.seed) {
    // One seed-shuffled arm order per phase kind: the first `budget_` arms
    // are that phase's exploration candidates. Deterministic in cfg.seed.
    for (auto& ord : order_) {
      std::iota(ord.begin(), ord.end(), 0);
      for (int i = kArms - 1; i > 0; --i) {
        const auto j = rng_.below(static_cast<std::uint64_t>(i) + 1);
        std::swap(ord[static_cast<std::size_t>(i)], ord[j]);
      }
    }
  }

  void reward(int phase, int arm, double mb_per_s) override {
    ArmStats& s = cell(phase, arm);
    s.pulls += 1.0;
    // Plain mean for the first few samples, then a fixed-alpha EWMA so the
    // estimate ages: a pair that was great before a regime shift loses its
    // halo within a handful of windows.
    const double alpha = std::max(1.0 / s.pulls, kEstimateAlpha);
    s.value += alpha * (mb_per_s - s.value);
  }

  void decay_all(double factor) override {
    for (auto& row : table_) {
      for (auto& s : row) s.pulls *= factor;
    }
  }

  const ArmStats& stats(int phase, int arm) const override {
    return table_[static_cast<std::size_t>(phase)][static_cast<std::size_t>(arm)];
  }

 protected:
  ArmStats& cell(int phase, int arm) {
    return table_[static_cast<std::size_t>(phase)][static_cast<std::size_t>(arm)];
  }

  /// Exploration candidates for `phase`: the first `budget_` arms of the
  /// shuffled order, plus the installed arm (it always stays eligible, so a
  /// boot pair outside the subset can be kept — or abandoned — on merit).
  std::vector<int> candidates(int phase, int current_arm) const {
    std::vector<int> c;
    c.reserve(static_cast<std::size_t>(budget_) + 1);
    const auto& ord = order_[static_cast<std::size_t>(phase)];
    bool has_cur = false;
    for (int i = 0; i < budget_; ++i) {
      c.push_back(ord[static_cast<std::size_t>(i)]);
      has_cur = has_cur || c.back() == current_arm;
    }
    if (!has_cur && current_arm >= 0 && current_arm < kArms)
      c.push_back(current_arm);
    return c;
  }

  /// Estimate used for ranking: an unsampled arm is scored neutrally (the
  /// mean of the sampled candidates), so exploration is driven by the
  /// confidence term alone — full optimism (best sampled value) made every
  /// untried arm irresistible and the bandit swept its whole budget even
  /// when the horizon could not pay for it.
  double ranking_value(int phase, int arm, double vmean) const {
    const ArmStats& s = stats(phase, arm);
    return s.pulls < kMinPulls ? vmean : s.value;
  }

  /// (best, mean) value over the sampled candidates; (0, 0) if none.
  std::pair<double, double> sampled_value_stats(
      int phase, const std::vector<int>& cands) const {
    double vmax = 0.0, sum = 0.0;
    int n = 0;
    for (int a : cands) {
      const ArmStats& s = stats(phase, a);
      if (s.pulls >= kMinPulls) {
        vmax = std::max(vmax, s.value);
        sum += s.value;
        ++n;
      }
    }
    return {vmax, n ? sum / n : 0.0};
  }

  double explore_;
  double decay_;
  int budget_;
  sim::Rng rng_;
  std::array<std::array<ArmStats, kArms>, kPhaseKinds> table_{};
  std::array<std::array<int, kArms>, kPhaseKinds> order_{};
};

class UcbPolicy final : public BanditBase {
 public:
  explicit UcbPolicy(const OnlineConfig& cfg) : BanditBase(cfg, 0.5, 0.5) {}
  const char* name() const override { return "ucb"; }

  int select(int phase, int current_arm,
             const std::array<double, kArms>& switch_penalty) override {
    const auto cands = candidates(phase, current_arm);
    const auto [vmax, vmean] = sampled_value_stats(phase, cands);
    double total = 0.0;
    for (int a : cands) total += stats(phase, a).pulls;
    // Confidence width scales with the observed reward *spread* across
    // sampled arms (rewards are MB/s, not [0,1] as in the textbook UCB1):
    // exploring is worth at most the gap between the best and worst pair,
    // so the bonus stays commensurate with both real arm differences and
    // the switch penalty. Before two arms are sampled there is no spread
    // yet; a fraction of the best value stands in.
    int sampled = 0;
    double vmin = vmax;
    for (int a : cands) {
      const ArmStats& s = stats(phase, a);
      if (s.pulls >= kMinPulls) {
        ++sampled;
        vmin = std::min(vmin, s.value);
      }
    }
    const double spread = vmax - vmin;
    const double scale =
        sampled >= 2 ? std::max(spread, 0.05 * vmax) : std::max(0.25 * vmax, 1.0);
    const double ln_total = std::log(total + 1.0);

    int best = current_arm >= 0 ? current_arm : cands.front();
    double best_score = score(phase, best, vmean, scale, ln_total,
                              switch_penalty[static_cast<std::size_t>(best)]);
    for (int a : cands) {
      if (a == best) continue;
      const double s = score(phase, a, vmean, scale, ln_total,
                             switch_penalty[static_cast<std::size_t>(a)]);
      if (s > best_score) {
        best = a;
        best_score = s;
      }
    }
    return best;
  }

 private:
  double score(int phase, int arm, double vmean, double scale, double ln_total,
               double penalty) const {
    const ArmStats& s = stats(phase, arm);
    const double pulls = std::max(s.pulls, 1.0);
    const double bonus = explore_ * scale * std::sqrt(2.0 * ln_total / pulls);
    return ranking_value(phase, arm, vmean) + bonus - penalty;
  }
};

class EgreedyPolicy final : public BanditBase {
 public:
  explicit EgreedyPolicy(const OnlineConfig& cfg) : BanditBase(cfg, 0.25, 0.9) {}
  const char* name() const override { return "egreedy"; }

  int select(int phase, int current_arm,
             const std::array<double, kArms>& switch_penalty) override {
    const auto cands = candidates(phase, current_arm);
    // Epsilon ages with the phase's accumulated pulls; decay_all shrinks
    // the pull mass on fault events, so epsilon recovers and the policy
    // re-explores the post-fault cluster.
    double total = 0.0;
    for (int a = 0; a < kArms; ++a) total += stats(phase, a).pulls;
    const double eps = explore_ * std::pow(decay_, total);
    if (rng_.uniform() < eps)
      return cands[rng_.below(cands.size())];

    const double vmean = sampled_value_stats(phase, cands).second;
    int best = current_arm >= 0 ? current_arm : cands.front();
    double best_score =
        ranking_value(phase, best, vmean) -
        switch_penalty[static_cast<std::size_t>(best)];
    for (int a : cands) {
      if (a == best) continue;
      const double s = ranking_value(phase, a, vmean) -
                       switch_penalty[static_cast<std::size_t>(a)];
      if (s > best_score) {
        best = a;
        best_score = s;
      }
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<OnlinePolicy> make_online_policy(const OnlineConfig& cfg) {
  if (cfg.kind == tenancy::MetaPolicy::kEgreedy)
    return std::make_unique<EgreedyPolicy>(cfg);
  return std::make_unique<UcbPolicy>(cfg);
}

// ---------------------------------------------------------------------------
// OnlineScheduler

OnlineScheduler::OnlineScheduler(cluster::Cluster& cl, OnlineConfig cfg)
    : cl_(cl),
      cfg_(cfg),
      event_decay_(cfg.decay > 0.0 ? cfg.decay : 0.5),
      policy_(make_online_policy(cfg)),
      switcher_(PairSwitcher::create(cl)) {}

std::shared_ptr<OnlineScheduler> OnlineScheduler::create(cluster::Cluster& cl,
                                                         OnlineConfig cfg) {
  auto sched =
      std::shared_ptr<OnlineScheduler>(new OnlineScheduler(cl, cfg));
  std::weak_ptr<OnlineScheduler> weak = sched;

  sched->switcher_->on_switched = [weak](int kind, iosched::SchedulerPair p) {
    if (auto s = weak.lock()) {
      ++s->arm_switches_;
      // The window in flight contains the switch quiesce (near-zero
      // throughput while every elevator drains); crediting it would brand
      // the new arm with the *cost of trying it*, biasing the bandit
      // against everything it explores. Measure the new arm from the next
      // clean window instead.
      s->skip_next_reward_ = true;
      s->last_switch_ = s->cl_.simr().now();
      if (auto* reg = trace::registry()) reg->counter("meta.arm_switches").inc();
      if (auto* tr = trace::tracer()) {
        if (!s->tt_arm_switch_) {
          s->tt_arm_switch_ = tr->intern("tt_arm_switch");
          tr->pin_name(s->tt_arm_switch_);
        }
        tr->instant(tr->track("meta"), s->tt_arm_switch_, tr->ids.cat_meta,
                    s->cl_.simr().now(), tr->ids.index, kind, tr->ids.pair,
                    virt::PhysicalHost::pair_code(p), tr->ids.value,
                    s->arm_switches_);
      }
    }
  };
  sched->switcher_->on_switch_failed = [weak](int kind, int attempt) {
    if (auto s = weak.lock()) {
      if (auto* tr = trace::tracer()) {
        tr->instant(tr->track("meta"), tr->ids.switch_fail, tr->ids.cat_meta,
                    s->cl_.simr().now(), tr->ids.index, kind, tr->ids.attempt,
                    attempt);
      }
    }
  };

  // Fault/membership events age every estimate: the cluster the bandit
  // profiled no longer exists, so confidence bounds widen and it re-explores.
  if (auto* ms = cl.membership()) {
    ms->on_declared_dead([weak](int, sim::Time t) {
      if (auto s = weak.lock()) s->on_fault_event(t);
    });
    ms->on_schedulable_again([weak](int, sim::Time t) {
      if (auto s = weak.lock()) s->on_fault_event(t);
    });
  }

  sched->agg_.on_cluster_phase = [weak](int kind) {
    if (auto s = weak.lock()) s->enter_phase(kind, s->cl_.simr().now());
  };
  return sched;
}

void OnlineScheduler::attach_stream_job(mapred::Job& job) {
  const int id = job.job_id();
  auto self = shared_from_this();

  // Chain in front of whatever the runner installs after this hook: the
  // previous callback (if any) runs first, then the aggregator update.
  auto prev_maps = std::move(job.on_maps_done);
  job.on_maps_done = [self, id, prev_maps](sim::Time t) {
    if (prev_maps) prev_maps(t);
    self->agg_.job_phase(id, 1);
  };
  auto prev_shuffle = std::move(job.on_shuffle_done);
  job.on_shuffle_done = [self, id, prev_shuffle](sim::Time t) {
    if (prev_shuffle) prev_shuffle(t);
    self->agg_.job_phase(id, 2);
  };
  auto prev_done = std::move(job.on_done);
  job.on_done = [self, id, prev_done](sim::Time t) {
    if (prev_done) prev_done(t);
    self->agg_.job_retired(id);
  };
  auto prev_failed = std::move(job.on_failed);
  job.on_failed = [self, id, prev_failed](sim::Time t, const std::string& why) {
    if (prev_failed) prev_failed(t, why);
    self->agg_.job_retired(id);
  };

  agg_.job_admitted(id);
  if (cur_kind_ < 0) {
    // First job: open the phase-0 reward window at the boot pair. No pull —
    // the cluster just booted with cfg.pair and there is nothing to learn
    // from yet.
    cur_kind_ = 0;
    win_start_ = cl_.simr().now();
    run_start_ = win_start_;
    win_bytes_ = cluster_bytes();
    win_busy_ns_ = cluster_busy_ns();
  }
  ensure_ticking();
}

void OnlineScheduler::attach_single_job(mapred::Job& job, PhasePlan plan) {
  auto self = shared_from_this();
  const int count = plan.count();
  PhaseDetector::attach(job, plan, [self, count](int phase, sim::Time t) {
    // Plan phase index -> cluster phase kind: a merged shuffle+reduce tail
    // (count == 2) maps onto the shuffle table.
    const int kind = count >= kPhaseKinds ? phase : (phase == 0 ? 0 : 1);
    self->enter_phase(kind, t);
  });
}

void OnlineScheduler::enter_phase(int kind, sim::Time t) {
  if (kind < 0 || kind >= kPhaseKinds) return;
  if (cur_kind_ < 0) {
    // First boundary ever (single-job attach): open the window, don't pull —
    // the boot pair was installed for free.
    cur_kind_ = kind;
    win_start_ = t;
    run_start_ = t;
    win_bytes_ = cluster_bytes();
    win_busy_ns_ = cluster_busy_ns();
    return;
  }
  close_window(t);
  cur_kind_ = kind;
  pull(t);
}

void OnlineScheduler::close_window(sim::Time now) {
  const double elapsed = (now - win_start_).sec();
  if (skip_next_reward_) {
    // Discard the window polluted by a switch transient: reset the
    // baseline, credit nothing.
    skip_next_reward_ = false;
    win_start_ = now;
    win_bytes_ = cluster_bytes();
    win_busy_ns_ = cluster_busy_ns();
    return;
  }
  // Normalize by disk *busy* time, not wall time. Wall-clock MB/s inverts
  // the ranking on demand-limited streams: a fast arm drains the backlog
  // and idles the disks (low MB/s) while a slow arm keeps them saturated
  // (high MB/s). MB per busy second is elevator efficiency — it compares
  // arms fairly regardless of how much work arrived. A window with almost
  // no busy time carries no signal and is skipped, not credited as zero.
  const double busy_s =
      static_cast<double>(cluster_busy_ns() - win_busy_ns_) / 1e9;
  if (cur_kind_ >= 0 && elapsed > 1e-9 && busy_s > kMinBusySeconds) {
    const std::int64_t bytes = cluster_bytes() - win_bytes_;
    const double mb_per_busy_s =
        static_cast<double>(bytes) / busy_s / (1024.0 * 1024.0);
    // Credit the pair actually installed during the window — after a failed
    // switch that is the old pair, and the estimate should know.
    const int arm = cl_.pair().index();
    policy_->reward(cur_kind_, arm, mb_per_busy_s);
    ++reward_samples_;
    mean_reward_ += (mb_per_busy_s - mean_reward_) / reward_samples_;
    horizon_s_ += 0.3 * (elapsed - horizon_s_);
    if (auto* reg = trace::registry()) {
      reg->gauge("meta.last_reward_mbps").set(mb_per_busy_s);
      reg->gauge("meta.horizon_s").set(horizon_s_);
    }
  }
  win_start_ = now;
  win_bytes_ = cluster_bytes();
  win_busy_ns_ = cluster_busy_ns();
}

void OnlineScheduler::pull(sim::Time t) {
  // Dwell: after a switch, hold the new arm for at least two sample
  // periods — one clean measurement window — before reconsidering.
  // Without this the bandit can ping-pong faster than it can measure.
  if (arm_switches_ > 0 && (t - last_switch_) < kSamplePeriod * 2.0) return;

  const iosched::SchedulerPair cur = cl_.pair();
  const int cur_arm = cur.index();

  // Predicted switch cost, amortized over how long the chosen arm will
  // plausibly be held, expressed in reward units. The holding horizon is
  // the larger of the observed window EWMA and half the elapsed run: a
  // switch adopted late in a long stream keeps paying off until the end,
  // so its fixed quiesce cost shrinks relative to the gain — without this
  // the penalty (scaled by the mean reward) dwarfs the value differences
  // between arms and the bandit never leaves its boot pair.
  std::array<double, iosched::kNumSchedulerPairs> penalty{};
  const double rate = std::max(mean_reward_, 0.0);
  const double amort =
      std::max({horizon_s_, 0.5 * (t - run_start_).sec(), 1.0});
  for (int a = 0; a < iosched::kNumSchedulerPairs; ++a) {
    if (a == cur_arm) continue;
    penalty[static_cast<std::size_t>(a)] =
        predictor_.predict_seconds(cur, iosched::SchedulerPair::from_index(a)) /
        amort * rate;
  }

  const int arm = policy_->select(cur_kind_, cur_arm, penalty);
  ++pulls_;
  if (auto* reg = trace::registry()) reg->counter("meta.pulls").inc();
  if (auto* tr = trace::tracer()) {
    if (!tt_arm_pull_) {
      tt_arm_pull_ = tr->intern("tt_arm_pull");
      tr->pin_name(tt_arm_pull_);
    }
    tr->instant(tr->track("meta"), tt_arm_pull_, tr->ids.cat_meta, t,
                tr->ids.index, cur_kind_, tr->ids.pair,
                virt::PhysicalHost::pair_code(
                    iosched::SchedulerPair::from_index(arm)),
                tr->ids.value, pulls_);
  }

  // Every pull is a decision boundary: any retry still chasing an older
  // decision is stale, whether or not we switch now.
  switcher_->supersede();
  if (arm != cur_arm)
    switcher_->request(cur_kind_, iosched::SchedulerPair::from_index(arm));
}

void OnlineScheduler::ensure_ticking() {
  if (ticking_ || agg_.live_jobs() <= 0) return;
  ticking_ = true;
  std::weak_ptr<OnlineScheduler> weak = shared_from_this();
  cl_.simr().after(kSamplePeriod, [weak] {
    auto s = weak.lock();
    if (!s) return;
    s->ticking_ = false;
    if (s->agg_.live_jobs() <= 0) return;  // stream drained; stop ticking
    // Mid-phase re-pull: close the window, credit the installed arm, and
    // let the policy reconsider. This is what makes the bandit converge on
    // stationary workloads where cluster-phase changes are rare.
    const sim::Time now = s->cl_.simr().now();
    s->close_window(now);
    s->pull(now);
    s->ensure_ticking();
  });
}

void OnlineScheduler::on_fault_event(sim::Time t) {
  close_window(t);  // don't blame the new regime's window on the old one
  policy_->decay_all(event_decay_);
  ++decays_;
  if (auto* reg = trace::registry()) reg->counter("meta.decays").inc();
  if (auto* tr = trace::tracer()) {
    if (!tt_arm_pull_) {
      tt_arm_pull_ = tr->intern("tt_arm_pull");
      tr->pin_name(tt_arm_pull_);
    }
    // Re-use the pull instant's track for the decay marker: index = -1
    // distinguishes it from a real pull.
    tr->instant(tr->track("meta"), tr->ids.probe, tr->ids.cat_meta, t,
                tr->ids.index, -1, tr->ids.value, decays_);
  }
}

std::int64_t OnlineScheduler::cluster_bytes() const {
  std::int64_t total = 0;
  for (std::size_t h = 0; h < cl_.n_hosts(); ++h) {
    const auto& c = cl_.host(h).dom0_layer().counters();
    total += c.bytes_completed[0] + c.bytes_completed[1];
  }
  return total;
}

std::uint64_t OnlineScheduler::cluster_busy_ns() const {
  std::uint64_t total = 0;
  for (std::size_t h = 0; h < cl_.n_hosts(); ++h) {
    total += cl_.host(h).dom0_layer().counters().busy_ns;
  }
  return total;
}

// ---------------------------------------------------------------------------
// SchedulePlayer

SchedulePlayer::SchedulePlayer(cluster::Cluster& cl, PairSchedule schedule,
                               PhasePlan plan)
    : cl_(cl),
      schedule_(std::move(schedule)),
      plan_(std::move(plan)),
      switcher_(PairSwitcher::create(cl)) {}

std::shared_ptr<SchedulePlayer> SchedulePlayer::create(cluster::Cluster& cl,
                                                       PairSchedule schedule,
                                                       PhasePlan plan) {
  auto player = std::shared_ptr<SchedulePlayer>(
      new SchedulePlayer(cl, std::move(schedule), std::move(plan)));
  std::weak_ptr<SchedulePlayer> weak = player;
  player->switcher_->on_switched = [weak](int phase, iosched::SchedulerPair p) {
    if (auto s = weak.lock()) {
      if (auto* tr = trace::tracer()) {
        tr->instant(tr->track("core"), tr->ids.pair_switch, tr->ids.cat_core,
                    s->cl_.simr().now(), tr->ids.index, phase, tr->ids.pair,
                    virt::PhysicalHost::pair_code(p));
      }
    }
  };
  player->switcher_->on_switch_failed = [weak](int phase, int attempt) {
    if (auto s = weak.lock()) {
      if (auto* tr = trace::tracer()) {
        tr->instant(tr->track("core"), tr->ids.switch_fail, tr->ids.cat_core,
                    s->cl_.simr().now(), tr->ids.index, phase, tr->ids.attempt,
                    attempt);
      }
    }
  };
  player->agg_.on_cluster_phase = [weak](int kind) {
    if (auto s = weak.lock()) s->enter_phase(kind, s->cl_.simr().now());
  };
  return player;
}

void SchedulePlayer::attach_stream_job(mapred::Job& job) {
  const int id = job.job_id();
  auto self = shared_from_this();
  auto prev_maps = std::move(job.on_maps_done);
  job.on_maps_done = [self, id, prev_maps](sim::Time t) {
    if (prev_maps) prev_maps(t);
    self->agg_.job_phase(id, 1);
  };
  auto prev_shuffle = std::move(job.on_shuffle_done);
  job.on_shuffle_done = [self, id, prev_shuffle](sim::Time t) {
    if (prev_shuffle) prev_shuffle(t);
    self->agg_.job_phase(id, 2);
  };
  auto prev_done = std::move(job.on_done);
  job.on_done = [self, id, prev_done](sim::Time t) {
    if (prev_done) prev_done(t);
    self->agg_.job_retired(id);
  };
  auto prev_failed = std::move(job.on_failed);
  job.on_failed = [self, id, prev_failed](sim::Time t, const std::string& why) {
    if (prev_failed) prev_failed(t, why);
    self->agg_.job_retired(id);
  };
  agg_.job_admitted(id);
  cur_kind_ = std::max(cur_kind_, 0);
}

void SchedulePlayer::enter_phase(int kind, sim::Time) {
  if (kind < 0 || kind >= kPhaseKinds) return;
  cur_kind_ = kind;
  // Cluster phase kind -> schedule phase index: a two-phase schedule folds
  // shuffle and reduce onto its tail entry.
  const int idx =
      schedule_.count() >= kPhaseKinds ? kind : (kind == 0 ? 0 : 1);
  const iosched::SchedulerPair target =
      schedule_.effective(std::min(idx, schedule_.count() - 1));
  switcher_->supersede();
  if (!(target == cl_.pair())) switcher_->request(idx, target);
}

// ---------------------------------------------------------------------------
// run_stream_with_policy

MetaStreamResult run_stream_with_policy(cluster::ClusterConfig cfg,
                                        const tenancy::StreamSpec& spec) {
  MetaStreamResult out;
  const tenancy::MetaSpec& m = spec.meta;

  if (m.policy == tenancy::MetaPolicy::kNone ||
      m.policy == tenancy::MetaPolicy::kStatic) {
    if (m.policy == tenancy::MetaPolicy::kStatic && !m.pair.empty()) {
      const auto vmm = iosched::scheduler_from_string(m.pair.substr(0, 1));
      const auto guest = iosched::scheduler_from_string(m.pair.substr(1, 1));
      if (vmm && guest) cfg.pair = {*vmm, *guest};
    }
    out.boot_pair = cfg.pair.letters();
    out.stream = tenancy::run_stream(cfg, spec);
    return out;
  }

  if (m.policy == tenancy::MetaPolicy::kOffline) {
    // Algorithm 1, profiled once on a healthy side cluster: the class named
    // by meta.profile (default: the first class) at its midpoint size
    // stands in for the whole stream — exactly the stale-corpus assumption
    // the online policies exist to drop.
    const tenancy::ClassSpec* cls = &spec.classes.front();
    for (const auto& c : spec.classes) {
      if (c.name == m.profile) cls = &c;
    }
    const auto model = workloads::by_name(cls->workload);
    const std::int64_t bytes =
        static_cast<std::int64_t>((cls->mb_min + cls->mb_max) / 2) *
        mapred::kMiB;
    const mapred::JobConf jc = workloads::make_job(*model, bytes);

    cluster::ClusterConfig side = cfg;
    side.faults = {};  // the profiler never sees the faults coming
    MetaSchedulerOptions opts;
    opts.plan = PhasePlan::for_job(jc, side.n_hosts * side.vms_per_host);
    MetaScheduler ms(side, jc, opts);
    MetaResult r = ms.optimize();
    out.profile_runs = static_cast<int>(r.profile.size());
    out.heuristic_evals = r.heuristic_evaluations;
    out.schedule_key = r.solution.key();

    cfg.pair = r.solution.initial();
    out.boot_pair = cfg.pair.letters();
    auto holder = std::make_shared<std::shared_ptr<SchedulePlayer>>();
    const PairSchedule solution = r.solution;
    const PhasePlan plan = opts.plan;
    out.stream = tenancy::run_stream(
        cfg, spec,
        [holder, solution, plan](cluster::Cluster& cl, mapred::Job& job, int) {
          if (!*holder) *holder = SchedulePlayer::create(cl, solution, plan);
          (*holder)->attach_stream_job(job);
        });
    if (*holder) out.arm_switches = (*holder)->switches_performed();
    return out;
  }

  // kUcb / kEgreedy: one shared learning state across every job in the run.
  const OnlineConfig oc =
      OnlineConfig::from_meta(m, sim::derive_run_seed(cfg.seed, 3));
  out.boot_pair = cfg.pair.letters();
  auto holder = std::make_shared<std::shared_ptr<OnlineScheduler>>();
  out.stream = tenancy::run_stream(
      cfg, spec, [holder, oc](cluster::Cluster& cl, mapred::Job& job, int) {
        if (!*holder) *holder = OnlineScheduler::create(cl, oc);
        (*holder)->attach_stream_job(job);
      });
  if (*holder) {
    out.arm_pulls = (*holder)->pulls();
    out.arm_switches = (*holder)->arm_switches();
    out.switch_failures = (*holder)->switch_failures();
    out.decays = (*holder)->decays();
  }
  return out;
}

}  // namespace iosim::core
