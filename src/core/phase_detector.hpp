// iosim: runtime phase detection.
//
// Subscribes to a Job's lifecycle events and reports phase *entries*:
// index 0 fires at job start, 1 at all-maps-done, 2 (when the plan keeps
// three phases) at shuffle-done. Chains with any callbacks already
// installed on the job, so probes and detectors can coexist.
#pragma once

#include <functional>

#include "core/phase_plan.hpp"
#include "mapred/job.hpp"

namespace iosim::core {

using sim::Time;

class PhaseDetector {
 public:
  using PhaseCallback = std::function<void(int phase_index, Time)>;

  /// Wire `cb` into `job`'s event stream. `cb(0, t)` is invoked from
  /// job-start (synchronously when the first map is scheduled is too late
  /// for installing the initial pair — so phase 0 entry is reported
  /// immediately, at attach time, with the simulator's current clock).
  static void attach(mapred::Job& job, PhasePlan plan, PhaseCallback cb);
};

}  // namespace iosim::core
