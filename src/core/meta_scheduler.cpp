#include "core/meta_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <limits>

#include "cluster/chain_runner.hpp"
#include "core/adaptive_controller.hpp"
#include "trace/registry.hpp"
#include "trace/trace.hpp"
#include "virt/physical_host.hpp"

namespace iosim::core {

namespace {

/// The paper's experiment: one job, profiled and executed on a fresh
/// cluster per run.
Experiment make_single_job_experiment(cluster::ClusterConfig cluster_cfg,
                                      mapred::JobConf job_conf,
                                      const MetaSchedulerOptions& opts) {
  Experiment e;
  const PhasePlan plan = opts.plan;
  const int seeds = opts.seeds_per_eval;
  e.phases = plan.count();

  e.profile = [cluster_cfg, job_conf, plan, seeds](iosched::SchedulerPair p) {
    cluster::ClusterConfig cfg = cluster_cfg;
    cfg.pair = p;
    const auto r = cluster::run_job_avg(cfg, job_conf, seeds);
    ProfileEntry entry;
    entry.pair = p;
    entry.total_seconds = r.seconds;
    if (plan.merge_shuffle_tail) {
      entry.phase_seconds = {r.ph1_seconds, r.ph23_seconds};
    } else {
      entry.phase_seconds = {r.ph1_seconds, r.ph2_seconds, r.ph3_seconds};
    }
    return entry;
  };

  e.execute = [cluster_cfg, job_conf, plan, seeds](const PairSchedule& schedule) {
    cluster::ClusterConfig cfg = cluster_cfg;
    cfg.pair = schedule.initial();
    return cluster::run_job_avg(
        cfg, job_conf, seeds, [&schedule, plan](cluster::Cluster& cl, mapred::Job& job) {
          AdaptiveController::attach(cl, job, schedule, plan);
        });
  };
  return e;
}

}  // namespace

Experiment make_chain_experiment(cluster::ClusterConfig cfg,
                                 std::vector<mapred::JobConf> confs,
                                 int seeds_per_eval) {
  Experiment e;
  const int per_job = 2;  // maps / rest, the paper's merged plan
  e.phases = per_job * static_cast<int>(confs.size());

  e.profile = [cfg, confs, seeds_per_eval](iosched::SchedulerPair p) {
    cluster::ClusterConfig c = cfg;
    c.pair = p;
    const auto r = cluster::run_job_chain_avg(c, confs, seeds_per_eval);
    ProfileEntry entry;
    entry.pair = p;
    entry.total_seconds = r.seconds;
    sim::Time prev_end = sim::Time::zero();
    for (const auto& js : r.jobs) {
      // Phase 2k: previous job end -> this job's maps done (includes the
      // scheduling gap); phase 2k+1: maps done -> job done.
      entry.phase_seconds.push_back((js.t_maps_done - prev_end).sec());
      entry.phase_seconds.push_back((js.t_done - js.t_maps_done).sec());
      prev_end = js.t_done;
    }
    return entry;
  };

  e.execute = [cfg, confs, seeds_per_eval](const PairSchedule& schedule) {
    cluster::ClusterConfig c = cfg;
    c.pair = schedule.initial();
    const auto chain = cluster::run_job_chain_avg(
        c, confs, seeds_per_eval,
        [&schedule](cluster::Cluster& cl, mapred::Job& job, int idx) {
          PhaseDetector::attach(
              job, PhasePlan{/*merge_shuffle_tail=*/true},
              [&cl, &schedule, idx](int local_phase, sim::Time) {
                const int global = 2 * idx + local_phase;
                if (global == 0) return;  // installed at boot
                if (global >= schedule.count()) return;
                const auto& target =
                    schedule.phases[static_cast<std::size_t>(global)];
                if (!target.has_value()) return;
                if (*target == cl.pair()) return;
                cl.switch_pair(*target);
              });
        });
    cluster::RunResult out;
    out.seconds = chain.seconds;
    if (!chain.jobs.empty()) out.stats = chain.jobs.back();
    return out;
  };
  return e;
}

MetaScheduler::MetaScheduler(cluster::ClusterConfig cluster_cfg,
                             mapred::JobConf job_conf, MetaSchedulerOptions opts)
    : exp_(make_single_job_experiment(std::move(cluster_cfg), std::move(job_conf), opts)),
      opts_(opts) {}

MetaScheduler::MetaScheduler(Experiment experiment, MetaSchedulerOptions opts)
    : exp_(std::move(experiment)), opts_(opts) {}

cluster::RunResult MetaScheduler::execute(const PairSchedule& schedule) const {
  return exp_.execute(schedule);
}

ProfileEntry MetaScheduler::profile_one(iosched::SchedulerPair p) const {
  ProfileEntry e = exp_.profile(p);
  meta_clock_ = meta_clock_ + sim::Time::from_sec_f(e.total_seconds);
  e.measured_at = meta_clock_;
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("meta"), tr->ids.profile, tr->ids.cat_meta,
                meta_clock_, tr->ids.pair, virt::PhysicalHost::pair_code(p),
                tr->ids.value, static_cast<std::int64_t>(e.total_seconds * 1000.0));
  }
  if (auto* reg = trace::registry()) reg->counter("meta.profile_runs").inc();
  if (opts_.verbose) {
    std::printf("  profile %-28s total=%.1fs phases=[", p.to_string().c_str(),
                e.total_seconds);
    for (std::size_t i = 0; i < e.phase_seconds.size(); ++i) {
      std::printf("%s%.1f", i ? ", " : "", e.phase_seconds[i]);
    }
    std::printf("]\n");
  }
  return e;
}

std::vector<ProfileEntry> MetaScheduler::profile_all_pairs() const {
  std::vector<ProfileEntry> out;
  for (const auto& p : iosched::all_scheduler_pairs()) {
    out.push_back(profile_one(p));
  }
  return out;
}

void MetaScheduler::refresh_profile(std::vector<ProfileEntry>& entries) const {
  for (auto& e : entries) e = profile_one(e.pair);
  if (auto* reg = trace::registry()) reg->counter("meta.profile_refreshes").inc();
}

bool MetaScheduler::is_fresh(const ProfileEntry& e) const {
  return opts_.profile_staleness_bound == sim::Time::zero() ||
         meta_clock_ - e.measured_at <= opts_.profile_staleness_bound;
}

double MetaScheduler::evaluate(
    const PairSchedule& schedule,
    std::vector<std::pair<std::string, double>>* cache) const {
  const std::string key = schedule.key();
  if (cache != nullptr) {
    for (const auto& [k, v] : *cache) {
      if (k == key) return v;
    }
  }
  const double secs = exp_.execute(schedule).seconds;
  meta_clock_ = meta_clock_ + sim::Time::from_sec_f(secs);
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track("meta"), tr->ids.probe, tr->ids.cat_meta, meta_clock_,
                tr->ids.value, static_cast<std::int64_t>(secs * 1000.0));
  }
  if (auto* reg = trace::registry()) reg->counter("meta.heuristic_evals").inc();
  if (cache != nullptr) cache->emplace_back(key, secs);
  return secs;
}

MetaResult MetaScheduler::optimize() {
  MetaResult res;
  const int P = exp_.phases;

  // ---- Step 1: profile every single pair (Fig. 6). ----
  res.profile = profile_all_pairs();

  for (const auto& e : res.profile) {
    if (e.pair == iosched::kDefaultPair) res.default_seconds = e.total_seconds;
  }
  res.best_single_seconds = std::numeric_limits<double>::infinity();
  for (const auto& e : res.profile) {
    if (e.total_seconds < res.best_single_seconds) {
      res.best_single_seconds = e.total_seconds;
      res.best_single = e.pair;
    }
  }

  // Per-phase rankings (ascending phase time = descending performance
  // score) and the best single pair for every suffix of phases. Both are
  // recomputable: a staleness-triggered re-profile invalidates the order.
  std::vector<std::vector<const ProfileEntry*>> ranking(static_cast<std::size_t>(P));
  auto sort_rankings = [&] {
    for (int i = 0; i < P; ++i) {
      auto& r = ranking[static_cast<std::size_t>(i)];
      r.clear();
      for (const auto& e : res.profile) r.push_back(&e);
      std::sort(r.begin(), r.end(), [i](const ProfileEntry* a, const ProfileEntry* b) {
        return a->phase_seconds[static_cast<std::size_t>(i)] <
               b->phase_seconds[static_cast<std::size_t>(i)];
      });
    }
  };
  sort_rankings();
  std::vector<SchedulerPair> suffix_best(static_cast<std::size_t>(P) + 1);
  auto compute_suffix_best = [&] {
    for (int i = 0; i < P; ++i) {
      // Prefer fresh measurements; fall back to the best *measured* (stale)
      // entry only when nothing fresh exists for this suffix.
      for (const bool fresh_only : {true, false}) {
        double best = std::numeric_limits<double>::infinity();
        bool found = false;
        for (const auto& e : res.profile) {
          if (fresh_only && !is_fresh(e)) continue;
          double s = 0.0;
          for (int k = i; k < P; ++k) s += e.phase_seconds[static_cast<std::size_t>(k)];
          if (s < best) {
            best = s;
            suffix_best[static_cast<std::size_t>(i)] = e.pair;
            found = true;
          }
        }
        if (found) break;
      }
    }
  };
  compute_suffix_best();

  // ---- Step 2: Algorithm 1. ----
  std::vector<std::pair<std::string, double>> cache;
  int evals = 0;
  PairSchedule sol;
  sol.phases.assign(static_cast<std::size_t>(P), std::nullopt);

  auto make_schedule = [&](int phase, SchedulerPair candidate) {
    PairSchedule s = sol;
    s.phases[static_cast<std::size_t>(phase)] = candidate;
    // All remaining phases run the best single suffix pair (S_{i+1}).
    for (int k = phase + 1; k < P; ++k) {
      s.phases[static_cast<std::size_t>(k)] =
          (k == phase + 1) ? std::optional<SchedulerPair>(
                                 suffix_best[static_cast<std::size_t>(k)])
                           : std::nullopt;
    }
    // Normalize: an entry equal to the effective previous pair is a no-op
    // switch; encode it as 0 so we never pay a redundant quiesce.
    for (int k = 1; k < P; ++k) {
      auto& ph = s.phases[static_cast<std::size_t>(k)];
      if (ph.has_value() && *ph == s.effective(k - 1)) ph = std::nullopt;
    }
    return s;
  };

  for (int i = 0; i < P; ++i) {
    // Staleness gate: scores age as the search itself burns time. Probe only
    // fresh entries for this phase; when none survive, re-measure every pair
    // and re-rank (meta.stale_skips / meta.profile_refreshes count both).
    std::vector<const ProfileEntry*> rank;
    for (const auto* e : ranking[static_cast<std::size_t>(i)]) {
      if (is_fresh(*e)) rank.push_back(e);
    }
    const auto skipped =
        ranking[static_cast<std::size_t>(i)].size() - rank.size();
    if (skipped > 0) {
      if (auto* reg = trace::registry()) {
        reg->counter("meta.stale_skips").inc(static_cast<std::int64_t>(skipped));
      }
    }
    if (rank.empty()) {
      refresh_profile(res.profile);
      sort_rankings();
      compute_suffix_best();
      cache.clear();  // cached probe times predate the refreshed conditions
      rank = ranking[static_cast<std::size_t>(i)];
    }
    std::size_t j = 0;
    auto count_eval = [&](const PairSchedule& s) {
      const std::size_t before = cache.size();
      const double v = evaluate(s, &cache);
      if (cache.size() != before) ++evals;
      return v;
    };
    double t_cur = count_eval(make_schedule(i, rank[j]->pair));
    while (j + 1 < rank.size()) {
      const double t_next = count_eval(make_schedule(i, rank[j + 1]->pair));
      if (t_next < t_cur) {
        ++j;
        t_cur = t_next;
      } else {
        break;  // performance got worse: the pair for this phase is fixed
      }
    }
    const SchedulerPair chosen = rank[j]->pair;
    if (i > 0 && chosen == sol.effective(i - 1)) {
      sol.phases[static_cast<std::size_t>(i)] = std::nullopt;  // the "0" entry
    } else {
      sol.phases[static_cast<std::size_t>(i)] = chosen;
    }
    if (opts_.verbose) {
      std::printf("  phase %d fixed: %s (probed %zu candidates, best %.1fs)\n",
                  i + 1, chosen.to_string().c_str(), j + 2, t_cur);
    }
  }

  // ---- Step 3: final adaptive execution. ----
  res.solution = sol;
  res.adaptive_run = execute(sol);
  res.adaptive_seconds = res.adaptive_run.seconds;
  res.heuristic_evaluations = evals;

  if (opts_.fallback_to_best_single &&
      res.adaptive_seconds > res.best_single_seconds) {
    // Switch costs ate the per-phase gains: ship the best single pair.
    res.solution = PairSchedule::single(res.best_single, P);
    res.adaptive_run = execute(res.solution);
    res.adaptive_seconds = res.adaptive_run.seconds;
    res.fell_back = true;
    if (auto* reg = trace::registry()) reg->counter("meta.fallbacks").inc();
    if (opts_.verbose) {
      std::printf("  fell back to single pair %s (%.1fs)\n",
                  res.best_single.to_string().c_str(), res.adaptive_seconds);
    }
  }
  return res;
}

}  // namespace iosim::core
