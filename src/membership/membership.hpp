// iosim: cluster membership — failure detection, blacklisting, and HDFS
// re-replication.
//
// MembershipService is the self-healing layer the paper's testbed lacks: it
// watches TaskTracker liveness the way a JobTracker does (missed heartbeats
// against the simulator clock), escalates a silent VM through suspected →
// declared-dead, blacklists fail-slow VMs that keep burning task attempts,
// and reacts to a death the way the NameNode does — scanning every
// registered job's block table for replicas on the dead VM and copying each
// under-replicated block from a live source to a fresh target through both
// elevators, so repair traffic contends with foreground jobs on the same
// disks and network the paper studies.
//
// Determinism: the service consumes no randomness. Heartbeat-miss checks
// are bounded event chains hung off the fault injector's vm_down/vm_up
// edges (never periodic self-rescheduling, so an idle cluster still
// drains), repair targets come from the HDFS round-robin cursor, and block
// tables are scanned in registration order. Constructed only when a fault
// plan exists — fault-free runs build no service and stay byte-identical.
//
// Trace instants (lazily interned + pinned, track "membership"):
//   tt_suspect    heartbeats missed past the suspicion threshold
//   tt_dead       declared dead; re-replication scan starts
//   tt_blacklist  strikes exhausted; VM on probation
//   tt_probe_ok   probation probe answered; VM schedulable again
//   tt_rejoin     a declared-dead VM reported back in
//   blk_repair    one block's replica count restored (arg = bytes)
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "mapred/cluster_env.hpp"
#include "mapred/membership_iface.hpp"

namespace iosim::membership {

struct MembershipConfig {
  /// TaskTracker heartbeat interval (Hadoop 0.19 default: 3 s).
  sim::Time heartbeat_period = sim::Time::from_sec_f(3.0);
  /// Consecutive missed heartbeats before suspicion / declared-dead.
  int misses_to_suspect = 2;
  int misses_to_dead = 4;
  /// Failed task attempts on one VM before it is blacklisted.
  int blacklist_strikes = 3;
  /// Probation: time until the un-blacklist probe.
  sim::Time probation = sim::Time::from_sec_f(30.0);
  /// Concurrent block-repair copies (dfs.max-repl-streams flavor).
  int repair_streams = 4;
  /// Per-block copy attempts before the repair is given up.
  int repair_attempts = 3;
  /// Bio sizing for repair streams (matches JobConf::io_unit_bytes default).
  std::int64_t io_unit_bytes = 256 * 1024;
};

class MembershipService final : public mapred::MembershipIface {
 public:
  explicit MembershipService(mapred::ClusterEnv& env, MembershipConfig cfg = {});
  MembershipService(const MembershipService&) = delete;
  MembershipService& operator=(const MembershipService&) = delete;

  // -- MembershipIface --------------------------------------------------------
  bool schedulable(int vm) const override;
  bool declared_dead(int vm) const override;
  void note_task_failure(int vm) override;
  void register_job_blocks(int job_id,
                           std::vector<hdfs::DfsBlock>* blocks) override;
  void unregister_job_blocks(int job_id) override;
  void on_declared_dead(VmEvent cb) override { dead_cbs_.push_back(std::move(cb)); }
  void on_schedulable_again(VmEvent cb) override {
    again_cbs_.push_back(std::move(cb));
  }

  // -- observability ----------------------------------------------------------

  enum class VmState : std::uint8_t { kAlive, kSuspect, kDead, kBlacklisted };
  VmState state(int vm) const {
    return vms_[static_cast<std::size_t>(vm)].st;
  }
  bool blacklisted(int vm) const {
    return state(vm) == VmState::kBlacklisted;
  }

  struct Counters {
    std::uint64_t suspects = 0;       // suspicion transitions
    std::uint64_t deaths = 0;         // declared-dead transitions
    std::uint64_t rejoins = 0;        // declared-dead VMs that came back
    std::uint64_t blacklists = 0;
    std::uint64_t unblacklists = 0;   // successful probation probes
    std::uint64_t blocks_repaired = 0;
    std::uint64_t blocks_lost = 0;    // no live source / target, or copy
                                      // attempts exhausted — data at risk
    std::uint64_t blocks_dropped = 0; // owning job retired before repair
    std::uint64_t repair_bytes = 0;   // payload bytes moved by repairs
  };
  const Counters& counters() const { return counters_; }

 private:
  struct VmInfo {
    VmState st = VmState::kAlive;
    /// Bumped on every vm_up; in-flight miss chains compare and die.
    int generation = 0;
    int strikes = 0;
    bool monitored = false;  // a heartbeat-miss chain is in flight
  };
  struct RepairItem {
    int job_id = 0;
    int block_index = 0;  // index into the registered table
    int dead_vm = -1;
    int attempts = 0;
  };

  sim::Simulator& simr() { return *env_.simr; }
  std::vector<hdfs::DfsBlock>* find_table(int job_id);

  void handle_vm_down(int vm);
  void handle_vm_up(int vm);
  void schedule_miss_check(int vm, int generation, int misses);
  void declare_dead(int vm);
  void blacklist_vm(int vm);
  void schedule_probe(int vm);
  int schedulable_vm_count() const;
  int blacklisted_vm_count() const;

  void enqueue_repairs(int dead_vm);
  void pump_repairs();
  void run_repair(RepairItem item);
  void abandon_repair(const RepairItem& item, bool job_gone);
  void finish_repair(const RepairItem& item, int target_vm, disk::Lba at,
                     std::int64_t bytes);

  void emit_instant(const char* name, int vm, std::int64_t arg);

  mapred::ClusterEnv& env_;
  MembershipConfig cfg_;
  std::vector<VmInfo> vms_;
  /// Registered block tables in registration order (deterministic scans).
  std::vector<std::pair<int, std::vector<hdfs::DfsBlock>*>> tables_;
  std::vector<VmEvent> dead_cbs_;
  std::vector<VmEvent> again_cbs_;
  std::vector<RepairItem> repair_queue_;  // FIFO
  int active_repairs_ = 0;
  Counters counters_;
};

}  // namespace iosim::membership
