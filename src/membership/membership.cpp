#include "membership/membership.hpp"

#include <cassert>

#include "check/check.hpp"
#include "trace/trace.hpp"
#include "virt/io_stream.hpp"

namespace iosim::membership {

MembershipService::MembershipService(mapred::ClusterEnv& env,
                                     MembershipConfig cfg)
    : env_(env), cfg_(cfg) {
  vms_.resize(static_cast<std::size_t>(env_.n_vms()));
  assert(env_.faults != nullptr &&
         "membership is only built for clusters with a fault plan");
  env_.faults->on_vm_down([this](int vm, sim::Time) { handle_vm_down(vm); });
  env_.faults->on_vm_up([this](int vm, sim::Time) { handle_vm_up(vm); });
}

void MembershipService::emit_instant(const char* name, int vm,
                                     std::int64_t arg) {
  auto* tr = trace::tracer();
  if (tr == nullptr) return;
  // Lazily interned + pinned: a run that never reaches this state keeps its
  // string table (and pinned digests) unchanged, and ring wrap on long soaks
  // cannot evict the names iosim-report greps for.
  const trace::Str n = tr->intern(name);
  tr->pin_name(n);
  tr->instant(tr->track("membership"), n, tr->ids.cat_fault, simr().now(),
              tr->intern("vm"), vm, tr->intern("arg"), arg);
}

// ---- liveness state machine -------------------------------------------------

bool MembershipService::schedulable(int vm) const {
  const VmState st = state(vm);
  return st == VmState::kAlive || st == VmState::kSuspect;
}

bool MembershipService::declared_dead(int vm) const {
  return state(vm) == VmState::kDead;
}

void MembershipService::handle_vm_down(int vm) {
  VmInfo& info = vms_[static_cast<std::size_t>(vm)];
  if (info.st == VmState::kDead || info.monitored) return;
  // The JobTracker does not see the outage edge — it sees heartbeats stop.
  // Walk the misses forward from here as a bounded event chain; a vm_up
  // bumps the generation and orphans the chain.
  info.monitored = true;
  schedule_miss_check(vm, info.generation, /*misses=*/1);
}

void MembershipService::schedule_miss_check(int vm, int generation,
                                            int misses) {
  simr().after(cfg_.heartbeat_period, [this, vm, generation, misses] {
    VmInfo& info = vms_[static_cast<std::size_t>(vm)];
    if (info.generation != generation) return;  // VM came back; chain is stale
    if (env_.vm_alive(vm)) {
      // Heartbeats resumed without a vm_up edge we saw — stop counting.
      info.monitored = false;
      return;
    }
    if (misses >= cfg_.misses_to_dead) {
      declare_dead(vm);
      return;
    }
    if (misses == cfg_.misses_to_suspect && info.st == VmState::kAlive) {
      info.st = VmState::kSuspect;
      ++counters_.suspects;
      emit_instant("tt_suspect", vm, misses);
    }
    schedule_miss_check(vm, generation, misses + 1);
  });
}

void MembershipService::declare_dead(int vm) {
  VmInfo& info = vms_[static_cast<std::size_t>(vm)];
  assert(info.st != VmState::kDead);
  info.st = VmState::kDead;
  info.monitored = false;
  info.strikes = 0;
  ++counters_.deaths;
  emit_instant("tt_dead", vm, static_cast<std::int64_t>(counters_.deaths));
  if (auto* ck = check::auditor()) {
    ck->on_vm_declared_dead(vm, simr().now().ns());
  }
  // Index loop: a callback may register further listeners.
  for (std::size_t i = 0; i < dead_cbs_.size(); ++i) {
    dead_cbs_[i](vm, simr().now());
  }
  enqueue_repairs(vm);
  pump_repairs();
}

void MembershipService::handle_vm_up(int vm) {
  VmInfo& info = vms_[static_cast<std::size_t>(vm)];
  ++info.generation;  // orphan any in-flight miss chain
  info.monitored = false;
  switch (info.st) {
    case VmState::kDead:
      // The TaskTracker re-registered: back in the cluster, clean slate.
      info.st = VmState::kAlive;
      info.strikes = 0;
      ++counters_.rejoins;
      emit_instant("tt_rejoin", vm, static_cast<std::int64_t>(counters_.rejoins));
      if (auto* ck = check::auditor()) {
        ck->on_vm_rejoined(vm, simr().now().ns());
      }
      for (std::size_t i = 0; i < again_cbs_.size(); ++i) {
        again_cbs_[i](vm, simr().now());
      }
      break;
    case VmState::kSuspect:
      info.st = VmState::kAlive;  // heartbeats resumed before the deadline
      break;
    case VmState::kBlacklisted:
      break;  // probation keeps running; the probe decides
    case VmState::kAlive:
      break;
  }
}

// ---- blacklist --------------------------------------------------------------

int MembershipService::schedulable_vm_count() const {
  int n = 0;
  for (int v = 0; v < env_.n_vms(); ++v) {
    if (schedulable(v) && env_.vm_alive(v)) ++n;
  }
  return n;
}

int MembershipService::blacklisted_vm_count() const {
  int n = 0;
  for (const VmInfo& i : vms_) {
    if (i.st == VmState::kBlacklisted) ++n;
  }
  return n;
}

void MembershipService::note_task_failure(int vm) {
  VmInfo& info = vms_[static_cast<std::size_t>(vm)];
  if (info.st == VmState::kDead || info.st == VmState::kBlacklisted) return;
  if (++info.strikes >= cfg_.blacklist_strikes) blacklist_vm(vm);
}

void MembershipService::blacklist_vm(int vm) {
  // Overload protection for the protector itself: never blacklist more than
  // half the cluster, and never take the last schedulable VM — a fully
  // blacklisted cluster cannot run the probe jobs that would clear it.
  if (blacklisted_vm_count() + 1 > env_.n_vms() / 2) return;
  if (schedulable(vm) && env_.vm_alive(vm) && schedulable_vm_count() <= 1) {
    return;
  }
  VmInfo& info = vms_[static_cast<std::size_t>(vm)];
  info.st = VmState::kBlacklisted;
  ++counters_.blacklists;
  emit_instant("tt_blacklist", vm, info.strikes);
  if (auto* ck = check::auditor()) {
    ck->on_vm_blacklisted(vm, simr().now().ns());
  }
  schedule_probe(vm);
}

void MembershipService::schedule_probe(int vm) {
  simr().after(cfg_.probation, [this, vm] {
    VmInfo& info = vms_[static_cast<std::size_t>(vm)];
    if (info.st != VmState::kBlacklisted) return;  // died / cleared meanwhile
    if (env_.vm_alive(vm)) {
      // The probe task ran clean: lift the blacklist.
      info.st = VmState::kAlive;
      info.strikes = 0;
      ++counters_.unblacklists;
      emit_instant("tt_probe_ok", vm,
                   static_cast<std::int64_t>(counters_.unblacklists));
      if (auto* ck = check::auditor()) {
        ck->on_vm_unblacklisted(vm, simr().now().ns());
      }
      for (std::size_t i = 0; i < again_cbs_.size(); ++i) {
        again_cbs_[i](vm, simr().now());
      }
      return;
    }
    // Probe unanswered: the VM is down, which is the failure detector's
    // problem, not the blacklist's. Re-probe after another probation — the
    // chain ends because a VM that stays down is declared dead well inside
    // one probation period, and the kBlacklisted check above stops us.
    schedule_probe(vm);
  });
}

// ---- re-replication ---------------------------------------------------------

std::vector<hdfs::DfsBlock>* MembershipService::find_table(int job_id) {
  for (auto& [id, table] : tables_) {
    if (id == job_id) return table;
  }
  return nullptr;
}

void MembershipService::register_job_blocks(int job_id,
                                            std::vector<hdfs::DfsBlock>* blocks) {
  assert(find_table(job_id) == nullptr && "job block table registered twice");
  tables_.emplace_back(job_id, blocks);
}

void MembershipService::unregister_job_blocks(int job_id) {
  for (auto it = tables_.begin(); it != tables_.end(); ++it) {
    if (it->first == job_id) {
      tables_.erase(it);
      break;
    }
  }
  // Queued repairs for the retired job are moot — its files are gone. Count
  // them so the auditor's lost == repaired + abandoned ledger still closes.
  std::vector<RepairItem> keep;
  keep.reserve(repair_queue_.size());
  for (const RepairItem& item : repair_queue_) {
    if (item.job_id == job_id) {
      abandon_repair(item, /*job_gone=*/true);
    } else {
      keep.push_back(item);
    }
  }
  repair_queue_ = std::move(keep);
}

void MembershipService::enqueue_repairs(int dead_vm) {
  // NameNode scan: every registered block with a replica on the dead VM is
  // under-replicated. Registration order, then block order — deterministic.
  for (const auto& [job_id, table] : tables_) {
    for (std::size_t b = 0; b < table->size(); ++b) {
      const hdfs::DfsBlock& blk = (*table)[b];
      bool hit = false;
      for (const auto& r : blk.replicas) {
        if (r.vm == dead_vm) hit = true;
      }
      if (!hit) continue;
      if (auto* ck = check::auditor()) {
        ck->on_replica_lost(job_id, blk.id, dead_vm, simr().now().ns());
      }
      repair_queue_.push_back(
          {job_id, static_cast<int>(b), dead_vm, /*attempts=*/0});
    }
  }
}

void MembershipService::pump_repairs() {
  while (active_repairs_ < cfg_.repair_streams && !repair_queue_.empty()) {
    RepairItem item = repair_queue_.front();
    repair_queue_.erase(repair_queue_.begin());
    run_repair(item);
  }
}

void MembershipService::abandon_repair(const RepairItem& item, bool job_gone) {
  (job_gone ? counters_.blocks_dropped : counters_.blocks_lost) += 1;
  if (auto* ck = check::auditor()) {
    ck->on_replica_abandoned(item.job_id, item.block_index, simr().now().ns());
  }
}

void MembershipService::run_repair(RepairItem item) {
  std::vector<hdfs::DfsBlock>* table = find_table(item.job_id);
  if (table == nullptr) {
    abandon_repair(item, /*job_gone=*/true);
    return;
  }
  hdfs::DfsBlock& blk = (*table)[static_cast<std::size_t>(item.block_index)];
  // Source: a live, not-declared-dead replica holder other than the corpse.
  const hdfs::BlockReplica* src = nullptr;
  for (const auto& r : blk.replicas) {
    if (r.vm != item.dead_vm && env_.vm_alive(r.vm) && !declared_dead(r.vm)) {
      src = &r;
      break;
    }
  }
  if (src == nullptr) {
    abandon_repair(item, /*job_gone=*/false);  // data genuinely unreachable
    return;
  }
  const int target = env_.dfs->pick_remote_replica_vm(
      src->vm, [this](int v) { return env_.vm_alive(v) && !declared_dead(v); });
  if (target < 0 || target == item.dead_vm) {
    abandon_repair(item, /*job_gone=*/false);  // nowhere to put the copy
    return;
  }

  ++active_repairs_;
  const std::int64_t bytes = blk.bytes;
  const int src_vm = src->vm;
  const disk::Lba src_vlba = src->vlba;
  const mapred::VmHandle& sh = env_.vms[static_cast<std::size_t>(src_vm)];
  const mapred::VmHandle& th = env_.vms[static_cast<std::size_t>(target)];

  auto failed = [this, item]() mutable {
    --active_repairs_;
    RepairItem retry = item;
    if (++retry.attempts >= cfg_.repair_attempts) {
      abandon_repair(retry, /*job_gone=*/false);
    } else {
      repair_queue_.push_back(retry);
    }
    pump_repairs();
  };

  // DataNode-side read of the live replica, the network hop, then the write
  // on the target — all through the per-VM server contexts, so repair I/O
  // contends with foreground shuffle and HDFS traffic in both elevators.
  virt::IoStreamParams rp;
  rp.unit_sectors = cfg_.io_unit_bytes / disk::kSectorBytes;
  rp.window = 2;
  virt::IoStream::run(
      *sh.vm, mapred::ctx::server(src_vm), src_vlba, bytes, iosched::Dir::kRead,
      /*sync=*/true, rp,
      [this, item, bytes, target, failed, &sh, &th](sim::Time,
                                                    iosched::IoStatus st) mutable {
        if (st != iosched::IoStatus::kOk) {
          failed();
          return;
        }
        env_.net->start_flow(
            sh.host, th.host, bytes,
            [this, item, bytes, target, failed, &th](sim::Time) mutable {
              const disk::Lba at = th.vm->alloc(
                  virt::DiskZone::kData, bytes / disk::kSectorBytes + 1);
              virt::IoStreamParams wp;
              wp.unit_sectors = cfg_.io_unit_bytes / disk::kSectorBytes;
              wp.window = 4;
              virt::IoStream::run(
                  *th.vm, mapred::ctx::server(target), at, bytes,
                  iosched::Dir::kWrite, /*sync=*/false, wp,
                  [this, item, bytes, target, at, failed](
                      sim::Time, iosched::IoStatus wst) mutable {
                    if (wst != iosched::IoStatus::kOk) {
                      failed();
                      return;
                    }
                    --active_repairs_;
                    finish_repair(item, target, at, bytes);
                    pump_repairs();
                  });
            });
      });
}

void MembershipService::finish_repair(const RepairItem& item, int target_vm,
                                      disk::Lba at, std::int64_t bytes) {
  std::vector<hdfs::DfsBlock>* table = find_table(item.job_id);
  if (table == nullptr) {
    // The job retired while the copy was in flight; the bytes moved but the
    // namespace entry is gone.
    abandon_repair(item, /*job_gone=*/true);
    return;
  }
  hdfs::DfsBlock& blk = (*table)[static_cast<std::size_t>(item.block_index)];
  for (auto& r : blk.replicas) {
    if (r.vm == item.dead_vm) {
      r.vm = target_vm;
      r.vlba = at;
      break;
    }
  }
  ++counters_.blocks_repaired;
  counters_.repair_bytes += static_cast<std::uint64_t>(bytes);
  emit_instant("blk_repair", target_vm, bytes);
  if (auto* ck = check::auditor()) {
    ck->on_replica_repaired(item.job_id, blk.id, item.dead_vm, target_vm,
                            simr().now().ns());
  }
}

}  // namespace iosim::membership
