// iosim: chained MapReduce jobs on one cluster (the paper's Pig scenario,
// Section IV-C: "a chain of MapReduce jobs (e.g., those specified in Pig)"
// is what makes the assignment space S^P large and the heuristic
// necessary).
//
// Jobs run strictly back to back — job k+1 starts when job k commits —
// sharing the cluster's disks, caches (head positions), and elevator
// state, so a pair switched for the tail of one job is still in force at
// the head of the next.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/runner.hpp"

namespace iosim::cluster {

struct ChainResult {
  double seconds = 0.0;                  // start of job 0 -> end of last job
  std::vector<mapred::JobStats> jobs;    // per-job stats, in order
};

/// Hook invoked once per job right before it starts: (cluster, job,
/// job_index). Used by the chain-aware adaptive controller to subscribe to
/// each job's phase events.
using ChainSetupHook = std::function<void(Cluster&, mapred::Job&, int)>;

/// Run `confs` back to back on one cluster built from `cfg`.
ChainResult run_job_chain(const ClusterConfig& cfg,
                          const std::vector<mapred::JobConf>& confs,
                          const ChainSetupHook& setup = {});

/// Averaged over `n_seeds` (paper methodology).
ChainResult run_job_chain_avg(const ClusterConfig& cfg,
                              const std::vector<mapred::JobConf>& confs,
                              int n_seeds, const ChainSetupHook& setup = {});

}  // namespace iosim::cluster
