#include "cluster/cluster.hpp"

namespace iosim::cluster {

Cluster::Cluster(const ClusterConfig& cfg) : cfg_(cfg) {
  sim::Rng seeder(cfg.seed);

  ClusterConfig c = cfg_;
  // Install the initial pair without a runtime switch.
  c.host.dom0_blk.scheduler = cfg.pair.vmm;
  c.host.domu.guest_blk.scheduler = cfg.pair.guest;

  // A fault-free cluster constructs no injector at all: every consumer keeps
  // its nullptr fast path and the event stream is bit-identical to builds
  // that predate fault injection. The injector draws its seed from the same
  // seeder position whether or not the plan is empty would NOT hold here —
  // so the draw only happens when a plan exists; fault-free runs see the
  // exact pre-fault seed sequence.
  if (!cfg.faults.empty()) {
    faults_ = std::make_unique<fault::FaultInjector>(
        simr_, cfg.faults, seeder.next_u64(), cfg.n_hosts * cfg.vms_per_host,
        cfg.vms_per_host);
  }

  for (int h = 0; h < cfg.n_hosts; ++h) {
    virt::HostConfig hc = c.host;
    if (static_cast<std::size_t>(h) < cfg.host_disk_speed.size()) {
      const double f = cfg.host_disk_speed[static_cast<std::size_t>(h)];
      hc.disk.outer_mb_s *= f;
      hc.disk.inner_mb_s *= f;
    }
    hosts_.push_back(std::make_unique<virt::PhysicalHost>(
        simr_, hc, h,
        /*vm_ctx_base=*/static_cast<std::uint64_t>(h) * 100,
        /*seed=*/seeder.next_u64(), faults_.get()));
    for (int v = 0; v < cfg.vms_per_host; ++v) hosts_.back()->add_vm();
  }

  net_ = std::make_unique<net::FlowNetwork>(simr_, cfg.n_hosts, cfg.net);
  dfs_ = std::make_unique<hdfs::Hdfs>(n_vms(), cfg.vms_per_host, seeder.next_u64());

  env_.simr = &simr_;
  env_.net = net_.get();
  env_.dfs = dfs_.get();
  env_.faults = faults_.get();
  for (int h = 0; h < cfg.n_hosts; ++h) {
    for (int v = 0; v < cfg.vms_per_host; ++v) {
      cpus_.push_back(std::make_unique<mapred::VCpu>(simr_));
      mapred::VmHandle vh;
      vh.simr = &simr_;
      vh.vm = &hosts_[static_cast<std::size_t>(h)]->vm(static_cast<std::size_t>(v));
      vh.cpu = cpus_.back().get();
      vh.host = h;
      vh.global_id = h * cfg.vms_per_host + v;
      env_.vms.push_back(vh);
    }
  }

  // Membership rides the fault injector's vm_down/vm_up edges, so it exists
  // exactly when the injector does. Fault-free clusters build neither and
  // keep every consumer's nullptr fast path (and the pinned digests).
  if (faults_ != nullptr) {
    members_ = std::make_unique<membership::MembershipService>(env_);
    env_.members = members_.get();
  }
}

bool Cluster::try_switch_pair(SchedulerPair p) {
  if (faults_ == nullptr) {
    switch_pair(p);
    return true;
  }
  const auto verdict = faults_->switch_command();
  if (!verdict.ok) return false;
  if (verdict.delay > sim::Time::zero()) {
    // The command was accepted but the actuation path (e.g. sysfs write
    // fanned out over a slow management network) lags; the pair lands later.
    simr_.after(verdict.delay, [this, p] { switch_pair(p); });
    return true;
  }
  switch_pair(p);
  return true;
}

}  // namespace iosim::cluster
