#include "cluster/chain_runner.hpp"

#include <cassert>

#include "sim/random.hpp"

namespace iosim::cluster {

namespace {

/// Keeps the chain's jobs alive and starts the next one as each finishes.
struct ChainContext {
  Cluster* cl = nullptr;
  std::vector<mapred::JobConf> confs;
  ChainSetupHook setup;
  std::uint64_t seed = 0;
  std::vector<std::unique_ptr<mapred::Job>> jobs;
  ChainResult result;

  void start_next(const std::shared_ptr<ChainContext>& self) {
    const auto idx = static_cast<int>(jobs.size());
    if (idx == static_cast<int>(confs.size())) return;  // chain complete
    jobs.push_back(std::make_unique<mapred::Job>(
        cl->env(), confs[static_cast<std::size_t>(idx)],
        seed ^ (0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(idx))));
    mapred::Job* job = jobs.back().get();
    if (setup) setup(*cl, *job, idx);
    // Chain onto any on_done the setup hook installed.
    auto prev = std::move(job->on_done);
    job->on_done = [self, job, prev = std::move(prev)](sim::Time t) {
      if (prev) prev(t);
      self->result.jobs.push_back(job->stats());
      self->start_next(self);
    };
    job->run();
  }
};

}  // namespace

ChainResult run_job_chain(const ClusterConfig& cfg,
                          const std::vector<mapred::JobConf>& confs,
                          const ChainSetupHook& setup) {
  assert(!confs.empty());
  Cluster cl(cfg);
  auto ctx = std::make_shared<ChainContext>();
  ctx->cl = &cl;
  ctx->confs = confs;
  ctx->setup = setup;
  ctx->seed = cfg.seed;
  ctx->start_next(ctx);
  cl.simr().run();
  assert(ctx->result.jobs.size() == confs.size() && "chain did not complete");
  ctx->result.seconds = cl.simr().now().sec();
  return ctx->result;
}

ChainResult run_job_chain_avg(const ClusterConfig& cfg,
                              const std::vector<mapred::JobConf>& confs,
                              int n_seeds, const ChainSetupHook& setup) {
  assert(n_seeds > 0);
  ChainResult acc;
  for (int i = 0; i < n_seeds; ++i) {
    ClusterConfig c = cfg;
    c.seed = sim::derive_run_seed(cfg.seed, static_cast<std::uint64_t>(i));
    ChainResult r = run_job_chain(c, confs, setup);
    if (i == 0) acc.jobs = r.jobs;
    acc.seconds += r.seconds;
  }
  acc.seconds /= n_seeds;
  return acc;
}

}  // namespace iosim::cluster
