#include "cluster/runner.hpp"

#include <cassert>
#include <utility>

#include "check/check.hpp"
#include "obs/attribution.hpp"
#include "sim/random.hpp"

namespace iosim::cluster {

RunResult run_job(const ClusterConfig& cfg, const mapred::JobConf& job_conf,
                  const SetupHook& setup) {
  Cluster cl(cfg);
  cl.simr().set_budget(cfg.budget);
  mapred::Job job(cl.env(), job_conf, cfg.seed ^ 0x9E3779B97F4A7C15ULL);
  if (setup) setup(cl, job);
  if (auto* at = obs::attribution()) {
    // Key attribution records by MapReduce phase: 0 = map, 1 = shuffle,
    // 2 = reduce. Chain onto (not over) any milestone hooks `setup` set.
    at->set_phase(0);
    auto prev_maps = std::move(job.on_maps_done);
    job.on_maps_done = [at, prev = std::move(prev_maps)](sim::Time t) {
      if (prev) prev(t);
      at->set_phase(1);
    };
    auto prev_shuffle = std::move(job.on_shuffle_done);
    job.on_shuffle_done = [at, prev = std::move(prev_shuffle)](sim::Time t) {
      if (prev) prev(t);
      at->set_phase(2);
    };
  }
  job.run();
  cl.simr().run();

  if (auto* ck = check::auditor()) {
    // Drain-only invariants (conservation, emptiness) are meaningless after
    // a budget stop — the run was cut mid-flight by design.
    const bool drained = cl.simr().stop_reason() == sim::StopReason::kDrained;
    check::verify_simulator(*ck, cl.simr(), drained);
    if (drained) ck->verify_end_of_run(cl.simr().now().ns());
  }

  RunResult r;
  r.stop = cl.simr().stop_reason();
  r.stats = job.stats();
  r.failed = job.failed();
  r.failure = job.failure();
  if (!job.done() && !r.failed) {
    // The event loop stopped with the job unfinished: either the budget /
    // watchdog tripped, or the queue genuinely drained mid-job (a
    // simulation deadlock, which stays an assertion failure in debug
    // builds).
    assert(r.stop != sim::StopReason::kDrained &&
           "job neither completed nor aborted — simulation deadlock");
    r.failed = true;
    r.failure = std::string("simulation stopped early (") + sim::to_string(r.stop) +
                ") after " + std::to_string(cl.simr().executed()) + " events at t=" +
                cl.simr().now().to_string();
  }
  r.seconds = r.stats.elapsed().sec();
  r.ph1_seconds = (r.stats.t_maps_done - r.stats.t_start).sec();
  r.ph2_seconds = (r.stats.t_shuffle_done - r.stats.t_maps_done).sec();
  r.ph3_seconds = (r.stats.t_done - r.stats.t_shuffle_done).sec();
  r.ph23_seconds = (r.stats.t_done - r.stats.t_maps_done).sec();
  return r;
}

RunResult run_job_avg(const ClusterConfig& cfg, const mapred::JobConf& job_conf,
                      int n_seeds, const SetupHook& setup) {
  assert(n_seeds > 0);
  RunResult acc;
  for (int i = 0; i < n_seeds; ++i) {
    ClusterConfig c = cfg;
    c.seed = sim::derive_run_seed(cfg.seed, static_cast<std::uint64_t>(i));
    RunResult r = run_job(c, job_conf, setup);
    if (i == 0) acc.stats = r.stats;  // keep one representative stats block
    if (r.failed && !acc.failed) {
      acc.failed = true;
      acc.failure = r.failure;
      acc.stop = r.stop;
    }
    acc.seconds += r.seconds;
    acc.ph1_seconds += r.ph1_seconds;
    acc.ph2_seconds += r.ph2_seconds;
    acc.ph3_seconds += r.ph3_seconds;
    acc.ph23_seconds += r.ph23_seconds;
  }
  const double k = 1.0 / n_seeds;
  acc.seconds *= k;
  acc.ph1_seconds *= k;
  acc.ph2_seconds *= k;
  acc.ph3_seconds *= k;
  acc.ph23_seconds *= k;
  return acc;
}

}  // namespace iosim::cluster
