// iosim: canonical experiment runner — build a cluster, run one MapReduce
// job on it, return the stats. Every bench and the meta-scheduler's search
// go through these helpers so results are comparable.
#pragma once

#include <functional>
#include <string>

#include "cluster/cluster.hpp"
#include "mapred/job.hpp"

namespace iosim::cluster {

struct RunResult {
  mapred::JobStats stats;
  double seconds = 0.0;  // stats.elapsed(), convenience

  /// Set when the job aborted (fault injection exhausted a task's attempt
  /// budget or killed every replica of a block) or the simulator's budget
  /// stopped the event loop before the job finished; `failure` carries the
  /// diagnostic and `seconds` measures start -> abort.
  bool failed = false;
  std::string failure;

  /// Why the event loop returned (sim::StopReason::kDrained for a normal
  /// completion). Anything else means the ClusterConfig budget tripped —
  /// kAborted marks an external (wall-clock watchdog) abort, which callers
  /// may treat as retryable where budget trips are deterministic.
  sim::StopReason stop = sim::StopReason::kDrained;

  /// Phase durations with the paper's boundaries.
  double ph1_seconds = 0.0;  // start -> all maps done
  double ph2_seconds = 0.0;  // maps done -> shuffle done
  double ph3_seconds = 0.0;  // shuffle done -> job done
  /// Two-phase view (the paper merges Ph2 into Ph3 at >= ~2 waves).
  double ph23_seconds = 0.0;
};

/// Hook invoked after the Job is constructed but before it runs — used by
/// the adaptive controller to subscribe to phase events, and by probes.
using SetupHook = std::function<void(Cluster&, mapred::Job&)>;

/// Run `job_conf` on a cluster built from `cfg`. The cluster boots with
/// `cfg.pair`; `setup` may attach observers / controllers.
RunResult run_job(const ClusterConfig& cfg, const mapred::JobConf& job_conf,
                  const SetupHook& setup = {});

/// Average of `n_seeds` runs (the paper reports the average of three
/// consecutive runs). Run i uses sim::derive_run_seed(cfg.seed, i), so the
/// repeat streams are pairwise independent and averages for adjacent base
/// seeds share no runs.
RunResult run_job_avg(const ClusterConfig& cfg, const mapred::JobConf& job_conf,
                      int n_seeds, const SetupHook& setup = {});

}  // namespace iosim::cluster
