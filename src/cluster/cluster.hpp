// iosim: cluster assembly — one call builds the paper's testbed (hosts,
// VMs, vCPUs, network, HDFS) around a fresh simulator.
#pragma once

#include <memory>
#include <vector>

#include "fault/fault_injector.hpp"
#include "iosched/pair.hpp"
#include "mapred/cluster_env.hpp"
#include "membership/membership.hpp"
#include "sim/simulator.hpp"
#include "net/flow_network.hpp"
#include "virt/physical_host.hpp"

namespace iosim::cluster {

using iosched::SchedulerPair;

struct ClusterConfig {
  int n_hosts = 4;
  int vms_per_host = 4;
  virt::HostConfig host;
  net::NetParams net;
  /// Initial (VMM, guest) elevator pair, installed at construction (no
  /// switch cost — the machine boots with it).
  SchedulerPair pair = iosched::kDefaultPair;
  /// Per-host disk speed factors (scales the media transfer rate); empty =
  /// homogeneous. Shorter than n_hosts: remaining hosts get 1.0. Used to
  /// model heterogeneous nodes — the scenario the paper names as breaking
  /// the coarse (cluster-synchronized) meta-scheduler.
  std::vector<double> host_disk_speed;
  /// Faults to inject during the run; empty = fault-free (no injector is
  /// even constructed, so behavior is bit-identical to pre-fault builds).
  fault::FaultPlan faults;
  /// Event-loop progress sentinel installed on the cluster's simulator
  /// (run_job turns a tripped budget into a failed RunResult instead of
  /// spinning forever on a livelocked simulation). Default: unlimited.
  sim::SimBudget budget;
  std::uint64_t seed = 1;
};

/// Owns every component of one simulated testbed. Build, wire a workload,
/// then drive `simr().run()`.
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulator& simr() { return simr_; }
  mapred::ClusterEnv& env() { return env_; }
  const ClusterConfig& config() const { return cfg_; }

  int n_vms() const { return cfg_.n_hosts * cfg_.vms_per_host; }
  std::size_t n_hosts() const { return hosts_.size(); }
  virt::PhysicalHost& host(std::size_t i) { return *hosts_[i]; }

  /// Switch the pair on every host and guest (pays the quiesce freeze on
  /// every block layer — this is the meta-scheduler's runtime action).
  /// Unconditional: bypasses fault injection. Controllers should prefer
  /// try_switch_pair.
  void switch_pair(SchedulerPair p) {
    for (auto& h : hosts_) h->set_pair(p);
  }

  /// Issue the switch command through the fault layer. Returns false when
  /// the command fails (the old pair stays installed on every host — the
  /// caller owns retry policy). A delayed command returns true and lands
  /// after the injected latency. Without an injector this is switch_pair.
  bool try_switch_pair(SchedulerPair p);

  SchedulerPair pair() const { return hosts_.front()->pair(); }

  /// The fault injector, or null for a fault-free cluster.
  fault::FaultInjector* faults() { return faults_.get(); }

  /// The membership service (failure detector / blacklist / re-replication),
  /// or null for a fault-free cluster — it exists exactly when faults() does.
  membership::MembershipService* membership() { return members_.get(); }

 private:
  ClusterConfig cfg_;
  sim::Simulator simr_;
  std::unique_ptr<fault::FaultInjector> faults_;
  std::unique_ptr<membership::MembershipService> members_;
  std::vector<std::unique_ptr<virt::PhysicalHost>> hosts_;
  std::vector<std::unique_ptr<mapred::VCpu>> cpus_;
  std::unique_ptr<net::FlowNetwork> net_;
  std::unique_ptr<hdfs::Hdfs> dfs_;
  mapred::ClusterEnv env_;
};

}  // namespace iosim::cluster
