// iosim: crash-safe artifact writing.
//
// Every result file the harness produces (BENCH_*.json, bench --json
// reports, journals) must never be observable half-written: a SIGKILL or a
// disk-full mid-write would otherwise leave a truncated file that parses as
// a complete-but-wrong result. write_file_atomic gives the standard
// tmp-in-same-directory + fsync + rename discipline — readers see either
// the old file or the whole new one, and every failure mode (open, write,
// fsync, rename) surfaces as false + errno diagnostic instead of silence.
//
// Header-only on purpose: the bench binaries use it without linking
// iosim_exp.
#pragma once

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace iosim::exp {

/// FNV-1a 64-bit over raw bytes. Used to fingerprint canonical spec text in
/// journal headers (collision resistance far beyond what "did you resume
/// with the same spec?" needs, and no dependency on a hash library).
inline std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

namespace detail {

inline bool fail_errno(std::string* error, const std::string& what,
                       const std::string& path) {
  if (error) *error = what + " " + path + ": " + std::strerror(errno);
  return false;
}

}  // namespace detail

/// Write `content` to `path` atomically: write + fsync a `<path>.tmp.<pid>`
/// sibling, then rename it over the target. Returns false (with an errno
/// diagnostic in `error`) on any failure; the target is never left
/// truncated — at worst a stale tmp file remains, which the next write
/// replaces.
inline bool write_file_atomic(const std::string& path, std::string_view content,
                              std::string* error = nullptr) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return detail::fail_errno(error, "cannot create", tmp);
  const char* p = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ::ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      detail::fail_errno(error, "write failed for", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    detail::fail_errno(error, "fsync failed for", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    detail::fail_errno(error, "close failed for", tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    detail::fail_errno(error, "rename failed for", path);
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace iosim::exp
