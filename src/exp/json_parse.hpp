// iosim: minimal JSON reader — the inverse of JsonWriter.
//
// Exists so the harness can read back its own artifacts (run-journal JSONL
// records, BENCH files in tests). It parses exactly the JSON subset
// JsonWriter emits — objects, arrays, strings with the writer's escapes,
// numbers, booleans, null — into an ordered DOM. Two properties matter for
// resume byte-identity:
//
//  * object keys keep file order (metrics re-aggregate in emission order);
//  * every number keeps its raw token next to the strtod value, so 64-bit
//    seeds (which do not fit a double) round-trip losslessly and doubles
//    re-parse to the exact bits format_double printed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace iosim::exp {

struct JsonValue {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  /// kString: the decoded string. kNumber: the raw token (e.g.
  /// "18446744073709551615"), for lossless u64 re-parsing.
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;  // insertion order

  /// First value under `key`, or null when absent (objects only).
  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Number token re-parsed as u64; nullopt when not an unsigned integer
  /// token (sign, fraction, exponent, overflow).
  std::optional<std::uint64_t> as_u64() const;
};

/// Parse one complete JSON document. Trailing garbage after the document is
/// an error. nullopt + one-line diagnostic (byte offset) on malformed input.
std::optional<JsonValue> json_parse(std::string_view text, std::string* error = nullptr);

}  // namespace iosim::exp
