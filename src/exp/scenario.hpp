// iosim: declarative scenario sweeps for the experiment engine.
//
// A ScenarioSpec declares the axes of an experiment — scheduler pair,
// workload, cluster shape, data size, fault plan — plus a base seed and a
// repeat count. Its cross product expands into a deterministic run matrix:
// point index = nested-loop order over the axes (workload outermost, fault
// innermost), run index = point index * repeats + repeat, and every run's
// seed is sim::derive_run_seed(base_seed, run_index), so streams are
// pairwise independent and results are byte-stable regardless of execution
// order or worker count. (seed_mode=repeat switches the derivation to the
// repeat index alone — shared seeds across points, for paired A/B axes.)
//
// Spec grammar (same style as fault_plan: flat text, all-or-nothing parse,
// one-line diagnostics). One `key=value` per line; `#` starts a comment;
// blank lines are skipped; a duplicate key is an error:
//
//   name=fig7a            identifier used for BENCH_<name>.json
//   mode=run|adapt        run: one job per point with the fixed pair
//                         adapt: full meta-scheduler pipeline per point
//   base_seed=N           root of the per-run seed derivation (default 1)
//   repeats=N             seeds per scenario point (default 3)
//   seed_mode=run|repeat  run (default): every run in the matrix gets its
//                         own seed (pairwise-independent samples). repeat:
//                         the seed derives from the repeat index only, so
//                         every point sees the *same* repeats seeds —
//                         paired comparisons across an axis (e.g. the
//                         meta= policies) measure the policy, not the
//                         arrival-process draw
//   pair=cc,ad,...        two-letter pair codes (VMM then guest), or all16
//   workload=sort,...     sort | wordcount|wc | wc-nocombiner|wcnc
//   hosts=3,4             physical hosts
//   vms=2,4,6             VMs per host
//   mb=256,512            input MB per data node
//   fault=none|SPEC       fault-plan alternatives separated by `|` (the
//                         plan grammar itself uses `,` and `;`); `none` is
//                         the fault-free cluster
//   stream=none|SPEC      multi-job stream alternatives separated by `|`
//                         (the stream grammar uses `,` and `;`); `none` is
//                         the classic one-job-per-run point. A stream point
//                         ignores the workload/mb axes (its classes carry
//                         their own) and requires mode=run
//   stream_policy=fifo,.. slot-policy alternatives (fifo|fair|capacity)
//                         applied on top of each stream's own policy; omit
//                         to keep what the stream spec says
//   meta=none|BODY        meta-scheduling policy alternatives separated by
//                         `|`; each BODY is a stream-grammar meta segment
//                         without the leading "meta," (e.g.
//                         `policy=ucb,explore=2`), appended to every stream
//                         alternative. `none` keeps the stream's own meta
//                         segment (if any). Requires a stream= axis
//   timeout=SECONDS       per-run wall-clock watchdog (0 = off, default).
//                         Wall-clock only: it never changes simulated
//                         results, so it is excluded from the resume
//                         fingerprint and may differ between the original
//                         sweep and its --resume.
//   max_events=N          event-loop budget per simulation (0 = off); a
//                         livelocked run fails deterministically once it
//                         executes N events
//   max_sim_seconds=S     simulated-time budget per simulation (0 = off)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_plan.hpp"
#include "iosched/pair.hpp"
#include "tenancy/stream_spec.hpp"

namespace iosim::exp {

enum class RunMode : std::uint8_t {
  kRun = 0,    // one plain job execution per run
  kAdapt = 1,  // full meta-scheduler pipeline (profile + search + final run)
};

const char* to_string(RunMode m);

/// One cell of the expanded cross product.
struct ScenarioPoint {
  RunMode mode = RunMode::kRun;
  iosched::SchedulerPair pair;  // kRun: the fixed pair; kAdapt: the boot/default pair
  std::string workload = "sort";
  int hosts = 4;
  int vms = 4;
  std::int64_t mb = 512;
  fault::FaultPlan faults;
  std::string fault_text;  // original spec text ("" = fault-free)
  /// Multi-job stream for this point; meaningful only when stream_text is
  /// non-empty (stream_policy, when set, is already folded into it).
  tenancy::StreamSpec stream;
  std::string stream_text;    // original spec text ("" = single-job point)
  std::string stream_policy;  // policy override ("" = stream's own)
  /// Meta-axis segment body folded into `stream.meta` ("" = the stream's
  /// own meta segment, possibly none).
  std::string meta_text;
  /// Event-loop budgets copied from the spec (0 = unlimited); the runner
  /// installs them as the simulation's SimBudget.
  std::uint64_t max_events = 0;
  double max_sim_seconds = 0.0;

  /// Stable human id of the point: "sort h4 v4 512MB (c,c)" plus the fault
  /// text when present. Unique within one spec's expansion.
  std::string label() const;
};

struct ScenarioSpec {
  std::string name = "sweep";
  RunMode mode = RunMode::kRun;
  std::uint64_t base_seed = 1;
  int repeats = 3;
  /// seed_mode=repeat: derive each run's seed from the repeat index alone,
  /// so all points share one seed set and cross-point comparisons are
  /// paired (tools/policy_compare relies on this in fig7_online).
  bool paired_seeds = false;
  std::vector<iosched::SchedulerPair> pairs{iosched::kDefaultPair};
  std::vector<std::string> workloads{"sort"};
  std::vector<int> hosts{4};
  std::vector<int> vms{4};
  std::vector<std::int64_t> mb{512};
  /// Parsed fault alternatives, paired with their original text. One entry
  /// with an empty plan = the fault-free default.
  std::vector<std::pair<fault::FaultPlan, std::string>> faults{{{}, ""}};
  /// Stream alternatives, same shape as faults: one empty-text entry = the
  /// classic single-job sweep.
  std::vector<std::pair<tenancy::StreamSpec, std::string>> streams{{{}, ""}};
  /// Slot-policy overrides crossed against the stream axis ("" = keep the
  /// stream spec's policy). Only meaningful for stream points.
  std::vector<std::string> stream_policies{""};
  /// Meta-scheduling policy alternatives crossed against the stream axis:
  /// meta-segment bodies ("" = keep the stream spec's meta segment).
  std::vector<std::string> metas{""};
  /// Per-run wall-clock watchdog in seconds (0 = disabled). Wall-clock
  /// only — never affects simulated results.
  double timeout_seconds = 0.0;
  /// Per-simulation progress sentinel (0 = unlimited); these DO affect
  /// results (a tripped budget fails the run deterministically), so they
  /// participate in the resume fingerprint.
  std::uint64_t max_events = 0;
  double max_sim_seconds = 0.0;

  /// Parse a whole spec file. All-or-nothing: any malformed line fails the
  /// parse and `error` (when non-null) gets a one-line diagnostic with the
  /// 1-based line number.
  static std::optional<ScenarioSpec> parse(std::string_view text,
                                           std::string* error = nullptr);

  /// Apply one `key=value` assignment (the parser's line handler; also used
  /// for `--set` command-line overrides, where last-wins replaces the
  /// duplicate-key check). False + diagnostic on an unknown key / bad value.
  bool apply(std::string_view key, std::string_view value, std::string* error = nullptr);

  /// The cross product, in deterministic nested-loop order: workload,
  /// hosts, vms, mb, pair, fault, stream, stream_policy, meta.
  std::vector<ScenarioPoint> expand() const;

  std::size_t n_points() const {
    return workloads.size() * hosts.size() * vms.size() * mb.size() * pairs.size() *
           faults.size() * streams.size() * stream_policies.size() * metas.size();
  }
  std::size_t n_runs() const { return n_points() * static_cast<std::size_t>(repeats); }

  /// Matrix-size sanity check: the point cross product (and the run count
  /// with repeats) must stay within kMaxPoints/kMaxRuns. Each axis value is
  /// individually bounded, but six unbounded list *lengths* multiply —
  /// without this check a hostile or typo'd spec can overflow size_t in
  /// n_points() or OOM-abort in expand()'s reserve. Called by parse();
  /// callers that mutate axes afterwards (--set) must re-validate.
  bool validate(std::string* error = nullptr) const;

  static constexpr std::size_t kMaxPoints = 1'000'000;
  static constexpr std::size_t kMaxRuns = 10'000'000;

  /// Canonical spec text (round-trips through parse).
  std::string to_string() const;

  /// FNV-1a hash of the canonical *result-determining* spec text — the
  /// identity a run journal records. Everything that could change simulated
  /// outputs participates (name, mode, seeds, repeats, axes, fault plans,
  /// event/sim-time budgets); wall-clock-only knobs (timeout) do not, so a
  /// resume may raise the watchdog without invalidating the journal.
  std::uint64_t fingerprint() const;
};

/// One scheduled simulation of the run matrix.
struct RunTask {
  std::size_t run_index = 0;    // global, dense: point_index * repeats + repeat
  std::size_t point_index = 0;  // into the expand() vector
  int repeat = 0;
  std::uint64_t seed = 0;  // derive_run_seed(base_seed, run_index)
};

/// The full run matrix for a spec's expansion, in run_index order.
std::vector<RunTask> build_run_matrix(const ScenarioSpec& spec);

}  // namespace iosim::exp
