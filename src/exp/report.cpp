#include "exp/report.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string_view>

#include "exp/json_parse.hpp"

namespace iosim::exp {

namespace {

// ---------------------------------------------------------------------------
// Formatting — integer arithmetic only, so output is bit-stable.
// ---------------------------------------------------------------------------

void append_escaped_html(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
}

std::string esc(std::string_view s) {
  std::string out;
  append_escaped_html(out, s);
  return out;
}

/// ns -> human unit with one fixed decimal, integer math throughout.
std::string fmt_ns(std::int64_t ns) {
  char buf[64];
  if (ns < 0) ns = 0;
  if (ns < 10'000) {
    std::snprintf(buf, sizeof buf, "%" PRId64 " ns", ns);
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof buf, "%" PRId64 ".%01" PRId64 " µs", ns / 1000,
                  (ns % 1000) / 100);
  } else if (ns < 10'000'000'000LL) {
    std::snprintf(buf, sizeof buf, "%" PRId64 ".%01" PRId64 " ms", ns / 1'000'000,
                  (ns % 1'000'000) / 100'000);
  } else {
    std::snprintf(buf, sizeof buf, "%" PRId64 ".%01" PRId64 " s",
                  static_cast<std::int64_t>(ns / 1'000'000'000LL),
                  static_cast<std::int64_t>((ns % 1'000'000'000LL) / 100'000'000LL));
  }
  return buf;
}

std::int64_t num_i64(const JsonValue* v) {
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return 0;
  // Raw token first: 64-bit ns values round-trip exactly.
  errno = 0;
  char* end = nullptr;
  const long long r = std::strtoll(v->str.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && errno == 0) return r;
  return static_cast<std::int64_t>(v->num);
}

std::string num_raw(const JsonValue* v) {
  if (v == nullptr) return "-";
  if (v->kind == JsonValue::Kind::kNumber) return v->str;  // raw token
  if (v->kind == JsonValue::Kind::kString) return v->str;
  return "-";
}

// ---------------------------------------------------------------------------
// Trace digest model
// ---------------------------------------------------------------------------

/// Joined per-lane summary (the two pinned instants of one lane name).
struct LaneSummary {
  bool seen = false;
  std::int64_t count = 0, sum_ns = 0, max_ns = 0;
  std::int64_t p50 = 0, p95 = 0, p99 = 0;
};

inline constexpr int kLanes = 6;  // guest_queue, ring_wait, elv_wait, service, ret, total
constexpr const char* kLaneLabel[kLanes] = {"guest queue", "ring wait", "elv wait",
                                            "service",     "return",    "total"};
constexpr const char* kLaneEvent[kLanes] = {"obs guest_queue", "obs ring_wait",
                                            "obs elv_wait",    "obs service",
                                            "obs ret",         "obs total"};

struct KeySummary {
  std::string track;  // "obs/host0/vm1/read/sync/ph0"
  LaneSummary lanes[kLanes];
  bool win_seen = false;
  std::int64_t win_count = 0, win_p95 = 0, win_p99 = 0;
};

struct Stall {
  std::string track;
  std::int64_t ts_ns = 0, dur_ns = 0;
  std::int64_t lba = 0, writes_ahead = 0, reads_ahead = 0;
  bool wait_seen = false;
  std::int64_t elv_wait_ns = 0, service_ns = 0, total_ns = 0;
};

/// One multi-tenant job, joined from its tenancy-track milestone instants
/// (job_admit carries the input size; job_done/job_fail carry the sojourn).
struct StreamJobRow {
  std::int64_t job = 0, cls = 0, size_mb = 0;
  std::int64_t admit_ns = 0, end_ns = 0, sojourn_ms = 0;
  bool admitted = false;
  int state = 0;  // 0 = running at end of trace, 1 = done, 2 = failed
};

/// One failure-detector / self-healing event from the membership track.
struct MembershipRow {
  std::string name;  // tt_suspect, tt_dead, tt_rejoin, tt_blacklist,
                     // tt_probe_ok, blk_repair
  std::int64_t ts_ns = 0, vm = 0, arg = 0;
};

struct TraceModel {
  bool present = false;
  std::string dropped_events = "0";
  bool have_summary = false;
  std::int64_t completed = 0, in_flight = 0, stalls_total = 0;
  std::vector<KeySummary> keys;  // file order
  std::vector<Stall> stalls;     // file order
  std::vector<std::pair<std::int64_t, std::int64_t>> phases;  // (ts, index)
  std::vector<StreamJobRow> stream_jobs;  // admission order
  std::vector<MembershipRow> membership;  // time order (file order)
};

StreamJobRow& stream_job_of(TraceModel& m, std::int64_t job) {
  for (auto& r : m.stream_jobs) {
    if (r.job == job) return r;
  }
  m.stream_jobs.push_back(StreamJobRow{});
  m.stream_jobs.back().job = job;
  return m.stream_jobs.back();
}

int lane_of(std::string_view name) {
  for (int l = 0; l < kLanes; ++l) {
    if (name == kLaneEvent[l]) return l;
  }
  return -1;
}

KeySummary& key_of(TraceModel& m, const std::string& track) {
  for (auto& k : m.keys) {
    if (k.track == track) return k;
  }
  m.keys.push_back(KeySummary{});
  m.keys.back().track = track;
  return m.keys.back();
}

bool build_trace_model(const std::string& text, TraceModel* m, std::string* error) {
  std::string perr;
  const auto doc = json_parse(text, &perr);
  if (!doc) {
    if (error) *error = "trace JSON: " + perr;
    return false;
  }
  m->present = true;
  if (const auto* other = doc->find("otherData")) {
    if (const auto* d = other->find("dropped_events")) m->dropped_events = d->str;
  }
  const auto* events = doc->find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    if (error) *error = "trace JSON: no traceEvents array";
    return false;
  }

  // Pass 1: thread_name metadata (tid -> track name), kept ahead of the
  // events in the export but resolved defensively in a separate pass.
  std::map<std::int64_t, std::string> tracks;
  for (const auto& e : events->arr) {
    const auto* ph = e.find("ph");
    const auto* name = e.find("name");
    if (ph && ph->str == "M" && name && name->str == "thread_name") {
      if (const auto* args = e.find("args")) {
        if (const auto* n = args->find("name")) {
          tracks[num_i64(e.find("tid"))] = n->str;
        }
      }
    }
  }

  for (const auto& e : events->arr) {
    const auto* name = e.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) continue;
    const auto* args = e.find("args");
    auto track_name = [&]() -> std::string {
      const auto it = tracks.find(num_i64(e.find("tid")));
      return it != tracks.end() ? it->second : std::string{};
    };
    auto arg = [&](const char* k) { return args ? args->find(k) : nullptr; };
    // "ts" is µs with 3 decimals; recover integer ns from the raw token.
    auto ts_ns = [&]() -> std::int64_t {
      const auto* ts = e.find("ts");
      if (ts == nullptr) return 0;
      const std::string& tok = ts->str;
      const auto dot = tok.find('.');
      if (dot == std::string::npos) return num_i64(ts) * 1000;
      const std::int64_t us = std::strtoll(tok.substr(0, dot).c_str(), nullptr, 10);
      const std::int64_t frac = std::strtoll(tok.substr(dot + 1).c_str(), nullptr, 10);
      return us * 1000 + (us < 0 ? -frac : frac);
    };

    if (name->str == "obs summary") {
      m->have_summary = true;
      m->completed = num_i64(arg("count"));
      m->in_flight = num_i64(arg("in_flight"));
      m->stalls_total = num_i64(arg("stalls"));
    } else if (const int l = lane_of(name->str); l >= 0) {
      KeySummary& k = key_of(*m, track_name());
      LaneSummary& ls = k.lanes[l];
      ls.seen = true;
      if (arg("count") != nullptr) {  // first instant: count/sum/max
        ls.count = num_i64(arg("count"));
        ls.sum_ns = num_i64(arg("sum_ns"));
        ls.max_ns = num_i64(arg("max_ns"));
      } else {  // second instant: percentiles
        ls.p50 = num_i64(arg("p50_ns"));
        ls.p95 = num_i64(arg("p95_ns"));
        ls.p99 = num_i64(arg("p99_ns"));
      }
    } else if (name->str == "obs total win") {
      KeySummary& k = key_of(*m, track_name());
      k.win_seen = true;
      k.win_count = num_i64(arg("count"));
      k.win_p95 = num_i64(arg("p95_ns"));
      k.win_p99 = num_i64(arg("p99_ns"));
    } else if (name->str == "io stall") {
      Stall s;
      s.track = track_name();
      s.ts_ns = ts_ns();
      const auto* dur = e.find("dur");
      if (dur != nullptr) {
        // Same µs fixed-point trick as ts.
        const std::string& tok = dur->str;
        const auto dot = tok.find('.');
        s.dur_ns = dot == std::string::npos
                       ? num_i64(dur) * 1000
                       : std::strtoll(tok.substr(0, dot).c_str(), nullptr, 10) * 1000 +
                             std::strtoll(tok.substr(dot + 1).c_str(), nullptr, 10);
      }
      s.lba = num_i64(arg("lba"));
      s.writes_ahead = num_i64(arg("writes_ahead"));
      s.reads_ahead = num_i64(arg("reads_ahead"));
      m->stalls.push_back(std::move(s));
    } else if (name->str == "io stall wait") {
      // Pairs with the most recent unpaired "io stall" on the same track
      // (emitted back to back by the detector).
      const std::string t = track_name();
      for (auto it = m->stalls.rbegin(); it != m->stalls.rend(); ++it) {
        if (it->track == t && !it->wait_seen) {
          it->wait_seen = true;
          it->elv_wait_ns = num_i64(arg("elv_wait_ns"));
          it->service_ns = num_i64(arg("service_ns"));
          it->total_ns = num_i64(arg("total_ns"));
          break;
        }
      }
    } else if (name->str == "phase") {
      m->phases.emplace_back(ts_ns(), num_i64(arg("index")));
    } else if (name->str == "job_admit") {
      StreamJobRow& r = stream_job_of(*m, num_i64(arg("job")));
      r.admitted = true;
      r.admit_ns = ts_ns();
      r.cls = num_i64(arg("class"));
      r.size_mb = num_i64(arg("arg"));
    } else if (name->str == "job_done" || name->str == "job_fail") {
      StreamJobRow& r = stream_job_of(*m, num_i64(arg("job")));
      r.end_ns = ts_ns();
      r.sojourn_ms = num_i64(arg("arg"));
      r.state = name->str == "job_done" ? 1 : 2;
    } else if (name->str == "job_shed") {
      StreamJobRow& r = stream_job_of(*m, num_i64(arg("job")));
      r.end_ns = ts_ns();
      r.cls = num_i64(arg("class"));
      r.size_mb = num_i64(arg("arg"));
      r.state = 3;
    } else if (name->str == "tt_suspect" || name->str == "tt_dead" ||
               name->str == "tt_rejoin" || name->str == "tt_blacklist" ||
               name->str == "tt_probe_ok" || name->str == "blk_repair") {
      MembershipRow r;
      r.name = name->str;
      r.ts_ns = ts_ns();
      r.vm = num_i64(arg("vm"));
      r.arg = num_i64(arg("arg"));
      m->membership.push_back(std::move(r));
    }
  }
  return true;
}

/// "obs/host0/vm1/read/sync/ph0" -> "host0 vm1 read sync ph0".
std::string key_label(const std::string& track) {
  std::string out;
  std::string_view s = track;
  if (s.rfind("obs/", 0) == 0) s.remove_prefix(4);
  for (char c : s) out += c == '/' ? ' ' : c;
  return out;
}

/// Trailing "/phN" of an obs track, or -1.
int key_phase(const std::string& track) {
  const auto pos = track.rfind("/ph");
  if (pos == std::string::npos) return -1;
  return std::atoi(track.c_str() + pos + 3);
}

/// "/jobN" component of an obs track (multi-tenant runs), or -1.
int key_job(const std::string& track) {
  const auto pos = track.rfind("/job");
  if (pos == std::string::npos) return -1;
  return std::atoi(track.c_str() + pos + 4);
}

// ---------------------------------------------------------------------------
// HTML sections
// ---------------------------------------------------------------------------

void section_header(std::string& out, const ReportOptions& opt, const TraceModel& m) {
  out += "<h1>";
  append_escaped_html(out, opt.title);
  out += "</h1>\n";
  if (m.present) {
    const bool lossy = m.dropped_events != "0";
    out += lossy ? "<p class=\"banner bad\">trace ring overflow: <b>"
                 : "<p class=\"banner ok\">trace complete: <b>";
    append_escaped_html(out, m.dropped_events);
    out += "</b> dropped event(s)";
    if (lossy) {
      out += " — ring-buffer history is incomplete; raise TracerConfig::capacity "
             "to capture everything (pinned milestones and obs summaries survive)";
    }
    out += "</p>\n";
    if (m.have_summary) {
      out += "<p>attribution: <b>" + std::to_string(m.completed) +
             "</b> request(s) completed, <b>" + std::to_string(m.in_flight) +
             "</b> still in flight, <b>" + std::to_string(m.stalls_total) +
             "</b> stall(s) flagged</p>\n";
    }
  }
}

void section_waterfalls(std::string& out, const TraceModel& m) {
  if (m.keys.empty()) return;
  out += "<h2>Latency waterfalls</h2>\n"
         "<p>Per (host, vm, direction, sync class, phase) key: where completed "
         "requests spent their time, DomU submit to completion. Bars show each "
         "stage's share of the summed total.</p>\n";
  for (const auto& k : m.keys) {
    const LaneSummary& total = k.lanes[kLanes - 1];
    out += "<h3>" + esc(key_label(k.track)) + "</h3>\n<table>\n"
           "<tr><th>stage</th><th>share</th><th>count</th><th>mean</th>"
           "<th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>\n";
    for (int l = 0; l < kLanes; ++l) {
      const LaneSummary& ls = k.lanes[l];
      if (!ls.seen) continue;
      const bool is_total = l == kLanes - 1;
      const std::int64_t share =
          (!is_total && total.sum_ns > 0) ? ls.sum_ns * 100 / total.sum_ns : 100;
      out += is_total ? "<tr class=\"total\"><td>" : "<tr><td>";
      out += kLaneLabel[l];
      out += "</td><td><div class=\"bar\" style=\"width:";
      out += std::to_string(share);
      out += "%\"></div> ";
      out += std::to_string(share);
      out += "%</td><td>";
      out += std::to_string(ls.count);
      out += "</td><td>";
      out += fmt_ns(ls.count > 0 ? ls.sum_ns / ls.count : 0);
      out += "</td><td>" + fmt_ns(ls.p50) + "</td><td>" + fmt_ns(ls.p95) +
             "</td><td>" + fmt_ns(ls.p99) + "</td><td>" + fmt_ns(ls.max_ns) +
             "</td></tr>\n";
    }
    if (k.win_seen) {
      out += "<tr class=\"win\"><td>total (window)</td><td></td><td>" +
             std::to_string(k.win_count) + "</td><td></td><td></td><td>" +
             fmt_ns(k.win_p95) + "</td><td>" + fmt_ns(k.win_p99) +
             "</td><td></td></tr>\n";
    }
    out += "</table>\n";
  }
}

void section_phases(std::string& out, const TraceModel& m) {
  if (m.keys.empty()) return;
  // Distinct phases in key order.
  std::vector<int> phases;
  for (const auto& k : m.keys) {
    const int p = key_phase(k.track);
    bool seen = false;
    for (int q : phases) seen |= (q == p);
    if (!seen) phases.push_back(p);
  }
  if (phases.size() < 2) return;  // single phase: the waterfalls already say it all
  out += "<h2>Per-phase totals</h2>\n"
         "<p>End-to-end request latency by MapReduce phase "
         "(0&nbsp;=&nbsp;map, 1&nbsp;=&nbsp;shuffle, 2&nbsp;=&nbsp;reduce).</p>\n"
         "<table>\n<tr><th>phase</th><th>key</th><th>count</th><th>mean</th>"
         "<th>p50</th><th>p95</th><th>p99</th></tr>\n";
  for (int p : phases) {
    for (const auto& k : m.keys) {
      if (key_phase(k.track) != p) continue;
      const LaneSummary& t = k.lanes[kLanes - 1];
      if (!t.seen) continue;
      out += "<tr><td>" + std::to_string(p) + "</td><td>" + esc(key_label(k.track)) +
             "</td><td>" + std::to_string(t.count) + "</td><td>" +
             fmt_ns(t.count > 0 ? t.sum_ns / t.count : 0) + "</td><td>" +
             fmt_ns(t.p50) + "</td><td>" + fmt_ns(t.p95) + "</td><td>" +
             fmt_ns(t.p99) + "</td></tr>\n";
    }
  }
  out += "</table>\n";
}

void section_stream(std::string& out, const TraceModel& m) {
  if (m.stream_jobs.empty()) return;  // single-job traces: no section at all
  std::int64_t done = 0, failed = 0, shed = 0, running = 0;
  for (const auto& r : m.stream_jobs) {
    (r.state == 1 ? done : r.state == 2 ? failed : r.state == 3 ? shed : running) += 1;
  }
  // The shed count only appears when the admission gate actually fired, so
  // gate-free traces keep their historical summary text byte-for-byte.
  out += "<h2>Job stream</h2>\n<p>Multi-tenant timeline from the tenancy "
         "milestone instants: <b>" + std::to_string(done) + "</b> completed, <b>" +
         std::to_string(failed) + "</b> failed, " +
         (shed > 0 ? "<b>" + std::to_string(shed) + "</b> shed, " : "") +
         "<b>" + std::to_string(running) +
         "</b> still running at end of trace.</p>\n"
         "<table>\n<tr><th>job</th><th>class</th><th>size MB</th>"
         "<th>admitted</th><th>finished</th><th>sojourn</th><th>state</th></tr>\n";
  for (const auto& r : m.stream_jobs) {
    out += "<tr><td>" + std::to_string(r.job) + "</td><td>" + std::to_string(r.cls) +
           "</td><td>" +
           (r.admitted || r.state == 3 ? std::to_string(r.size_mb)
                                       : std::string("-")) +
           "</td><td>" + (r.admitted ? fmt_ns(r.admit_ns) : std::string("-")) +
           "</td><td>" + (r.state != 0 ? fmt_ns(r.end_ns) : std::string("-")) +
           "</td><td>" +
           (r.state == 1 || r.state == 2 ? fmt_ns(r.sojourn_ms * 1'000'000)
                                         : std::string("-")) +
           "</td><td>" +
           (r.state == 1   ? "done"
            : r.state == 2 ? "failed"
            : r.state == 3 ? "shed"
                           : "running") +
           "</td></tr>\n";
  }
  out += "</table>\n";
}

void section_membership(std::string& out, const TraceModel& m) {
  if (m.membership.empty()) return;  // fault-free traces: no section at all
  std::int64_t deaths = 0, rejoins = 0, blacklists = 0, repairs = 0,
               repair_bytes = 0;
  for (const auto& r : m.membership) {
    if (r.name == "tt_dead") ++deaths;
    if (r.name == "tt_rejoin") ++rejoins;
    if (r.name == "tt_blacklist") ++blacklists;
    if (r.name == "blk_repair") {
      ++repairs;
      repair_bytes += r.arg;
    }
  }
  out += "<h2>Membership timeline</h2>\n<p>Failure-detector and self-healing "
         "events from the membership track: <b>" + std::to_string(deaths) +
         "</b> declared dead, <b>" + std::to_string(rejoins) +
         "</b> rejoined, <b>" + std::to_string(blacklists) +
         "</b> blacklisted, <b>" + std::to_string(repairs) +
         "</b> block(s) re-replicated (" +
         std::to_string(repair_bytes / (1024 * 1024)) + " MB).</p>\n"
         "<table>\n<tr><th>time</th><th>event</th><th>vm</th>"
         "<th>detail</th></tr>\n";
  for (const auto& r : m.membership) {
    std::string label, detail;
    if (r.name == "tt_suspect") {
      label = "suspect";
      detail = std::to_string(r.arg) + " heartbeat(s) missed";
    } else if (r.name == "tt_dead") {
      label = "declared dead";
      detail = "death #" + std::to_string(r.arg);
    } else if (r.name == "tt_rejoin") {
      label = "rejoined";
      detail = "rejoin #" + std::to_string(r.arg);
    } else if (r.name == "tt_blacklist") {
      label = "blacklisted";
      detail = std::to_string(r.arg) + " strike(s)";
    } else if (r.name == "tt_probe_ok") {
      label = "probe ok";
      detail = "unblacklisted";
    } else {
      label = "block repaired";
      detail = std::to_string(r.arg) + " bytes copied to vm" +
               std::to_string(r.vm);
    }
    out += "<tr><td>" + fmt_ns(r.ts_ns) + "</td><td>" + label + "</td><td>vm" +
           std::to_string(r.vm) + "</td><td>" + detail + "</td></tr>\n";
  }
  out += "</table>\n";
}

void section_stalls(std::string& out, const TraceModel& m) {
  if (!m.have_summary && m.stalls.empty()) return;
  out += "<h2>Stall log</h2>\n";
  if (m.stalls.empty()) {
    out += "<p>No stalls flagged.</p>\n";
    return;
  }
  // The job column appears only when at least one stall is attributed to a
  // stream job, so single-job reports keep their historical layout.
  bool any_job = false;
  for (const auto& s : m.stalls) any_job = any_job || key_job(s.track) >= 0;
  out += "<p>Requests whose end-to-end latency exceeded the per-key "
         "percentile threshold, with the Dom0 elevator queue they arrived "
         "behind (&ldquo;who was ahead&rdquo;).</p>\n"
         "<table>\n<tr><th>submit</th><th>key</th>";
  if (any_job) out += "<th>job</th>";
  out += "<th>lba</th><th>total</th>"
         "<th>elv wait</th><th>service</th><th>writes ahead</th>"
         "<th>reads ahead</th></tr>\n";
  for (const auto& s : m.stalls) {
    out += "<tr><td>" + fmt_ns(s.ts_ns) + "</td><td>" + esc(key_label(s.track)) +
           "</td>";
    if (any_job) {
      const int job = key_job(s.track);
      out += job >= 0 ? "<td>job" + std::to_string(job) + "</td>"
                      : "<td>-</td>";
    }
    out += "<td>" + std::to_string(s.lba) + "</td><td>" +
           fmt_ns(s.wait_seen ? s.total_ns : s.dur_ns) + "</td><td>" +
           (s.wait_seen ? fmt_ns(s.elv_wait_ns) : std::string("-")) + "</td><td>" +
           (s.wait_seen ? fmt_ns(s.service_ns) : std::string("-")) + "</td><td>" +
           std::to_string(s.writes_ahead) + "</td><td>" +
           std::to_string(s.reads_ahead) + "</td></tr>\n";
  }
  out += "</table>\n";
}

bool section_bench(std::string& out, const ReportBench& b, std::string* error) {
  std::string perr;
  const auto doc = json_parse(b.text, &perr);
  if (!doc) {
    if (error) *error = b.label + ": " + perr;
    return false;
  }
  out += "<h2>Bench: " + esc(b.label) + "</h2>\n";
  if (const auto* name = doc->find("name")) {
    out += "<p>name: <b>" + esc(name->str) + "</b></p>\n";
  }
  if (const auto* points = doc->find("points");
      points != nullptr && points->kind == JsonValue::Kind::kArray) {
    // Sweep-engine BENCH: one row per (point, metric) summary.
    out += "<table>\n<tr><th>scenario</th><th>metric</th><th>mean</th>"
           "<th>min</th><th>p50</th><th>p95</th><th>max</th><th>n</th></tr>\n";
    for (const auto& pt : points->arr) {
      const auto* label = pt.find("label");
      const auto* metrics = pt.find("metrics");
      if (metrics == nullptr) continue;
      for (const auto& [mname, mv] : metrics->obj) {
        out += "<tr><td>" + esc(label ? label->str : "") + "</td><td>" + esc(mname) +
               "</td><td>" + esc(num_raw(mv.find("mean"))) + "</td><td>" +
               esc(num_raw(mv.find("min"))) + "</td><td>" +
               esc(num_raw(mv.find("p50"))) + "</td><td>" +
               esc(num_raw(mv.find("p95"))) + "</td><td>" +
               esc(num_raw(mv.find("max"))) + "</td><td>" +
               esc(num_raw(mv.find("n"))) + "</td></tr>\n";
      }
    }
    out += "</table>\n";
  } else if (const auto* metrics = doc->find("metrics");
             metrics != nullptr && metrics->kind == JsonValue::Kind::kObject) {
    // Flat bench_util BENCH: metric -> value.
    out += "<table>\n<tr><th>metric</th><th>value</th></tr>\n";
    for (const auto& [mname, mv] : metrics->obj) {
      out += "<tr><td>" + esc(mname) + "</td><td>" + esc(num_raw(&mv)) +
             "</td></tr>\n";
    }
    out += "</table>\n";
  } else {
    out += "<p class=\"banner bad\">unrecognized BENCH shape (neither "
           "\"points\" nor \"metrics\")</p>\n";
  }
  return true;
}

}  // namespace

std::string render_report(const std::string& trace_json,
                          const std::vector<ReportBench>& benches,
                          const ReportOptions& opt, std::string* error) {
  TraceModel m;
  if (!trace_json.empty() && !build_trace_model(trace_json, &m, error)) return {};

  std::string out;
  out.reserve(16384);
  out += "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>";
  append_escaped_html(out, opt.title);
  out += "</title>\n<style>\n"
         "body{font:14px/1.5 system-ui,sans-serif;margin:2em auto;max-width:70em;"
         "padding:0 1em;color:#222}\n"
         "h1{border-bottom:2px solid #444}\n"
         "table{border-collapse:collapse;margin:0.5em 0 1.5em}\n"
         "th,td{border:1px solid #bbb;padding:0.25em 0.6em;text-align:right}\n"
         "th{background:#eee}\ntd:first-child,th:first-child{text-align:left}\n"
         "tr.total td{font-weight:bold;border-top:2px solid #666}\n"
         "tr.win td{color:#666;font-style:italic}\n"
         ".bar{display:inline-block;height:0.8em;background:#4a90d9;"
         "vertical-align:middle;min-width:1px;max-width:12em}\n"
         ".banner{padding:0.4em 0.8em;border-radius:4px}\n"
         ".banner.bad{background:#fdd;border:1px solid #c33}\n"
         ".banner.ok{background:#dfd;border:1px solid #3a3}\n"
         "</style>\n</head>\n<body>\n";

  section_header(out, opt, m);
  section_stream(out, m);
  section_membership(out, m);
  section_waterfalls(out, m);
  section_phases(out, m);
  section_stalls(out, m);
  for (const auto& b : benches) {
    if (!section_bench(out, b, error)) return {};
  }
  out += "</body>\n</html>\n";
  return out;
}

}  // namespace iosim::exp
