// iosim: materialize one run of a scenario sweep into a simulation.
//
// execute_point is the RunFn body of the experiment engine: it builds a
// private ClusterConfig + JobConf from the scenario point, runs either a
// plain job (mode=run) or the full meta-scheduler pipeline (mode=adapt),
// and returns the mode's fixed metric list. It holds no state — safe to
// call concurrently from executor workers.
#pragma once

#include "exp/executor.hpp"
#include "exp/scenario.hpp"

namespace iosim::exp {

/// Metric names per mode, in emission order (the aggregator and the BENCH
/// JSON preserve this order).
///
/// mode=run:   seconds, ph1_seconds, ph2_seconds, ph3_seconds, ph23_seconds
/// mode=adapt: adaptive_seconds, default_seconds, best_single_seconds,
///             gain_vs_default_pct, gain_vs_best_pct, heuristic_evals
/// stream points (stream_text set): seconds (= stream makespan),
///             jobs_completed, jobs_failed, sla_violations, then per class
///             <name>_jobs, <name>_p50_s, <name>_p95_s, <name>_p99_s,
///             <name>_mean_s, <name>_sla_viol
RunOutput execute_point(const ScenarioPoint& point, std::uint64_t seed);

/// RunFn over a fixed expansion (the tasks' point_index selects the point).
RunFn make_run_fn(const std::vector<ScenarioPoint>& points);

}  // namespace iosim::exp
