#include "exp/executor.hpp"

#include <cassert>
#include <chrono>
#include <exception>

#ifndef IOSIM_THREADS
#define IOSIM_THREADS 1
#endif

#if IOSIM_THREADS
#include <atomic>
#include <mutex>
#include <thread>
#endif

namespace iosim::exp {

namespace {

RunOutput run_one(const RunFn& fn, const RunTask& task) {
  try {
    return fn(task);
  } catch (const std::exception& e) {
    RunOutput out;
    out.ok = false;
    out.error = std::string("exception: ") + e.what();
    return out;
  } catch (...) {
    RunOutput out;
    out.ok = false;
    out.error = "unknown exception";
    return out;
  }
}

double wall_now() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

void note_failure(ExecResult& res, const RunTask& task, const RunOutput& out) {
  ++res.failed;
  if (task.run_index < res.first_error_run) {
    res.first_error_run = task.run_index;
    res.first_error = out.error;
  }
}

}  // namespace

int default_workers() {
#if IOSIM_THREADS
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
#else
  return 1;
#endif
}

ExecResult execute_all(const std::vector<RunTask>& tasks, const RunFn& fn,
                       const ExecutorOptions& opts) {
  ExecResult res;
  res.outputs.resize(tasks.size());
  for (const RunTask& t : tasks) {
    assert(t.run_index < tasks.size() && "run_index must be dense (build_run_matrix)");
    (void)t;
  }

#if IOSIM_THREADS
  int workers = opts.workers;
  if (workers > static_cast<int>(tasks.size())) workers = static_cast<int>(tasks.size());
  if (workers > 1) {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::mutex mu;  // guards res counters + progress callback
    std::size_t done = 0;

    const auto worker = [&] {
      while (true) {
        if (cancelled.load(std::memory_order_relaxed)) break;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) break;
        const RunTask& task = tasks[i];
        const double t0 = wall_now();
        RunOutput out = run_one(fn, task);
        const double dt = wall_now() - t0;
        if (!out.ok && opts.cancel_on_failure) {
          cancelled.store(true, std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> lock(mu);
        if (out.ok) {
          ++res.completed;
        } else {
          note_failure(res, task, out);
        }
        // The slot write itself needs no lock (distinct indices), but doing
        // it here keeps every write ordered before the final join anyway.
        res.outputs[task.run_index] = std::move(out);
        if (opts.on_progress) {
          ProgressEvent ev;
          ev.done = ++done;
          ev.total = tasks.size();
          ev.task = &task;
          ev.ok = res.outputs[task.run_index]->ok;
          ev.wall_seconds = dt;
          opts.on_progress(ev);
        }
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& t : pool) t.join();

    res.cancelled = cancelled.load();
    res.skipped = tasks.size() - res.completed - res.failed;
    return res;
  }
#endif

  // Serial path: in run_index order, same cancel semantics.
  std::size_t done = 0;
  for (const RunTask& task : tasks) {
    const double t0 = wall_now();
    RunOutput out = run_one(fn, task);
    const double dt = wall_now() - t0;
    const bool run_failed = !out.ok;
    if (run_failed) {
      note_failure(res, task, out);
    } else {
      ++res.completed;
    }
    res.outputs[task.run_index] = std::move(out);
    if (opts.on_progress) {
      ProgressEvent ev;
      ev.done = ++done;
      ev.total = tasks.size();
      ev.task = &task;
      ev.ok = !run_failed;
      ev.wall_seconds = dt;
      opts.on_progress(ev);
    }
    if (run_failed && opts.cancel_on_failure) {
      res.cancelled = true;
      break;
    }
  }
  res.skipped = tasks.size() - res.completed - res.failed;
  return res;
}

}  // namespace iosim::exp
