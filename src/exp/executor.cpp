#include "exp/executor.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <exception>
#include <optional>

#ifndef IOSIM_THREADS
#define IOSIM_THREADS 1
#endif

#if IOSIM_THREADS
#include <condition_variable>
#include <mutex>
#include <thread>
#endif

namespace iosim::exp {

namespace {

/// The abort flag of the run executing on this thread (set while a watchdog
/// is armed, null otherwise).
thread_local const std::atomic<bool>* t_run_abort = nullptr;

RunOutput run_one(const RunFn& fn, const RunTask& task) {
  try {
    return fn(task);
  } catch (const std::exception& e) {
    RunOutput out;
    out.ok = false;
    out.infra_failure = true;  // the harness broke, not the simulation
    out.error = std::string("exception: ") + e.what();
    return out;
  } catch (...) {
    RunOutput out;
    out.ok = false;
    out.infra_failure = true;
    out.error = "unknown exception";
    return out;
  }
}

double wall_now() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

void note_failure(ExecResult& res, const RunTask& task, const RunOutput& out) {
  ++res.failed;
  if (task.run_index < res.first_error_run) {
    res.first_error_run = task.run_index;
    res.first_error = out.error;
  }
}

std::size_t slot_count(const std::vector<RunTask>& tasks) {
  std::size_t n = 0;
  for (const RunTask& t : tasks) n = std::max(n, t.run_index + 1);
  return n;
}

#if IOSIM_THREADS

/// Wall-clock watchdog: one monitor thread, one (deadline, abort) pair per
/// worker. Workers arm their slot before a run and disarm after; the
/// monitor flips the abort flag once the deadline passes, and cooperative
/// RunFns observe it through current_run_abort().
class Watchdog {
 public:
  Watchdog(std::size_t workers, double timeout_seconds)
      : timeout_(timeout_seconds), slots_(workers) {
    monitor_ = std::thread([this] { monitor_loop(); });
  }

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    monitor_.join();
  }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Reset the slot's abort flag, start its countdown, and publish the flag
  /// to the calling thread.
  void arm(std::size_t slot) {
    slots_[slot].abort.store(false, std::memory_order_relaxed);
    slots_[slot].deadline.store(wall_now() + timeout_, std::memory_order_relaxed);
    t_run_abort = &slots_[slot].abort;
  }

  /// Stop the countdown; returns whether the watchdog fired during the run.
  bool disarm(std::size_t slot) {
    slots_[slot].deadline.store(kIdle, std::memory_order_relaxed);
    t_run_abort = nullptr;
    return slots_[slot].abort.load(std::memory_order_relaxed);
  }

 private:
  static constexpr double kIdle = 1e300;

  struct Slot {
    std::atomic<double> deadline{kIdle};
    std::atomic<bool> abort{false};
  };

  void monitor_loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(20));
      const double now = wall_now();
      for (Slot& s : slots_) {
        if (now >= s.deadline.load(std::memory_order_relaxed)) {
          s.abort.store(true, std::memory_order_relaxed);
        }
      }
    }
  }

  double timeout_;
  std::vector<Slot> slots_;
  std::thread monitor_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

#endif  // IOSIM_THREADS

/// One run including its infra-failure retry budget. `watchdog`/`slot` are
/// the caller's watchdog arm (null when no timeout is configured).
RunOutput run_with_retries(const RunFn& fn, const RunTask& task,
                           const ExecutorOptions& opts,
#if IOSIM_THREADS
                           Watchdog* watchdog, std::size_t slot,
#endif
                           double* wall_seconds) {
  int attempt = 0;
  while (true) {
#if IOSIM_THREADS
    if (watchdog) watchdog->arm(slot);
#endif
    const double t0 = wall_now();
    RunOutput out = run_one(fn, task);
    *wall_seconds += wall_now() - t0;
#if IOSIM_THREADS
    const bool timed_out = watchdog && watchdog->disarm(slot);
    if (timed_out && !out.ok) {
      // A watchdog stop is an infra failure (the machine may simply have
      // been starved) even when the RunFn already produced a diagnostic.
      out.infra_failure = true;
    }
#endif
    out.attempts = attempt + 1;
    const bool externally_cancelled =
        opts.cancel != nullptr && opts.cancel->load(std::memory_order_relaxed);
    if (out.ok || !out.infra_failure || attempt >= opts.max_retries ||
        externally_cancelled) {
      return out;
    }
    ++attempt;
#if IOSIM_THREADS
    const double backoff =
        std::min(opts.retry_backoff_seconds * std::ldexp(1.0, attempt - 1),
                 opts.retry_backoff_cap_seconds);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
#endif
  }
}

}  // namespace

const std::atomic<bool>* current_run_abort() { return t_run_abort; }

int default_workers() {
#if IOSIM_THREADS
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
#else
  return 1;
#endif
}

ExecResult execute_all(const std::vector<RunTask>& tasks, const RunFn& fn,
                       const ExecutorOptions& opts) {
  ExecResult res;
  res.outputs.resize(slot_count(tasks));

  const auto externally_cancelled = [&] {
    return opts.cancel != nullptr && opts.cancel->load(std::memory_order_relaxed);
  };

#if IOSIM_THREADS
  std::optional<Watchdog> watchdog;
  int workers = opts.workers;
  if (workers > static_cast<int>(tasks.size())) workers = static_cast<int>(tasks.size());
  if (opts.run_timeout_seconds > 0 && !tasks.empty()) {
    watchdog.emplace(static_cast<std::size_t>(std::max(workers, 1)),
                     opts.run_timeout_seconds);
  }
  Watchdog* wd = watchdog ? &*watchdog : nullptr;
  if (workers > 1) {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::atomic<bool> interrupted{false};
    std::mutex mu;  // guards res counters + progress callback
    std::size_t done = 0;

    const auto worker = [&](std::size_t slot) {
      while (true) {
        if (cancelled.load(std::memory_order_relaxed)) break;
        if (externally_cancelled()) {
          interrupted.store(true, std::memory_order_relaxed);
          break;
        }
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) break;
        const RunTask& task = tasks[i];
        double dt = 0.0;
        RunOutput out = run_with_retries(fn, task, opts, wd, slot, &dt);
        if (!out.ok && opts.cancel_on_failure) {
          cancelled.store(true, std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> lock(mu);
        if (out.ok) {
          ++res.completed;
        } else {
          note_failure(res, task, out);
        }
        // The slot write itself needs no lock (distinct indices), but doing
        // it here keeps every write ordered before the final join anyway.
        res.outputs[task.run_index] = std::move(out);
        if (opts.on_progress) {
          ProgressEvent ev;
          ev.done = ++done;
          ev.total = tasks.size();
          ev.task = &task;
          ev.output = &*res.outputs[task.run_index];
          ev.ok = ev.output->ok;
          ev.wall_seconds = dt;
          opts.on_progress(ev);
        }
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back(worker, static_cast<std::size_t>(w));
    }
    for (auto& t : pool) t.join();

    res.cancelled = cancelled.load();
    res.interrupted = interrupted.load() || externally_cancelled();
    res.skipped = tasks.size() - res.completed - res.failed;
    return res;
  }
#endif

  // Serial path: in run_index order, same cancel semantics.
  std::size_t done = 0;
  for (const RunTask& task : tasks) {
    if (externally_cancelled()) {
      res.interrupted = true;
      break;
    }
    double dt = 0.0;
    RunOutput out = run_with_retries(fn, task, opts,
#if IOSIM_THREADS
                                     wd, 0,
#endif
                                     &dt);
    const bool run_failed = !out.ok;
    if (run_failed) {
      note_failure(res, task, out);
    } else {
      ++res.completed;
    }
    res.outputs[task.run_index] = std::move(out);
    if (opts.on_progress) {
      ProgressEvent ev;
      ev.done = ++done;
      ev.total = tasks.size();
      ev.task = &task;
      ev.output = &*res.outputs[task.run_index];
      ev.ok = !run_failed;
      ev.wall_seconds = dt;
      opts.on_progress(ev);
    }
    if (run_failed && opts.cancel_on_failure) {
      res.cancelled = true;
      break;
    }
  }
  res.skipped = tasks.size() - res.completed - res.failed;
  return res;
}

}  // namespace iosim::exp
