// iosim: crash-safe run journal for sweep resume.
//
// An append-only JSONL file next to the BENCH output: one fsynced header
// line identifying the sweep (name, canonical-spec fingerprint, base seed,
// repeats, matrix size, schema version) followed by one fsynced record per
// finished run (run_index, seed, ok/error, attempts, wall time, metrics).
// Because every record is flushed through the kernel before the executor
// moves on, a SIGKILL / power cut / OOM at any instant loses at most the
// line being written — and the reader tolerates exactly that: a truncated
// *last* line is ignored, while corruption anywhere else (or a header that
// does not match the spec being resumed) rejects the journal outright.
//
// `iosim-sweep --resume` replays the journal's ok records into their
// run_index slots, re-executes only the missing runs, and re-aggregates —
// metrics round-trip losslessly (format_double -> strtod), so the final
// BENCH JSON is byte-identical to an uninterrupted sweep.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/executor.hpp"
#include "exp/scenario.hpp"

namespace iosim::exp {

/// Journal schema version (bumped on any incompatible record change).
inline constexpr int kJournalFormat = 1;

/// Identity of the sweep a journal belongs to. A resume only replays a
/// journal whose header matches the spec being run — the fingerprint hashes
/// the canonical result-determining spec text (axes, seeds, budgets; not
/// wall-clock-only knobs like timeout), so changing anything that could
/// change results invalidates old journals.
struct JournalHeader {
  std::string name;
  std::uint64_t spec_fingerprint = 0;
  std::uint64_t base_seed = 0;
  int repeats = 0;
  std::uint64_t n_runs = 0;

  bool operator==(const JournalHeader&) const = default;
};

/// The header describing `spec`'s full run matrix.
JournalHeader journal_header_for(const ScenarioSpec& spec);

/// Append-side of the journal. Opened once per sweep; append() is called
/// from the executor's serialized progress callback, so no internal
/// locking is needed.
class RunJournal {
 public:
  RunJournal() = default;
  RunJournal(RunJournal&& o) noexcept : path_(std::move(o.path_)), fd_(o.fd_) {
    o.fd_ = -1;
  }
  RunJournal& operator=(RunJournal&& o) noexcept {
    if (this != &o) {
      close();
      path_ = std::move(o.path_);
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;
  ~RunJournal() { close(); }

  /// Open `path` for appending; an empty or fresh file gets the fsynced
  /// header line first. (Resuming callers read_journal() first and pass the
  /// same path — records then append after the existing tail.)
  static std::optional<RunJournal> open(const std::string& path,
                                        const JournalHeader& header,
                                        std::string* error = nullptr);

  /// Append one finished run as a JSONL record and fsync it. False + errno
  /// diagnostic on any write failure (disk-full surfaces here, not at the
  /// end of the sweep).
  bool append(const RunTask& task, const RunOutput& out, double wall_seconds,
              std::string* error = nullptr);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  void close();

 private:
  bool write_line(const std::string& line, std::string* error);

  std::string path_;
  int fd_ = -1;
};

/// What a journal replay recovered.
struct JournalReplay {
  JournalHeader header;
  /// Successful runs only, indexed by run_index, sized header.n_runs.
  /// Failed journal records leave their slot empty — a resume re-executes
  /// them (an infra failure may succeed on the retry; a deterministic one
  /// fails the sweep again, which is the honest outcome).
  std::vector<std::optional<RunOutput>> outputs;
  std::size_t n_ok = 0;
  std::size_t n_failed = 0;
  /// The file ended mid-record (the writer was killed inside a line). The
  /// partial line is ignored; that run re-executes.
  bool truncated_tail = false;
};

/// Replay `path` for a resume of the matrix described by `expect`/`tasks`.
/// Rejects (nullopt + diagnostic): unreadable file, corrupt non-final line,
/// header mismatch, out-of-range run_index, or a record whose seed differs
/// from the matrix seed (a different base_seed produced it).
std::optional<JournalReplay> read_journal(const std::string& path,
                                          const JournalHeader& expect,
                                          const std::vector<RunTask>& tasks,
                                          std::string* error = nullptr);

}  // namespace iosim::exp
