// iosim: self-contained HTML report over a trace export + BENCH files.
//
// render_report() consumes the machine-readable surfaces the rest of the
// harness already writes — the Chrome-trace JSON (Tracer::to_json, with the
// attribution summary instants Attribution::export_to_trace pins onto
// "obs/..." tracks) and any number of BENCH JSON files (flat bench_util
// reports or sweep-engine point files) — and renders one dependency-free
// HTML document: header accounting (dropped trace events, attribution
// record counts, stall totals), a per-key latency waterfall (lane shares as
// pure-CSS bars), per-phase percentile breakdowns, the stall log with its
// "who was ahead" queue snapshots, and one table per BENCH file.
//
// Determinism: the renderer walks the parsed documents in file order, all
// latency arithmetic is integer (ns in, fixed-point strings out), and BENCH
// numbers are reproduced from their raw JSON tokens — same input bytes,
// same output bytes, so reports can be digest-pinned like the trace itself.
#pragma once

#include <string>
#include <vector>

namespace iosim::exp {

struct ReportBench {
  /// Label shown above the table (typically the file name).
  std::string label;
  /// Raw BENCH JSON text.
  std::string text;
};

struct ReportOptions {
  std::string title = "iosim report";
};

/// Render the HTML report. `trace_json` may be empty (BENCH-only report).
/// Returns the document, or an empty string with a one-line diagnostic in
/// `error` when an input fails to parse.
std::string render_report(const std::string& trace_json,
                          const std::vector<ReportBench>& benches,
                          const ReportOptions& opt, std::string* error = nullptr);

}  // namespace iosim::exp
