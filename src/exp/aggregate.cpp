#include "exp/aggregate.hpp"

#include <map>

#include "exp/json.hpp"

namespace iosim::exp {

SweepAggregate aggregate(const ScenarioSpec& spec,
                         const std::vector<ScenarioPoint>& points,
                         const std::vector<RunTask>& tasks, const ExecResult& exec) {
  SweepAggregate agg;
  agg.total_runs = tasks.size();
  agg.completed = exec.completed;
  agg.failed = exec.failed;
  agg.skipped = exec.skipped;
  agg.points.reserve(points.size());

  // Collect per-point, per-metric sample vectors in run_index order.
  for (std::size_t p = 0; p < points.size(); ++p) {
    PointAggregate pa;
    pa.point = points[p];
    std::vector<std::string> order;                    // metric emission order
    std::map<std::string, std::vector<double>> vals;   // name -> repeat samples
    for (int r = 0; r < spec.repeats; ++r) {
      const std::size_t idx = p * static_cast<std::size_t>(spec.repeats) +
                              static_cast<std::size_t>(r);
      if (idx >= exec.outputs.size() || !exec.outputs[idx].has_value()) continue;
      const RunOutput& out = *exec.outputs[idx];
      ++pa.runs;
      if (!out.ok) {
        ++pa.failures;
        continue;  // a failed run has no trustworthy metrics
      }
      for (const auto& [name, v] : out.metrics) {
        auto it = vals.find(name);
        if (it == vals.end()) {
          order.push_back(name);
          it = vals.emplace(name, std::vector<double>{}).first;
        }
        it->second.push_back(v);
      }
    }
    for (const auto& name : order) {
      pa.metrics.push_back({name, sim::summarize(vals[name])});
    }
    agg.points.push_back(std::move(pa));
  }
  return agg;
}

std::string to_json(const ScenarioSpec& spec, const SweepAggregate& agg,
                    bool partial) {
  JsonWriter w;
  w.obj_begin();
  w.kv("bench_format", kBenchFormat);
  w.kv("kind", "sweep");
  w.kv("name", spec.name);
  w.kv("mode", to_string(spec.mode));
  w.kv("base_seed", spec.base_seed);
  w.kv("repeats", spec.repeats);
  if (partial) w.kv("partial", true);
  w.key("runs").obj_begin();
  w.kv("total", agg.total_runs);
  w.kv("completed", agg.completed);
  w.kv("failed", agg.failed);
  w.kv("skipped", agg.skipped);
  w.obj_end();
  w.key("points").arr_begin();
  for (const auto& pa : agg.points) {
    w.obj_begin();
    w.kv("label", pa.point.label());
    w.kv("workload", pa.point.workload);
    w.kv("hosts", pa.point.hosts);
    w.kv("vms", pa.point.vms);
    w.kv("mb", static_cast<std::int64_t>(pa.point.mb));
    w.kv("pair", pa.point.pair.letters());
    w.kv("fault", pa.point.fault_text);
    w.kv("runs", pa.runs);
    w.kv("failures", pa.failures);
    w.key("metrics").obj_begin();
    for (const auto& m : pa.metrics) {
      w.key(m.name).obj_begin();
      w.kv("n", m.s.n);
      w.kv("mean", m.s.mean);
      w.kv("min", m.s.min);
      w.kv("max", m.s.max);
      w.kv("p50", m.s.p50);
      w.kv("p95", m.s.p95);
      w.kv("ci95", m.s.ci95);
      w.obj_end();
    }
    w.obj_end();
    w.obj_end();
  }
  w.arr_end();
  w.obj_end();
  std::string s = w.str();
  s += '\n';
  return s;
}

metrics::Table to_table(const ScenarioSpec& spec, const SweepAggregate& agg,
                        const std::string& metric) {
  const std::string primary =
      !metric.empty() ? metric
                      : (spec.mode == RunMode::kAdapt ? "adaptive_seconds" : "seconds");
  metrics::Table tab(spec.name + " — " + primary + " (" +
                     std::to_string(spec.repeats) + " repeats)");
  tab.headers({"scenario", "mean", "±ci95", "min", "p50", "p95", "max", "runs"});
  for (const auto& pa : agg.points) {
    const MetricSummary* ms = nullptr;
    for (const auto& m : pa.metrics) {
      if (m.name == primary) {
        ms = &m;
        break;
      }
    }
    if (!ms) {
      tab.row({pa.point.label(), "-", "-", "-", "-", "-", "-",
               std::to_string(pa.runs) + (pa.failures ? " (failed)" : "")});
      continue;
    }
    tab.row({pa.point.label(), metrics::Table::num(ms->s.mean, 1),
             metrics::Table::num(ms->s.ci95, 2), metrics::Table::num(ms->s.min, 1),
             metrics::Table::num(ms->s.p50, 1), metrics::Table::num(ms->s.p95, 1),
             metrics::Table::num(ms->s.max, 1), std::to_string(pa.runs)});
  }
  return tab;
}

}  // namespace iosim::exp
