// iosim: minimal deterministic JSON writer.
//
// Used for every machine-readable result file (BENCH_*.json): the
// experiment engine's aggregates and the per-bench --json reports. The
// writer is append-only (no DOM), keys keep insertion order, and doubles
// are formatted with the shortest "%.g" precision that round-trips — the
// same value always prints the same bytes, so two runs that compute
// identical numbers produce byte-identical files (the property the
// determinism-under-parallelism tests compare with cmp).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace iosim::exp {

class JsonWriter {
 public:
  JsonWriter& obj_begin() {
    comma();
    out_ += '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& obj_end() {
    out_ += '}';
    stack_.pop_back();
    mark_value();
    return *this;
  }
  JsonWriter& arr_begin() {
    comma();
    out_ += '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& arr_end() {
    out_ += ']';
    stack_.pop_back();
    mark_value();
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    comma();
    append_string(k);
    out_ += ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    comma();
    append_string(s);
    mark_value();
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v) {
    comma();
    out_ += format_double(v);
    mark_value();
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
    mark_value();
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
    mark_value();
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    mark_value();
    return *this;
  }

  /// key + scalar in one call.
  template <class T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }

  /// Shortest decimal that round-trips to exactly `v` (try 15, 16, 17
  /// significant digits). Non-finite values have no JSON encoding; emit
  /// null (never produced by the deterministic simulator, but the writer
  /// must not emit invalid JSON either way).
  static std::string format_double(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
      std::snprintf(buf, sizeof buf, "%.*g", prec, v);
      if (std::strtod(buf, nullptr) == v) break;
    }
    return buf;
  }

 private:
  void comma() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!stack_.empty() && stack_.back()) out_ += ',';
  }
  void mark_value() {
    if (!stack_.empty()) stack_.back() = true;
  }
  void append_string(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> stack_;  // per open container: "has at least one element"
  bool pending_key_ = false;
};

}  // namespace iosim::exp
