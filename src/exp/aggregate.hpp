// iosim: statistical aggregation of a sweep's run matrix.
//
// Groups the executor's outputs by scenario point, summarizes every metric
// across the point's repeats (mean / min / max / p50 / p95 / 95% CI via
// sim::summarize), and renders the result as versioned BENCH JSON
// ("bench_format": 1) and as a human table. Aggregation walks runs in
// run_index order and the JSON writer formats doubles reproducibly, so the
// file is byte-identical for any worker count.
#pragma once

#include <string>
#include <vector>

#include "exp/executor.hpp"
#include "exp/scenario.hpp"
#include "metrics/table.hpp"
#include "sim/stats.hpp"

namespace iosim::exp {

/// The BENCH JSON schema version this build writes.
inline constexpr int kBenchFormat = 1;

struct MetricSummary {
  std::string name;
  sim::Summary s;
};

struct PointAggregate {
  ScenarioPoint point;
  std::size_t runs = 0;      // outputs recorded for this point
  std::size_t failures = 0;  // of which failed
  std::vector<MetricSummary> metrics;  // successful runs only, emission order
};

struct SweepAggregate {
  std::vector<PointAggregate> points;  // expansion order
  std::size_t total_runs = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
};

SweepAggregate aggregate(const ScenarioSpec& spec,
                         const std::vector<ScenarioPoint>& points,
                         const std::vector<RunTask>& tasks, const ExecResult& exec);

/// Versioned BENCH JSON of the whole sweep. `partial` marks an artifact
/// written by a gracefully cancelled sweep (SIGINT/SIGTERM): the key is
/// emitted only when true, so complete sweeps stay byte-identical to
/// pre-robustness outputs (and to a resumed run of the same spec).
std::string to_json(const ScenarioSpec& spec, const SweepAggregate& agg,
                    bool partial = false);

/// Human table: one row per point, the named metric's summary columns.
/// Empty `metric` selects the mode's primary metric (seconds /
/// adaptive_seconds).
metrics::Table to_table(const ScenarioSpec& spec, const SweepAggregate& agg,
                        const std::string& metric = "");

}  // namespace iosim::exp
