#include "exp/runner.hpp"

#include "cluster/runner.hpp"
#include "core/meta_scheduler.hpp"
#include "core/online_scheduler.hpp"
#include "tenancy/stream_runner.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim::exp {

namespace {

cluster::ClusterConfig cluster_of(const ScenarioPoint& pt, std::uint64_t seed) {
  cluster::ClusterConfig cfg;
  cfg.n_hosts = pt.hosts;
  cfg.vms_per_host = pt.vms;
  cfg.pair = pt.pair;
  cfg.faults = pt.faults;
  cfg.seed = seed;
  // Progress sentinel: spec budgets bound a livelocked event loop
  // deterministically, and the executor's watchdog (when armed) reaches the
  // loop through the per-run abort flag.
  cfg.budget.max_events = pt.max_events;
  if (pt.max_sim_seconds > 0) {
    cfg.budget.max_sim_time = sim::Time::from_sec_f(pt.max_sim_seconds);
  }
  cfg.budget.abort = current_run_abort();
  return cfg;
}

/// Failure bookkeeping shared by both modes: a watchdog abort is an infra
/// failure (retryable); budget trips and job aborts are deterministic.
void note_run_failure(RunOutput* out, const cluster::RunResult& r) {
  out->ok = false;
  out->error = r.failure;
  out->infra_failure = (r.stop == sim::StopReason::kAborted);
  out->budget_stop = (r.stop == sim::StopReason::kEventBudget ||
                      r.stop == sim::StopReason::kTimeBudget);
}

}  // namespace

RunOutput execute_point(const ScenarioPoint& pt, std::uint64_t seed) {
  RunOutput out;
  const auto model = workloads::by_name(pt.workload);
  if (!model) {  // unreachable after a successful spec parse; belt and braces
    out.ok = false;
    out.error = "unknown workload '" + pt.workload + "'";
    return out;
  }
  const auto jc = workloads::make_job(*model, pt.mb * mapred::kMiB);
  const auto cfg = cluster_of(pt, seed);

  if (!pt.stream_text.empty()) {
    // Multi-job stream point: the stream's classes define the workloads and
    // sizes, so the point's workload/mb axes are inert here. Metric order is
    // fixed: headline numbers, then per-class sojourn quantiles — `seconds`
    // is the stream makespan so mixed sweeps share one table column.
    // A meta segment routes through the policy dispatcher (static pin,
    // offline schedule replay, or online bandit); its controller counters
    // append *after* the class metrics so meta-free streams keep their
    // exact metric layout.
    core::MetaStreamResult meta;
    if (pt.stream.meta.enabled()) {
      meta = core::run_stream_with_policy(cfg, pt.stream);
    } else {
      meta.stream = tenancy::run_stream(cfg, pt.stream);
    }
    const tenancy::StreamResult& r = meta.stream;
    if (!r.ok) {
      out.ok = false;
      out.error = r.error;
      out.infra_failure = (r.stop == sim::StopReason::kAborted);
      out.budget_stop = (r.stop == sim::StopReason::kEventBudget ||
                         r.stop == sim::StopReason::kTimeBudget);
    }
    out.metrics = {{"seconds", r.makespan_s},
                   {"jobs_completed", static_cast<double>(r.jobs_completed)},
                   {"jobs_failed", static_cast<double>(r.jobs_failed)},
                   {"sla_violations", static_cast<double>(r.sla_violations)},
                   {"jobs_shed", static_cast<double>(r.jobs_shed)},
                   {"jobs_retried", static_cast<double>(r.jobs_retried)},
                   {"repair_mb", r.repair_mb}};
    for (const auto& c : r.classes) {
      out.metrics.push_back({c.name + "_jobs", static_cast<double>(c.jobs)});
      out.metrics.push_back({c.name + "_p50_s", c.p50_s});
      out.metrics.push_back({c.name + "_p95_s", c.p95_s});
      out.metrics.push_back({c.name + "_p99_s", c.p99_s});
      out.metrics.push_back({c.name + "_mean_s", c.mean_s});
      out.metrics.push_back(
          {c.name + "_sla_viol", static_cast<double>(c.sla_violations)});
      out.metrics.push_back({c.name + "_failed", static_cast<double>(c.failed)});
      out.metrics.push_back({c.name + "_shed", static_cast<double>(c.shed)});
    }
    if (pt.stream.meta.enabled()) {
      out.metrics.push_back(
          {"meta_pulls", static_cast<double>(meta.arm_pulls)});
      out.metrics.push_back(
          {"meta_switches", static_cast<double>(meta.arm_switches)});
      out.metrics.push_back(
          {"meta_switch_failures", static_cast<double>(meta.switch_failures)});
      out.metrics.push_back({"meta_decays", static_cast<double>(meta.decays)});
      out.metrics.push_back(
          {"meta_profile_runs", static_cast<double>(meta.profile_runs)});
    }
    return out;
  }

  if (pt.mode == RunMode::kRun) {
    const cluster::RunResult r = cluster::run_job(cfg, jc);
    if (r.failed) note_run_failure(&out, r);
    out.metrics = {{"seconds", r.seconds},
                   {"ph1_seconds", r.ph1_seconds},
                   {"ph2_seconds", r.ph2_seconds},
                   {"ph3_seconds", r.ph3_seconds},
                   {"ph23_seconds", r.ph23_seconds}};
    return out;
  }

  // mode=adapt: the full pipeline — profile all 16 pairs, Algorithm 1,
  // final adaptive run — exactly what the Fig. 7 benches measure.
  core::MetaSchedulerOptions opts;
  opts.plan = core::PhasePlan::for_job(jc, cfg.n_hosts * cfg.vms_per_host);
  opts.seeds_per_eval = 1;
  core::MetaScheduler ms(cfg, jc, opts);
  const core::MetaResult r = ms.optimize();
  if (r.adaptive_run.failed) note_run_failure(&out, r.adaptive_run);
  out.metrics = {{"adaptive_seconds", r.adaptive_seconds},
                 {"default_seconds", r.default_seconds},
                 {"best_single_seconds", r.best_single_seconds},
                 {"gain_vs_default_pct", 100.0 * r.improvement_vs_default()},
                 {"gain_vs_best_pct", 100.0 * r.improvement_vs_best_single()},
                 {"heuristic_evals", static_cast<double>(r.heuristic_evaluations)}};
  return out;
}

RunFn make_run_fn(const std::vector<ScenarioPoint>& points) {
  return [&points](const RunTask& task) {
    return execute_point(points[task.point_index], task.seed);
  };
}

}  // namespace iosim::exp
