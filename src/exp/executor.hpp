// iosim: parallel experiment executor.
//
// Fans the run matrix of a scenario sweep out across worker threads. Every
// run is an independent simulation — each worker builds its own private
// Simulator/Cluster inside the RunFn, and the telemetry globals
// (trace::tracer(), trace::registry()) are thread_local — so there is no
// shared mutable state between runs and the outputs are identical for any
// worker count. Results land in a slot-per-run vector indexed by
// run_index, which restores the deterministic order no matter how the
// scheduler interleaved the workers.
//
// Failure policy: cancel-on-first-failure. The first run whose output
// reports ok=false (or whose RunFn throws) flips a cancel flag; workers
// finish the run they are on, then stop claiming new ones. Already-claimed
// runs still record their outputs; never-claimed runs stay nullopt
// ("skipped").
//
// Built with IOSIM_THREADS=0 (or workers <= 1) the executor degrades to a
// serial in-order loop with identical observable behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exp/scenario.hpp"

namespace iosim::exp {

/// What one run produced. `metrics` is an ordered list (name, value) —
/// every run of the same mode emits the same names in the same order, which
/// is what lets the aggregator group by metric without a schema.
struct RunOutput {
  bool ok = true;
  std::string error;  // diagnostic when !ok (job abort, exception, ...)
  std::vector<std::pair<std::string, double>> metrics;
};

using RunFn = std::function<RunOutput(const RunTask&)>;

/// Completion event, delivered serialized (under the executor's mutex) in
/// completion order — which is wall-clock order, not run_index order.
struct ProgressEvent {
  std::size_t done = 0;   // completions so far, including this one
  std::size_t total = 0;  // size of the run matrix
  const RunTask* task = nullptr;
  bool ok = true;
  double wall_seconds = 0.0;  // this run's wall-clock cost
};

struct ExecutorOptions {
  /// Worker threads. <= 1 (or IOSIM_THREADS=0 builds) runs serially on the
  /// calling thread. Clamped to the task count.
  int workers = 1;
  bool cancel_on_failure = true;
  std::function<void(const ProgressEvent&)> on_progress;
};

struct ExecResult {
  /// Slot per run, indexed by run_index; nullopt = never executed
  /// (cancelled before being claimed).
  std::vector<std::optional<RunOutput>> outputs;
  std::size_t completed = 0;  // ran and succeeded
  std::size_t failed = 0;     // ran and reported !ok (or threw)
  std::size_t skipped = 0;    // never claimed; completed+failed+skipped = total
  bool cancelled = false;
  /// Failure diagnostic of the failed run with the smallest run_index (the
  /// deterministic representative even if several fail concurrently).
  std::string first_error;
  std::size_t first_error_run = static_cast<std::size_t>(-1);

  bool all_ok() const { return failed == 0 && skipped == 0; }
};

/// Run `fn` over every task. Blocks until all workers drain (or cancel).
ExecResult execute_all(const std::vector<RunTask>& tasks, const RunFn& fn,
                       const ExecutorOptions& opts = {});

/// The number of workers `--workers 0` / defaults resolve to: hardware
/// concurrency, at least 1. (Defined even in IOSIM_THREADS=0 builds, where
/// it returns 1 — the executor would serialize anyway.)
int default_workers();

}  // namespace iosim::exp
