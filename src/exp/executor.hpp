// iosim: parallel experiment executor.
//
// Fans the run matrix of a scenario sweep out across worker threads. Every
// run is an independent simulation — each worker builds its own private
// Simulator/Cluster inside the RunFn, and the telemetry globals
// (trace::tracer(), trace::registry()) are thread_local — so there is no
// shared mutable state between runs and the outputs are identical for any
// worker count. Results land in a slot-per-run vector indexed by
// run_index, which restores the deterministic order no matter how the
// scheduler interleaved the workers.
//
// Failure policy: cancel-on-first-failure. The first run whose output
// reports ok=false (or whose RunFn throws) flips a cancel flag; workers
// finish the run they are on, then stop claiming new ones. Already-claimed
// runs still record their outputs; never-claimed runs stay nullopt
// ("skipped").
//
// Robustness layer (all opt-in, defaults preserve the plain executor):
//
//  * Watchdog — run_timeout_seconds arms a monitor thread that flips a
//    per-worker abort flag when a run's wall clock expires. The flag is
//    published to the running thread via current_run_abort(); cooperative
//    RunFns (exp::execute_point wires it into the simulator's SimBudget)
//    stop within ~kAbortCheckPeriod events and fail with a timeout
//    diagnostic instead of wedging the pool.
//  * Retry budget — a run whose failure is an infra failure (RunFn
//    exception, watchdog timeout) is retried up to max_retries times with
//    exponential backoff. Deterministic simulation failures (the RunFn
//    returned ok=false without infra_failure) are never retried: the same
//    seed would fail the same way.
//  * External cancel — a SIGINT/SIGTERM handler stores to *cancel; workers
//    stop claiming new runs, drain the runs they are on, and execute_all
//    returns with interrupted=true so the caller can flush journals and
//    write a partial artifact.
//  * Sparse matrices — the task list may be any subset of a run matrix
//    (resume re-executes only the runs missing from the journal); output
//    slots are indexed by run_index with size max(run_index)+1.
//
// Built with IOSIM_THREADS=0 (or workers <= 1) the executor degrades to a
// serial in-order loop with identical observable behavior (the watchdog
// still works: it only needs the one monitor thread).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exp/scenario.hpp"

namespace iosim::exp {

/// What one run produced. `metrics` is an ordered list (name, value) —
/// every run of the same mode emits the same names in the same order, which
/// is what lets the aggregator group by metric without a schema.
struct RunOutput {
  bool ok = true;
  std::string error;  // diagnostic when !ok (job abort, exception, ...)
  /// A failure of the harness rather than of the simulated system: RunFn
  /// exception or watchdog timeout. Infra failures are retryable;
  /// deterministic sim failures are not.
  bool infra_failure = false;
  /// The simulation hit its event/time budget instead of draining. Neither
  /// retryable nor a legitimate simulated outcome — callers that certify
  /// correctness (iosim-soak) treat it as a failure in its own right.
  bool budget_stop = false;
  /// Executions this output took (1 = first attempt; >1 = infra retries).
  int attempts = 1;
  std::vector<std::pair<std::string, double>> metrics;
};

using RunFn = std::function<RunOutput(const RunTask&)>;

/// Completion event, delivered serialized (under the executor's mutex) in
/// completion order — which is wall-clock order, not run_index order.
struct ProgressEvent {
  std::size_t done = 0;   // completions so far, including this one
  std::size_t total = 0;  // size of the run matrix
  const RunTask* task = nullptr;
  /// The recorded output (valid for the duration of the callback) — lets
  /// the caller journal each completion without re-deriving it.
  const RunOutput* output = nullptr;
  bool ok = true;
  double wall_seconds = 0.0;  // this run's wall-clock cost (across attempts)
};

struct ExecutorOptions {
  /// Worker threads. <= 1 (or IOSIM_THREADS=0 builds) runs serially on the
  /// calling thread. Clamped to the task count.
  int workers = 1;
  bool cancel_on_failure = true;
  /// Per-run wall-clock watchdog; 0 disables. Requires IOSIM_THREADS (the
  /// monitor is a thread); in serial builds the value is ignored.
  double run_timeout_seconds = 0.0;
  /// Infra-failure retries per run (0 = fail on first attempt). The n-th
  /// retry waits retry_backoff_seconds * 2^(n-1), capped at
  /// retry_backoff_cap_seconds.
  int max_retries = 0;
  double retry_backoff_seconds = 0.5;
  double retry_backoff_cap_seconds = 10.0;
  /// External cancellation (signal handler flag). When it becomes true,
  /// workers stop claiming runs and drain in-flight ones.
  const std::atomic<bool>* cancel = nullptr;
  std::function<void(const ProgressEvent&)> on_progress;
};

struct ExecResult {
  /// Slot per run, indexed by run_index (sized to the largest run_index in
  /// the task list + 1 — resume passes a sparse subset of the matrix);
  /// nullopt = never executed (cancelled before being claimed, or not in
  /// the task list).
  std::vector<std::optional<RunOutput>> outputs;
  std::size_t completed = 0;  // ran and succeeded
  std::size_t failed = 0;     // ran and reported !ok (or threw)
  std::size_t skipped = 0;    // never claimed; completed+failed+skipped = total
  bool cancelled = false;     // cancel_on_failure tripped
  bool interrupted = false;   // opts.cancel observed true
  /// Failure diagnostic of the failed run with the smallest run_index (the
  /// deterministic representative even if several fail concurrently).
  std::string first_error;
  std::size_t first_error_run = static_cast<std::size_t>(-1);

  bool all_ok() const { return failed == 0 && skipped == 0; }
};

/// Run `fn` over every task. Blocks until all workers drain (or cancel).
ExecResult execute_all(const std::vector<RunTask>& tasks, const RunFn& fn,
                       const ExecutorOptions& opts = {});

/// The watchdog's cooperative-cancellation flag for the run currently
/// executing on the calling thread, or null outside execute_all / when no
/// watchdog is armed. RunFns hand it to sim::SimBudget::abort so a wedged
/// simulation can be stopped from outside.
const std::atomic<bool>* current_run_abort();

/// The number of workers `--workers 0` / defaults resolve to: hardware
/// concurrency, at least 1. (Defined even in IOSIM_THREADS=0 builds, where
/// it returns 1 — the executor would serialize anyway.)
int default_workers();

}  // namespace iosim::exp
