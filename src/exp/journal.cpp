#include "exp/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "exp/artifact.hpp"
#include "exp/json.hpp"
#include "exp/json_parse.hpp"

namespace iosim::exp {

namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

std::string header_line(const JournalHeader& h) {
  JsonWriter w;
  w.obj_begin();
  w.kv("journal_format", kJournalFormat);
  w.kv("kind", "header");
  w.kv("name", h.name);
  w.kv("spec_fingerprint", h.spec_fingerprint);
  w.kv("base_seed", h.base_seed);
  w.kv("repeats", h.repeats);
  w.kv("n_runs", h.n_runs);
  w.obj_end();
  return w.str() + "\n";
}

std::string record_line(const RunTask& task, const RunOutput& out,
                        double wall_seconds) {
  JsonWriter w;
  w.obj_begin();
  w.kv("kind", "run");
  w.kv("run_index", static_cast<std::uint64_t>(task.run_index));
  w.kv("seed", task.seed);
  w.kv("ok", out.ok);
  w.kv("infra", out.infra_failure);
  w.kv("attempts", out.attempts);
  w.kv("wall_seconds", wall_seconds);
  w.kv("error", out.error);
  w.key("metrics").obj_begin();
  for (const auto& [name, v] : out.metrics) w.kv(name, v);
  w.obj_end();
  w.obj_end();
  return w.str() + "\n";
}

struct JournalRecordParsed {
  std::size_t run_index = 0;
  std::uint64_t seed = 0;
  RunOutput out;
  double wall_seconds = 0.0;
};

bool parse_run_record(const JsonValue& v, std::uint64_t n_runs,
                      JournalRecordParsed* rec, std::string* error) {
  const JsonValue* kind = v.find("kind");
  if (!kind || kind->kind != JsonValue::Kind::kString || kind->str != "run") {
    return fail(error, "record is not a run record");
  }
  const JsonValue* run_index = v.find("run_index");
  const JsonValue* seed = v.find("seed");
  const JsonValue* ok = v.find("ok");
  const JsonValue* err = v.find("error");
  const JsonValue* metrics = v.find("metrics");
  if (!run_index || !seed || !ok || !err || !metrics ||
      ok->kind != JsonValue::Kind::kBool ||
      err->kind != JsonValue::Kind::kString ||
      metrics->kind != JsonValue::Kind::kObject) {
    return fail(error, "run record is missing fields");
  }
  const auto idx = run_index->as_u64();
  const auto s = seed->as_u64();
  if (!idx || !s) return fail(error, "bad run_index/seed");
  if (*idx >= n_runs) {
    return fail(error, "run_index " + std::to_string(*idx) + " out of range (matrix has " +
                           std::to_string(n_runs) + " runs)");
  }
  rec->run_index = static_cast<std::size_t>(*idx);
  rec->seed = *s;
  rec->out.ok = ok->b;
  rec->out.error = err->str;
  if (const JsonValue* infra = v.find("infra");
      infra && infra->kind == JsonValue::Kind::kBool) {
    rec->out.infra_failure = infra->b;
  }
  if (const JsonValue* attempts = v.find("attempts");
      attempts && attempts->kind == JsonValue::Kind::kNumber) {
    rec->out.attempts = static_cast<int>(attempts->num);
  }
  if (const JsonValue* wall = v.find("wall_seconds");
      wall && wall->kind == JsonValue::Kind::kNumber) {
    rec->wall_seconds = wall->num;
  }
  for (const auto& [name, mv] : metrics->obj) {
    if (mv.kind != JsonValue::Kind::kNumber) {
      return fail(error, "non-numeric metric '" + name + "'");
    }
    rec->out.metrics.emplace_back(name, mv.num);
  }
  return true;
}

bool parse_header(const JsonValue& v, JournalHeader* h, std::string* error) {
  const JsonValue* fmt = v.find("journal_format");
  const JsonValue* kind = v.find("kind");
  if (!fmt || !fmt->as_u64() || !kind || kind->kind != JsonValue::Kind::kString ||
      kind->str != "header") {
    return fail(error, "first journal line is not a header");
  }
  if (*fmt->as_u64() != static_cast<std::uint64_t>(kJournalFormat)) {
    return fail(error, "journal_format " + fmt->str + " unsupported (want " +
                           std::to_string(kJournalFormat) + ")");
  }
  const JsonValue* name = v.find("name");
  const JsonValue* fp = v.find("spec_fingerprint");
  const JsonValue* base_seed = v.find("base_seed");
  const JsonValue* repeats = v.find("repeats");
  const JsonValue* n_runs = v.find("n_runs");
  if (!name || name->kind != JsonValue::Kind::kString || !fp || !fp->as_u64() ||
      !base_seed || !base_seed->as_u64() || !repeats || !repeats->as_u64() ||
      !n_runs || !n_runs->as_u64()) {
    return fail(error, "journal header is missing fields");
  }
  h->name = name->str;
  h->spec_fingerprint = *fp->as_u64();
  h->base_seed = *base_seed->as_u64();
  h->repeats = static_cast<int>(*repeats->as_u64());
  h->n_runs = *n_runs->as_u64();
  return true;
}

}  // namespace

JournalHeader journal_header_for(const ScenarioSpec& spec) {
  JournalHeader h;
  h.name = spec.name;
  h.spec_fingerprint = spec.fingerprint();
  h.base_seed = spec.base_seed;
  h.repeats = spec.repeats;
  h.n_runs = spec.n_runs();
  return h;
}

std::optional<RunJournal> RunJournal::open(const std::string& path,
                                           const JournalHeader& header,
                                           std::string* error) {
  RunJournal j;
  j.path_ = path;
  j.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (j.fd_ < 0) {
    fail(error, "cannot open journal " + path + ": " + std::strerror(errno));
    return std::nullopt;
  }
  struct ::stat st{};
  if (::fstat(j.fd_, &st) != 0) {
    fail(error, "fstat failed for " + path + ": " + std::strerror(errno));
    return std::nullopt;
  }
  if (st.st_size == 0 && !j.write_line(header_line(header), error)) {
    return std::nullopt;
  }
  return j;
}

bool RunJournal::append(const RunTask& task, const RunOutput& out,
                        double wall_seconds, std::string* error) {
  if (fd_ < 0) return fail(error, "journal is not open");
  return write_line(record_line(task, out, wall_seconds), error);
}

bool RunJournal::write_line(const std::string& line, std::string* error) {
  const char* p = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ::ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(error, "journal write failed for " + path_ + ": " +
                             std::strerror(errno));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    return fail(error,
                "journal fsync failed for " + path_ + ": " + std::strerror(errno));
  }
  return true;
}

void RunJournal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<JournalReplay> read_journal(const std::string& path,
                                          const JournalHeader& expect,
                                          const std::vector<RunTask>& tasks,
                                          std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(error, "cannot read journal " + path);
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  if (text.empty()) {
    fail(error, "journal " + path + " is empty");
    return std::nullopt;
  }
  if (tasks.size() != expect.n_runs) {
    fail(error, "internal: task list does not cover the full matrix");
    return std::nullopt;
  }

  JournalReplay replay;
  replay.outputs.resize(expect.n_runs);
  bool saw_header = false;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto nl = text.find('\n', pos);
    const bool has_newline = nl != std::string::npos;
    const std::string_view line(text.data() + pos,
                                (has_newline ? nl : text.size()) - pos);
    pos = has_newline ? nl + 1 : text.size();
    ++line_no;
    if (line.empty()) continue;

    std::string perr;
    const auto v = json_parse(line, &perr);
    const bool is_last = pos >= text.size();
    if (!v) {
      if (is_last) {
        // The writer died mid-line; the record was not acknowledged.
        replay.truncated_tail = true;
        break;
      }
      fail(error,
           "journal " + path + " line " + std::to_string(line_no) + ": " + perr);
      return std::nullopt;
    }
    if (!has_newline) {
      // A complete JSON document but no trailing newline: the fsync'd '\n'
      // never landed, so treat it as the torn tail and re-execute the run.
      replay.truncated_tail = true;
      break;
    }

    if (line_no == 1) {
      std::string herr;
      if (!parse_header(*v, &replay.header, &herr)) {
        fail(error, "journal " + path + ": " + herr);
        return std::nullopt;
      }
      if (!(replay.header == expect)) {
        fail(error, "journal " + path +
                        " belongs to a different sweep (spec, seed, or matrix "
                        "changed) — delete it or rerun without --resume");
        return std::nullopt;
      }
      saw_header = true;
      continue;
    }

    JournalRecordParsed rec;
    std::string rerr;
    if (!parse_run_record(*v, expect.n_runs, &rec, &rerr)) {
      fail(error,
           "journal " + path + " line " + std::to_string(line_no) + ": " + rerr);
      return std::nullopt;
    }
    if (rec.seed != tasks[rec.run_index].seed) {
      fail(error, "journal " + path + " line " + std::to_string(line_no) +
                      ": seed mismatch for run " + std::to_string(rec.run_index) +
                      " (journal was produced by a different base_seed)");
      return std::nullopt;
    }
    if (rec.out.ok) {
      if (!replay.outputs[rec.run_index].has_value()) ++replay.n_ok;
      replay.outputs[rec.run_index] = std::move(rec.out);
    } else {
      ++replay.n_failed;  // slot stays empty: the run re-executes on resume
    }
  }

  if (!saw_header) {
    // Only a torn first line (or nothing) made it to disk: nothing usable,
    // but also nothing contradictory — resume simply re-executes everything.
    replay.header = expect;
    replay.truncated_tail = true;
  }
  return replay;
}

}  // namespace iosim::exp
