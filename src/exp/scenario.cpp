#include "exp/scenario.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "exp/artifact.hpp"

#include "sim/random.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim::exp {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Split on `sep`, trimming each piece; empty pieces are errors (a stray
/// trailing comma silently shrinking an axis would corrupt the matrix).
bool split_list(std::string_view v, char sep, std::vector<std::string>* out,
                std::string* error) {
  out->clear();
  while (true) {
    const auto pos = v.find(sep);
    const std::string_view item = trim(v.substr(0, pos));
    if (item.empty()) {
      if (error) *error = "empty list element";
      return false;
    }
    out->emplace_back(item);
    if (pos == std::string_view::npos) return true;
    v.remove_prefix(pos + 1);
  }
}

bool parse_u64(std::string_view v, std::uint64_t* out) {
  if (v.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const std::string s(v);
  const unsigned long long x = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = x;
  return true;
}

bool parse_pos_int(std::string_view v, int* out) {
  std::uint64_t x;
  if (!parse_u64(v, &x) || x == 0 || x > 1'000'000) return false;
  *out = static_cast<int>(x);
  return true;
}

/// Non-negative decimal seconds (0 disables the knob it configures).
bool parse_seconds(std::string_view v, double* out) {
  if (v.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const std::string s(v);
  const double x = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (!(x >= 0.0) || x > 1e9) return false;  // also rejects NaN
  *out = x;
  return true;
}

/// Shortest round-trip rendering for canonical spec text (same discipline
/// as JsonWriter::format_double, so to_string()->parse() is lossless).
std::string seconds_to_string(double v) {
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::optional<iosched::SchedulerPair> parse_pair_code(std::string_view code) {
  if (code.size() != 2) return std::nullopt;
  const auto vmm = iosched::scheduler_from_string(std::string(1, code[0]));
  const auto guest = iosched::scheduler_from_string(std::string(1, code[1]));
  if (!vmm || !guest) return std::nullopt;
  return iosched::SchedulerPair{*vmm, *guest};
}

}  // namespace

const char* to_string(RunMode m) {
  return m == RunMode::kRun ? "run" : "adapt";
}

std::string ScenarioPoint::label() const {
  std::string s = workload;
  s += " h" + std::to_string(hosts);
  s += " v" + std::to_string(vms);
  s += " " + std::to_string(mb) + "MB";
  s += " (" + std::string(1, iosched::to_letter(pair.vmm)) + "," +
       std::string(1, iosched::to_letter(pair.guest)) + ")";
  if (!fault_text.empty()) s += " fault=" + fault_text;
  if (!stream_text.empty()) s += " stream=" + stream_text;
  if (!stream_policy.empty()) s += " policy=" + stream_policy;
  if (!meta_text.empty()) s += " meta=" + meta_text;
  return s;
}

bool ScenarioSpec::apply(std::string_view key, std::string_view value,
                         std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  key = trim(key);
  value = trim(value);
  if (value.empty()) return fail("empty value for '" + std::string(key) + "'");

  std::vector<std::string> items;
  std::string lerr;

  if (key == "name") {
    name = std::string(value);
    return true;
  }
  if (key == "mode") {
    if (value == "run") {
      mode = RunMode::kRun;
    } else if (value == "adapt") {
      mode = RunMode::kAdapt;
    } else {
      return fail("bad mode '" + std::string(value) + "' (run|adapt)");
    }
    return true;
  }
  if (key == "base_seed") {
    if (!parse_u64(value, &base_seed)) {
      return fail("bad base_seed '" + std::string(value) + "'");
    }
    return true;
  }
  if (key == "seed_mode") {
    if (value == "run") {
      paired_seeds = false;
    } else if (value == "repeat") {
      paired_seeds = true;
    } else {
      return fail("bad seed_mode '" + std::string(value) + "' (run|repeat)");
    }
    return true;
  }
  if (key == "repeats") {
    int r;
    if (!parse_pos_int(value, &r) || r > 10'000) {
      return fail("bad repeats '" + std::string(value) + "' (1..10000)");
    }
    repeats = r;
    return true;
  }
  if (key == "pair") {
    if (value == "all16" || value == "all") {
      const auto all = iosched::all_scheduler_pairs();
      pairs.assign(all.begin(), all.end());
      return true;
    }
    if (!split_list(value, ',', &items, &lerr)) return fail(lerr + " in pair");
    pairs.clear();
    for (const auto& it : items) {
      const auto p = parse_pair_code(it);
      if (!p) return fail("bad pair '" + it + "' (two of n/d/a/c, or all16)");
      pairs.push_back(*p);
    }
    return true;
  }
  if (key == "workload") {
    if (!split_list(value, ',', &items, &lerr)) return fail(lerr + " in workload");
    std::vector<std::string> named;
    for (const auto& it : items) {
      const auto model = workloads::by_name(it);
      if (!model) return fail("unknown workload '" + it + "'");
      named.push_back(model->name);  // canonical: "wc" and "wordcount" collide
    }
    workloads = std::move(named);
    return true;
  }
  if (key == "hosts" || key == "vms") {
    if (!split_list(value, ',', &items, &lerr)) {
      return fail(lerr + " in " + std::string(key));
    }
    std::vector<int> xs;
    for (const auto& it : items) {
      int x;
      if (!parse_pos_int(it, &x) || x > 1024) {
        return fail("bad " + std::string(key) + " value '" + it + "'");
      }
      xs.push_back(x);
    }
    (key == "hosts" ? hosts : vms) = xs;
    return true;
  }
  if (key == "mb") {
    if (!split_list(value, ',', &items, &lerr)) return fail(lerr + " in mb");
    mb.clear();
    for (const auto& it : items) {
      std::uint64_t x;
      if (!parse_u64(it, &x) || x == 0 || x > (1ULL << 30)) {
        return fail("bad mb value '" + it + "'");
      }
      mb.push_back(static_cast<std::int64_t>(x));
    }
    return true;
  }
  if (key == "timeout") {
    double s;
    if (!parse_seconds(value, &s)) {
      return fail("bad timeout '" + std::string(value) + "' (seconds, >= 0)");
    }
    timeout_seconds = s;
    return true;
  }
  if (key == "max_events") {
    std::uint64_t x;
    if (!parse_u64(value, &x)) {
      return fail("bad max_events '" + std::string(value) + "'");
    }
    max_events = x;
    return true;
  }
  if (key == "max_sim_seconds") {
    double s;
    if (!parse_seconds(value, &s)) {
      return fail("bad max_sim_seconds '" + std::string(value) + "' (seconds, >= 0)");
    }
    max_sim_seconds = s;
    return true;
  }
  if (key == "fault") {
    // Alternatives are `|`-separated because the fault-plan grammar itself
    // uses `,` and `;`.
    if (!split_list(value, '|', &items, &lerr)) return fail(lerr + " in fault");
    faults.clear();
    for (const auto& it : items) {
      if (it == "none") {
        faults.push_back({{}, ""});
        continue;
      }
      std::string ferr;
      auto plan = fault::FaultPlan::parse(it, &ferr);
      if (!plan) return fail("bad fault '" + it + "': " + ferr);
      faults.push_back({*plan, it});
    }
    return true;
  }
  if (key == "stream") {
    // `|`-separated like fault, because the stream grammar uses `,`/`;`.
    if (!split_list(value, '|', &items, &lerr)) return fail(lerr + " in stream");
    streams.clear();
    for (const auto& it : items) {
      if (it == "none") {
        streams.push_back({{}, ""});
        continue;
      }
      std::string serr;
      auto st = tenancy::StreamSpec::parse(it, &serr);
      if (!st) return fail("bad stream '" + it + "': " + serr);
      streams.push_back({*st, it});
    }
    return true;
  }
  if (key == "stream_policy") {
    if (!split_list(value, ',', &items, &lerr)) {
      return fail(lerr + " in stream_policy");
    }
    stream_policies.clear();
    for (const auto& it : items) {
      if (!tenancy::policy_by_name(it)) {
        return fail("bad stream_policy '" + it + "' (fifo|fair|capacity)");
      }
      stream_policies.push_back(it);
    }
    return true;
  }
  if (key == "meta") {
    // `|`-separated meta-segment bodies (the segment grammar uses `,`).
    // Per-body validation happens in validate(), where the stream axis the
    // body folds into is known.
    if (!split_list(value, '|', &items, &lerr)) return fail(lerr + " in meta");
    metas.clear();
    for (const auto& it : items) {
      if (it == "none") {
        metas.push_back("");
        continue;
      }
      if (it.compare(0, 7, "policy=") != 0) {
        return fail("bad meta '" + it +
                    "' (expected none or a meta segment body starting with "
                    "policy=)");
      }
      metas.push_back(it);
    }
    return true;
  }
  return fail("unknown key '" + std::string(key) + "'");
}

std::optional<ScenarioSpec> ScenarioSpec::parse(std::string_view text,
                                                std::string* error) {
  ScenarioSpec spec;
  std::vector<std::string> seen;
  int line_no = 0;
  while (!text.empty()) {
    const auto nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view{} : text.substr(nl + 1);
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      if (error) {
        *error = "line " + std::to_string(line_no) + ": expected key=value, got '" +
                 std::string(line) + "'";
      }
      return std::nullopt;
    }
    const std::string key(trim(line.substr(0, eq)));
    for (const auto& s : seen) {
      if (s == key) {
        if (error) {
          *error = "line " + std::to_string(line_no) + ": duplicate key '" + key + "'";
        }
        return std::nullopt;
      }
    }
    std::string err;
    if (!spec.apply(key, line.substr(eq + 1), &err)) {
      if (error) *error = "line " + std::to_string(line_no) + ": " + err;
      return std::nullopt;
    }
    seen.push_back(key);
  }
  {
    std::string err;
    if (!spec.validate(&err)) {
      if (error) *error = err;
      return std::nullopt;
    }
  }
  return spec;
}

bool ScenarioSpec::validate(std::string* error) const {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  // Overflow-safe product: bail as soon as the running product can no
  // longer stay under the cap (axis sizes are never 0 — split_list rejects
  // empty elements and the defaults are non-empty).
  const bool any_stream = [&] {
    for (const auto& st : streams) {
      if (!st.second.empty()) return true;
    }
    return false;
  }();
  if (any_stream && mode == RunMode::kAdapt) {
    return fail("stream= requires mode=run (the meta-scheduler pipeline is "
                "single-job)");
  }
  if (!any_stream && !(stream_policies.size() == 1 && stream_policies[0].empty())) {
    return fail("stream_policy= without a stream= axis");
  }
  const bool any_meta = [&] {
    for (const auto& m : metas) {
      if (!m.empty()) return true;
    }
    return false;
  }();
  if (!any_stream && any_meta) {
    return fail("meta= without a stream= axis");
  }
  // Every (stream, meta) fold must parse: the body is appended to the
  // stream text as a `;meta,...` segment, so the stream parser validates it
  // in context (policy names, pair codes, profile class references).
  for (const auto& m : metas) {
    if (m.empty()) continue;
    for (const auto& st : streams) {
      if (st.second.empty()) continue;
      std::string serr;
      if (!tenancy::StreamSpec::parse(st.second + ";meta," + m, &serr)) {
        return fail("bad meta '" + m + "' for stream '" + st.second +
                    "': " + serr);
      }
    }
  }
  std::size_t points = 1;
  for (const std::size_t n : {workloads.size(), hosts.size(), vms.size(), mb.size(),
                              pairs.size(), faults.size(), streams.size(),
                              stream_policies.size(), metas.size()}) {
    if (n == 0) return fail("empty axis");
    if (points > kMaxPoints / n) {
      return fail("scenario cross product exceeds " + std::to_string(kMaxPoints) +
                  " points");
    }
    points *= n;
  }
  if (points > kMaxRuns / static_cast<std::size_t>(repeats)) {
    return fail("scenario matrix exceeds " + std::to_string(kMaxRuns) +
                " runs (points x repeats)");
  }
  return true;
}

std::vector<ScenarioPoint> ScenarioSpec::expand() const {
  std::vector<ScenarioPoint> out;
  out.reserve(n_points());
  for (const auto& w : workloads) {
    for (int h : hosts) {
      for (int v : vms) {
        for (std::int64_t m : mb) {
          for (const auto& p : pairs) {
            for (const auto& f : faults) {
              for (const auto& st : streams) {
                for (const auto& pol : stream_policies) {
                  for (const auto& mt : metas) {
                    ScenarioPoint pt;
                    pt.mode = mode;
                    pt.pair = p;
                    pt.workload = w;
                    pt.hosts = h;
                    pt.vms = v;
                    pt.mb = m;
                    pt.faults = f.first;
                    pt.fault_text = f.second;
                    pt.stream = st.first;
                    pt.stream_text = st.second;
                    if (!st.second.empty() && !mt.empty()) {
                      // Re-parse the fold (validate() proved it parses) so
                      // the meta segment lands with full context checks.
                      pt.stream =
                          *tenancy::StreamSpec::parse(st.second + ";meta," + mt);
                      pt.meta_text = mt;
                    }
                    if (!st.second.empty() && !pol.empty()) {
                      pt.stream_policy = pol;
                      pt.stream.policy = *tenancy::policy_by_name(pol);
                    }
                    pt.max_events = max_events;
                    pt.max_sim_seconds = max_sim_seconds;
                    out.push_back(std::move(pt));
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

std::string ScenarioSpec::to_string() const {
  std::string s;
  s += "name=" + name + "\n";
  s += "mode=" + std::string(exp::to_string(mode)) + "\n";
  s += "base_seed=" + std::to_string(base_seed) + "\n";
  s += "repeats=" + std::to_string(repeats) + "\n";
  // Rendered only when non-default: pre-existing specs keep their
  // fingerprint (and resumability) bit for bit.
  if (paired_seeds) s += "seed_mode=repeat\n";
  s += "pair=";
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i) s += ",";
    s += pairs[i].letters();
  }
  s += "\nworkload=";
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    if (i) s += ",";
    s += workloads[i];
  }
  s += "\nhosts=";
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(hosts[i]);
  }
  s += "\nvms=";
  for (std::size_t i = 0; i < vms.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(vms[i]);
  }
  s += "\nmb=";
  for (std::size_t i = 0; i < mb.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(mb[i]);
  }
  s += "\nfault=";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (i) s += "|";
    s += faults[i].second.empty() ? "none" : faults[i].second;
  }
  s += "\n";
  // Stream axes render only when set, so pre-tenancy specs keep their
  // canonical text — and therefore their journal fingerprints — unchanged.
  if (!(streams.size() == 1 && streams[0].second.empty())) {
    s += "stream=";
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (i) s += "|";
      s += streams[i].second.empty() ? "none" : streams[i].second;
    }
    s += "\n";
  }
  if (!(stream_policies.size() == 1 && stream_policies[0].empty())) {
    s += "stream_policy=";
    for (std::size_t i = 0; i < stream_policies.size(); ++i) {
      if (i) s += ",";
      s += stream_policies[i];
    }
    s += "\n";
  }
  if (!(metas.size() == 1 && metas[0].empty())) {
    s += "meta=";
    for (std::size_t i = 0; i < metas.size(); ++i) {
      if (i) s += "|";
      s += metas[i].empty() ? "none" : metas[i];
    }
    s += "\n";
  }
  s += "max_events=" + std::to_string(max_events) + "\n";
  s += "max_sim_seconds=" + seconds_to_string(max_sim_seconds) + "\n";
  s += "timeout=" + seconds_to_string(timeout_seconds) + "\n";
  return s;
}

std::uint64_t ScenarioSpec::fingerprint() const {
  // Canonical text minus the wall-clock-only trailing line. to_string()
  // deliberately renders `timeout=` last so the result-determining prefix
  // is a clean cut.
  std::string s = to_string();
  const auto pos = s.rfind("timeout=");
  if (pos != std::string::npos) s.resize(pos);
  return fnv1a64(s);
}

std::vector<RunTask> build_run_matrix(const ScenarioSpec& spec) {
  std::vector<RunTask> tasks;
  tasks.reserve(spec.n_runs());
  const std::size_t points = spec.n_points();
  for (std::size_t p = 0; p < points; ++p) {
    for (int r = 0; r < spec.repeats; ++r) {
      RunTask t;
      t.point_index = p;
      t.repeat = r;
      t.run_index = p * static_cast<std::size_t>(spec.repeats) +
                    static_cast<std::size_t>(r);
      t.seed = sim::derive_run_seed(
          spec.base_seed,
          spec.paired_seeds ? static_cast<std::size_t>(r) : t.run_index);
      tasks.push_back(t);
    }
  }
  return tasks;
}

}  // namespace iosim::exp
