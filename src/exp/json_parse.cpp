#include "exp/json_parse.hpp"

#include <cerrno>
#include <cstdlib>

namespace iosim::exp {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  std::optional<JsonValue> parse_document() {
    skip_ws();
    JsonValue v;
    if (!parse_value(&v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const std::string& msg) {
    if (error_ && error_->empty()) {
      *error_ = msg + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->str);
      }
      case 't':
      case 'f': return parse_bool(out);
      case 'n': return parse_null(out);
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return done_nesting();
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':' in object");
      skip_ws();
      JsonValue v;
      if (!parse_value(&v)) return false;
      out->obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return done_nesting();
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return done_nesting();
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(&v)) return false;
      out->arr.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return done_nesting();
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    if (!eat('"')) return fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') {
              v |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              v |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              v |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // JsonWriter only emits \u00xx for control bytes; decode the
          // low byte and pass anything larger through UTF-8 unconcerned.
          if (v < 0x80) {
            out->push_back(static_cast<char>(v));
          } else if (v < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (v >> 6)));
            out->push_back(static_cast<char>(0x80 | (v & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (v >> 12)));
            out->push_back(static_cast<char>(0x80 | ((v >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (v & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_bool(JsonValue* out) {
    if (text_.substr(pos_, 4) == "true") {
      out->kind = JsonValue::Kind::kBool;
      out->b = true;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out->kind = JsonValue::Kind::kBool;
      out->b = false;
      pos_ += 5;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_null(JsonValue* out) {
    if (text_.substr(pos_, 4) == "null") {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '-' ||
          c == '+') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected value");
    out->kind = JsonValue::Kind::kNumber;
    out->str.assign(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    out->num = std::strtod(out->str.c_str(), &end);
    if (end != out->str.c_str() + out->str.size()) return fail("bad number");
    return true;
  }

  bool done_nesting() {
    --depth_;
    return true;
  }

  /// Recursion guard: parse_value -> parse_object/parse_array recurses one
  /// native stack frame per nesting level, so a `[[[[...` document of a few
  /// hundred KB would otherwise overflow the stack. No legitimate iosim
  /// artifact nests past ~6 levels; 128 is generous.
  static constexpr int kMaxDepth = 128;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string* error_;
};

}  // namespace

std::optional<std::uint64_t> JsonValue::as_u64() const {
  if (kind != Kind::kNumber || str.empty()) return std::nullopt;
  for (const char c : str) {
    if (c < '0' || c > '9') return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(str.c_str(), &end, 10);
  if (errno != 0 || end != str.c_str() + str.size()) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  if (error) error->clear();
  Parser p(text, error);
  return p.parse_document();
}

}  // namespace iosim::exp
