// iosim: the paper's three MapReduce benchmarks as workload models.
//
// Section III classifies applications by disk footprint:
//   wordcount (with combiner)  — "light":   tiny map output, tiny output
//   wordcount w/o combiner     — "moderate": map output ~1.7x input, tiny output
//   stream sort                — "heavy":   map output = input, output = input
#pragma once

#include <optional>
#include <string>

#include "mapred/job_conf.hpp"

namespace iosim::workloads {

using mapred::JobConf;
using mapred::WorkloadModel;

/// Default wordcount: combiner collapses in-memory output, so only a few
/// percent of the input ever reaches the local disk; the map function is
/// CPU-heavy (tokenize + hash + count).
WorkloadModel wordcount();

/// Wordcount without combiner: same CPU, but the full (word, 1) stream is
/// spilled — map output ≈ 1.7x map input (the paper's measurement).
WorkloadModel wordcount_no_combiner();

/// Stream sort: identity map/reduce, cheap CPU; map output and job output
/// both equal the input size.
WorkloadModel stream_sort();

/// JobConf for a named benchmark with the paper's defaults (512 MB per data
/// node, 64 MB blocks, 2+2 slots).
JobConf make_job(const WorkloadModel& w,
                 std::int64_t input_bytes_per_vm = 512 * mapred::kMiB);

/// Lookup by the CLI / scenario-spec names: "sort", "wordcount" ("wc"),
/// "wc-nocombiner" ("wcnc"). nullopt for anything else — callers own the
/// diagnostic.
std::optional<WorkloadModel> by_name(const std::string& name);

}  // namespace iosim::workloads
