#include "workloads/microbench.hpp"

#include <cassert>
#include <memory>

namespace iosim::workloads {

namespace {

/// Per-VM sequential writer: walks `files` extents in `io_unit` writes with
/// a bounded window, issuing an fsync barrier (drain + journal commit)
/// every `fsync_every` writes and at each file end.
struct Writer : std::enable_shared_from_this<Writer> {
  sim::Simulator* simr;
  virt::DomU* vm;
  std::uint64_t ctx;
  const SeqWriteParams* p;

  std::int64_t per_file_bytes = 0;
  disk::Lba journal_lba = 0;

  int file_idx = 0;
  disk::Lba file_base = 0;
  std::int64_t file_off = 0;      // bytes written into current file
  std::int64_t since_fsync = 0;   // writes since last barrier
  int outstanding = 0;
  bool barrier_pending = false;

  std::function<void(sim::Time)> on_vm_done;
  std::function<void(std::int64_t)> on_bytes;  // completed bytes deltas

  void start() {
    journal_lba = vm->alloc(virt::DiskZone::kData, 256);  // journal area
    open_next_file();
  }

  void open_next_file() {
    if (file_idx >= p->files) {
      if (on_vm_done) on_vm_done(simr->now());
      return;
    }
    ++file_idx;
    file_base = vm->alloc(virt::DiskZone::kScratch,
                          per_file_bytes / disk::kSectorBytes + 8);
    file_off = 0;
    pump();
  }

  void pump() {
    if (barrier_pending) return;
    auto self = shared_from_this();
    while (outstanding < p->window && file_off < per_file_bytes &&
           !barrier_pending) {
      const std::int64_t n =
          std::min<std::int64_t>(p->io_unit_bytes, per_file_bytes - file_off);
      const disk::Lba at = file_base + file_off / disk::kSectorBytes;
      file_off += n;
      ++outstanding;
      ++since_fsync;
      vm->submit_io(ctx, at, n / disk::kSectorBytes, iosched::Dir::kWrite,
                    /*sync=*/false, [this, self, n](sim::Time, iosched::IoStatus) {
                      --outstanding;
                      if (on_bytes) on_bytes(n);
                      after_completion();
                    });
      if (p->fsync_every > 0 && since_fsync >= p->fsync_every) {
        barrier_pending = true;  // stop issuing; barrier starts at drain
      }
    }
    if (file_off >= per_file_bytes) barrier_pending = true;  // file-end fsync
  }

  void after_completion() {
    if (barrier_pending) {
      if (outstanding == 0) issue_fsync();
      return;
    }
    pump();
  }

  void issue_fsync() {
    since_fsync = 0;
    // ext3 commit: the journal descriptor+metadata blocks, then the commit
    // record — two ordered synchronous writes, each a full round trip to
    // the platter before the writer may proceed.
    auto self = shared_from_this();
    vm->submit_io(ctx, journal_lba, p->journal_bytes / disk::kSectorBytes,
                  iosched::Dir::kWrite, /*sync=*/true,
                  [this, self](sim::Time, iosched::IoStatus) {
                    vm->submit_io(
                        ctx, journal_lba + p->journal_bytes / disk::kSectorBytes,
                        8, iosched::Dir::kWrite, /*sync=*/true,
                        [this, self2 = self](sim::Time, iosched::IoStatus) {
                          barrier_pending = false;
                          if (file_off >= per_file_bytes) {
                            open_next_file();
                          } else {
                            pump();
                          }
                        });
                  });
  }
};

}  // namespace

SeqWriteResult run_seq_writers(sim::Simulator& simr, virt::PhysicalHost& host,
                               const SeqWriteParams& p) {
  assert(host.vm_count() > 0);
  SeqWriteResult res;
  res.per_vm_done.assign(host.vm_count(), sim::Time::zero());

  const std::int64_t total =
      p.bytes_per_vm * static_cast<std::int64_t>(host.vm_count());
  auto bytes_done = std::make_shared<std::int64_t>(0);

  for (std::size_t v = 0; v < host.vm_count(); ++v) {
    auto w = std::make_shared<Writer>();
    w->simr = &simr;
    w->vm = &host.vm(v);
    w->ctx = 100 + v;  // one "process" per VM
    w->p = &p;
    w->per_file_bytes = p.bytes_per_vm / p.files;
    w->on_vm_done = [&res, v](sim::Time t) { res.per_vm_done[v] = t; };
    w->on_bytes = [&p, bytes_done, total](std::int64_t b) {
      *bytes_done += b;
      if (p.on_progress) p.on_progress(*bytes_done, total);
    };
    w->start();
  }

  simr.run();
  res.elapsed = simr.now();
  return res;
}

}  // namespace iosim::workloads
