#include "workloads/benchmarks.hpp"

namespace iosim::workloads {

WorkloadModel wordcount() {
  WorkloadModel w;
  w.name = "wordcount";
  w.map_output_ratio = 0.05;    // combiner collapses (word,1) pairs in memory
  w.reduce_output_ratio = 0.9;  // counts per word; tiny in absolute terms
  // Tokenize + hash + combine in a 2009-era JVM: genuinely CPU-bound maps
  // (the paper observes only a 1.5% spread across pairs for wordcount —
  // the disk is mostly idle).
  w.map_cpu_ns_per_byte = 300.0;
  w.sort_cpu_ns_per_byte = 6.0;
  w.reduce_cpu_ns_per_byte = 10.0;
  w.combiner = true;
  return w;
}

WorkloadModel wordcount_no_combiner() {
  WorkloadModel w;
  w.name = "wordcount-nocombiner";
  w.map_output_ratio = 1.7;     // every (word, 1) pair is spilled
  w.reduce_output_ratio = 0.03; // reduced to per-word counts
  w.map_cpu_ns_per_byte = 250.0;
  w.sort_cpu_ns_per_byte = 6.0;
  w.reduce_cpu_ns_per_byte = 8.0;
  w.combiner = false;
  return w;
}

WorkloadModel stream_sort() {
  WorkloadModel w;
  w.name = "sort";
  w.map_output_ratio = 1.0;     // identity map
  w.reduce_output_ratio = 1.0;  // identity reduce
  w.map_cpu_ns_per_byte = 6.0;
  w.sort_cpu_ns_per_byte = 5.0;
  w.reduce_cpu_ns_per_byte = 5.0;
  w.combiner = false;
  return w;
}

JobConf make_job(const WorkloadModel& w, std::int64_t input_bytes_per_vm) {
  JobConf c;
  c.workload = w;
  c.input_bytes_per_vm = input_bytes_per_vm;
  return c;
}

std::optional<WorkloadModel> by_name(const std::string& name) {
  if (name == "sort") return stream_sort();
  if (name == "wordcount" || name == "wc") return wordcount();
  if (name == "wc-nocombiner" || name == "wcnc" || name == "wordcount-nocombiner") {
    return wordcount_no_combiner();
  }
  return std::nullopt;
}

}  // namespace iosim::workloads
