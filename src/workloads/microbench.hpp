// iosim: sysbench- and dd-style microbenchmark drivers.
//
// These reproduce the request generators behind the paper's Fig. 1
// (sysbench fileio seqwr: per-VM process sequentially writing 1 GB across
// 16 files) and Section IV-B's switch-cost methodology (dd: 600 MB of
// zeroes written in parallel on every VM of one physical machine).
//
// sysbench seqwr's defaults matter for the shape: 16 KB write requests and
// an fsync every 100 requests. Each fsync is a synchronous barrier — the
// writer stalls until its outstanding data and a journal commit reach the
// platter. Under consolidation those barriers wait behind the *other* VMs'
// queued data, which is what makes the slowdown superlinear in the number
// of VMs (the paper's 3.5x / 8.5x at 2 / 3 VMs).
#pragma once

#include <functional>
#include <vector>

#include "virt/physical_host.hpp"

namespace iosim::workloads {

struct SeqWriteParams {
  /// Bytes each VM writes in total.
  std::int64_t bytes_per_vm = 1024LL * 1024 * 1024;
  /// Number of files the stream is split across (sysbench --file-num=16).
  /// Each file is a separate extent, so file boundaries cause a seek.
  int files = 16;
  /// Write request size (sysbench --file-block-size default 16 KB).
  std::int64_t io_unit_bytes = 16 * 1024;
  /// Outstanding write bios per VM. sysbench+ext3 semantics: writes land
  /// in the page cache and the whole inter-fsync batch flushes at the
  /// barrier, so the effective window equals the fsync interval.
  int window = 100;
  /// fsync every N writes (sysbench --file-fsync-freq default 100);
  /// 0 disables periodic fsync (dd-style: one barrier per file).
  int fsync_every = 100;
  /// Journal commit write issued by each fsync (ext3 commit record).
  std::int64_t journal_bytes = 64 * 1024;
  /// Observer: cluster-wide (bytes_done, bytes_total) after every barrier
  /// or file completion. Used by the switch-cost harness to trigger a
  /// mid-run scheduler switch.
  std::function<void(std::int64_t, std::int64_t)> on_progress;
};

struct SeqWriteResult {
  sim::Time elapsed;                   // all VMs finished
  std::vector<sim::Time> per_vm_done;  // per-VM completion times
};

/// Run one sequential writer per VM of `host`; returns once the simulator
/// has drained (all writes and barriers complete). The caller provides the
/// simulator driving the host.
SeqWriteResult run_seq_writers(sim::Simulator& simr, virt::PhysicalHost& host,
                               const SeqWriteParams& p);

/// dd-style parameters: one big file, no periodic fsync, large requests.
inline SeqWriteParams dd_params(std::int64_t bytes_per_vm) {
  SeqWriteParams p;
  p.bytes_per_vm = bytes_per_vm;
  p.files = 8;  // progress checkpoints for the mid-run switch
  p.io_unit_bytes = 256 * 1024;
  // dd dumps into the page cache; writeback floods the elevator with a deep
  // backlog (nr_requests-bound), which is what a mid-run elevator switch has
  // to drain.
  p.window = 64;
  p.fsync_every = 0;
  return p;
}

}  // namespace iosim::workloads
