// iosim: HDFS block placement (Hadoop 0.19 semantics, 2 replicas).
//
// The namespace tracks, for every block of the job input, which VMs hold a
// replica and at which virtual LBA. Placement follows the paper's setup:
// data balanced across all data nodes ("each data node processes 512 MB"),
// 2 replicas per chunk, the second replica preferring a different physical
// host. Readers pick the local replica when one exists — which is the
// common case for map inputs, making map-input reads mostly-local
// sequential I/O, the pattern the paper's analysis leans on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "disk/disk_model.hpp"
#include "sim/random.hpp"

namespace iosim::hdfs {

using disk::Lba;

struct BlockReplica {
  int vm = -1;       // global VM index
  Lba vlba = 0;      // location on that VM's virtual disk
};

struct DfsBlock {
  int id = 0;
  std::int64_t bytes = 0;
  std::vector<BlockReplica> replicas;
};

class Hdfs {
 public:
  /// `alloc` reserves `sectors` in the data zone of VM `vm` and returns the
  /// virtual LBA (wired to DomU::alloc by the cluster builder).
  using AllocFn = std::function<Lba(int vm, Lba sectors)>;

  Hdfs(int n_vms, int vms_per_host, std::uint64_t seed)
      : n_vms_(n_vms), vms_per_host_(vms_per_host), rng_(seed) {}

  int host_of(int vm) const { return vm / vms_per_host_; }

  /// Lay out the job input: `blocks_per_vm` blocks of `block_bytes` with the
  /// primary replica on each VM in turn and the secondary on a VM of a
  /// different host (any other VM when there is a single host).
  std::vector<DfsBlock> create_input(int blocks_per_vm, std::int64_t block_bytes,
                                     const AllocFn& alloc);

  /// Replica a reader on `reader_vm` should use: local if present, else
  /// same-host, else the primary.
  const BlockReplica& pick_replica(const DfsBlock& b, int reader_vm) const;

  /// Failure-aware variant: same local > same-host > primary preference, but
  /// only over replicas whose VM satisfies `alive`. Returns nullptr when
  /// every replica is dead — the caller must surface the loss (a real DFS
  /// client reports BlockMissingException; a job aborts with a diagnostic).
  const BlockReplica* pick_replica_if(const DfsBlock& b, int reader_vm,
                                      const std::function<bool(int)>& alive) const;

  /// Target VM for the off-node replica of a block written by `writer_vm`
  /// (output pipeline). Prefers a different host, round-robin for balance.
  int pick_remote_replica_vm(int writer_vm);

  /// Failure-aware variant: skips VMs failing `alive`. Returns -1 when no
  /// eligible live VM exists (caller falls back to a local-only write).
  int pick_remote_replica_vm(int writer_vm, const std::function<bool(int)>& alive);

 private:
  int n_vms_;
  int vms_per_host_;
  sim::Rng rng_;
  int rr_cursor_ = 0;
};

}  // namespace iosim::hdfs
