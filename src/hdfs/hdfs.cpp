#include "hdfs/hdfs.hpp"

#include <cassert>

#include "check/check.hpp"

namespace iosim::hdfs {

std::vector<DfsBlock> Hdfs::create_input(int blocks_per_vm, std::int64_t block_bytes,
                                         const AllocFn& alloc) {
  std::vector<DfsBlock> blocks;
  blocks.reserve(static_cast<std::size_t>(blocks_per_vm) * static_cast<std::size_t>(n_vms_));
  const Lba sectors = (block_bytes + disk::kSectorBytes - 1) / disk::kSectorBytes;
  int id = 0;
  for (int round = 0; round < blocks_per_vm; ++round) {
    for (int vm = 0; vm < n_vms_; ++vm) {
      DfsBlock b;
      b.id = id++;
      b.bytes = block_bytes;
      b.replicas.push_back({vm, alloc(vm, sectors)});
      // Second replica on a different host when possible.
      int other;
      if (n_vms_ > vms_per_host_) {
        do {
          other = static_cast<int>(rng_.below(static_cast<std::uint64_t>(n_vms_)));
        } while (host_of(other) == host_of(vm));
      } else if (n_vms_ > 1) {
        do {
          other = static_cast<int>(rng_.below(static_cast<std::uint64_t>(n_vms_)));
        } while (other == vm);
      } else {
        other = vm;  // degenerate single-VM cluster: both replicas local
      }
      b.replicas.push_back({other, alloc(other, sectors)});
      if (auto* ck = check::auditor()) {
        // Hdfs runs before the clock starts (input layout precedes the job),
        // so the timestamp is simply t=0.
        ck->on_block_created(b.id, static_cast<int>(b.replicas.size()),
                             b.replicas[0].vm, b.replicas[1].vm, n_vms_,
                             /*t_ns=*/0);
      }
      blocks.push_back(std::move(b));
    }
  }
  return blocks;
}

const BlockReplica& Hdfs::pick_replica(const DfsBlock& b, int reader_vm) const {
  const auto* r = pick_replica_if(b, reader_vm, [](int) { return true; });
  assert(r != nullptr && "block has no replicas");
  return *r;
}

const BlockReplica* Hdfs::pick_replica_if(const DfsBlock& b, int reader_vm,
                                          const std::function<bool(int)>& alive) const {
  for (const auto& r : b.replicas) {
    if (r.vm == reader_vm && alive(r.vm)) return &r;
  }
  for (const auto& r : b.replicas) {
    if (host_of(r.vm) == host_of(reader_vm) && alive(r.vm)) return &r;
  }
  for (const auto& r : b.replicas) {
    if (alive(r.vm)) return &r;
  }
  return nullptr;
}

int Hdfs::pick_remote_replica_vm(int writer_vm) {
  return pick_remote_replica_vm(writer_vm, [](int) { return true; });
}

int Hdfs::pick_remote_replica_vm(int writer_vm,
                                 const std::function<bool(int)>& alive) {
  if (n_vms_ <= 1) return alive(writer_vm) ? writer_vm : -1;
  for (int tries = 0; tries < n_vms_; ++tries) {
    const int cand = rr_cursor_++ % n_vms_;
    if (cand == writer_vm) continue;
    if (!alive(cand)) continue;
    if (n_vms_ > vms_per_host_ && host_of(cand) == host_of(writer_vm)) continue;
    return cand;
  }
  // Rack preference can't be met — take any live VM other than the writer.
  for (int off = 1; off < n_vms_; ++off) {
    const int cand = (writer_vm + off) % n_vms_;
    if (alive(cand)) return cand;
  }
  return -1;
}

}  // namespace iosim::hdfs
