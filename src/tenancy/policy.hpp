// iosim: pluggable JobTracker slot-allocation policies.
//
// PolicyArbiter is the cluster-wide slot ledger behind mapred::SlotArbiter:
// it tracks per-VM in-use counts (the physical TaskTracker capacity) and
// per-job holdings, and computes each job's cluster-wide entitlement from
// the installed policy:
//
//   * FIFO (Hadoop's default JobQueueTaskScheduler): jobs ordered by
//     (priority desc, arrival asc) take as many slots as they can use;
//     later jobs get what is left.
//   * Fair (the Fair Scheduler): slots are water-filled across jobs one at
//     a time, each round granting the job with the smallest
//     granted/weight ratio (ties by arrival), capped by its demand —
//     weighted max-min fairness, work-conserving by construction.
//   * Capacity (the Capacity Scheduler): every class owns a guaranteed
//     fraction of the cluster's slots (floor(share * M); all-zero shares
//     mean an equal split), handed out FIFO within the class; slots a class
//     leaves idle are lent to other classes in class order.
//
// Entitlements are recomputed from live demand on every can_acquire query —
// a pure function of the registered jobs' (held, pending) state, so the
// same event order always grants the same slots (the determinism contract
// of the SlotArbiter seam). Demand is pulled through per-job callbacks
// instead of Job pointers so the policies unit-test without a cluster.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mapred/slot_arbiter.hpp"
#include "tenancy/stream_spec.hpp"

namespace iosim::sim {
class Simulator;
}

namespace iosim::tenancy {

class PolicyArbiter final : public mapred::SlotArbiter {
 public:
  /// `simr` (optional) timestamps the auditor's slot events.
  PolicyArbiter(Policy policy, int n_vms, int map_slots_per_vm,
                int reduce_slots_per_vm, sim::Simulator* simr = nullptr);

  /// Unassigned demand of a job: map tasks waiting for a slot
  /// (reduce=false) or launched-but-unstarted reducers (reduce=true).
  using DemandFn = std::function<int(bool reduce)>;

  /// Register a job. `order` is the admission sequence number (FIFO ties).
  void admit(int job_id, int class_index, int priority, double weight,
             int order, DemandFn demand);
  /// Per-class guaranteed fractions for the Capacity policy, indexed by
  /// class_index. Unset or all-zero = equal split.
  void set_class_shares(std::vector<double> shares);

  /// Fires after every slot release — the stream engine's work-conservation
  /// signal (freed capacity may now belong to a different job's quota).
  std::function<void()> on_release;

  // mapred::SlotArbiter
  bool can_acquire_map(int job_id, int vm) const override;
  void acquire_map(int job_id, int vm) override;
  void release_map(int job_id, int vm) override;
  bool can_acquire_reduce(int job_id, int vm) const override;
  void acquire_reduce(int job_id, int vm) override;
  void release_reduce(int job_id, int vm) override;
  void retire_job(int job_id) override;

  /// The job's current cluster-wide entitlement under the policy (held +
  /// grantable). Exposed for the hand-computed policy tests.
  int quota(int job_id, bool reduce) const;

  int held(int job_id, bool reduce) const;
  int in_use(int vm, bool reduce) const {
    return reduce ? reduce_in_use_[static_cast<std::size_t>(vm)]
                  : map_in_use_[static_cast<std::size_t>(vm)];
  }
  Policy policy() const { return policy_; }

 private:
  struct Entry {
    int job_id = 0;
    int class_index = 0;
    int priority = 0;
    double weight = 1.0;
    int order = 0;
    bool live = true;
    DemandFn demand;
    int map_held = 0;
    int reduce_held = 0;
    // Per-VM holdings, so retiring a dead job returns slots on exactly the
    // VMs it occupied (a greedy drain would corrupt other jobs' VM counts).
    std::vector<int> map_held_vm;
    std::vector<int> reduce_held_vm;
  };

  Entry& entry_of(int job_id);
  const Entry* find(int job_id) const;
  std::int64_t now_ns() const;

  /// Water-fill / greedy entitlement of every live job for one slot type;
  /// returns grants indexed like jobs_.
  std::vector<int> compute_grants(bool reduce) const;

  Policy policy_;
  int n_vms_;
  int map_slots_per_vm_;
  int reduce_slots_per_vm_;
  sim::Simulator* simr_;
  std::vector<double> class_shares_;
  std::vector<Entry> jobs_;
  std::vector<int> map_in_use_;     // per VM
  std::vector<int> reduce_in_use_;  // per VM
};

}  // namespace iosim::tenancy
