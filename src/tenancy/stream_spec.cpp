#include "tenancy/stream_spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "iosched/pair.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim::tenancy {

namespace {

/// Shortest %g that round-trips the double (same contract as the scenario
/// grammar's seconds_to_string, so canonical text is stable).
std::string num_to_string(double v) {
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

bool fail(std::string* err, std::string msg) {
  if (err != nullptr) *err = std::move(msg);
  return false;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t at = s.find(sep, pos);
    if (at == std::string::npos) {
      out.push_back(s.substr(pos));
      break;
    }
    out.push_back(s.substr(pos, at - pos));
    pos = at + 1;
  }
  return out;
}

bool parse_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_int(const std::string& s, int* out) {
  double v = 0.0;
  if (!parse_double(s, &v)) return false;
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v) return false;
  *out = i;
  return true;
}

/// Splits "key=value"; returns false when there is no '='.
bool keyval(const std::string& field, std::string* key, std::string* val) {
  const std::size_t eq = field.find('=');
  if (eq == std::string::npos) return false;
  *key = field.substr(0, eq);
  *val = field.substr(eq + 1);
  return true;
}

bool parse_arrive(const std::vector<std::string>& fields, StreamSpec* spec,
                  bool* seen, std::string* err) {
  if (*seen) return fail(err, "stream: duplicate arrive segment");
  *seen = true;
  if (fields.size() < 2) return fail(err, "stream: arrive needs a kind");
  const std::string& kind = fields[1];
  if (kind == "poisson") {
    spec->arrival = ArrivalKind::kPoisson;
    for (std::size_t i = 2; i < fields.size(); ++i) {
      std::string k, v;
      if (!keyval(fields[i], &k, &v)) {
        return fail(err, "stream: bad arrive field '" + fields[i] + "'");
      }
      if (k == "rate") {
        if (!parse_double(v, &spec->rate_hz) || spec->rate_hz <= 0.0) {
          return fail(err, "stream: rate must be a positive number, got '" + v + "'");
        }
      } else if (k == "jobs") {
        if (!parse_int(v, &spec->n_jobs) || spec->n_jobs < 1) {
          return fail(err, "stream: jobs must be a positive integer, got '" + v + "'");
        }
      } else {
        return fail(err, "stream: unknown arrive key '" + k + "'");
      }
    }
    return true;
  }
  if (kind == "trace") {
    spec->arrival = ArrivalKind::kTrace;
    bool have_t = false;
    for (std::size_t i = 2; i < fields.size(); ++i) {
      std::string k, v;
      if (!keyval(fields[i], &k, &v)) {
        return fail(err, "stream: bad arrive field '" + fields[i] + "'");
      }
      if (k != "t") return fail(err, "stream: unknown arrive key '" + k + "'");
      have_t = true;
      double prev = -1.0;
      for (const std::string& tok : split(v, ':')) {
        double t = 0.0;
        if (!parse_double(tok, &t) || t < 0.0) {
          return fail(err, "stream: bad arrival time '" + tok + "'");
        }
        if (t < prev) return fail(err, "stream: arrival times must be sorted");
        prev = t;
        spec->trace_times_s.push_back(t);
      }
    }
    if (!have_t || spec->trace_times_s.empty()) {
      return fail(err, "stream: trace arrivals need t=<t0:t1:...>");
    }
    return true;
  }
  return fail(err, "stream: unknown arrival kind '" + kind + "'");
}

bool parse_class(const std::vector<std::string>& fields, StreamSpec* spec,
                 std::string* err) {
  ClassSpec c;
  bool have_name = false, have_mb = false;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    std::string k, v;
    if (!keyval(fields[i], &k, &v)) {
      return fail(err, "stream: bad class field '" + fields[i] + "'");
    }
    if (k == "name") {
      if (v.empty()) return fail(err, "stream: empty class name");
      c.name = v;
      have_name = true;
    } else if (k == "wl") {
      const auto w = workloads::by_name(v);
      if (!w) return fail(err, "stream: unknown workload '" + v + "'");
      c.workload = w->name;  // canonical ("wc" -> "wordcount")
    } else if (k == "mb") {
      const std::size_t dash = v.find('-');
      const std::string lo = dash == std::string::npos ? v : v.substr(0, dash);
      const std::string hi = dash == std::string::npos ? v : v.substr(dash + 1);
      if (!parse_int(lo, &c.mb_min) || !parse_int(hi, &c.mb_max) ||
          c.mb_min < 1 || c.mb_max < c.mb_min) {
        return fail(err, "stream: bad class size range '" + v + "'");
      }
      have_mb = true;
    } else if (k == "alpha") {
      if (!parse_double(v, &c.alpha) || c.alpha <= 0.0) {
        return fail(err, "stream: alpha must be positive, got '" + v + "'");
      }
    } else if (k == "weight") {
      if (!parse_double(v, &c.weight) || c.weight <= 0.0) {
        return fail(err, "stream: weight must be positive, got '" + v + "'");
      }
    } else if (k == "prio") {
      if (!parse_int(v, &c.priority)) {
        return fail(err, "stream: bad priority '" + v + "'");
      }
    } else if (k == "share") {
      if (!parse_double(v, &c.share) || c.share < 0.0 || c.share > 1.0) {
        return fail(err, "stream: share must be in [0,1], got '" + v + "'");
      }
    } else if (k == "deadline") {
      if (!parse_double(v, &c.deadline_s) || c.deadline_s < 0.0) {
        return fail(err, "stream: deadline must be >= 0, got '" + v + "'");
      }
    } else if (k == "mix") {
      if (!parse_double(v, &c.mix) || c.mix <= 0.0) {
        return fail(err, "stream: mix must be positive, got '" + v + "'");
      }
    } else {
      return fail(err, "stream: unknown class key '" + k + "'");
    }
  }
  if (!have_name) return fail(err, "stream: class needs name=");
  if (!have_mb) return fail(err, "stream: class needs mb=");
  for (const ClassSpec& other : spec->classes) {
    if (other.name == c.name) {
      return fail(err, "stream: duplicate class name '" + c.name + "'");
    }
  }
  spec->classes.push_back(std::move(c));
  return true;
}

bool parse_admit(const std::vector<std::string>& fields, StreamSpec* spec,
                 bool* seen, std::string* err) {
  if (*seen) return fail(err, "stream: duplicate admit segment");
  *seen = true;
  bool have_active = false;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    std::string k, v;
    if (!keyval(fields[i], &k, &v)) {
      return fail(err, "stream: bad admit field '" + fields[i] + "'");
    }
    if (k == "active") {
      if (!parse_int(v, &spec->max_active) || spec->max_active < 1) {
        return fail(err, "stream: active must be a positive integer, got '" + v + "'");
      }
      have_active = true;
    } else if (k == "queue") {
      if (!parse_int(v, &spec->max_queue) || spec->max_queue < 0) {
        return fail(err, "stream: queue must be >= 0, got '" + v + "'");
      }
    } else if (k == "retries") {
      if (!parse_int(v, &spec->job_retries) || spec->job_retries < 0) {
        return fail(err, "stream: retries must be >= 0, got '" + v + "'");
      }
    } else if (k == "backoff") {
      if (!parse_double(v, &spec->retry_backoff_s) || spec->retry_backoff_s < 0.0) {
        return fail(err, "stream: backoff must be >= 0, got '" + v + "'");
      }
    } else {
      return fail(err, "stream: unknown admit key '" + k + "'");
    }
  }
  if (!have_active) return fail(err, "stream: admit needs active=<n>");
  return true;
}

bool valid_pair_code(const std::string& code) {
  return code.size() == 2 &&
         iosched::scheduler_from_string(std::string(1, code[0])).has_value() &&
         iosched::scheduler_from_string(std::string(1, code[1])).has_value();
}

bool parse_meta(const std::vector<std::string>& fields, StreamSpec* spec,
                bool* seen, std::string* err) {
  if (*seen) return fail(err, "stream: duplicate meta segment");
  *seen = true;
  MetaSpec m;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    std::string k, v;
    if (!keyval(fields[i], &k, &v)) {
      return fail(err, "stream: bad meta field '" + fields[i] + "'");
    }
    if (k == "policy") {
      const auto p = meta_policy_by_name(v);
      if (!p || *p == MetaPolicy::kNone) {
        return fail(err, "stream: unknown meta policy '" + v +
                             "' (static|offline|ucb|egreedy)");
      }
      m.policy = *p;
    } else if (k == "explore") {
      if (!parse_double(v, &m.explore) || m.explore < 0.0 || m.explore > 100.0) {
        return fail(err, "stream: explore must be in [0,100], got '" + v + "'");
      }
    } else if (k == "decay") {
      if (!parse_double(v, &m.decay) || m.decay <= 0.0 || m.decay > 1.0) {
        return fail(err, "stream: decay must be in (0,1], got '" + v + "'");
      }
    } else if (k == "budget") {
      if (!parse_int(v, &m.budget) || m.budget < 1 ||
          m.budget > iosched::kNumSchedulerPairs) {
        return fail(err, "stream: budget must be in 1..16, got '" + v + "'");
      }
    } else if (k == "pair") {
      if (!valid_pair_code(v)) {
        return fail(err, "stream: bad meta pair '" + v + "' (two of n/d/a/c)");
      }
      m.pair = v;
    } else if (k == "profile") {
      if (v.empty()) return fail(err, "stream: empty meta profile class");
      m.profile = v;
    } else {
      return fail(err, "stream: unknown meta key '" + k + "'");
    }
  }
  if (m.policy == MetaPolicy::kNone) {
    return fail(err, "stream: meta needs policy=<static|offline|ucb|egreedy>");
  }
  if (!m.pair.empty() && m.policy != MetaPolicy::kStatic) {
    return fail(err, "stream: meta pair= is only valid with policy=static");
  }
  if (!m.profile.empty() && m.policy != MetaPolicy::kOffline) {
    return fail(err, "stream: meta profile= is only valid with policy=offline");
  }
  if ((m.explore >= 0.0 || m.decay >= 0.0 || m.budget > 0) &&
      (m.policy == MetaPolicy::kStatic || m.policy == MetaPolicy::kOffline)) {
    return fail(err,
                "stream: explore/decay/budget are only valid with ucb|egreedy");
  }
  spec->meta = std::move(m);
  return true;
}

}  // namespace

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kFifo: return "fifo";
    case Policy::kFair: return "fair";
    case Policy::kCapacity: return "capacity";
  }
  return "?";
}

std::optional<Policy> policy_by_name(const std::string& name) {
  if (name == "fifo") return Policy::kFifo;
  if (name == "fair") return Policy::kFair;
  if (name == "capacity") return Policy::kCapacity;
  return std::nullopt;
}

const char* to_string(MetaPolicy p) {
  switch (p) {
    case MetaPolicy::kNone: return "none";
    case MetaPolicy::kStatic: return "static";
    case MetaPolicy::kOffline: return "offline";
    case MetaPolicy::kUcb: return "ucb";
    case MetaPolicy::kEgreedy: return "egreedy";
  }
  return "?";
}

std::optional<MetaPolicy> meta_policy_by_name(const std::string& name) {
  if (name == "none") return MetaPolicy::kNone;
  if (name == "static") return MetaPolicy::kStatic;
  if (name == "offline") return MetaPolicy::kOffline;
  if (name == "ucb") return MetaPolicy::kUcb;
  if (name == "egreedy") return MetaPolicy::kEgreedy;
  return std::nullopt;
}

std::optional<StreamSpec> StreamSpec::parse(const std::string& text,
                                            std::string* err) {
  StreamSpec spec;
  spec.n_jobs = 0;  // defaults re-established by the arrive segment
  bool seen_arrive = false, seen_policy = false, seen_admit = false,
       seen_meta = false;
  for (const std::string& seg : split(text, ';')) {
    if (seg.empty()) {
      fail(err, "stream: empty segment");
      return std::nullopt;
    }
    const auto fields = split(seg, ',');
    const std::string& kind = fields[0];
    if (kind == "arrive") {
      if (!parse_arrive(fields, &spec, &seen_arrive, err)) return std::nullopt;
    } else if (kind == "class") {
      if (!parse_class(fields, &spec, err)) return std::nullopt;
    } else if (kind == "admit") {
      if (!parse_admit(fields, &spec, &seen_admit, err)) return std::nullopt;
    } else if (kind == "meta") {
      if (!parse_meta(fields, &spec, &seen_meta, err)) return std::nullopt;
    } else if (kind == "policy") {
      if (seen_policy) {
        fail(err, "stream: duplicate policy segment");
        return std::nullopt;
      }
      seen_policy = true;
      if (fields.size() != 2) {
        fail(err, "stream: policy takes exactly one value");
        return std::nullopt;
      }
      const auto p = policy_by_name(fields[1]);
      if (!p) {
        fail(err, "stream: unknown policy '" + fields[1] + "'");
        return std::nullopt;
      }
      spec.policy = *p;
    } else {
      fail(err, "stream: unknown segment kind '" + kind + "'");
      return std::nullopt;
    }
  }
  if (!seen_arrive) {
    fail(err, "stream: missing arrive segment");
    return std::nullopt;
  }
  if (spec.arrival == ArrivalKind::kPoisson && spec.n_jobs < 1) {
    fail(err, "stream: poisson arrivals need jobs=<n>");
    return std::nullopt;
  }
  if (spec.classes.empty()) {
    fail(err, "stream: at least one class segment required");
    return std::nullopt;
  }
  if (!spec.meta.profile.empty()) {
    // Checked after the loop so a meta segment may precede the class list.
    bool found = false;
    for (const ClassSpec& c : spec.classes) found = found || c.name == spec.meta.profile;
    if (!found) {
      fail(err, "stream: meta profile names unknown class '" + spec.meta.profile + "'");
      return std::nullopt;
    }
  }
  return spec;
}

std::string StreamSpec::to_string() const {
  std::string s = "arrive,";
  if (arrival == ArrivalKind::kPoisson) {
    s += "poisson,rate=" + num_to_string(rate_hz) + ",jobs=" +
         std::to_string(n_jobs);
  } else {
    s += "trace,t=";
    for (std::size_t i = 0; i < trace_times_s.size(); ++i) {
      if (i > 0) s += ':';
      s += num_to_string(trace_times_s[i]);
    }
  }
  for (const ClassSpec& c : classes) {
    s += ";class,name=" + c.name + ",wl=" + c.workload + ",mb=" +
         std::to_string(c.mb_min) + "-" + std::to_string(c.mb_max) +
         ",alpha=" + num_to_string(c.alpha) +
         ",weight=" + num_to_string(c.weight) +
         ",prio=" + std::to_string(c.priority) +
         ",share=" + num_to_string(c.share) +
         ",deadline=" + num_to_string(c.deadline_s) +
         ",mix=" + num_to_string(c.mix);
  }
  if (max_active > 0) {
    s += ";admit,active=" + std::to_string(max_active) +
         ",queue=" + std::to_string(max_queue);
    if (job_retries > 0) s += ",retries=" + std::to_string(job_retries);
    if (retry_backoff_s != 5.0) s += ",backoff=" + num_to_string(retry_backoff_s);
  }
  // Rendered only when enabled, so meta-free streams keep their canonical
  // text — and therefore every scenario fingerprint and pinned digest —
  // unchanged. Optional fields render only when explicitly set (the parse
  // sentinels survive the round trip).
  if (meta.enabled()) {
    s += ";meta,policy=";
    s += tenancy::to_string(meta.policy);
    if (meta.explore >= 0.0) s += ",explore=" + num_to_string(meta.explore);
    if (meta.decay >= 0.0) s += ",decay=" + num_to_string(meta.decay);
    if (meta.budget > 0) s += ",budget=" + std::to_string(meta.budget);
    if (!meta.pair.empty()) s += ",pair=" + meta.pair;
    if (!meta.profile.empty()) s += ",profile=" + meta.profile;
  }
  s += ";policy,";
  s += tenancy::to_string(policy);
  return s;
}

}  // namespace iosim::tenancy
