#include "tenancy/arrival.hpp"

#include <cmath>

#include "sim/random.hpp"

namespace iosim::tenancy {

namespace {

/// Sub-stream indices under the run seed. Disjoint from the per-job task
/// seeds, which StreamRunner derives at kJobSeedBase and up.
constexpr std::uint64_t kArrivalStream = 1;
constexpr std::uint64_t kShapeStream = 2;

int pick_class(const StreamSpec& spec, sim::Rng& rng) {
  double total = 0.0;
  for (const ClassSpec& c : spec.classes) total += c.mix;
  double x = rng.uniform() * total;
  for (std::size_t i = 0; i < spec.classes.size(); ++i) {
    x -= spec.classes[i].mix;
    if (x < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(spec.classes.size()) - 1;  // fp edge: last class
}

int pick_size_mb(const ClassSpec& c, sim::Rng& rng) {
  if (c.mb_min == c.mb_max) return c.mb_min;
  const double v = bounded_pareto(rng.uniform(), static_cast<double>(c.mb_min),
                                  static_cast<double>(c.mb_max), c.alpha);
  const auto mb = static_cast<int>(std::lround(v));
  return mb < c.mb_min ? c.mb_min : (mb > c.mb_max ? c.mb_max : mb);
}

}  // namespace

double bounded_pareto(double u, double lo, double hi, double alpha) {
  // Inverse CDF of the Pareto truncated to [lo, hi]:
  //   F(x) = (1 - (lo/x)^a) / (1 - (lo/hi)^a)
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::vector<PlannedJob> plan_arrivals(const StreamSpec& spec, std::uint64_t seed) {
  sim::Rng arrival_rng(sim::derive_run_seed(seed, kArrivalStream));
  sim::Rng shape_rng(sim::derive_run_seed(seed, kShapeStream));

  std::vector<PlannedJob> plan;
  const int n = spec.job_count();
  plan.reserve(static_cast<std::size_t>(n));
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    PlannedJob j;
    if (spec.arrival == ArrivalKind::kTrace) {
      j.t_arrive_s = spec.trace_times_s[static_cast<std::size_t>(i)];
    } else {
      t += arrival_rng.exponential(1.0 / spec.rate_hz);
      j.t_arrive_s = t;
    }
    j.class_index = spec.classes.size() > 1 ? pick_class(spec, shape_rng) : 0;
    j.size_mb = pick_size_mb(spec.classes[static_cast<std::size_t>(j.class_index)],
                             shape_rng);
    plan.push_back(j);
  }
  return plan;
}

}  // namespace iosim::tenancy
