#include "tenancy/policy.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "check/check.hpp"
#include "sim/simulator.hpp"

namespace iosim::tenancy {

PolicyArbiter::PolicyArbiter(Policy policy, int n_vms, int map_slots_per_vm,
                             int reduce_slots_per_vm, sim::Simulator* simr)
    : policy_(policy), n_vms_(n_vms), map_slots_per_vm_(map_slots_per_vm),
      reduce_slots_per_vm_(reduce_slots_per_vm), simr_(simr),
      map_in_use_(static_cast<std::size_t>(n_vms), 0),
      reduce_in_use_(static_cast<std::size_t>(n_vms), 0) {}

void PolicyArbiter::admit(int job_id, int class_index, int priority,
                          double weight, int order, DemandFn demand) {
  Entry e;
  e.job_id = job_id;
  e.class_index = class_index;
  e.priority = priority;
  e.weight = weight > 0.0 ? weight : 1.0;
  e.order = order;
  e.demand = std::move(demand);
  e.map_held_vm.assign(static_cast<std::size_t>(n_vms_), 0);
  e.reduce_held_vm.assign(static_cast<std::size_t>(n_vms_), 0);
  jobs_.push_back(std::move(e));
}

void PolicyArbiter::set_class_shares(std::vector<double> shares) {
  class_shares_ = std::move(shares);
}

PolicyArbiter::Entry& PolicyArbiter::entry_of(int job_id) {
  for (Entry& e : jobs_) {
    if (e.job_id == job_id) return e;
  }
  assert(false && "slot traffic from a job the arbiter never admitted");
  static Entry orphan;
  return orphan;
}

const PolicyArbiter::Entry* PolicyArbiter::find(int job_id) const {
  for (const Entry& e : jobs_) {
    if (e.job_id == job_id) return &e;
  }
  return nullptr;
}

std::int64_t PolicyArbiter::now_ns() const {
  return simr_ != nullptr ? simr_->now().ns() : 0;
}

std::vector<int> PolicyArbiter::compute_grants(bool reduce) const {
  const int total =
      n_vms_ * (reduce ? reduce_slots_per_vm_ : map_slots_per_vm_);
  std::vector<int> grants(jobs_.size(), 0);

  // Want = what the job is already holding plus its unassigned demand; a
  // grant may never land below the holding (no preemption — over-quota
  // jobs just stop acquiring).
  std::vector<int> want(jobs_.size(), 0);
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const Entry& e = jobs_[i];
    if (!e.live) continue;
    const int held = reduce ? e.reduce_held : e.map_held;
    const int pending = e.demand ? e.demand(reduce) : 0;
    want[i] = held + (pending > 0 ? pending : 0);
    if (want[i] > 0) live.push_back(i);
  }
  int remaining = total;

  const auto grant_upto = [&](std::size_t i, int cap) {
    const int g = std::min({want[i] - grants[i], cap, remaining});
    if (g <= 0) return 0;
    grants[i] += g;
    remaining -= g;
    return g;
  };

  switch (policy_) {
    case Policy::kFifo: {
      // Priority order, arrival breaking ties; each job takes all it can.
      std::vector<std::size_t> order = live;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (jobs_[a].priority != jobs_[b].priority) {
          return jobs_[a].priority > jobs_[b].priority;
        }
        return jobs_[a].order < jobs_[b].order;
      });
      for (std::size_t i : order) grant_upto(i, total);
      break;
    }
    case Policy::kFair: {
      // Weighted max-min water-fill, one slot per round to the job with the
      // lowest granted/weight ratio (cross-multiplied; ties by arrival).
      while (remaining > 0) {
        std::size_t best = jobs_.size();
        for (std::size_t i : live) {
          if (grants[i] >= want[i]) continue;
          if (best == jobs_.size()) {
            best = i;
            continue;
          }
          const double lhs = grants[i] * jobs_[best].weight;
          const double rhs = grants[best] * jobs_[i].weight;
          if (lhs < rhs || (lhs == rhs && jobs_[i].order < jobs_[best].order)) {
            best = i;
          }
        }
        if (best == jobs_.size()) break;  // all demand satisfied
        grants[best] += 1;
        --remaining;
      }
      break;
    }
    case Policy::kCapacity: {
      // Guaranteed floor(share * total) per class, FIFO within the class;
      // unused capacity is then lent across classes in class order.
      int n_classes = static_cast<int>(class_shares_.size());
      for (std::size_t i : live) {
        n_classes = std::max(n_classes, jobs_[i].class_index + 1);
      }
      if (n_classes == 0) break;
      const double share_sum = std::accumulate(
          class_shares_.begin(), class_shares_.end(), 0.0);
      std::vector<int> guaranteed(static_cast<std::size_t>(n_classes), 0);
      for (int c = 0; c < n_classes; ++c) {
        const double share =
            share_sum > 0.0
                ? (c < static_cast<int>(class_shares_.size()) ? class_shares_[static_cast<std::size_t>(c)] : 0.0) /
                      share_sum
                : 1.0 / n_classes;
        guaranteed[static_cast<std::size_t>(c)] =
            static_cast<int>(share * total);
      }
      std::vector<std::size_t> order = live;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (jobs_[a].class_index != jobs_[b].class_index) {
          return jobs_[a].class_index < jobs_[b].class_index;
        }
        return jobs_[a].order < jobs_[b].order;
      });
      for (std::size_t i : order) {
        auto& budget = guaranteed[static_cast<std::size_t>(jobs_[i].class_index)];
        budget -= grant_upto(i, budget);
      }
      // Borrowing pass: whatever the guarantees left idle, in class order.
      for (std::size_t i : order) grant_upto(i, total);
      break;
    }
  }
  return grants;
}

int PolicyArbiter::quota(int job_id, bool reduce) const {
  const std::vector<int> grants = compute_grants(reduce);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].job_id == job_id) return grants[i];
  }
  return 0;
}

int PolicyArbiter::held(int job_id, bool reduce) const {
  const Entry* e = find(job_id);
  return e == nullptr ? 0 : (reduce ? e->reduce_held : e->map_held);
}

bool PolicyArbiter::can_acquire_map(int job_id, int vm) const {
  if (map_in_use_[static_cast<std::size_t>(vm)] >= map_slots_per_vm_) {
    return false;
  }
  const Entry* e = find(job_id);
  if (e == nullptr || !e->live) return false;
  return e->map_held < quota(job_id, /*reduce=*/false);
}

void PolicyArbiter::acquire_map(int job_id, int vm) {
  Entry& e = entry_of(job_id);
  ++e.map_held;
  ++e.map_held_vm[static_cast<std::size_t>(vm)];
  const int after = ++map_in_use_[static_cast<std::size_t>(vm)];
  if (auto* ck = check::auditor()) {
    ck->on_slot_acquire(job_id, vm, /*reduce=*/false, after, map_slots_per_vm_,
                        now_ns());
  }
}

void PolicyArbiter::release_map(int job_id, int vm) {
  Entry& e = entry_of(job_id);
  const int before = map_in_use_[static_cast<std::size_t>(vm)];
  if (auto* ck = check::auditor()) {
    ck->on_slot_release(job_id, vm, /*reduce=*/false, before, now_ns());
  }
  --e.map_held;
  --e.map_held_vm[static_cast<std::size_t>(vm)];
  --map_in_use_[static_cast<std::size_t>(vm)];
  if (on_release) on_release();
}

bool PolicyArbiter::can_acquire_reduce(int job_id, int vm) const {
  if (reduce_in_use_[static_cast<std::size_t>(vm)] >= reduce_slots_per_vm_) {
    return false;
  }
  const Entry* e = find(job_id);
  if (e == nullptr || !e->live) return false;
  return e->reduce_held < quota(job_id, /*reduce=*/true);
}

void PolicyArbiter::acquire_reduce(int job_id, int vm) {
  Entry& e = entry_of(job_id);
  ++e.reduce_held;
  ++e.reduce_held_vm[static_cast<std::size_t>(vm)];
  const int after = ++reduce_in_use_[static_cast<std::size_t>(vm)];
  if (auto* ck = check::auditor()) {
    ck->on_slot_acquire(job_id, vm, /*reduce=*/true, after,
                        reduce_slots_per_vm_, now_ns());
  }
}

void PolicyArbiter::release_reduce(int job_id, int vm) {
  Entry& e = entry_of(job_id);
  const int before = reduce_in_use_[static_cast<std::size_t>(vm)];
  if (auto* ck = check::auditor()) {
    ck->on_slot_release(job_id, vm, /*reduce=*/true, before, now_ns());
  }
  --e.reduce_held;
  --e.reduce_held_vm[static_cast<std::size_t>(vm)];
  --reduce_in_use_[static_cast<std::size_t>(vm)];
  if (on_release) on_release();
}

void PolicyArbiter::retire_job(int job_id) {
  Entry* e = nullptr;
  for (Entry& j : jobs_) {
    if (j.job_id == job_id) e = &j;
  }
  if (e == nullptr || !e->live) return;
  e->live = false;
  e->demand = nullptr;
  // An aborted job may die between acquire and release; hand its slots
  // back so the survivors' capacity is not leaked. The per-VM holding
  // ledger says exactly which TaskTrackers they sit on, so the release
  // lands on the right in-use counters.
  const bool leaked = e->map_held > 0 || e->reduce_held > 0;
  auto* ck = check::auditor();
  for (int v = 0; v < n_vms_; ++v) {
    auto& held = e->map_held_vm[static_cast<std::size_t>(v)];
    auto& used = map_in_use_[static_cast<std::size_t>(v)];
    while (held > 0) {
      if (ck != nullptr) {
        ck->on_slot_release(job_id, v, /*reduce=*/false, used, now_ns());
      }
      --used;
      --held;
      --e->map_held;
    }
  }
  for (int v = 0; v < n_vms_; ++v) {
    auto& held = e->reduce_held_vm[static_cast<std::size_t>(v)];
    auto& used = reduce_in_use_[static_cast<std::size_t>(v)];
    while (held > 0) {
      if (ck != nullptr) {
        ck->on_slot_release(job_id, v, /*reduce=*/true, used, now_ns());
      }
      --used;
      --held;
      --e->reduce_held;
    }
  }
  if (leaked && on_release) on_release();
}

}  // namespace iosim::tenancy
