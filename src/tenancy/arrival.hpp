// iosim: open-arrival workload planning — expand a StreamSpec into the
// deterministic list of jobs a run will admit.
//
// All randomness (Poisson interarrival gaps, class draws, heavy-tailed
// input sizes) comes from two dedicated xoshiro256** streams derived from
// the run seed with sim::derive_run_seed, so the plan is a pure function of
// (spec, seed): same seed, same plan, byte for byte — and the plan is
// independent of the per-job task streams, which derive their own seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "tenancy/stream_spec.hpp"

namespace iosim::tenancy {

/// One planned admission, in arrival order.
struct PlannedJob {
  double t_arrive_s = 0.0;
  int class_index = 0;
  /// Sampled input size per data node, MiB.
  int size_mb = 16;
};

/// Deterministic expansion of `spec` under `seed` (the cluster's run seed;
/// the planner derives private sub-streams from it).
std::vector<PlannedJob> plan_arrivals(const StreamSpec& spec, std::uint64_t seed);

/// Bounded-Pareto sample in [lo, hi] with tail index alpha (heavy-tailed
/// job sizes — most jobs small, occasional large ones). Exposed for tests.
double bounded_pareto(double u, double lo, double hi, double alpha);

}  // namespace iosim::tenancy
