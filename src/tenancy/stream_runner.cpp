#include "tenancy/stream_runner.hpp"

#include <algorithm>
#include <cassert>

#include "check/check.hpp"
#include "obs/attribution.hpp"
#include "obs/sketch.hpp"
#include "sim/random.hpp"
#include "trace/trace.hpp"
#include "workloads/benchmarks.hpp"

namespace iosim::tenancy {

namespace {

/// Tenancy milestone instants: names interned lazily at first emission (a
/// tracer that never sees a stream keeps its string table — and therefore
/// every pinned digest — unchanged) and pinned so ring overflow on long
/// streams cannot evict them. iosim-report's job-stream section reads
/// these back by name.
void emit_job_instant(const char* name, int job_id, int class_index,
                      std::int64_t arg, sim::Time now) {
  auto* tr = trace::tracer();
  if (tr == nullptr) return;
  const trace::Str n = tr->intern(name);
  tr->pin_name(n);
  tr->instant(tr->track("tenancy"), n, tr->ids.cat_mapred, now,
              tr->intern("job"), job_id, tr->intern("class"), class_index,
              tr->intern("arg"), arg);
}

}  // namespace

StreamRunner::StreamRunner(cluster::Cluster& cl, std::vector<PlannedEntry> plan,
                           Options opts)
    : cl_(cl), plan_(std::move(plan)), opts_(std::move(opts)) {
  assert(!plan_.empty());
  records_.resize(plan_.size());
  stats_.resize(plan_.size());
  jobs_.resize(plan_.size());
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    StreamJobRecord& r = records_[i];
    r.job_id = static_cast<int>(i);
    r.class_index = plan_[i].class_index;
    r.size_mb = plan_[i].size_mb;
    r.t_arrive_s = opts_.sequential ? 0.0 : plan_[i].t_arrive_s;
  }
  unfinished_ = static_cast<int>(plan_.size());
  if (!opts_.sequential) {
    // Slot capacity is a TaskTracker property, uniform across the stream:
    // taken from the first entry's conf.
    arbiter_ = std::make_unique<PolicyArbiter>(
        opts_.policy, cl_.n_vms(), plan_[0].conf.map_slots,
        plan_[0].conf.reduce_slots, &cl_.simr());
    std::vector<double> shares;
    shares.reserve(opts_.classes.size());
    for (const ClassSpec& c : opts_.classes) shares.push_back(c.share);
    arbiter_->set_class_shares(std::move(shares));
    arbiter_->on_release = [this] { schedule_kick(); };
    phases_.on_cluster_phase = [](int phase) {
      if (auto* at = obs::attribution()) at->set_phase(phase);
    };
  }
}

StreamRunner::~StreamRunner() = default;

void StreamRunner::start() {
  assert(!started_);
  started_ = true;
  if (opts_.sequential) {
    admit(0);
    return;
  }
  if (auto* at = obs::attribution()) at->set_phase(0);
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    const auto idx = static_cast<int>(i);
    cl_.simr().at(sim::Time::from_sec_f(plan_[i].t_arrive_s),
                  [this, idx] { arrive(idx); });
  }
}

int StreamRunner::class_priority(int class_index) const {
  return static_cast<std::size_t>(class_index) < opts_.classes.size()
             ? opts_.classes[static_cast<std::size_t>(class_index)].priority
             : 0;
}

void StreamRunner::arrive(int index) {
  if (!gate_enabled() || active_ < opts_.max_active) {
    admit(index);
    return;
  }
  // Gate full: queue behind it, then shed the worst waiter if the queue
  // overflowed (the newcomer itself may be that waiter).
  const StreamJobRecord& r = records_[static_cast<std::size_t>(index)];
  waiting_.push_back(index);
  emit_job_instant("job_wait", r.job_id, r.class_index, r.size_mb,
                   cl_.simr().now());
  if (static_cast<int>(waiting_.size()) > opts_.max_queue) shed_worst_waiting();
}

void StreamRunner::shed_worst_waiting() {
  assert(!waiting_.empty());
  std::size_t worst = 0;
  for (std::size_t i = 1; i < waiting_.size(); ++i) {
    const int a = waiting_[i], b = waiting_[worst];
    const int pa = class_priority(plan_[static_cast<std::size_t>(a)].class_index);
    const int pb = class_priority(plan_[static_cast<std::size_t>(b)].class_index);
    if (pa < pb || (pa == pb && a > b)) worst = i;  // lowest class, tie newest
  }
  const int victim = waiting_[worst];
  waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(worst));
  StreamJobRecord& r = records_[static_cast<std::size_t>(victim)];
  r.shed = true;
  --unfinished_;
  const sim::Time now = cl_.simr().now();
  if (auto* ck = check::auditor()) ck->on_stream_job_shed(r.job_id, now.ns());
  emit_job_instant("job_shed", r.job_id, r.class_index, r.size_mb, now);
}

void StreamRunner::pump_admissions() {
  if (!gate_enabled()) return;
  while (active_ < opts_.max_active && !waiting_.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < waiting_.size(); ++i) {
      const int a = waiting_[i], b = waiting_[best];
      const int pa = class_priority(plan_[static_cast<std::size_t>(a)].class_index);
      const int pb = class_priority(plan_[static_cast<std::size_t>(b)].class_index);
      if (pa > pb || (pa == pb && a < b)) best = i;  // highest class, tie oldest
    }
    const int next = waiting_[best];
    waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(best));
    admit(next);
  }
}

void StreamRunner::admit(int index) {
  const PlannedEntry& e = plan_[static_cast<std::size_t>(index)];
  auto& slot = jobs_[static_cast<std::size_t>(index)];
  slot = std::make_unique<mapred::Job>(cl_.env(), e.conf, e.seed);
  mapred::Job* job = slot.get();

  if (opts_.sequential) {
    // Legacy chain semantics: default identity, no arbiter, next job
    // admitted inside this one's completion (byte-compat with the old
    // chain runner — the pinned chain digest holds the line).
    if (opts_.setup) opts_.setup(cl_, *job, index);
    auto prev = std::move(job->on_done);
    job->on_done = [this, index, prev = std::move(prev)](sim::Time t) {
      if (prev) prev(t);
      on_job_finished(index, /*failed=*/false);
      if (static_cast<std::size_t>(index + 1) < plan_.size()) admit(index + 1);
    };
    job->run();
    return;
  }

  ++active_;
  // Plan index for a first admission; a fresh id past the plan for retries,
  // so the superseded attempt's ctx window and auditor account stay closed.
  const int job_id = records_[static_cast<std::size_t>(index)].job_id;
  const std::uint64_t ctx_lo = mapred::ctx::job_window(job_id);
  job->set_identity(job_id, ctx_lo);
  job->set_arbiter(arbiter_.get());
  const bool have_class =
      static_cast<std::size_t>(e.class_index) < opts_.classes.size();
  const ClassSpec* cls = have_class
      ? &opts_.classes[static_cast<std::size_t>(e.class_index)] : nullptr;
  arbiter_->admit(job_id, e.class_index, cls != nullptr ? cls->priority : 0,
                  cls != nullptr ? cls->weight : 1.0, /*order=*/index,
                  [job](bool reduce) {
                    return reduce ? job->queued_reduce_count()
                                  : job->pending_map_count();
                  });
  if (auto* ck = check::auditor()) {
    ck->on_stream_job_admit(job_id, ctx_lo, ctx_lo + mapred::ctx::kJobWindowSize,
                            cl_.simr().now().ns());
  }
  phases_.job_admitted(job_id);
  if (opts_.setup) opts_.setup(cl_, *job, index);

  // Chain onto (never over) whatever the setup hook installed.
  auto prev_maps = std::move(job->on_maps_done);
  job->on_maps_done = [this, job_id, prev = std::move(prev_maps)](sim::Time t) {
    if (prev) prev(t);
    phases_.job_phase(job_id, 1);
  };
  auto prev_shuffle = std::move(job->on_shuffle_done);
  job->on_shuffle_done = [this, job_id, prev = std::move(prev_shuffle)](sim::Time t) {
    if (prev) prev(t);
    phases_.job_phase(job_id, 2);
  };
  auto prev_done = std::move(job->on_done);
  job->on_done = [this, index, prev = std::move(prev_done)](sim::Time t) {
    if (prev) prev(t);
    on_job_finished(index, /*failed=*/false);
  };
  auto prev_failed = std::move(job->on_failed);
  job->on_failed = [this, index, prev = std::move(prev_failed)](
                       sim::Time t, const std::string& why) {
    if (prev) prev(t, why);
    on_job_finished(index, /*failed=*/true);
  };

  emit_job_instant("job_admit", job_id, e.class_index, e.size_mb,
                   cl_.simr().now());
  job->run();
  schedule_kick();  // a new tenant may shrink others' quotas; rescan anyway
}

void StreamRunner::on_job_finished(int index, bool failed) {
  StreamJobRecord& r = records_[static_cast<std::size_t>(index)];
  assert(!r.completed && !r.failed && "job finished twice");
  const sim::Time now = cl_.simr().now();
  if (!opts_.sequential) --active_;

  mapred::Job* job = jobs_[static_cast<std::size_t>(index)].get();
  if (!opts_.sequential && failed && r.retries < opts_.job_retries &&
      job->failed_on_dead_vm()) {
    // The attempt died with its host, not on its own merits: retire this
    // incarnation and re-admit a fresh one through the gate after the
    // backoff. The record stays open (neither completed nor failed).
    ++r.retries;
    const int old_id = r.job_id;
    phases_.job_retired(old_id);
    arbiter_->retire_job(old_id);
    if (auto* ck = check::auditor()) ck->on_stream_job_retire(old_id, now.ns());
    emit_job_instant("job_retry", old_id, r.class_index, r.retries, now);
    superseded_jobs_.push_back(
        std::move(jobs_[static_cast<std::size_t>(index)]));
    r.job_id = static_cast<int>(plan_.size()) + retry_seq_++;
    cl_.simr().after(sim::Time::from_sec_f(opts_.retry_backoff_s),
                     [this, index] { arrive(index); });
    pump_admissions();
    schedule_kick();
    return;
  }

  r.t_done_s = now.sec();
  r.completed = !failed;
  r.failed = failed;
  r.sojourn_s = r.t_done_s - r.t_arrive_s;
  stats_[static_cast<std::size_t>(index)] =
      jobs_[static_cast<std::size_t>(index)]->stats();
  --unfinished_;
  if (opts_.sequential) return;

  const int job_id = r.job_id;
  if (static_cast<std::size_t>(r.class_index) < opts_.classes.size()) {
    const double deadline = opts_.classes[static_cast<std::size_t>(r.class_index)].deadline_s;
    r.sla_violated = sla_violated(failed, r.sojourn_s, deadline);
  }
  phases_.job_retired(job_id);
  arbiter_->retire_job(job_id);  // no-op after an abort's own retirement
  if (auto* ck = check::auditor()) {
    ck->on_stream_job_retire(job_id, now.ns());
  }
  emit_job_instant(failed ? "job_fail" : "job_done", job_id, r.class_index,
                   static_cast<std::int64_t>(r.sojourn_s * 1e3), now);
  pump_admissions();
  schedule_kick();
}

void StreamRunner::schedule_kick() {
  if (kick_pending_ || opts_.sequential) return;
  kick_pending_ = true;
  // Coalesce: every release in the current event settles into one rescan,
  // in admission order (deterministic regardless of which release fired
  // first inside the event).
  cl_.simr().after(sim::Time::zero(), [this] {
    kick_pending_ = false;
    for (auto& j : jobs_) {
      if (j) j->kick();
    }
  });
}

const mapred::JobStats& StreamRunner::job_stats(int index) const {
  return stats_[static_cast<std::size_t>(index)];
}

StreamResult StreamRunner::finish() {
  StreamResult out;
  out.stop = cl_.simr().stop_reason();
  const bool drained = out.stop == sim::StopReason::kDrained;
  if (!opts_.sequential) {
    if (auto* ck = check::auditor()) {
      check::verify_simulator(*ck, cl_.simr(), drained);
      if (drained) ck->verify_end_of_run(cl_.simr().now().ns());
    }
  }
  if (unfinished_ > 0) {
    // A drained queue with unfinished jobs is a deadlock in open mode (a
    // failed job still fires on_failed); in sequential mode it is the old
    // chain-stall behavior and the caller's assert handles it.
    assert((!drained || opts_.sequential) &&
           "jobs unfinished on a drained stream");
    out.ok = false;
    out.error = std::to_string(unfinished_) + " job(s) unfinished (" +
                sim::to_string(out.stop) + ") after " +
                std::to_string(cl_.simr().executed()) + " events at t=" +
                cl_.simr().now().to_string();
  }

  double first_arrive = 0.0, last_done = 0.0;
  bool any = false;
  for (const StreamJobRecord& r : records_) {
    out.jobs.push_back(r);
    if (r.completed) ++out.jobs_completed;
    if (r.failed) ++out.jobs_failed;
    if (r.sla_violated) ++out.sla_violations;
    if (r.shed) ++out.jobs_shed;
    out.jobs_retried += r.retries;
    if (r.completed || r.failed) {
      if (!any || r.t_arrive_s < first_arrive) first_arrive = r.t_arrive_s;
      if (!any || r.t_done_s > last_done) last_done = r.t_done_s;
      any = true;
    }
  }
  if (any) out.makespan_s = last_done - first_arrive;

  // Per-class sojourn distributions over completed jobs, through the same
  // integer-ns QuantileSketch as the attribution layer: deterministic and
  // mergeable, so sweep workers can fold partial streams exactly.
  out.classes.resize(opts_.classes.size());
  std::vector<obs::QuantileSketch> sketches(opts_.classes.size());
  for (std::size_t c = 0; c < opts_.classes.size(); ++c) {
    out.classes[c].name = opts_.classes[c].name;
  }
  for (const StreamJobRecord& r : records_) {
    if (static_cast<std::size_t>(r.class_index) >= out.classes.size()) continue;
    ClassOutcome& co = out.classes[static_cast<std::size_t>(r.class_index)];
    ++co.jobs;
    if (r.shed) {
      ++co.shed;
      continue;
    }
    if (r.failed) ++co.failed;
    if (r.sla_violated) ++co.sla_violations;
    if (!r.completed) continue;
    ++co.completed;
    sketches[static_cast<std::size_t>(r.class_index)].record(
        static_cast<std::int64_t>(r.sojourn_s * 1e9));
  }
  for (std::size_t c = 0; c < out.classes.size(); ++c) {
    const obs::QuantileSketch& sk = sketches[c];
    if (sk.count() == 0) continue;
    ClassOutcome& co = out.classes[c];
    co.p50_s = static_cast<double>(sk.quantile(0.50)) / 1e9;
    co.p95_s = static_cast<double>(sk.quantile(0.95)) / 1e9;
    co.p99_s = static_cast<double>(sk.quantile(0.99)) / 1e9;
    co.mean_s = static_cast<double>(sk.sum()) / static_cast<double>(sk.count()) / 1e9;
  }

  if (const auto* ms = cl_.membership()) {
    const auto& mc = ms->counters();
    out.blocks_repaired = static_cast<long long>(mc.blocks_repaired);
    out.blocks_lost = static_cast<long long>(mc.blocks_lost);
    out.repair_mb = static_cast<double>(mc.repair_bytes) / (1024.0 * 1024.0);
  }
  return out;
}

StreamResult run_stream(const cluster::ClusterConfig& cfg, const StreamSpec& spec,
                        const StreamSetupHook& setup) {
  const std::vector<PlannedJob> plan = plan_arrivals(spec, cfg.seed);
  std::vector<StreamRunner::PlannedEntry> entries;
  entries.reserve(plan.size());
  for (std::size_t j = 0; j < plan.size(); ++j) {
    const ClassSpec& cls = spec.classes[static_cast<std::size_t>(plan[j].class_index)];
    const auto model = workloads::by_name(cls.workload);
    assert(model.has_value() && "StreamSpec::parse vets workload names");
    StreamRunner::PlannedEntry e;
    e.t_arrive_s = plan[j].t_arrive_s;
    e.conf = workloads::make_job(*model,
                                 static_cast<std::int64_t>(plan[j].size_mb) * mapred::kMiB);
    e.seed = sim::derive_run_seed(cfg.seed, kJobSeedBase + j);
    e.class_index = plan[j].class_index;
    e.size_mb = plan[j].size_mb;
    e.deadline_s = cls.deadline_s;
    entries.push_back(std::move(e));
  }

  cluster::Cluster cl(cfg);
  cl.simr().set_budget(cfg.budget);
  StreamRunner::Options opts;
  opts.sequential = false;
  opts.policy = spec.policy;
  opts.classes = spec.classes;
  opts.setup = setup;
  opts.max_active = spec.max_active;
  opts.max_queue = spec.max_queue;
  opts.job_retries = spec.job_retries;
  opts.retry_backoff_s = spec.retry_backoff_s;
  StreamRunner sr(cl, std::move(entries), std::move(opts));
  sr.start();
  cl.simr().run();
  return sr.finish();
}

}  // namespace iosim::tenancy
