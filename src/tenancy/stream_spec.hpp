// iosim: the job-stream specification — multi-tenant workload grammar.
//
// A StreamSpec describes an open-arrival MapReduce workload: how jobs
// arrive (deterministic Poisson process or an explicit arrival trace), what
// classes of jobs the stream mixes (each class names a workload model, an
// input-size range with heavy-tailed sampling, and its scheduling
// attributes: FIFO priority, fair-share weight, capacity share, SLA
// deadline), and which JobTracker slot-allocation policy arbitrates the
// cluster's map/reduce slots between co-running jobs.
//
// The grammar is a single line so it embeds as one `stream=` value in an
// exp::ScenarioSpec: segments separated by ';', fields by ','. The first
// field of a segment selects its kind:
//
//   arrive,poisson,rate=0.02,jobs=8      open arrivals, rate in jobs/sec
//   arrive,trace,t=0:5.5:30              explicit arrival times (seconds)
//   class,name=batch,wl=sort,mb=16-64[,weight=1][,prio=0][,share=0]
//        [,deadline=0][,mix=1][,alpha=1.5]
//   policy,fifo|fair|capacity
//   admit,active=4,queue=8[,retries=1][,backoff=5]
//        overload protection: at most `active` jobs running concurrently,
//        at most `queue` waiting for admission; arrivals beyond both shed
//        the lowest-priority waiting job. `retries` re-admits jobs that
//        failed because their host was declared dead, after `backoff`
//        seconds.
//   meta,policy=static|offline|ucb|egreedy[,explore=][,decay=][,budget=]
//        [,pair=][,profile=]
//        pair-selection policy for the run (core/online_scheduler.hpp):
//        `static` pins the boot pair for the whole stream (`pair=` overrides
//        the scenario's boot pair — the static-arm baseline); `offline` runs
//        the paper's Algorithm 1 once on a side cluster (profiling the class
//        named by `profile=`, default the first class) and replays the
//        resulting per-phase schedule at cluster-phase changes; `ucb` /
//        `egreedy` learn pair quality online from live throughput (UCB1 /
//        epsilon-greedy-with-aging; `explore` is the UCB width or initial
//        epsilon, `decay` the estimate-aging factor, `budget` the per-phase
//        exploration budget in distinct arms). No meta segment means no
//        controller at all — byte-identical to the pre-meta stream engine.
//
// Parsing is all-or-nothing with diagnostics (the fuzz contract shared
// with ScenarioSpec and FaultPlan), and to_string() renders the canonical
// form: parse(s.to_string()) reproduces to_string() byte for byte.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace iosim::tenancy {

/// One tenant class: jobs of this class share a workload shape and the
/// scheduling attributes the policies read.
struct ClassSpec {
  std::string name;
  /// Workload model, canonical workloads::by_name key.
  std::string workload = "sort";
  /// Input size per data node, sampled per job from [mb_min, mb_max] MiB
  /// with a bounded-Pareto tail (heavy-tailed job sizes; alpha is the tail
  /// index, smaller = heavier). mb_min == mb_max pins the size.
  int mb_min = 16;
  int mb_max = 16;
  double alpha = 1.5;
  /// Fair policy: relative share weight (> 0).
  double weight = 1.0;
  /// FIFO policy: higher priority schedules first (ties by arrival).
  int priority = 0;
  /// Capacity policy: guaranteed fraction of cluster slots. All-zero
  /// shares mean equal split across classes.
  double share = 0.0;
  /// SLA deadline on job sojourn time (arrival -> completion), seconds;
  /// 0 = no deadline.
  double deadline_s = 0.0;
  /// Arrival mix weight: probability mass of this class when drawing the
  /// class of the next arriving job (> 0).
  double mix = 1.0;
};

enum class ArrivalKind : std::uint8_t { kPoisson = 0, kTrace };
enum class Policy : std::uint8_t { kFifo = 0, kFair, kCapacity };

const char* to_string(Policy p);
std::optional<Policy> policy_by_name(const std::string& name);

/// Pair-selection policy for a run (the `meta` segment). kNone means "no
/// controller": the grammar and the runtime behave exactly as before the
/// segment existed. The tenancy layer only carries the parsed data — the
/// controllers themselves live in core/online_scheduler.hpp (core links
/// tenancy, never the reverse).
enum class MetaPolicy : std::uint8_t { kNone = 0, kStatic, kOffline, kUcb, kEgreedy };

const char* to_string(MetaPolicy p);
std::optional<MetaPolicy> meta_policy_by_name(const std::string& name);

struct MetaSpec {
  MetaPolicy policy = MetaPolicy::kNone;
  /// Exploration strength: UCB confidence width, or the initial epsilon of
  /// epsilon-greedy. < 0 means "policy default".
  double explore = -1.0;
  /// Aging factor in (0, 1]: epsilon decay per pull (egreedy) and the
  /// estimate discount applied on fault/membership events (both policies).
  /// < 0 means "policy default".
  double decay = -1.0;
  /// Per-phase exploration budget: at most this many distinct arms are
  /// force-explored per cluster phase. 0 means "policy default".
  int budget = 0;
  /// static only: two-letter boot-pair override (e.g. "ad"); empty keeps
  /// the scenario's pair axis.
  std::string pair;
  /// offline only: name of the class to profile; empty profiles the first
  /// class. A profile that names a minority class models a stale/unseen
  /// profiling corpus.
  std::string profile;

  bool enabled() const { return policy != MetaPolicy::kNone; }
};

struct StreamSpec {
  ArrivalKind arrival = ArrivalKind::kPoisson;
  /// Poisson arrival rate, jobs per second (> 0).
  double rate_hz = 0.01;
  /// Poisson: number of jobs to admit.
  int n_jobs = 4;
  /// Trace arrivals: sorted arrival times in seconds (one job each).
  std::vector<double> trace_times_s;
  std::vector<ClassSpec> classes;
  Policy policy = Policy::kFifo;

  /// Overload protection (the `admit` segment). max_active == 0 disables
  /// the admission gate entirely (every arrival is admitted immediately,
  /// the historical behaviour).
  int max_active = 0;
  /// Bound on the waiting queue once the gate is full; an arrival beyond
  /// both bounds sheds the lowest-priority (tie: newest) waiting job.
  int max_queue = 0;
  /// Re-admissions granted to a job that failed because the VM hosting it
  /// was declared dead (not for ordinary task-attempt exhaustion).
  int job_retries = 0;
  /// Delay before such a re-admission, seconds.
  double retry_backoff_s = 5.0;

  /// Pair-selection policy (the `meta` segment); MetaPolicy::kNone when the
  /// stream has no meta segment.
  MetaSpec meta;

  int job_count() const {
    return arrival == ArrivalKind::kTrace ? static_cast<int>(trace_times_s.size())
                                          : n_jobs;
  }

  /// All-or-nothing parse of the single-line grammar above. nullopt on any
  /// error; `err` (optional) receives the diagnostic.
  static std::optional<StreamSpec> parse(const std::string& text,
                                         std::string* err = nullptr);

  /// Canonical single-line rendering (round-trips through parse()).
  std::string to_string() const;
};

}  // namespace iosim::tenancy
