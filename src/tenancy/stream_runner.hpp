// iosim: the multi-tenant stream engine — an open-arrival MapReduce cluster.
//
// StreamRunner owns the job-sequencing machinery for every multi-job run in
// the repo. Two modes share it:
//
//   * Open arrivals (run_stream): jobs arrive at planned times on a live
//     cluster and *contend* — for map/reduce slots through a PolicyArbiter
//     (FIFO / Fair / Capacity), for HDFS, and for the shared platter
//     underneath every VM. Each job gets a private identity: its own task
//     seed (derived from the run seed), its own elevator-context window
//     (mapred::ctx::job_window — CFQ's per-process queues and the
//     anticipation heuristics key on ctx, so cross-job ctx collisions would
//     merge think-time histories), per-job auditor accounts, and per-class
//     sojourn sketches for the SLA report.
//   * Sequential chains (cluster::run_job_chain delegates here): the
//     degenerate back-to-back stream — job k+1 is admitted inside job k's
//     completion, no arbiter, legacy identity (job_id 0, ctx_base 0).
//     Byte-identical to the pre-stream chain runner; the pinned chain
//     digest in trace_digest_test enforces that.
//
// Determinism: admissions are simulator events at planned times, the plan
// is a pure function of (spec, seed), per-job task streams use
// derive_run_seed(seed, kJobSeedBase + index), and work-conservation kicks
// are coalesced into a single deferred event that re-scans jobs in
// admission order — same seed, byte-identical trace, any worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "mapred/job.hpp"
#include "tenancy/arrival.hpp"
#include "tenancy/phase_agg.hpp"
#include "tenancy/policy.hpp"
#include "tenancy/stream_spec.hpp"

namespace iosim::tenancy {

/// First derive_run_seed index used for per-job task streams (indices below
/// are reserved: 0 unused, 1 arrivals, 2 job shapes).
inline constexpr std::uint64_t kJobSeedBase = 16;

/// The SLA predicate, factored out so edge cases are testable in isolation:
/// a deadline of 0 disables the check, and a sojourn *exactly equal* to the
/// deadline is NOT a violation (strict >). Failed jobs with a deadline
/// always violate.
inline bool sla_violated(bool failed, double sojourn_s, double deadline_s) {
  return deadline_s > 0.0 && (failed || sojourn_s > deadline_s);
}

/// One job's outcome in the stream.
struct StreamJobRecord {
  /// Stream job id: the plan index, except that a retried job gets a fresh
  /// id (plan size + retry sequence) so its elevator-context window and
  /// auditor account never collide with the aborted attempt's.
  int job_id = 0;
  int class_index = 0;
  int size_mb = 0;
  double t_arrive_s = 0.0;
  double t_done_s = 0.0;
  /// Arrival -> completion (the SLA metric). 0 until the job finishes.
  double sojourn_s = 0.0;
  bool completed = false;
  bool failed = false;
  bool sla_violated = false;
  /// Rejected by the admission gate before ever running (overload shed;
  /// never counted as failed or as an SLA violation).
  bool shed = false;
  /// Re-admissions consumed after an attempt died with its host.
  int retries = 0;
};

/// Per-class aggregate over the stream's completed jobs.
struct ClassOutcome {
  std::string name;
  int jobs = 0;
  int completed = 0;
  int failed = 0;
  int shed = 0;
  int sla_violations = 0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double mean_s = 0.0;
};

struct StreamResult {
  /// False only on infrastructure failure (event budget tripped with jobs
  /// still unfinished). Individual job aborts keep ok=true, mirroring how
  /// fault runs report.
  bool ok = true;
  std::string error;
  sim::StopReason stop = sim::StopReason::kDrained;
  /// First arrival -> last completion (wall time of the whole stream).
  double makespan_s = 0.0;
  int jobs_completed = 0;
  int jobs_failed = 0;
  int sla_violations = 0;
  /// Overload protection and self-healing counters (all zero on an
  /// unbounded, fault-free stream).
  int jobs_shed = 0;
  int jobs_retried = 0;
  long long blocks_repaired = 0;
  long long blocks_lost = 0;
  double repair_mb = 0.0;
  std::vector<StreamJobRecord> jobs;
  std::vector<ClassOutcome> classes;
};

/// Per-job hook, invoked after construction and identity setup, before
/// run(): (cluster, job, stream index).
using StreamSetupHook = std::function<void(cluster::Cluster&, mapred::Job&, int)>;

/// Run the open-arrival stream described by `spec` on a cluster built from
/// `cfg`. The plan (arrival times, classes, sizes) derives from cfg.seed.
StreamResult run_stream(const cluster::ClusterConfig& cfg, const StreamSpec& spec,
                        const StreamSetupHook& setup = {});

/// The sequencing engine itself — exposed for the chain-compat shim and
/// tests that need custom plans.
class StreamRunner {
 public:
  struct PlannedEntry {
    double t_arrive_s = 0.0;
    mapred::JobConf conf;
    std::uint64_t seed = 0;
    int class_index = 0;
    int size_mb = 0;
    double deadline_s = 0.0;
  };

  struct Options {
    /// Chain mode: admit entry k+1 when entry k completes, with legacy
    /// single-job identity and no arbiter (byte-compat with the old chain
    /// runner). t_arrive_s is ignored.
    bool sequential = false;
    Policy policy = Policy::kFifo;
    /// Class attributes for the arbiter / SLA report; may be empty in
    /// sequential mode.
    std::vector<ClassSpec> classes;
    StreamSetupHook setup;
    /// Overload protection (StreamSpec's admit segment). max_active == 0
    /// disables the gate; every arrival is admitted immediately.
    int max_active = 0;
    int max_queue = 0;
    /// Re-admissions for jobs whose abort traces to a declared-dead host.
    int job_retries = 0;
    double retry_backoff_s = 5.0;
  };

  StreamRunner(cluster::Cluster& cl, std::vector<PlannedEntry> plan, Options opts);
  ~StreamRunner();
  StreamRunner(const StreamRunner&) = delete;
  StreamRunner& operator=(const StreamRunner&) = delete;

  /// Schedule every admission (or admit job 0, in sequential mode). The
  /// caller then drives cl.simr().run().
  void start();

  /// Collect results and run end-of-run verification. Call once, after the
  /// simulator returned.
  StreamResult finish();

  const mapred::JobStats& job_stats(int index) const;

 private:
  void arrive(int index);
  void admit(int index);
  void shed_worst_waiting();
  void pump_admissions();
  void on_job_finished(int index, bool failed);
  void schedule_kick();
  bool gate_enabled() const { return !opts_.sequential && opts_.max_active > 0; }
  int class_priority(int class_index) const;

  cluster::Cluster& cl_;
  std::vector<PlannedEntry> plan_;
  Options opts_;
  std::unique_ptr<PolicyArbiter> arbiter_;  // null in sequential mode
  PhaseAggregator phases_;
  std::vector<std::unique_ptr<mapred::Job>> jobs_;  // indexed like plan_
  /// Aborted attempts superseded by a retry. Membership and fault callbacks
  /// capture raw Job pointers, so superseded objects must outlive the run.
  std::vector<std::unique_ptr<mapred::Job>> superseded_jobs_;
  std::vector<StreamJobRecord> records_;
  std::vector<mapred::JobStats> stats_;
  std::vector<int> waiting_;  // plan indices queued behind the gate
  bool kick_pending_ = false;
  int unfinished_ = 0;
  int active_ = 0;      // jobs admitted and not yet finished
  int retry_seq_ = 0;   // fresh job_ids for retried attempts
  bool started_ = false;
};

}  // namespace iosim::tenancy
