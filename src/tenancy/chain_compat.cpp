// iosim: cluster::run_job_chain, rehosted on the stream engine.
//
// The chain API predates multi-tenancy; it survives because the
// meta-scheduler, the chain tests, and ext_job_chain all speak it. The
// sequencing logic itself now lives in tenancy::StreamRunner's sequential
// mode — this translation unit only adapts the types. Byte-compat is load
// bearing: per-job seeds, admission inside the predecessor's on_done, and
// legacy identity are all preserved, and the pinned chain digest in
// trace_digest_test holds the line.
#include <cassert>

#include "cluster/chain_runner.hpp"
#include "sim/random.hpp"
#include "tenancy/stream_runner.hpp"

namespace iosim::cluster {

ChainResult run_job_chain(const ClusterConfig& cfg,
                          const std::vector<mapred::JobConf>& confs,
                          const ChainSetupHook& setup) {
  assert(!confs.empty());
  Cluster cl(cfg);
  std::vector<tenancy::StreamRunner::PlannedEntry> plan;
  plan.reserve(confs.size());
  for (std::size_t i = 0; i < confs.size(); ++i) {
    tenancy::StreamRunner::PlannedEntry e;
    e.conf = confs[i];
    e.seed = cfg.seed ^ (0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(i));
    plan.push_back(std::move(e));
  }
  tenancy::StreamRunner::Options opts;
  opts.sequential = true;
  opts.setup = setup;
  tenancy::StreamRunner sr(cl, std::move(plan), std::move(opts));
  sr.start();
  cl.simr().run();
  const tenancy::StreamResult res = sr.finish();

  ChainResult r;
  for (std::size_t i = 0; i < confs.size(); ++i) {
    if (res.jobs[i].completed) {
      r.jobs.push_back(sr.job_stats(static_cast<int>(i)));
    }
  }
  assert(r.jobs.size() == confs.size() && "chain did not complete");
  r.seconds = cl.simr().now().sec();
  return r;
}

ChainResult run_job_chain_avg(const ClusterConfig& cfg,
                              const std::vector<mapred::JobConf>& confs,
                              int n_seeds, const ChainSetupHook& setup) {
  assert(n_seeds > 0);
  ChainResult acc;
  for (int i = 0; i < n_seeds; ++i) {
    ClusterConfig c = cfg;
    c.seed = sim::derive_run_seed(cfg.seed, static_cast<std::uint64_t>(i));
    ChainResult r = run_job_chain(c, confs, setup);
    if (i == 0) acc.jobs = r.jobs;
    acc.seconds += r.seconds;
  }
  acc.seconds /= n_seeds;
  return acc;
}

}  // namespace iosim::cluster
