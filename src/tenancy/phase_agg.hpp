// iosim: cluster-wide phase inference across co-running jobs.
//
// The paper's meta-scheduler keys its (Dom0, DomU) elevator choice on the
// job's MapReduce phase. With one job per cluster the phase is the job's
// phase; with an open-arrival stream the disks serve a *mixture* — job A
// may be spilling map output while job B shuffles. PhaseAggregator folds
// the live jobs' phases into one per-cluster phase: the modal phase over
// running jobs, ties resolved toward the earlier phase (map < shuffle <
// reduce — the conservative choice, since map-phase I/O dominates a mixed
// disk's access pattern). The stream engine feeds the result to
// obs::Attribution::set_phase and, optionally, to an adaptive per-phase
// pair switch.
#pragma once

#include <functional>
#include <vector>

namespace iosim::tenancy {

class PhaseAggregator {
 public:
  /// Fires when the aggregate phase changes (0 = map, 1 = shuffle,
  /// 2 = reduce). Never fires twice for the same value.
  std::function<void(int)> on_cluster_phase;

  void job_admitted(int job_id) { jobs_.push_back({job_id, 0}); recompute(); }
  void job_phase(int job_id, int phase) {
    for (auto& [id, ph] : jobs_) {
      if (id == job_id) ph = phase;
    }
    recompute();
  }
  void job_retired(int job_id) {
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      if (jobs_[i].first == job_id) {
        jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    recompute();
  }

  int cluster_phase() const { return current_; }
  int live_jobs() const { return static_cast<int>(jobs_.size()); }

 private:
  void recompute() {
    if (jobs_.empty()) return;  // hold the last phase through idle gaps
    int counts[3] = {0, 0, 0};
    for (const auto& [id, ph] : jobs_) {
      if (ph >= 0 && ph <= 2) ++counts[ph];
    }
    int best = 0;
    for (int p = 1; p < 3; ++p) {
      if (counts[p] > counts[best]) best = p;  // strict: ties keep earlier
    }
    if (best != current_) {
      current_ = best;
      if (on_cluster_phase) on_cluster_phase(current_);
    }
  }

  std::vector<std::pair<int, int>> jobs_;  // (job_id, phase), admission order
  int current_ = 0;
};

}  // namespace iosim::tenancy
