#include "blk/block_layer.hpp"

#include <algorithm>
#include <cassert>

#include "check/check.hpp"
#include "obs/attribution.hpp"
#include "trace/trace.hpp"

namespace iosim::blk {

namespace {
bool remove_entry(std::vector<detail::ObserverList::Entry>& v, std::uint64_t id) {
  auto it = std::find_if(v.begin(), v.end(),
                         [id](const auto& e) { return e.id == id; });
  if (it == v.end()) return false;
  v.erase(it);
  return true;
}
}  // namespace

bool ObserverHandle::remove() {
  auto list = list_.lock();
  if (!list || id_ == 0) return false;
  const bool removed = remove_entry(list->completion, id_) ||
                       remove_entry(list->dispatch, id_);
  id_ = 0;
  return removed;
}

bool ObserverHandle::active() const {
  auto list = list_.lock();
  if (!list || id_ == 0) return false;
  auto has = [this](const std::vector<detail::ObserverList::Entry>& v) {
    return std::any_of(v.begin(), v.end(),
                       [this](const auto& e) { return e.id == id_; });
  };
  return has(list->completion) || has(list->dispatch);
}

BlockLayer::BlockLayer(sim::Simulator& simr, RequestSink& sink, BlockLayerConfig cfg)
    : simr_(simr), sink_(sink), cfg_(std::move(cfg)),
      observers_(std::make_shared<detail::ObserverList>()) {
  sched_ = iosched::make_scheduler(cfg_.scheduler, cfg_.tunables);
  sink_.set_on_complete([this](Request* rq, Time now) { on_sink_complete(rq, now); });
  sink_.set_on_ready([this](Time) { kick(); });
  if (auto* tr = trace::tracer()) {
    // Zero-duration installation span: the elevator this layer boots with.
    // Runtime switches appear as B/E spans around the drain+freeze window.
    tr->complete(tr->track(cfg_.name), tr->ids.elv_switch, tr->ids.cat_blk,
                 simr_.now(), simr_.now(), tr->ids.target,
                 static_cast<std::int64_t>(cfg_.scheduler));
  }
}

ObserverHandle BlockLayer::add_completion_observer(Observer fn) {
  const std::uint64_t id = observers_->next_id++;
  observers_->completion.push_back({id, std::move(fn)});
  return ObserverHandle{observers_, id};
}

ObserverHandle BlockLayer::add_dispatch_observer(Observer fn) {
  const std::uint64_t id = observers_->next_id++;
  observers_->dispatch.push_back({id, std::move(fn)});
  return ObserverHandle{observers_, id};
}

void BlockLayer::submit(Bio bio) {
  assert(bio.sectors > 0);
  assert(bio.sectors <= cfg_.max_request_sectors);

  // The queue is stopped during an elevator switch: arriving bios are held
  // back and their submitters stall — the dominant component of the
  // paper's measured switch cost.
  if (draining_ || frozen_) {
    held_.push_back(std::move(bio));
    account_busy();
    return;
  }

  ++counters_.bios_submitted;
  const Time now = simr_.now();
  if (auto* ck = check::auditor()) {
    ck->on_bio_submitted(this, cfg_.name, bio.ctx, now.ns());
  }
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track(cfg_.name), tr->ids.bio_submit, tr->ids.cat_blk, now,
                tr->ids.lba, bio.lba, tr->ids.sectors, bio.sectors);
  }

  // Dom0 arrival stamp. Taken before the bio joins/creates a request so the
  // "who was ahead" snapshot excludes the arriving segment itself; the
  // Attribution keeps only the first segment's stamp per guest request.
  if (cfg_.obs_role == obs::LayerRole::kDom0 && bio.attr != obs::kNoAttr) {
    if (auto* at = obs::attribution()) {
      at->on_dom0_arrive(bio.attr, now,
                         queued_by_dir_[static_cast<int>(iosched::Dir::kRead)],
                         queued_by_dir_[static_cast<int>(iosched::Dir::kWrite)],
                         in_flight_);
    }
  }

  // Back-merge: a queued request of the same direction/sync/context ending
  // exactly where this bio starts grows to absorb it (the common sequential
  // pattern; the kernel's dominant merge path).
  if (auto it = merge_idx_.find(bio.lba); it != merge_idx_.end()) {
    Request* rq = it->second;
    if (rq->dir == bio.dir && rq->sync == bio.sync && rq->ctx == bio.ctx &&
        rq->sectors + bio.sectors <= cfg_.max_request_sectors) {
      merge_idx_.erase(it);
      rq->sectors += bio.sectors;
      ++rq->n_bios;
      if (bio.on_complete) rq->completions.push_back(std::move(bio.on_complete));
      // A Dom0 request absorbs the records of every guest request whose
      // segments merged into it (distinct handles only; one guest request
      // contributes many segments).
      if (bio.attr != obs::kNoAttr &&
          std::find(rq->attrs.begin(), rq->attrs.end(), bio.attr) == rq->attrs.end()) {
        rq->attrs.push_back(bio.attr);
      }
      merge_idx_.emplace(rq->end(), rq);
      sched_->note_back_merge(rq);
      ++counters_.back_merges;
      if (auto* tr = trace::tracer()) {
        tr->instant(tr->track(cfg_.name), tr->ids.bio_merge, tr->ids.cat_blk, now,
                    tr->ids.lba, rq->lba, tr->ids.sectors, rq->sectors);
      }
      if (auto* ck = check::auditor()) {
        ck->on_queue_accounting(this, cfg_.name, queued_by_dir_[0],
                                queued_by_dir_[1], sched_->size(), now.ns());
      }
      account_busy();
      return;
    }
  }

  auto rq_owned = std::make_unique<Request>();
  Request* rq = rq_owned.get();
  rq->id = next_rq_id_++;
  rq->lba = bio.lba;
  rq->sectors = bio.sectors;
  rq->dir = bio.dir;
  rq->sync = bio.sync;
  rq->ctx = bio.ctx;
  rq->submit = now;
  if (bio.on_complete) rq->completions.push_back(std::move(bio.on_complete));
  if (cfg_.obs_role == obs::LayerRole::kGuest) {
    // A fresh guest request starts a new attribution record (merged bios
    // ride on it; the record tracks the request, not individual bios).
    if (auto* at = obs::attribution()) {
      rq->attrs.push_back(at->on_submit(cfg_.obs_host, cfg_.obs_vm,
                                        rq->dir == iosched::Dir::kWrite,
                                        rq->sync, rq->lba, rq->sectors, now,
                                        rq->ctx));
    }
  } else if (bio.attr != obs::kNoAttr) {
    rq->attrs.push_back(bio.attr);
  }
  requests_.emplace(rq->id, std::move(rq_owned));
  merge_idx_.emplace(rq->end(), rq);
  ++queued_by_dir_[static_cast<int>(rq->dir)];
  sched_->add(rq, now);
  if (auto* ck = check::auditor()) {
    ck->on_queue_accounting(this, cfg_.name, queued_by_dir_[0],
                            queued_by_dir_[1], sched_->size(), now.ns());
  }
  account_busy();
  kick();
}

void BlockLayer::switch_scheduler(SchedulerKind kind) {
  switch_target_ = kind;
  if (draining_) {
    if (auto* tr = trace::tracer()) {
      tr->instant(tr->track(cfg_.name), tr->ids.elv_retarget, tr->ids.cat_blk,
                  simr_.now(), tr->ids.target, static_cast<std::int64_t>(kind));
    }
    return;  // a switch is already in progress: retarget it
  }
  ++counters_.scheduler_switches;
  draining_ = true;
  if (auto* tr = trace::tracer()) {
    tr->begin(tr->track(cfg_.name), tr->ids.elv_switch, tr->ids.cat_blk,
              simr_.now(), tr->ids.target, static_cast<std::int64_t>(kind));
  }
  // A switch counts as busy time even on an empty queue: the quiesce stalls
  // submitters, and the busy integral must charge that to the switch.
  account_busy();
  // The old discipline keeps dispatching (kick() continues to run) until it
  // and the device are empty; maybe_finish_switch() completes the swap.
  maybe_finish_switch();
}

void BlockLayer::maybe_finish_switch() {
  if (!draining_) return;
  if (!sched_->empty() || in_flight_ > 0) {
    kick();  // keep the drain moving (also re-arms idle wakeups)
    return;
  }
  // Drained: install the new elevator, pay the re-init stall, then release
  // everything that queued up behind the switch.
  draining_ = false;
  sched_ = iosched::make_scheduler(switch_target_, cfg_.tunables);
  merge_idx_.clear();
  frozen_ = true;
  if (auto* tr = trace::tracer()) {
    tr->instant(tr->track(cfg_.name), tr->ids.drain_done, tr->ids.cat_blk,
                simr_.now(), tr->ids.queued, static_cast<std::int64_t>(held_.size()));
  }
  if (wakeup_ev_ != sim::kInvalidEvent) {
    simr_.cancel(wakeup_ev_);
    wakeup_ev_ = sim::kInvalidEvent;
  }
  if (freeze_ev_ != sim::kInvalidEvent) simr_.cancel(freeze_ev_);
  freeze_ev_ = simr_.after(cfg_.switch_freeze, [this] {
    freeze_ev_ = sim::kInvalidEvent;
    frozen_ = false;
    if (auto* tr = trace::tracer()) {
      tr->end(tr->track(cfg_.name), tr->ids.elv_switch, simr_.now());
    }
    std::vector<Bio> held = std::move(held_);
    held_.clear();
    for (auto& bio : held) submit(std::move(bio));
    account_busy();
    kick();
  });
}

void BlockLayer::account_busy() {
  const Time now = simr_.now();
  if (busy_) {
    counters_.busy_ns += static_cast<std::uint64_t>((now - busy_mark_).ns());
  }
  busy_mark_ = now;
  busy_ = in_flight_ > 0 || !sched_->empty() || !held_.empty() || draining_ ||
          frozen_;
}

void BlockLayer::arm_wakeup() {
  const auto t = sched_->wakeup(simr_.now());
  if (!t.has_value()) return;
  if (wakeup_ev_ != sim::kInvalidEvent) simr_.cancel(wakeup_ev_);
  wakeup_ev_ = simr_.at(*t, [this] {
    wakeup_ev_ = sim::kInvalidEvent;
    kick();
  });
}

void BlockLayer::kick() {
  if (frozen_) return;
  while (sink_.can_accept()) {
    Request* rq = sched_->dispatch(simr_.now());
    if (rq == nullptr) {
      if (!sched_->empty()) arm_wakeup();
      return;
    }
    merge_idx_.erase(rq->end());
    ++counters_.requests_dispatched;
    ++in_flight_;
    assert(queued_by_dir_[static_cast<int>(rq->dir)] > 0);
    --queued_by_dir_[static_cast<int>(rq->dir)];
    rq->dispatch = simr_.now();
    if (auto* ck = check::auditor()) {
      ck->on_request_dispatched(this, cfg_.name, rq->id, rq->dispatch.ns());
      ck->on_queue_accounting(this, cfg_.name, queued_by_dir_[0],
                              queued_by_dir_[1], sched_->size(),
                              rq->dispatch.ns());
    }
    if (cfg_.obs_role != obs::LayerRole::kNone && !rq->attrs.empty()) {
      if (auto* at = obs::attribution()) {
        const bool guest = cfg_.obs_role == obs::LayerRole::kGuest;
        for (const auto h : rq->attrs) {
          guest ? at->on_guest_dispatch(h, rq->dispatch)
                : at->on_dom0_dispatch(h, rq->dispatch);
        }
      }
    }
    // Index loop: a callback may register further observers (growing the
    // vector); unregistering from inside a callback is not supported.
    for (std::size_t i = 0; i < observers_->dispatch.size(); ++i) {
      observers_->dispatch[i].fn(*this, *rq, rq->dispatch);
    }
    sink_.submit(rq, simr_.now());
  }
}

void BlockLayer::on_sink_complete(Request* rq, Time now) {
  if (auto* ck = check::auditor()) {
    ck->on_request_completed(this, cfg_.name, rq->id, rq->n_bios,
                             rq->status == iosched::IoStatus::kOk, now.ns());
  }
  assert(in_flight_ > 0);
  --in_flight_;
  ++counters_.requests_completed;
  if (rq->status != iosched::IoStatus::kOk) {
    ++counters_.requests_failed;
    if (auto* tr = trace::tracer()) {
      tr->instant(tr->track(cfg_.name), tr->ids.io_error, tr->ids.cat_blk, now,
                  tr->ids.lba, rq->lba, tr->ids.sectors, rq->sectors);
    }
  }
  counters_.bytes_completed[static_cast<int>(rq->dir)] += rq->bytes();
  sched_->on_complete(*rq, now);
  if (cfg_.obs_role != obs::LayerRole::kNone && !rq->attrs.empty()) {
    // Dom0: stamp media completion (a guest request's last segment wins).
    // Guest: the request is done end to end — fold the waterfall and
    // recycle the record (safe: every Dom0 segment completed before us).
    if (auto* at = obs::attribution()) {
      const bool guest = cfg_.obs_role == obs::LayerRole::kGuest;
      for (const auto h : rq->attrs) {
        guest ? at->on_complete(h, now) : at->on_dom0_complete(h, now);
      }
    }
  }
  if (auto* tr = trace::tracer()) {
    const auto track = tr->track(cfg_.name);
    const bool read = rq->dir == iosched::Dir::kRead;
    // Whole block-layer residence (submit -> complete) ...
    tr->complete(track, read ? tr->ids.rq_read : tr->ids.rq_write, tr->ids.cat_blk,
                 rq->submit, now, tr->ids.lba, rq->lba, tr->ids.sectors, rq->sectors);
    // ... and the in-device portion (dispatch -> complete).
    tr->complete(track, tr->ids.rq_service, tr->ids.cat_blk, rq->dispatch, now,
                 tr->ids.lba, rq->lba);
  }
  for (std::size_t i = 0; i < observers_->completion.size(); ++i) {
    observers_->completion[i].fn(*this, *rq, now);
  }

  // Fire waiter callbacks, then free. Callbacks may submit new bios, so the
  // request is detached from the table first.
  auto it = requests_.find(rq->id);
  assert(it != requests_.end());
  auto owned = std::move(it->second);
  requests_.erase(it);
  for (auto& fn : owned->completions) fn(now, owned->status);

  account_busy();
  if (draining_) {
    maybe_finish_switch();
  } else {
    kick();
  }
}

}  // namespace iosim::blk
