// iosim: the unit of I/O submitted *into* a block layer.
#pragma once

#include <cstdint>

#include "iosched/request.hpp"
#include "obs/attr.hpp"

namespace iosim::blk {

using disk::Lba;
using iosched::Dir;
using iosched::IoStatus;
using sim::Time;

/// A single I/O as issued by a task / filesystem / blkfront. The block layer
/// turns bios into requests, merging adjacent ones exactly like the kernel's
/// back-merge path.
struct Bio {
  Lba lba = 0;
  std::int64_t sectors = 0;
  Dir dir = Dir::kRead;
  /// Synchronous: the issuer waits for completion (reads, O_SYNC writes).
  bool sync = true;
  /// Issuing context (task id in a guest, VM id in Dom0).
  std::uint64_t ctx = 0;
  /// Attribution record handle (obs/attr.hpp); kNoAttr when attribution is
  /// off or the bio is outside the DomU->Dom0 path. Guest layers allocate
  /// it, the blkfront ring copies it onto each Dom0 segment bio.
  obs::AttrHandle attr = obs::kNoAttr;
  /// Invoked exactly once when the containing request completes, with the
  /// request's outcome (kOk unless the device failed the request).
  /// Small-buffer-optimized: captures up to CompletionFn's inline budget
  /// cost no allocation per bio (see iosched::CompletionFn).
  iosched::CompletionFn on_complete;
};

}  // namespace iosim::blk
