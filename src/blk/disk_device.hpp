// iosim: the physical drive as a RequestSink.
//
// With the default `ncq_depth = 1` the drive services exactly one request
// at a time (the 2.6.22-era stack under study dispatched serially to SATA
// drives; request reordering belongs to the elevator above, which is the
// paper's subject). With `ncq_depth > 1` the drive holds several commands
// and services the one with the shortest positioning first — a simple
// SATF approximation of native command queueing, used by the ablation
// benches.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "blk/request_sink.hpp"
#include "disk/disk_model.hpp"
#include "fault/fault_injector.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace iosim::blk {

class DiskDevice final : public RequestSink {
 public:
  /// `faults` (optional) is consulted per command for fail-slow inflation
  /// and error injection; `host_id` selects which host-targeted fault specs
  /// apply to this drive.
  DiskDevice(sim::Simulator& simr, disk::DiskParams params, std::uint64_t seed,
             fault::FaultInjector* faults = nullptr, int host_id = 0)
      : simr_(simr), model_(params, seed), depth_(std::max(1, params.ncq_depth)),
        faults_(faults), host_id_(host_id) {}

  bool can_accept() const override {
    return static_cast<int>(queued_.size()) + (busy_ ? 1 : 0) < depth_;
  }

  void submit(Request* rq, Time now) override {
    (void)now;
    queued_.push_back(rq);
    if (!busy_) start_next();
  }

  const disk::DiskModel& model() const { return model_; }

  /// Name of this drive's trace track ("host0/disk"); set by the owner.
  void set_trace_name(std::string name) { trace_name_ = std::move(name); }

 private:
  void start_next() {
    if (busy_ || queued_.empty()) return;
    // SATF approximation: the command whose start LBA is nearest the head.
    // With depth 1 there is only ever one candidate.
    auto it = queued_.begin();
    if (queued_.size() > 1) {
      const disk::Lba head = model_.head();
      it = std::min_element(queued_.begin(), queued_.end(),
                            [head](const Request* a, const Request* b) {
                              return std::llabs(a->lba - head) <
                                     std::llabs(b->lba - head);
                            });
    }
    Request* rq = *it;
    queued_.erase(it);
    busy_ = true;
    svc_start_ = simr_.now();  // one request in service at a time
    Time svc = model_.service(
        {rq->lba, rq->sectors, rq->dir == iosched::Dir::kWrite});
    if (faults_ != nullptr) {
      svc = faults_->inflate_service(host_id_, svc);
      // The outcome is decided (and stamped on the request) up front so the
      // completion capture stays small; a failed command still occupies the
      // drive for its full service time — the firmware retries the medium
      // before reporting the error.
      if (faults_->io_should_fail(host_id_, rq->lba, rq->sectors)) {
        rq->status = iosched::IoStatus::kError;
      }
    }
    // Capture stays two pointers wide so std::function keeps it inline —
    // a third word would mean a heap allocation per disk I/O.
    simr_.after(svc, [this, rq] {
      busy_ = false;
      if (auto* tr = trace::tracer()) {
        tr->complete(tr->track(trace_name_), tr->ids.disk_io, tr->ids.cat_disk,
                     svc_start_, simr_.now(), tr->ids.lba, rq->lba,
                     tr->ids.sectors, rq->sectors);
      }
      const bool freed_capacity = can_accept();
      complete(rq, simr_.now());
      // `complete` re-enters the block layer, which kicks dispatch itself;
      // with NCQ the explicit ready() also covers capacity freed while the
      // layer was not the completion's owner.
      if (freed_capacity) ready(simr_.now());
      start_next();
    });
  }

  sim::Simulator& simr_;
  disk::DiskModel model_;
  int depth_;
  fault::FaultInjector* faults_;
  int host_id_;
  bool busy_ = false;
  Time svc_start_;  // start of the in-service request (valid while busy_)
  std::vector<Request*> queued_;
  std::string trace_name_ = "disk";
};

}  // namespace iosim::blk
