// iosim: the block layer — bio queueing, merging, a pluggable elevator, and
// run-time elevator switching.
//
// One instance models `/sys/block/<dev>/queue` of one kernel: each DomU has
// one (its guest elevator) and each Dom0 has one (the VMM-level elevator).
// `switch_scheduler()` models `echo <name> > .../scheduler`: the old
// discipline's queue is drained into the new one and dispatch freezes for a
// quiesce window — the raw ingredient of the paper's switch-cost study
// (Fig. 5).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "blk/bio.hpp"
#include "blk/request_sink.hpp"
#include "iosched/scheduler.hpp"
#include "obs/attr.hpp"
#include "sim/simulator.hpp"

namespace iosim::blk {

class BlockLayer;

namespace detail {
/// Shared observer storage. The layer owns it via shared_ptr; handles hold a
/// weak_ptr, so removal through a handle is safe even after the layer died,
/// and observers die with the layer even if a handle leaks.
struct ObserverList {
  using Fn = std::function<void(const BlockLayer&, const iosched::Request&, sim::Time)>;
  struct Entry {
    std::uint64_t id;
    Fn fn;
  };
  std::vector<Entry> completion;
  std::vector<Entry> dispatch;
  std::uint64_t next_id = 1;
};
}  // namespace detail

/// Handle to a registered observer. Removal is idempotent and safe in any
/// order relative to the layer's destruction (probes unregister themselves
/// in their destructors; a probe outliving its layer is a no-op remove).
class ObserverHandle {
 public:
  ObserverHandle() = default;
  ObserverHandle(std::weak_ptr<detail::ObserverList> list, std::uint64_t id)
      : list_(std::move(list)), id_(id) {}

  /// Unregister the observer. Returns false if the layer is gone or the
  /// observer was already removed.
  bool remove();
  /// True while the observer is still registered on a live layer.
  bool active() const;

 private:
  std::weak_ptr<detail::ObserverList> list_;
  std::uint64_t id_ = 0;
};

using iosched::IoScheduler;
using iosched::Request;
using iosched::SchedTunables;
using iosched::SchedulerKind;

/// Static configuration of a block layer instance.
struct BlockLayerConfig {
  SchedulerKind scheduler = SchedulerKind::kCfq;
  SchedTunables tunables;
  /// Largest request after merging (kernel max_sectors_kb default = 512 KB).
  std::int64_t max_request_sectors = 512;
  /// Extra stall after the drain completes while the new elevator is set up
  /// (module init, queue re-allocation, writeback throttle restart — the
  /// paper measured surprisingly large switch costs on its 2.6.22 stack and
  /// left "investigating the cause" to future work).
  sim::Time switch_freeze = sim::Time::from_ms(1000);
  /// Human-readable name for traces ("host0/dom0", "host0/vm2", ...).
  std::string name = "blk";
  /// Request-path attribution role (obs/attr.hpp). kNone (the default)
  /// disables the stamping hooks entirely; PhysicalHost sets kDom0/kGuest
  /// plus the coordinates when it assembles the split-driver path.
  obs::LayerRole obs_role = obs::LayerRole::kNone;
  int obs_host = 0;
  int obs_vm = 0;
};

/// Lifetime/throughput counters, cheap enough to always keep.
struct BlockLayerCounters {
  std::uint64_t bios_submitted = 0;
  std::uint64_t back_merges = 0;
  std::uint64_t requests_dispatched = 0;
  std::uint64_t requests_completed = 0;
  /// Requests completed with IoStatus::kError (included in completed).
  std::uint64_t requests_failed = 0;
  std::int64_t bytes_completed[iosched::kNumDirs] = {0, 0};
  std::uint64_t scheduler_switches = 0;
  /// Simulated time this layer had work on hand (queued, in flight, held
  /// behind a switch, or mid-switch). Throughput divided by *busy* time —
  /// not wall time — measures elevator efficiency independently of arrival
  /// lulls; the online meta-scheduler rewards arms with it.
  std::uint64_t busy_ns = 0;
};

class BlockLayer {
 public:
  BlockLayer(sim::Simulator& simr, RequestSink& sink, BlockLayerConfig cfg);
  BlockLayer(const BlockLayer&) = delete;
  BlockLayer& operator=(const BlockLayer&) = delete;

  /// Submit one bio. May merge into a queued request; otherwise allocates a
  /// new request and queues it with the active elevator.
  void submit(Bio bio);

  /// Switch the elevator at run time, modelling the kernel's elv_switch:
  /// the old discipline keeps dispatching until its queue is fully drained,
  /// while NEW submissions are held back (the submitting tasks stall);
  /// once drained, the new elevator is installed after a `switch_freeze`
  /// re-init stall and the held bios are released into it. Switching to
  /// the *same* kind pays the whole quiesce too — the paper observed
  /// exactly that ("re-assigning the same pair is costly"). A switch
  /// issued while one is in progress just retargets it.
  void switch_scheduler(SchedulerKind kind);

  SchedulerKind scheduler_kind() const { return sched_->kind(); }
  const BlockLayerCounters& counters() const { return counters_; }
  const std::string& name() const { return cfg_.name; }

  /// Number of requests queued in the elevator (not yet at the device).
  std::size_t queued() const { return sched_->size(); }
  /// Queued requests of one direction — the stall detector's "who was
  /// ahead" snapshot (counts requests, not merged bios, like queued()).
  std::size_t queued(iosched::Dir d) const {
    return queued_by_dir_[static_cast<int>(d)];
  }
  /// Number of requests handed to the sink and not yet completed.
  std::size_t in_flight() const { return in_flight_; }

  /// Observer signature: the layer it fired on (so one probe can watch many
  /// layers and key off `layer.name()`), the request, and the event time.
  using Observer = detail::ObserverList::Fn;

  /// Observer invoked on every request completion (throughput probes).
  ObserverHandle add_completion_observer(Observer fn);
  /// Observer invoked when a request is handed to the sink (queue-depth and
  /// dispatch-latency probes; `rq.dispatch` has just been stamped).
  ObserverHandle add_dispatch_observer(Observer fn);

 private:
  void kick();
  void maybe_finish_switch();
  void arm_wakeup();
  /// Fold the interval since the last call into busy_ns (if the layer was
  /// busy) and recompute the busy flag. Called after every operation that
  /// can change whether the layer has work on hand.
  void account_busy();
  void on_sink_complete(Request* rq, Time now);

  sim::Simulator& simr_;
  RequestSink& sink_;
  BlockLayerConfig cfg_;
  std::unique_ptr<IoScheduler> sched_;

  std::uint64_t next_rq_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Request>> requests_;
  /// Back-merge index over *queued* requests: end LBA -> request.
  std::unordered_map<Lba, Request*> merge_idx_;

  std::size_t in_flight_ = 0;
  std::size_t queued_by_dir_[iosched::kNumDirs] = {0, 0};
  bool frozen_ = false;
  // Elevator-switch state: while draining, the old scheduler empties and
  // arriving bios queue up in held_.
  bool draining_ = false;
  SchedulerKind switch_target_ = SchedulerKind::kNoop;
  std::vector<Bio> held_;
  sim::EventId freeze_ev_ = sim::kInvalidEvent;
  sim::EventId wakeup_ev_ = sim::kInvalidEvent;
  // Busy-time integral state (see BlockLayerCounters::busy_ns): whether the
  // layer had work on hand after the last accounting point, and when that
  // point was.
  bool busy_ = false;
  sim::Time busy_mark_ = sim::Time::zero();
  BlockLayerCounters counters_;
  std::shared_ptr<detail::ObserverList> observers_;
};

}  // namespace iosim::blk
