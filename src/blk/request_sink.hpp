// iosim: downstream consumer of dispatched requests.
//
// A BlockLayer dispatches into a RequestSink. Two sinks exist:
//   * DiskDevice — the physical drive (capacity 1: no NCQ, 2.6.22-era SATA),
//   * BlkfrontRing (in virt/) — a Xen-style bounded ring that forwards guest
//     requests into the Dom0 block layer.
#pragma once

#include <functional>

#include "iosched/request.hpp"

namespace iosim::blk {

using iosched::Request;
using sim::Time;

class RequestSink {
 public:
  virtual ~RequestSink() = default;

  /// True when the sink can take one more request right now.
  virtual bool can_accept() const = 0;

  /// Hand over a dispatched request. Only valid when can_accept() is true.
  /// Ownership stays with the originating BlockLayer; the sink reports
  /// completion through the handler below.
  virtual void submit(Request* rq, Time now) = 0;

  /// Completion/ready callbacks installed by the owning BlockLayer.
  /// `on_complete` fires once per request; `on_ready` fires when the sink
  /// transitions from full to accepting (so the layer can dispatch more).
  void set_on_complete(std::function<void(Request*, Time)> fn) { on_complete_ = std::move(fn); }
  void set_on_ready(std::function<void(Time)> fn) { on_ready_ = std::move(fn); }

 protected:
  void complete(Request* rq, Time now) {
    if (on_complete_) on_complete_(rq, now);
  }
  void ready(Time now) {
    if (on_ready_) on_ready_(now);
  }

 private:
  std::function<void(Request*, Time)> on_complete_;
  std::function<void(Time)> on_ready_;
};

}  // namespace iosim::blk
