// iosim: mechanical hard-disk service-time model.
//
// Models a circa-2011 7200 rpm SATA drive (the paper's testbed used one
// dedicated 1 TB SATA disk per node): seek time as a concave function of
// seek distance, rotational latency drawn uniformly over one revolution on
// any non-contiguous access, and a zoned transfer rate that falls linearly
// from the outer to the inner diameter. The drive services one request at a
// time (no NCQ) — as with the paper's kernel-2.6.22-era stack, reordering is
// the I/O scheduler's job, which is exactly the effect under study.
#pragma once

#include <cstdint>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace iosim::disk {

using sim::Time;

/// Logical block address in 512-byte sectors.
using Lba = std::int64_t;

inline constexpr std::int64_t kSectorBytes = 512;

/// Geometry / timing parameters. Defaults approximate a 1 TB 7200 rpm SATA
/// drive of the paper's era (e.g. WD1002FBYS / ST31000528AS class).
struct DiskParams {
  /// Total capacity in sectors (default 1 TB).
  Lba capacity_sectors = 2'000'000'000;

  /// Shortest possible seek (head settle onto an adjacent track).
  Time seek_min = Time::from_us(1000);
  /// Full-stroke seek.
  Time seek_max = Time::from_ms(16);
  /// Average seek ~ seek_min + (seek_max-seek_min) * avg_factor with the
  /// concave sqrt curve below; with these defaults ≈ 8.5 ms.

  /// Spindle speed; 7200 rpm => 8.33 ms per revolution.
  double rpm = 7200.0;

  /// Media transfer rate at the outer diameter (LBA 0) and inner diameter.
  /// Deliberately below the raw platter rate of a 2011 SATA drive: this is
  /// the *effective* streaming rate through the whole virtualized stack
  /// (blkfront copies, HDFS checksum files, filesystem metadata), which on
  /// the paper's class of testbed lands well under the ~130 MB/s raw rate.
  double outer_mb_s = 85.0;
  double inner_mb_s = 45.0;

  /// Fixed per-request controller/command overhead.
  Time command_overhead = Time::from_us(150);

  /// Accesses within this many sectors of the current head position are
  /// treated as "near": they pay a short settle instead of the seek curve
  /// (track-to-track / same-cylinder behaviour). 2048 sectors = 1 MB.
  Lba near_window_sectors = 2048;
  Time near_settle = Time::from_us(800);

  /// Native command queueing depth. 1 (default) models the paper's
  /// 2.6.22-era serial dispatch, where reordering is entirely the
  /// elevator's job; >1 lets the drive hold that many commands and service
  /// the one nearest the head — an ablation knob for "would NCQ have
  /// erased the scheduler differences?".
  int ncq_depth = 1;

  Time rotation_period() const { return Time::from_sec_f(60.0 / rpm); }
};

/// One request as seen by the drive.
struct DiskAccess {
  Lba lba = 0;
  std::int64_t sectors = 0;
  bool is_write = false;
};

/// Pure service-time model. Owns the head position and a private RNG for
/// rotational phase; deterministic given seed and access sequence.
class DiskModel {
 public:
  explicit DiskModel(DiskParams params, std::uint64_t seed)
      : p_(params), rng_(seed) {}

  const DiskParams& params() const { return p_; }

  /// Sector the head sits after the last access (end of last transfer).
  Lba head() const { return head_; }

  /// Compute the service time for `a`, advancing the head. The caller (the
  /// block device) is responsible for serializing calls — the model assumes
  /// at most one outstanding access.
  Time service(const DiskAccess& a);

  /// Transfer time alone for `sectors` starting at `lba` (no positioning).
  Time transfer_time(Lba lba, std::int64_t sectors) const;

  /// Seek time alone for a head movement of `distance` sectors (>= 0),
  /// excluding rotational latency. Exposed for tests and calibration.
  Time seek_time(Lba distance) const;

  /// Sequential throughput at a given LBA, bytes/second. Exposed so tests
  /// can check zoning.
  double rate_at(Lba lba) const;

  /// Cumulative counters.
  std::int64_t total_accesses() const { return n_access_; }
  std::int64_t sequential_accesses() const { return n_sequential_; }
  Time busy_time() const { return busy_; }

 private:
  DiskParams p_;
  sim::Rng rng_;
  Lba head_ = 0;
  bool head_valid_ = false;
  std::int64_t n_access_ = 0;
  std::int64_t n_sequential_ = 0;
  Time busy_;
};

}  // namespace iosim::disk
