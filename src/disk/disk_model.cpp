#include "disk/disk_model.hpp"

#include <cassert>
#include <cmath>

namespace iosim::disk {

double DiskModel::rate_at(Lba lba) const {
  const double frac =
      static_cast<double>(lba) / static_cast<double>(p_.capacity_sectors);
  const double mb_s = p_.outer_mb_s + (p_.inner_mb_s - p_.outer_mb_s) * frac;
  return mb_s * 1e6;  // bytes per second
}

Time DiskModel::transfer_time(Lba lba, std::int64_t sectors) const {
  // Use the rate at the middle of the extent; zoning varies slowly.
  const Lba mid = lba + sectors / 2;
  const double bytes = static_cast<double>(sectors * kSectorBytes);
  return Time::from_sec_f(bytes / rate_at(mid));
}

Time DiskModel::seek_time(Lba distance) const {
  assert(distance >= 0);
  if (distance == 0) return Time::zero();
  if (distance <= p_.near_window_sectors) return p_.near_settle;
  // Concave sqrt curve between seek_min and seek_max: a short seek is much
  // cheaper than a full-stroke one, but not linearly so (arm acceleration).
  const double frac = std::sqrt(static_cast<double>(distance) /
                                static_cast<double>(p_.capacity_sectors));
  const Time span = p_.seek_max - p_.seek_min;
  return p_.seek_min + span * frac;
}

Time DiskModel::service(const DiskAccess& a) {
  assert(a.sectors > 0);
  assert(a.lba >= 0 && a.lba + a.sectors <= p_.capacity_sectors);

  Time t = p_.command_overhead;
  const bool contiguous = head_valid_ && a.lba == head_;
  if (contiguous) {
    ++n_sequential_;
    // Head already positioned at the first sector: pure media transfer.
  } else {
    const Lba distance = head_valid_ ? std::llabs(a.lba - head_) : p_.capacity_sectors / 3;
    t += seek_time(distance);
    // Rotational latency: uniformly distributed over one revolution for any
    // access that had to reposition. (Near accesses still pay it — the
    // platter keeps spinning during the settle.)
    t += Time::from_sec_f(rng_.uniform() * p_.rotation_period().sec());
  }
  t += transfer_time(a.lba, a.sectors);

  head_ = a.lba + a.sectors;
  head_valid_ = true;
  ++n_access_;
  busy_ += t;
  return t;
}

}  // namespace iosim::disk
