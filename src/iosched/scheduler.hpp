// iosim: the elevator (I/O scheduler) interface and registry.
//
// Re-implementations of the four Linux 2.6 disk schedulers the paper
// evaluates — noop, deadline, anticipatory (AS) and CFQ — all conform to
// this interface. The BlockLayer owns one scheduler at a time and can swap
// it at run time ("echo cfq > /sys/block/sda/queue/scheduler"), which is the
// primitive the paper's meta-scheduler is built on.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "iosched/params.hpp"
#include "iosched/request.hpp"

namespace iosim::iosched {

/// The four disciplines of the 2.6.22-era kernel.
enum class SchedulerKind : std::uint8_t { kNoop = 0, kDeadline = 1, kAnticipatory = 2, kCfq = 3 };

inline constexpr int kNumSchedulerKinds = 4;

/// All four kinds, in the paper's habitual order (CFQ, Deadline, AS, Noop is
/// the paper's table order; we enumerate in enum order for sweeps).
inline constexpr SchedulerKind kAllSchedulerKinds[] = {
    SchedulerKind::kNoop, SchedulerKind::kDeadline, SchedulerKind::kAnticipatory,
    SchedulerKind::kCfq};

const char* to_string(SchedulerKind k);
/// Short name used in the paper's Fig. 5 axis labels: n, d, a, c.
char to_letter(SchedulerKind k);
/// Parse "noop"/"deadline"/"anticipatory"/"as"/"cfq" (case-insensitive).
std::optional<SchedulerKind> scheduler_from_string(const std::string& s);

/// Queue discipline interface. The BlockLayer calls:
///   add()       when a (possibly merged) request is queued,
///   dispatch()  whenever the downstream device can accept work,
///   on_complete() when the device finishes a request,
///   wakeup()    to learn when an idling scheduler wants to be re-polled.
///
/// dispatch() may return nullptr while !empty(): that is deliberate idling
/// (AS anticipation, CFQ slice idling). In that case wakeup() must return a
/// finite time, and any later add() also re-arms dispatching.
class IoScheduler {
 public:
  virtual ~IoScheduler() = default;

  virtual SchedulerKind kind() const = 0;

  /// Queue a request. The pointer remains valid until it is returned from
  /// dispatch() or drain().
  virtual void add(Request* rq, Time now) = 0;

  /// Pick the next request to send to the device, or nullptr to idle.
  virtual Request* dispatch(Time now) = 0;

  /// Device completed `rq` at `now`. Called before any dispatch retry, so
  /// disciplines can arm anticipation based on the completion.
  virtual void on_complete(const Request& rq, Time now) = 0;

  /// Earliest time dispatch() should be re-polled when it returned nullptr
  /// while requests are queued; nullopt when not idling.
  virtual std::optional<Time> wakeup(Time now) const = 0;

  /// Called by the BlockLayer after it back-merged a bio into `rq` (the
  /// request's `sectors` grew; its start LBA did not move).
  virtual void note_back_merge(Request* rq) = 0;

  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;

  /// Remove and return every queued request (elevator switch: the old
  /// discipline's queue is drained and refilled into the new one).
  virtual std::vector<Request*> drain() = 0;
};

/// Instantiate a discipline with the given tunables.
std::unique_ptr<IoScheduler> make_scheduler(SchedulerKind kind, const SchedTunables& tun = {});

}  // namespace iosim::iosched
