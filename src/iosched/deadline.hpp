// iosim: the deadline elevator.
//
// Faithful to the classic Linux deadline discipline: per-direction sorted
// trees plus per-direction FIFOs with expiry (reads 500 ms, writes 5 s).
// Dispatch runs in batches that continue in ascending-LBA order; a new batch
// first checks the FIFO head of the chosen direction and jumps to it if its
// deadline has passed. Reads are preferred, with a `writes_starved` bound.
#pragma once

#include <list>
#include <map>
#include <unordered_map>

#include "iosched/scheduler.hpp"

namespace iosim::iosched {

class DeadlineScheduler final : public IoScheduler {
 public:
  explicit DeadlineScheduler(const DeadlineTunables& tun) : tun_(tun) {}

  SchedulerKind kind() const override { return SchedulerKind::kDeadline; }

  void add(Request* rq, Time now) override;
  Request* dispatch(Time now) override;
  void on_complete(const Request&, Time) override {}
  std::optional<Time> wakeup(Time) const override { return std::nullopt; }
  void note_back_merge(Request*) override {}

  bool empty() const override { return count_ == 0; }
  std::size_t size() const override { return count_; }
  std::vector<Request*> drain() override;

 private:
  using SortedQueue = std::multimap<Lba, Request*>;
  using Fifo = std::list<Request*>;

  struct Handles {
    SortedQueue::iterator sorted_it;
    Fifo::iterator fifo_it;
    Time expire;  // absolute deadline
  };

  int idx(Dir d) const { return static_cast<int>(d); }
  void remove(Request* rq);
  Request* next_in_batch();
  Request* start_batch(Dir d, Time now);

  DeadlineTunables tun_;
  SortedQueue sorted_[kNumDirs];
  Fifo fifo_[kNumDirs];
  std::unordered_map<Request*, Handles> handles_;
  std::size_t count_ = 0;

  // Batch state.
  int batch_remaining_ = 0;
  Dir batch_dir_ = Dir::kRead;
  Lba batch_pos_ = 0;  // dispatch continues at first LBA >= batch_pos_
  int starved_ = 0;    // read batches served while writes were waiting
};

}  // namespace iosim::iosched
