// iosim: tunables for the four disciplines.
//
// Defaults mirror the Linux 2.6.22 kernel defaults (the paper's guest and
// Dom0 kernel). Exposed as a struct so the ablation benches can sweep them.
#pragma once

#include "sim/time.hpp"

namespace iosim::iosched {

using sim::Time;

struct DeadlineTunables {
  /// FIFO expiry per direction (kernel: read_expire=HZ/2, write_expire=5*HZ).
  Time read_expire = Time::from_ms(500);
  Time write_expire = Time::from_sec(5);
  /// Requests dispatched per batch before deadlines are re-examined.
  int fifo_batch = 16;
  /// Number of read batches allowed before a pending write batch must run.
  int writes_starved = 2;
};

struct AnticipatoryTunables {
  /// FIFO expiries (kernel: read_expire=HZ/8, write_expire=HZ/4).
  Time read_expire = Time::from_ms(125);
  Time write_expire = Time::from_ms(250);
  /// Batch time quanta (kernel: read_batch_expire=HZ/2, write=HZ/8).
  Time read_batch_expire = Time::from_ms(500);
  Time write_batch_expire = Time::from_ms(125);
  /// Maximum anticipation wait after a sync read completes.
  Time antic_expire = Time::from_ms(6);
  /// A candidate closer than this to the head is serviced instead of
  /// anticipating (sectors; 1024 = 512 KB).
  std::int64_t close_window_sectors = 1024;
  /// Anticipate while think_mean <= think_factor * antic_expire.
  double think_factor = 1.5;
  /// Think-time EWMA weights. Distrust builds quickly (a long gap or an
  /// anticipation timeout pushes the mean up fast) and decays slowly, like
  /// the kernel's asymmetric as_update_thinktime behaviour — otherwise a
  /// CPU-bound task's short intra-burst gaps would keep re-arming doomed
  /// anticipation at every compute boundary.
  double ewma_alpha_up = 0.5;
  double ewma_alpha_down = 0.125;
};

struct CfqTunables {
  /// Time slice for a sync (per-process) queue and for the shared async
  /// queue (kernel: slice_sync=100ms, slice_async=40ms at HZ=1000).
  Time slice_sync = Time::from_ms(100);
  Time slice_async = Time::from_ms(40);
  /// Idle window kept open for an empty-but-active sync queue.
  Time slice_idle = Time::from_ms(8);
  /// Idle only for queues whose mean think time stays within this bound
  /// (kernel: cfq_arm_slice_timer skips idling when ttime_mean exceeds
  /// slice_idle); expressed as a multiple of slice_idle.
  double idle_think_factor = 1.0;
  /// Think-time EWMA weights (asymmetric, as for AS).
  double ewma_alpha_up = 0.5;
  double ewma_alpha_down = 0.125;
  /// Max requests dispatched from the async queue per activation round
  /// (bounds write starvation of reads).
  int async_quantum = 16;
};

/// Aggregate handed to the factory; each discipline reads its own slice.
struct SchedTunables {
  DeadlineTunables deadline;
  AnticipatoryTunables as;
  CfqTunables cfq;
};

}  // namespace iosim::iosched
