#include "iosched/cfq.hpp"

#include <cassert>

namespace iosim::iosched {

CfqScheduler::CfqQueue* CfqScheduler::queue_for(const Request& rq) {
  if (!rq.sync) return &async_queue_;
  auto [it, inserted] = sync_queues_.try_emplace(rq.ctx);
  if (inserted) {
    it->second.ctx = rq.ctx;
    it->second.sync = true;
  }
  return &it->second;
}

void CfqScheduler::enqueue_rr(CfqQueue* cq) {
  if (cq->in_rr || cq == active_) return;
  rr_.push_back(cq);
  cq->in_rr = true;
}

void CfqScheduler::add(Request* rq, Time now) {
  CfqQueue* cq = queue_for(*rq);
  if (cq->sync && cq->has_completion) {
    const double sample =
        static_cast<double>((now - cq->last_completion).ns());
    if (!cq->has_think) {
      cq->think_ewma_ns = sample;
      cq->has_think = true;
    } else {
      const double alpha = sample > cq->think_ewma_ns ? tun_.ewma_alpha_up
                                                      : tun_.ewma_alpha_down;
      cq->think_ewma_ns += alpha * (sample - cq->think_ewma_ns);
    }
    cq->has_completion = false;
  }
  cq->q.emplace(rq->lba, rq);
  ++count_;
  enqueue_rr(cq);
  if (cq == active_ && idling_) {
    idling_ = false;  // the owner came back within its idle window
  }
}

Request* CfqScheduler::take_from(CfqQueue* cq) {
  assert(!cq->q.empty());
  auto it = cq->q.lower_bound(cq->pos);
  if (it == cq->q.end()) it = cq->q.begin();  // wrap: one-way scan
  Request* rq = it->second;
  cq->q.erase(it);
  cq->pos = rq->end();
  --count_;
  return rq;
}

void CfqScheduler::deactivate(Time now) {
  (void)now;
  CfqQueue* q = active_;
  if (q == nullptr) return;
  // Clear active_ first: enqueue_rr refuses to queue the active queue.
  active_ = nullptr;
  idling_ = false;
  active_dispatched_ = 0;
  if (!q->q.empty()) enqueue_rr(q);
}

Request* CfqScheduler::dispatch(Time now) {
  while (true) {
    if (active_ != nullptr) {
      const bool slice_over = now >= slice_end_;
      const bool quantum_over =
          !active_->sync && active_dispatched_ >= tun_.async_quantum;
      if (slice_over || quantum_over) {
        deactivate(now);
      } else if (!active_->q.empty()) {
        idling_ = false;
        ++active_dispatched_;
        return take_from(active_);
      } else if (active_->sync &&
                 (!active_->has_think ||
                  active_->think_ewma_ns <=
                      tun_.idle_think_factor *
                          static_cast<double>(tun_.slice_idle.ns()))) {
        // Empty sync queue inside its slice: keep the disk idle briefly so
        // the owner's next sequential request does not lose the head — but
        // only for owners who historically come back within the window.
        if (!idling_) {
          idling_ = true;
          idle_until_ = now + tun_.slice_idle;
          if (idle_until_ > slice_end_) idle_until_ = slice_end_;
        }
        if (now < idle_until_) return nullptr;  // wakeup() says when
        deactivate(now);
      } else {
        deactivate(now);  // async queue drained: move on immediately
      }
      continue;
    }

    if (rr_.empty()) return nullptr;
    active_ = rr_.front();
    rr_.pop_front();
    active_->in_rr = false;
    active_dispatched_ = 0;
    idling_ = false;
    slice_end_ = now + (active_->sync ? tun_.slice_sync : tun_.slice_async);
  }
}

void CfqScheduler::on_complete(const Request& rq, Time now) {
  if (!rq.sync) return;
  auto it = sync_queues_.find(rq.ctx);
  if (it == sync_queues_.end()) return;
  it->second.has_completion = true;
  it->second.last_completion = now;
}

std::optional<Time> CfqScheduler::wakeup(Time) const {
  if (active_ != nullptr && idling_) return idle_until_;
  return std::nullopt;
}

std::vector<Request*> CfqScheduler::drain() {
  std::vector<Request*> out;
  out.reserve(count_);
  auto drain_queue = [&out](CfqQueue& cq) {
    for (auto& [lba, rq] : cq.q) {
      (void)lba;
      out.push_back(rq);
    }
    cq.q.clear();
    cq.in_rr = false;
  };
  for (auto& [ctx, cq] : sync_queues_) {
    (void)ctx;
    drain_queue(cq);
  }
  drain_queue(async_queue_);
  sync_queues_.clear();
  rr_.clear();
  active_ = nullptr;
  idling_ = false;
  count_ = 0;
  return out;
}

}  // namespace iosim::iosched
