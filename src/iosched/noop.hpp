// iosim: the noop elevator — FIFO dispatch, merging only.
//
// Linux noop keeps requests in submission order and relies on merging alone.
// At the Dom0 level with several VMs streaming concurrently this interleaves
// requests that live in different disk-image extents, which is exactly the
// seek-thrash behaviour behind the paper's "Noop in the VMM is disastrous"
// observation (Fig. 2, Table I).
#pragma once

#include <deque>

#include "iosched/scheduler.hpp"

namespace iosim::iosched {

class NoopScheduler final : public IoScheduler {
 public:
  SchedulerKind kind() const override { return SchedulerKind::kNoop; }

  void add(Request* rq, Time) override { q_.push_back(rq); }

  Request* dispatch(Time) override {
    if (q_.empty()) return nullptr;
    Request* rq = q_.front();
    q_.pop_front();
    return rq;
  }

  void on_complete(const Request&, Time) override {}
  std::optional<Time> wakeup(Time) const override { return std::nullopt; }
  void note_back_merge(Request*) override {}

  bool empty() const override { return q_.empty(); }
  std::size_t size() const override { return q_.size(); }

  std::vector<Request*> drain() override {
    std::vector<Request*> out(q_.begin(), q_.end());
    q_.clear();
    return out;
  }

 private:
  std::deque<Request*> q_;
};

}  // namespace iosim::iosched
