// iosim: the paper's "disk pair schedulers" — (VMM-level, VM-level).
#pragma once

#include <array>
#include <string>

#include "iosched/scheduler.hpp"

namespace iosim::iosched {

/// A pair of disciplines: one in the hypervisor (Dom0), one in every guest.
/// The paper writes these as (scheduler in VMM, scheduler in VMs).
struct SchedulerPair {
  SchedulerKind vmm = SchedulerKind::kCfq;
  SchedulerKind guest = SchedulerKind::kCfq;

  bool operator==(const SchedulerPair&) const = default;

  /// Dense index in [0, 16): vmm * 4 + guest. Used for matrices and sweeps.
  int index() const {
    return static_cast<int>(vmm) * kNumSchedulerKinds + static_cast<int>(guest);
  }
  static SchedulerPair from_index(int i) {
    return {static_cast<SchedulerKind>(i / kNumSchedulerKinds),
            static_cast<SchedulerKind>(i % kNumSchedulerKinds)};
  }

  /// "(anticipatory, deadline)" — the paper's notation.
  std::string to_string() const {
    return std::string("(") + iosched::to_string(vmm) + ", " +
           iosched::to_string(guest) + ")";
  }
  /// Two-letter form used on the paper's Fig. 5 axes: "ad".
  std::string letters() const {
    return std::string{to_letter(vmm)} + to_letter(guest);
  }
};

inline constexpr int kNumSchedulerPairs = kNumSchedulerKinds * kNumSchedulerKinds;

/// All 16 pairs in dense-index order.
inline std::array<SchedulerPair, kNumSchedulerPairs> all_scheduler_pairs() {
  std::array<SchedulerPair, kNumSchedulerPairs> out{};
  for (int i = 0; i < kNumSchedulerPairs; ++i) out[static_cast<std::size_t>(i)] = SchedulerPair::from_index(i);
  return out;
}

/// The Linux / Xen default on the paper's testbed.
inline constexpr SchedulerPair kDefaultPair{SchedulerKind::kCfq, SchedulerKind::kCfq};

}  // namespace iosim::iosched
