// iosim: the anticipatory (AS) elevator.
//
// Deadline-style core (per-direction sorted queues + expiry FIFOs, one-way
// scan, time-bounded batches) plus the defining feature: after a synchronous
// read completes, if the next candidate belongs to a *different* context and
// is far from the head, the scheduler deliberately idles up to `antic_expire`
// waiting for the just-served context to issue its next (probably nearby)
// read. Per-context think-time statistics (EWMA, like the kernel's
// fixed-point means) gate the wait so processes that never come back stop
// being anticipated.
//
// At the Dom0 layer each VM is one context, so anticipation keeps the head
// inside one VM's disk image while that VM streams — the mechanism behind
// AS being the best VMM-level scheduler in the paper's Table I.
#pragma once

#include <list>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "iosched/scheduler.hpp"

namespace iosim::iosched {

class AnticipatoryScheduler final : public IoScheduler {
 public:
  explicit AnticipatoryScheduler(const AnticipatoryTunables& tun) : tun_(tun) {}

  SchedulerKind kind() const override { return SchedulerKind::kAnticipatory; }

  void add(Request* rq, Time now) override;
  Request* dispatch(Time now) override;
  void on_complete(const Request& rq, Time now) override;
  std::optional<Time> wakeup(Time) const override;
  void note_back_merge(Request*) override {}

  bool empty() const override { return count_ == 0; }
  std::size_t size() const override { return count_; }
  std::vector<Request*> drain() override;

  /// True while the scheduler is inside an anticipation window (exposed for
  /// tests).
  bool anticipating() const { return anticipating_; }

 private:
  using SortedQueue = std::multimap<Lba, Request*>;
  using Fifo = std::list<Request*>;

  struct Handles {
    SortedQueue::iterator sorted_it;
    Fifo::iterator fifo_it;
    Time expire;
  };

  /// Per-context behaviour statistics (kernel: struct as_io_context).
  struct CtxStats {
    bool has_completion = false;
    Time last_completion;
    bool has_think = false;
    double think_ewma_ns = 0.0;
    bool has_pos = false;
    Lba last_end = 0;
  };

  int idx(Dir d) const { return static_cast<int>(d); }
  void remove(Request* rq);
  Request* pick_candidate(Time now);
  bool worth_anticipating(std::uint64_t ctx) const;
  void record_think_sample(CtxStats& st, double sample_ns);

  AnticipatoryTunables tun_;
  SortedQueue sorted_[kNumDirs];
  Fifo fifo_[kNumDirs];
  std::unordered_map<Request*, Handles> handles_;
  std::size_t count_ = 0;

  // Batch state: time-bounded one-way scan per direction.
  bool batch_active_ = false;
  Dir batch_dir_ = Dir::kRead;
  Time batch_end_;
  Lba batch_pos_ = 0;

  Lba head_pos_ = 0;  // end of last dispatched request

  // Anticipation state.
  bool antic_armed_ = false;        // a sync read just completed
  std::uint64_t antic_ctx_ = 0;     // context we would wait for
  bool anticipating_ = false;       // currently idling
  Time antic_until_;
  Request* antic_hit_ = nullptr;    // request from antic_ctx_ that arrived

  std::unordered_map<std::uint64_t, CtxStats> stats_;
};

}  // namespace iosim::iosched
