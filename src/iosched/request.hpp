// iosim: block-layer request representation.
#pragma once

#include <cstdint>
#include <vector>

#include "disk/disk_model.hpp"
#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace iosim::iosched {

using disk::Lba;
using sim::Time;

/// Transfer direction.
enum class Dir : std::uint8_t { kRead = 0, kWrite = 1 };

inline constexpr int kNumDirs = 2;
inline const char* to_string(Dir d) { return d == Dir::kRead ? "read" : "write"; }

/// Completion status of a request/bio. Every completion callback in the
/// stack carries one; without fault injection it is always kOk.
enum class IoStatus : std::uint8_t { kOk = 0, kError = 1 };

inline const char* to_string(IoStatus s) {
  return s == IoStatus::kOk ? "ok" : "error";
}

/// Completion callback carried by bios and accumulated on merged requests
/// (arguments: completion time, outcome). Small-buffer-optimized: the
/// HDFS/mapred issuers capture an owner pointer plus a couple of words,
/// which stays inline — no allocation per I/O (see sim/event_fn.hpp).
using CompletionFn = sim::SmallFn<void(Time, IoStatus)>;

/// A queued block request. Created by the BlockLayer from submitted bios and
/// owned by it for its whole life; schedulers and devices only see stable
/// raw pointers. A request may represent several merged bios — completing
/// the request fires every accumulated callback.
struct Request {
  std::uint64_t id = 0;

  Lba lba = 0;
  std::int64_t sectors = 0;
  Dir dir = Dir::kRead;

  /// Synchronous requests have a waiter: reads, and O_SYNC/flush writes.
  /// Schedulers with anticipation/idling only idle for sync requests.
  bool sync = true;

  /// Issuing context: the "process" as the elevator sees it. Inside a guest
  /// this is a task identifier; inside Dom0 it is the VM (blkback) id.
  std::uint64_t ctx = 0;

  /// Bios merged into this request (1 for a fresh request, +1 per back
  /// merge). The invariant auditor's conservation check counts completed
  /// requests in bio units against BlockLayerCounters::bios_submitted.
  std::uint32_t n_bios = 1;

  /// Time the request entered the block layer (deadline bookkeeping).
  Time submit;

  /// Time the block layer handed the request to the sink (device/ring).
  /// Set at dispatch; before that it is meaningless. Queue residence is
  /// dispatch - submit, service time is completion - dispatch.
  Time dispatch;

  /// Outcome, set by the sink before it completes the request. A merged
  /// request fails as a whole — every bio it absorbed sees kError, like the
  /// kernel failing all bios of a failed request.
  IoStatus status = IoStatus::kOk;

  /// Per-bio completion callbacks (arguments: completion time, outcome).
  std::vector<CompletionFn> completions;

  /// Attribution record handles (obs::AttrHandle) of the guest requests
  /// this request carries — empty when attribution is off. A guest request
  /// holds at most one; a Dom0 request accumulates the distinct handles of
  /// the ring segments merged into it. Kept as raw u32 so iosched/ stays
  /// independent of obs/.
  std::vector<std::uint32_t> attrs;

  Lba end() const { return lba + sectors; }
  std::int64_t bytes() const { return sectors * disk::kSectorBytes; }
};

}  // namespace iosim::iosched
