#include <algorithm>
#include <cctype>

#include "iosched/anticipatory.hpp"
#include "iosched/cfq.hpp"
#include "iosched/deadline.hpp"
#include "iosched/noop.hpp"
#include "iosched/scheduler.hpp"

namespace iosim::iosched {

const char* to_string(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kNoop: return "noop";
    case SchedulerKind::kDeadline: return "deadline";
    case SchedulerKind::kAnticipatory: return "anticipatory";
    case SchedulerKind::kCfq: return "cfq";
  }
  return "?";
}

char to_letter(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kNoop: return 'n';
    case SchedulerKind::kDeadline: return 'd';
    case SchedulerKind::kAnticipatory: return 'a';
    case SchedulerKind::kCfq: return 'c';
  }
  return '?';
}

std::optional<SchedulerKind> scheduler_from_string(const std::string& s) {
  std::string t;
  t.reserve(s.size());
  for (char c : s) t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (t == "noop" || t == "noop(np)" || t == "np" || t == "n") return SchedulerKind::kNoop;
  if (t == "deadline" || t == "dl" || t == "d") return SchedulerKind::kDeadline;
  if (t == "anticipatory" || t == "as" || t == "a") return SchedulerKind::kAnticipatory;
  if (t == "cfq" || t == "c") return SchedulerKind::kCfq;
  return std::nullopt;
}

std::unique_ptr<IoScheduler> make_scheduler(SchedulerKind kind, const SchedTunables& tun) {
  switch (kind) {
    case SchedulerKind::kNoop: return std::make_unique<NoopScheduler>();
    case SchedulerKind::kDeadline: return std::make_unique<DeadlineScheduler>(tun.deadline);
    case SchedulerKind::kAnticipatory: return std::make_unique<AnticipatoryScheduler>(tun.as);
    case SchedulerKind::kCfq: return std::make_unique<CfqScheduler>(tun.cfq);
  }
  return nullptr;
}

}  // namespace iosim::iosched
