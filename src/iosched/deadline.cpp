#include "iosched/deadline.hpp"

#include <cassert>

namespace iosim::iosched {

void DeadlineScheduler::add(Request* rq, Time now) {
  const int d = idx(rq->dir);
  auto sit = sorted_[d].emplace(rq->lba, rq);
  fifo_[d].push_back(rq);
  auto fit = std::prev(fifo_[d].end());
  const Time expire =
      now + (rq->dir == Dir::kRead ? tun_.read_expire : tun_.write_expire);
  handles_.emplace(rq, Handles{sit, fit, expire});
  ++count_;
}

void DeadlineScheduler::remove(Request* rq) {
  auto it = handles_.find(rq);
  assert(it != handles_.end());
  const int d = idx(rq->dir);
  sorted_[d].erase(it->second.sorted_it);
  fifo_[d].erase(it->second.fifo_it);
  handles_.erase(it);
  --count_;
}

Request* DeadlineScheduler::next_in_batch() {
  const int d = idx(batch_dir_);
  auto it = sorted_[d].lower_bound(batch_pos_);
  if (it == sorted_[d].end()) return nullptr;  // scan hit the end: batch over
  return it->second;
}

Request* DeadlineScheduler::start_batch(Dir dir, Time now) {
  const int d = idx(dir);
  assert(!sorted_[d].empty());
  batch_dir_ = dir;
  batch_remaining_ = tun_.fifo_batch;

  // A new batch honours deadlines: if the oldest request of this direction
  // has expired, the scan jumps to it; otherwise continue from the current
  // scan position (one-way elevator with wrap).
  Request* head = fifo_[d].front();
  Request* rq;
  const Time expire = handles_.at(head).expire;
  if (expire <= now) {
    rq = head;
  } else {
    auto it = sorted_[d].lower_bound(batch_pos_);
    if (it == sorted_[d].end()) it = sorted_[d].begin();  // wrap to lowest LBA
    rq = it->second;
  }
  return rq;
}

Request* DeadlineScheduler::dispatch(Time now) {
  if (count_ == 0) return nullptr;

  Request* rq = nullptr;
  if (batch_remaining_ > 0) {
    rq = next_in_batch();
  }

  if (rq == nullptr) {
    // Pick the direction for a fresh batch. Reads win unless writes have
    // been starved `writes_starved` times in a row.
    const bool reads = !sorted_[idx(Dir::kRead)].empty();
    const bool writes = !sorted_[idx(Dir::kWrite)].empty();
    Dir dir;
    if (reads && writes) {
      dir = (starved_ >= tun_.writes_starved) ? Dir::kWrite : Dir::kRead;
    } else {
      dir = reads ? Dir::kRead : Dir::kWrite;
    }
    if (dir == Dir::kRead && writes) {
      ++starved_;
    } else if (dir == Dir::kWrite) {
      starved_ = 0;
    }
    rq = start_batch(dir, now);
  }

  assert(rq != nullptr);
  --batch_remaining_;
  batch_pos_ = rq->end();
  remove(rq);
  return rq;
}

std::vector<Request*> DeadlineScheduler::drain() {
  std::vector<Request*> out;
  out.reserve(count_);
  for (int d = 0; d < kNumDirs; ++d) {
    for (Request* rq : fifo_[d]) out.push_back(rq);
    fifo_[d].clear();
    sorted_[d].clear();
  }
  handles_.clear();
  count_ = 0;
  batch_remaining_ = 0;
  starved_ = 0;
  return out;
}

}  // namespace iosim::iosched
