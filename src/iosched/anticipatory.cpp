#include "iosched/anticipatory.hpp"

#include <cassert>
#include <cmath>

namespace iosim::iosched {

void AnticipatoryScheduler::record_think_sample(CtxStats& st, double sample_ns) {
  if (!st.has_think) {
    st.think_ewma_ns = sample_ns;
    st.has_think = true;
  } else {
    const double alpha = sample_ns > st.think_ewma_ns ? tun_.ewma_alpha_up
                                                      : tun_.ewma_alpha_down;
    st.think_ewma_ns += alpha * (sample_ns - st.think_ewma_ns);
  }
}

void AnticipatoryScheduler::add(Request* rq, Time now) {
  const int d = idx(rq->dir);
  auto sit = sorted_[d].emplace(rq->lba, rq);
  fifo_[d].push_back(rq);
  auto fit = std::prev(fifo_[d].end());
  const Time expire =
      now + (rq->dir == Dir::kRead ? tun_.read_expire : tun_.write_expire);
  handles_.emplace(rq, Handles{sit, fit, expire});
  ++count_;

  if (rq->dir == Dir::kRead && rq->sync) {
    CtxStats& st = stats_[rq->ctx];
    if (st.has_completion) {
      record_think_sample(st, static_cast<double>((now - st.last_completion).ns()));
      st.has_completion = false;  // one think sample per completion
    }
    st.last_end = rq->end();
    st.has_pos = true;
  }

  // A request from the anticipated context satisfies the anticipation: the
  // BlockLayer will re-poll dispatch() on this add and we hand it out.
  if (anticipating_ && rq->ctx == antic_ctx_ && rq->dir == Dir::kRead && rq->sync) {
    antic_hit_ = rq;
  }
}

void AnticipatoryScheduler::remove(Request* rq) {
  auto it = handles_.find(rq);
  assert(it != handles_.end());
  const int d = idx(rq->dir);
  sorted_[d].erase(it->second.sorted_it);
  fifo_[d].erase(it->second.fifo_it);
  handles_.erase(it);
  --count_;
  if (antic_hit_ == rq) antic_hit_ = nullptr;
}

bool AnticipatoryScheduler::worth_anticipating(std::uint64_t ctx) const {
  auto it = stats_.find(ctx);
  if (it == stats_.end()) return true;  // optimistic about unknown contexts
  const CtxStats& st = it->second;
  if (!st.has_think) return true;
  // The kernel anticipates only while the process's mean think time stays
  // within (a small multiple of) the anticipation window.
  return st.think_ewma_ns <=
         tun_.think_factor * static_cast<double>(tun_.antic_expire.ns());
}

Request* AnticipatoryScheduler::pick_candidate(Time now) {
  // Continue the current batch while its quantum lasts and the scan has not
  // run off the end of the queue.
  if (batch_active_) {
    const int d = idx(batch_dir_);
    if (now < batch_end_ && !sorted_[d].empty()) {
      auto it = sorted_[d].lower_bound(batch_pos_);
      if (it != sorted_[d].end()) return it->second;
    }
    batch_active_ = false;
  }

  // Start a new batch: prefer reads; switch to writes when reads are absent
  // or the oldest write has expired.
  const bool reads = !sorted_[idx(Dir::kRead)].empty();
  const bool writes = !sorted_[idx(Dir::kWrite)].empty();
  if (!reads && !writes) return nullptr;

  Dir dir = Dir::kRead;
  if (!reads) {
    dir = Dir::kWrite;
  } else if (writes) {
    Request* whead = fifo_[idx(Dir::kWrite)].front();
    if (handles_.at(whead).expire <= now) dir = Dir::kWrite;
  }

  const int d = idx(dir);
  batch_active_ = true;
  batch_dir_ = dir;
  batch_end_ = now + (dir == Dir::kRead ? tun_.read_batch_expire
                                        : tun_.write_batch_expire);

  // Deadline jump if the direction's oldest request expired, else continue
  // the one-way scan from the head position (wrap to lowest LBA).
  Request* head = fifo_[d].front();
  if (handles_.at(head).expire <= now) return head;
  auto it = sorted_[d].lower_bound(head_pos_);
  if (it == sorted_[d].end()) it = sorted_[d].begin();
  return it->second;
}

Request* AnticipatoryScheduler::dispatch(Time now) {
  if (count_ == 0) return nullptr;

  if (anticipating_) {
    if (antic_hit_ != nullptr) {
      // The context we waited for came back: serve it immediately.
      Request* rq = antic_hit_;
      anticipating_ = false;
      antic_armed_ = false;
      antic_hit_ = nullptr;
      batch_pos_ = rq->end();
      head_pos_ = rq->end();
      remove(rq);
      return rq;
    }
    if (now < antic_until_) return nullptr;  // keep waiting
    // Timed out: penalize the context so we stop anticipating a process
    // that went away (kernel: think time grows past the window).
    anticipating_ = false;
    antic_armed_ = false;
    CtxStats& st = stats_[antic_ctx_];
    record_think_sample(st, 4.0 * static_cast<double>(tun_.antic_expire.ns()));
  }

  Request* cand = pick_candidate(now);
  if (cand == nullptr) return nullptr;

  // Anticipation decision: a sync read just completed for antic_ctx_, the
  // candidate belongs to someone else and is far from the head, and the
  // just-served context usually comes back quickly.
  if (antic_armed_ && cand->ctx != antic_ctx_) {
    const Lba distance = std::llabs(cand->lba - head_pos_);
    if (distance > tun_.close_window_sectors && worth_anticipating(antic_ctx_)) {
      anticipating_ = true;
      antic_until_ = now + tun_.antic_expire;
      antic_hit_ = nullptr;
      return nullptr;
    }
    antic_armed_ = false;  // decided not to wait; don't reconsider
  }

  batch_pos_ = cand->end();
  head_pos_ = cand->end();
  remove(cand);
  return cand;
}

void AnticipatoryScheduler::on_complete(const Request& rq, Time now) {
  CtxStats& st = stats_[rq.ctx];
  if (rq.dir == Dir::kRead && rq.sync) {
    st.has_completion = true;
    st.last_completion = now;
    antic_armed_ = true;
    antic_ctx_ = rq.ctx;
  }
}

std::optional<Time> AnticipatoryScheduler::wakeup(Time) const {
  if (anticipating_) return antic_until_;
  if (batch_active_ && count_ > 0) return std::nullopt;
  return std::nullopt;
}

std::vector<Request*> AnticipatoryScheduler::drain() {
  std::vector<Request*> out;
  out.reserve(count_);
  for (int d = 0; d < kNumDirs; ++d) {
    for (Request* rq : fifo_[d]) out.push_back(rq);
    fifo_[d].clear();
    sorted_[d].clear();
  }
  handles_.clear();
  count_ = 0;
  batch_active_ = false;
  anticipating_ = false;
  antic_armed_ = false;
  antic_hit_ = nullptr;
  return out;
}

}  // namespace iosim::iosched
