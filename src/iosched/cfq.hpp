// iosim: the CFQ (completely fair queueing) elevator.
//
// One sorted queue per issuing context for synchronous requests, plus one
// shared queue for asynchronous writes (the kernel shares async queues per
// priority level; we model the single default priority). Queues are serviced
// round-robin; an activated sync queue owns the disk for a wall-clock slice
// (default 100 ms) and, when it runs dry inside its slice, the scheduler
// idles up to `slice_idle` (8 ms) for the owner's next request rather than
// seeking away. That idling is what gives CFQ its per-process fairness — and
// the slice-switch seeks are what make it slightly slower than AS for
// multi-VM streaming at the Dom0 level (paper Fig. 3: CFQ fairer, AS faster).
#pragma once

#include <deque>
#include <map>
#include <unordered_map>

#include "iosched/scheduler.hpp"

namespace iosim::iosched {

class CfqScheduler final : public IoScheduler {
 public:
  explicit CfqScheduler(const CfqTunables& tun) : tun_(tun) {}

  SchedulerKind kind() const override { return SchedulerKind::kCfq; }

  void add(Request* rq, Time now) override;
  Request* dispatch(Time now) override;
  void on_complete(const Request& rq, Time now) override;
  std::optional<Time> wakeup(Time) const override;
  void note_back_merge(Request*) override {}

  bool empty() const override { return count_ == 0; }
  std::size_t size() const override { return count_; }
  std::vector<Request*> drain() override;

  /// Number of distinct per-context sync queues currently known (tests).
  std::size_t sync_queue_count() const { return sync_queues_.size(); }

 private:
  struct CfqQueue {
    std::uint64_t ctx = 0;
    bool sync = true;
    std::multimap<Lba, Request*> q;
    Lba pos = 0;       // one-way scan position within the queue
    bool in_rr = false;
    // Think-time tracking (gates slice idling, like the kernel's ttime_mean).
    bool has_completion = false;
    Time last_completion;
    bool has_think = false;
    double think_ewma_ns = 0.0;
  };

  void enqueue_rr(CfqQueue* cq);
  void deactivate(Time now);
  CfqQueue* queue_for(const Request& rq);
  Request* take_from(CfqQueue* cq);

  CfqTunables tun_;
  std::unordered_map<std::uint64_t, CfqQueue> sync_queues_;
  CfqQueue async_queue_{/*ctx=*/0, /*sync=*/false, {}, 0, false, false, {}, false, 0.0};
  std::deque<CfqQueue*> rr_;
  std::size_t count_ = 0;

  CfqQueue* active_ = nullptr;
  Time slice_end_;
  bool idling_ = false;      // active sync queue empty, idle window open
  Time idle_until_;
  int active_dispatched_ = 0;  // dispatches in current activation (async cap)
};

}  // namespace iosim::iosched
