#include "trace/registry.hpp"

#include <algorithm>

namespace iosim::trace {

double Histogram::quantile(double q) const {
  if (n_ == 0) return 0.0;
  if (min_ == max_) return static_cast<double>(min_);  // degenerate: exact
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, n]; walk the cumulative distribution.
  const double rank = q * static_cast<double>(n_ - 1) + 1.0;
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = buckets_[static_cast<std::size_t>(b)];
    if (c == 0) continue;
    if (rank <= static_cast<double>(cum + c)) {
      // Linear interpolation inside the bucket, clamped to observed extremes
      // so single-bucket distributions report exact min/max.
      const double frac = (rank - static_cast<double>(cum)) / static_cast<double>(c);
      const auto lo = static_cast<double>(std::max(bucket_lo(b), min_));
      const auto hi = static_cast<double>(std::min(bucket_hi(b), max_ + 1));
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum += c;
  }
  return static_cast<double>(max_);
}

Counter& Registry::counter(const std::string& name) {
  auto& ids = by_name_[static_cast<int>(Kind::kCounter)];
  if (auto it = ids.find(name); it != ids.end()) return counters_[it->second];
  const std::size_t idx = counters_.size();
  counters_.emplace_back();
  ids.emplace(name, idx);
  items_.push_back({name, Kind::kCounter, idx});
  return counters_[idx];
}

Gauge& Registry::gauge(const std::string& name) {
  auto& ids = by_name_[static_cast<int>(Kind::kGauge)];
  if (auto it = ids.find(name); it != ids.end()) return gauges_[it->second];
  const std::size_t idx = gauges_.size();
  gauges_.emplace_back();
  ids.emplace(name, idx);
  items_.push_back({name, Kind::kGauge, idx});
  return gauges_[idx];
}

Histogram& Registry::histogram(const std::string& name) {
  auto& ids = by_name_[static_cast<int>(Kind::kHistogram)];
  if (auto it = ids.find(name); it != ids.end()) return histograms_[it->second];
  const std::size_t idx = histograms_.size();
  histograms_.emplace_back();
  ids.emplace(name, idx);
  items_.push_back({name, Kind::kHistogram, idx});
  return histograms_[idx];
}

}  // namespace iosim::trace
