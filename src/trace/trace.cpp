#include "trace/trace.hpp"

#include <cinttypes>
#include <cstdio>

namespace iosim::trace {

namespace {
/// Minimal JSON string escaper (quotes, backslash, control characters).
void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Nanoseconds rendered as microseconds with fixed 3-decimal precision —
/// integer arithmetic only, so the output is bit-stable across platforms.
void append_us(std::string& out, std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000 >= 0 ? ns % 1000 : -(ns % 1000));
  out += buf;
}
}  // namespace

Tracer::Tracer(TracerConfig cfg) {
  ring_.resize(cfg.capacity > 0 ? cfg.capacity : 1);
  pinned_capacity_ = cfg.pinned_capacity;
  pinned_.reserve(pinned_capacity_ < 1024 ? pinned_capacity_ : 1024);
  strings_.emplace_back();  // id 0 = ""

  ids.cat_blk = intern("blk");
  ids.cat_disk = intern("disk");
  ids.cat_virt = intern("virt");
  ids.cat_core = intern("core");
  ids.cat_mapred = intern("mapred");
  ids.cat_meta = intern("meta");
  ids.cat_fault = intern("fault");
  ids.rq_read = intern("rq read");
  ids.rq_write = intern("rq write");
  ids.rq_service = intern("rq service");
  ids.bio_submit = intern("bio submit");
  ids.bio_merge = intern("bio merge");
  ids.elv_switch = intern("elv switch");
  ids.elv_retarget = intern("elv retarget");
  ids.drain_done = intern("drain done");
  ids.disk_io = intern("disk io");
  ids.phase = intern("phase");
  ids.pair_switch = intern("pair switch");
  ids.fg_switch = intern("fg switch");
  ids.fg_sample = intern("fg sample");
  ids.probe = intern("probe");
  ids.profile = intern("profile");
  ids.vm_boot = intern("vm boot");
  ids.map_span = intern("map");
  ids.shuffle_span = intern("shuffle");
  ids.reduce_span = intern("reduce");
  ids.job_start = intern("job start");
  ids.first_map_done = intern("first map done");
  ids.maps_done = intern("maps done");
  ids.shuffle_done = intern("shuffle done");
  ids.job_done = intern("job done");
  ids.fault = intern("fault on");
  ids.io_error = intern("io error");
  ids.vm_down = intern("vm down");
  ids.vm_up = intern("vm up");
  ids.switch_fail = intern("switch fail");
  ids.task_fail = intern("task fail");
  ids.task_retry = intern("task retry");
  ids.task_speculate = intern("task speculate");
  ids.hdfs_failover = intern("hdfs failover");
  ids.fetch_retry = intern("fetch retry");
  ids.job_failed = intern("job failed");
  ids.lba = intern("lba");
  ids.sectors = intern("sectors");
  ids.value = intern("value");
  ids.index = intern("index");
  ids.pair = intern("pair");
  ids.host = intern("host");
  ids.task = intern("task");
  ids.bytes = intern("bytes");
  ids.target = intern("target");
  ids.share = intern("share");
  ids.queued = intern("queued");
  ids.in_flight = intern("in_flight");
  ids.read_mb_s = intern("read MB/s");
  ids.write_mb_s = intern("write MB/s");
  ids.attempt = intern("attempt");
  ids.cat_obs = intern("obs");
  ids.io_stall = intern("io stall");
  ids.io_stall_wait = intern("io stall wait");
  ids.obs_summary = intern("obs summary");
  ids.trace_overflow = intern("trace overflow");
  ids.obs_lane[0] = intern("obs guest_queue");
  ids.obs_lane[1] = intern("obs ring_wait");
  ids.obs_lane[2] = intern("obs elv_wait");
  ids.obs_lane[3] = intern("obs service");
  ids.obs_lane[4] = intern("obs ret");
  ids.obs_lane[5] = intern("obs total");
  ids.obs_total_win = intern("obs total win");
  ids.count = intern("count");
  ids.sum_ns = intern("sum_ns");
  ids.max_ns = intern("max_ns");
  ids.p50_ns = intern("p50_ns");
  ids.p95_ns = intern("p95_ns");
  ids.p99_ns = intern("p99_ns");
  ids.elv_wait_ns = intern("elv_wait_ns");
  ids.service_ns = intern("service_ns");
  ids.total_ns = intern("total_ns");
  ids.writes_ahead = intern("writes_ahead");
  ids.reads_ahead = intern("reads_ahead");
  ids.stalls = intern("stalls");

  // Rare structural events survive ring overflow: a multi-million-event bio
  // flood must not push the handful of switch / phase / lifecycle markers
  // out of the flight recorder. Fault-injection and task-retry/speculation
  // markers join them — a trace of a faulted run must still show what was
  // injected and how the runtime recovered after the bio flood wraps the
  // ring (a sustained error storm falls back to the ring once the pinned
  // store fills; see TracerConfig::pinned_capacity).
  for (Str s : {ids.elv_switch, ids.elv_retarget, ids.drain_done, ids.phase,
                ids.pair_switch, ids.fg_switch, ids.fg_sample, ids.probe,
                ids.profile, ids.vm_boot, ids.map_span, ids.shuffle_span,
                ids.reduce_span, ids.job_start, ids.first_map_done,
                ids.maps_done, ids.shuffle_done, ids.job_done, ids.fault,
                ids.io_error, ids.vm_down, ids.vm_up, ids.switch_fail,
                ids.task_fail, ids.task_retry, ids.task_speculate,
                ids.hdfs_failover, ids.fetch_retry, ids.job_failed,
                ids.io_stall, ids.io_stall_wait, ids.obs_summary,
                ids.trace_overflow, ids.obs_lane[0], ids.obs_lane[1],
                ids.obs_lane[2], ids.obs_lane[3], ids.obs_lane[4],
                ids.obs_lane[5], ids.obs_total_win}) {
    pin_name(s);
  }
}

Str Tracer::intern(std::string_view s) {
  auto it = string_ids_.find(std::string(s));
  if (it != string_ids_.end()) return it->second;
  const Str id = static_cast<Str>(strings_.size());
  strings_.emplace_back(s);
  string_ids_.emplace(strings_.back(), id);
  return id;
}

std::uint32_t Tracer::track(std::string_view name) {
  auto it = track_ids_.find(std::string(name));
  if (it != track_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(track_names_.size());
  track_names_.push_back(intern(name));
  track_ids_.emplace(std::string(name), id);
  return id;
}

void Tracer::pin_name(Str name) {
  if (name >= pinned_names_.size()) pinned_names_.resize(name + 1, 0);
  pinned_names_[name] = 1;
}

void Tracer::emit(const Event& e) {
  ++emitted_;
  if (is_pinned(e.name) && pinned_.size() < pinned_capacity_) {
    pinned_.push_back(e);
    return;
  }
  if (count_ == ring_.size()) {
    // Full: overwrite the oldest event.
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    if (++dropped_ == 1 && pinned_.size() < pinned_capacity_) {
      // First overflow: park a pinned marker (pushed directly — going back
      // through emit() would recurse) so the export shows *when* the flight
      // recorder started losing history, not just that it did. The final
      // drop count lives in the export header / CSV summary.
      Event marker;
      marker.ph = Ph::kInstant;
      marker.name = ids.trace_overflow;
      marker.cat = ids.cat_meta;
      marker.track = e.track;
      marker.ts_ns = e.ts_ns;
      pinned_.push_back(marker);
      ++emitted_;  // keep emitted() == size() + dropped()
    }
    return;
  }
  ring_[(head_ + count_) % ring_.size()] = e;
  ++count_;
}

void Tracer::instant(std::uint32_t track, Str name, Str cat, sim::Time ts, Str a0n,
                     std::int64_t a0, Str a1n, std::int64_t a1, Str a2n,
                     std::int64_t a2) {
  Event e;
  e.ph = Ph::kInstant;
  e.track = track;
  e.name = name;
  e.cat = cat;
  e.ts_ns = ts.ns();
  e.arg_name[0] = a0n; e.arg[0] = a0;
  e.arg_name[1] = a1n; e.arg[1] = a1;
  e.arg_name[2] = a2n; e.arg[2] = a2;
  emit(e);
}

void Tracer::complete(std::uint32_t track, Str name, Str cat, sim::Time begin,
                      sim::Time end, Str a0n, std::int64_t a0, Str a1n,
                      std::int64_t a1, Str a2n, std::int64_t a2) {
  Event e;
  e.ph = Ph::kComplete;
  e.track = track;
  e.name = name;
  e.cat = cat;
  e.ts_ns = begin.ns();
  e.dur_ns = (end - begin).ns();
  e.arg_name[0] = a0n; e.arg[0] = a0;
  e.arg_name[1] = a1n; e.arg[1] = a1;
  e.arg_name[2] = a2n; e.arg[2] = a2;
  emit(e);
}

void Tracer::begin(std::uint32_t track, Str name, Str cat, sim::Time ts, Str a0n,
                   std::int64_t a0) {
  Event e;
  e.ph = Ph::kBegin;
  e.track = track;
  e.name = name;
  e.cat = cat;
  e.ts_ns = ts.ns();
  e.arg_name[0] = a0n; e.arg[0] = a0;
  emit(e);
}

void Tracer::end(std::uint32_t track, Str name, sim::Time ts) {
  Event e;
  e.ph = Ph::kEnd;
  e.track = track;
  e.name = name;
  e.ts_ns = ts.ns();
  emit(e);
}

void Tracer::counter(std::uint32_t track, Str name, sim::Time ts, std::int64_t value) {
  Event e;
  e.ph = Ph::kCounter;
  e.track = track;
  e.name = name;
  e.ts_ns = ts.ns();
  e.arg_name[0] = ids.value; e.arg[0] = value;
  emit(e);
}

std::string Tracer::to_json() const {
  std::string out;
  out.reserve(count_ * 96 + 512);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\"";
  out += std::to_string(dropped_);
  out += "\"},\"traceEvents\":[";

  bool first = true;
  auto sep = [&] {
    if (!first) out += ',';
    first = false;
    out += '\n';
  };

  // Thread-name metadata: kept in the track table, immune to ring overflow.
  for (std::size_t t = 0; t < track_names_.size(); ++t) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(t);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_escaped(out, strings_[track_names_[t]]);
    out += "\"}}";
  }

  for_each([&](const Event& e) {
    sep();
    out += "{\"ph\":\"";
    out += static_cast<char>(e.ph);
    out += "\",\"pid\":0,\"tid\":";
    out += std::to_string(e.track);
    if (e.name != kNoStr) {
      out += ",\"name\":\"";
      append_escaped(out, strings_[e.name]);
      out += '"';
    }
    if (e.cat != kNoStr) {
      out += ",\"cat\":\"";
      append_escaped(out, strings_[e.cat]);
      out += '"';
    }
    out += ",\"ts\":";
    append_us(out, e.ts_ns);
    if (e.ph == Ph::kComplete) {
      out += ",\"dur\":";
      append_us(out, e.dur_ns);
    }
    if (e.ph == Ph::kInstant) out += ",\"s\":\"t\"";
    if (e.arg_name[0] != kNoStr || e.arg_name[1] != kNoStr || e.arg_name[2] != kNoStr) {
      out += ",\"args\":{";
      bool afirst = true;
      for (int i = 0; i < 3; ++i) {
        if (e.arg_name[i] == kNoStr) continue;
        if (!afirst) out += ',';
        afirst = false;
        out += '"';
        append_escaped(out, strings_[e.arg_name[i]]);
        out += "\":";
        out += std::to_string(e.arg[i]);
      }
      out += '}';
    }
    out += '}';
  });

  out += "\n]}\n";
  return out;
}

std::string Tracer::to_csv() const {
  std::string out = "ph,track,name,cat,ts_ns,dur_ns,a0_name,a0,a1_name,a1,a2_name,a2\n";
  for_each([&](const Event& e) {
    out += static_cast<char>(e.ph);
    out += ',';
    out += strings_[track_names_[e.track]];
    out += ',';
    out += strings_[e.name];
    out += ',';
    out += strings_[e.cat];
    out += ',';
    out += std::to_string(e.ts_ns);
    out += ',';
    out += std::to_string(e.dur_ns);
    for (int i = 0; i < 3; ++i) {
      out += ',';
      out += strings_[e.arg_name[i]];
      out += ',';
      out += e.arg_name[i] != kNoStr ? std::to_string(e.arg[i]) : std::string{};
    }
    out += '\n';
  });
  if (dropped_ > 0) {
    // Summary row (ph 'M' like the JSON metadata) so a CSV consumer sees
    // the loss too; zero-drop exports are byte-identical to before.
    out += "M,,dropped_events,,0,0,count," + std::to_string(dropped_) +
           ",,,,\n";
  }
  return out;
}

bool Tracer::write_file(const std::string& path, bool csv) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  if (dropped_ > 0) {
    // A silently truncated flight recording invalidates whatever analysis
    // reads it — say so where the invoking human will see it.
    std::fprintf(stderr,
                 "trace: WARNING: ring overflow dropped %llu events (capacity "
                 "%zu); raise TracerConfig::capacity for a complete trace\n",
                 static_cast<unsigned long long>(dropped_), ring_.size());
  }
  const std::string data = csv ? to_csv() : to_json();
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace iosim::trace
